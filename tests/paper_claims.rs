//! Statistical reproductions of the paper's headline claims at reduced
//! scale. Every test is seeded and averaged over repetitions so it is
//! deterministic; thresholds encode the *ordering* claims, not absolute
//! numbers.

use privmdr::core::{Calm, Hdg, HioMechanism, Lhio, Mechanism, Msw, Tdg};
use privmdr::data::DatasetSpec;
use privmdr::query::mae;
use privmdr::query::workload::{true_answers, WorkloadBuilder};

fn avg_mae(
    mech: &dyn Mechanism,
    ds: &privmdr::data::Dataset,
    queries: &[privmdr::query::RangeQuery],
    truths: &[f64],
    eps: f64,
    reps: u64,
) -> f64 {
    let mut total = 0.0;
    for seed in 0..reps {
        let model = mech.fit(ds, eps, seed).expect("fit");
        total += mae(&model.answer_all(queries), truths);
    }
    total / reps as f64
}

/// §1 / Fig. 1: "HDG outperforms existing approaches" on correlated data.
#[test]
fn hdg_beats_all_baselines_on_correlated_data() {
    let ds = DatasetSpec::Normal { rho: 0.8 }.generate(150_000, 4, 64, 21);
    let wl = WorkloadBuilder::new(4, 64, 22);
    let queries = wl.random(2, 0.5, 60);
    let truths = true_answers(&ds, &queries);
    let reps = 3;
    let hdg = avg_mae(&Hdg::default(), &ds, &queries, &truths, 1.0, reps);
    for baseline in [
        Box::new(Msw::default()) as Box<dyn Mechanism>,
        Box::new(Calm::default()),
        Box::new(Lhio::default()),
        Box::new(Tdg::default()),
    ] {
        let b = avg_mae(baseline.as_ref(), &ds, &queries, &truths, 1.0, reps);
        assert!(
            hdg < b,
            "HDG ({hdg:.4}) must beat {} ({b:.4}) on rho=0.8",
            baseline.name()
        );
    }
}

/// §3.3 / Fig. 1: HIO is the weakest approach — often worse than Uni.
#[test]
fn hio_suffers_the_curse_of_dimensionality() {
    let ds = DatasetSpec::Normal { rho: 0.8 }.generate(60_000, 4, 64, 23);
    let wl = WorkloadBuilder::new(4, 64, 24);
    let queries = wl.random(2, 0.5, 30);
    let truths = true_answers(&ds, &queries);
    let hio = avg_mae(&HioMechanism::default(), &ds, &queries, &truths, 1.0, 2);
    let lhio = avg_mae(&Lhio::default(), &ds, &queries, &truths, 1.0, 2);
    let hdg = avg_mae(&Hdg::default(), &ds, &queries, &truths, 1.0, 2);
    assert!(
        lhio < hio,
        "LHIO ({lhio:.4}) must improve on HIO ({hio:.4})"
    );
    assert!(
        hdg < hio / 5.0,
        "HDG ({hdg:.4}) should be >5x better than HIO ({hio:.4})"
    );
}

/// §3.5 / Fig. 1c: MSW is competitive exactly when correlations are weak.
#[test]
fn msw_competitive_only_without_correlation() {
    // n chosen so the guideline picks g2 = 4 (below ~250k it falls to 2 and
    // HDG's 2-D grids capture too little correlation to beat MSW — the same
    // crossover the paper's Fig. 6 shows at small n).
    let weak = DatasetSpec::Bfive.generate(300_000, 4, 64, 25);
    let strong = DatasetSpec::Normal { rho: 0.8 }.generate(300_000, 4, 64, 25);
    let wl = WorkloadBuilder::new(4, 64, 26);
    let queries = wl.random(2, 0.5, 50);
    let reps = 3;

    let t_weak = true_answers(&weak, &queries);
    let msw_weak = avg_mae(&Msw::default(), &weak, &queries, &t_weak, 1.0, reps);
    let hdg_weak = avg_mae(&Hdg::default(), &weak, &queries, &t_weak, 1.0, reps);
    // Weak correlation: MSW within a small factor of HDG (often better).
    assert!(
        msw_weak < hdg_weak * 2.0,
        "on weak correlation MSW ({msw_weak:.4}) ~ HDG ({hdg_weak:.4})"
    );

    let t_strong = true_answers(&strong, &queries);
    let msw_strong = avg_mae(&Msw::default(), &strong, &queries, &t_strong, 1.0, reps);
    let hdg_strong = avg_mae(&Hdg::default(), &strong, &queries, &t_strong, 1.0, reps);
    assert!(
        hdg_strong < msw_strong,
        "on strong correlation HDG ({hdg_strong:.4}) must beat MSW ({msw_strong:.4})"
    );
}

/// §4 / Fig. 1: HDG improves on TDG (the uniformity-assumption fix), here on
/// skewed real-like data where non-uniformity error dominates.
#[test]
fn hdg_improves_on_tdg() {
    let ds = DatasetSpec::Ipums.generate(150_000, 4, 64, 27);
    let wl = WorkloadBuilder::new(4, 64, 28);
    let queries = wl.random(2, 0.5, 60);
    let truths = true_answers(&ds, &queries);
    let reps = 4;
    let tdg = avg_mae(&Tdg::default(), &ds, &queries, &truths, 1.0, reps);
    let hdg = avg_mae(&Hdg::default(), &ds, &queries, &truths, 1.0, reps);
    assert!(
        hdg < tdg,
        "HDG ({hdg:.4}) must beat TDG ({tdg:.4}) on skewed data"
    );
}

/// §5.3 / Fig. 1: accuracy improves (MAE shrinks) as ε grows.
#[test]
fn mae_decreases_with_epsilon() {
    let ds = DatasetSpec::Laplace { rho: 0.8 }.generate(100_000, 4, 64, 29);
    let wl = WorkloadBuilder::new(4, 64, 30);
    let queries = wl.random(2, 0.5, 50);
    let truths = true_answers(&ds, &queries);
    let low = avg_mae(&Hdg::default(), &ds, &queries, &truths, 0.2, 3);
    let high = avg_mae(&Hdg::default(), &ds, &queries, &truths, 2.0, 3);
    assert!(
        high < low,
        "MAE at eps=2 ({high:.4}) must beat eps=0.2 ({low:.4})"
    );
}

/// §5.3 / Fig. 6: more users help every LDP approach.
#[test]
fn mae_decreases_with_population() {
    let wl = WorkloadBuilder::new(4, 64, 31);
    let queries = wl.random(2, 0.5, 50);
    let small = DatasetSpec::Normal { rho: 0.8 }.generate(30_000, 4, 64, 32);
    let large = DatasetSpec::Normal { rho: 0.8 }.generate(300_000, 4, 64, 32);
    let t_small = true_answers(&small, &queries);
    let t_large = true_answers(&large, &queries);
    let m_small = avg_mae(&Hdg::default(), &small, &queries, &t_small, 1.0, 3);
    let m_large = avg_mae(&Hdg::default(), &large, &queries, &t_large, 1.0, 3);
    assert!(
        m_large < m_small,
        "MAE at n=300k ({m_large:.4}) must beat n=30k ({m_small:.4})"
    );
}

/// §4.6 / Fig. 7: the guideline's choice is close to the best fixed
/// granularity combination.
#[test]
fn guideline_tracks_best_fixed_granularity() {
    let ds = DatasetSpec::Ipums.generate(100_000, 4, 64, 33);
    let wl = WorkloadBuilder::new(4, 64, 34);
    let queries = wl.random(2, 0.5, 40);
    let truths = true_answers(&ds, &queries);
    let reps = 3;
    let guideline = avg_mae(&Hdg::default(), &ds, &queries, &truths, 1.0, reps);
    let mut best_fixed = f64::INFINITY;
    for (g1, g2) in [(8, 2), (8, 4), (16, 2), (16, 4), (16, 8), (32, 4), (32, 8)] {
        let mech = Hdg::new(privmdr::core::MechanismConfig::default().with_granularities(g1, g2));
        best_fixed = best_fixed.min(avg_mae(&mech, &ds, &queries, &truths, 1.0, reps));
    }
    assert!(
        guideline < best_fixed * 1.8,
        "guideline ({guideline:.4}) must track the best fixed choice ({best_fixed:.4})"
    );
}
