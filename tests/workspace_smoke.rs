//! Workspace smoke test: the `privmdr` facade re-exports must fit together
//! for the canonical end-to-end flow — synthesize a dataset, fit HDG at
//! ε = 1, answer a 2-D range query. Everything here goes through `privmdr::`
//! paths only, so a broken re-export or an inter-crate API drift fails this
//! test even when each crate's own suite is green.

use privmdr::core::{Hdg, Mechanism};
use privmdr::data::DatasetSpec;
use privmdr::query::RangeQuery;

#[test]
fn facade_fits_hdg_and_answers_a_2d_query() {
    // Tiny but non-degenerate: 4k users, 3 attributes over {0, ..., 31}.
    let dataset = DatasetSpec::Normal { rho: 0.5 }.generate(4_000, 3, 32, 7);

    let model = Hdg::default()
        .fit(&dataset, 1.0, 13)
        .expect("HDG must fit on a small synthetic dataset at eps=1");

    let query = RangeQuery::from_triples(&[(0, 4, 19), (2, 0, 15)], 32).expect("valid 2-D query");

    let estimate = model.answer(&query);
    let truth = query.true_answer(&dataset);

    // Frequencies are fractions of users; the estimate must be a finite
    // value in a loose band around the truth (HDG post-processing keeps
    // answers near the simplex; at eps=1 and n=4k the noise is moderate).
    assert!(estimate.is_finite(), "estimate must be finite");
    assert!(
        (estimate - truth).abs() < 0.25,
        "estimate {estimate} too far from truth {truth}"
    );

    // The fitted model is reusable: answering more queries costs no privacy
    // and must stay consistent with the single-query path.
    let batch = model.answer_all(std::slice::from_ref(&query));
    assert_eq!(batch.len(), 1);
    assert!((batch[0] - estimate).abs() < 1e-12);
}

#[test]
fn facade_snapshot_round_trip_matches_fit() {
    // The serving artifact: capture a fit as a ModelSnapshot and restore it
    // — answers must be bit-identical, through facade paths only.
    let dataset = DatasetSpec::Ipums.generate(3_000, 3, 16, 5);
    let hdg = Hdg::default();
    let fitted = hdg.fit(&dataset, 1.0, 2).expect("fit");
    let snapshot = hdg.snapshot(&dataset, 1.0, 2).expect("snapshot");
    let restored = snapshot.to_model().expect("restore");
    for triples in [
        &[(0usize, 0usize, 7usize)][..],
        &[(0, 2, 9), (1, 0, 15)],
        &[(0, 0, 7), (1, 4, 11), (2, 8, 15)],
    ] {
        let q = RangeQuery::from_triples(triples, 16).unwrap();
        assert_eq!(fitted.answer(&q).to_bits(), restored.answer(&q).to_bits());
    }
}

#[test]
fn facade_exposes_every_workspace_layer() {
    // One symbol per re-exported crate, so a dropped facade line fails here.
    let _ = privmdr::util::pow2::closest_pow2(10.0);
    let _ = privmdr::data::DatasetSpec::Loan;
    let _ = privmdr::oracles::SimMode::Fast;
    let _ = privmdr::grid::guideline::default_sigma(3);
    let _ = privmdr::hierarchy::Hierarchy1d::new(4, 2);
    let _ = privmdr::query::RangeQuery::from_triples(&[(0, 0, 1)], 4);
    let _ = privmdr::core::MechanismConfig::default();
}
