//! Cross-crate integration tests: every mechanism runs end-to-end and
//! produces sane answers on realistic workloads.

use privmdr::core::{Calm, Hdg, HioMechanism, Lhio, Mechanism, MechanismConfig, Msw, Tdg, Uni};
use privmdr::data::DatasetSpec;
use privmdr::query::workload::{true_answers, WorkloadBuilder};
use privmdr::query::{mae, RangeQuery};

fn all_mechanisms() -> Vec<Box<dyn Mechanism>> {
    vec![
        Box::new(Uni),
        Box::new(Msw::default()),
        Box::new(Calm::default()),
        Box::new(HioMechanism::default()),
        Box::new(Lhio::default()),
        Box::new(Tdg::default()),
        Box::new(Hdg::default()),
    ]
}

#[test]
fn every_mechanism_fits_and_answers_all_lambdas() {
    let ds = DatasetSpec::Ipums.generate(20_000, 4, 32, 1);
    let wl = WorkloadBuilder::new(4, 32, 2);
    for mech in all_mechanisms() {
        let model = mech.fit(&ds, 1.0, 3).unwrap_or_else(|e| {
            panic!("{} failed to fit: {e}", mech.name());
        });
        for lambda in 1..=4 {
            for q in wl.random(lambda, 0.5, 5) {
                let a = model.answer(&q);
                assert!(
                    a.is_finite(),
                    "{} gave non-finite answer for lambda={lambda}",
                    mech.name()
                );
            }
        }
    }
}

#[test]
fn high_budget_recovers_truth_for_grid_methods() {
    // At eps = 6 the LDP noise is tiny; remaining error is binning only.
    let ds = DatasetSpec::Normal { rho: 0.8 }.generate(120_000, 3, 32, 4);
    let wl = WorkloadBuilder::new(3, 32, 5);
    let queries = wl.random(2, 0.5, 40);
    let truths = true_answers(&ds, &queries);
    for (mech, bound) in [
        (Box::new(Hdg::default()) as Box<dyn Mechanism>, 0.02),
        (Box::new(Calm::default()), 0.03),
    ] {
        let model = mech.fit(&ds, 6.0, 6).expect("fit");
        let err = mae(&model.answer_all(&queries), &truths);
        assert!(err < bound, "{} high-budget MAE {err}", mech.name());
    }
}

#[test]
fn full_domain_queries_answer_one() {
    let ds = DatasetSpec::Laplace { rho: 0.8 }.generate(30_000, 3, 16, 7);
    let full = RangeQuery::from_triples(&[(0, 0, 15), (1, 0, 15), (2, 0, 15)], 16).unwrap();
    for mech in all_mechanisms() {
        let model = mech.fit(&ds, 2.0, 8).expect("fit");
        let a = model.answer(&full);
        assert!(
            (a - 1.0).abs() < 0.25,
            "{} answers {a} for the full-domain query",
            mech.name()
        );
    }
}

#[test]
fn private_mechanisms_beat_uniform_on_structured_data() {
    let ds = DatasetSpec::Normal { rho: 0.8 }.generate(150_000, 4, 64, 9);
    let wl = WorkloadBuilder::new(4, 64, 10);
    let queries = wl.random(2, 0.5, 50);
    let truths = true_answers(&ds, &queries);
    let uni_mae = {
        let model = Uni.fit(&ds, 1.0, 0).expect("fit");
        mae(&model.answer_all(&queries), &truths)
    };
    for mech in [
        Box::new(Hdg::default()) as Box<dyn Mechanism>,
        Box::new(Tdg::default()),
        Box::new(Msw::default()),
    ] {
        let model = mech.fit(&ds, 1.0, 11).expect("fit");
        let m = mae(&model.answer_all(&queries), &truths);
        assert!(
            m < uni_mae,
            "{}: {m} not better than Uni {uni_mae}",
            mech.name()
        );
    }
}

#[test]
fn exact_and_fast_modes_agree_statistically() {
    // Same mechanism, same data; the two oracle simulations must produce
    // MAEs in the same ballpark (they sample identical distributions).
    let ds = DatasetSpec::Ipums.generate(40_000, 3, 32, 12);
    let wl = WorkloadBuilder::new(3, 32, 13);
    let queries = wl.random(2, 0.5, 40);
    let truths = true_answers(&ds, &queries);
    let reps = 4;
    let (mut fast, mut exact) = (0.0, 0.0);
    for seed in 0..reps {
        let f = Hdg::default().fit(&ds, 1.0, seed).expect("fit");
        fast += mae(&f.answer_all(&queries), &truths);
        let e = Hdg::new(MechanismConfig::exact())
            .fit(&ds, 1.0, seed)
            .expect("fit");
        exact += mae(&e.answer_all(&queries), &truths);
    }
    let ratio = fast / exact;
    assert!(
        (0.6..1.7).contains(&ratio),
        "fast/exact MAE ratio {ratio} (fast {fast}, exact {exact})"
    );
}

#[test]
fn models_are_deterministic_given_seed() {
    let ds = DatasetSpec::Bfive.generate(10_000, 3, 16, 14);
    let q = RangeQuery::from_triples(&[(0, 2, 9), (2, 0, 7)], 16).unwrap();
    for mech in all_mechanisms() {
        let a = mech.fit(&ds, 1.0, 42).expect("fit").answer(&q);
        let b = mech.fit(&ds, 1.0, 42).expect("fit").answer(&q);
        assert_eq!(a, b, "{} is not reproducible from its seed", mech.name());
    }
}

#[test]
fn models_are_send_sync_and_usable_across_threads() {
    let ds = DatasetSpec::Normal { rho: 0.5 }.generate(20_000, 3, 16, 15);
    let model = Hdg::default().fit(&ds, 1.0, 16).expect("fit");
    let q = RangeQuery::from_triples(&[(0, 0, 7), (1, 0, 7)], 16).unwrap();
    let base = model.answer(&q);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                assert_eq!(model.answer(&q), base);
            });
        }
    });
}
