//! Ablation: Algorithm 2 (Weighted Update) vs Appendix A.8 (max-entropy).
//!
//! The paper replaces max-entropy estimation with Weighted Update because it
//! reaches "almost the same accuracy while with higher efficiency". These
//! tests pin the accuracy half of that claim end-to-end through HDG.

use privmdr::core::{EstimatorKind, Hdg, Mechanism, MechanismConfig};
use privmdr::data::DatasetSpec;
use privmdr::query::mae;
use privmdr::query::workload::{true_answers, WorkloadBuilder};

fn run(estimator: EstimatorKind, lambda: usize, spec: DatasetSpec) -> (f64, f64) {
    let ds = spec.generate(120_000, 5, 64, 31);
    let wl = WorkloadBuilder::new(5, 64, 32);
    let queries = wl.random(lambda, 0.5, 40);
    let truths = true_answers(&ds, &queries);
    let cfg = MechanismConfig {
        estimator,
        ..MechanismConfig::default()
    };
    let mut total = 0.0;
    for seed in 0..3u64 {
        let model = Hdg::new(cfg).fit(&ds, 1.0, seed).expect("fit");
        total += mae(&model.answer_all(&queries), &truths);
    }
    let truth_scale = truths.iter().sum::<f64>() / truths.len() as f64;
    (total / 3.0, truth_scale)
}

#[test]
fn estimators_agree_on_lambda3_moderate_correlation() {
    // On moderately correlated data the two estimators are close
    // (the paper's "almost the same accuracy").
    let (wu, _) = run(EstimatorKind::WeightedUpdate, 3, DatasetSpec::Ipums);
    let (me, _) = run(EstimatorKind::MaxEntropy, 3, DatasetSpec::Ipums);
    let ratio = wu.max(me) / wu.min(me).max(1e-9);
    assert!(
        ratio < 1.5,
        "Ipums: WU {wu:.4} vs MaxEnt {me:.4} (ratio {ratio:.2})"
    );
}

#[test]
fn max_entropy_wins_under_strong_correlation() {
    // Measured deviation from the paper's "almost the same" framing, kept
    // as a pinned observation: with rho = 0.8 the max-entropy estimator's
    // extra complement-quadrant constraints express strong correlation
    // better than Algorithm 2's positive-quadrant-only updates (WU ~0.147
    // vs MaxEnt ~0.079 at lambda = 3 in this configuration). See
    // EXPERIMENTS.md. Algorithm 2 remains the faster default.
    let (wu, _) = run(
        EstimatorKind::WeightedUpdate,
        3,
        DatasetSpec::Normal { rho: 0.8 },
    );
    let (me, _) = run(
        EstimatorKind::MaxEntropy,
        3,
        DatasetSpec::Normal { rho: 0.8 },
    );
    assert!(
        me < wu,
        "expected MaxEnt ({me:.4}) <= WU ({wu:.4}) on rho=0.8"
    );
    assert!(
        wu < me * 3.0,
        "estimators should stay within 3x: WU {wu:.4} MaxEnt {me:.4}"
    );
}

#[test]
fn estimators_agree_on_lambda5() {
    let (wu, scale) = run(EstimatorKind::WeightedUpdate, 5, DatasetSpec::Ipums);
    let (me, _) = run(EstimatorKind::MaxEntropy, 5, DatasetSpec::Ipums);
    // At higher lambda both carry estimation error; they must stay within
    // a factor of each other and both below the average answer magnitude.
    let ratio = wu.max(me) / wu.min(me).max(1e-9);
    assert!(
        ratio < 2.0,
        "WU {wu:.4} vs MaxEnt {me:.4} (ratio {ratio:.2})"
    );
    assert!(wu < scale, "WU MAE {wu:.4} above signal scale {scale:.4}");
    assert!(
        me < scale,
        "MaxEnt MAE {me:.4} above signal scale {scale:.4}"
    );
}
