//! Failure injection and degenerate-input robustness: mechanisms must
//! stay finite and well-behaved at the edges of their parameter space.

use privmdr::core::{Calm, Hdg, HioMechanism, Lhio, Mechanism, MechanismConfig, Msw, Tdg, Uni};
use privmdr::data::{Dataset, DatasetSpec};
use privmdr::query::RangeQuery;

fn all_mechanisms() -> Vec<Box<dyn Mechanism>> {
    vec![
        Box::new(Uni),
        Box::new(Msw::default()),
        Box::new(Calm::default()),
        Box::new(HioMechanism::default()),
        Box::new(Lhio::default()),
        Box::new(Tdg::default()),
        Box::new(Hdg::default()),
    ]
}

/// Fewer users than groups: some groups are empty, none may panic.
#[test]
fn tiny_population_smaller_than_group_count() {
    // d = 4 => HIO has 3^... (c=16, b=4 -> h=2 -> 81) groups, far more
    // than 30 users.
    let ds = DatasetSpec::Ipums.generate(30, 4, 16, 1);
    let q = RangeQuery::from_triples(&[(0, 0, 7), (2, 4, 11)], 16).unwrap();
    for mech in all_mechanisms() {
        let model = mech
            .fit(&ds, 1.0, 2)
            .unwrap_or_else(|e| panic!("{} failed on tiny data: {e}", mech.name()));
        let a = model.answer(&q);
        assert!(a.is_finite(), "{} non-finite on tiny data", mech.name());
    }
}

/// A single user still produces a valid model.
#[test]
fn single_user() {
    let ds = Dataset::new(vec![3, 7, 1], 3, 16).unwrap();
    let q = RangeQuery::from_triples(&[(0, 0, 15), (1, 0, 15)], 16).unwrap();
    for mech in all_mechanisms() {
        let model = mech.fit(&ds, 1.0, 3).expect("fit single user");
        assert!(model.answer(&q).is_finite(), "{}", mech.name());
    }
}

/// All users share one record: grids are all-or-nothing per cell.
#[test]
fn degenerate_point_mass_dataset() {
    let rows: Vec<u16> = (0..2000).flat_map(|_| [5u16, 9, 12]).collect();
    let ds = Dataset::new(rows, 3, 16).unwrap();
    let hit = RangeQuery::from_triples(&[(0, 4, 6), (1, 8, 10), (2, 11, 13)], 16).unwrap();
    let miss = RangeQuery::from_triples(&[(0, 0, 2), (1, 0, 2), (2, 0, 2)], 16).unwrap();
    for mech in [
        Box::new(Hdg::default()) as Box<dyn Mechanism>,
        Box::new(Tdg::default()),
    ] {
        let model = mech.fit(&ds, 4.0, 4).expect("fit");
        let a_hit = model.answer(&hit);
        let a_miss = model.answer(&miss);
        // TDG spreads the point mass uniformly inside its coarse cells, so
        // only part of it lands back in the query box; HDG's 1-D grids are
        // per-value here and recover most of the mass.
        assert!(
            a_hit > a_miss + 0.15,
            "{}: hit {a_hit} vs miss {a_miss}",
            mech.name()
        );
        assert!(
            a_miss < 0.2,
            "{}: empty region answer {a_miss}",
            mech.name()
        );
        if mech.name() == "HDG" {
            assert!(a_hit > 0.5, "HDG point mass answer {a_hit}");
        }
    }
}

/// Extreme privacy budgets at both ends stay finite.
#[test]
fn extreme_epsilon_values() {
    let ds = DatasetSpec::Bfive.generate(5_000, 3, 16, 5);
    let q = RangeQuery::from_triples(&[(0, 0, 7), (1, 0, 7)], 16).unwrap();
    for eps in [0.01, 10.0] {
        for mech in all_mechanisms() {
            let model = mech
                .fit(&ds, eps, 6)
                .unwrap_or_else(|e| panic!("{} at eps={eps}: {e}", mech.name()));
            assert!(model.answer(&q).is_finite(), "{} at eps={eps}", mech.name());
        }
    }
}

/// Invalid epsilon is rejected, not silently accepted.
#[test]
fn invalid_epsilon_rejected() {
    let ds = DatasetSpec::Bfive.generate(100, 3, 16, 7);
    for eps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
        for mech in all_mechanisms() {
            if mech.name() == "Uni" {
                continue; // Uni consumes no budget
            }
            assert!(
                mech.fit(&ds, eps, 8).is_err(),
                "{} accepted eps={eps}",
                mech.name()
            );
        }
    }
}

/// The minimal interesting configuration: d = 2, c = 2.
#[test]
fn minimal_domain_and_dims() {
    let rows: Vec<u16> = (0..500u16).flat_map(|i| [i % 2, (i / 2) % 2]).collect();
    let ds = Dataset::new(rows, 2, 2).unwrap();
    let q = RangeQuery::from_triples(&[(0, 0, 0), (1, 1, 1)], 2).unwrap();
    for mech in all_mechanisms() {
        let model = mech.fit(&ds, 2.0, 9).expect("fit minimal");
        let a = model.answer(&q);
        assert!(
            (a - 0.25).abs() < 0.3,
            "{}: {a} far from 0.25 on the 2x2 uniform table",
            mech.name()
        );
    }
}

/// Queries at the domain boundaries (single values, full intervals).
#[test]
fn boundary_queries() {
    let ds = DatasetSpec::Laplace { rho: 0.5 }.generate(20_000, 3, 32, 10);
    let model = Hdg::default().fit(&ds, 1.0, 11).expect("fit");
    for q in [
        RangeQuery::from_triples(&[(0, 0, 0)], 32).unwrap(),
        RangeQuery::from_triples(&[(0, 31, 31)], 32).unwrap(),
        RangeQuery::from_triples(&[(0, 0, 0), (1, 31, 31)], 32).unwrap(),
        RangeQuery::from_triples(&[(0, 0, 31), (1, 0, 31), (2, 0, 31)], 32).unwrap(),
        RangeQuery::from_triples(&[(2, 15, 16)], 32).unwrap(),
    ] {
        let a = model.answer(&q);
        assert!(a.is_finite() && a > -0.2 && a < 1.2, "query {q}: {a}");
    }
}

/// The IHDG ablation (no post-processing) must stay finite even though its
/// inputs can be negative — the Appendix A.1 "max 100 iterations" case.
#[test]
fn ablations_survive_negative_inputs() {
    let ds = DatasetSpec::Normal { rho: 0.8 }.generate(2_000, 4, 32, 12);
    let q4 =
        RangeQuery::from_triples(&[(0, 0, 15), (1, 0, 15), (2, 0, 15), (3, 0, 15)], 32).unwrap();
    for cfg in [
        MechanismConfig::default().without_post_process(),
        MechanismConfig::exact().without_post_process(),
    ] {
        for mech in [
            Box::new(Tdg::new(cfg)) as Box<dyn Mechanism>,
            Box::new(Hdg::new(cfg)),
        ] {
            // Tiny population + eps=0.2 => heavy noise, many negatives.
            let model = mech.fit(&ds, 0.2, 13).expect("fit ablation");
            let a = model.answer(&q4);
            assert!(a.is_finite(), "{} produced {a}", mech.name());
        }
    }
}

/// Repeated answering is idempotent (no internal state drift through the
/// lazy response-matrix cache).
#[test]
fn answers_are_idempotent() {
    let ds = DatasetSpec::Ipums.generate(10_000, 4, 32, 14);
    let model = Hdg::default().fit(&ds, 1.0, 15).expect("fit");
    let q = RangeQuery::from_triples(&[(0, 3, 20), (2, 5, 28), (3, 0, 10)], 32).unwrap();
    let first = model.answer(&q);
    for _ in 0..5 {
        assert_eq!(model.answer(&q), first);
    }
}
