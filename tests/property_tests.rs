//! Cross-crate property tests (proptest) on the workspace's core
//! invariants.

use privmdr::data::Dataset;
use privmdr::grid::{norm_sub, PrefixSum2d};
use privmdr::hierarchy::Hierarchy1d;
use privmdr::query::{Predicate, RangeQuery};
use proptest::prelude::*;

proptest! {
    /// Norm-Sub output is a valid (sub-)distribution regardless of input.
    #[test]
    fn norm_sub_always_valid(xs in prop::collection::vec(-1.0f64..1.0, 1..64)) {
        let mut v = xs;
        norm_sub(&mut v, 1.0);
        prop_assert!(v.iter().all(|&x| x >= 0.0));
        let sum: f64 = v.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    /// Norm-Sub is idempotent.
    #[test]
    fn norm_sub_idempotent(xs in prop::collection::vec(-1.0f64..1.0, 1..64)) {
        let mut v = xs;
        norm_sub(&mut v, 1.0);
        let once = v.clone();
        norm_sub(&mut v, 1.0);
        for (a, b) in v.iter().zip(&once) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// Hierarchy decomposition covers each value in the range exactly once.
    #[test]
    fn decomposition_is_exact_cover(
        b in 2usize..5,
        h in 1usize..4,
        raw_lo in 0usize..1000,
        raw_len in 0usize..1000,
    ) {
        let c = b.pow(h as u32);
        let lo = raw_lo % c;
        let hi = (lo + raw_len % (c - lo).max(1)).min(c - 1);
        let hier = Hierarchy1d::new(b, c).unwrap();
        let mut covered = vec![0u32; c];
        for (level, idx) in hier.decompose(lo, hi) {
            let (n_lo, n_hi) = hier.node_bounds(level, idx);
            for cell in covered.iter_mut().take(n_hi + 1).skip(n_lo) {
                *cell += 1;
            }
        }
        for (v, &cnt) in covered.iter().enumerate() {
            prop_assert_eq!(cnt, u32::from(lo <= v && v <= hi), "value {}", v);
        }
    }

    /// Prefix-sum rectangle queries match brute-force summation.
    #[test]
    fn prefix_sums_match_brute_force(
        rows in 1usize..8,
        cols in 1usize..8,
        seed in 0u64..1000,
    ) {
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| ((i as u64 ^ seed) as f64 * 0.37).sin())
            .collect();
        let p = PrefixSum2d::build(&data, rows, cols);
        for r0 in 0..rows {
            for c0 in 0..cols {
                let mut brute = 0.0;
                for r in r0..rows {
                    for c in c0..cols {
                        brute += data[r * cols + c];
                    }
                }
                prop_assert!((p.rect(r0, rows, c0, cols) - brute).abs() < 1e-9);
            }
        }
    }

    /// True answers are monotone under query-interval widening.
    #[test]
    fn true_answer_monotone_in_interval(
        seed in 0u64..500,
        lo in 0usize..16,
        len in 0usize..16,
    ) {
        let ds = privmdr::data::DatasetSpec::Ipums.generate(500, 2, 16, seed);
        let hi = (lo + len).min(15);
        let narrow = RangeQuery::new(
            vec![Predicate { attr: 0, lo, hi }],
            16,
        ).unwrap();
        let wide = RangeQuery::new(
            vec![Predicate { attr: 0, lo: 0, hi: 15 }],
            16,
        ).unwrap();
        prop_assert!(narrow.true_answer(&ds) <= wide.true_answer(&ds) + 1e-12);
    }

    /// Dataset truncation keeps values and prefixes intact.
    #[test]
    fn with_dims_prefix_preserved(
        n in 1usize..50,
        d in 2usize..6,
        keep in 1usize..6,
        seed in 0u64..100,
    ) {
        let keep = keep.min(d);
        let ds = privmdr::data::DatasetSpec::Acs.generate(n, d, 16, seed);
        let narrow = ds.with_dims(keep);
        prop_assert_eq!(narrow.dims(), keep);
        for u in 0..n {
            prop_assert_eq!(&ds.row(u)[..keep], narrow.row(u));
        }
    }

    /// Query volume equals the product of normalized interval lengths and
    /// bounds the true answer of a uniform dataset loosely.
    #[test]
    fn volume_is_product(
        lo1 in 0usize..16, len1 in 0usize..16,
        lo2 in 0usize..16, len2 in 0usize..16,
    ) {
        let (hi1, hi2) = ((lo1 + len1).min(15), (lo2 + len2).min(15));
        let q = RangeQuery::new(
            vec![
                Predicate { attr: 0, lo: lo1, hi: hi1 },
                Predicate { attr: 1, lo: lo2, hi: hi2 },
            ],
            16,
        ).unwrap();
        let want = ((hi1 - lo1 + 1) as f64 / 16.0) * ((hi2 - lo2 + 1) as f64 / 16.0);
        prop_assert!((q.volume(16) - want).abs() < 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dataset::new validates exactly the documented invariants.
    #[test]
    fn dataset_validation_is_total(
        rows in prop::collection::vec(0u16..64, 0..40),
        d in 1usize..5,
    ) {
        match Dataset::new(rows.clone(), d, 32) {
            Ok(ds) => {
                prop_assert_eq!(rows.len() % d, 0);
                prop_assert!(rows.iter().all(|&v| v < 32));
                prop_assert_eq!(ds.len(), rows.len() / d);
            }
            Err(_) => {
                prop_assert!(rows.len() % d != 0 || rows.iter().any(|&v| v >= 32));
            }
        }
    }
}
