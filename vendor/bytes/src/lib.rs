//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! Implements the subset used by `privmdr-protocol`: [`Bytes`], [`BytesMut`],
//! and the [`Buf`]/[`BufMut`] traits with little-endian integer accessors.
//! Unlike upstream, [`Bytes`] owns its storage outright (no refcounted
//! zero-copy slicing); `clone` copies. The wire-format code only moves a few
//! hundred kilobytes per simulated cohort, so the copy cost is irrelevant.

use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer that consumes from the front
/// when read through [`Buf`].
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Length of the readable region.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a view of a subrange (indices relative to this view).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: data.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// A growable mutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        BytesMut {
            data: data.to_vec(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Read access to a buffer of bytes, consuming from the front.
pub trait Buf {
    /// Number of bytes left to read.
    fn remaining(&self) -> usize;

    /// Discards the next `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Returns the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies the next `dst.len()` bytes out of the buffer.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.start += cnt;
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut buf = BytesMut::with_capacity(15);
        buf.put_u8(7);
        buf.put_u16_le(0xBEE5);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        assert_eq!(buf.len(), 15);
        let mut frozen = buf.freeze();
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u16_le(), 0xBEE5);
        assert_eq!(frozen.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert!(!frozen.has_remaining());
    }

    #[test]
    fn slice_views_are_relative() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(..2);
        assert_eq!(&s2[..], &[2, 3]);
    }

    #[test]
    fn slice_buf_impl_advances() {
        let v = vec![1u8, 0, 0, 0, 0];
        let mut s: &[u8] = &v;
        assert_eq!(s.get_u32_le(), 1);
        assert_eq!(s.remaining(), 1);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8, 2]);
        let _ = b.get_u32_le();
    }
}
