//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! Implements the API shape the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`], [`criterion_group!`],
//! [`criterion_main!`] — over a deliberately simple wall-clock harness:
//! a short warm-up, then a timed batch, with the median-free mean ns/iter
//! (and derived throughput) printed per benchmark. There is no statistical
//! regression analysis or HTML report; the numbers are for quick relative
//! comparison on one machine.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum measured wall-clock time per benchmark.
const TARGET_TIME: Duration = Duration::from_millis(200);
/// Warm-up time per benchmark.
const WARMUP_TIME: Duration = Duration::from_millis(50);

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `"<name>/<parameter>"`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Id from the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Drives the timing loop of one benchmark.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_TIME {
            black_box(routine());
        }
        // Measure in growing batches until the time target is met.
        let mut batch = 1u64;
        let mut total_iters = 0u64;
        let start = Instant::now();
        loop {
            for _ in 0..batch {
                black_box(routine());
            }
            total_iters += batch;
            if start.elapsed() >= TARGET_TIME {
                break;
            }
            batch = batch.saturating_mul(2);
        }
        self.iters_done = total_iters;
        self.elapsed = start.elapsed();
    }
}

fn report(id: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let iters = bencher.iters_done.max(1);
    let ns_per_iter = bencher.elapsed.as_nanos() as f64 / iters as f64;
    let mut line = format!("{id:<50} {ns_per_iter:>14.1} ns/iter");
    if let Some(tp) = throughput {
        let (units, label) = match tp {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let per_sec = units as f64 / (ns_per_iter / 1e9);
        line.push_str(&format!("   {per_sec:>14.3e} {label}"));
    }
    println!("{line}");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; this harness sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; this harness uses a fixed target time.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        report(
            &format!("{}/{}", self.name, id.id),
            &bencher,
            self.throughput,
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher, input);
        report(
            &format!("{}/{}", self.name, id.id),
            &bencher,
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        report(id, &bencher, None);
        self
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(4)).sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..4u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
