//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the property-testing subset the privmdr workspace uses:
//! the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! `prop_assert*` / [`prop_assume!`], [`prop_oneof!`], range and
//! [`arbitrary::any`] strategies, tuple strategies (up to 5 elements),
//! [`collection::vec()`], [`sample::select`], and
//! [`Strategy::prop_map`](strategy::Strategy::prop_map).
//!
//! Differences from upstream, by design:
//!
//! * **Deterministic**: case seeds derive from the test name and case index,
//!   so failures reproduce exactly without a persistence file.
//! * **No shrinking**: a failing case reports its seed instead of a
//!   minimized input. Re-run with the seed to debug.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::{Rng, SampleStandard};

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn new_value(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Object-safe generation, used to erase strategy types.
    trait DynStrategy<T> {
        fn dyn_value(&self, rng: &mut StdRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_value(&self, rng: &mut StdRng) -> S::Value {
            self.new_value(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut StdRng) -> T {
            self.0.dyn_value(rng)
        }
    }

    /// Uniform choice among several strategies (built by [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut StdRng) -> T {
            let i = rng.random_range(0..self.options.len());
            self.options[i].new_value(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    /// Strategy for [`any`](crate::arbitrary::any).
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(pub(crate) core::marker::PhantomData<T>);

    impl<T: SampleStandard> Strategy for AnyStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut StdRng) -> T {
            T::sample_standard(rng)
        }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use super::strategy::AnyStrategy;
    use rand::SampleStandard;

    /// Strategy over `T`'s full standard distribution (whole integer range,
    /// `[0, 1)` for floats).
    pub fn any<T: SampleStandard>() -> AnyStrategy<T> {
        AnyStrategy(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Sizes accepted by [`vec()`]: an exact `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Samples a length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling from explicit option lists.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Uniform choice from a fixed list of options.
    pub fn select<T: Clone>(options: Vec<T>) -> SelectStrategy<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        SelectStrategy { options }
    }

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct SelectStrategy<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for SelectStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut StdRng) -> T {
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }
}

pub mod test_runner {
    //! Case execution and configuration.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration (`#![proptest_config(..)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; try another case.
        Reject,
        /// A `prop_assert*!` failed: the property is violated.
        Fail(String),
    }

    /// FNV-1a, for deriving a per-test base seed from the test name.
    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `body` until `config.cases` cases pass, panicking on the first
    /// failing case with the information needed to reproduce it.
    pub fn run<F>(config: ProptestConfig, name: &str, mut body: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        let max_rejects = (config.cases as u64) * 64;
        let mut passed = 0u32;
        let mut rejected = 0u64;
        let mut case = 0u64;
        while passed < config.cases {
            let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = StdRng::seed_from_u64(seed);
            match body(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest '{name}': too many prop_assume! rejections \
                             ({rejected} rejects for {passed} passing cases)"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed at case {case} (seed {seed:#x}): {msg}");
                }
            }
            case += 1;
        }
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            cfg = (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = ($cfg:expr);) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run($cfg, stringify!($name), |__proptest_rng| {
                $(let $pat = $crate::strategy::Strategy::new_value(&($strat), __proptest_rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_tests! { cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs), stringify!($rhs), lhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs != *rhs, $($fmt)*);
    }};
}

/// Filters the current case: if the condition is false, the inputs are
/// rejected and another case is drawn (bounded by a global reject budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror so `prop::collection::vec(..)` etc. resolve after a
    /// prelude glob import, as with upstream proptest.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 3usize..10, y in 0.0f64..1.0, z in any::<u8>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            let _ = z;
        }

        /// Doc comments on cases must parse.
        #[test]
        fn vec_and_select(
            v in prop::collection::vec(0u32..5, 1..8),
            pick in prop::sample::select(vec![2usize, 4, 8]),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assert!(pick == 2 || pick == 4 || pick == 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]

        #[test]
        fn oneof_and_map(x in prop_oneof![
            Just(-1i64),
            (0u32..10).prop_map(|v| v as i64),
        ]) {
            prop_assert!((-1..10).contains(&x));
        }

        #[test]
        fn assume_filters(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }

        #[test]
        fn tuple_strategies_compose(
            pair in (0u32..4, any::<bool>()),
            triple in (0usize..3, 1.0f64..2.0, 0u8..9).prop_map(|(a, b, c)| a as f64 + b + c as f64),
        ) {
            prop_assert!(pair.0 < 4);
            prop_assert!((1.0..13.0).contains(&triple));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failure_reports_seed() {
        crate::test_runner::run(ProptestConfig::with_cases(5), "always_fails", |_rng| {
            Err(TestCaseError::Fail("boom".into()))
        });
    }
}
