//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements exactly the subset of the `rand 0.9` API surface the privmdr
//! workspace uses: [`RngCore`], [`Rng`] (re-exported as [`RngExt`]),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`].
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — deterministic,
//! fast, and statistically strong enough for every property and accuracy
//! test in the workspace. It is **not** a cryptographic generator and makes
//! no attempt to match upstream `StdRng`'s ChaCha12 stream; all workspace
//! seeds are derivation-local, so only within-build determinism matters.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `T`'s standard distribution
    /// (full integer range; `[0, 1)` for floats; fair coin for `bool`).
    fn random<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Alias kept because workspace code imports the sampling methods under
/// this name (`use rand::RngExt;`).
pub use Rng as RngExt;

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types sampleable by [`Rng::random`].
pub trait SampleStandard: Sized {
    /// Draws one value from the standard distribution for `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

/// Uniform integer in `[0, span)` via 128-bit widening multiply
/// (Lemire's method, without the rejection step — the bias is `< span/2^64`,
/// far below anything the workspace's statistical tests can detect).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span == u64::MAX as u128 + 1 {
        return rng.next_u64();
    }
    ((rng.next_u64() as u128 * span) >> 64) as u64
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Unlike upstream `rand`, the stream is stable across releases of this
    /// vendored crate; experiment reproducibility depends on that.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding procedure.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

/// Commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0u64..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn range_mean_is_roughly_central() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn unsized_rng_callable_through_generic() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
