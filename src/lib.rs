//! # privmdr — multi-dimensional range queries under local differential privacy
//!
//! Facade crate re-exporting the full `privmdr` workspace: a from-scratch
//! Rust reproduction of *"Answering Multi-Dimensional Range Queries under
//! Local Differential Privacy"* (Yang, Wang, Li, Cheng, Su — VLDB 2020).
//!
//! The typical entry points are:
//!
//! * [`data`] — build or synthesize a [`data::Dataset`];
//! * [`core`] — fit a mechanism ([`core::Hdg`], [`core::Tdg`], or one of the
//!   baselines) at a privacy budget ε;
//! * [`query`] — pose [`query::RangeQuery`]s and score them.
//!
//! See `examples/quickstart.rs` for a complete tour.

pub use privmdr_core as core;
pub use privmdr_data as data;
pub use privmdr_grid as grid;
pub use privmdr_hierarchy as hierarchy;
pub use privmdr_oracles as oracles;
pub use privmdr_query as query;
pub use privmdr_util as util;
