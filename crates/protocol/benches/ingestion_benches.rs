//! Throughput of the report-ingestion engine: reports/sec through the
//! serial path and the sharded path at increasing shard counts, a
//! micro-bench sweep of the block-transposed OLH support kernel (batched
//! vs per-report at c ∈ {64, 256, 1024} × batch lengths), the end-to-end
//! wire→counters cost of the zero-copy cursor path vs decode-to-`Vec`,
//! plus the wire decode cost of the two framings.
//!
//! The headline number is `ingest/shards=K` on the 256-cell grid: the
//! support-counting pass is O(cells) per report and embarrassingly
//! parallel, so on an M-core machine reports/sec should scale close to
//! linearly until K exceeds M (shards are capped to available cores by
//! `par_map`; on a single-core runner all shard counts collapse to the
//! serial figure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use privmdr_grid::guideline::Granularities;
use privmdr_oracles::olh::Olh;
use privmdr_oracles::{FrequencyOracle, Grr};
use privmdr_protocol::{Batch, Collector, EpochCollector, GroupTarget, Report, SessionPlan};
use privmdr_util::hash::mix64;
use std::hint::black_box;

/// A plan whose group 0 is a 1-D grid with exactly `cells` cells, bypassing
/// the guideline so the bench geometry is fixed across machines.
fn plan_with_cells(cells: usize) -> SessionPlan {
    let mut plan = SessionPlan::new(1_000_000, 2, cells, 1.0, 7).unwrap();
    plan.granularities = Granularities {
        g1: cells,
        g2: cells.min(16),
    };
    assert_eq!(plan.groups[0], GroupTarget::OneD { attr: 0 });
    plan
}

/// Synthetic reports, all for group 0 (the 256-cell grid): hashed-domain
/// values under well-mixed seeds, i.e. the same work profile as real
/// traffic without paying client-side perturbation in the bench loop.
fn synthetic_reports(n: usize) -> Vec<Report> {
    (0..n as u64)
        .map(|i| Report {
            group: 0,
            seed: mix64(i),
            y: mix64(i ^ 0xF00D) % 4,
        })
        .collect()
}

fn bench_sharded_ingest(c: &mut Criterion) {
    let cells = 256usize;
    let n = 20_000usize;
    let plan = plan_with_cells(cells);
    let reports = synthetic_reports(n);
    let max_shards = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);

    let mut group = c.benchmark_group(format!("ingest_{cells}cells"));
    group.throughput(Throughput::Elements(n as u64));
    let mut shard_counts = vec![1usize, 2, 4];
    if !shard_counts.contains(&max_shards) {
        shard_counts.push(max_shards);
    }
    for shards in shard_counts {
        group.bench_with_input(
            BenchmarkId::new("shards", shards),
            &reports,
            |b, reports| {
                b.iter(|| {
                    let mut collector = Collector::new(plan.clone()).unwrap();
                    collector.ingest_batch(black_box(reports), shards).unwrap();
                    black_box(collector.report_count())
                })
            },
        );
    }
    group.finish();
}

/// Micro-bench of the OLH support kernel itself, isolated from wire decode
/// and collector plumbing: for each grid size `cells` and report-batch
/// length, the block-transposed batch kernel vs folding the same reports
/// through the single-report wrapper. The gap is the win from hoisting the
/// value premix, the branchless register accumulator, and streaming the
/// supports array once per block instead of once per report.
fn bench_support_kernel(c: &mut Criterion) {
    for cells in [64usize, 256, 1024] {
        let olh = Olh::new(1.0, cells).unwrap();
        let mut group = c.benchmark_group(format!("kernel_{cells}cells"));
        for n in [64usize, 1024, 16384] {
            let pairs: Vec<(u64, u64)> = (0..n as u64)
                .map(|i| (mix64(i), mix64(i ^ 0xF00D) % 4))
                .collect();
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(BenchmarkId::new("batched", n), &pairs, |b, pairs| {
                b.iter(|| {
                    let mut supports = vec![0u64; cells];
                    olh.add_support_batch(black_box(pairs), &mut supports);
                    black_box(supports)
                })
            });
            group.bench_with_input(BenchmarkId::new("per_report", n), &pairs, |b, pairs| {
                b.iter(|| {
                    let mut supports = vec![0u64; cells];
                    for &(seed, y) in black_box(pairs).iter() {
                        olh.add_support(seed, y as u32, &mut supports);
                    }
                    black_box(supports)
                })
            });
        }
        group.finish();
    }
}

/// GRR vs OLH through the `FrequencyOracle` trait — the cost profile the
/// adaptive policy trades between. OLH pays `O(cells)` hash evaluations
/// per report (amortized by the block-transposed kernel); GRR pays one
/// counter bump per report regardless of the grid size, which is why the
/// paper's rule hands small domains to GRR. Dispatch is through trait
/// objects, so the numbers include exactly what the collector's per-group
/// accumulators pay.
fn bench_grr_vs_olh_kernel(c: &mut Criterion) {
    let n = 16_384usize;
    let pairs: Vec<(u64, u64)> = (0..n as u64)
        .map(|i| (mix64(i), mix64(i ^ 0xF00D) % 4))
        .collect();
    for cells in [64usize, 256, 1024] {
        let olh = Olh::new(1.0, cells).unwrap();
        let grr = Grr::new(1.0, cells).unwrap();
        let oracles: [(&str, &dyn FrequencyOracle); 2] = [("olh", &olh), ("grr", &grr)];
        let mut group = c.benchmark_group(format!("oracle_kernel_{cells}cells"));
        group.throughput(Throughput::Elements(n as u64));
        for (name, oracle) in oracles {
            group.bench_with_input(BenchmarkId::new(name, n), &pairs, |b, pairs| {
                b.iter(|| {
                    let mut supports = vec![0u64; cells];
                    oracle.add_support_batch(black_box(pairs), &mut supports);
                    black_box(supports)
                })
            });
        }
        group.finish();
    }
}

/// The streaming overheads on top of plain batch ingestion: ingesting the
/// same wire stream through `EpochCollector::ingest_stream_epochs` with no
/// mid-stream cuts (pure drain-and-swap bookkeeping) vs cutting a
/// cumulative snapshot every 4_000 reports (each cut pays a merge plus a
/// full finalize), and the cost of fanning two half-streams back in via
/// the `CollectorState` wire frame.
fn bench_epoch_streaming(c: &mut Criterion) {
    let cells = 256usize;
    let n = 20_000usize;
    let plan = plan_with_cells(cells);
    let reports = synthetic_reports(n);
    let mut wire = bytes::BytesMut::new();
    for chunk in reports.chunks(10_000) {
        Batch::new(chunk.to_vec()).encode(&mut wire);
    }
    let wire = wire.freeze();

    let mut group = c.benchmark_group(format!("epoch_stream_{cells}cells"));
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("no_cuts", |b| {
        b.iter(|| {
            let mut collector = EpochCollector::new(plan.clone()).unwrap();
            collector
                .ingest_stream_epochs(black_box(wire.clone()), 1, u64::MAX, |_| {})
                .unwrap();
            black_box(collector.report_count())
        })
    });
    group.bench_function("cut_every_4000", |b| {
        b.iter(|| {
            let mut collector = EpochCollector::new(plan.clone()).unwrap();
            let mut cuts = 0usize;
            collector
                .ingest_stream_epochs(black_box(wire.clone()), 1, 4_000, |cut| {
                    cuts += 1;
                    black_box(cut.snapshot);
                })
                .unwrap();
            black_box((collector.report_count(), cuts))
        })
    });
    group.bench_function("fan_in_merge", |b| {
        // The CollectorState frame reconstructs its plan from the encoded
        // (n, d, c, ε, seed), so this leg needs a guideline-consistent
        // plan — the fixed-geometry override above would fail the frame's
        // geometry validation on decode.
        let plan = SessionPlan::new(1_000_000, 2, cells, 1.0, 7).unwrap();
        let halves: Vec<Collector> = reports
            .chunks(n / 2)
            .map(|chunk| {
                let mut half = Collector::new(plan.clone()).unwrap();
                half.ingest_batch(chunk, 1).unwrap();
                half
            })
            .collect();
        let frames: Vec<bytes::Bytes> = halves
            .iter()
            .map(privmdr_protocol::collector_state_to_bytes)
            .collect();
        b.iter(|| {
            let mut merged = Collector::new(plan.clone()).unwrap();
            for frame in &frames {
                merged.merge_state(&mut black_box(frame.clone())).unwrap();
            }
            black_box(merged.report_count())
        })
    });
    group.finish();
}

/// End-to-end wire stream → fitted counters, both ingestion paths: the
/// borrowing `FrameCursor` route (what `ingest_stream_sharded` takes for
/// a contiguous buffer — frames validated in place, `(seed, y)` pairs fed
/// to the support kernel straight from the wire bytes) vs decoding the
/// stream to a `Vec<Report>` first (what fragmented buffers pay). The
/// final state is bit-identical by construction; the gap is the
/// materialization cost.
fn bench_wire_ingest(c: &mut Criterion) {
    let cells = 256usize;
    let n = 20_000usize;
    let plan = plan_with_cells(cells);
    let reports = synthetic_reports(n);
    let mut wire = bytes::BytesMut::new();
    for chunk in reports.chunks(10_000) {
        Batch::new(chunk.to_vec()).encode(&mut wire);
    }
    let wire = wire.freeze();

    let mut group = c.benchmark_group(format!("wire_ingest_{cells}cells"));
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("zero_copy", |b| {
        b.iter(|| {
            let mut collector = Collector::new(plan.clone()).unwrap();
            collector
                .ingest_stream_sharded(black_box(wire.clone()), 1)
                .unwrap();
            black_box(collector.report_count())
        })
    });
    group.bench_function("decode_to_vec", |b| {
        b.iter(|| {
            let mut collector = Collector::new(plan.clone()).unwrap();
            let decoded = Batch::decode_stream(black_box(wire.clone())).unwrap();
            collector.ingest_batch(&decoded, 1).unwrap();
            black_box(collector.report_count())
        })
    });
    group.finish();
}

fn bench_wire_decode(c: &mut Criterion) {
    let n = 50_000usize;
    let reports = synthetic_reports(n);
    let mut group = c.benchmark_group("wire_decode");
    group.throughput(Throughput::Elements(n as u64));

    let mut legacy = bytes::BytesMut::new();
    for r in &reports {
        r.encode(&mut legacy);
    }
    let legacy = legacy.freeze();
    group.bench_function("legacy_17B", |b| {
        b.iter(|| black_box(Report::decode_stream(legacy.clone())).unwrap())
    });

    let mut batched = bytes::BytesMut::new();
    for chunk in reports.chunks(10_000) {
        Batch::new(chunk.to_vec()).encode(&mut batched);
    }
    let batched = batched.freeze();
    group.bench_function("batch_16B", |b| {
        b.iter(|| black_box(Batch::decode_stream(batched.clone())).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sharded_ingest,
    bench_support_kernel,
    bench_grr_vs_olh_kernel,
    bench_epoch_streaming,
    bench_wire_ingest,
    bench_wire_decode
);
criterion_main!(benches);
