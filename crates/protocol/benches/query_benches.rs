//! Throughput of the query-serving engine: queries/sec through the sharded
//! `QueryServer` at increasing shard counts and query dimensions, plus the
//! wire cost of the serving frames.
//!
//! The headline number is `serve/λ=L/shards=K`: answering is read-only and
//! embarrassingly parallel, so on an M-core machine queries/sec should
//! scale close to linearly until K exceeds M (shards are capped to
//! available cores by `par_map`; on a single-core runner all shard counts
//! collapse to the serial figure). λ = 1 and 2 are direct grid lookups;
//! λ = 3 pays the Algorithm-2 estimation loop per query.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use privmdr_core::snapshot::ModelSnapshot;
use privmdr_core::EstimatorKind;
use privmdr_grid::guideline::Granularities;
use privmdr_grid::pairs::pair_count;
use privmdr_protocol::wire::{decode_snapshot, snapshot_to_bytes};
use privmdr_protocol::{
    encode_session_open, encode_session_route, AnswerBatch, QueryBatch, QueryServer, ServedNode,
};
use privmdr_query::workload::WorkloadBuilder;
use std::hint::black_box;

/// A deterministic snapshot with a fixed geometry (no fitting in the bench
/// path): skewed but consistent product-ish frequencies over d=4, c=64.
fn bench_snapshot() -> ModelSnapshot {
    bench_snapshot_dims(4)
}

/// [`bench_snapshot`] generalized over the attribute count, for the
/// high-λ estimator sweep.
fn bench_snapshot_dims(d: usize) -> ModelSnapshot {
    let (c, g1, g2) = (64usize, 16usize, 4usize);
    let marginal = |t: usize, i: usize| -> f64 {
        // Distinct skew per attribute, normalized over g1 cells.
        let w = (1.0 + ((i * (t + 2)) % g1) as f64) / g1 as f64;
        w / ((0..g1)
            .map(|j| (1.0 + ((j * (t + 2)) % g1) as f64) / g1 as f64)
            .sum::<f64>())
    };
    let one_d: Vec<Vec<f64>> = (0..d)
        .map(|t| (0..g1).map(|i| marginal(t, i)).collect())
        .collect();
    let block = |t: usize, a: usize| -> f64 {
        let per = g1 / g2;
        (0..per).map(|i| marginal(t, a * per + i)).sum()
    };
    let two_d: Vec<Vec<f64>> = privmdr_grid::pairs::pair_list(d)
        .into_iter()
        .map(|(j, k)| {
            (0..g2 * g2)
                .map(|idx| block(j, idx / g2) * block(k, idx % g2))
                .collect()
        })
        .collect();
    assert_eq!(two_d.len(), pair_count(d));
    ModelSnapshot::from_parts(
        d,
        c,
        Granularities { g1, g2 },
        EstimatorKind::WeightedUpdate,
        1e-7,
        100,
        1e-7,
        100,
        one_d,
        two_d,
    )
    .unwrap()
}

fn bench_sharded_serving(c: &mut Criterion) {
    let snap = bench_snapshot();
    let n_queries = 4_000usize;
    let max_shards = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let mut shard_counts = vec![1usize, 2, 4];
    if !shard_counts.contains(&max_shards) {
        shard_counts.push(max_shards);
    }

    for lambda in [1usize, 2, 3] {
        let server = QueryServer::new(&snap).unwrap();
        let queries =
            WorkloadBuilder::new(snap.d, snap.c, 31 + lambda as u64).random(lambda, 0.5, n_queries);
        // One short warm-up pass outside the timed loop: steady-state
        // serving is what the bench measures.
        black_box(server.answer_workload(&queries[..1.max(queries.len() / 100)], 1));

        let mut group = c.benchmark_group(format!("serve/lambda={lambda}"));
        group.throughput(Throughput::Elements(n_queries as u64));
        for &shards in &shard_counts {
            group.bench_with_input(
                BenchmarkId::new("shards", shards),
                &queries,
                |b, queries| {
                    b.iter(|| black_box(server.answer_workload(black_box(queries), shards)))
                },
            );
        }
        group.finish();
    }
}

fn bench_serving_wire(c: &mut Criterion) {
    let snap = bench_snapshot();
    let mut group = c.benchmark_group("serving_wire");

    let snap_bytes = snapshot_to_bytes(&snap);
    group.bench_function("snapshot_decode", |b| {
        b.iter(|| black_box(decode_snapshot(&mut snap_bytes.clone())).unwrap())
    });

    let n_queries = 4_000usize;
    let queries = WorkloadBuilder::new(snap.d, snap.c, 77).random(2, 0.5, n_queries);
    let request = QueryBatch::new(snap.c, queries).to_bytes();
    group.throughput(Throughput::Elements(n_queries as u64));
    group.bench_function("query_batch_decode", |b| {
        b.iter(|| black_box(QueryBatch::decode(&mut request.clone())).unwrap())
    });

    let answers = AnswerBatch::new(vec![0.25f64; n_queries]).to_bytes();
    group.bench_function("answer_batch_decode", |b| {
        b.iter(|| black_box(AnswerBatch::decode(&mut answers.clone())).unwrap())
    });
    group.finish();
}

/// The multi-tenant serving tier on a repeated-query workload: one session
/// routed the same λ=2 batch through `ServedNode`, with the per-tenant LRU
/// answer cache warm versus disabled. The cached figure should sit well
/// above the uncached one — a warm pass is a key build + one locked LRU
/// probe per query, no grid arithmetic.
fn bench_served_tier(c: &mut Criterion) {
    let snap = bench_snapshot();
    let n_queries = 4_000usize;
    let queries = WorkloadBuilder::new(snap.d, snap.c, 59).random(2, 0.5, n_queries);
    let mut round = BytesMut::new();
    encode_session_route(9, &QueryBatch::new(snap.c, queries), &mut round);
    let round = round.freeze();

    let mut group = c.benchmark_group("served");
    group.throughput(Throughput::Elements(n_queries as u64));
    for (name, cap) in [("uncached", 0usize), ("cached_warm", 8192)] {
        let node = ServedNode::new(cap, 1);
        let mut open = BytesMut::new();
        encode_session_open(9, &snap, &mut open);
        node.serve_stream(open.freeze(), |_, _| {}).unwrap();
        // One pass outside the clock: fills the answer cache (cached
        // mode), so the loop measures steady state.
        node.serve_stream(round.clone(), |_, _| {}).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    node.serve_stream(black_box(round.clone()), |_, _| {})
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

/// The ISSUE-10 estimator micro-sweep: planned batch answering (pair-
/// grouped rectangles + lane-parallel Weighted Update) versus the
/// per-query scalar path, across λ and batch size on a d=6 snapshot.
/// `planned` should pull ahead of `per_query` from batch size 8 (one full
/// SIMD block) onward and the gap should widen with λ; at batch size 1
/// the two paths coincide (the planner falls back to per-query).
fn bench_estimator_planner(c: &mut Criterion) {
    let snap = bench_snapshot_dims(6);
    let server = QueryServer::new(&snap).unwrap();
    for lambda in [3usize, 4, 5, 6] {
        let mut group = c.benchmark_group(format!("estimator/lambda={lambda}"));
        for batch in [1usize, 8, 64, 512] {
            let queries =
                WorkloadBuilder::new(snap.d, snap.c, 91 + lambda as u64).random(lambda, 0.5, batch);
            group.throughput(Throughput::Elements(batch as u64));
            group.bench_with_input(
                BenchmarkId::new("planned", batch),
                &queries,
                |b, queries| b.iter(|| black_box(server.answer_workload(black_box(queries), 1))),
            );
            group.bench_with_input(
                BenchmarkId::new("per_query", batch),
                &queries,
                |b, queries| {
                    b.iter(|| {
                        queries
                            .iter()
                            .map(|q| server.model().answer(black_box(q)))
                            .collect::<Vec<f64>>()
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(
    benches,
    bench_sharded_serving,
    bench_serving_wire,
    bench_served_tier,
    bench_estimator_planner
);
criterion_main!(benches);
