//! Zero-copy wire-frame cursor: borrow `(seed, y)` pairs straight out of
//! an ingest buffer.
//!
//! [`wire::decode_any_stream_tagged`] materializes every report into a
//! `Vec<Report>` before the collector partitions it by group — at 10⁶
//! reports that is a second full-stream write and re-read for no semantic
//! gain, since the batch bodies are already fixed-stride little-endian
//! records. [`FrameCursor`] walks the same frames with the same validation
//! (same checks, same error values, same order) but *borrows*: each
//! [`ReportFrame`] it yields is a window over the caller's buffer, and the
//! collector reads groups and `(seed, y)` pairs directly from those bytes
//! into the partition pass and the support kernel. The decode-to-`Vec`
//! path remains in `wire` for fragmented (non-contiguous) buffers and as
//! the reference the equivalence suite (`tests/cursor_prop.rs`) pins this
//! module against: both paths must accept exactly the same streams, reject
//! exactly the same garbage, and produce bit-identical collector state.

use crate::wire::{self, approach_from_wire_byte, oracle_from_wire_byte, MechanismTag, Report};
use crate::ProtocolError;

#[inline]
fn le_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4-byte window"))
}

#[inline]
fn le_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8-byte window"))
}

/// A validated run of report bodies borrowed from the input buffer: the
/// payload of one [`wire::Batch`] frame (or a single standalone report),
/// with the frame header already checked and stripped. Accessors decode
/// fields on the fly from the fixed-stride little-endian bodies — nothing
/// is materialized.
#[derive(Debug, Clone, Copy)]
pub struct ReportFrame<'a> {
    /// `count` consecutive report bodies (16 B narrow / 20 B wide each).
    bodies: &'a [u8],
    count: usize,
    wide: bool,
    tag: MechanismTag,
}

impl<'a> ReportFrame<'a> {
    /// Number of reports in the frame.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether the frame holds no reports.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The frame's mechanism tag (untagged v1 frames imply the default).
    pub fn tag(&self) -> MechanismTag {
        self.tag
    }

    #[inline]
    fn body_len(&self) -> usize {
        if self.wide {
            wire::WIDE_REPORT_BODY_LEN
        } else {
            wire::REPORT_BODY_LEN
        }
    }

    /// The `i`-th report's group index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= count()`.
    #[inline]
    pub fn group_at(&self, i: usize) -> u32 {
        debug_assert!(i < self.count);
        le_u32(self.bodies, i * self.body_len())
    }

    /// The `i`-th report's `(seed, y)` pair, exactly as the decode-to-`Vec`
    /// path would produce it (narrow `y` zero-extends from `u32`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= count()`.
    #[inline]
    pub fn pair_at(&self, i: usize) -> (u64, u64) {
        debug_assert!(i < self.count);
        let at = i * self.body_len();
        let seed = le_u64(self.bodies, at + 4);
        let y = if self.wide {
            le_u64(self.bodies, at + 12)
        } else {
            u64::from(le_u32(self.bodies, at + 12))
        };
        (seed, y)
    }

    /// The `i`-th report, materialized (for the fallback interop and
    /// equivalence tests).
    ///
    /// # Panics
    ///
    /// Panics if `i >= count()`.
    pub fn report_at(&self, i: usize) -> Report {
        let (seed, y) = self.pair_at(i);
        Report {
            group: self.group_at(i),
            seed,
            y,
        }
    }

    /// A sub-window of `len` reports starting at `start` — how the epoch
    /// collector splits a frame exactly at an epoch boundary without
    /// copying it.
    ///
    /// # Panics
    ///
    /// Panics if `start + len > count()`.
    pub fn slice(&self, start: usize, len: usize) -> ReportFrame<'a> {
        assert!(start + len <= self.count, "frame slice out of bounds");
        let body_len = self.body_len();
        ReportFrame {
            bodies: &self.bodies[start * body_len..(start + len) * body_len],
            count: len,
            wide: self.wide,
            tag: self.tag,
        }
    }
}

/// How the cursor resolves the framing of the byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Framing {
    /// Undecided: commit on the first frame's leading byte, exactly like
    /// [`wire::decode_any_stream_tagged`] (a batch-framed stream then
    /// rejects standalone reports and vice versa).
    Auto,
    /// Re-detect per frame — the streaming epoch path's semantics
    /// ([`crate::stream::EpochCollector::ingest_stream_epochs`] accepts
    /// interleaved framings).
    PerFrame,
    /// Committed to length-prefixed [`wire::Batch`] frames.
    Batches,
    /// Committed to concatenated standalone reports.
    Reports,
}

/// A borrowing frame walker over a contiguous wire buffer. Performs the
/// same validation as the `wire` decoders — header presence, batch tag,
/// version, mechanism discriminants, tag/width agreement, and the
/// division-based count-vs-payload check, in the same order with the same
/// error values — but yields borrowed [`ReportFrame`] windows instead of
/// allocating `Vec<Report>`. Never panics on truncated or garbage input.
#[derive(Debug)]
pub struct FrameCursor<'a> {
    rest: &'a [u8],
    framing: Framing,
}

impl<'a> FrameCursor<'a> {
    /// A cursor with one-shot stream semantics: the first frame's leading
    /// byte commits the whole stream to batch framing or standalone
    /// reports, mirroring [`wire::decode_any_stream_tagged`].
    pub fn new(bytes: &'a [u8]) -> Self {
        FrameCursor {
            rest: bytes,
            framing: Framing::Auto,
        }
    }

    /// A cursor with streaming semantics: framing is re-detected per
    /// frame, mirroring the epoch collector's frame-by-frame loop.
    pub fn mixed(bytes: &'a [u8]) -> Self {
        FrameCursor {
            rest: bytes,
            framing: Framing::PerFrame,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    /// Validates and yields the next frame, advancing past it; `Ok(None)`
    /// at a clean end of stream. After an error the cursor is left at the
    /// offending frame (nothing was consumed), so callers can abort with
    /// earlier frames already processed — the streaming semantics.
    pub fn next_frame(&mut self) -> Result<Option<ReportFrame<'a>>, ProtocolError> {
        if self.rest.is_empty() {
            return Ok(None);
        }
        let leads_batch = self.rest[0] == wire::BATCH_TAG;
        let as_batch = match self.framing {
            Framing::Auto => {
                self.framing = if leads_batch {
                    Framing::Batches
                } else {
                    Framing::Reports
                };
                leads_batch
            }
            Framing::PerFrame => leads_batch,
            Framing::Batches => true,
            Framing::Reports => false,
        };
        if as_batch {
            self.next_batch_frame().map(Some)
        } else {
            self.next_report_frame().map(Some)
        }
    }

    /// Mirrors [`wire::Batch::decode`] without materializing the reports.
    fn next_batch_frame(&mut self) -> Result<ReportFrame<'a>, ProtocolError> {
        let b = self.rest;
        if b.len() < wire::BATCH_HEADER_LEN {
            return Err(ProtocolError::Malformed("truncated batch header"));
        }
        if b[0] != wire::BATCH_TAG {
            return Err(ProtocolError::Malformed("not a batch frame"));
        }
        let version = b[1];
        let (tag, wide, header_len) = match version {
            wire::WIRE_VERSION => (MechanismTag::DEFAULT, false, wire::BATCH_HEADER_LEN),
            wire::WIRE_VERSION_TAGGED | wire::WIRE_VERSION_WIDE => {
                if b.len() < wire::TAGGED_BATCH_HEADER_LEN {
                    return Err(ProtocolError::Malformed("truncated batch header"));
                }
                let tag = MechanismTag {
                    oracle: oracle_from_wire_byte(b[2])?,
                    approach: approach_from_wire_byte(b[3])?,
                };
                match (version == wire::WIRE_VERSION_WIDE, tag.is_wide()) {
                    (false, true) => {
                        return Err(ProtocolError::Malformed(
                            "float-carrying oracle in a narrow frame",
                        ))
                    }
                    (true, false) => {
                        return Err(ProtocolError::Malformed("integer oracle in a wide frame"))
                    }
                    _ => {}
                }
                (
                    tag,
                    version == wire::WIRE_VERSION_WIDE,
                    wire::TAGGED_BATCH_HEADER_LEN,
                )
            }
            _ => return Err(ProtocolError::Malformed("unsupported wire version")),
        };
        let body_len = if wide {
            wire::WIDE_REPORT_BODY_LEN
        } else {
            wire::REPORT_BODY_LEN
        };
        let count = le_u32(b, header_len - 4) as usize;
        let payload = &b[header_len..];
        // Same attacker-controlled-count rule as `Batch::decode`: validate
        // by division so a huge count cannot overflow the byte math.
        if payload.len() / body_len < count {
            return Err(ProtocolError::Malformed("batch shorter than its count"));
        }
        let body_bytes = count * body_len;
        self.rest = &payload[body_bytes..];
        Ok(ReportFrame {
            bodies: &payload[..body_bytes],
            count,
            wide,
            tag,
        })
    }

    /// Mirrors [`wire::Report::decode_with_tag`] as a one-report frame.
    fn next_report_frame(&mut self) -> Result<ReportFrame<'a>, ProtocolError> {
        let b = self.rest;
        debug_assert!(!b.is_empty(), "checked by next_frame");
        match b[0] {
            wire::WIRE_VERSION => {
                if b.len() < wire::REPORT_LEN {
                    return Err(ProtocolError::Malformed("truncated report"));
                }
                self.rest = &b[wire::REPORT_LEN..];
                Ok(ReportFrame {
                    bodies: &b[1..wire::REPORT_LEN],
                    count: 1,
                    wide: false,
                    tag: MechanismTag::DEFAULT,
                })
            }
            wire::WIRE_VERSION_TAGGED => {
                if b.len() < wire::TAGGED_REPORT_LEN {
                    return Err(ProtocolError::Malformed("truncated tagged report"));
                }
                let tag = MechanismTag {
                    oracle: oracle_from_wire_byte(b[1])?,
                    approach: approach_from_wire_byte(b[2])?,
                };
                if tag.is_wide() {
                    return Err(ProtocolError::Malformed(
                        "float-carrying oracle in a narrow frame",
                    ));
                }
                self.rest = &b[wire::TAGGED_REPORT_LEN..];
                Ok(ReportFrame {
                    bodies: &b[3..wire::TAGGED_REPORT_LEN],
                    count: 1,
                    wide: false,
                    tag,
                })
            }
            wire::WIRE_VERSION_WIDE => {
                if b.len() < wire::WIDE_REPORT_LEN {
                    return Err(ProtocolError::Malformed("truncated wide report"));
                }
                let tag = MechanismTag {
                    oracle: oracle_from_wire_byte(b[1])?,
                    approach: approach_from_wire_byte(b[2])?,
                };
                if !tag.is_wide() {
                    return Err(ProtocolError::Malformed("integer oracle in a wide frame"));
                }
                self.rest = &b[wire::WIDE_REPORT_LEN..];
                Ok(ReportFrame {
                    bodies: &b[3..wire::WIDE_REPORT_LEN],
                    count: 1,
                    wide: true,
                    tag,
                })
            }
            _ => Err(ProtocolError::Malformed("unsupported wire version")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn reports(n: usize) -> Vec<Report> {
        (0..n as u64)
            .map(|i| Report {
                group: (i % 3) as u32,
                seed: privmdr_util::mix64(i),
                y: privmdr_util::mix64(i ^ 7) % 4,
            })
            .collect()
    }

    #[test]
    fn batch_frame_yields_the_encoded_pairs() {
        let rs = reports(10);
        let mut buf = BytesMut::new();
        wire::Batch::new(rs.clone()).encode(&mut buf);
        let mut cursor = FrameCursor::new(&buf);
        let frame = cursor.next_frame().unwrap().unwrap();
        assert_eq!(frame.count(), 10);
        assert_eq!(frame.tag(), MechanismTag::DEFAULT);
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(frame.report_at(i), *r);
        }
        assert!(cursor.next_frame().unwrap().is_none());
    }

    #[test]
    fn slice_windows_match_direct_indexing() {
        let rs = reports(9);
        let mut buf = BytesMut::new();
        wire::Batch::new(rs).encode(&mut buf);
        let mut cursor = FrameCursor::new(&buf);
        let frame = cursor.next_frame().unwrap().unwrap();
        let window = frame.slice(3, 4);
        assert_eq!(window.count(), 4);
        for i in 0..4 {
            assert_eq!(window.report_at(i), frame.report_at(3 + i));
        }
    }

    #[test]
    fn committed_framing_rejects_mixed_streams_like_the_vec_path() {
        let rs = reports(2);
        let mut buf = BytesMut::new();
        wire::Batch::new(rs.clone()).encode(&mut buf);
        rs[0].encode(&mut buf);
        // decode_any_stream_tagged commits to batch framing on the first
        // byte and then rejects the standalone report.
        assert!(wire::decode_any_stream_tagged(&buf[..]).is_err());
        let mut cursor = FrameCursor::new(&buf);
        cursor.next_frame().unwrap().unwrap();
        assert!(cursor.next_frame().is_err());
        // The per-frame cursor (epoch semantics) accepts the same stream.
        let mut mixed = FrameCursor::mixed(&buf);
        assert_eq!(mixed.next_frame().unwrap().unwrap().count(), 2);
        assert_eq!(mixed.next_frame().unwrap().unwrap().count(), 1);
        assert!(mixed.next_frame().unwrap().is_none());
    }

    #[test]
    fn truncated_and_garbage_inputs_error_without_consuming() {
        let rs = reports(5);
        let mut buf = BytesMut::new();
        wire::Batch::new(rs).encode(&mut buf);
        for cut in 1..buf.len() {
            let mut cursor = FrameCursor::new(&buf[..cut]);
            let before = cursor.remaining();
            assert!(cursor.next_frame().is_err(), "cut={cut}");
            assert_eq!(cursor.remaining(), before, "cut={cut} consumed bytes");
        }
        let mut garbage = FrameCursor::new(&[0x42, 0, 0, 0]);
        assert!(garbage.next_frame().is_err());
    }
}
