//! Binary wire format for client reports.
//!
//! One standalone report is exactly 17 bytes:
//!
//! ```text
//! +--------+----------------+----------------------+-----------+
//! | ver:u8 | group: u32 LE  | hash seed: u64 LE    | y: u32 LE |
//! +--------+----------------+----------------------+-----------+
//! ```
//!
//! `seed` identifies the user's OLH hash function and `y` is the
//! GRR-randomized hashed value — together the complete (and only) content
//! of an OLH report (paper §2.2). Everything else (ε, grid geometry) is
//! public plan state, so it never travels with the report.
//!
//! At collection scale (~10⁶ users) reports arrive in bulk, so the format
//! also defines a length-prefixed [`Batch`] frame that amortizes the
//! version byte and lets the server hand a whole slab of reports to the
//! sharded ingestion path in one decode:
//!
//! ```text
//! +-----------+--------+--------------+  count × 16-byte bodies
//! | tag: 0xB1 | ver:u8 | count:u32 LE |  (group, seed, y — no version)
//! +-----------+--------+--------------+
//! ```
//!
//! The tag byte `0xB1` can never open a standalone report (whose first
//! byte is [`WIRE_VERSION`]), so a stream of frames is self-describing:
//! the decoder peeks one byte to tell the two framings apart.
//!
//! # Mechanism discriminant (wire version 2)
//!
//! Sessions are no longer hardwired to OLH/HDG, so the report-carrying
//! frames gain a version-2 form that carries a [`MechanismTag`] — the
//! session's oracle policy and estimation approach — right after the
//! version byte. Version-1 frames remain decodable and *imply* the
//! default tag (OLH/HDG), so pre-existing streams keep their meaning;
//! encoders emit version 1 whenever the tag is the default, keeping the
//! OLH/HDG byte stream bit-identical to earlier releases. A standalone
//! tagged report is 19 bytes (`ver:2, oracle:u8, approach:u8, body`); a
//! tagged batch header is 8 bytes (`0xB1, ver:2, oracle:u8, approach:u8,
//! count:u32`). Decoders reject unknown discriminant values, and the
//! tagged stream decoders additionally reject streams whose frames
//! disagree with each other — the collector then checks the stream's tag
//! against its plan, so a GRR stream can never be mis-aggregated by an
//! OLH session (or vice versa).
//!
//! # Wide reports (wire version 3)
//!
//! The Wheel and Square Wave oracles report a *float* — Wheel's `(seed,
//! y ∈ [0,1))` pair, SW's padded-interval sample — so their `y` travels
//! as the full 8 IEEE-754 bits rather than the 4-byte integer the
//! GRR/OLH bodies carry. Frames whose [`MechanismTag`] names a
//! float-carrying oracle use wire version 3: the same header layout as
//! version 2 (so a wide batch header is still 8 bytes) followed by
//! 20-byte bodies (`group:u32, seed:u64, y:u64 LE`); a standalone wide
//! report is 23 bytes. The pairing of tag and width is enforced in both
//! directions — a wheel/sw discriminant inside a version-1/2 frame and a
//! grr/olh/auto discriminant inside a version-3 frame are both rejected —
//! so every byte stream has exactly one valid framing, and version-1/2
//! streams keep decoding byte-identically to earlier releases.
//!
//! # Query-serving frames
//!
//! The read path adds three more tag-versioned frames, all following the
//! same garbage-robustness contract as [`Batch`] (length prefixes are
//! validated against the actual payload before any allocation; malformed
//! bytes always surface as [`ProtocolError`], never a panic):
//!
//! * **Snapshot** (tag `0xC5`) — a finalized `privmdr_core` fit
//!   ([`ModelSnapshot`]): geometry + estimation settings header, then the
//!   post-processed grid frequencies as raw `f64` bits (exact round-trip).
//! * **[`QueryBatch`]** (tag `0xD7`) — a batch of λ-dimensional range
//!   queries over a shared domain `c`; each query is λ `(attr, lo, hi)`
//!   predicates and is re-validated through `RangeQuery`'s own invariants
//!   on decode.
//! * **[`AnswerBatch`]** (tag `0xA7`) — the matching answers as raw `f64`
//!   bits, in query order.

use crate::ProtocolError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use privmdr_core::snapshot::{validate_shape, ModelSnapshot};
use privmdr_core::{ApproachKind, EstimatorKind};
use privmdr_grid::guideline::Granularities;
use privmdr_grid::pairs::pair_count;
use privmdr_oracles::OraclePolicy;
use privmdr_query::RangeQuery;

/// Wire protocol version byte (untagged frames: OLH/HDG implied).
pub const WIRE_VERSION: u8 = 1;
/// Wire version byte of mechanism-tagged frames.
pub const WIRE_VERSION_TAGGED: u8 = 2;
/// Wire version byte of wide (float-carrying, always tagged) frames.
pub const WIRE_VERSION_WIDE: u8 = 3;
/// Encoded size of one standalone report.
pub const REPORT_LEN: usize = 17;
/// Encoded size of one standalone mechanism-tagged report.
pub const TAGGED_REPORT_LEN: usize = 19;
/// Encoded size of one standalone wide (version 3) report.
pub const WIDE_REPORT_LEN: usize = 23;
/// First byte of a [`Batch`] frame; distinct from [`WIRE_VERSION`] so the
/// two framings coexist in one stream.
pub const BATCH_TAG: u8 = 0xB1;
/// Encoded size of a batch header (tag, version, count).
pub const BATCH_HEADER_LEN: usize = 6;
/// Encoded size of a mechanism-tagged batch header (tag, version, oracle,
/// approach, count).
pub const TAGGED_BATCH_HEADER_LEN: usize = 8;
/// Encoded size of one report body inside a batch (no version byte).
pub const REPORT_BODY_LEN: usize = 16;
/// Encoded size of one wide report body inside a version-3 batch.
pub const WIDE_REPORT_BODY_LEN: usize = 20;

/// The session-mechanism discriminant carried by version-2 frames: which
/// frequency-oracle policy randomized the reports and which estimation
/// approach the session finalizes into. Version-1 frames imply
/// [`MechanismTag::DEFAULT`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MechanismTag {
    /// The session's frequency-oracle policy.
    pub oracle: OraclePolicy,
    /// The session's estimation approach.
    pub approach: ApproachKind,
}

/// The one place the `OraclePolicy` wire byte is defined — every frame
/// that carries the discriminant encodes and decodes through this pair
/// (including the `CollectorState` frame in [`crate::stream`]).
pub(crate) fn oracle_wire_byte(oracle: OraclePolicy) -> u8 {
    match oracle {
        OraclePolicy::Olh => 0,
        OraclePolicy::Grr => 1,
        OraclePolicy::Auto => 2,
        OraclePolicy::Wheel => 3,
        OraclePolicy::Sw => 4,
    }
}

pub(crate) fn oracle_from_wire_byte(byte: u8) -> Result<OraclePolicy, ProtocolError> {
    match byte {
        0 => Ok(OraclePolicy::Olh),
        1 => Ok(OraclePolicy::Grr),
        2 => Ok(OraclePolicy::Auto),
        3 => Ok(OraclePolicy::Wheel),
        4 => Ok(OraclePolicy::Sw),
        _ => Err(ProtocolError::Malformed("unknown oracle discriminant")),
    }
}

/// The one place the `ApproachKind` wire byte is defined (the snapshot
/// frame and [`MechanismTag`] both go through this pair).
pub(crate) fn approach_wire_byte(approach: ApproachKind) -> u8 {
    match approach {
        ApproachKind::Hdg => 0,
        ApproachKind::Tdg => 1,
        ApproachKind::Msw => 2,
    }
}

pub(crate) fn approach_from_wire_byte(byte: u8) -> Result<ApproachKind, ProtocolError> {
    match byte {
        0 => Ok(ApproachKind::Hdg),
        1 => Ok(ApproachKind::Tdg),
        2 => Ok(ApproachKind::Msw),
        _ => Err(ProtocolError::Malformed("unknown approach discriminant")),
    }
}

impl MechanismTag {
    /// The tag version-1 frames imply: OLH reports, HDG estimation.
    pub const DEFAULT: MechanismTag = MechanismTag {
        oracle: OraclePolicy::Olh,
        approach: ApproachKind::Hdg,
    };

    /// Whether this is the implied default (and so encodes as version 1).
    pub fn is_default(&self) -> bool {
        *self == Self::DEFAULT
    }

    /// Whether this tag names a float-carrying oracle, and so frames wide
    /// (version 3, `y` as raw `f64` bits).
    pub fn is_wide(&self) -> bool {
        matches!(self.oracle, OraclePolicy::Wheel | OraclePolicy::Sw)
    }

    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(oracle_wire_byte(self.oracle));
        buf.put_u8(approach_wire_byte(self.approach));
    }

    /// Decodes the two discriminant bytes; the caller must have checked
    /// that they are present.
    fn decode(buf: &mut impl Buf) -> Result<Self, ProtocolError> {
        let oracle = oracle_from_wire_byte(buf.get_u8())?;
        let approach = approach_from_wire_byte(buf.get_u8())?;
        Ok(MechanismTag { oracle, approach })
    }
}

/// One user's randomized report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Report group (index into the plan's group list).
    pub group: u32,
    /// OLH/Wheel per-user hash seed (0 for GRR and SW).
    pub seed: u64,
    /// Perturbed value: the hashed `GRR_{c'}(H(v))` integer for OLH/GRR
    /// (always `< 2³²`), or the raw `f64` bits of the randomized float for
    /// the wide oracles (Wheel, SW).
    pub y: u64,
}

impl Report {
    /// Appends the encoded report to `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `y` exceeds `u32` — a float-carrying report must travel
    /// in a wide (version 3) frame via [`Report::encode_tagged`].
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.reserve(REPORT_LEN);
        buf.put_u8(WIRE_VERSION);
        self.encode_body(buf);
    }

    /// Encodes to a standalone buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(REPORT_LEN);
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Appends the mechanism-tagged encoding to `buf`. Like
    /// [`Batch::tagged`], the default tag canonicalizes to the version-1
    /// form — an OLH/HDG stream is the same bytes however it is built —
    /// and a wide tag (Wheel/SW) frames as version 3 with an 8-byte `y`.
    pub fn encode_tagged(&self, tag: &MechanismTag, buf: &mut BytesMut) {
        if tag.is_wide() {
            buf.reserve(WIDE_REPORT_LEN);
            buf.put_u8(WIRE_VERSION_WIDE);
            tag.encode(buf);
            self.encode_wide_body(buf);
            return;
        }
        if tag.is_default() {
            return self.encode(buf);
        }
        buf.reserve(TAGGED_REPORT_LEN);
        buf.put_u8(WIRE_VERSION_TAGGED);
        tag.encode(buf);
        self.encode_body(buf);
    }

    /// Decodes one report from the front of `buf`, advancing it. Accepts
    /// both wire versions; the mechanism tag of a version-2 report is
    /// validated and discarded (see [`Report::decode_with_tag`]).
    pub fn decode(buf: &mut impl Buf) -> Result<Self, ProtocolError> {
        Self::decode_with_tag(buf).map(|(report, _)| report)
    }

    /// Decodes one report plus its mechanism tag (`None` for version-1
    /// reports, which imply [`MechanismTag::DEFAULT`]).
    pub fn decode_with_tag(
        buf: &mut impl Buf,
    ) -> Result<(Self, Option<MechanismTag>), ProtocolError> {
        if !buf.has_remaining() {
            return Err(ProtocolError::Malformed("truncated report"));
        }
        match buf.chunk()[0] {
            WIRE_VERSION => {
                if buf.remaining() < REPORT_LEN {
                    return Err(ProtocolError::Malformed("truncated report"));
                }
                buf.advance(1);
                Ok((Report::decode_body(buf), None))
            }
            WIRE_VERSION_TAGGED => {
                if buf.remaining() < TAGGED_REPORT_LEN {
                    return Err(ProtocolError::Malformed("truncated tagged report"));
                }
                buf.advance(1);
                let tag = MechanismTag::decode(buf)?;
                if tag.is_wide() {
                    return Err(ProtocolError::Malformed(
                        "float-carrying oracle in a narrow frame",
                    ));
                }
                Ok((Report::decode_body(buf), Some(tag)))
            }
            WIRE_VERSION_WIDE => {
                if buf.remaining() < WIDE_REPORT_LEN {
                    return Err(ProtocolError::Malformed("truncated wide report"));
                }
                buf.advance(1);
                let tag = MechanismTag::decode(buf)?;
                if !tag.is_wide() {
                    return Err(ProtocolError::Malformed("integer oracle in a wide frame"));
                }
                Ok((Report::decode_wide_body(buf), Some(tag)))
            }
            _ => Err(ProtocolError::Malformed("unsupported wire version")),
        }
    }

    /// Decodes a whole stream of concatenated reports (either version).
    pub fn decode_stream(buf: impl Buf) -> Result<Vec<Report>, ProtocolError> {
        Self::decode_stream_tagged(buf).map(|(reports, _)| reports)
    }

    /// Decodes a stream of concatenated reports plus the stream's
    /// mechanism tag. Every report must agree on the tag (version-1
    /// reports imply the default), so a stream has one well-defined
    /// mechanism; `None` only for an empty stream.
    pub fn decode_stream_tagged(
        mut buf: impl Buf,
    ) -> Result<(Vec<Report>, Option<MechanismTag>), ProtocolError> {
        let mut out = Vec::with_capacity(buf.remaining() / REPORT_LEN);
        let mut stream_tag: Option<MechanismTag> = None;
        while buf.has_remaining() {
            let (report, tag) = Report::decode_with_tag(&mut buf)?;
            let tag = tag.unwrap_or(MechanismTag::DEFAULT);
            if *stream_tag.get_or_insert(tag) != tag {
                return Err(ProtocolError::Malformed(
                    "conflicting mechanism tags in stream",
                ));
            }
            out.push(report);
        }
        Ok((out, stream_tag))
    }

    fn encode_body(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.group);
        buf.put_u64_le(self.seed);
        buf.put_u32_le(u32::try_from(self.y).expect("wide report y in a narrow frame"));
    }

    fn decode_body(buf: &mut impl Buf) -> Report {
        let group = buf.get_u32_le();
        let seed = buf.get_u64_le();
        let y = buf.get_u32_le() as u64;
        Report { group, seed, y }
    }

    fn encode_wide_body(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.group);
        buf.put_u64_le(self.seed);
        buf.put_u64_le(self.y);
    }

    fn decode_wide_body(buf: &mut impl Buf) -> Report {
        let group = buf.get_u32_le();
        let seed = buf.get_u64_le();
        let y = buf.get_u64_le();
        Report { group, seed, y }
    }
}

/// A length-prefixed frame of reports — the bulk unit the sharded
/// ingestion path consumes (see the module docs for the layout).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Batch {
    /// The framed reports, in arrival order.
    pub reports: Vec<Report>,
    /// The session-mechanism discriminant: `None` encodes as version 1
    /// (OLH/HDG implied), `Some` as a version-2 tagged frame.
    pub mechanism: Option<MechanismTag>,
}

impl Batch {
    /// Wraps reports into an untagged (version 1, OLH/HDG) batch.
    pub fn new(reports: Vec<Report>) -> Self {
        Batch {
            reports,
            mechanism: None,
        }
    }

    /// Wraps reports into a mechanism-tagged batch. A default tag is
    /// normalized away — the tagged and untagged forms of an OLH/HDG
    /// session are the same value and the same bytes.
    pub fn tagged(reports: Vec<Report>, tag: MechanismTag) -> Self {
        Batch {
            reports,
            mechanism: (!tag.is_default()).then_some(tag),
        }
    }

    /// Encoded size of an untagged batch holding `count` reports (tagged
    /// frames add `TAGGED_BATCH_HEADER_LEN - BATCH_HEADER_LEN` bytes).
    pub fn encoded_len(count: usize) -> usize {
        BATCH_HEADER_LEN + count * REPORT_BODY_LEN
    }

    /// The non-default mechanism tag, if any. `encode` canonicalizes
    /// through this, so a hand-built `mechanism: Some(MechanismTag::
    /// DEFAULT)` still emits the version-1 bytes.
    fn effective_mechanism(&self) -> Option<MechanismTag> {
        self.mechanism.filter(|tag| !tag.is_default())
    }

    fn wire_len(&self) -> usize {
        let (header, body) = match self.effective_mechanism() {
            None => (BATCH_HEADER_LEN, REPORT_BODY_LEN),
            Some(tag) if tag.is_wide() => (TAGGED_BATCH_HEADER_LEN, WIDE_REPORT_BODY_LEN),
            Some(_) => (TAGGED_BATCH_HEADER_LEN, REPORT_BODY_LEN),
        };
        header + self.reports.len() * body
    }

    /// Appends the encoded frame to `buf`.
    ///
    /// # Panics
    ///
    /// Panics if the batch holds more than `u32::MAX` reports (the count
    /// prefix is 32-bit); split earlier than that.
    pub fn encode(&self, buf: &mut BytesMut) {
        let count = u32::try_from(self.reports.len()).expect("batch exceeds u32 count prefix");
        buf.reserve(self.wire_len());
        buf.put_u8(BATCH_TAG);
        let mut wide = false;
        match self.effective_mechanism() {
            None => buf.put_u8(WIRE_VERSION),
            Some(tag) => {
                wide = tag.is_wide();
                buf.put_u8(if wide {
                    WIRE_VERSION_WIDE
                } else {
                    WIRE_VERSION_TAGGED
                });
                tag.encode(buf);
            }
        }
        buf.put_u32_le(count);
        for r in &self.reports {
            if wide {
                r.encode_wide_body(buf);
            } else {
                r.encode_body(buf);
            }
        }
    }

    /// Encodes to a standalone buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Decodes one batch frame (either version) from the front of `buf`,
    /// advancing it. Never panics on truncated or garbage input — every
    /// malformed shape maps to a [`ProtocolError`].
    pub fn decode(buf: &mut impl Buf) -> Result<Self, ProtocolError> {
        if buf.remaining() < BATCH_HEADER_LEN {
            return Err(ProtocolError::Malformed("truncated batch header"));
        }
        let tag = buf.get_u8();
        if tag != BATCH_TAG {
            return Err(ProtocolError::Malformed("not a batch frame"));
        }
        let version = buf.get_u8();
        let mechanism = match version {
            WIRE_VERSION => None,
            WIRE_VERSION_TAGGED | WIRE_VERSION_WIDE => {
                // Tag + version are consumed; the tagged header needs the
                // two discriminant bytes and the count to still be there.
                if buf.remaining() < TAGGED_BATCH_HEADER_LEN - 2 {
                    return Err(ProtocolError::Malformed("truncated batch header"));
                }
                let tag = MechanismTag::decode(buf)?;
                match (version == WIRE_VERSION_WIDE, tag.is_wide()) {
                    (false, true) => {
                        return Err(ProtocolError::Malformed(
                            "float-carrying oracle in a narrow frame",
                        ))
                    }
                    (true, false) => {
                        return Err(ProtocolError::Malformed("integer oracle in a wide frame"))
                    }
                    _ => {}
                }
                Some(tag)
            }
            _ => return Err(ProtocolError::Malformed("unsupported wire version")),
        };
        let wide = version == WIRE_VERSION_WIDE;
        let body_len = if wide {
            WIDE_REPORT_BODY_LEN
        } else {
            REPORT_BODY_LEN
        };
        let count = buf.get_u32_le() as usize;
        // The count prefix is attacker-controlled: validate against the
        // actual payload before allocating (division, not multiplication,
        // so a huge count cannot overflow usize on 32-bit targets).
        if buf.remaining() / body_len < count {
            return Err(ProtocolError::Malformed("batch shorter than its count"));
        }
        let mut reports = Vec::with_capacity(count);
        for _ in 0..count {
            reports.push(if wide {
                Report::decode_wide_body(buf)
            } else {
                Report::decode_body(buf)
            });
        }
        Ok(Batch { reports, mechanism })
    }

    /// Decodes a stream of consecutive batch frames, concatenating their
    /// reports. Trailing bytes after the last complete frame are an error.
    pub fn decode_stream(buf: impl Buf) -> Result<Vec<Report>, ProtocolError> {
        Self::decode_stream_tagged(buf).map(|(reports, _)| reports)
    }

    /// Decodes a stream of consecutive batch frames plus the stream's
    /// mechanism tag. Every frame must agree on the tag (untagged frames
    /// imply the default); `None` only for an empty stream.
    pub fn decode_stream_tagged(
        mut buf: impl Buf,
    ) -> Result<(Vec<Report>, Option<MechanismTag>), ProtocolError> {
        let mut out = Vec::new();
        let mut stream_tag: Option<MechanismTag> = None;
        while buf.has_remaining() {
            let batch = Batch::decode(&mut buf)?;
            let tag = batch.mechanism.unwrap_or(MechanismTag::DEFAULT);
            if *stream_tag.get_or_insert(tag) != tag {
                return Err(ProtocolError::Malformed(
                    "conflicting mechanism tags in stream",
                ));
            }
            out.extend(batch.reports);
        }
        Ok((out, stream_tag))
    }
}

/// Decodes a stream in either framing — concatenated standalone reports
/// or length-prefixed [`Batch`] frames — by peeking the first byte. An
/// empty stream is zero reports in either framing.
pub fn decode_any_stream(buf: impl Buf) -> Result<Vec<Report>, ProtocolError> {
    decode_any_stream_tagged(buf).map(|(reports, _)| reports)
}

/// [`decode_any_stream`] plus the stream's mechanism tag: `Some` once the
/// stream carries at least one frame (untagged frames imply
/// [`MechanismTag::DEFAULT`]), `None` for an empty stream. The collector
/// validates the tag against its session plan before aggregating.
pub fn decode_any_stream_tagged(
    buf: impl Buf,
) -> Result<(Vec<Report>, Option<MechanismTag>), ProtocolError> {
    if !buf.has_remaining() {
        return Ok((Vec::new(), None));
    }
    if buf.chunk()[0] == BATCH_TAG {
        Batch::decode_stream_tagged(buf)
    } else {
        Report::decode_stream_tagged(buf)
    }
}

/// First byte of an encoded [`ModelSnapshot`] frame.
pub const SNAPSHOT_TAG: u8 = 0xC5;
/// Encoded size of a version-1 (HDG) snapshot header (tag, version, shape,
/// estimation settings); the payload is raw `f64` bits.
pub const SNAPSHOT_HEADER_LEN: usize = 41;
/// Encoded size of a version-2 snapshot header: version 1 plus the
/// approach discriminant byte right after the version byte.
pub const TAGGED_SNAPSHOT_HEADER_LEN: usize = 42;
/// First byte of a [`QueryBatch`] frame.
pub const QUERY_BATCH_TAG: u8 = 0xD7;
/// Encoded size of a query-batch header (tag, version, domain, count).
pub const QUERY_BATCH_HEADER_LEN: usize = 10;
/// Encoded size of one predicate inside a query (attr, lo, hi).
pub const PREDICATE_LEN: usize = 10;
/// First byte of an [`AnswerBatch`] frame.
pub const ANSWER_BATCH_TAG: u8 = 0xA7;
/// Encoded size of an answer-batch header (tag, version, count).
pub const ANSWER_BATCH_HEADER_LEN: usize = 6;

/// The snapshot payload shape of an approach: how many 1-D and 2-D
/// frequency vectors travel (HDG: `d` + the pairs; TDG: pairs only; MSW:
/// `d` full-resolution marginals, no pairs).
fn snapshot_vector_counts(approach: ApproachKind, d: usize) -> (usize, usize) {
    match approach {
        ApproachKind::Hdg => (d, pair_count(d)),
        ApproachKind::Tdg => (0, pair_count(d)),
        ApproachKind::Msw => (d, 0),
    }
}

/// Encoded size of a snapshot frame for the given shape and approach
/// (HDG frames carry `d` 1-D vectors, TDG frames none, MSW frames `d`
/// marginals and no pair vectors).
pub fn snapshot_encoded_len(snap: &ModelSnapshot) -> usize {
    let Granularities { g1, g2 } = snap.granularities;
    let header = match snap.approach {
        ApproachKind::Hdg => SNAPSHOT_HEADER_LEN,
        ApproachKind::Tdg | ApproachKind::Msw => TAGGED_SNAPSHOT_HEADER_LEN,
    };
    let (n1, m2) = snapshot_vector_counts(snap.approach, snap.d);
    header + (n1 * g1 + m2 * g2 * g2) * 8
}

/// Appends the encoded snapshot frame to `buf`. Frequencies travel as raw
/// `f64` bits, so decode reproduces the fit exactly — not approximately.
/// HDG snapshots encode as version 1 (byte-identical to earlier releases);
/// TDG and MSW snapshots encode as version 2 with the approach
/// discriminant byte.
///
/// # Panics
///
/// Panics if a shape or settings field exceeds its wire width (`d` > u16,
/// `c`/`g1`/`g2`/iteration caps > u32) — all far beyond the ranges
/// `ModelSnapshot::from_parts` admits; mutating the public fields past
/// them must fail loudly rather than encode a truncated frame.
pub fn encode_snapshot(snap: &ModelSnapshot, buf: &mut BytesMut) {
    let narrow32 = |v: usize, what: &str| -> u32 {
        u32::try_from(v).unwrap_or_else(|_| panic!("snapshot {what} exceeds u32"))
    };
    buf.reserve(snapshot_encoded_len(snap));
    buf.put_u8(SNAPSHOT_TAG);
    match snap.approach {
        ApproachKind::Hdg => buf.put_u8(WIRE_VERSION),
        approach => {
            buf.put_u8(WIRE_VERSION_TAGGED);
            buf.put_u8(approach_wire_byte(approach));
        }
    }
    buf.put_u16_le(u16::try_from(snap.d).expect("snapshot dimension exceeds u16"));
    buf.put_u32_le(narrow32(snap.c, "domain"));
    buf.put_u32_le(narrow32(snap.granularities.g1, "granularity g1"));
    buf.put_u32_le(narrow32(snap.granularities.g2, "granularity g2"));
    buf.put_u8(match snap.estimator {
        EstimatorKind::WeightedUpdate => 0,
        EstimatorKind::MaxEntropy => 1,
    });
    buf.put_u64_le(snap.rm_threshold.to_bits());
    buf.put_u32_le(narrow32(snap.rm_max_iters, "iteration cap"));
    buf.put_u64_le(snap.est_threshold.to_bits());
    buf.put_u32_le(narrow32(snap.est_max_iters, "iteration cap"));
    for freqs in snap.one_d.iter().chain(snap.two_d.iter()) {
        for &f in freqs {
            buf.put_u64_le(f.to_bits());
        }
    }
}

/// Encodes a snapshot to a standalone buffer.
pub fn snapshot_to_bytes(snap: &ModelSnapshot) -> Bytes {
    let mut buf = BytesMut::with_capacity(snapshot_encoded_len(snap));
    encode_snapshot(snap, &mut buf);
    buf.freeze()
}

/// Decodes one snapshot frame from the front of `buf`, advancing it.
///
/// The declared shape is validated (`privmdr_core::snapshot::validate_shape`
/// plus the exact payload length) *before* any frequency vector is
/// allocated, so a lying header cannot force a large allocation; the
/// decoded frequencies then pass through `ModelSnapshot::from_parts`, which
/// rejects non-finite values. Truncated or garbage input always yields a
/// [`ProtocolError`], never a panic.
pub fn decode_snapshot(buf: &mut impl Buf) -> Result<ModelSnapshot, ProtocolError> {
    if buf.remaining() < SNAPSHOT_HEADER_LEN {
        return Err(ProtocolError::Malformed("truncated snapshot header"));
    }
    let tag = buf.get_u8();
    if tag != SNAPSHOT_TAG {
        return Err(ProtocolError::Malformed("not a snapshot frame"));
    }
    let approach = match buf.get_u8() {
        WIRE_VERSION => ApproachKind::Hdg,
        WIRE_VERSION_TAGGED => {
            // Tag + version consumed; the v2 header is one byte longer.
            if buf.remaining() < TAGGED_SNAPSHOT_HEADER_LEN - 2 {
                return Err(ProtocolError::Malformed("truncated snapshot header"));
            }
            approach_from_wire_byte(buf.get_u8())?
        }
        _ => return Err(ProtocolError::Malformed("unsupported wire version")),
    };
    let d = buf.get_u16_le() as usize;
    let c = buf.get_u32_le() as usize;
    let g1 = buf.get_u32_le() as usize;
    let g2 = buf.get_u32_le() as usize;
    let estimator = match buf.get_u8() {
        0 => EstimatorKind::WeightedUpdate,
        1 => EstimatorKind::MaxEntropy,
        _ => return Err(ProtocolError::Malformed("unknown estimator kind")),
    };
    let rm_threshold = f64::from_bits(buf.get_u64_le());
    let rm_max_iters = buf.get_u32_le() as usize;
    let est_threshold = f64::from_bits(buf.get_u64_le());
    let est_max_iters = buf.get_u32_le() as usize;
    if validate_shape(d, c, g1, g2).is_err() {
        return Err(ProtocolError::Malformed("invalid snapshot shape"));
    }
    // Shape is now bounded (d <= MAX_SNAPSHOT_DIMS = 64, g1/g2 <= c <=
    // MAX_SNAPSHOT_DOMAIN = 4096), so the expected payload size fits u64
    // comfortably; checking it against the actual remaining bytes before
    // allocating keeps lying headers harmless.
    let (n1, m2) = snapshot_vector_counts(approach, d);
    let expected = (n1 as u64) * (g1 as u64) + (m2 as u64) * (g2 as u64) * (g2 as u64);
    if ((buf.remaining() / 8) as u64) < expected {
        return Err(ProtocolError::Malformed("snapshot shorter than its shape"));
    }
    let mut take_vec =
        |len: usize| -> Vec<f64> { (0..len).map(|_| f64::from_bits(buf.get_u64_le())).collect() };
    let one_d: Vec<Vec<f64>> = (0..n1).map(|_| take_vec(g1)).collect();
    let two_d: Vec<Vec<f64>> = (0..m2).map(|_| take_vec(g2 * g2)).collect();
    ModelSnapshot::from_parts_for_approach(
        approach,
        d,
        c,
        Granularities { g1, g2 },
        estimator,
        rm_threshold,
        rm_max_iters,
        est_threshold,
        est_max_iters,
        one_d,
        two_d,
    )
    .map_err(|_| ProtocolError::Malformed("invalid snapshot contents"))
}

/// A framed batch of range queries over a shared domain — the unit a
/// query-serving client submits (see the module docs for the layout).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryBatch {
    /// Attribute domain size every query in the batch is validated against.
    pub c: usize,
    /// The queries, in submission order.
    pub queries: Vec<RangeQuery>,
}

impl QueryBatch {
    /// Wraps queries (already validated against domain `c`) into a batch.
    pub fn new(c: usize, queries: Vec<RangeQuery>) -> Self {
        QueryBatch { c, queries }
    }

    /// Encoded size of this batch.
    pub fn encoded_len(&self) -> usize {
        QUERY_BATCH_HEADER_LEN
            + self
                .queries
                .iter()
                .map(|q| 1 + q.lambda() * PREDICATE_LEN)
                .sum::<usize>()
    }

    /// Appends the encoded frame to `buf`.
    ///
    /// # Panics
    ///
    /// Panics if the batch holds more than `u32::MAX` queries, a query has
    /// more than 255 predicates, an attribute index exceeds `u16::MAX`, or
    /// the domain (hence any interval bound) exceeds `u32::MAX` — all far
    /// beyond the validated ranges `RangeQuery` admits for any domain this
    /// workspace handles, and all loud failures rather than silently
    /// truncated frames.
    pub fn encode(&self, buf: &mut BytesMut) {
        let count = u32::try_from(self.queries.len()).expect("query batch exceeds u32 count");
        buf.reserve(self.encoded_len());
        buf.put_u8(QUERY_BATCH_TAG);
        buf.put_u8(WIRE_VERSION);
        buf.put_u32_le(u32::try_from(self.c).expect("query batch domain exceeds u32"));
        buf.put_u32_le(count);
        for q in &self.queries {
            buf.put_u8(u8::try_from(q.lambda()).expect("query dimension exceeds u8"));
            for p in q.predicates() {
                buf.put_u16_le(u16::try_from(p.attr).expect("attribute index exceeds u16"));
                buf.put_u32_le(u32::try_from(p.lo).expect("interval bound exceeds u32"));
                buf.put_u32_le(u32::try_from(p.hi).expect("interval bound exceeds u32"));
            }
        }
    }

    /// Encodes to a standalone buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Decodes one query-batch frame from the front of `buf`, advancing it.
    /// Every query is re-validated through `RangeQuery`'s constructor, so a
    /// decoded batch satisfies the same invariants as a locally built one.
    pub fn decode(buf: &mut impl Buf) -> Result<Self, ProtocolError> {
        if buf.remaining() < QUERY_BATCH_HEADER_LEN {
            return Err(ProtocolError::Malformed("truncated query batch header"));
        }
        let tag = buf.get_u8();
        if tag != QUERY_BATCH_TAG {
            return Err(ProtocolError::Malformed("not a query batch frame"));
        }
        let version = buf.get_u8();
        if version != WIRE_VERSION {
            return Err(ProtocolError::Malformed("unsupported wire version"));
        }
        let c = buf.get_u32_le() as usize;
        let count = buf.get_u32_le() as usize;
        // Queries are variable-size (>= 1 + PREDICATE_LEN bytes each), so a
        // lying count is bounded by the payload before allocation.
        if buf.remaining() / (1 + PREDICATE_LEN) < count {
            return Err(ProtocolError::Malformed("query batch shorter than count"));
        }
        let mut queries = Vec::with_capacity(count);
        for _ in 0..count {
            if buf.remaining() < 1 {
                return Err(ProtocolError::Malformed("truncated query"));
            }
            let lambda = buf.get_u8() as usize;
            if lambda == 0 {
                return Err(ProtocolError::Malformed("query with zero predicates"));
            }
            if buf.remaining() < lambda * PREDICATE_LEN {
                return Err(ProtocolError::Malformed("truncated query predicates"));
            }
            let triples: Vec<(usize, usize, usize)> = (0..lambda)
                .map(|_| {
                    (
                        buf.get_u16_le() as usize,
                        buf.get_u32_le() as usize,
                        buf.get_u32_le() as usize,
                    )
                })
                .collect();
            queries.push(
                RangeQuery::from_triples(&triples, c)
                    .map_err(|_| ProtocolError::Malformed("invalid query in batch"))?,
            );
        }
        Ok(QueryBatch { c, queries })
    }
}

/// A framed batch of answers, in query order, as raw `f64` bits.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerBatch {
    /// One estimate per submitted query.
    pub answers: Vec<f64>,
}

impl AnswerBatch {
    /// Wraps answers into a batch.
    pub fn new(answers: Vec<f64>) -> Self {
        AnswerBatch { answers }
    }

    /// Encoded size of a batch holding `count` answers.
    pub fn encoded_len(count: usize) -> usize {
        ANSWER_BATCH_HEADER_LEN + count * 8
    }

    /// Appends the encoded frame to `buf`.
    ///
    /// # Panics
    ///
    /// Panics if the batch holds more than `u32::MAX` answers.
    pub fn encode(&self, buf: &mut BytesMut) {
        let count = u32::try_from(self.answers.len()).expect("answer batch exceeds u32 count");
        buf.reserve(Self::encoded_len(self.answers.len()));
        buf.put_u8(ANSWER_BATCH_TAG);
        buf.put_u8(WIRE_VERSION);
        buf.put_u32_le(count);
        for &a in &self.answers {
            buf.put_u64_le(a.to_bits());
        }
    }

    /// Encodes to a standalone buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(Self::encoded_len(self.answers.len()));
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Decodes one answer-batch frame from the front of `buf`, advancing it.
    pub fn decode(buf: &mut impl Buf) -> Result<Self, ProtocolError> {
        if buf.remaining() < ANSWER_BATCH_HEADER_LEN {
            return Err(ProtocolError::Malformed("truncated answer batch header"));
        }
        let tag = buf.get_u8();
        if tag != ANSWER_BATCH_TAG {
            return Err(ProtocolError::Malformed("not an answer batch frame"));
        }
        let version = buf.get_u8();
        if version != WIRE_VERSION {
            return Err(ProtocolError::Malformed("unsupported wire version"));
        }
        let count = buf.get_u32_le() as usize;
        if buf.remaining() / 8 < count {
            return Err(ProtocolError::Malformed("answer batch shorter than count"));
        }
        let answers = (0..count)
            .map(|_| f64::from_bits(buf.get_u64_le()))
            .collect();
        Ok(AnswerBatch { answers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_single() {
        let r = Report {
            group: 7,
            seed: 0xDEAD_BEEF_CAFE_F00D,
            y: 3,
        };
        let bytes = r.to_bytes();
        assert_eq!(bytes.len(), REPORT_LEN);
        let back = Report::decode(&mut bytes.clone()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn round_trip_stream() {
        let reports: Vec<Report> = (0..100u32)
            .map(|i| Report {
                group: i % 5,
                seed: i as u64 * 77,
                y: (i % 4) as u64,
            })
            .collect();
        let mut buf = BytesMut::new();
        for r in &reports {
            r.encode(&mut buf);
        }
        let back = Report::decode_stream(buf.freeze()).unwrap();
        assert_eq!(back, reports);
    }

    #[test]
    fn rejects_truncation_and_bad_version() {
        let r = Report {
            group: 1,
            seed: 2,
            y: 3,
        };
        let bytes = r.to_bytes();
        let mut short = bytes.slice(..REPORT_LEN - 1);
        assert!(Report::decode(&mut short).is_err());
        let mut wrong = BytesMut::from(&bytes[..]);
        wrong[0] = 99;
        assert!(Report::decode(&mut wrong.freeze()).is_err());
        // Stream with dangling tail bytes.
        let mut buf = BytesMut::from(&bytes[..]);
        buf.put_u8(0);
        assert!(Report::decode_stream(buf.freeze()).is_err());
    }

    fn sample_reports(n: u32) -> Vec<Report> {
        (0..n)
            .map(|i| Report {
                group: i % 7,
                seed: (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                y: (i % 5) as u64,
            })
            .collect()
    }

    /// Reports whose `y` carries full f64 bit patterns (always > u32).
    fn wide_reports(n: u32) -> Vec<Report> {
        (0..n)
            .map(|i| Report {
                group: i % 7,
                seed: (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
                y: (0.001 + i as f64 / (n.max(1) as f64 + 1.0)).to_bits(),
            })
            .collect()
    }

    fn wheel_tag() -> MechanismTag {
        MechanismTag {
            oracle: OraclePolicy::Wheel,
            approach: ApproachKind::Hdg,
        }
    }

    fn sw_msw_tag() -> MechanismTag {
        MechanismTag {
            oracle: OraclePolicy::Sw,
            approach: ApproachKind::Msw,
        }
    }

    #[test]
    fn batch_round_trip() {
        for n in [0u32, 1, 100] {
            let batch = Batch::new(sample_reports(n));
            let bytes = batch.to_bytes();
            assert_eq!(bytes.len(), Batch::encoded_len(n as usize));
            let back = Batch::decode(&mut bytes.clone()).unwrap();
            assert_eq!(back, batch);
        }
    }

    #[test]
    fn batch_stream_concatenates_frames() {
        let mut buf = BytesMut::new();
        Batch::new(sample_reports(10)).encode(&mut buf);
        Batch::new(sample_reports(3)).encode(&mut buf);
        let reports = Batch::decode_stream(buf.freeze()).unwrap();
        assert_eq!(reports.len(), 13);
        assert_eq!(&reports[..10], &sample_reports(10)[..]);
        assert_eq!(&reports[10..], &sample_reports(3)[..]);
    }

    #[test]
    fn batch_rejects_malformed_frames() {
        let bytes = Batch::new(sample_reports(4)).to_bytes();
        // Truncated header.
        assert!(Batch::decode(&mut bytes.slice(..3)).is_err());
        // Truncated payload.
        assert!(Batch::decode(&mut bytes.slice(..bytes.len() - 1)).is_err());
        // Wrong tag and wrong version.
        let mut wrong_tag = BytesMut::from(&bytes[..]);
        wrong_tag[0] = WIRE_VERSION;
        assert!(Batch::decode(&mut wrong_tag.freeze()).is_err());
        let mut wrong_ver = BytesMut::from(&bytes[..]);
        wrong_ver[1] = 9;
        assert!(Batch::decode(&mut wrong_ver.freeze()).is_err());
        // A count prefix far beyond the payload must error before allocating.
        let mut lying = BytesMut::new();
        lying.put_u8(BATCH_TAG);
        lying.put_u8(WIRE_VERSION);
        lying.put_u32_le(u32::MAX);
        assert!(matches!(
            Batch::decode(&mut lying.freeze()),
            Err(ProtocolError::Malformed(_))
        ));
    }

    fn sample_snapshot() -> ModelSnapshot {
        ModelSnapshot::from_parts(
            3,
            16,
            Granularities { g1: 8, g2: 4 },
            EstimatorKind::MaxEntropy,
            1e-7,
            100,
            1e-6,
            80,
            (0..3)
                .map(|t| (0..8).map(|i| (t * 8 + i) as f64 / 100.0).collect())
                .collect(),
            (0..3)
                .map(|p| (0..16).map(|i| (p * 16 + i) as f64 / 1000.0).collect())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn snapshot_round_trip_is_exact() {
        let snap = sample_snapshot();
        let bytes = snapshot_to_bytes(&snap);
        assert_eq!(bytes.len(), snapshot_encoded_len(&snap));
        let back = decode_snapshot(&mut bytes.clone()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_rejects_malformed_frames() {
        let bytes = snapshot_to_bytes(&sample_snapshot());
        assert!(decode_snapshot(&mut bytes.slice(..SNAPSHOT_HEADER_LEN - 1)).is_err());
        assert!(decode_snapshot(&mut bytes.slice(..bytes.len() - 8)).is_err());
        let mut wrong_tag = BytesMut::from(&bytes[..]);
        wrong_tag[0] = BATCH_TAG;
        assert!(decode_snapshot(&mut wrong_tag.freeze()).is_err());
        // A header declaring a huge shape over a short payload must error
        // before allocating.
        let mut lying = BytesMut::from(&bytes[..SNAPSHOT_HEADER_LEN]);
        lying[2] = 64; // d = 64
        lying[3] = 0;
        assert!(matches!(
            decode_snapshot(&mut lying.freeze()),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn query_and_answer_batches_round_trip() {
        let c = 64;
        let queries = vec![
            RangeQuery::from_triples(&[(0, 3, 40)], c).unwrap(),
            RangeQuery::from_triples(&[(1, 0, 63), (4, 7, 7)], c).unwrap(),
            RangeQuery::from_triples(&[(0, 1, 2), (2, 3, 4), (3, 5, 6)], c).unwrap(),
        ];
        let qb = QueryBatch::new(c, queries);
        let bytes = qb.to_bytes();
        assert_eq!(bytes.len(), qb.encoded_len());
        assert_eq!(QueryBatch::decode(&mut bytes.clone()).unwrap(), qb);

        let ab = AnswerBatch::new(vec![0.0, -1.5, 0.333, f64::MIN_POSITIVE]);
        let bytes = ab.to_bytes();
        assert_eq!(bytes.len(), AnswerBatch::encoded_len(4));
        assert_eq!(AnswerBatch::decode(&mut bytes.clone()).unwrap(), ab);
    }

    #[test]
    fn query_batch_rejects_invalid_queries_and_truncation() {
        let c = 8;
        let qb = QueryBatch::new(c, vec![RangeQuery::from_triples(&[(0, 1, 5)], c).unwrap()]);
        let bytes = qb.to_bytes();
        assert!(QueryBatch::decode(&mut bytes.slice(..bytes.len() - 1)).is_err());
        assert!(QueryBatch::decode(&mut bytes.slice(..3)).is_err());
        // An out-of-domain interval inside the frame is rejected by the
        // query's own validation.
        let mut bad = BytesMut::from(&bytes[..]);
        let hi_offset = bytes.len() - 4;
        bad[hi_offset] = 200;
        assert!(matches!(
            QueryBatch::decode(&mut bad.freeze()),
            Err(ProtocolError::Malformed(_))
        ));
        // Lying count over a short payload.
        let mut lying = BytesMut::new();
        lying.put_u8(QUERY_BATCH_TAG);
        lying.put_u8(WIRE_VERSION);
        lying.put_u32_le(8);
        lying.put_u32_le(u32::MAX);
        assert!(QueryBatch::decode(&mut lying.freeze()).is_err());
    }

    fn grr_tag() -> MechanismTag {
        MechanismTag {
            oracle: OraclePolicy::Grr,
            approach: ApproachKind::Tdg,
        }
    }

    #[test]
    fn tagged_report_round_trips_and_reports_its_tag() {
        let r = Report {
            group: 3,
            seed: 0,
            y: 9,
        };
        let mut buf = BytesMut::new();
        r.encode_tagged(&grr_tag(), &mut buf);
        assert_eq!(buf.len(), TAGGED_REPORT_LEN);
        let bytes = buf.freeze();
        let (back, tag) = Report::decode_with_tag(&mut bytes.clone()).unwrap();
        assert_eq!(back, r);
        assert_eq!(tag, Some(grr_tag()));
        // Plain decode accepts the tagged form too.
        assert_eq!(Report::decode(&mut bytes.clone()).unwrap(), r);
        // An untagged report decodes with no tag.
        let (_, tag) = Report::decode_with_tag(&mut r.to_bytes().clone()).unwrap();
        assert_eq!(tag, None);
    }

    #[test]
    fn tagged_batch_round_trips_and_default_tag_is_v1_bytes() {
        let reports = sample_reports(9);
        let tagged = Batch::tagged(reports.clone(), grr_tag());
        let bytes = tagged.to_bytes();
        assert_eq!(
            bytes.len(),
            TAGGED_BATCH_HEADER_LEN + reports.len() * REPORT_BODY_LEN
        );
        let back = Batch::decode(&mut bytes.clone()).unwrap();
        assert_eq!(back, tagged);
        assert_eq!(back.mechanism, Some(grr_tag()));

        // A default tag encodes as version 1 — byte-identical to an
        // untagged batch, so pure OLH/HDG streams never grow. Standalone
        // reports canonicalize the same way.
        let default_tagged = Batch::tagged(reports.clone(), MechanismTag::DEFAULT).to_bytes();
        assert_eq!(default_tagged, Batch::new(reports.clone()).to_bytes());
        // ... even when the pub field is set by hand instead of through
        // the normalizing constructor.
        let hand_built = Batch {
            reports: reports.clone(),
            mechanism: Some(MechanismTag::DEFAULT),
        };
        assert_eq!(
            hand_built.to_bytes(),
            Batch::new(reports.clone()).to_bytes()
        );
        let mut buf = BytesMut::new();
        reports[0].encode_tagged(&MechanismTag::DEFAULT, &mut buf);
        assert_eq!(buf.freeze(), reports[0].to_bytes());
    }

    #[test]
    fn tagged_frames_reject_malformed_discriminants_and_truncation() {
        let bytes = Batch::tagged(sample_reports(4), grr_tag()).to_bytes();
        // Truncated tagged header.
        assert!(Batch::decode(&mut bytes.slice(..TAGGED_BATCH_HEADER_LEN - 1)).is_err());
        // Unknown oracle / approach discriminants.
        for (idx, bad) in [(2usize, 9u8), (3, 7)] {
            let mut wrong = BytesMut::from(&bytes[..]);
            wrong[idx] = bad;
            assert!(Batch::decode(&mut wrong.freeze()).is_err(), "byte {idx}");
        }
        // Same for standalone tagged reports.
        let mut buf = BytesMut::new();
        sample_reports(1)[0].encode_tagged(&grr_tag(), &mut buf);
        let bytes = buf.freeze();
        assert!(Report::decode(&mut bytes.slice(..TAGGED_REPORT_LEN - 1)).is_err());
        for idx in [1usize, 2] {
            let mut wrong = BytesMut::from(&bytes[..]);
            wrong[idx] = 0xEE;
            assert!(Report::decode(&mut wrong.freeze()).is_err(), "byte {idx}");
        }
    }

    #[test]
    fn streams_with_conflicting_tags_are_rejected() {
        let mut buf = BytesMut::new();
        Batch::tagged(sample_reports(3), grr_tag()).encode(&mut buf);
        Batch::new(sample_reports(2)).encode(&mut buf); // implies DEFAULT
        assert!(matches!(
            Batch::decode_stream_tagged(buf.freeze()),
            Err(ProtocolError::Malformed(_))
        ));

        // Consistent tagged stream decodes with its tag.
        let mut buf = BytesMut::new();
        Batch::tagged(sample_reports(3), grr_tag()).encode(&mut buf);
        Batch::tagged(sample_reports(2), grr_tag()).encode(&mut buf);
        let (reports, tag) = decode_any_stream_tagged(buf.freeze()).unwrap();
        assert_eq!(reports.len(), 5);
        assert_eq!(tag, Some(grr_tag()));

        // Standalone tagged reports stream the same way.
        let mut buf = BytesMut::new();
        for r in sample_reports(4) {
            r.encode_tagged(&grr_tag(), &mut buf);
        }
        let (reports, tag) = decode_any_stream_tagged(buf.freeze()).unwrap();
        assert_eq!(reports.len(), 4);
        assert_eq!(tag, Some(grr_tag()));
    }

    #[test]
    fn tdg_snapshot_frame_round_trips_exactly() {
        let snap = ModelSnapshot::from_parts_for_approach(
            ApproachKind::Tdg,
            3,
            16,
            Granularities { g1: 4, g2: 4 },
            EstimatorKind::WeightedUpdate,
            1e-7,
            100,
            1e-6,
            80,
            Vec::new(),
            (0..3)
                .map(|p| (0..16).map(|i| (p * 16 + i) as f64 / 500.0).collect())
                .collect(),
        )
        .unwrap();
        let bytes = snapshot_to_bytes(&snap);
        assert_eq!(bytes.len(), snapshot_encoded_len(&snap));
        assert_eq!(bytes[1], WIRE_VERSION_TAGGED);
        let back = decode_snapshot(&mut bytes.clone()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.approach, ApproachKind::Tdg);

        // Truncated v2 header and unknown approach byte must error.
        assert!(decode_snapshot(&mut bytes.slice(..TAGGED_SNAPSHOT_HEADER_LEN - 1)).is_err());
        let mut wrong = BytesMut::from(&bytes[..]);
        wrong[2] = 9;
        assert!(decode_snapshot(&mut wrong.freeze()).is_err());
        // HDG snapshots still encode as version 1.
        assert_eq!(snapshot_to_bytes(&sample_snapshot())[1], WIRE_VERSION);
    }

    #[test]
    fn wide_report_and_batch_round_trip_exact_f64_bits() {
        for tag in [wheel_tag(), sw_msw_tag()] {
            let reports = wide_reports(9);
            let mut buf = BytesMut::new();
            reports[0].encode_tagged(&tag, &mut buf);
            assert_eq!(buf.len(), WIDE_REPORT_LEN);
            let bytes = buf.freeze();
            assert_eq!(bytes[0], WIRE_VERSION_WIDE);
            let (back, got) = Report::decode_with_tag(&mut bytes.clone()).unwrap();
            assert_eq!(back, reports[0]);
            assert_eq!(got, Some(tag));

            let batch = Batch::tagged(reports.clone(), tag);
            let bytes = batch.to_bytes();
            assert_eq!(
                bytes.len(),
                TAGGED_BATCH_HEADER_LEN + reports.len() * WIDE_REPORT_BODY_LEN
            );
            assert_eq!(bytes[1], WIRE_VERSION_WIDE);
            let back = Batch::decode(&mut bytes.clone()).unwrap();
            assert_eq!(back, batch);

            // Streamed standalone wide reports decode with their tag.
            let mut buf = BytesMut::new();
            for r in &reports {
                r.encode_tagged(&tag, &mut buf);
            }
            let (decoded, stream_tag) = decode_any_stream_tagged(buf.freeze()).unwrap();
            assert_eq!(decoded, reports);
            assert_eq!(stream_tag, Some(tag));
        }
    }

    #[test]
    fn frame_width_and_tag_must_agree() {
        // A wheel/sw discriminant inside a version-2 frame is rejected.
        let narrow = Batch::tagged(sample_reports(3), grr_tag()).to_bytes();
        let mut forged = BytesMut::from(&narrow[..]);
        forged[2] = 3; // oracle byte -> wheel, version byte still 2
        assert!(matches!(
            Batch::decode(&mut forged.freeze()),
            Err(ProtocolError::Malformed(_))
        ));
        // An integer-oracle discriminant inside a version-3 frame is too.
        let wide = Batch::tagged(wide_reports(3), wheel_tag()).to_bytes();
        let mut forged = BytesMut::from(&wide[..]);
        forged[2] = 0; // oracle byte -> olh, version byte still 3
        assert!(matches!(
            Batch::decode(&mut forged.freeze()),
            Err(ProtocolError::Malformed(_))
        ));
        // Same for standalone reports.
        let mut buf = BytesMut::new();
        sample_reports(1)[0].encode_tagged(&grr_tag(), &mut buf);
        let mut forged = buf;
        forged[1] = 4; // oracle byte -> sw inside a 19-byte frame
        assert!(Report::decode(&mut forged.freeze()).is_err());
        let mut buf = BytesMut::new();
        wide_reports(1)[0].encode_tagged(&wheel_tag(), &mut buf);
        let mut forged = buf;
        forged[1] = 1; // oracle byte -> grr inside a 23-byte frame
        assert!(Report::decode(&mut forged.freeze()).is_err());
    }

    #[test]
    fn wide_streams_reject_conflicts_and_truncation() {
        // Wide and narrow frames cannot mix in one stream.
        let mut buf = BytesMut::new();
        Batch::tagged(wide_reports(3), wheel_tag()).encode(&mut buf);
        Batch::new(sample_reports(2)).encode(&mut buf);
        assert!(matches!(
            Batch::decode_stream_tagged(buf.freeze()),
            Err(ProtocolError::Malformed(_))
        ));
        // Two different wide tags conflict too.
        let mut buf = BytesMut::new();
        Batch::tagged(wide_reports(3), wheel_tag()).encode(&mut buf);
        Batch::tagged(wide_reports(2), sw_msw_tag()).encode(&mut buf);
        assert!(Batch::decode_stream_tagged(buf.freeze()).is_err());
        // Truncated wide frames error instead of panicking.
        let bytes = Batch::tagged(wide_reports(4), wheel_tag()).to_bytes();
        assert!(Batch::decode(&mut bytes.slice(..bytes.len() - 1)).is_err());
        assert!(Batch::decode(&mut bytes.slice(..TAGGED_BATCH_HEADER_LEN - 1)).is_err());
        let mut buf = BytesMut::new();
        wide_reports(1)[0].encode_tagged(&wheel_tag(), &mut buf);
        assert!(Report::decode(&mut buf.freeze().slice(..WIDE_REPORT_LEN - 1)).is_err());
    }

    #[test]
    #[should_panic(expected = "wide report y in a narrow frame")]
    fn narrow_encoding_of_a_wide_report_fails_loudly() {
        let mut buf = BytesMut::new();
        wide_reports(1)[0].encode(&mut buf);
    }

    #[test]
    fn msw_snapshot_frame_round_trips_exactly() {
        let snap = ModelSnapshot::from_parts_for_approach(
            ApproachKind::Msw,
            3,
            16,
            Granularities { g1: 16, g2: 1 },
            EstimatorKind::WeightedUpdate,
            1e-7,
            100,
            1e-6,
            80,
            (0..3)
                .map(|t| (0..16).map(|i| (t * 16 + i) as f64 / 1000.0).collect())
                .collect(),
            Vec::new(),
        )
        .unwrap();
        let bytes = snapshot_to_bytes(&snap);
        assert_eq!(bytes.len(), snapshot_encoded_len(&snap));
        assert_eq!(bytes[1], WIRE_VERSION_TAGGED);
        let back = decode_snapshot(&mut bytes.clone()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.approach, ApproachKind::Msw);
    }

    #[test]
    fn any_stream_detects_framing() {
        let reports = sample_reports(6);
        let mut legacy = BytesMut::new();
        for r in &reports {
            r.encode(&mut legacy);
        }
        assert_eq!(decode_any_stream(legacy.freeze()).unwrap(), reports);
        let mut batched = BytesMut::new();
        Batch::new(reports.clone()).encode(&mut batched);
        assert_eq!(decode_any_stream(batched.freeze()).unwrap(), reports);
        assert!(decode_any_stream(Bytes::from(vec![])).unwrap().is_empty());
    }
}
