//! Binary wire format for client reports.
//!
//! One report is exactly 17 bytes:
//!
//! ```text
//! +--------+----------------+----------------------+-----------+
//! | ver:u8 | group: u32 LE  | hash seed: u64 LE    | y: u32 LE |
//! +--------+----------------+----------------------+-----------+
//! ```
//!
//! `seed` identifies the user's OLH hash function and `y` is the
//! GRR-randomized hashed value — together the complete (and only) content
//! of an OLH report (paper §2.2). Everything else (ε, grid geometry) is
//! public plan state, so it never travels with the report.

use crate::ProtocolError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Wire protocol version byte.
pub const WIRE_VERSION: u8 = 1;
/// Encoded size of one report.
pub const REPORT_LEN: usize = 17;

/// One user's randomized report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Report group (index into the plan's group list).
    pub group: u32,
    /// OLH per-user hash seed.
    pub seed: u64,
    /// Perturbed hashed value `GRR_{c'}(H(v))`.
    pub y: u32,
}

impl Report {
    /// Appends the encoded report to `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.reserve(REPORT_LEN);
        buf.put_u8(WIRE_VERSION);
        buf.put_u32_le(self.group);
        buf.put_u64_le(self.seed);
        buf.put_u32_le(self.y);
    }

    /// Encodes to a standalone buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(REPORT_LEN);
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Decodes one report from the front of `buf`, advancing it.
    pub fn decode(buf: &mut impl Buf) -> Result<Self, ProtocolError> {
        if buf.remaining() < REPORT_LEN {
            return Err(ProtocolError::Malformed("truncated report"));
        }
        let version = buf.get_u8();
        if version != WIRE_VERSION {
            return Err(ProtocolError::Malformed("unsupported wire version"));
        }
        let group = buf.get_u32_le();
        let seed = buf.get_u64_le();
        let y = buf.get_u32_le();
        Ok(Report { group, seed, y })
    }

    /// Decodes a whole stream of concatenated reports.
    pub fn decode_stream(mut buf: impl Buf) -> Result<Vec<Report>, ProtocolError> {
        if !buf.remaining().is_multiple_of(REPORT_LEN) {
            return Err(ProtocolError::Malformed(
                "stream length not a report multiple",
            ));
        }
        let mut out = Vec::with_capacity(buf.remaining() / REPORT_LEN);
        while buf.has_remaining() {
            out.push(Report::decode(&mut buf)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_single() {
        let r = Report {
            group: 7,
            seed: 0xDEAD_BEEF_CAFE_F00D,
            y: 3,
        };
        let bytes = r.to_bytes();
        assert_eq!(bytes.len(), REPORT_LEN);
        let back = Report::decode(&mut bytes.clone()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn round_trip_stream() {
        let reports: Vec<Report> = (0..100)
            .map(|i| Report {
                group: i % 5,
                seed: i as u64 * 77,
                y: i % 4,
            })
            .collect();
        let mut buf = BytesMut::new();
        for r in &reports {
            r.encode(&mut buf);
        }
        let back = Report::decode_stream(buf.freeze()).unwrap();
        assert_eq!(back, reports);
    }

    #[test]
    fn rejects_truncation_and_bad_version() {
        let r = Report {
            group: 1,
            seed: 2,
            y: 3,
        };
        let bytes = r.to_bytes();
        let mut short = bytes.slice(..REPORT_LEN - 1);
        assert!(Report::decode(&mut short).is_err());
        let mut wrong = BytesMut::from(&bytes[..]);
        wrong[0] = 99;
        assert!(Report::decode(&mut wrong.freeze()).is_err());
        // Stream with dangling tail bytes.
        let mut buf = BytesMut::from(&bytes[..]);
        buf.put_u8(0);
        assert!(Report::decode_stream(buf.freeze()).is_err());
    }
}
