//! Binary wire format for client reports.
//!
//! One standalone report is exactly 17 bytes:
//!
//! ```text
//! +--------+----------------+----------------------+-----------+
//! | ver:u8 | group: u32 LE  | hash seed: u64 LE    | y: u32 LE |
//! +--------+----------------+----------------------+-----------+
//! ```
//!
//! `seed` identifies the user's OLH hash function and `y` is the
//! GRR-randomized hashed value — together the complete (and only) content
//! of an OLH report (paper §2.2). Everything else (ε, grid geometry) is
//! public plan state, so it never travels with the report.
//!
//! At collection scale (~10⁶ users) reports arrive in bulk, so the format
//! also defines a length-prefixed [`Batch`] frame that amortizes the
//! version byte and lets the server hand a whole slab of reports to the
//! sharded ingestion path in one decode:
//!
//! ```text
//! +-----------+--------+--------------+  count × 16-byte bodies
//! | tag: 0xB1 | ver:u8 | count:u32 LE |  (group, seed, y — no version)
//! +-----------+--------+--------------+
//! ```
//!
//! The tag byte `0xB1` can never open a standalone report (whose first
//! byte is [`WIRE_VERSION`]), so a stream of frames is self-describing:
//! the decoder peeks one byte to tell the two framings apart.
//!
//! # Query-serving frames
//!
//! The read path adds three more tag-versioned frames, all following the
//! same garbage-robustness contract as [`Batch`] (length prefixes are
//! validated against the actual payload before any allocation; malformed
//! bytes always surface as [`ProtocolError`], never a panic):
//!
//! * **Snapshot** (tag `0xC5`) — a finalized `privmdr_core` fit
//!   ([`ModelSnapshot`]): geometry + estimation settings header, then the
//!   post-processed grid frequencies as raw `f64` bits (exact round-trip).
//! * **[`QueryBatch`]** (tag `0xD7`) — a batch of λ-dimensional range
//!   queries over a shared domain `c`; each query is λ `(attr, lo, hi)`
//!   predicates and is re-validated through `RangeQuery`'s own invariants
//!   on decode.
//! * **[`AnswerBatch`]** (tag `0xA7`) — the matching answers as raw `f64`
//!   bits, in query order.

use crate::ProtocolError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use privmdr_core::snapshot::{validate_shape, ModelSnapshot};
use privmdr_core::EstimatorKind;
use privmdr_grid::guideline::Granularities;
use privmdr_grid::pairs::pair_count;
use privmdr_query::RangeQuery;

/// Wire protocol version byte.
pub const WIRE_VERSION: u8 = 1;
/// Encoded size of one standalone report.
pub const REPORT_LEN: usize = 17;
/// First byte of a [`Batch`] frame; distinct from [`WIRE_VERSION`] so the
/// two framings coexist in one stream.
pub const BATCH_TAG: u8 = 0xB1;
/// Encoded size of a batch header (tag, version, count).
pub const BATCH_HEADER_LEN: usize = 6;
/// Encoded size of one report body inside a batch (no version byte).
pub const REPORT_BODY_LEN: usize = 16;

/// One user's randomized report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Report group (index into the plan's group list).
    pub group: u32,
    /// OLH per-user hash seed.
    pub seed: u64,
    /// Perturbed hashed value `GRR_{c'}(H(v))`.
    pub y: u32,
}

impl Report {
    /// Appends the encoded report to `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.reserve(REPORT_LEN);
        buf.put_u8(WIRE_VERSION);
        buf.put_u32_le(self.group);
        buf.put_u64_le(self.seed);
        buf.put_u32_le(self.y);
    }

    /// Encodes to a standalone buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(REPORT_LEN);
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Decodes one report from the front of `buf`, advancing it.
    pub fn decode(buf: &mut impl Buf) -> Result<Self, ProtocolError> {
        if buf.remaining() < REPORT_LEN {
            return Err(ProtocolError::Malformed("truncated report"));
        }
        let version = buf.get_u8();
        if version != WIRE_VERSION {
            return Err(ProtocolError::Malformed("unsupported wire version"));
        }
        let group = buf.get_u32_le();
        let seed = buf.get_u64_le();
        let y = buf.get_u32_le();
        Ok(Report { group, seed, y })
    }

    /// Decodes a whole stream of concatenated reports.
    pub fn decode_stream(mut buf: impl Buf) -> Result<Vec<Report>, ProtocolError> {
        if !buf.remaining().is_multiple_of(REPORT_LEN) {
            return Err(ProtocolError::Malformed(
                "stream length not a report multiple",
            ));
        }
        let mut out = Vec::with_capacity(buf.remaining() / REPORT_LEN);
        while buf.has_remaining() {
            out.push(Report::decode(&mut buf)?);
        }
        Ok(out)
    }

    fn encode_body(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.group);
        buf.put_u64_le(self.seed);
        buf.put_u32_le(self.y);
    }

    fn decode_body(buf: &mut impl Buf) -> Report {
        let group = buf.get_u32_le();
        let seed = buf.get_u64_le();
        let y = buf.get_u32_le();
        Report { group, seed, y }
    }
}

/// A length-prefixed frame of reports — the bulk unit the sharded
/// ingestion path consumes (see the module docs for the layout).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Batch {
    /// The framed reports, in arrival order.
    pub reports: Vec<Report>,
}

impl Batch {
    /// Wraps reports into a batch.
    pub fn new(reports: Vec<Report>) -> Self {
        Batch { reports }
    }

    /// Encoded size of a batch holding `count` reports.
    pub fn encoded_len(count: usize) -> usize {
        BATCH_HEADER_LEN + count * REPORT_BODY_LEN
    }

    /// Appends the encoded frame to `buf`.
    ///
    /// # Panics
    ///
    /// Panics if the batch holds more than `u32::MAX` reports (the count
    /// prefix is 32-bit); split earlier than that.
    pub fn encode(&self, buf: &mut BytesMut) {
        let count = u32::try_from(self.reports.len()).expect("batch exceeds u32 count prefix");
        buf.reserve(Self::encoded_len(self.reports.len()));
        buf.put_u8(BATCH_TAG);
        buf.put_u8(WIRE_VERSION);
        buf.put_u32_le(count);
        for r in &self.reports {
            r.encode_body(buf);
        }
    }

    /// Encodes to a standalone buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(Self::encoded_len(self.reports.len()));
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Decodes one batch frame from the front of `buf`, advancing it.
    /// Never panics on truncated or garbage input — every malformed shape
    /// maps to a [`ProtocolError`].
    pub fn decode(buf: &mut impl Buf) -> Result<Self, ProtocolError> {
        if buf.remaining() < BATCH_HEADER_LEN {
            return Err(ProtocolError::Malformed("truncated batch header"));
        }
        let tag = buf.get_u8();
        if tag != BATCH_TAG {
            return Err(ProtocolError::Malformed("not a batch frame"));
        }
        let version = buf.get_u8();
        if version != WIRE_VERSION {
            return Err(ProtocolError::Malformed("unsupported wire version"));
        }
        let count = buf.get_u32_le() as usize;
        // The count prefix is attacker-controlled: validate against the
        // actual payload before allocating (division, not multiplication,
        // so a huge count cannot overflow usize on 32-bit targets).
        if buf.remaining() / REPORT_BODY_LEN < count {
            return Err(ProtocolError::Malformed("batch shorter than its count"));
        }
        let mut reports = Vec::with_capacity(count);
        for _ in 0..count {
            reports.push(Report::decode_body(buf));
        }
        Ok(Batch { reports })
    }

    /// Decodes a stream of consecutive batch frames, concatenating their
    /// reports. Trailing bytes after the last complete frame are an error.
    pub fn decode_stream(mut buf: impl Buf) -> Result<Vec<Report>, ProtocolError> {
        let mut out = Vec::new();
        while buf.has_remaining() {
            out.extend(Batch::decode(&mut buf)?.reports);
        }
        Ok(out)
    }
}

/// Decodes a stream in either framing — legacy concatenated 17-byte
/// reports or length-prefixed [`Batch`] frames — by peeking the first
/// byte. An empty stream is zero reports in either framing.
pub fn decode_any_stream(buf: impl Buf) -> Result<Vec<Report>, ProtocolError> {
    if !buf.has_remaining() {
        return Ok(Vec::new());
    }
    if buf.chunk()[0] == BATCH_TAG {
        Batch::decode_stream(buf)
    } else {
        Report::decode_stream(buf)
    }
}

/// First byte of an encoded [`ModelSnapshot`] frame.
pub const SNAPSHOT_TAG: u8 = 0xC5;
/// Encoded size of a snapshot header (tag, version, shape, estimation
/// settings); the payload is raw `f64` bits.
pub const SNAPSHOT_HEADER_LEN: usize = 41;
/// First byte of a [`QueryBatch`] frame.
pub const QUERY_BATCH_TAG: u8 = 0xD7;
/// Encoded size of a query-batch header (tag, version, domain, count).
pub const QUERY_BATCH_HEADER_LEN: usize = 10;
/// Encoded size of one predicate inside a query (attr, lo, hi).
pub const PREDICATE_LEN: usize = 10;
/// First byte of an [`AnswerBatch`] frame.
pub const ANSWER_BATCH_TAG: u8 = 0xA7;
/// Encoded size of an answer-batch header (tag, version, count).
pub const ANSWER_BATCH_HEADER_LEN: usize = 6;

/// Encoded size of a snapshot frame for the given shape.
pub fn snapshot_encoded_len(snap: &ModelSnapshot) -> usize {
    let Granularities { g1, g2 } = snap.granularities;
    SNAPSHOT_HEADER_LEN + (snap.d * g1 + pair_count(snap.d) * g2 * g2) * 8
}

/// Appends the encoded snapshot frame to `buf`. Frequencies travel as raw
/// `f64` bits, so decode reproduces the fit exactly — not approximately.
///
/// # Panics
///
/// Panics if a shape or settings field exceeds its wire width (`d` > u16,
/// `c`/`g1`/`g2`/iteration caps > u32) — all far beyond the ranges
/// `ModelSnapshot::from_parts` admits; mutating the public fields past
/// them must fail loudly rather than encode a truncated frame.
pub fn encode_snapshot(snap: &ModelSnapshot, buf: &mut BytesMut) {
    let narrow32 = |v: usize, what: &str| -> u32 {
        u32::try_from(v).unwrap_or_else(|_| panic!("snapshot {what} exceeds u32"))
    };
    buf.reserve(snapshot_encoded_len(snap));
    buf.put_u8(SNAPSHOT_TAG);
    buf.put_u8(WIRE_VERSION);
    buf.put_u16_le(u16::try_from(snap.d).expect("snapshot dimension exceeds u16"));
    buf.put_u32_le(narrow32(snap.c, "domain"));
    buf.put_u32_le(narrow32(snap.granularities.g1, "granularity g1"));
    buf.put_u32_le(narrow32(snap.granularities.g2, "granularity g2"));
    buf.put_u8(match snap.estimator {
        EstimatorKind::WeightedUpdate => 0,
        EstimatorKind::MaxEntropy => 1,
    });
    buf.put_u64_le(snap.rm_threshold.to_bits());
    buf.put_u32_le(narrow32(snap.rm_max_iters, "iteration cap"));
    buf.put_u64_le(snap.est_threshold.to_bits());
    buf.put_u32_le(narrow32(snap.est_max_iters, "iteration cap"));
    for freqs in snap.one_d.iter().chain(snap.two_d.iter()) {
        for &f in freqs {
            buf.put_u64_le(f.to_bits());
        }
    }
}

/// Encodes a snapshot to a standalone buffer.
pub fn snapshot_to_bytes(snap: &ModelSnapshot) -> Bytes {
    let mut buf = BytesMut::with_capacity(snapshot_encoded_len(snap));
    encode_snapshot(snap, &mut buf);
    buf.freeze()
}

/// Decodes one snapshot frame from the front of `buf`, advancing it.
///
/// The declared shape is validated (`privmdr_core::snapshot::validate_shape`
/// plus the exact payload length) *before* any frequency vector is
/// allocated, so a lying header cannot force a large allocation; the
/// decoded frequencies then pass through `ModelSnapshot::from_parts`, which
/// rejects non-finite values. Truncated or garbage input always yields a
/// [`ProtocolError`], never a panic.
pub fn decode_snapshot(buf: &mut impl Buf) -> Result<ModelSnapshot, ProtocolError> {
    if buf.remaining() < SNAPSHOT_HEADER_LEN {
        return Err(ProtocolError::Malformed("truncated snapshot header"));
    }
    let tag = buf.get_u8();
    if tag != SNAPSHOT_TAG {
        return Err(ProtocolError::Malformed("not a snapshot frame"));
    }
    let version = buf.get_u8();
    if version != WIRE_VERSION {
        return Err(ProtocolError::Malformed("unsupported wire version"));
    }
    let d = buf.get_u16_le() as usize;
    let c = buf.get_u32_le() as usize;
    let g1 = buf.get_u32_le() as usize;
    let g2 = buf.get_u32_le() as usize;
    let estimator = match buf.get_u8() {
        0 => EstimatorKind::WeightedUpdate,
        1 => EstimatorKind::MaxEntropy,
        _ => return Err(ProtocolError::Malformed("unknown estimator kind")),
    };
    let rm_threshold = f64::from_bits(buf.get_u64_le());
    let rm_max_iters = buf.get_u32_le() as usize;
    let est_threshold = f64::from_bits(buf.get_u64_le());
    let est_max_iters = buf.get_u32_le() as usize;
    if validate_shape(d, c, g1, g2).is_err() {
        return Err(ProtocolError::Malformed("invalid snapshot shape"));
    }
    // Shape is now bounded (d <= MAX_SNAPSHOT_DIMS = 64, g1/g2 <= c <=
    // MAX_SNAPSHOT_DOMAIN = 4096), so the expected payload size fits u64
    // comfortably; checking it against the actual remaining bytes before
    // allocating keeps lying headers harmless.
    let m2 = pair_count(d) as u64;
    let expected = (d as u64) * (g1 as u64) + m2 * (g2 as u64) * (g2 as u64);
    if ((buf.remaining() / 8) as u64) < expected {
        return Err(ProtocolError::Malformed("snapshot shorter than its shape"));
    }
    let mut take_vec =
        |len: usize| -> Vec<f64> { (0..len).map(|_| f64::from_bits(buf.get_u64_le())).collect() };
    let one_d: Vec<Vec<f64>> = (0..d).map(|_| take_vec(g1)).collect();
    let two_d: Vec<Vec<f64>> = (0..m2 as usize).map(|_| take_vec(g2 * g2)).collect();
    ModelSnapshot::from_parts(
        d,
        c,
        Granularities { g1, g2 },
        estimator,
        rm_threshold,
        rm_max_iters,
        est_threshold,
        est_max_iters,
        one_d,
        two_d,
    )
    .map_err(|_| ProtocolError::Malformed("invalid snapshot contents"))
}

/// A framed batch of range queries over a shared domain — the unit a
/// query-serving client submits (see the module docs for the layout).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryBatch {
    /// Attribute domain size every query in the batch is validated against.
    pub c: usize,
    /// The queries, in submission order.
    pub queries: Vec<RangeQuery>,
}

impl QueryBatch {
    /// Wraps queries (already validated against domain `c`) into a batch.
    pub fn new(c: usize, queries: Vec<RangeQuery>) -> Self {
        QueryBatch { c, queries }
    }

    /// Encoded size of this batch.
    pub fn encoded_len(&self) -> usize {
        QUERY_BATCH_HEADER_LEN
            + self
                .queries
                .iter()
                .map(|q| 1 + q.lambda() * PREDICATE_LEN)
                .sum::<usize>()
    }

    /// Appends the encoded frame to `buf`.
    ///
    /// # Panics
    ///
    /// Panics if the batch holds more than `u32::MAX` queries, a query has
    /// more than 255 predicates, an attribute index exceeds `u16::MAX`, or
    /// the domain (hence any interval bound) exceeds `u32::MAX` — all far
    /// beyond the validated ranges `RangeQuery` admits for any domain this
    /// workspace handles, and all loud failures rather than silently
    /// truncated frames.
    pub fn encode(&self, buf: &mut BytesMut) {
        let count = u32::try_from(self.queries.len()).expect("query batch exceeds u32 count");
        buf.reserve(self.encoded_len());
        buf.put_u8(QUERY_BATCH_TAG);
        buf.put_u8(WIRE_VERSION);
        buf.put_u32_le(u32::try_from(self.c).expect("query batch domain exceeds u32"));
        buf.put_u32_le(count);
        for q in &self.queries {
            buf.put_u8(u8::try_from(q.lambda()).expect("query dimension exceeds u8"));
            for p in q.predicates() {
                buf.put_u16_le(u16::try_from(p.attr).expect("attribute index exceeds u16"));
                buf.put_u32_le(u32::try_from(p.lo).expect("interval bound exceeds u32"));
                buf.put_u32_le(u32::try_from(p.hi).expect("interval bound exceeds u32"));
            }
        }
    }

    /// Encodes to a standalone buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Decodes one query-batch frame from the front of `buf`, advancing it.
    /// Every query is re-validated through `RangeQuery`'s constructor, so a
    /// decoded batch satisfies the same invariants as a locally built one.
    pub fn decode(buf: &mut impl Buf) -> Result<Self, ProtocolError> {
        if buf.remaining() < QUERY_BATCH_HEADER_LEN {
            return Err(ProtocolError::Malformed("truncated query batch header"));
        }
        let tag = buf.get_u8();
        if tag != QUERY_BATCH_TAG {
            return Err(ProtocolError::Malformed("not a query batch frame"));
        }
        let version = buf.get_u8();
        if version != WIRE_VERSION {
            return Err(ProtocolError::Malformed("unsupported wire version"));
        }
        let c = buf.get_u32_le() as usize;
        let count = buf.get_u32_le() as usize;
        // Queries are variable-size (>= 1 + PREDICATE_LEN bytes each), so a
        // lying count is bounded by the payload before allocation.
        if buf.remaining() / (1 + PREDICATE_LEN) < count {
            return Err(ProtocolError::Malformed("query batch shorter than count"));
        }
        let mut queries = Vec::with_capacity(count);
        for _ in 0..count {
            if buf.remaining() < 1 {
                return Err(ProtocolError::Malformed("truncated query"));
            }
            let lambda = buf.get_u8() as usize;
            if lambda == 0 {
                return Err(ProtocolError::Malformed("query with zero predicates"));
            }
            if buf.remaining() < lambda * PREDICATE_LEN {
                return Err(ProtocolError::Malformed("truncated query predicates"));
            }
            let triples: Vec<(usize, usize, usize)> = (0..lambda)
                .map(|_| {
                    (
                        buf.get_u16_le() as usize,
                        buf.get_u32_le() as usize,
                        buf.get_u32_le() as usize,
                    )
                })
                .collect();
            queries.push(
                RangeQuery::from_triples(&triples, c)
                    .map_err(|_| ProtocolError::Malformed("invalid query in batch"))?,
            );
        }
        Ok(QueryBatch { c, queries })
    }
}

/// A framed batch of answers, in query order, as raw `f64` bits.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerBatch {
    /// One estimate per submitted query.
    pub answers: Vec<f64>,
}

impl AnswerBatch {
    /// Wraps answers into a batch.
    pub fn new(answers: Vec<f64>) -> Self {
        AnswerBatch { answers }
    }

    /// Encoded size of a batch holding `count` answers.
    pub fn encoded_len(count: usize) -> usize {
        ANSWER_BATCH_HEADER_LEN + count * 8
    }

    /// Appends the encoded frame to `buf`.
    ///
    /// # Panics
    ///
    /// Panics if the batch holds more than `u32::MAX` answers.
    pub fn encode(&self, buf: &mut BytesMut) {
        let count = u32::try_from(self.answers.len()).expect("answer batch exceeds u32 count");
        buf.reserve(Self::encoded_len(self.answers.len()));
        buf.put_u8(ANSWER_BATCH_TAG);
        buf.put_u8(WIRE_VERSION);
        buf.put_u32_le(count);
        for &a in &self.answers {
            buf.put_u64_le(a.to_bits());
        }
    }

    /// Encodes to a standalone buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(Self::encoded_len(self.answers.len()));
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Decodes one answer-batch frame from the front of `buf`, advancing it.
    pub fn decode(buf: &mut impl Buf) -> Result<Self, ProtocolError> {
        if buf.remaining() < ANSWER_BATCH_HEADER_LEN {
            return Err(ProtocolError::Malformed("truncated answer batch header"));
        }
        let tag = buf.get_u8();
        if tag != ANSWER_BATCH_TAG {
            return Err(ProtocolError::Malformed("not an answer batch frame"));
        }
        let version = buf.get_u8();
        if version != WIRE_VERSION {
            return Err(ProtocolError::Malformed("unsupported wire version"));
        }
        let count = buf.get_u32_le() as usize;
        if buf.remaining() / 8 < count {
            return Err(ProtocolError::Malformed("answer batch shorter than count"));
        }
        let answers = (0..count)
            .map(|_| f64::from_bits(buf.get_u64_le()))
            .collect();
        Ok(AnswerBatch { answers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_single() {
        let r = Report {
            group: 7,
            seed: 0xDEAD_BEEF_CAFE_F00D,
            y: 3,
        };
        let bytes = r.to_bytes();
        assert_eq!(bytes.len(), REPORT_LEN);
        let back = Report::decode(&mut bytes.clone()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn round_trip_stream() {
        let reports: Vec<Report> = (0..100)
            .map(|i| Report {
                group: i % 5,
                seed: i as u64 * 77,
                y: i % 4,
            })
            .collect();
        let mut buf = BytesMut::new();
        for r in &reports {
            r.encode(&mut buf);
        }
        let back = Report::decode_stream(buf.freeze()).unwrap();
        assert_eq!(back, reports);
    }

    #[test]
    fn rejects_truncation_and_bad_version() {
        let r = Report {
            group: 1,
            seed: 2,
            y: 3,
        };
        let bytes = r.to_bytes();
        let mut short = bytes.slice(..REPORT_LEN - 1);
        assert!(Report::decode(&mut short).is_err());
        let mut wrong = BytesMut::from(&bytes[..]);
        wrong[0] = 99;
        assert!(Report::decode(&mut wrong.freeze()).is_err());
        // Stream with dangling tail bytes.
        let mut buf = BytesMut::from(&bytes[..]);
        buf.put_u8(0);
        assert!(Report::decode_stream(buf.freeze()).is_err());
    }

    fn sample_reports(n: u32) -> Vec<Report> {
        (0..n)
            .map(|i| Report {
                group: i % 7,
                seed: (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                y: i % 5,
            })
            .collect()
    }

    #[test]
    fn batch_round_trip() {
        for n in [0u32, 1, 100] {
            let batch = Batch::new(sample_reports(n));
            let bytes = batch.to_bytes();
            assert_eq!(bytes.len(), Batch::encoded_len(n as usize));
            let back = Batch::decode(&mut bytes.clone()).unwrap();
            assert_eq!(back, batch);
        }
    }

    #[test]
    fn batch_stream_concatenates_frames() {
        let mut buf = BytesMut::new();
        Batch::new(sample_reports(10)).encode(&mut buf);
        Batch::new(sample_reports(3)).encode(&mut buf);
        let reports = Batch::decode_stream(buf.freeze()).unwrap();
        assert_eq!(reports.len(), 13);
        assert_eq!(&reports[..10], &sample_reports(10)[..]);
        assert_eq!(&reports[10..], &sample_reports(3)[..]);
    }

    #[test]
    fn batch_rejects_malformed_frames() {
        let bytes = Batch::new(sample_reports(4)).to_bytes();
        // Truncated header.
        assert!(Batch::decode(&mut bytes.slice(..3)).is_err());
        // Truncated payload.
        assert!(Batch::decode(&mut bytes.slice(..bytes.len() - 1)).is_err());
        // Wrong tag and wrong version.
        let mut wrong_tag = BytesMut::from(&bytes[..]);
        wrong_tag[0] = WIRE_VERSION;
        assert!(Batch::decode(&mut wrong_tag.freeze()).is_err());
        let mut wrong_ver = BytesMut::from(&bytes[..]);
        wrong_ver[1] = 9;
        assert!(Batch::decode(&mut wrong_ver.freeze()).is_err());
        // A count prefix far beyond the payload must error before allocating.
        let mut lying = BytesMut::new();
        lying.put_u8(BATCH_TAG);
        lying.put_u8(WIRE_VERSION);
        lying.put_u32_le(u32::MAX);
        assert!(matches!(
            Batch::decode(&mut lying.freeze()),
            Err(ProtocolError::Malformed(_))
        ));
    }

    fn sample_snapshot() -> ModelSnapshot {
        ModelSnapshot::from_parts(
            3,
            16,
            Granularities { g1: 8, g2: 4 },
            EstimatorKind::MaxEntropy,
            1e-7,
            100,
            1e-6,
            80,
            (0..3)
                .map(|t| (0..8).map(|i| (t * 8 + i) as f64 / 100.0).collect())
                .collect(),
            (0..3)
                .map(|p| (0..16).map(|i| (p * 16 + i) as f64 / 1000.0).collect())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn snapshot_round_trip_is_exact() {
        let snap = sample_snapshot();
        let bytes = snapshot_to_bytes(&snap);
        assert_eq!(bytes.len(), snapshot_encoded_len(&snap));
        let back = decode_snapshot(&mut bytes.clone()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_rejects_malformed_frames() {
        let bytes = snapshot_to_bytes(&sample_snapshot());
        assert!(decode_snapshot(&mut bytes.slice(..SNAPSHOT_HEADER_LEN - 1)).is_err());
        assert!(decode_snapshot(&mut bytes.slice(..bytes.len() - 8)).is_err());
        let mut wrong_tag = BytesMut::from(&bytes[..]);
        wrong_tag[0] = BATCH_TAG;
        assert!(decode_snapshot(&mut wrong_tag.freeze()).is_err());
        // A header declaring a huge shape over a short payload must error
        // before allocating.
        let mut lying = BytesMut::from(&bytes[..SNAPSHOT_HEADER_LEN]);
        lying[2] = 64; // d = 64
        lying[3] = 0;
        assert!(matches!(
            decode_snapshot(&mut lying.freeze()),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn query_and_answer_batches_round_trip() {
        let c = 64;
        let queries = vec![
            RangeQuery::from_triples(&[(0, 3, 40)], c).unwrap(),
            RangeQuery::from_triples(&[(1, 0, 63), (4, 7, 7)], c).unwrap(),
            RangeQuery::from_triples(&[(0, 1, 2), (2, 3, 4), (3, 5, 6)], c).unwrap(),
        ];
        let qb = QueryBatch::new(c, queries);
        let bytes = qb.to_bytes();
        assert_eq!(bytes.len(), qb.encoded_len());
        assert_eq!(QueryBatch::decode(&mut bytes.clone()).unwrap(), qb);

        let ab = AnswerBatch::new(vec![0.0, -1.5, 0.333, f64::MIN_POSITIVE]);
        let bytes = ab.to_bytes();
        assert_eq!(bytes.len(), AnswerBatch::encoded_len(4));
        assert_eq!(AnswerBatch::decode(&mut bytes.clone()).unwrap(), ab);
    }

    #[test]
    fn query_batch_rejects_invalid_queries_and_truncation() {
        let c = 8;
        let qb = QueryBatch::new(c, vec![RangeQuery::from_triples(&[(0, 1, 5)], c).unwrap()]);
        let bytes = qb.to_bytes();
        assert!(QueryBatch::decode(&mut bytes.slice(..bytes.len() - 1)).is_err());
        assert!(QueryBatch::decode(&mut bytes.slice(..3)).is_err());
        // An out-of-domain interval inside the frame is rejected by the
        // query's own validation.
        let mut bad = BytesMut::from(&bytes[..]);
        let hi_offset = bytes.len() - 4;
        bad[hi_offset] = 200;
        assert!(matches!(
            QueryBatch::decode(&mut bad.freeze()),
            Err(ProtocolError::Malformed(_))
        ));
        // Lying count over a short payload.
        let mut lying = BytesMut::new();
        lying.put_u8(QUERY_BATCH_TAG);
        lying.put_u8(WIRE_VERSION);
        lying.put_u32_le(8);
        lying.put_u32_le(u32::MAX);
        assert!(QueryBatch::decode(&mut lying.freeze()).is_err());
    }

    #[test]
    fn any_stream_detects_framing() {
        let reports = sample_reports(6);
        let mut legacy = BytesMut::new();
        for r in &reports {
            r.encode(&mut legacy);
        }
        assert_eq!(decode_any_stream(legacy.freeze()).unwrap(), reports);
        let mut batched = BytesMut::new();
        Batch::new(reports.clone()).encode(&mut batched);
        assert_eq!(decode_any_stream(batched.freeze()).unwrap(), reports);
        assert!(decode_any_stream(Bytes::from(vec![])).unwrap().is_empty());
    }
}
