//! Binary wire format for client reports.
//!
//! One standalone report is exactly 17 bytes:
//!
//! ```text
//! +--------+----------------+----------------------+-----------+
//! | ver:u8 | group: u32 LE  | hash seed: u64 LE    | y: u32 LE |
//! +--------+----------------+----------------------+-----------+
//! ```
//!
//! `seed` identifies the user's OLH hash function and `y` is the
//! GRR-randomized hashed value — together the complete (and only) content
//! of an OLH report (paper §2.2). Everything else (ε, grid geometry) is
//! public plan state, so it never travels with the report.
//!
//! At collection scale (~10⁶ users) reports arrive in bulk, so the format
//! also defines a length-prefixed [`Batch`] frame that amortizes the
//! version byte and lets the server hand a whole slab of reports to the
//! sharded ingestion path in one decode:
//!
//! ```text
//! +-----------+--------+--------------+  count × 16-byte bodies
//! | tag: 0xB1 | ver:u8 | count:u32 LE |  (group, seed, y — no version)
//! +-----------+--------+--------------+
//! ```
//!
//! The tag byte `0xB1` can never open a standalone report (whose first
//! byte is [`WIRE_VERSION`]), so a stream of frames is self-describing:
//! the decoder peeks one byte to tell the two framings apart.

use crate::ProtocolError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Wire protocol version byte.
pub const WIRE_VERSION: u8 = 1;
/// Encoded size of one standalone report.
pub const REPORT_LEN: usize = 17;
/// First byte of a [`Batch`] frame; distinct from [`WIRE_VERSION`] so the
/// two framings coexist in one stream.
pub const BATCH_TAG: u8 = 0xB1;
/// Encoded size of a batch header (tag, version, count).
pub const BATCH_HEADER_LEN: usize = 6;
/// Encoded size of one report body inside a batch (no version byte).
pub const REPORT_BODY_LEN: usize = 16;

/// One user's randomized report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Report group (index into the plan's group list).
    pub group: u32,
    /// OLH per-user hash seed.
    pub seed: u64,
    /// Perturbed hashed value `GRR_{c'}(H(v))`.
    pub y: u32,
}

impl Report {
    /// Appends the encoded report to `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.reserve(REPORT_LEN);
        buf.put_u8(WIRE_VERSION);
        buf.put_u32_le(self.group);
        buf.put_u64_le(self.seed);
        buf.put_u32_le(self.y);
    }

    /// Encodes to a standalone buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(REPORT_LEN);
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Decodes one report from the front of `buf`, advancing it.
    pub fn decode(buf: &mut impl Buf) -> Result<Self, ProtocolError> {
        if buf.remaining() < REPORT_LEN {
            return Err(ProtocolError::Malformed("truncated report"));
        }
        let version = buf.get_u8();
        if version != WIRE_VERSION {
            return Err(ProtocolError::Malformed("unsupported wire version"));
        }
        let group = buf.get_u32_le();
        let seed = buf.get_u64_le();
        let y = buf.get_u32_le();
        Ok(Report { group, seed, y })
    }

    /// Decodes a whole stream of concatenated reports.
    pub fn decode_stream(mut buf: impl Buf) -> Result<Vec<Report>, ProtocolError> {
        if !buf.remaining().is_multiple_of(REPORT_LEN) {
            return Err(ProtocolError::Malformed(
                "stream length not a report multiple",
            ));
        }
        let mut out = Vec::with_capacity(buf.remaining() / REPORT_LEN);
        while buf.has_remaining() {
            out.push(Report::decode(&mut buf)?);
        }
        Ok(out)
    }

    fn encode_body(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.group);
        buf.put_u64_le(self.seed);
        buf.put_u32_le(self.y);
    }

    fn decode_body(buf: &mut impl Buf) -> Report {
        let group = buf.get_u32_le();
        let seed = buf.get_u64_le();
        let y = buf.get_u32_le();
        Report { group, seed, y }
    }
}

/// A length-prefixed frame of reports — the bulk unit the sharded
/// ingestion path consumes (see the module docs for the layout).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Batch {
    /// The framed reports, in arrival order.
    pub reports: Vec<Report>,
}

impl Batch {
    /// Wraps reports into a batch.
    pub fn new(reports: Vec<Report>) -> Self {
        Batch { reports }
    }

    /// Encoded size of a batch holding `count` reports.
    pub fn encoded_len(count: usize) -> usize {
        BATCH_HEADER_LEN + count * REPORT_BODY_LEN
    }

    /// Appends the encoded frame to `buf`.
    ///
    /// # Panics
    ///
    /// Panics if the batch holds more than `u32::MAX` reports (the count
    /// prefix is 32-bit); split earlier than that.
    pub fn encode(&self, buf: &mut BytesMut) {
        let count = u32::try_from(self.reports.len()).expect("batch exceeds u32 count prefix");
        buf.reserve(Self::encoded_len(self.reports.len()));
        buf.put_u8(BATCH_TAG);
        buf.put_u8(WIRE_VERSION);
        buf.put_u32_le(count);
        for r in &self.reports {
            r.encode_body(buf);
        }
    }

    /// Encodes to a standalone buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(Self::encoded_len(self.reports.len()));
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Decodes one batch frame from the front of `buf`, advancing it.
    /// Never panics on truncated or garbage input — every malformed shape
    /// maps to a [`ProtocolError`].
    pub fn decode(buf: &mut impl Buf) -> Result<Self, ProtocolError> {
        if buf.remaining() < BATCH_HEADER_LEN {
            return Err(ProtocolError::Malformed("truncated batch header"));
        }
        let tag = buf.get_u8();
        if tag != BATCH_TAG {
            return Err(ProtocolError::Malformed("not a batch frame"));
        }
        let version = buf.get_u8();
        if version != WIRE_VERSION {
            return Err(ProtocolError::Malformed("unsupported wire version"));
        }
        let count = buf.get_u32_le() as usize;
        // The count prefix is attacker-controlled: validate against the
        // actual payload before allocating (division, not multiplication,
        // so a huge count cannot overflow usize on 32-bit targets).
        if buf.remaining() / REPORT_BODY_LEN < count {
            return Err(ProtocolError::Malformed("batch shorter than its count"));
        }
        let mut reports = Vec::with_capacity(count);
        for _ in 0..count {
            reports.push(Report::decode_body(buf));
        }
        Ok(Batch { reports })
    }

    /// Decodes a stream of consecutive batch frames, concatenating their
    /// reports. Trailing bytes after the last complete frame are an error.
    pub fn decode_stream(mut buf: impl Buf) -> Result<Vec<Report>, ProtocolError> {
        let mut out = Vec::new();
        while buf.has_remaining() {
            out.extend(Batch::decode(&mut buf)?.reports);
        }
        Ok(out)
    }
}

/// Decodes a stream in either framing — legacy concatenated 17-byte
/// reports or length-prefixed [`Batch`] frames — by peeking the first
/// byte. An empty stream is zero reports in either framing.
pub fn decode_any_stream(buf: impl Buf) -> Result<Vec<Report>, ProtocolError> {
    if !buf.has_remaining() {
        return Ok(Vec::new());
    }
    if buf.chunk()[0] == BATCH_TAG {
        Batch::decode_stream(buf)
    } else {
        Report::decode_stream(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_single() {
        let r = Report {
            group: 7,
            seed: 0xDEAD_BEEF_CAFE_F00D,
            y: 3,
        };
        let bytes = r.to_bytes();
        assert_eq!(bytes.len(), REPORT_LEN);
        let back = Report::decode(&mut bytes.clone()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn round_trip_stream() {
        let reports: Vec<Report> = (0..100)
            .map(|i| Report {
                group: i % 5,
                seed: i as u64 * 77,
                y: i % 4,
            })
            .collect();
        let mut buf = BytesMut::new();
        for r in &reports {
            r.encode(&mut buf);
        }
        let back = Report::decode_stream(buf.freeze()).unwrap();
        assert_eq!(back, reports);
    }

    #[test]
    fn rejects_truncation_and_bad_version() {
        let r = Report {
            group: 1,
            seed: 2,
            y: 3,
        };
        let bytes = r.to_bytes();
        let mut short = bytes.slice(..REPORT_LEN - 1);
        assert!(Report::decode(&mut short).is_err());
        let mut wrong = BytesMut::from(&bytes[..]);
        wrong[0] = 99;
        assert!(Report::decode(&mut wrong.freeze()).is_err());
        // Stream with dangling tail bytes.
        let mut buf = BytesMut::from(&bytes[..]);
        buf.put_u8(0);
        assert!(Report::decode_stream(buf.freeze()).is_err());
    }

    fn sample_reports(n: u32) -> Vec<Report> {
        (0..n)
            .map(|i| Report {
                group: i % 7,
                seed: (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                y: i % 5,
            })
            .collect()
    }

    #[test]
    fn batch_round_trip() {
        for n in [0u32, 1, 100] {
            let batch = Batch::new(sample_reports(n));
            let bytes = batch.to_bytes();
            assert_eq!(bytes.len(), Batch::encoded_len(n as usize));
            let back = Batch::decode(&mut bytes.clone()).unwrap();
            assert_eq!(back, batch);
        }
    }

    #[test]
    fn batch_stream_concatenates_frames() {
        let mut buf = BytesMut::new();
        Batch::new(sample_reports(10)).encode(&mut buf);
        Batch::new(sample_reports(3)).encode(&mut buf);
        let reports = Batch::decode_stream(buf.freeze()).unwrap();
        assert_eq!(reports.len(), 13);
        assert_eq!(&reports[..10], &sample_reports(10)[..]);
        assert_eq!(&reports[10..], &sample_reports(3)[..]);
    }

    #[test]
    fn batch_rejects_malformed_frames() {
        let bytes = Batch::new(sample_reports(4)).to_bytes();
        // Truncated header.
        assert!(Batch::decode(&mut bytes.slice(..3)).is_err());
        // Truncated payload.
        assert!(Batch::decode(&mut bytes.slice(..bytes.len() - 1)).is_err());
        // Wrong tag and wrong version.
        let mut wrong_tag = BytesMut::from(&bytes[..]);
        wrong_tag[0] = WIRE_VERSION;
        assert!(Batch::decode(&mut wrong_tag.freeze()).is_err());
        let mut wrong_ver = BytesMut::from(&bytes[..]);
        wrong_ver[1] = 9;
        assert!(Batch::decode(&mut wrong_ver.freeze()).is_err());
        // A count prefix far beyond the payload must error before allocating.
        let mut lying = BytesMut::new();
        lying.put_u8(BATCH_TAG);
        lying.put_u8(WIRE_VERSION);
        lying.put_u32_le(u32::MAX);
        assert!(matches!(
            Batch::decode(&mut lying.freeze()),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn any_stream_detects_framing() {
        let reports = sample_reports(6);
        let mut legacy = BytesMut::new();
        for r in &reports {
            r.encode(&mut legacy);
        }
        assert_eq!(decode_any_stream(legacy.freeze()).unwrap(), reports);
        let mut batched = BytesMut::new();
        Batch::new(reports.clone()).encode(&mut batched);
        assert_eq!(decode_any_stream(batched.freeze()).unwrap(), reports);
        assert!(decode_any_stream(Bytes::from(vec![])).unwrap().is_empty());
    }
}
