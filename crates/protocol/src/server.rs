//! The aggregator side: streaming report ingestion and model finalization.
//!
//! The collector never stores raw reports: each incoming report updates
//! the support counters of its group through the group's
//! [`FrequencyOracle`] — the block-transposed `Olh::add_support_batch`
//! kernel for OLH groups (`O(grid cells)` per report, constant memory), a
//! counting pass for GRR groups — so arbitrarily large populations stream
//! through in one pass. `finalize` unbiases the counters into grid
//! frequencies and hands them to `privmdr-core` for Phase-2
//! post-processing and query answering under the plan's approach (HDG or
//! TDG).
//!
//! # Batched + sharded ingestion
//!
//! At ~10⁶ reports the support-counting pass dominates the collector, and
//! it is both batchable and embarrassingly parallel. Batches are first
//! *partitioned by group* (`partition_by_group`) so each group's reports
//! form one contiguous `(seed, y)` run, then each run is folded through
//! the group oracle's batch kernel
//! ([`FrequencyOracle::add_support_batch`]) instead of dispatching reports
//! to accumulators one at a time. For the sharded path,
//! [`Collector::ingest_batch`] splits a batch into contiguous shards
//! ([`privmdr_util::par::split_chunks`]), partitions *each shard's chunk*
//! by group, folds it into a private set of per-group counters on its own
//! thread ([`privmdr_util::par::par_map`]), then merges with `u64`
//! additions. The merged state is *exactly* the serial state — not
//! approximately: support counters are sums of per-report increments, and
//! `u64` adds commute, so regrouping by group and/or by shard never changes
//! a counter — and `finalize` is therefore bit-identical regardless of
//! batch size or shard count. Property tests in `tests/sharding_prop.rs`
//! pin down sharded ≡ batched ≡ serial.

use crate::cursor::{FrameCursor, ReportFrame};
use crate::plan::{GroupTarget, SessionPlan};
use crate::wire::{self, MechanismTag, Report};
use crate::ProtocolError;
use bytes::Buf;
use privmdr_core::{ApproachKind, Hdg, MechanismConfig, Model, ModelSnapshot, Msw, Tdg};
use privmdr_grid::{Grid1d, Grid2d};
use privmdr_oracles::{AdaptiveOracle, FrequencyOracle};
use privmdr_util::par::{par_map, split_chunks};

/// Splits a report batch into per-group `(seed, y)` runs, preserving
/// arrival order within each group, so each group's reports can be fed to
/// the block-transposed kernel in one contiguous pass. Callers must have
/// validated that every `report.group < groups`.
fn partition_by_group(reports: &[Report], groups: usize) -> Vec<Vec<(u64, u64)>> {
    let mut counts = vec![0usize; groups];
    for r in reports {
        counts[r.group as usize] += 1;
    }
    let mut by_group: Vec<Vec<(u64, u64)>> =
        counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    for r in reports {
        by_group[r.group as usize].push((r.seed, r.y));
    }
    by_group
}

/// [`partition_by_group`] over borrowed wire frames: the same count pass +
/// fill pass, reading groups and `(seed, y)` pairs straight from the frame
/// bytes instead of from a materialized `Vec<Report>`. Callers must have
/// validated every group index.
fn partition_frames_by_group(frames: &[ReportFrame<'_>], groups: usize) -> Vec<Vec<(u64, u64)>> {
    let mut counts = vec![0usize; groups];
    for frame in frames {
        for i in 0..frame.count() {
            counts[frame.group_at(i) as usize] += 1;
        }
    }
    let mut by_group: Vec<Vec<(u64, u64)>> =
        counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    for frame in frames {
        for i in 0..frame.count() {
            by_group[frame.group_at(i) as usize].push(frame.pair_at(i));
        }
    }
    by_group
}

/// Splits the concatenated report sequence of `frames` into at most
/// `shards` contiguous runs of near-equal report counts, slicing frames at
/// run boundaries (a frame straddling a boundary contributes a window to
/// each side). Support counters are sums of commuting `u64` increments, so
/// any contiguous split merges back to the serial state exactly.
fn split_frame_runs<'a>(frames: &[ReportFrame<'a>], shards: usize) -> Vec<Vec<ReportFrame<'a>>> {
    let total: usize = frames.iter().map(|f| f.count()).sum();
    let shards = shards.max(1).min(total.max(1));
    let (base, rem) = (total / shards, total % shards);
    let mut runs = Vec::with_capacity(shards);
    let (mut frame, mut offset) = (0usize, 0usize);
    for s in 0..shards {
        let mut want = base + usize::from(s < rem);
        let mut run = Vec::new();
        while want > 0 {
            let avail = frames[frame].count() - offset;
            if avail == 0 {
                frame += 1;
                offset = 0;
                continue;
            }
            let take = want.min(avail);
            run.push(frames[frame].slice(offset, take));
            offset += take;
            want -= take;
            if offset == frames[frame].count() {
                frame += 1;
                offset = 0;
            }
        }
        runs.push(run);
    }
    runs
}

/// Per-group streaming state: the group's frequency oracle (selected by
/// the plan's policy) plus its support counters. All accumulation and
/// estimation goes through the [`FrequencyOracle`] trait — for OLH groups
/// that is exactly the PR-4 block-transposed kernel, bit for bit.
#[derive(Debug, Clone)]
struct GroupAccumulator {
    oracle: AdaptiveOracle,
    supports: Vec<u64>,
    reports: u64,
}

impl GroupAccumulator {
    fn new(oracle: AdaptiveOracle, cells: usize) -> Self {
        GroupAccumulator {
            oracle,
            supports: vec![0; cells],
            reports: 0,
        }
    }

    fn ingest(&mut self, seed: u64, y: u64) {
        self.ingest_batch(&[(seed, y)]);
    }

    /// Folds a whole group-partitioned batch through the oracle's support
    /// kernel (the block-transposed [`privmdr_oracles::Olh`] kernel for
    /// OLH groups, a counting pass for GRR groups, an out-bin histogram
    /// pass for the float-carrying Wheel/SW groups) — bit-identical to
    /// ingesting the pairs one at a time: support counters are sums of
    /// per-report `u64` increments, and `u64` adds commute.
    fn ingest_batch(&mut self, pairs: &[(u64, u64)]) {
        self.oracle.add_support_batch(pairs, &mut self.supports);
        self.reports += pairs.len() as u64;
    }

    /// Unbiased frequency estimates (the oracle's §2.2 estimator).
    fn estimates(&self) -> Vec<f64> {
        self.oracle.estimate(&self.supports, self.reports)
    }
}

/// Streaming collector for one HDG session.
#[derive(Debug, Clone)]
pub struct Collector {
    plan: SessionPlan,
    groups: Vec<GroupAccumulator>,
    total_reports: u64,
}

impl Collector {
    /// Creates the collector for a plan.
    pub fn new(plan: SessionPlan) -> Result<Self, ProtocolError> {
        let mut groups = Vec::with_capacity(plan.group_count());
        for g in 0..plan.group_count() as u32 {
            let oracle = plan.group_oracle(g)?;
            // The counter layout is oracle-defined: SW observes more
            // out-bins than its input domain has values, so accumulators
            // are sized by `support_cells`, not the group's grid.
            let cells = oracle.support_cells();
            groups.push(GroupAccumulator::new(oracle, cells));
        }
        Ok(Collector {
            plan,
            groups,
            total_reports: 0,
        })
    }

    /// The session plan.
    pub fn plan(&self) -> &SessionPlan {
        &self.plan
    }

    /// Total reports ingested so far.
    pub fn report_count(&self) -> u64 {
        self.total_reports
    }

    /// Ingests one decoded report.
    pub fn ingest(&mut self, report: &Report) -> Result<(), ProtocolError> {
        let acc = self
            .groups
            .get_mut(report.group as usize)
            .ok_or(ProtocolError::UnknownGroup(report.group))?;
        acc.ingest(report.seed, report.y);
        self.total_reports += 1;
        Ok(())
    }

    /// Ingests a raw wire buffer — legacy concatenated reports or
    /// length-prefixed [`wire::Batch`] frames, auto-detected — serially;
    /// returns how many reports were processed.
    pub fn ingest_stream(&mut self, buf: impl Buf) -> Result<usize, ProtocolError> {
        self.ingest_stream_sharded(buf, 1)
    }

    /// Ingests a raw wire buffer (either framing, tagged or untagged)
    /// across `shards` parallel shard accumulators; returns how many
    /// reports were processed. A stream whose mechanism tag disagrees with
    /// the session plan — e.g. GRR-randomized reports arriving at an OLH
    /// session — is rejected before any counter is touched (untagged
    /// frames imply OLH/HDG).
    ///
    /// Contiguous buffers (`Bytes`, `&[u8]` — every production source)
    /// take the zero-copy [`FrameCursor`] path ([`Self::ingest_slice_sharded`]);
    /// fragmented multi-chunk buffers fall back to the decode-to-`Vec`
    /// path, which `tests/cursor_prop.rs` pins bit-identical.
    pub fn ingest_stream_sharded(
        &mut self,
        buf: impl Buf,
        shards: usize,
    ) -> Result<usize, ProtocolError> {
        if buf.chunk().len() == buf.remaining() {
            return self.ingest_slice_sharded(buf.chunk(), shards);
        }
        let (reports, tag) = wire::decode_any_stream_tagged(buf)?;
        if let Some(tag) = tag {
            if tag != self.plan.mechanism_tag() {
                return Err(ProtocolError::Malformed(
                    "stream mechanism tag does not match the session plan",
                ));
            }
        }
        self.ingest_batch(&reports, shards)
    }

    /// Zero-copy form of [`Self::ingest_stream_sharded`]: walks the wire
    /// frames with a borrowing [`FrameCursor`] (same validation, same
    /// errors) and feeds `(seed, y)` pairs to the support kernel straight
    /// from `bytes` — no intermediate `Vec<Report>`. The whole stream is
    /// validated (framing, mechanism tag, group indices) before any
    /// counter moves, so errors leave the collector untouched, exactly
    /// like the decode-to-`Vec` path.
    pub fn ingest_slice_sharded(
        &mut self,
        bytes: &[u8],
        shards: usize,
    ) -> Result<usize, ProtocolError> {
        let mut cursor = FrameCursor::new(bytes);
        let mut frames = Vec::new();
        let mut stream_tag: Option<MechanismTag> = None;
        while let Some(frame) = cursor.next_frame()? {
            let tag = frame.tag();
            if *stream_tag.get_or_insert(tag) != tag {
                return Err(ProtocolError::Malformed(
                    "conflicting mechanism tags in stream",
                ));
            }
            frames.push(frame);
        }
        if let Some(tag) = stream_tag {
            if tag != self.plan.mechanism_tag() {
                return Err(ProtocolError::Malformed(
                    "stream mechanism tag does not match the session plan",
                ));
            }
        }
        self.ingest_frames(&frames, shards)
    }

    /// Ingests borrowed wire frames across `shards` shard accumulators —
    /// the frame-window counterpart of [`Self::ingest_batch`], with the
    /// same validate-up-front error contract and the same bit-identity:
    /// group partitioning reads pairs directly from the frame bytes, and
    /// the sharded path splits the concatenated frame sequence into
    /// contiguous runs whose private counters merge by commutative `u64`
    /// adds.
    pub(crate) fn ingest_frames(
        &mut self,
        frames: &[ReportFrame<'_>],
        shards: usize,
    ) -> Result<usize, ProtocolError> {
        let groups = self.groups.len();
        for frame in frames {
            for i in 0..frame.count() {
                let g = frame.group_at(i);
                if g as usize >= groups {
                    return Err(ProtocolError::UnknownGroup(g));
                }
            }
        }
        let total: usize = frames.iter().map(|f| f.count()).sum();
        if shards <= 1 || total < 2 {
            for (g, pairs) in partition_frames_by_group(frames, groups).iter().enumerate() {
                self.groups[g].ingest_batch(pairs);
            }
        } else {
            let runs = split_frame_runs(frames, shards);
            let oracles: Vec<AdaptiveOracle> = self.groups.iter().map(|g| g.oracle).collect();
            let cells: Vec<usize> = self.groups.iter().map(|g| g.supports.len()).collect();
            let partials = par_map(&runs, |run| {
                let by_group = partition_frames_by_group(run, oracles.len());
                let mut supports: Vec<Vec<u64>> =
                    cells.iter().map(|&cells| vec![0u64; cells]).collect();
                let counts: Vec<u64> = by_group.iter().map(|p| p.len() as u64).collect();
                for ((oracle, sup), pairs) in oracles.iter().zip(&mut supports).zip(&by_group) {
                    oracle.add_support_batch(pairs, sup);
                }
                (supports, counts)
            });
            for (supports, counts) in partials {
                for ((acc, shard_supports), count) in
                    self.groups.iter_mut().zip(supports).zip(counts)
                {
                    for (dst, s) in acc.supports.iter_mut().zip(shard_supports) {
                        *dst += s;
                    }
                    acc.reports += count;
                }
            }
        }
        self.total_reports += total as u64;
        Ok(total)
    }

    /// Ingests a batch of decoded reports across `shards` parallel shard
    /// accumulators (one private set of support counters per shard, merged
    /// by addition — see the module docs for why the result is bit-identical
    /// to serial ingestion). `shards = 1` is the serial path.
    ///
    /// The whole batch is validated up front, so on error the collector
    /// state is unchanged (no partially ingested batch).
    pub fn ingest_batch(
        &mut self,
        reports: &[Report],
        shards: usize,
    ) -> Result<usize, ProtocolError> {
        if let Some(bad) = reports
            .iter()
            .find(|r| r.group as usize >= self.groups.len())
        {
            return Err(ProtocolError::UnknownGroup(bad.group));
        }
        if shards <= 1 || reports.len() < 2 {
            for (g, pairs) in partition_by_group(reports, self.groups.len())
                .iter()
                .enumerate()
            {
                self.groups[g].ingest_batch(pairs);
            }
        } else {
            let chunks = split_chunks(reports, shards);
            // AdaptiveOracle is Copy; snapshot the per-group oracles so
            // shard closures don't borrow `self`.
            let oracles: Vec<AdaptiveOracle> = self.groups.iter().map(|g| g.oracle).collect();
            let cells: Vec<usize> = self.groups.iter().map(|g| g.supports.len()).collect();
            let partials = par_map(&chunks, |chunk| {
                let by_group = partition_by_group(chunk, oracles.len());
                let mut supports: Vec<Vec<u64>> =
                    cells.iter().map(|&cells| vec![0u64; cells]).collect();
                let counts: Vec<u64> = by_group.iter().map(|p| p.len() as u64).collect();
                for ((oracle, sup), pairs) in oracles.iter().zip(&mut supports).zip(&by_group) {
                    oracle.add_support_batch(pairs, sup);
                }
                (supports, counts)
            });
            for (supports, counts) in partials {
                for ((acc, shard_supports), count) in
                    self.groups.iter_mut().zip(supports).zip(counts)
                {
                    for (dst, s) in acc.supports.iter_mut().zip(shard_supports) {
                        *dst += s;
                    }
                    acc.reports += count;
                }
            }
        }
        self.total_reports += reports.len() as u64;
        Ok(reports.len())
    }

    /// The raw per-group state: `(support counters, reports ingested)`.
    /// Exposed for observability and for the sharded-vs-serial equivalence
    /// tests; estimates derived from it are produced by [`Self::finalize`].
    pub fn group_state(&self, group: u32) -> Result<(&[u64], u64), ProtocolError> {
        self.groups
            .get(group as usize)
            .map(|g| (g.supports.as_slice(), g.reports))
            .ok_or(ProtocolError::UnknownGroup(group))
    }

    /// Fans another collector's state into this one. Both collectors must
    /// run the *same* session plan (geometry, ε, seed, oracle policy,
    /// approach); the merge is then exact by construction — support
    /// counters are sums of per-report `u64` increments and `u64` adds
    /// commute, so a K-way split merged in any order is bit-identical to
    /// one collector having seen every report. On a plan mismatch the
    /// error leaves `self` untouched.
    ///
    /// Counter additions saturate rather than wrap: honest populations sit
    /// astronomically far below `u64::MAX` (saturation is unreachable, so
    /// the bit-identity contract is unaffected), but a hostile
    /// [`crate::stream`] state frame claiming near-`u64::MAX` counts must
    /// not be able to panic a debug-build collector.
    pub fn merge(&mut self, other: &Collector) -> Result<(), ProtocolError> {
        if self.plan != other.plan {
            return Err(ProtocolError::BadPlan(
                "cannot merge collectors with different session plans".into(),
            ));
        }
        for (dst, src) in self.groups.iter_mut().zip(&other.groups) {
            for (d, s) in dst.supports.iter_mut().zip(&src.supports) {
                *d = d.saturating_add(*s);
            }
            dst.reports = dst.reports.saturating_add(src.reports);
        }
        self.total_reports = self.total_reports.saturating_add(other.total_reports);
        Ok(())
    }

    /// Adds raw per-group counters decoded from a wire state frame
    /// (`crate::stream`). The caller has already validated the group index
    /// and counter length against the plan.
    pub(crate) fn load_group_state(&mut self, group: usize, supports: &[u64], reports: u64) {
        let acc = &mut self.groups[group];
        debug_assert_eq!(acc.supports.len(), supports.len());
        for (d, s) in acc.supports.iter_mut().zip(supports) {
            *d = d.saturating_add(*s);
        }
        acc.reports = acc.reports.saturating_add(reports);
        self.total_reports = self.total_reports.saturating_add(reports);
    }

    /// Unbiases each group's counters into the session's per-attribute
    /// marginals (the MSW shape: group `t` is attribute `t`'s SW/EM
    /// reconstruction at full resolution).
    fn marginals(&self) -> Vec<Vec<f64>> {
        self.groups.iter().map(|acc| acc.estimates()).collect()
    }

    /// Unbiases the per-group counters into the session's raw grids.
    fn grids(&self) -> Result<(Vec<Grid1d>, Vec<Grid2d>), ProtocolError> {
        let g = self.plan.granularities;
        let mut one_d = Vec::with_capacity(self.plan.d);
        let mut two_d = Vec::new();
        for (target, acc) in self.plan.groups.iter().zip(&self.groups) {
            match *target {
                GroupTarget::OneD { attr } => {
                    one_d.push(
                        Grid1d::from_freqs(attr, g.g1, self.plan.c, acc.estimates())
                            .map_err(|e| ProtocolError::BadPlan(e.to_string()))?,
                    );
                }
                GroupTarget::TwoD { j, k } => {
                    two_d.push(
                        Grid2d::from_freqs((j, k), g.g2, self.plan.c, acc.estimates())
                            .map_err(|e| ProtocolError::BadPlan(e.to_string()))?,
                    );
                }
            }
        }
        Ok((one_d, two_d))
    }

    /// Rejects a finalize configuration whose approach disagrees with the
    /// plan's group structure (a TDG plan collected no 1-D grids, so it
    /// cannot finalize into HDG, and vice versa).
    fn check_approach(&self, config: &MechanismConfig) -> Result<(), ProtocolError> {
        if config.approach != self.plan.approach {
            return Err(ProtocolError::BadPlan(format!(
                "finalize approach {} does not match the plan's {}",
                config.approach, self.plan.approach
            )));
        }
        Ok(())
    }

    /// Finalizes the session into a queryable model of the plan's approach
    /// (`config.approach` must agree with the plan). `config.oracle` is a
    /// *collection-side* setting and is deliberately not validated here:
    /// the plan's policy already shaped every counter during ingestion,
    /// and finalization only unbiases through each group's accumulator —
    /// nothing downstream of the counters consults the policy.
    pub fn finalize(&self, config: MechanismConfig) -> Result<Box<dyn Model>, ProtocolError> {
        self.check_approach(&config)?;
        match config.approach {
            ApproachKind::Hdg => {
                let (one_d, two_d) = self.grids()?;
                Hdg::new(config).model_from_grids(one_d, two_d)
            }
            ApproachKind::Tdg => {
                let (_, two_d) = self.grids()?;
                Tdg::new(config).model_from_grids(self.plan.d, two_d)
            }
            ApproachKind::Msw => Msw::model_from_distributions(self.plan.c, &self.marginals()),
        }
        .map_err(|e| ProtocolError::BadPlan(e.to_string()))
    }

    /// Finalizes the session into a serializable [`ModelSnapshot`] — the
    /// artifact a query-serving process restores (`crate::serve`). Runs the
    /// same Phase-2 post-processing as [`Self::finalize`], so
    /// `snapshot(..).to_model()` answers bit-identically to `finalize(..)`.
    pub fn snapshot(&self, config: MechanismConfig) -> Result<ModelSnapshot, ProtocolError> {
        self.check_approach(&config)?;
        match config.approach {
            ApproachKind::Hdg => {
                let (one_d, two_d) = self.grids()?;
                Hdg::new(config).snapshot_from_grids(one_d, two_d)
            }
            ApproachKind::Tdg => {
                let (_, two_d) = self.grids()?;
                Tdg::new(config).snapshot_from_grids(self.plan.d, two_d)
            }
            ApproachKind::Msw => {
                Msw::new(config).snapshot_from_marginals(self.plan.d, self.plan.c, self.marginals())
            }
        }
        .map_err(|e| ProtocolError::BadPlan(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use bytes::BytesMut;
    use privmdr_util::rng::derive_rng;

    #[test]
    fn rejects_unknown_group() {
        let plan = SessionPlan::new(100, 3, 16, 1.0, 1).unwrap();
        let mut collector = Collector::new(plan).unwrap();
        let bad = Report {
            group: 999,
            seed: 1,
            y: 0,
        };
        assert!(matches!(
            collector.ingest(&bad),
            Err(ProtocolError::UnknownGroup(999))
        ));
    }

    #[test]
    fn streaming_counts_reports() {
        let plan = SessionPlan::new(1000, 3, 16, 1.0, 2).unwrap();
        let mut collector = Collector::new(plan.clone()).unwrap();
        let mut rng = derive_rng(9, &[0]);
        let mut buf = BytesMut::new();
        for uid in 0..500u64 {
            let client = Client::new(&plan, uid).unwrap();
            client
                .report(&[1, 5, 9], &mut rng)
                .unwrap()
                .encode(&mut buf);
        }
        let ingested = collector.ingest_stream(buf.freeze()).unwrap();
        assert_eq!(ingested, 500);
        assert_eq!(collector.report_count(), 500);
    }

    #[test]
    fn sharded_batch_matches_serial_exactly() {
        let plan = SessionPlan::new(4_000, 3, 16, 1.0, 4).unwrap();
        let mut rng = derive_rng(21, &[0]);
        let reports: Vec<Report> = (0..4_000u64)
            .map(|uid| {
                let client = Client::new(&plan, uid).unwrap();
                client
                    .report(&[(uid % 16) as u16, 3, ((uid / 7) % 16) as u16], &mut rng)
                    .unwrap()
            })
            .collect();

        let mut serial = Collector::new(plan.clone()).unwrap();
        serial.ingest_batch(&reports, 1).unwrap();
        for shards in [2usize, 3, 8, 64] {
            let mut sharded = Collector::new(plan.clone()).unwrap();
            sharded.ingest_batch(&reports, shards).unwrap();
            assert_eq!(sharded.report_count(), serial.report_count());
            for g in 0..plan.group_count() as u32 {
                assert_eq!(
                    sharded.group_state(g).unwrap(),
                    serial.group_state(g).unwrap(),
                    "group {g} diverges at {shards} shards"
                );
            }
        }
    }

    #[test]
    fn batch_with_unknown_group_leaves_state_untouched() {
        let plan = SessionPlan::new(1_000, 3, 16, 1.0, 1).unwrap();
        let mut collector = Collector::new(plan).unwrap();
        let mut reports = vec![
            Report {
                group: 0,
                seed: 1,
                y: 0,
            };
            10
        ];
        reports.push(Report {
            group: 42,
            seed: 2,
            y: 1,
        });
        assert!(matches!(
            collector.ingest_batch(&reports, 4),
            Err(ProtocolError::UnknownGroup(42))
        ));
        assert_eq!(collector.report_count(), 0);
        let (supports, n) = collector.group_state(0).unwrap();
        assert_eq!(n, 0);
        assert!(supports.iter().all(|&s| s == 0));
    }

    #[test]
    fn batched_stream_matches_legacy_stream() {
        let plan = SessionPlan::new(2_000, 3, 16, 1.0, 8).unwrap();
        let mut rng = derive_rng(33, &[0]);
        let reports: Vec<Report> = (0..2_000u64)
            .map(|uid| {
                Client::new(&plan, uid)
                    .unwrap()
                    .report(&[1, (uid % 16) as u16, 9], &mut rng)
                    .unwrap()
            })
            .collect();

        let mut legacy_buf = BytesMut::new();
        for r in &reports {
            r.encode(&mut legacy_buf);
        }
        let mut batch_buf = BytesMut::new();
        for chunk in reports.chunks(700) {
            crate::wire::Batch::new(chunk.to_vec()).encode(&mut batch_buf);
        }
        // Batch framing saves the per-report version byte.
        assert!(batch_buf.len() < legacy_buf.len());

        let mut via_legacy = Collector::new(plan.clone()).unwrap();
        via_legacy.ingest_stream(legacy_buf.freeze()).unwrap();
        let mut via_batches = Collector::new(plan.clone()).unwrap();
        via_batches
            .ingest_stream_sharded(batch_buf.freeze(), 4)
            .unwrap();
        for g in 0..plan.group_count() as u32 {
            assert_eq!(
                via_legacy.group_state(g).unwrap(),
                via_batches.group_state(g).unwrap()
            );
        }
    }

    #[test]
    fn tdg_session_collects_and_finalizes_end_to_end() {
        use crate::client::ClientFactory;
        use privmdr_oracles::OraclePolicy;
        let plan = SessionPlan::with_mechanism(
            3_000,
            3,
            16,
            2.0,
            6,
            OraclePolicy::Auto,
            ApproachKind::Tdg,
        )
        .unwrap();
        // A TDG plan has only the (d choose 2) pair groups.
        assert_eq!(plan.group_count(), 3);
        let factory = ClientFactory::new(&plan).unwrap();
        let mut collector = Collector::new(plan.clone()).unwrap();
        let mut rng = derive_rng(12, &[0]);
        for uid in 0..3_000u64 {
            let record = [(uid % 16) as u16, ((uid / 5) % 16) as u16, 3u16];
            collector
                .ingest(&factory.client(uid).report(&record, &mut rng).unwrap())
                .unwrap();
        }
        let config = MechanismConfig::default()
            .with_approach(ApproachKind::Tdg)
            .with_oracle(OraclePolicy::Auto);
        let model = collector.finalize(config).unwrap();
        let q = privmdr_query::RangeQuery::from_triples(&[(0, 0, 15), (1, 0, 15)], 16).unwrap();
        let full = model.answer(&q);
        assert!((full - 1.0).abs() < 0.25, "full-domain answer {full}");
        // The snapshot path restores through the same approach.
        let snap = collector.snapshot(config).unwrap();
        assert_eq!(snap.approach, ApproachKind::Tdg);
        let restored = snap.to_model().unwrap();
        assert_eq!(restored.answer(&q).to_bits(), model.answer(&q).to_bits());
        // Finalizing with a mismatched approach is rejected.
        assert!(collector.finalize(MechanismConfig::default()).is_err());
    }

    #[test]
    fn mismatched_stream_tag_is_rejected_before_ingestion() {
        use privmdr_oracles::OraclePolicy;
        let plan = SessionPlan::new(1_000, 3, 16, 1.0, 2).unwrap(); // OLH/HDG
        let mut collector = Collector::new(plan).unwrap();
        let reports = vec![
            Report {
                group: 0,
                seed: 0,
                y: 1,
            };
            5
        ];
        let mut buf = BytesMut::new();
        crate::wire::Batch::tagged(
            reports,
            crate::wire::MechanismTag {
                oracle: OraclePolicy::Grr,
                approach: ApproachKind::Hdg,
            },
        )
        .encode(&mut buf);
        assert!(matches!(
            collector.ingest_stream(buf.freeze()),
            Err(ProtocolError::Malformed(_))
        ));
        assert_eq!(collector.report_count(), 0);
    }

    #[test]
    fn client_factory_reports_match_client_new_exactly() {
        use crate::client::{Client, ClientFactory};
        use privmdr_oracles::OraclePolicy;
        for (oracle, approach) in [
            (OraclePolicy::Olh, ApproachKind::Hdg),
            (OraclePolicy::Grr, ApproachKind::Hdg),
            (OraclePolicy::Auto, ApproachKind::Tdg),
        ] {
            let plan = SessionPlan::with_mechanism(2_000, 3, 16, 1.0, 9, oracle, approach).unwrap();
            let factory = ClientFactory::new(&plan).unwrap();
            for uid in 0..100u64 {
                let record = [(uid % 16) as u16, 5, 9];
                let mut rng_a = derive_rng(uid, &[1]);
                let mut rng_b = derive_rng(uid, &[1]);
                let via_new = Client::new(&plan, uid)
                    .unwrap()
                    .report(&record, &mut rng_a)
                    .unwrap();
                let via_factory = factory.client(uid).report(&record, &mut rng_b).unwrap();
                assert_eq!(via_new, via_factory, "uid {uid} diverges");
            }
        }
    }

    #[test]
    fn finalize_produces_queryable_model() {
        let plan = SessionPlan::new(2_000, 3, 16, 2.0, 3).unwrap();
        let mut collector = Collector::new(plan.clone()).unwrap();
        let mut rng = derive_rng(10, &[0]);
        for uid in 0..2_000u64 {
            let client = Client::new(&plan, uid).unwrap();
            let record = [(uid % 16) as u16, ((uid / 3) % 16) as u16, 4u16];
            collector
                .ingest(&client.report(&record, &mut rng).unwrap())
                .unwrap();
        }
        let model = collector.finalize(MechanismConfig::default()).unwrap();
        let q = privmdr_query::RangeQuery::from_triples(&[(0, 0, 15), (1, 0, 15)], 16).unwrap();
        let full = model.answer(&q);
        assert!((full - 1.0).abs() < 0.2, "full-domain answer {full}");
    }
}
