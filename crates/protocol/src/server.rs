//! The aggregator side: streaming report ingestion and model finalization.
//!
//! The collector never stores raw reports: each incoming report updates the
//! OLH support counters of its group (`O(grid cells)` work, constant
//! memory), so arbitrarily large populations stream through in one pass.
//! `finalize` unbiases the counters into grid frequencies and hands them to
//! `privmdr-core` for Phase-2 post-processing and query answering.

use crate::plan::{GroupTarget, SessionPlan};
use crate::wire::Report;
use crate::ProtocolError;
use bytes::Buf;
use privmdr_core::{Hdg, MechanismConfig, Model};
use privmdr_grid::{Grid1d, Grid2d};
use privmdr_oracles::olh::Olh;
use privmdr_util::hash::SeededHash;

/// Per-group streaming state.
#[derive(Debug, Clone)]
struct GroupAccumulator {
    olh: Olh,
    supports: Vec<u64>,
    reports: u64,
}

impl GroupAccumulator {
    fn new(olh: Olh, cells: usize) -> Self {
        GroupAccumulator {
            olh,
            supports: vec![0; cells],
            reports: 0,
        }
    }

    fn ingest(&mut self, seed: u64, y: u32) {
        let hash = SeededHash::new(seed, self.olh.c_prime());
        for (cell, support) in self.supports.iter_mut().enumerate() {
            if hash.hash(cell) == y as usize {
                *support += 1;
            }
        }
        self.reports += 1;
    }

    /// Unbiased frequency estimates (paper §2.2's OLH estimator).
    fn estimates(&self) -> Vec<f64> {
        let n = self.reports.max(1) as f64;
        let (p, q) = (self.olh.p(), self.olh.q());
        self.supports
            .iter()
            .map(|&s| (s as f64 / n - q) / (p - q))
            .collect()
    }
}

/// Streaming collector for one HDG session.
#[derive(Debug, Clone)]
pub struct Collector {
    plan: SessionPlan,
    groups: Vec<GroupAccumulator>,
    total_reports: u64,
}

impl Collector {
    /// Creates the collector for a plan.
    pub fn new(plan: SessionPlan) -> Result<Self, ProtocolError> {
        let mut groups = Vec::with_capacity(plan.group_count());
        for g in 0..plan.group_count() as u32 {
            let domain = plan.group_domain(g)?;
            let olh = Olh::new(plan.epsilon, domain)
                .map_err(|e| ProtocolError::BadPlan(e.to_string()))?;
            groups.push(GroupAccumulator::new(olh, domain));
        }
        Ok(Collector {
            plan,
            groups,
            total_reports: 0,
        })
    }

    /// The session plan.
    pub fn plan(&self) -> &SessionPlan {
        &self.plan
    }

    /// Total reports ingested so far.
    pub fn report_count(&self) -> u64 {
        self.total_reports
    }

    /// Ingests one decoded report.
    pub fn ingest(&mut self, report: &Report) -> Result<(), ProtocolError> {
        let acc = self
            .groups
            .get_mut(report.group as usize)
            .ok_or(ProtocolError::UnknownGroup(report.group))?;
        acc.ingest(report.seed, report.y);
        self.total_reports += 1;
        Ok(())
    }

    /// Ingests a raw wire buffer of concatenated reports; returns how many
    /// were processed.
    pub fn ingest_stream(&mut self, buf: impl Buf) -> Result<usize, ProtocolError> {
        let reports = Report::decode_stream(buf)?;
        for r in &reports {
            self.ingest(r)?;
        }
        Ok(reports.len())
    }

    /// Finalizes the session into a queryable HDG model.
    pub fn finalize(&self, config: MechanismConfig) -> Result<Box<dyn Model>, ProtocolError> {
        let g = self.plan.granularities;
        let mut one_d = Vec::with_capacity(self.plan.d);
        let mut two_d = Vec::new();
        for (target, acc) in self.plan.groups.iter().zip(&self.groups) {
            match *target {
                GroupTarget::OneD { attr } => {
                    one_d.push(
                        Grid1d::from_freqs(attr, g.g1, self.plan.c, acc.estimates())
                            .map_err(|e| ProtocolError::BadPlan(e.to_string()))?,
                    );
                }
                GroupTarget::TwoD { j, k } => {
                    two_d.push(
                        Grid2d::from_freqs((j, k), g.g2, self.plan.c, acc.estimates())
                            .map_err(|e| ProtocolError::BadPlan(e.to_string()))?,
                    );
                }
            }
        }
        Hdg::new(config)
            .model_from_grids(one_d, two_d)
            .map_err(|e| ProtocolError::BadPlan(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use bytes::BytesMut;
    use privmdr_util::rng::derive_rng;

    #[test]
    fn rejects_unknown_group() {
        let plan = SessionPlan::new(100, 3, 16, 1.0, 1).unwrap();
        let mut collector = Collector::new(plan).unwrap();
        let bad = Report {
            group: 999,
            seed: 1,
            y: 0,
        };
        assert!(matches!(
            collector.ingest(&bad),
            Err(ProtocolError::UnknownGroup(999))
        ));
    }

    #[test]
    fn streaming_counts_reports() {
        let plan = SessionPlan::new(1000, 3, 16, 1.0, 2).unwrap();
        let mut collector = Collector::new(plan.clone()).unwrap();
        let mut rng = derive_rng(9, &[0]);
        let mut buf = BytesMut::new();
        for uid in 0..500u64 {
            let client = Client::new(&plan, uid).unwrap();
            client
                .report(&[1, 5, 9], &mut rng)
                .unwrap()
                .encode(&mut buf);
        }
        let ingested = collector.ingest_stream(buf.freeze()).unwrap();
        assert_eq!(ingested, 500);
        assert_eq!(collector.report_count(), 500);
    }

    #[test]
    fn finalize_produces_queryable_model() {
        let plan = SessionPlan::new(2_000, 3, 16, 2.0, 3).unwrap();
        let mut collector = Collector::new(plan.clone()).unwrap();
        let mut rng = derive_rng(10, &[0]);
        for uid in 0..2_000u64 {
            let client = Client::new(&plan, uid).unwrap();
            let record = [(uid % 16) as u16, ((uid / 3) % 16) as u16, 4u16];
            collector
                .ingest(&client.report(&record, &mut rng).unwrap())
                .unwrap();
        }
        let model = collector.finalize(MechanismConfig::default()).unwrap();
        let q = privmdr_query::RangeQuery::from_triples(&[(0, 0, 15), (1, 0, 15)], 16).unwrap();
        let full = model.answer(&q);
        assert!((full - 1.0).abs() < 0.2, "full-domain answer {full}");
    }
}
