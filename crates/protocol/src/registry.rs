//! The multi-tenant serving tier: session-keyed snapshots, epoch
//! hot-swap, and a bounded per-tenant answer cache.
//!
//! A [`SnapshotRegistry`] holds one [`Tenant`] per session id. Each tenant
//! owns the *published epoch* — an [`Arc`] bundling a `ModelSnapshot`, the
//! [`QueryServer`] restored from it, and a monotonically increasing
//! publish **version** — plus a bounded LRU [`AnswerCache`] in front of
//! the server.
//!
//! # Hot-swap semantics
//!
//! Publishing a new epoch builds the replacement `QueryServer` *outside*
//! every lock, then swaps the `Arc` under a briefly-held `Mutex` (the
//! `Mutex<Arc<_>>` flavor of ArcSwap). Readers clone the `Arc` under the
//! same brief lock and answer entirely against their clone, so an
//! in-flight query batch keeps answering against the epoch it started on
//! while the swap lands — readers never wait on model construction, and a
//! swap never waits for readers to drain.
//!
//! # Cache-key / invalidation contract
//!
//! A cache entry's key is the tenant's publish **version** (8 bytes LE)
//! followed by the query's canonical encoding
//! (`RangeQuery::write_canonical_key`). The version prefix is what makes
//! cached answers exact rather than probabilistic: keys from different
//! epochs can never alias, so even an entry surviving past a swap (an
//! insert racing the publisher's [`AnswerCache::clear`]) is still correct
//! for the version it names — the clear is memory hygiene, not a
//! correctness requirement. A republished snapshot that is *equal* to the
//! current one (fingerprint prefilter, then full `==`) is a no-op: the
//! version and the warm cache survive.
//!
//! Cached ≡ uncached ≡ single-tenant holds bit-for-bit because per-query
//! answers are pure functions of the snapshot (serving is read-only
//! post-processing): answering a batch's misses as a sub-batch returns
//! the same bits the full batch would have produced, which is the same
//! frame-split invariance the serving equivalence suites already pin.

use crate::serve::QueryServer;
use crate::wire::{AnswerBatch, QueryBatch};
use crate::ProtocolError;
use bytes::{Buf, Bytes};
use privmdr_core::{EstimatorTelemetry, ModelSnapshot};
use privmdr_query::RangeQuery;
use privmdr_util::sync::lock_unpoisoned;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Sentinel for "no slot" in the LRU's intrusive links.
const NIL: usize = usize::MAX;

/// One cached answer with its LRU links.
#[derive(Debug)]
struct Slot {
    key: Box<[u8]>,
    value: f64,
    prev: usize,
    next: usize,
}

/// The cache's guarded state: a key → slot map plus a slab of slots
/// threaded into a recency list (`head` = most recent).
#[derive(Debug, Default)]
struct LruInner {
    map: HashMap<Box<[u8]>, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl LruInner {
    fn new() -> Self {
        LruInner {
            head: NIL,
            tail: NIL,
            ..LruInner::default()
        }
    }

    fn detach(&mut self, i: usize) {
        let (p, n) = (self.slots[i].prev, self.slots[i].next);
        if p != NIL {
            self.slots[p].next = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.slots[n].prev = p;
        } else {
            self.tail = p;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        } else {
            self.tail = i;
        }
        self.head = i;
    }

    fn touch(&mut self, i: usize) {
        if self.head != i {
            self.detach(i);
            self.push_front(i);
        }
    }

    fn insert(&mut self, key: Vec<u8>, value: f64, cap: usize) {
        let key: Box<[u8]> = key.into_boxed_slice();
        if let Some(&i) = self.map.get(&key) {
            // Deterministic answers mean the value cannot actually differ,
            // but refresh it anyway and promote the entry.
            self.slots[i].value = value;
            self.touch(i);
            return;
        }
        if self.map.len() >= cap {
            let t = self.tail;
            self.detach(t);
            self.map.remove(&self.slots[t].key);
            self.free.push(t);
            self.evictions += 1;
        }
        let slot = Slot {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        };
        self.push_front(i);
        self.map.insert(key, i);
    }
}

/// Point-in-time counters of one [`AnswerCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes that fell through to the model.
    pub misses: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
    /// Entries currently held.
    pub len: usize,
    /// Capacity bound (`0` = caching disabled).
    pub cap: usize,
}

/// A bounded LRU of `canonical-key → answer`, safe to share across query
/// threads (one `Mutex` around the whole structure, recovered rather than
/// propagated on poison — entries are deterministic, so a map a panicking
/// thread abandoned is still valid). With the HDG pair caches now built
/// eagerly and lock-free, this cache and the registry's tenant map hold
/// the serving tier's only remaining locks, so the poisoning-recovery
/// regression test lives here. Batch probes and inserts each take the
/// lock once.
#[derive(Debug)]
pub struct AnswerCache {
    inner: Mutex<LruInner>,
    cap: usize,
}

impl AnswerCache {
    /// A cache bounded to `cap` entries; `cap == 0` disables caching
    /// (probes always miss, inserts are dropped).
    pub fn new(cap: usize) -> Self {
        AnswerCache {
            inner: Mutex::new(LruInner::new()),
            cap,
        }
    }

    /// The capacity bound.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Looks up every key under one lock acquisition, promoting hits to
    /// most-recent. Misses come back as `None` in the matching position.
    pub fn probe(&self, keys: &[Vec<u8>]) -> Vec<Option<f64>> {
        if self.cap == 0 {
            return vec![None; keys.len()];
        }
        let mut inner = lock_unpoisoned(&self.inner);
        keys.iter()
            .map(|key| match inner.map.get(key.as_slice()).copied() {
                Some(i) => {
                    inner.hits += 1;
                    inner.touch(i);
                    Some(inner.slots[i].value)
                }
                None => {
                    inner.misses += 1;
                    None
                }
            })
            .collect()
    }

    /// Inserts every pair under one lock acquisition, evicting
    /// least-recently-used entries past the capacity bound.
    pub fn insert_many(&self, pairs: impl IntoIterator<Item = (Vec<u8>, f64)>) {
        if self.cap == 0 {
            return;
        }
        let mut inner = lock_unpoisoned(&self.inner);
        for (key, value) in pairs {
            inner.insert(key, value, self.cap);
        }
    }

    /// Drops every entry (the swap-time invalidation). Counters survive.
    pub fn clear(&self) {
        let mut inner = lock_unpoisoned(&self.inner);
        inner.map.clear();
        inner.slots.clear();
        inner.free.clear();
        inner.head = NIL;
        inner.tail = NIL;
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let inner = lock_unpoisoned(&self.inner);
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            len: inner.map.len(),
            cap: self.cap,
        }
    }
}

/// One published epoch: the snapshot, the server restored from it, and
/// the tenant-local publish version that prefixes every cache key minted
/// against it.
pub struct PublishedEpoch {
    /// Tenant-local publish version (1 for the first publish, +1 per
    /// swap). Cache keys embed it, so entries from different epochs can
    /// never alias.
    pub version: u64,
    /// `ModelSnapshot::cache_fingerprint` of [`PublishedEpoch::snapshot`]
    /// — the cheap prefilter for no-op republish detection.
    pub fingerprint: u64,
    /// The published model, kept for exact (`==`) republish comparison.
    pub snapshot: ModelSnapshot,
    /// The answerer restored from the snapshot.
    pub server: QueryServer,
}

/// The outcome of a [`SnapshotRegistry::publish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishReceipt {
    /// The session published to.
    pub session: u64,
    /// The tenant's publish version after the call.
    pub version: u64,
    /// Whether the call installed a new epoch (false: the snapshot
    /// equalled the current one, so version and warm cache survived).
    pub swapped: bool,
    /// Whether the call created the session.
    pub created: bool,
}

/// One serving session: the current published epoch plus the answer
/// cache in front of it.
pub struct Tenant {
    id: u64,
    current: Mutex<Arc<PublishedEpoch>>,
    cache: AnswerCache,
}

impl Tenant {
    /// The session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The currently published epoch. The lock is held only for the
    /// `Arc` clone; the caller answers against its own handle, unaffected
    /// by later swaps.
    pub fn current(&self) -> Arc<PublishedEpoch> {
        Arc::clone(&lock_unpoisoned(&self.current))
    }

    /// The tenant's answer cache (stats, direct invalidation).
    pub fn cache(&self) -> &AnswerCache {
        &self.cache
    }

    /// Answers a workload through the cache against the current epoch:
    /// probe all queries under one lock, answer the misses as one
    /// sub-batch on the epoch's server (bit-identical to answering them
    /// inside the full batch — per-query answers are batch-independent),
    /// then insert the computed answers.
    pub fn answer_cached(&self, queries: &[RangeQuery], shards: usize) -> Vec<f64> {
        self.answer_cached_on(&self.current(), queries, shards)
    }

    /// [`Tenant::answer_cached`] against a caller-held epoch handle, so a
    /// framed request validates and answers against one consistent epoch
    /// even if a swap lands mid-request.
    fn answer_cached_on(
        &self,
        epoch: &PublishedEpoch,
        queries: &[RangeQuery],
        shards: usize,
    ) -> Vec<f64> {
        let mut keys: Vec<Vec<u8>> = queries
            .iter()
            .map(|q| {
                let mut key = Vec::with_capacity(8 + q.lambda() * 24);
                key.extend_from_slice(&epoch.version.to_le_bytes());
                q.write_canonical_key(&mut key);
                key
            })
            .collect();
        let cached = self.cache.probe(&keys);
        let miss_idx: Vec<usize> = cached
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.is_none().then_some(i))
            .collect();
        let miss_queries: Vec<RangeQuery> = miss_idx.iter().map(|&i| queries[i].clone()).collect();
        let computed = epoch.server.answer_workload(&miss_queries, shards);
        let mut out: Vec<f64> = cached.iter().map(|v| v.unwrap_or(0.0)).collect();
        let mut inserts = Vec::with_capacity(miss_idx.len());
        for (&i, &a) in miss_idx.iter().zip(&computed) {
            out[i] = a;
            inserts.push((std::mem::take(&mut keys[i]), a));
        }
        self.cache.insert_many(inserts);
        out
    }

    /// Validates a decoded query batch against the current epoch's schema
    /// and answers it through the cache, returning the encoded
    /// [`AnswerBatch`] — the cached counterpart of
    /// `QueryServer::serve_frame`, with the same error contract.
    pub fn serve_batch(&self, batch: &QueryBatch, shards: usize) -> Result<Bytes, ProtocolError> {
        let epoch = self.current();
        if batch.c != epoch.server.domain() {
            return Err(ProtocolError::Malformed(
                "query batch domain does not match the model",
            ));
        }
        if batch
            .queries
            .iter()
            .any(|q| q.attrs().any(|attr| attr >= epoch.server.dims()))
        {
            return Err(ProtocolError::Malformed(
                "query references an attribute outside the model",
            ));
        }
        let answers = self.answer_cached_on(&epoch, &batch.queries, shards);
        Ok(AnswerBatch::new(answers).to_bytes())
    }

    /// Serves one framed request through the cache: decodes a
    /// [`QueryBatch`] from `buf` and delegates to [`Tenant::serve_batch`].
    pub fn serve_frame(&self, buf: &mut impl Buf, shards: usize) -> Result<Bytes, ProtocolError> {
        let batch = QueryBatch::decode(buf)?;
        self.serve_batch(&batch, shards)
    }
}

/// The session-keyed registry: one [`Tenant`] per session id, all sharing
/// one cache-capacity policy.
pub struct SnapshotRegistry {
    tenants: Mutex<HashMap<u64, Arc<Tenant>>>,
    cache_cap: usize,
}

impl SnapshotRegistry {
    /// An empty registry whose tenants each get an answer cache bounded
    /// to `cache_cap` entries (`0` disables caching).
    pub fn new(cache_cap: usize) -> Self {
        SnapshotRegistry {
            tenants: Mutex::new(HashMap::new()),
            cache_cap,
        }
    }

    /// The per-tenant cache capacity.
    pub fn cache_cap(&self) -> usize {
        self.cache_cap
    }

    /// Publishes `snapshot` to `session`, creating the tenant on first
    /// contact and hot-swapping the epoch otherwise. The replacement
    /// server is restored *before* any lock is taken; republishing a
    /// snapshot equal to the current one is a no-op that keeps the
    /// version and the warm cache.
    pub fn publish(
        &self,
        session: u64,
        snapshot: &ModelSnapshot,
    ) -> Result<PublishReceipt, ProtocolError> {
        let fingerprint = snapshot.cache_fingerprint();
        if let Some(tenant) = self.get(session) {
            let cur = tenant.current();
            // The fingerprint screens out virtually every real change
            // cheaply; full equality closes the 64-bit collision gap so a
            // no-op verdict is never wrong.
            if cur.fingerprint == fingerprint && cur.snapshot == *snapshot {
                return Ok(PublishReceipt {
                    session,
                    version: cur.version,
                    swapped: false,
                    created: false,
                });
            }
            let server = QueryServer::new(snapshot)?;
            let mut guard = lock_unpoisoned(&tenant.current);
            let version = guard.version + 1;
            *guard = Arc::new(PublishedEpoch {
                version,
                fingerprint,
                snapshot: snapshot.clone(),
                server,
            });
            drop(guard);
            // Entries for older versions can never be probed again (keys
            // embed the version); clearing just returns their memory.
            tenant.cache.clear();
            return Ok(PublishReceipt {
                session,
                version,
                swapped: true,
                created: false,
            });
        }
        let server = QueryServer::new(snapshot)?;
        let tenant = Arc::new(Tenant {
            id: session,
            current: Mutex::new(Arc::new(PublishedEpoch {
                version: 1,
                fingerprint,
                snapshot: snapshot.clone(),
                server,
            })),
            cache: AnswerCache::new(self.cache_cap),
        });
        match lock_unpoisoned(&self.tenants).entry(session) {
            Entry::Vacant(v) => {
                v.insert(tenant);
                Ok(PublishReceipt {
                    session,
                    version: 1,
                    swapped: true,
                    created: true,
                })
            }
            // Another publisher created the session while we were
            // building the server; retry as a swap on the winner.
            Entry::Occupied(_) => self.publish(session, snapshot),
        }
    }

    /// The tenant for `session`, if any.
    pub fn get(&self, session: u64) -> Option<Arc<Tenant>> {
        lock_unpoisoned(&self.tenants).get(&session).cloned()
    }

    /// Every open session id, ascending.
    pub fn session_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = lock_unpoisoned(&self.tenants).keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Number of open sessions.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.tenants).len()
    }

    /// Whether no session is open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Summed cache counters across every tenant.
    pub fn cache_stats_total(&self) -> CacheStats {
        let tenants = lock_unpoisoned(&self.tenants);
        let mut total = CacheStats {
            cap: self.cache_cap,
            ..CacheStats::default()
        };
        for t in tenants.values() {
            let s = t.cache.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.len += s.len;
        }
        total
    }

    /// Summed estimator telemetry across every tenant's *current* epoch
    /// server; `None` when no open session has an estimator stage (e.g.
    /// all-MSW rotations). Counters reset with each epoch swap — the
    /// telemetry belongs to the restored model, not the tenant.
    pub fn estimator_telemetry_total(&self) -> Option<EstimatorTelemetry> {
        let epochs: Vec<Arc<PublishedEpoch>> = lock_unpoisoned(&self.tenants)
            .values()
            .map(|t| t.current())
            .collect();
        let mut total: Option<EstimatorTelemetry> = None;
        for epoch in epochs {
            let Some(t) = epoch.server.estimator_telemetry() else {
                continue;
            };
            let total = total.get_or_insert_with(EstimatorTelemetry::default);
            total.wu_sweeps += t.wu_sweeps;
            for (l, n) in t.lambda_counts {
                match total.lambda_counts.binary_search_by_key(&l, |&(bl, _)| bl) {
                    Ok(i) => total.lambda_counts[i].1 += n,
                    Err(i) => total.lambda_counts.insert(i, (l, n)),
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmdr_core::Hdg;
    use privmdr_data::DatasetSpec;
    use privmdr_query::workload::WorkloadBuilder;

    fn snapshot(seed: u64) -> ModelSnapshot {
        let ds = DatasetSpec::Normal { rho: 0.6 }.generate(8_000, 3, 16, seed);
        Hdg::default().snapshot(&ds, 1.0, seed).unwrap()
    }

    fn key(b: u8) -> Vec<u8> {
        vec![b, b, b]
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = AnswerCache::new(2);
        cache.insert_many([(key(1), 1.0), (key(2), 2.0)]);
        // Touch 1 so 2 becomes least-recent, then push 3.
        assert_eq!(cache.probe(&[key(1)]), [Some(1.0)]);
        cache.insert_many([(key(3), 3.0)]);
        assert_eq!(
            cache.probe(&[key(1), key(2), key(3)]),
            [Some(1.0), None, Some(3.0)]
        );
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.len, 2);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn lru_reinsert_promotes_and_clear_empties() {
        let cache = AnswerCache::new(2);
        cache.insert_many([(key(1), 1.0), (key(2), 2.0)]);
        // Re-inserting 1 promotes it, so 2 is the eviction victim.
        cache.insert_many([(key(1), 1.0), (key(3), 3.0)]);
        assert_eq!(cache.probe(&[key(2)]), [None]);
        assert_eq!(cache.probe(&[key(1), key(3)]), [Some(1.0), Some(3.0)]);
        cache.clear();
        assert_eq!(cache.stats().len, 0);
        assert_eq!(cache.probe(&[key(1)]), [None]);
        // Reusable after the clear (free list and links reset together).
        cache.insert_many([(key(4), 4.0)]);
        assert_eq!(cache.probe(&[key(4)]), [Some(4.0)]);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = AnswerCache::new(0);
        cache.insert_many([(key(1), 1.0)]);
        assert_eq!(cache.probe(&[key(1)]), [None]);
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn cached_answers_match_uncached_bit_for_bit() {
        let snap = snapshot(7);
        let registry = SnapshotRegistry::new(64);
        registry.publish(9, &snap).unwrap();
        let tenant = registry.get(9).unwrap();
        let reference = QueryServer::new(&snap).unwrap();

        let wl = WorkloadBuilder::new(3, 16, 5);
        let mut queries = wl.random(1, 0.5, 10);
        queries.extend(wl.random(2, 0.5, 30));
        queries.extend(wl.random(3, 0.5, 10));
        let want = reference.answer_workload(&queries, 1);
        // Cold pass fills the cache, warm pass answers from it; a small
        // cap forces evictions mid-workload. All must match exactly.
        for round in 0..3 {
            let got = tenant.answer_cached(&queries, 1);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(g.to_bits(), w.to_bits(), "round {round}, query {i}");
            }
        }
        let stats = tenant.cache().stats();
        assert_eq!(stats.misses, 50, "only the cold pass should miss");
        assert_eq!(stats.hits, 100);
        assert!(stats.evictions == 0);
    }

    #[test]
    fn publish_swaps_bump_version_and_republish_is_noop() {
        let registry = SnapshotRegistry::new(16);
        let first = snapshot(1);
        let receipt = registry.publish(3, &first).unwrap();
        assert!(receipt.created && receipt.swapped);
        assert_eq!(receipt.version, 1);

        let tenant = registry.get(3).unwrap();
        let q = WorkloadBuilder::new(3, 16, 2).random(2, 0.5, 4);
        tenant.answer_cached(&q, 1);
        assert_eq!(tenant.cache().stats().len, 4);

        // Republishing the identical snapshot keeps the warm cache.
        let noop = registry.publish(3, &first.clone()).unwrap();
        assert!(!noop.swapped && !noop.created);
        assert_eq!(noop.version, 1);
        assert_eq!(tenant.cache().stats().len, 4);

        // A different snapshot swaps, bumps the version, and clears.
        let second = snapshot(2);
        let swap = registry.publish(3, &second).unwrap();
        assert!(swap.swapped && !swap.created);
        assert_eq!(swap.version, 2);
        assert_eq!(tenant.cache().stats().len, 0);
        assert_eq!(tenant.current().version, 2);
        // The tenant handle taken before the swap serves the new epoch.
        let want = QueryServer::new(&second).unwrap().answer_workload(&q, 1);
        let got = tenant.answer_cached(&q, 1);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn in_flight_epoch_handle_survives_a_swap() {
        let registry = SnapshotRegistry::new(16);
        let first = snapshot(4);
        registry.publish(1, &first).unwrap();
        let tenant = registry.get(1).unwrap();
        // A reader grabs the epoch, then the publisher swaps underneath.
        let held = tenant.current();
        registry.publish(1, &snapshot(5)).unwrap();
        assert_eq!(held.version, 1);
        assert_eq!(tenant.current().version, 2);
        // The held handle still answers with the old epoch's bits.
        let q = WorkloadBuilder::new(3, 16, 8).random(2, 0.4, 6);
        let want = QueryServer::new(&first).unwrap().answer_workload(&q, 1);
        let got = held.server.answer_workload(&q, 1);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn poisoned_cache_lock_is_recovered_not_propagated() {
        // The serving tier's remaining locks are the answer cache and the
        // registry's tenant/current maps; a request thread that panics
        // while holding one (caught by a daemon's per-request isolation)
        // must not wedge every later request. `lock_unpoisoned` recovers
        // the guard; this regression test pins that the cached serving
        // path still answers bit-identically after a poisoning panic.
        let snap = snapshot(11);
        let registry = SnapshotRegistry::new(32);
        registry.publish(5, &snap).unwrap();
        let tenant = registry.get(5).unwrap();
        let queries = WorkloadBuilder::new(3, 16, 6).random(2, 0.5, 8);
        let want = tenant.answer_cached(&queries, 1);

        // Poison the cache mutex: panic while holding the guard.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = tenant.cache().inner.lock().unwrap();
            panic!("poison the answer-cache lock");
        }));
        assert!(caught.is_err());
        assert!(
            tenant.cache().inner.is_poisoned(),
            "lock should be poisoned"
        );

        // Probes, inserts, stats, swaps, and cached answering all still
        // work — and still return the same bits.
        let got = tenant.answer_cached(&queries, 1);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
        assert!(tenant.cache().stats().hits >= 8);
        let receipt = registry.publish(5, &snapshot(12)).unwrap();
        assert!(receipt.swapped);
        assert!(registry.estimator_telemetry_total().is_some());
    }

    #[test]
    fn registry_tracks_sessions() {
        let registry = SnapshotRegistry::new(8);
        assert!(registry.is_empty());
        let snap = snapshot(3);
        registry.publish(7, &snap).unwrap();
        registry.publish(2, &snap).unwrap();
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.session_ids(), [2, 7]);
        assert!(registry.get(5).is_none());
        assert_eq!(registry.cache_stats_total().cap, 8);
    }
}
