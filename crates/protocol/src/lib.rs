//! Client/server deployment protocol for HDG.
//!
//! The paper describes a protocol between `n` users and an untrusted
//! aggregator: the aggregator publishes the collection plan (grid
//! geometry + group assignment), each user's device produces exactly one
//! randomized report, and the aggregator reconstructs the grids from the
//! report stream. This crate makes that concrete:
//!
//! * [`plan`] — the public [`plan::SessionPlan`]: everything a client needs
//!   (ε, granularities, its group's target grid). Contains no private data.
//! * [`client`] — the device side: record in, one wire report out.
//! * [`wire`] — a compact binary encoding of reports (17 bytes standalone,
//!   16 inside a length-prefixed [`wire::Batch`] frame), built on `bytes`
//!   (justification for the dependency: zero-copy buffer management for the
//!   report stream).
//! * [`server`] — streaming ingestion: per-group OLH support accumulators
//!   that never buffer raw reports, a sharded parallel batch path that is
//!   bit-identical to serial ingestion, and a finalizer producing a fitted
//!   `privmdr-core` HDG model.
//!
//! The end-to-end path is equivalent to `Hdg::fit` in `SimMode::Exact`
//! (tests verify the accuracy statistically); the difference is that here
//! the pieces are separated across a wire boundary the way a real
//! deployment would be.

pub mod client;
pub mod plan;
pub mod server;
pub mod wire;

pub use client::Client;
pub use plan::{GroupTarget, SessionPlan};
pub use server::Collector;
pub use wire::{decode_any_stream, Batch, Report};

/// Errors from protocol handling.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The wire buffer is truncated or malformed.
    Malformed(&'static str),
    /// A report referenced a group outside the plan.
    UnknownGroup(u32),
    /// Plan parameters are invalid.
    BadPlan(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Malformed(what) => write!(f, "malformed report: {what}"),
            ProtocolError::UnknownGroup(g) => write!(f, "report for unknown group {g}"),
            ProtocolError::BadPlan(msg) => write!(f, "invalid session plan: {msg}"),
        }
    }
}

impl std::error::Error for ProtocolError {}
