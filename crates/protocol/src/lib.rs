//! Client/server deployment protocol for HDG.
//!
//! The paper describes a protocol between `n` users and an untrusted
//! aggregator: the aggregator publishes the collection plan (grid
//! geometry + group assignment), each user's device produces exactly one
//! randomized report, and the aggregator reconstructs the grids from the
//! report stream. This crate makes that concrete:
//!
//! * [`plan`] — the public [`plan::SessionPlan`]: everything a client needs
//!   (ε, granularities, its group's target grid, the session's oracle
//!   policy and estimation approach). Contains no private data.
//! * [`client`] — the device side: record in, one wire report out, through
//!   whichever `privmdr_oracles::FrequencyOracle` the plan's policy selects
//!   for the client's group ([`client::ClientFactory`] hoists the per-group
//!   oracle construction when stamping out many clients).
//! * [`wire`] — a compact binary encoding of reports (17 bytes standalone,
//!   16 inside a length-prefixed [`wire::Batch`] frame; +2/+1 bytes for the
//!   version-2 frames carrying a [`wire::MechanismTag`] oracle/approach
//!   discriminant), built on `bytes` (justification for the dependency:
//!   zero-copy buffer management for the report stream).
//! * [`cursor`] — zero-copy ingestion: a borrowing [`cursor::FrameCursor`]
//!   that validates frames exactly like the [`wire`] decoders but yields
//!   `(seed, y)` pairs straight from the input buffer, so contiguous
//!   streams reach the support kernel without materializing a
//!   `Vec<Report>`.
//! * [`server`] — streaming ingestion: per-group frequency-oracle support
//!   accumulators that never buffer raw reports, a sharded parallel batch
//!   path that is bit-identical to serial ingestion, and an
//!   approach-parameterized finalizer producing a fitted `privmdr-core`
//!   HDG or TDG model or a serializable snapshot of it.
//! * [`serve`] — the read path: a [`serve::QueryServer`] restores a
//!   `privmdr_core::ModelSnapshot` (shipped via the wire frames in
//!   [`wire`]) and answers framed query batches, sharding each batch
//!   across threads with answers bit-identical to a serial pass.
//! * [`stream`] — long-lived deployment shapes: an
//!   [`stream::EpochCollector`] that cuts cumulative per-epoch snapshots
//!   without halting ingestion, and a `CollectorState` wire frame (`0xCC`)
//!   that lets geographically split collectors fan in through
//!   [`server::Collector::merge`] — both bit-identical to the one-shot
//!   path by construction.
//! * [`registry`] — the multi-tenant serving tier: a
//!   [`registry::SnapshotRegistry`] keyed by session id whose tenants
//!   hot-swap epochs behind an `Arc` (in-flight batches finish on the old
//!   epoch) with a bounded LRU answer cache in front of each tenant,
//!   cached ≡ uncached ≡ single-tenant bit for bit.
//! * [`served`] — the daemon loop over the registry: a tag-versioned
//!   session envelope (`0x5E`) routing the existing snapshot/query frames
//!   to tenants, so `collect --epoch-every` output feeds a
//!   [`served::ServedNode`] directly.
//!
//! The end-to-end path is equivalent to `Hdg::fit` in `SimMode::Exact`
//! (tests verify the accuracy statistically); the difference is that here
//! the pieces are separated across a wire boundary the way a real
//! deployment would be.

pub mod client;
pub mod cursor;
pub mod plan;
pub mod registry;
pub mod serve;
pub mod served;
pub mod server;
pub mod stream;
pub mod wire;

pub use client::{Client, ClientFactory};
pub use cursor::{FrameCursor, ReportFrame};
pub use plan::{GroupTarget, SessionPlan};
pub use registry::{AnswerCache, CacheStats, PublishReceipt, SnapshotRegistry, Tenant};
pub use serve::QueryServer;
pub use served::{
    decode_session_frame, encode_session_open, encode_session_route, session_open_to_bytes,
    session_route_to_bytes, ServedNode, ServedStats, SessionFrame,
};
pub use server::Collector;
pub use stream::{
    collector_state_to_bytes, decode_collector_state, encode_collector_state, EpochCollector,
    EpochCut,
};
pub use wire::{
    decode_any_stream, decode_any_stream_tagged, decode_snapshot, encode_snapshot,
    snapshot_to_bytes, AnswerBatch, Batch, MechanismTag, QueryBatch, Report,
};

// Re-exported so protocol consumers can name the plan's mechanism knobs
// without depending on the oracle crate directly.
pub use privmdr_core::ApproachKind;
pub use privmdr_oracles::OraclePolicy;

/// Errors from protocol handling.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The wire buffer is truncated or malformed.
    Malformed(&'static str),
    /// A report referenced a group outside the plan.
    UnknownGroup(u32),
    /// Plan parameters are invalid.
    BadPlan(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Malformed(what) => write!(f, "malformed report: {what}"),
            ProtocolError::UnknownGroup(g) => write!(f, "report for unknown group {g}"),
            ProtocolError::BadPlan(msg) => write!(f, "invalid session plan: {msg}"),
        }
    }
}

impl std::error::Error for ProtocolError {}
