//! Client/server deployment protocol for HDG.
//!
//! The paper describes a protocol between `n` users and an untrusted
//! aggregator: the aggregator publishes the collection plan (grid
//! geometry + group assignment), each user's device produces exactly one
//! randomized report, and the aggregator reconstructs the grids from the
//! report stream. This crate makes that concrete:
//!
//! * [`plan`] — the public [`plan::SessionPlan`]: everything a client needs
//!   (ε, granularities, its group's target grid). Contains no private data.
//! * [`client`] — the device side: record in, one wire report out.
//! * [`wire`] — a compact binary encoding of reports (17 bytes standalone,
//!   16 inside a length-prefixed [`wire::Batch`] frame), built on `bytes`
//!   (justification for the dependency: zero-copy buffer management for the
//!   report stream).
//! * [`server`] — streaming ingestion: per-group OLH support accumulators
//!   that never buffer raw reports, a sharded parallel batch path that is
//!   bit-identical to serial ingestion, and a finalizer producing a fitted
//!   `privmdr-core` HDG model or a serializable snapshot of it.
//! * [`serve`] — the read path: a [`serve::QueryServer`] restores a
//!   `privmdr_core::ModelSnapshot` (shipped via the wire frames in
//!   [`wire`]) and answers framed query batches, sharding each batch
//!   across threads with answers bit-identical to a serial pass.
//!
//! The end-to-end path is equivalent to `Hdg::fit` in `SimMode::Exact`
//! (tests verify the accuracy statistically); the difference is that here
//! the pieces are separated across a wire boundary the way a real
//! deployment would be.

pub mod client;
pub mod plan;
pub mod serve;
pub mod server;
pub mod wire;

pub use client::Client;
pub use plan::{GroupTarget, SessionPlan};
pub use serve::QueryServer;
pub use server::Collector;
pub use wire::{
    decode_any_stream, decode_snapshot, encode_snapshot, snapshot_to_bytes, AnswerBatch, Batch,
    QueryBatch, Report,
};

/// Errors from protocol handling.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The wire buffer is truncated or malformed.
    Malformed(&'static str),
    /// A report referenced a group outside the plan.
    UnknownGroup(u32),
    /// Plan parameters are invalid.
    BadPlan(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Malformed(what) => write!(f, "malformed report: {what}"),
            ProtocolError::UnknownGroup(g) => write!(f, "report for unknown group {g}"),
            ProtocolError::BadPlan(msg) => write!(f, "invalid session plan: {msg}"),
        }
    }
}

impl std::error::Error for ProtocolError {}
