//! The public session plan the aggregator publishes.
//!
//! A plan is derived from *public* parameters only (n, d, c, ε and the
//! granularity guideline); publishing it leaks nothing about records
//! (paper §4.6's discussion of guideline privacy).

use crate::wire::MechanismTag;
use crate::ProtocolError;
use privmdr_core::ApproachKind;
use privmdr_grid::guideline::{
    choose_granularities, choose_tdg_granularity, default_sigma, Granularities,
};
use privmdr_grid::pairs::pair_list;
use privmdr_oracles::{AdaptiveOracle, OraclePolicy};
use privmdr_util::hash::mix64;

/// What one report group measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupTarget {
    /// 1-D grid over a single attribute (g1 cells).
    OneD {
        /// The attribute.
        attr: usize,
    },
    /// 2-D grid over an ordered attribute pair (g2 × g2 cells).
    TwoD {
        /// First attribute (smaller index).
        j: usize,
        /// Second attribute.
        k: usize,
    },
}

/// The public collection plan for one grid session (HDG or TDG).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionPlan {
    /// Number of participating users.
    pub n: usize,
    /// Number of attributes.
    pub d: usize,
    /// Attribute domain size (power of two).
    pub c: usize,
    /// Privacy budget per user.
    pub epsilon: f64,
    /// Chosen granularities.
    pub granularities: Granularities,
    /// Group targets: for HDG the `d` 1-D grids then the `(d choose 2)`
    /// 2-D grids; for TDG the 2-D grids only.
    pub groups: Vec<GroupTarget>,
    /// Seed for the public user→group assignment.
    pub assignment_seed: u64,
    /// Frequency-oracle policy applied per group (public plan state —
    /// each group's oracle is determined by this policy and the group's
    /// randomization domain, so clients and collector always agree).
    pub oracle: OraclePolicy,
    /// Estimation approach the session finalizes into.
    pub approach: ApproachKind,
}

impl SessionPlan {
    /// Builds an OLH/HDG plan from public parameters using the paper's
    /// guideline — the default mechanism stack.
    pub fn new(
        n: usize,
        d: usize,
        c: usize,
        epsilon: f64,
        assignment_seed: u64,
    ) -> Result<Self, ProtocolError> {
        Self::with_mechanism(
            n,
            d,
            c,
            epsilon,
            assignment_seed,
            OraclePolicy::Olh,
            ApproachKind::Hdg,
        )
    }

    /// Builds a plan with an explicit oracle policy and estimation
    /// approach. HDG plans target `d + (d choose 2)` grids under the HDG
    /// granularity guideline; TDG plans target the `(d choose 2)` 2-D
    /// grids only, under the TDG guideline (with `g1` mirroring `g2`,
    /// since no 1-D grid exists to consult it). MSW plans target the `d`
    /// per-attribute marginals at full resolution (`g1 = c`, no pair
    /// groups; `g2 = 1` is never consulted).
    pub fn with_mechanism(
        n: usize,
        d: usize,
        c: usize,
        epsilon: f64,
        assignment_seed: u64,
        oracle: OraclePolicy,
        approach: ApproachKind,
    ) -> Result<Self, ProtocolError> {
        if d < 2 {
            return Err(ProtocolError::BadPlan("need at least 2 attributes".into()));
        }
        if !privmdr_util::is_pow2(c) || c < 2 {
            return Err(ProtocolError::BadPlan(format!(
                "domain {c} must be a power of two >= 2"
            )));
        }
        if !(epsilon > 0.0 && epsilon.is_finite()) {
            return Err(ProtocolError::BadPlan(format!("bad epsilon {epsilon}")));
        }
        let (granularities, groups) = match approach {
            ApproachKind::Hdg => {
                let granularities = choose_granularities(n, d, epsilon, c, &Default::default());
                let mut groups: Vec<GroupTarget> =
                    (0..d).map(|attr| GroupTarget::OneD { attr }).collect();
                groups.extend(
                    pair_list(d)
                        .into_iter()
                        .map(|(j, k)| GroupTarget::TwoD { j, k }),
                );
                (granularities, groups)
            }
            ApproachKind::Tdg => {
                let g2 = choose_tdg_granularity(n, d, epsilon, c, &Default::default());
                let groups = pair_list(d)
                    .into_iter()
                    .map(|(j, k)| GroupTarget::TwoD { j, k })
                    .collect();
                (Granularities { g1: g2, g2 }, groups)
            }
            ApproachKind::Msw => {
                let groups = (0..d).map(|attr| GroupTarget::OneD { attr }).collect();
                (Granularities { g1: c, g2: 1 }, groups)
            }
        };
        Ok(SessionPlan {
            n,
            d,
            c,
            epsilon,
            granularities,
            groups,
            assignment_seed,
            oracle,
            approach,
        })
    }

    /// Number of report groups, `d + (d choose 2)`.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The OLH input-domain size of a group's grid.
    pub fn group_domain(&self, group: u32) -> Result<usize, ProtocolError> {
        match self.groups.get(group as usize) {
            Some(GroupTarget::OneD { .. }) => Ok(self.granularities.g1),
            Some(GroupTarget::TwoD { .. }) => Ok(self.granularities.g2 * self.granularities.g2),
            None => Err(ProtocolError::UnknownGroup(group)),
        }
    }

    /// The public group assignment of user `uid` — a keyed hash, so the
    /// expected per-group populations follow the σ-weighted split of §4.6
    /// without any server-side state.
    ///
    /// Groups are weighted so every group has (in expectation) the same
    /// population, the paper's default split σ0 = d / (d + (d choose 2)).
    pub fn group_of(&self, uid: u64) -> u32 {
        debug_assert!(
            self.approach != ApproachKind::Hdg
                || (default_sigma(self.d) - self.d as f64 / self.group_count() as f64).abs()
                    < 1e-12
        );
        let h = mix64(self.assignment_seed ^ uid.wrapping_mul(0xA076_1D64_78BD_642F));
        (h % self.group_count() as u64) as u32
    }

    /// The frequency oracle a group reports through: the plan's policy
    /// applied to the group's randomization domain. Built on demand —
    /// callers constructing many clients should hoist this through
    /// [`crate::client::ClientFactory`], which does the ε→(p, q) math once
    /// per group instead of once per client.
    pub fn group_oracle(&self, group: u32) -> Result<AdaptiveOracle, ProtocolError> {
        let domain = self.group_domain(group)?;
        self.oracle
            .build(self.epsilon, domain)
            .map_err(|e| ProtocolError::BadPlan(e.to_string()))
    }

    /// The wire discriminant matching this plan (tagged `Batch`/`Report`
    /// frames carry it; the collector rejects streams whose tag disagrees
    /// with its plan).
    pub fn mechanism_tag(&self) -> MechanismTag {
        MechanismTag {
            oracle: self.oracle,
            approach: self.approach,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_validation() {
        assert!(SessionPlan::new(1000, 1, 64, 1.0, 0).is_err());
        assert!(SessionPlan::new(1000, 4, 60, 1.0, 0).is_err());
        assert!(SessionPlan::new(1000, 4, 64, 0.0, 0).is_err());
        assert!(SessionPlan::new(1000, 4, 64, 1.0, 0).is_ok());
    }

    #[test]
    fn groups_enumerate_grids_in_order() {
        let plan = SessionPlan::new(10_000, 3, 32, 1.0, 7).unwrap();
        assert_eq!(plan.group_count(), 3 + 3);
        assert_eq!(plan.groups[0], GroupTarget::OneD { attr: 0 });
        assert_eq!(plan.groups[3], GroupTarget::TwoD { j: 0, k: 1 });
        assert_eq!(plan.groups[5], GroupTarget::TwoD { j: 1, k: 2 });
    }

    #[test]
    fn group_domains_match_granularities() {
        let plan = SessionPlan::new(1_000_000, 6, 64, 1.0, 1).unwrap();
        // Guideline at these parameters: (16, 4) per the paper's Table 2.
        assert_eq!(plan.granularities, Granularities { g1: 16, g2: 4 });
        assert_eq!(plan.group_domain(0).unwrap(), 16);
        assert_eq!(plan.group_domain(6).unwrap(), 16);
        assert!(plan.group_domain(99).is_err());
    }

    #[test]
    fn assignment_is_deterministic_and_balanced() {
        let plan = SessionPlan::new(100_000, 4, 32, 1.0, 3).unwrap();
        let mut counts = vec![0usize; plan.group_count()];
        for uid in 0..100_000u64 {
            let g = plan.group_of(uid);
            assert_eq!(g, plan.group_of(uid));
            counts[g as usize] += 1;
        }
        let expected = 100_000 / plan.group_count();
        for (g, &cnt) in counts.iter().enumerate() {
            let rel = (cnt as f64 - expected as f64).abs() / expected as f64;
            assert!(
                rel < 0.05,
                "group {g} has {cnt} users (expected ~{expected})"
            );
        }
    }
}
