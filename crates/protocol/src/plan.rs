//! The public session plan the aggregator publishes.
//!
//! A plan is derived from *public* parameters only (n, d, c, ε and the
//! granularity guideline); publishing it leaks nothing about records
//! (paper §4.6's discussion of guideline privacy).

use crate::ProtocolError;
use privmdr_grid::guideline::{choose_granularities, default_sigma, Granularities};
use privmdr_grid::pairs::pair_list;
use privmdr_util::hash::mix64;

/// What one report group measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupTarget {
    /// 1-D grid over a single attribute (g1 cells).
    OneD {
        /// The attribute.
        attr: usize,
    },
    /// 2-D grid over an ordered attribute pair (g2 × g2 cells).
    TwoD {
        /// First attribute (smaller index).
        j: usize,
        /// Second attribute.
        k: usize,
    },
}

/// The public collection plan for one HDG session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionPlan {
    /// Number of participating users.
    pub n: usize,
    /// Number of attributes.
    pub d: usize,
    /// Attribute domain size (power of two).
    pub c: usize,
    /// Privacy budget per user.
    pub epsilon: f64,
    /// Chosen granularities.
    pub granularities: Granularities,
    /// Group targets: the `d` 1-D grids then the `(d choose 2)` 2-D grids.
    pub groups: Vec<GroupTarget>,
    /// Seed for the public user→group assignment.
    pub assignment_seed: u64,
}

impl SessionPlan {
    /// Builds a plan from public parameters using the paper's guideline.
    pub fn new(
        n: usize,
        d: usize,
        c: usize,
        epsilon: f64,
        assignment_seed: u64,
    ) -> Result<Self, ProtocolError> {
        if d < 2 {
            return Err(ProtocolError::BadPlan("need at least 2 attributes".into()));
        }
        if !privmdr_util::is_pow2(c) || c < 2 {
            return Err(ProtocolError::BadPlan(format!(
                "domain {c} must be a power of two >= 2"
            )));
        }
        if !(epsilon > 0.0 && epsilon.is_finite()) {
            return Err(ProtocolError::BadPlan(format!("bad epsilon {epsilon}")));
        }
        let granularities = choose_granularities(n, d, epsilon, c, &Default::default());
        let mut groups: Vec<GroupTarget> = (0..d).map(|attr| GroupTarget::OneD { attr }).collect();
        groups.extend(
            pair_list(d)
                .into_iter()
                .map(|(j, k)| GroupTarget::TwoD { j, k }),
        );
        Ok(SessionPlan {
            n,
            d,
            c,
            epsilon,
            granularities,
            groups,
            assignment_seed,
        })
    }

    /// Number of report groups, `d + (d choose 2)`.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The OLH input-domain size of a group's grid.
    pub fn group_domain(&self, group: u32) -> Result<usize, ProtocolError> {
        match self.groups.get(group as usize) {
            Some(GroupTarget::OneD { .. }) => Ok(self.granularities.g1),
            Some(GroupTarget::TwoD { .. }) => Ok(self.granularities.g2 * self.granularities.g2),
            None => Err(ProtocolError::UnknownGroup(group)),
        }
    }

    /// The public group assignment of user `uid` — a keyed hash, so the
    /// expected per-group populations follow the σ-weighted split of §4.6
    /// without any server-side state.
    ///
    /// Groups are weighted so every group has (in expectation) the same
    /// population, the paper's default split σ0 = d / (d + (d choose 2)).
    pub fn group_of(&self, uid: u64) -> u32 {
        debug_assert!(
            (default_sigma(self.d) - self.d as f64 / self.group_count() as f64).abs() < 1e-12
        );
        let h = mix64(self.assignment_seed ^ uid.wrapping_mul(0xA076_1D64_78BD_642F));
        (h % self.group_count() as u64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_validation() {
        assert!(SessionPlan::new(1000, 1, 64, 1.0, 0).is_err());
        assert!(SessionPlan::new(1000, 4, 60, 1.0, 0).is_err());
        assert!(SessionPlan::new(1000, 4, 64, 0.0, 0).is_err());
        assert!(SessionPlan::new(1000, 4, 64, 1.0, 0).is_ok());
    }

    #[test]
    fn groups_enumerate_grids_in_order() {
        let plan = SessionPlan::new(10_000, 3, 32, 1.0, 7).unwrap();
        assert_eq!(plan.group_count(), 3 + 3);
        assert_eq!(plan.groups[0], GroupTarget::OneD { attr: 0 });
        assert_eq!(plan.groups[3], GroupTarget::TwoD { j: 0, k: 1 });
        assert_eq!(plan.groups[5], GroupTarget::TwoD { j: 1, k: 2 });
    }

    #[test]
    fn group_domains_match_granularities() {
        let plan = SessionPlan::new(1_000_000, 6, 64, 1.0, 1).unwrap();
        // Guideline at these parameters: (16, 4) per the paper's Table 2.
        assert_eq!(plan.granularities, Granularities { g1: 16, g2: 4 });
        assert_eq!(plan.group_domain(0).unwrap(), 16);
        assert_eq!(plan.group_domain(6).unwrap(), 16);
        assert!(plan.group_domain(99).is_err());
    }

    #[test]
    fn assignment_is_deterministic_and_balanced() {
        let plan = SessionPlan::new(100_000, 4, 32, 1.0, 3).unwrap();
        let mut counts = vec![0usize; plan.group_count()];
        for uid in 0..100_000u64 {
            let g = plan.group_of(uid);
            assert_eq!(g, plan.group_of(uid));
            counts[g as usize] += 1;
        }
        let expected = 100_000 / plan.group_count();
        for (g, &cnt) in counts.iter().enumerate() {
            let rel = (cnt as f64 - expected as f64).abs() / expected as f64;
            assert!(
                rel < 0.05,
                "group {g} has {cnt} users (expected ~{expected})"
            );
        }
    }
}
