//! The device side of the protocol.
//!
//! A client knows the public [`SessionPlan`] and its own record. It
//! produces exactly one randomized report — the only thing that ever
//! leaves the device — satisfying ε-LDP regardless of what the server does
//! with it.

use crate::plan::{GroupTarget, SessionPlan};
use crate::wire::Report;
use crate::ProtocolError;
use privmdr_oracles::{AdaptiveOracle, FrequencyOracle};
use rand::Rng;

/// One participating user.
#[derive(Debug, Clone)]
pub struct Client<'p> {
    plan: &'p SessionPlan,
    uid: u64,
    group: u32,
    oracle: AdaptiveOracle,
}

/// Builds clients for one plan with the per-group oracles constructed
/// **once**: [`Client::new`] redoes the ε → (p, q) probability math (an
/// `exp` plus divisions) for every client, which at collection scale means
/// n redundant computations for at most `d + (d choose 2)` distinct
/// oracles. A factory hoists that work per group, so stamping out a
/// million clients is pure table lookup — mirroring how the ingestion
/// kernel hoists its once-per-batch guards.
#[derive(Debug, Clone)]
pub struct ClientFactory<'p> {
    plan: &'p SessionPlan,
    oracles: Vec<AdaptiveOracle>,
}

impl<'p> ClientFactory<'p> {
    /// Precomputes every group's oracle for `plan`.
    pub fn new(plan: &'p SessionPlan) -> Result<Self, ProtocolError> {
        let oracles = (0..plan.group_count() as u32)
            .map(|g| plan.group_oracle(g))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ClientFactory { plan, oracles })
    }

    /// The client for user `uid` — identical to `Client::new(plan, uid)`
    /// without rebuilding the group's oracle.
    pub fn client(&self, uid: u64) -> Client<'p> {
        let group = self.plan.group_of(uid);
        Client {
            plan: self.plan,
            uid,
            group,
            oracle: self.oracles[group as usize],
        }
    }
}

impl<'p> Client<'p> {
    /// Creates the client for user `uid`; its report group follows the
    /// plan's public assignment. Building many clients for one plan?
    /// Use [`ClientFactory`], which constructs each group's oracle once.
    pub fn new(plan: &'p SessionPlan, uid: u64) -> Result<Self, ProtocolError> {
        let group = plan.group_of(uid);
        let oracle = plan.group_oracle(group)?;
        Ok(Client {
            plan,
            uid,
            group,
            oracle,
        })
    }

    /// The user id.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// The assigned report group.
    pub fn group(&self) -> u32 {
        self.group
    }

    /// The grid cell this client's record falls in (the oracle input).
    pub fn cell_of(&self, record: &[u16]) -> Result<usize, ProtocolError> {
        if record.len() != self.plan.d {
            return Err(ProtocolError::BadPlan(format!(
                "record has {} attributes, plan expects {}",
                record.len(),
                self.plan.d
            )));
        }
        if record.iter().any(|&v| v as usize >= self.plan.c) {
            return Err(ProtocolError::BadPlan("record value outside domain".into()));
        }
        let g = &self.plan.granularities;
        Ok(match self.plan.groups[self.group as usize] {
            GroupTarget::OneD { attr } => {
                let width = self.plan.c / g.g1;
                record[attr] as usize / width
            }
            GroupTarget::TwoD { j, k } => {
                let width = self.plan.c / g.g2;
                (record[j] as usize / width) * g.g2 + record[k] as usize / width
            }
        })
    }

    /// The frequency oracle this client randomizes through (the plan's
    /// policy applied to its group's domain).
    pub fn oracle(&self) -> &AdaptiveOracle {
        &self.oracle
    }

    /// Produces the client's single randomized report through the group's
    /// frequency oracle. For OLH groups `(seed, y)` is the hash seed and
    /// perturbed hashed value; for GRR groups `seed` is 0 and `y` the
    /// perturbed value.
    pub fn report<R: Rng + ?Sized>(
        &self,
        record: &[u16],
        mut rng: &mut R,
    ) -> Result<Report, ProtocolError> {
        let cell = self.cell_of(record)?;
        let (seed, y) = self.oracle.randomize(cell, &mut rng);
        Ok(Report {
            group: self.group,
            seed,
            y,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmdr_util::rng::derive_rng;

    fn plan() -> SessionPlan {
        SessionPlan::new(10_000, 3, 16, 1.0, 5).unwrap()
    }

    #[test]
    fn cell_mapping_matches_geometry() {
        let plan = plan();
        // Find a client in a 1-D group and one in a 2-D group.
        let mut one_d = None;
        let mut two_d = None;
        for uid in 0..200 {
            let c = Client::new(&plan, uid).unwrap();
            match plan.groups[c.group() as usize] {
                GroupTarget::OneD { attr: 0 } if one_d.is_none() => one_d = Some(c),
                GroupTarget::TwoD { j: 0, k: 1 } if two_d.is_none() => two_d = Some(c),
                _ => {}
            }
        }
        let (one_d, two_d) = (one_d.unwrap(), two_d.unwrap());
        let g = plan.granularities;
        let record = [5u16, 14, 3];
        let w1 = 16 / g.g1;
        assert_eq!(one_d.cell_of(&record).unwrap(), 5 / w1);
        let w2 = 16 / g.g2;
        assert_eq!(two_d.cell_of(&record).unwrap(), (5 / w2) * g.g2 + 14 / w2);
    }

    #[test]
    fn rejects_bad_records() {
        let plan = plan();
        let client = Client::new(&plan, 1).unwrap();
        assert!(client.cell_of(&[1, 2]).is_err()); // wrong arity
        assert!(client.cell_of(&[1, 2, 16]).is_err()); // out of domain
    }

    #[test]
    fn report_carries_group_and_valid_y() {
        let plan = plan();
        let mut rng = derive_rng(1, &[0]);
        for uid in 0..50 {
            let client = Client::new(&plan, uid).unwrap();
            let r = client.report(&[3, 7, 12], &mut rng).unwrap();
            assert_eq!(r.group, client.group());
            // y must be inside the OLH hashed domain c' (small).
            assert!((r.y as usize) < 16, "y = {}", r.y);
        }
    }
}
