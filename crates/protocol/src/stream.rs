//! Streaming epoch collection and collector-to-collector fan-in.
//!
//! `Collector` turns a report stream into one fit; real telemetry never
//! stops arriving. This module adds the two missing deployment shapes on
//! top of it, both *exact* — never approximately equal to the one-shot
//! path, but bit-identical to it:
//!
//! * **Epochs.** An [`EpochCollector`] ingests continuously and cuts a
//!   cumulative [`ModelSnapshot`] at every epoch boundary *without
//!   halting ingestion*: the in-flight epoch accumulates into an `active`
//!   collector while all sealed epochs live in a `sealed` collector, and
//!   [`EpochCollector::cut_epoch`] drain-and-swaps — the active collector
//!   is replaced with a fresh one (ingestion can resume immediately) and
//!   the drained counters are merged into `sealed` with commutative `u64`
//!   adds. The epoch-`k` snapshot is therefore the same bits a one-shot
//!   [`Collector`] would produce after the same first `k` epochs of
//!   reports, regardless of where the cuts fell
//!   (`tests/epoch_prop.rs`).
//!
//! * **Fan-in merge.** Geographically split collectors running the *same*
//!   public plan can serialize their raw per-group support counters into
//!   a [`COLLECTOR_STATE_TAG`] (`0xCC`) wire frame and fan into one
//!   model: [`Collector::merge`] adds counters elementwise, and since
//!   support counters are sums of per-report `u64` increments, a K-way
//!   split merged in any order equals one collector having ingested
//!   everything — commutative, associative, and exact
//!   (`tests/epoch_prop.rs` again).
//!
//! # The `CollectorState` frame
//!
//! ```text
//! +------+-------+-----------+-------------+--------+--------+
//! | 0xCC | ver:1 | oracle:u8 | approach:u8 | n: u64 | d: u16 |
//! +------+-------+-----------+-------------+--------+--------+
//! | c: u32 | epsilon: f64 bits u64 | assignment seed: u64    |
//! +--------+--------------------+----------------------------+
//! | groups: u32 | per group: reports u64, cells u32, supports|
//! +-------------+                cells × u64 (all LE)        |
//! ```
//!
//! The header carries the full public plan parameterization, so a decoded
//! state is self-describing: [`decode_collector_state`] rebuilds the
//! `SessionPlan` from the header and validates the declared group count
//! and every group's counter length against it *before* any counter is
//! read — a frame whose geometry lies about its plan (or whose mechanism
//! discriminant disagrees with it) is rejected without allocating counter
//! vectors, and [`Collector::merge_state`] decodes the whole frame before
//! touching the destination, so malformed input always leaves the
//! destination collector untouched. All counters travel as raw `u64` LE —
//! the merge is integer addition, so round-tripping through the wire loses
//! nothing.

use crate::plan::SessionPlan;
use crate::server::Collector;
use crate::wire::{
    self, approach_from_wire_byte, approach_wire_byte, oracle_from_wire_byte, oracle_wire_byte,
    Batch, MechanismTag, Report,
};
use crate::ProtocolError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use privmdr_core::snapshot::{MAX_SNAPSHOT_DIMS, MAX_SNAPSHOT_DOMAIN};
use privmdr_core::{MechanismConfig, ModelSnapshot};

/// First byte of an encoded `CollectorState` frame.
pub const COLLECTOR_STATE_TAG: u8 = 0xCC;
/// Wire version of the `CollectorState` frame.
pub const COLLECTOR_STATE_VERSION: u8 = 1;
/// Encoded size of the `CollectorState` header (tag, version, oracle,
/// approach, n, d, c, epsilon, assignment seed, group count).
pub const COLLECTOR_STATE_HEADER_LEN: usize = 1 + 1 + 1 + 1 + 8 + 2 + 4 + 8 + 8 + 4;
/// Encoded size of one group sub-header (report count, cell count).
pub const COLLECTOR_STATE_GROUP_HEADER_LEN: usize = 12;

/// Encoded size of a state frame for `collector`.
pub fn collector_state_encoded_len(collector: &Collector) -> usize {
    let plan = collector.plan();
    // Counter layouts are oracle-defined (SW observes more out-bins than
    // its grid has cells), so sizes come from the accumulators themselves,
    // not the plan's grid geometry.
    let cells: usize = (0..plan.group_count() as u32)
        .map(|g| collector.group_state(g).expect("in-plan group").0.len())
        .sum();
    COLLECTOR_STATE_HEADER_LEN + plan.group_count() * COLLECTOR_STATE_GROUP_HEADER_LEN + cells * 8
}

/// Appends the encoded raw state of `collector` to `buf`. The frame
/// carries the plan's public parameters plus every group's support
/// counters and report count verbatim, so
/// `decode_collector_state(encode(..))` reproduces the collector exactly.
///
/// # Panics
///
/// Panics if a plan field exceeds its wire width (`d` > u16, `c` or a
/// group's cell count > u32) — far beyond anything `SessionPlan` admits;
/// mutating the public fields past them must fail loudly rather than
/// encode a truncated frame.
pub fn encode_collector_state(collector: &Collector, buf: &mut BytesMut) {
    let plan = collector.plan();
    buf.reserve(collector_state_encoded_len(collector));
    buf.put_u8(COLLECTOR_STATE_TAG);
    buf.put_u8(COLLECTOR_STATE_VERSION);
    buf.put_u8(oracle_wire_byte(plan.oracle));
    buf.put_u8(approach_wire_byte(plan.approach));
    buf.put_u64_le(u64::try_from(plan.n).expect("plan population exceeds u64"));
    buf.put_u16_le(u16::try_from(plan.d).expect("plan dimension exceeds u16"));
    buf.put_u32_le(u32::try_from(plan.c).expect("plan domain exceeds u32"));
    buf.put_u64_le(plan.epsilon.to_bits());
    buf.put_u64_le(plan.assignment_seed);
    buf.put_u32_le(u32::try_from(plan.group_count()).expect("plan group count exceeds u32"));
    for g in 0..plan.group_count() as u32 {
        let (supports, reports) = collector.group_state(g).expect("in-plan group");
        buf.put_u64_le(reports);
        buf.put_u32_le(u32::try_from(supports.len()).expect("group cell count exceeds u32"));
        for &s in supports {
            buf.put_u64_le(s);
        }
    }
}

/// Encodes a collector's state to a standalone buffer.
pub fn collector_state_to_bytes(collector: &Collector) -> Bytes {
    let mut buf = BytesMut::with_capacity(collector_state_encoded_len(collector));
    encode_collector_state(collector, &mut buf);
    buf.freeze()
}

/// Decodes one `CollectorState` frame from the front of `buf`, advancing
/// it, into a fresh [`Collector`] holding the frame's counters.
///
/// The decode is garbage-robust: the plan is rebuilt from the header
/// (bounded to the snapshot shape limits before any construction work)
/// and the declared group count and per-group cell counts must match the
/// rebuilt plan's geometry *before* any counter vector is allocated — a
/// lying header cannot buy memory, and truncated, corrupted, or
/// tag-conflicting input always surfaces as a [`ProtocolError`], never a
/// panic.
pub fn decode_collector_state(buf: &mut impl Buf) -> Result<Collector, ProtocolError> {
    if buf.remaining() < COLLECTOR_STATE_HEADER_LEN {
        return Err(ProtocolError::Malformed("truncated collector-state header"));
    }
    if buf.get_u8() != COLLECTOR_STATE_TAG {
        return Err(ProtocolError::Malformed("not a collector-state frame"));
    }
    if buf.get_u8() != COLLECTOR_STATE_VERSION {
        return Err(ProtocolError::Malformed("unsupported wire version"));
    }
    let oracle = oracle_from_wire_byte(buf.get_u8())?;
    let approach = approach_from_wire_byte(buf.get_u8())?;
    let n = buf.get_u64_le();
    let d = buf.get_u16_le() as usize;
    let c = buf.get_u32_le() as usize;
    let epsilon = f64::from_bits(buf.get_u64_le());
    let assignment_seed = buf.get_u64_le();
    let declared_groups = buf.get_u32_le() as usize;
    // Bound the shape to the workspace-wide snapshot limits before doing
    // any plan-construction work, so a hostile header cannot buy CPU or
    // memory through a huge d or c.
    if !(2..=MAX_SNAPSHOT_DIMS).contains(&d) || c > MAX_SNAPSHOT_DOMAIN {
        return Err(ProtocolError::Malformed(
            "collector state shape out of bounds",
        ));
    }
    let n = usize::try_from(n)
        .map_err(|_| ProtocolError::Malformed("collector state population exceeds usize"))?;
    let plan = SessionPlan::with_mechanism(n, d, c, epsilon, assignment_seed, oracle, approach)
        .map_err(|_| ProtocolError::Malformed("collector state carries an invalid plan"))?;
    if declared_groups != plan.group_count() {
        return Err(ProtocolError::Malformed(
            "collector state group count does not match its plan",
        ));
    }
    let mut collector = Collector::new(plan)
        .map_err(|_| ProtocolError::Malformed("collector state carries an unbuildable plan"))?;
    for g in 0..declared_groups {
        if buf.remaining() < COLLECTOR_STATE_GROUP_HEADER_LEN {
            return Err(ProtocolError::Malformed("truncated collector-state group"));
        }
        let reports = buf.get_u64_le();
        let cells = buf.get_u32_le() as usize;
        // The freshly built collector's accumulators carry the plan's
        // oracle-defined counter layout, so they are the shape to validate
        // the frame's declared cell counts against.
        let expected = collector
            .group_state(g as u32)
            .expect("validated group index")
            .0
            .len();
        if cells != expected {
            return Err(ProtocolError::Malformed(
                "collector state group geometry does not match its plan",
            ));
        }
        if buf.remaining() / 8 < cells {
            return Err(ProtocolError::Malformed(
                "collector state shorter than its declared counters",
            ));
        }
        let supports: Vec<u64> = (0..cells).map(|_| buf.get_u64_le()).collect();
        collector.load_group_state(g, &supports, reports);
    }
    Ok(collector)
}

impl Collector {
    /// Decodes a `CollectorState` frame and fans it into this collector —
    /// the wire form of [`Collector::merge`]. The whole frame is decoded
    /// and its plan checked against this collector's *before* any counter
    /// moves, so malformed bytes or a mismatched plan leave the
    /// destination untouched. Returns the number of reports merged in.
    pub fn merge_state(&mut self, buf: &mut impl Buf) -> Result<u64, ProtocolError> {
        let other = decode_collector_state(buf)?;
        self.merge(&other)?;
        Ok(other.report_count())
    }
}

/// One sealed epoch: the cut index, the epoch's own report count, the
/// cumulative totals, and the cumulative model snapshot.
#[derive(Debug, Clone)]
pub struct EpochCut {
    /// 1-based index of the epoch this cut sealed.
    pub epoch: usize,
    /// Reports ingested during the sealed epoch alone.
    pub epoch_reports: u64,
    /// Reports across all sealed epochs (cumulative).
    pub total_reports: u64,
    /// Snapshot of the *cumulative* fit over every sealed epoch —
    /// bit-identical to a one-shot fit of the same reports.
    pub snapshot: ModelSnapshot,
}

/// A long-lived collector that cuts per-epoch snapshots without stopping
/// ingestion (see the module docs for the drain-and-swap scheme and the
/// bit-identity contract).
#[derive(Debug, Clone)]
pub struct EpochCollector {
    /// Merged counters of every sealed epoch.
    sealed: Collector,
    /// The in-flight epoch's counters.
    active: Collector,
    /// Finalization settings, derived from the plan's mechanism so epoch
    /// snapshots and the one-shot `Collector::snapshot` path agree.
    config: MechanismConfig,
    epochs_cut: usize,
}

impl EpochCollector {
    /// Creates a streaming collector for a plan. Epoch snapshots finalize
    /// under the plan's own oracle policy and approach with default
    /// estimation settings — exactly what `Collector::snapshot` is handed
    /// by the one-shot `privmdr ingest` path.
    pub fn new(plan: SessionPlan) -> Result<Self, ProtocolError> {
        let config = MechanismConfig::default()
            .with_approach(plan.approach)
            .with_oracle(plan.oracle);
        Ok(EpochCollector {
            sealed: Collector::new(plan.clone())?,
            active: Collector::new(plan)?,
            config,
            epochs_cut: 0,
        })
    }

    /// The session plan.
    pub fn plan(&self) -> &SessionPlan {
        self.sealed.plan()
    }

    /// Number of epochs sealed so far.
    pub fn epochs_cut(&self) -> usize {
        self.epochs_cut
    }

    /// Reports ingested into the in-flight (not yet sealed) epoch.
    pub fn epoch_reports(&self) -> u64 {
        self.active.report_count()
    }

    /// Total reports ingested across sealed epochs and the in-flight one.
    pub fn report_count(&self) -> u64 {
        self.sealed.report_count() + self.active.report_count()
    }

    /// Ingests a batch of decoded reports into the in-flight epoch across
    /// `shards` parallel shard accumulators (the [`Collector::ingest_batch`]
    /// path, with the same validate-up-front error contract).
    pub fn ingest_batch(
        &mut self,
        reports: &[Report],
        shards: usize,
    ) -> Result<usize, ProtocolError> {
        self.active.ingest_batch(reports, shards)
    }

    /// Seals the in-flight epoch and returns the cumulative snapshot: the
    /// active collector is swapped for a fresh one (ingestion of the next
    /// epoch can proceed immediately), its counters drain into the sealed
    /// collector via [`Collector::merge`], and the sealed state finalizes
    /// into a [`ModelSnapshot`]. Cutting with zero reports overall still
    /// snapshots (estimates are defined at zero reports) — callers decide
    /// whether an empty epoch is worth publishing.
    pub fn cut_epoch(&mut self) -> Result<EpochCut, ProtocolError> {
        let fresh = Collector::new(self.active.plan().clone())?;
        let drained = std::mem::replace(&mut self.active, fresh);
        self.sealed.merge(&drained)?;
        let snapshot = self.sealed.snapshot(self.config)?;
        self.epochs_cut += 1;
        Ok(EpochCut {
            epoch: self.epochs_cut,
            epoch_reports: drained.report_count(),
            total_reports: self.sealed.report_count(),
            snapshot,
        })
    }

    /// The cumulative collector state — every sealed epoch plus the
    /// in-flight one — as a standalone [`Collector`] (the thing
    /// [`collector_state_to_bytes`] serializes for fan-in).
    pub fn cumulative(&self) -> Result<Collector, ProtocolError> {
        let mut all = self.sealed.clone();
        all.merge(&self.active)?;
        Ok(all)
    }

    /// Snapshot of the cumulative state without sealing the in-flight
    /// epoch — bit-identical to the one-shot fit of every report ingested
    /// so far.
    pub fn cumulative_snapshot(&self) -> Result<ModelSnapshot, ProtocolError> {
        self.cumulative()?.snapshot(self.config)
    }

    /// Ingests a raw wire buffer (either framing, tagged or untagged)
    /// frame by frame, sealing an epoch every `epoch_every` reports —
    /// epoch boundaries split wire frames exactly, so a batch straddling
    /// a boundary lands in both epochs precisely where the cut falls.
    /// `on_cut` receives each [`EpochCut`] as it happens. Returns how many
    /// reports were processed.
    ///
    /// Unlike the one-shot [`Collector::ingest_stream_sharded`] (which
    /// validates the whole buffer before touching any counter), this is a
    /// *streaming* path: frames are validated as they arrive, and a
    /// malformed or tag-mismatched frame aborts mid-stream with earlier
    /// frames already ingested and earlier epochs already cut — the
    /// long-lived-service semantics.
    ///
    /// Contiguous buffers take the zero-copy [`crate::cursor::FrameCursor`]
    /// path — frame windows are sliced at epoch boundaries and fed to the
    /// kernel straight from the buffer; fragmented buffers fall back to
    /// the decode-to-`Vec` loop, which `tests/cursor_prop.rs` pins
    /// bit-identical (including the mid-stream-abort semantics).
    pub fn ingest_stream_epochs(
        &mut self,
        mut buf: impl Buf,
        shards: usize,
        epoch_every: u64,
        mut on_cut: impl FnMut(EpochCut),
    ) -> Result<usize, ProtocolError> {
        if epoch_every == 0 {
            return Err(ProtocolError::BadPlan(
                "epoch size must be at least 1".into(),
            ));
        }
        if buf.chunk().len() == buf.remaining() {
            return self.ingest_slice_epochs(buf.chunk(), shards, epoch_every, on_cut);
        }
        let expected_tag = self.plan().mechanism_tag();
        let mut processed = 0usize;
        while buf.has_remaining() {
            let (reports, tag) = if buf.chunk()[0] == wire::BATCH_TAG {
                let batch = Batch::decode(&mut buf)?;
                (batch.reports, batch.mechanism)
            } else {
                let (report, tag) = Report::decode_with_tag(&mut buf)?;
                (vec![report], tag)
            };
            if tag.unwrap_or(MechanismTag::DEFAULT) != expected_tag {
                return Err(ProtocolError::Malformed(
                    "stream mechanism tag does not match the session plan",
                ));
            }
            let mut rest = reports.as_slice();
            while !rest.is_empty() {
                let room = epoch_every - self.active.report_count();
                let take = (rest.len() as u64).min(room) as usize;
                self.ingest_batch(&rest[..take], shards)?;
                rest = &rest[take..];
                if self.active.report_count() == epoch_every {
                    on_cut(self.cut_epoch()?);
                }
            }
            processed += reports.len();
        }
        Ok(processed)
    }

    /// Zero-copy form of [`Self::ingest_stream_epochs`] for contiguous
    /// buffers: each frame is a borrowed window over `bytes`, epoch
    /// boundaries slice the window exactly where the cut falls, and the
    /// slices reach the support kernel without a `Vec<Report>` in between.
    /// Frame-by-frame validation and the mid-stream-abort semantics are
    /// identical to the fallback loop.
    fn ingest_slice_epochs(
        &mut self,
        bytes: &[u8],
        shards: usize,
        epoch_every: u64,
        mut on_cut: impl FnMut(EpochCut),
    ) -> Result<usize, ProtocolError> {
        let expected_tag = self.plan().mechanism_tag();
        let mut cursor = crate::cursor::FrameCursor::mixed(bytes);
        let mut processed = 0usize;
        while let Some(frame) = cursor.next_frame()? {
            if frame.tag() != expected_tag {
                return Err(ProtocolError::Malformed(
                    "stream mechanism tag does not match the session plan",
                ));
            }
            let mut start = 0usize;
            while start < frame.count() {
                let room = epoch_every - self.active.report_count();
                let take = ((frame.count() - start) as u64).min(room) as usize;
                self.active
                    .ingest_frames(&[frame.slice(start, take)], shards)?;
                start += take;
                if self.active.report_count() == epoch_every {
                    on_cut(self.cut_epoch()?);
                }
            }
            processed += frame.count();
        }
        Ok(processed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientFactory;
    use privmdr_util::rng::derive_rng;

    fn session_reports(plan: &SessionPlan, n: usize, seed: u64) -> Vec<Report> {
        let factory = ClientFactory::new(plan).unwrap();
        let mut rng = derive_rng(seed, &[0x5E]);
        (0..n as u64)
            .map(|uid| {
                let c = plan.c as u64;
                let record: Vec<u16> = (0..plan.d)
                    .map(|t| ((uid.wrapping_mul(t as u64 + 3)) % c) as u16)
                    .collect();
                factory.client(uid).report(&record, &mut rng).unwrap()
            })
            .collect()
    }

    fn assert_same_state(a: &Collector, b: &Collector) {
        assert_eq!(a.report_count(), b.report_count());
        for g in 0..a.plan().group_count() as u32 {
            assert_eq!(a.group_state(g).unwrap(), b.group_state(g).unwrap());
        }
    }

    #[test]
    fn epoch_cuts_accumulate_to_the_one_shot_state() {
        let plan = SessionPlan::new(3_000, 3, 16, 1.0, 5).unwrap();
        let reports = session_reports(&plan, 3_000, 5);

        let mut one_shot = Collector::new(plan.clone()).unwrap();
        one_shot.ingest_batch(&reports, 1).unwrap();

        let mut streaming = EpochCollector::new(plan).unwrap();
        let mut cuts = Vec::new();
        for chunk in reports.chunks(1_000) {
            streaming.ingest_batch(chunk, 2).unwrap();
            cuts.push(streaming.cut_epoch().unwrap());
        }
        assert_eq!(streaming.epochs_cut(), 3);
        assert_eq!(cuts[2].total_reports, 3_000);
        assert_eq!(cuts[1].epoch_reports, 1_000);
        assert_same_state(&one_shot, &streaming.cumulative().unwrap());
        // The final cumulative snapshot is the one-shot snapshot, bit for bit.
        let config = MechanismConfig::default();
        assert_eq!(cuts[2].snapshot, one_shot.snapshot(config).unwrap());
        assert_eq!(
            streaming.cumulative_snapshot().unwrap(),
            one_shot.snapshot(config).unwrap()
        );
    }

    #[test]
    fn state_frame_round_trips_exactly() {
        let plan = SessionPlan::new(2_000, 3, 16, 1.0, 9).unwrap();
        let reports = session_reports(&plan, 2_000, 9);
        let mut collector = Collector::new(plan).unwrap();
        collector.ingest_batch(&reports, 1).unwrap();

        let bytes = collector_state_to_bytes(&collector);
        assert_eq!(bytes.len(), collector_state_encoded_len(&collector));
        let back = decode_collector_state(&mut bytes.clone()).unwrap();
        assert_eq!(back.plan(), collector.plan());
        assert_same_state(&back, &collector);
    }

    #[test]
    fn merge_state_rejects_mismatched_plans_untouched() {
        let plan_a = SessionPlan::new(2_000, 3, 16, 1.0, 9).unwrap();
        let plan_b = SessionPlan::new(2_000, 3, 16, 2.0, 9).unwrap(); // different ε
        let mut a = Collector::new(plan_a.clone()).unwrap();
        a.ingest_batch(&session_reports(&plan_a, 500, 1), 1)
            .unwrap();
        let mut b = Collector::new(plan_b.clone()).unwrap();
        b.ingest_batch(&session_reports(&plan_b, 500, 2), 1)
            .unwrap();

        let before = a.clone();
        let state_b = collector_state_to_bytes(&b);
        assert!(a.merge_state(&mut state_b.clone()).is_err());
        assert_same_state(&a, &before);
    }

    #[test]
    fn split_collectors_fan_in_to_the_single_collector() {
        let plan = SessionPlan::new(4_000, 3, 16, 1.0, 3).unwrap();
        let reports = session_reports(&plan, 4_000, 3);

        let mut single = Collector::new(plan.clone()).unwrap();
        single.ingest_batch(&reports, 1).unwrap();

        let mut merged = Collector::new(plan.clone()).unwrap();
        for chunk in reports.chunks(1_300) {
            let mut split = Collector::new(plan.clone()).unwrap();
            split.ingest_batch(chunk, 2).unwrap();
            let wire = collector_state_to_bytes(&split);
            let n = merged.merge_state(&mut wire.clone()).unwrap();
            assert_eq!(n, chunk.len() as u64);
        }
        assert_same_state(&single, &merged);
        let config = MechanismConfig::default();
        assert_eq!(
            merged.snapshot(config).unwrap(),
            single.snapshot(config).unwrap()
        );
    }

    #[test]
    fn stream_epochs_splits_frames_at_exact_boundaries() {
        let plan = SessionPlan::new(2_500, 3, 16, 1.0, 11).unwrap();
        let reports = session_reports(&plan, 2_500, 11);
        // Frame sizes deliberately misaligned with the epoch size.
        let mut buf = BytesMut::new();
        for chunk in reports.chunks(700) {
            Batch::new(chunk.to_vec()).encode(&mut buf);
        }

        let mut streaming = EpochCollector::new(plan.clone()).unwrap();
        let mut cuts = Vec::new();
        let n = streaming
            .ingest_stream_epochs(buf.freeze(), 2, 1_000, |cut| cuts.push(cut))
            .unwrap();
        assert_eq!(n, 2_500);
        assert_eq!(cuts.len(), 2);
        assert_eq!(cuts[0].epoch_reports, 1_000);
        assert_eq!(cuts[1].total_reports, 2_000);
        assert_eq!(streaming.epoch_reports(), 500);

        // Cumulative state equals the one-shot collector over all reports.
        let mut one_shot = Collector::new(plan).unwrap();
        one_shot.ingest_batch(&reports, 1).unwrap();
        assert_same_state(&one_shot, &streaming.cumulative().unwrap());
    }

    #[test]
    fn stream_epochs_rejects_zero_epoch_size_and_mismatched_tags() {
        let plan = SessionPlan::new(1_000, 3, 16, 1.0, 2).unwrap(); // OLH/HDG
        let mut streaming = EpochCollector::new(plan).unwrap();
        assert!(streaming
            .ingest_stream_epochs(Bytes::new(), 1, 0, |_| {})
            .is_err());

        let mut buf = BytesMut::new();
        Batch::tagged(
            vec![
                Report {
                    group: 0,
                    seed: 1,
                    y: 0
                };
                4
            ],
            MechanismTag {
                oracle: crate::OraclePolicy::Grr,
                approach: crate::ApproachKind::Hdg,
            },
        )
        .encode(&mut buf);
        assert!(streaming
            .ingest_stream_epochs(buf.freeze(), 1, 100, |_| {})
            .is_err());
        assert_eq!(streaming.report_count(), 0);
    }
}
