//! The `served` loop: framed multi-tenant serving over a session frame.
//!
//! A serving daemon multiplexes many sessions over one framed input. The
//! existing frames already carry the payloads — `0xC5` snapshots and
//! `0xD7` query batches — so the session frame is a thin, tag-versioned
//! envelope that adds routing:
//!
//! ```text
//! +------+-------+------+----------------+------------------------+
//! | 0x5E | ver:1 | op:1 | session id u64 | embedded frame         |
//! +------+-------+------+----------------+------------------------+
//!                  op 0 = open  → embedded 0xC5 snapshot frame
//!                  op 1 = route → embedded 0xD7 query-batch frame
//! ```
//!
//! All integers little-endian. The embedded frame is the *existing*
//! encoding, verbatim — a session stream is therefore exactly a stream of
//! frames the single-tenant tools already produce, each prefixed with an
//! 11-byte envelope, and `collect --epoch-every` output feeds a
//! [`ServedNode`] directly (each epoch cut published as an `open`).
//!
//! An `open` on a new session id creates the tenant; an `open` on a live
//! session hot-swaps its epoch ([`crate::registry`] semantics: in-flight
//! batches finish on the old epoch, the answer cache invalidates). A
//! `route` answers through the tenant's cache and emits the standard
//! `0xA7` answer frame. A `route` to a session no `open` has introduced
//! is an error — answering from nothing would hide a wiring bug.

use crate::registry::{PublishReceipt, SnapshotRegistry};
use crate::wire::{decode_snapshot, encode_snapshot, QueryBatch, SNAPSHOT_TAG};
use crate::ProtocolError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use privmdr_core::ModelSnapshot;

/// First byte of a session frame.
pub const SESSION_TAG: u8 = 0x5E;
/// Wire version of the session frame.
pub const SESSION_VERSION: u8 = 1;
/// Encoded size of the session-frame envelope (tag, version, op,
/// session id).
pub const SESSION_HEADER_LEN: usize = 1 + 1 + 1 + 8;
/// Op discriminant: publish the embedded snapshot to the session.
pub const SESSION_OP_OPEN: u8 = 0;
/// Op discriminant: answer the embedded query batch on the session.
pub const SESSION_OP_ROUTE: u8 = 1;

/// One decoded session frame.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionFrame {
    /// Publish `snapshot` as `session`'s current epoch (create or swap).
    Open {
        /// Target session id.
        session: u64,
        /// The epoch to publish.
        snapshot: ModelSnapshot,
    },
    /// Answer `queries` on `session`.
    Route {
        /// Target session id.
        session: u64,
        /// The framed workload.
        queries: QueryBatch,
    },
}

fn put_session_header(buf: &mut BytesMut, op: u8, session: u64) {
    buf.put_u8(SESSION_TAG);
    buf.put_u8(SESSION_VERSION);
    buf.put_u8(op);
    buf.put_u64_le(session);
}

/// Appends a session-open frame (envelope + embedded snapshot frame).
pub fn encode_session_open(session: u64, snapshot: &ModelSnapshot, buf: &mut BytesMut) {
    put_session_header(buf, SESSION_OP_OPEN, session);
    encode_snapshot(snapshot, buf);
}

/// Encodes a session-open frame to a standalone buffer.
pub fn session_open_to_bytes(session: u64, snapshot: &ModelSnapshot) -> Bytes {
    let mut buf = BytesMut::new();
    encode_session_open(session, snapshot, &mut buf);
    buf.freeze()
}

/// Appends a session-route frame (envelope + embedded query-batch frame).
pub fn encode_session_route(session: u64, batch: &QueryBatch, buf: &mut BytesMut) {
    put_session_header(buf, SESSION_OP_ROUTE, session);
    batch.encode(buf);
}

/// Encodes a session-route frame to a standalone buffer.
pub fn session_route_to_bytes(session: u64, batch: &QueryBatch) -> Bytes {
    let mut buf = BytesMut::new();
    encode_session_route(session, batch, &mut buf);
    buf.freeze()
}

/// Decodes one session frame from the front of `buf`, advancing it. The
/// embedded frame decodes through the existing garbage-robust decoders,
/// so a lying envelope cannot buy memory beyond what a bare snapshot or
/// query-batch frame could.
pub fn decode_session_frame(buf: &mut impl Buf) -> Result<SessionFrame, ProtocolError> {
    if buf.remaining() < SESSION_HEADER_LEN {
        return Err(ProtocolError::Malformed("truncated session header"));
    }
    if buf.get_u8() != SESSION_TAG {
        return Err(ProtocolError::Malformed("not a session frame"));
    }
    if buf.get_u8() != SESSION_VERSION {
        return Err(ProtocolError::Malformed("unsupported wire version"));
    }
    let op = buf.get_u8();
    let session = buf.get_u64_le();
    match op {
        SESSION_OP_OPEN => Ok(SessionFrame::Open {
            session,
            snapshot: decode_snapshot(buf)?,
        }),
        SESSION_OP_ROUTE => Ok(SessionFrame::Route {
            session,
            queries: QueryBatch::decode(buf)?,
        }),
        _ => Err(ProtocolError::Malformed("unknown session frame op")),
    }
}

/// What one handled frame did.
#[derive(Debug)]
pub enum ServedEvent {
    /// An `open` published an epoch.
    Opened(PublishReceipt),
    /// A `route` produced an encoded `0xA7` answer frame.
    Answered {
        /// The session that answered.
        session: u64,
        /// Number of queries in the batch.
        queries: usize,
        /// The encoded [`crate::wire::AnswerBatch`].
        response: Bytes,
    },
}

/// Counters over one [`ServedNode::serve_stream`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServedStats {
    /// `open` frames handled (session creations + hot-swaps + no-ops).
    pub opens: u64,
    /// `open` frames that hot-swapped a live session's epoch.
    pub swaps: u64,
    /// `route` frames handled.
    pub routes: u64,
    /// Queries answered across all routes.
    pub answers: u64,
}

/// A multi-tenant serving daemon: a [`SnapshotRegistry`] plus the framed
/// event loop over it.
pub struct ServedNode {
    registry: SnapshotRegistry,
    shards: usize,
}

impl ServedNode {
    /// A node whose tenants get `cache_cap`-bounded answer caches and
    /// whose workloads shard across up to `shards` threads.
    pub fn new(cache_cap: usize, shards: usize) -> Self {
        ServedNode {
            registry: SnapshotRegistry::new(cache_cap),
            shards,
        }
    }

    /// The underlying registry (stats, direct tenant access).
    pub fn registry(&self) -> &SnapshotRegistry {
        &self.registry
    }

    /// Handles one session frame from the front of `buf`.
    pub fn handle_frame(&self, buf: &mut impl Buf) -> Result<ServedEvent, ProtocolError> {
        match decode_session_frame(buf)? {
            SessionFrame::Open { session, snapshot } => Ok(ServedEvent::Opened(
                self.registry.publish(session, &snapshot)?,
            )),
            SessionFrame::Route { session, queries } => {
                let tenant = self.registry.get(session).ok_or_else(|| {
                    ProtocolError::BadPlan(format!("route to unknown session {session}"))
                })?;
                let response = tenant.serve_batch(&queries, self.shards)?;
                Ok(ServedEvent::Answered {
                    session,
                    queries: queries.queries.len(),
                    response,
                })
            }
        }
    }

    /// Loops over a framed input, handling every session frame in order
    /// and passing each route's encoded answer frame to `on_answer`. For
    /// operator convenience a bare `0xC5` snapshot frame (no envelope) is
    /// accepted as an `open` on session 0, so single-tenant snapshot
    /// files replay unmodified. Like the streaming ingest loop, this is a
    /// long-lived-service path: a malformed frame aborts mid-stream with
    /// earlier frames already handled.
    pub fn serve_stream(
        &self,
        mut buf: impl Buf,
        mut on_answer: impl FnMut(u64, Bytes),
    ) -> Result<ServedStats, ProtocolError> {
        let mut stats = ServedStats::default();
        while buf.has_remaining() {
            let event = if buf.chunk()[0] == SNAPSHOT_TAG {
                let snapshot = decode_snapshot(&mut buf)?;
                ServedEvent::Opened(self.registry.publish(0, &snapshot)?)
            } else {
                self.handle_frame(&mut buf)?
            };
            match event {
                ServedEvent::Opened(receipt) => {
                    stats.opens += 1;
                    if receipt.swapped && !receipt.created {
                        stats.swaps += 1;
                    }
                }
                ServedEvent::Answered {
                    session,
                    queries,
                    response,
                } => {
                    stats.routes += 1;
                    stats.answers += queries as u64;
                    on_answer(session, response);
                }
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::QueryServer;
    use crate::wire::AnswerBatch;
    use privmdr_core::Hdg;
    use privmdr_data::DatasetSpec;
    use privmdr_query::workload::WorkloadBuilder;

    fn snapshot(seed: u64) -> ModelSnapshot {
        let ds = DatasetSpec::Normal { rho: 0.6 }.generate(8_000, 3, 16, seed);
        Hdg::default().snapshot(&ds, 1.0, seed).unwrap()
    }

    #[test]
    fn session_frames_round_trip() {
        let snap = snapshot(1);
        let open = session_open_to_bytes(42, &snap);
        assert_eq!(open[0], SESSION_TAG);
        match decode_session_frame(&mut open.clone()).unwrap() {
            SessionFrame::Open {
                session,
                snapshot: s,
            } => {
                assert_eq!(session, 42);
                assert_eq!(s, snap);
            }
            other => panic!("decoded {other:?}"),
        }

        let batch = QueryBatch::new(16, WorkloadBuilder::new(3, 16, 3).random(2, 0.5, 5));
        let route = session_route_to_bytes(42, &batch);
        match decode_session_frame(&mut route.clone()).unwrap() {
            SessionFrame::Route {
                session,
                queries: q,
            } => {
                assert_eq!(session, 42);
                assert_eq!(q.queries, batch.queries);
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        // Truncated header.
        assert!(decode_session_frame(&mut &[SESSION_TAG, SESSION_VERSION][..]).is_err());
        // Wrong tag / version / op.
        let snap = snapshot(2);
        let good = session_open_to_bytes(1, &snap);
        for (i, bad_byte) in [(0usize, 0xFFu8), (1, 9), (2, 7)] {
            let mut bytes = good.to_vec();
            bytes[i] = bad_byte;
            assert!(
                decode_session_frame(&mut &bytes[..]).is_err(),
                "byte {i} = {bad_byte:#x} must be rejected"
            );
        }
        // An open whose embedded frame is a query batch (and vice versa)
        // fails in the embedded decoder.
        let batch = QueryBatch::new(16, WorkloadBuilder::new(3, 16, 3).random(1, 0.5, 2));
        let mut crossed = BytesMut::new();
        put_session_header(&mut crossed, SESSION_OP_OPEN, 1);
        batch.encode(&mut crossed);
        assert!(decode_session_frame(&mut crossed.freeze()).is_err());
        let mut crossed = BytesMut::new();
        put_session_header(&mut crossed, SESSION_OP_ROUTE, 1);
        encode_snapshot(&snap, &mut crossed);
        assert!(decode_session_frame(&mut crossed.freeze()).is_err());
    }

    #[test]
    fn node_opens_swaps_and_answers() {
        let first = snapshot(3);
        let second = snapshot(4);
        let queries = {
            let wl = WorkloadBuilder::new(3, 16, 9);
            let mut q = wl.random(1, 0.5, 4);
            q.extend(wl.random(2, 0.5, 8));
            q
        };
        let batch = QueryBatch::new(16, queries.clone());

        let mut stream = BytesMut::new();
        encode_session_open(5, &first, &mut stream);
        encode_session_route(5, &batch, &mut stream);
        encode_session_open(5, &second, &mut stream); // hot-swap
        encode_session_route(5, &batch, &mut stream);
        encode_session_route(5, &batch, &mut stream); // warm re-ask

        let node = ServedNode::new(256, 1);
        let mut responses = Vec::new();
        let stats = node
            .serve_stream(stream.freeze(), |session, resp| {
                responses.push((session, resp));
            })
            .unwrap();
        assert_eq!(
            stats,
            ServedStats {
                opens: 2,
                swaps: 1,
                routes: 3,
                answers: 36,
            }
        );
        assert_eq!(responses.len(), 3);

        // Each response matches the uncached single-tenant server of the
        // epoch that was current when it was routed, bit for bit.
        for (resp, snap) in responses.iter().zip([&first, &second, &second]) {
            let answers = AnswerBatch::decode(&mut resp.1.clone()).unwrap().answers;
            let want = QueryServer::new(snap).unwrap().answer_workload(&queries, 1);
            assert_eq!(resp.0, 5);
            for (a, w) in answers.iter().zip(&want) {
                assert_eq!(a.to_bits(), w.to_bits());
            }
        }
        // The warm re-ask was served from cache.
        let totals = node.registry().cache_stats_total();
        assert_eq!(totals.hits, 12);
        assert_eq!(totals.misses, 24);
    }

    #[test]
    fn route_to_unknown_session_is_an_error() {
        let node = ServedNode::new(16, 1);
        let batch = QueryBatch::new(16, WorkloadBuilder::new(3, 16, 1).random(1, 0.5, 1));
        let route = session_route_to_bytes(99, &batch);
        let err = node.serve_stream(route, |_, _| {}).unwrap_err();
        assert!(err.to_string().contains("unknown session 99"), "{err}");
    }

    #[test]
    fn bare_snapshot_frames_open_session_zero() {
        let snap = snapshot(6);
        let mut stream = BytesMut::new();
        encode_snapshot(&snap, &mut stream);
        let batch = QueryBatch::new(16, WorkloadBuilder::new(3, 16, 2).random(2, 0.4, 3));
        encode_session_route(0, &batch, &mut stream);
        let node = ServedNode::new(16, 1);
        let mut answered = 0usize;
        let stats = node
            .serve_stream(stream.freeze(), |session, _| {
                assert_eq!(session, 0);
                answered += 1;
            })
            .unwrap();
        assert_eq!(stats.opens, 1);
        assert_eq!(answered, 1);
        assert_eq!(node.registry().session_ids(), [0]);
    }
}
