//! The query-serving engine: answering framed workloads against a snapshot.
//!
//! Ingestion ends with a finalized fit; everything after that is read-only
//! traffic. A [`QueryServer`] restores a `privmdr_core` model from a
//! [`ModelSnapshot`] once, then answers query batches — framed
//! ([`QueryBatch`] in, [`AnswerBatch`] out) or in-process — sharding each
//! batch across threads via `privmdr_util::par`.
//!
//! # Why sharded answering is bit-identical to serial
//!
//! Answering is pure: each query reads the fitted grids and response
//! matrices and writes nothing (paper §4.4 — answering consumes no budget
//! and touches no per-user state). Shards are contiguous chunks of the
//! batch ([`split_chunks`]), answered independently and concatenated in
//! order, so the output vector is a permutation-free reassembly of the
//! serial pass. All per-pair answering state (response matrices, prefix
//! sums) is built eagerly when the snapshot is restored and immutable
//! afterwards, so the hot path holds no lock and shares only read-only
//! data; the telemetry counters are relaxed atomics. Within each shard
//! the model's batch planner regroups the chunk by shape (pair-grouped
//! rectangles, λ-grouped lane-parallel estimation) — an execution
//! strategy proven answer-preserving, never a semantic change. The
//! serving property suite (`tests/serving_prop.rs`) pins all of this down
//! for arbitrary snapshots, workloads, plans, and shard counts.

use crate::wire::{AnswerBatch, QueryBatch};
use crate::ProtocolError;
use bytes::{Buf, Bytes};
use privmdr_core::{ApproachKind, EstimatorTelemetry, Model, ModelSnapshot};
use privmdr_query::RangeQuery;
use privmdr_util::par::{par_map, split_chunks};

/// A query-answering service over one restored model snapshot (HDG or
/// TDG — the snapshot's approach discriminant picks the answerer).
pub struct QueryServer {
    model: Box<dyn Model>,
    approach: ApproachKind,
    d: usize,
    c: usize,
}

impl QueryServer {
    /// Restores the snapshot into an answerer of the snapshot's approach.
    /// The snapshot's grids are used verbatim (no re-post-processing), so
    /// answers are bit-identical to the fit the snapshot captured.
    pub fn new(snapshot: &ModelSnapshot) -> Result<Self, ProtocolError> {
        let model = snapshot
            .to_model()
            .map_err(|e| ProtocolError::BadPlan(e.to_string()))?;
        Ok(QueryServer {
            model,
            approach: snapshot.approach,
            d: snapshot.d,
            c: snapshot.c,
        })
    }

    /// The estimation approach the restored model answers with.
    pub fn approach(&self) -> ApproachKind {
        self.approach
    }

    /// Number of attributes the model covers.
    pub fn dims(&self) -> usize {
        self.d
    }

    /// Attribute domain size.
    pub fn domain(&self) -> usize {
        self.c
    }

    /// Direct access to the restored model (diagnostics, tests).
    pub fn model(&self) -> &dyn Model {
        self.model.as_ref()
    }

    /// Cumulative estimator telemetry of the restored model (per-λ query
    /// counts and Weighted-Update sweeps); `None` for models without a
    /// λ-estimation stage.
    pub fn estimator_telemetry(&self) -> Option<EstimatorTelemetry> {
        self.model.estimator_telemetry()
    }

    /// Validates that every query fits the model's schema (domain `c`
    /// already checked at query construction; attributes must exist).
    fn check_queries(&self, queries: &[RangeQuery]) -> Result<(), ProtocolError> {
        if queries.iter().any(|q| q.attrs().any(|attr| attr >= self.d)) {
            return Err(ProtocolError::Malformed(
                "query references an attribute outside the model",
            ));
        }
        Ok(())
    }

    /// Answers a workload, sharding it across up to `shards` threads
    /// (`shards <= 1` answers serially on the calling thread). Answers come
    /// back in query order and are bit-identical for every shard count.
    pub fn answer_workload(&self, queries: &[RangeQuery], shards: usize) -> Vec<f64> {
        if shards <= 1 || queries.len() < 2 {
            return self.model.answer_all(queries);
        }
        let chunks = split_chunks(queries, shards);
        par_map(&chunks, |chunk| self.model.answer_all(chunk)).concat()
    }

    /// Serves one framed request: decodes a [`QueryBatch`] from `buf`,
    /// validates it against the model schema, answers it across `shards`
    /// threads, and returns the encoded [`AnswerBatch`].
    pub fn serve_frame(&self, buf: &mut impl Buf, shards: usize) -> Result<Bytes, ProtocolError> {
        let batch = QueryBatch::decode(buf)?;
        if batch.c != self.c {
            return Err(ProtocolError::Malformed(
                "query batch domain does not match the model",
            ));
        }
        self.check_queries(&batch.queries)?;
        Ok(AnswerBatch::new(self.answer_workload(&batch.queries, shards)).to_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmdr_core::Hdg;
    use privmdr_data::DatasetSpec;
    use privmdr_query::workload::WorkloadBuilder;

    fn server() -> QueryServer {
        let ds = DatasetSpec::Normal { rho: 0.6 }.generate(20_000, 3, 16, 7);
        let snap = Hdg::default().snapshot(&ds, 1.0, 3).unwrap();
        QueryServer::new(&snap).unwrap()
    }

    #[test]
    fn serves_frames_matching_direct_answers() {
        let srv = server();
        let wl = WorkloadBuilder::new(3, 16, 5);
        let mut queries = wl.random(1, 0.5, 10);
        queries.extend(wl.random(2, 0.5, 10));
        queries.extend(wl.random(3, 0.5, 10));
        let direct = srv.answer_workload(&queries, 1);

        let request = QueryBatch::new(16, queries).to_bytes();
        let response = srv.serve_frame(&mut request.clone(), 4).unwrap();
        let answers = AnswerBatch::decode(&mut response.clone()).unwrap().answers;
        assert_eq!(answers.len(), 30);
        for (a, b) in answers.iter().zip(&direct) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn sharded_answers_match_serial() {
        let srv = server();
        let queries = WorkloadBuilder::new(3, 16, 9).random(2, 0.4, 64);
        let serial = srv.answer_workload(&queries, 1);
        for shards in [2usize, 3, 7, 64] {
            let sharded = srv.answer_workload(&queries, shards);
            assert_eq!(serial.len(), sharded.len());
            for (a, b) in serial.iter().zip(&sharded) {
                assert_eq!(a.to_bits(), b.to_bits(), "diverges at {shards} shards");
            }
        }
    }

    #[test]
    fn rejects_schema_violations() {
        let srv = server();
        // Domain mismatch.
        let wrong_domain = QueryBatch::new(
            32,
            vec![RangeQuery::from_triples(&[(0, 0, 31)], 32).unwrap()],
        )
        .to_bytes();
        assert!(srv.serve_frame(&mut wrong_domain.clone(), 1).is_err());
        // Unknown attribute.
        let bad_attr = QueryBatch::new(
            16,
            vec![RangeQuery::from_triples(&[(9, 0, 3)], 16).unwrap()],
        )
        .to_bytes();
        assert!(srv.serve_frame(&mut bad_attr.clone(), 1).is_err());
        // Garbage request.
        assert!(srv.serve_frame(&mut &[0xFFu8; 12][..], 1).is_err());
    }
}
