//! Full protocol round trip: clients → wire → streaming server → model,
//! validated against ground truth and against the in-process exact path.

use bytes::BytesMut;
use privmdr_core::{Hdg, Mechanism, MechanismConfig};
use privmdr_data::DatasetSpec;
use privmdr_protocol::{Client, Collector, Report, SessionPlan};
use privmdr_query::workload::{true_answers, WorkloadBuilder};
use privmdr_util::rng::derive_rng;

#[test]
fn protocol_accuracy_matches_in_process_exact_fit() {
    let (n, d, c) = (60_000usize, 3usize, 32usize);
    let ds = DatasetSpec::Normal { rho: 0.8 }.generate(n, d, c, 42);
    let eps = 2.0;

    // Wire path: every user produces one report; the server streams them.
    let plan = SessionPlan::new(n, d, c, eps, 777).unwrap();
    let mut collector = Collector::new(plan.clone()).unwrap();
    let mut rng = derive_rng(11, &[0]);
    let mut buf = BytesMut::new();
    for uid in 0..n as u64 {
        let client = Client::new(&plan, uid).unwrap();
        client
            .report(ds.row(uid as usize), &mut rng)
            .unwrap()
            .encode(&mut buf);
    }
    // 17 bytes per user on the wire.
    assert_eq!(buf.len(), n * privmdr_protocol::wire::REPORT_LEN);
    collector.ingest_stream(buf.freeze()).unwrap();
    assert_eq!(collector.report_count(), n as u64);
    let wire_model = collector.finalize(MechanismConfig::default()).unwrap();

    // Reference path: in-process exact-mode HDG.
    let direct_model = Hdg::new(MechanismConfig::exact())
        .fit(&ds, eps, 12)
        .unwrap();

    let wl = WorkloadBuilder::new(d, c, 13);
    let queries = wl.random(2, 0.5, 40);
    let truths = true_answers(&ds, &queries);
    let wire_mae = privmdr_query::mae(&wire_model.answer_all(&queries), &truths);
    let direct_mae = privmdr_query::mae(&direct_model.answer_all(&queries), &truths);

    // Both paths must be accurate; the wire path may differ slightly
    // because group assignment is hash-based rather than an exact
    // partition.
    assert!(wire_mae < 0.05, "wire-path MAE {wire_mae}");
    assert!(direct_mae < 0.05, "direct MAE {direct_mae}");
    assert!(
        wire_mae < direct_mae * 3.0 + 0.02,
        "wire {wire_mae} vs direct {direct_mae}"
    );
}

#[test]
fn collector_is_order_insensitive() {
    let (n, d, c) = (5_000usize, 3usize, 16usize);
    let ds = DatasetSpec::Ipums.generate(n, d, c, 7);
    let plan = SessionPlan::new(n, d, c, 1.0, 5).unwrap();
    let mut rng = derive_rng(14, &[0]);
    let reports: Vec<Report> = (0..n as u64)
        .map(|uid| {
            Client::new(&plan, uid)
                .unwrap()
                .report(ds.row(uid as usize), &mut rng)
                .unwrap()
        })
        .collect();

    let mut forward = Collector::new(plan.clone()).unwrap();
    for r in &reports {
        forward.ingest(r).unwrap();
    }
    let mut backward = Collector::new(plan).unwrap();
    for r in reports.iter().rev() {
        backward.ingest(r).unwrap();
    }
    let qf = privmdr_query::RangeQuery::from_triples(&[(0, 2, 11), (2, 0, 7)], 16).unwrap();
    let mf = forward.finalize(MechanismConfig::default()).unwrap();
    let mb = backward.finalize(MechanismConfig::default()).unwrap();
    assert_eq!(
        mf.answer(&qf),
        mb.answer(&qf),
        "ingestion order must not matter"
    );
}
