//! Seeded golden regressions for the wide-framed mechanism paths: a fixed
//! end-to-end MSW session (plan → SW clients → wide reports → sharded
//! collector → EM finalize → product-of-CDFs answers) and a fixed
//! Wheel/HDG session must reproduce these exact `f64` answers, identical
//! in debug and release builds and at 1 and 4 shards.
//!
//! This is the wide-oracle counterpart of `golden_auto.rs`: everything
//! downstream of the pinned report set is deterministic arithmetic (pure
//! scalar IEEE-754 EM in a fixed order, `u64` support folds), so any
//! refactor that disturbs the SW perturbation, the EM reconstruction, the
//! Wheel support kernel, or the wide wire path shows up as a bit-level
//! diff. If a change is *supposed* to alter estimates, re-record the
//! constants (the assert message prints the observed value with full
//! round-trip precision).

use privmdr_core::MechanismConfig;
use privmdr_data::DatasetSpec;
use privmdr_oracles::OraclePolicy;
use privmdr_protocol::{ApproachKind, ClientFactory, Collector, SessionPlan};
use privmdr_query::RangeQuery;
use privmdr_util::rng::derive_rng;

/// The pinned scenario: n=40_000 users, d=3, c=16, ε=1.0, Normal(ρ=0.8)
/// data at seed 24, client randomness derived from seed 7 — the
/// `golden_auto.rs` scenario pointed at the wide mechanisms.
const N: usize = 40_000;
const C: usize = 16;

fn fixed_queries() -> Vec<RangeQuery> {
    [
        &[(0usize, 0usize, 7usize)][..],
        &[(1, 2, 9)],
        &[(2, 10, 15)],
        &[(0, 0, 7), (1, 0, 7)],
        &[(0, 2, 13), (2, 3, 8)],
        &[(1, 4, 11), (2, 0, 15)],
        &[(0, 0, 15), (1, 0, 15)],
        &[(0, 8, 8), (2, 4, 4)],
        &[(0, 0, 7), (1, 0, 7), (2, 0, 7)],
        &[(0, 1, 14), (1, 3, 10), (2, 5, 12)],
    ]
    .iter()
    .map(|triples| RangeQuery::from_triples(triples, C).unwrap())
    .collect()
}

/// Runs the pinned scenario for one (oracle, approach) pair and checks
/// every answer against its golden bits at 1 and 4 shards.
fn run_golden(oracle: OraclePolicy, approach: ApproachKind, salt: u64, golden: &[f64; 10]) {
    let plan = SessionPlan::with_mechanism(N, 3, C, 1.0, 24, oracle, approach).unwrap();
    let ds = DatasetSpec::Normal { rho: 0.8 }.generate(N, 3, C, 24);
    let factory = ClientFactory::new(&plan).unwrap();
    let mut rng = derive_rng(7, &[salt]);
    let reports: Vec<_> = (0..N as u64)
        .map(|uid| {
            factory
                .client(uid)
                .report(ds.row(uid as usize), &mut rng)
                .unwrap()
        })
        .collect();

    let config = MechanismConfig::default()
        .with_oracle(oracle)
        .with_approach(approach);
    let queries = fixed_queries();
    assert_eq!(queries.len(), golden.len());
    // The golden values must hold for the serial AND the sharded engine —
    // the wide path rides the same sharded ≡ serial invariant.
    for shards in [1usize, 4] {
        let mut collector = Collector::new(plan.clone()).unwrap();
        collector.ingest_batch(&reports, shards).unwrap();
        let model = collector.finalize(config).unwrap();
        for (i, (q, &want)) in queries.iter().zip(golden.iter()).enumerate() {
            let got = model.answer(q);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "query {i} ({q}) at {shards} shard(s): got {got:?}, golden {want:?}"
            );
        }
    }
}

/// Recorded output of the pinned MSW scenario (SW substrate, EM
/// reconstruction, product-of-CDFs answers), full round-trip precision.
const GOLDEN_MSW: [f64; 10] = [
    0.528737105479815,
    0.8619127211285977,
    0.15183370938236007,
    0.27471414986617465,
    0.6972394047711217,
    0.9793014563239888,
    1.0,
    0.012411274472977279,
    0.13896851302058935,
    0.8411281969162311,
];

/// Recorded output of the pinned Wheel/HDG scenario (wheel support
/// kernel, unbiased estimates, HDG grid fit), full round-trip precision.
const GOLDEN_WHEEL_HDG: [f64; 10] = [
    0.4828679203894003,
    0.7800344589552983,
    0.18516983451628488,
    0.4121050000599096,
    0.6907070970472425,
    0.874986480704389,
    0.9999999999999997,
    0.005472129196985136,
    0.2393868049349276,
    0.611775225843612,
];

#[test]
fn msw_session_answers_exact_golden_values() {
    run_golden(OraclePolicy::Sw, ApproachKind::Msw, 0x61, &GOLDEN_MSW);
}

#[test]
fn wheel_hdg_session_answers_exact_golden_values() {
    run_golden(
        OraclePolicy::Wheel,
        ApproachKind::Hdg,
        0x62,
        &GOLDEN_WHEEL_HDG,
    );
}
