//! Seeded golden regression for the *multi-tenant served* path: the
//! pinned streaming session of `golden_stream.rs`, but with every epoch
//! cut published to a `ServedNode` through session-open frames and the
//! twelve fixed queries routed (cold, then warm from cache) after each
//! hot-swap. The decoded answer frames must reproduce the same exact
//! `f64` constants — the serving tier (registry, swap, LRU cache, session
//! envelope, answer framing) can never move an answer by even one bit
//! relative to answering the snapshot directly.
//!
//! Scenario and constants are duplicated from `golden_stream.rs`
//! deliberately: if they are re-recorded there, re-record them here too.

use bytes::BytesMut;
use privmdr_data::DatasetSpec;
use privmdr_oracles::OraclePolicy;
use privmdr_protocol::wire::{AnswerBatch, QueryBatch};
use privmdr_protocol::{
    encode_session_open, encode_session_route, ApproachKind, Batch, ClientFactory, EpochCollector,
    ServedNode, ServedStats, SessionPlan,
};
use privmdr_query::RangeQuery;
use privmdr_util::rng::derive_rng;

/// The pinned `--oracle auto` session of `golden_stream.rs`: n=40_000,
/// d=3, c=16, ε=1.0, Normal(ρ=0.8) data at seed 24, client randomness
/// from seed 7, epochs of 13_334 reports arriving in 10_000-report
/// frames.
const N: usize = 40_000;
const C: usize = 16;
const EPOCH_EVERY: u64 = 13_334;
const BATCH_SIZE: usize = 10_000;
/// The session id the epochs are served under (arbitrary, non-zero so the
/// envelope's id byte-order is actually exercised).
const SESSION: u64 = 0xD00D;

fn fixed_queries() -> Vec<RangeQuery> {
    [
        &[(0usize, 0usize, 7usize)][..],
        &[(1, 2, 9)],
        &[(2, 10, 15)],
        &[(0, 0, 7), (1, 0, 7)],
        &[(0, 2, 13), (2, 3, 8)],
        &[(1, 4, 11), (2, 0, 15)],
        &[(0, 0, 15), (1, 0, 15)],
        &[(0, 8, 8), (2, 4, 4)],
        &[(0, 0, 7), (1, 0, 7), (2, 0, 7)],
        &[(0, 1, 14), (1, 3, 10), (2, 5, 12)],
        &[(1, 0, 3), (2, 12, 15)],
        &[(0, 5, 10), (1, 5, 10), (2, 5, 10)],
    ]
    .iter()
    .map(|triples| RangeQuery::from_triples(triples, C).unwrap())
    .collect()
}

/// `golden_stream.rs`'s recorded per-epoch answers (full round-trip
/// precision). Row `k` is the cumulative epoch-`k+1` snapshot.
const GOLDEN: [[f64; 12]; 3] = [
    [
        0.48195632686623563,
        0.8608758663288896,
        0.19489311940228496,
        0.39213370616589105,
        0.684675314116644,
        0.8495184604784956,
        1.0,
        0.0,
        0.2450106451690392,
        0.6622593330885514,
        0.003862211057258716,
        0.46993373231716506,
    ],
    [
        0.468008525871858,
        0.7929860111891511,
        0.15865789011993112,
        0.37843785418419906,
        0.6171639780079602,
        0.8840456847461609,
        1.0,
        0.0008955441769833289,
        0.234908357561491,
        0.6265418509277557,
        0.0005382495246154251,
        0.45061147242337435,
    ],
    [
        0.4793604279787603,
        0.8032647056512563,
        0.16273930353724242,
        0.377042927689223,
        0.6553007123189819,
        0.9010661117855181,
        1.0,
        0.0027526219047463024,
        0.23248043478561542,
        0.6186042442396936,
        0.0004242215545043129,
        0.44406558809019747,
    ],
];

#[test]
fn served_session_answers_exact_golden_values_across_epoch_swaps() {
    let plan = SessionPlan::with_mechanism(N, 3, C, 1.0, 24, OraclePolicy::Auto, ApproachKind::Hdg)
        .unwrap();
    let ds = DatasetSpec::Normal { rho: 0.8 }.generate(N, 3, C, 24);
    let factory = ClientFactory::new(&plan).unwrap();
    let mut rng = derive_rng(7, &[0x60]);
    let reports: Vec<_> = (0..N as u64)
        .map(|uid| {
            factory
                .client(uid)
                .report(ds.row(uid as usize), &mut rng)
                .unwrap()
        })
        .collect();
    let mut wire = BytesMut::new();
    for chunk in reports.chunks(BATCH_SIZE) {
        Batch::tagged(chunk.to_vec(), plan.mechanism_tag()).encode(&mut wire);
    }
    let wire = wire.freeze();

    // Collect the three epoch cuts, then replay them as a served session:
    // each epoch's snapshot published via a session-open frame followed by
    // the fixed workload routed twice (cold fill, then warm from cache).
    let mut streaming = EpochCollector::new(plan).unwrap();
    let mut cuts = Vec::new();
    streaming
        .ingest_stream_epochs(wire, 1, EPOCH_EVERY, |cut| cuts.push(cut))
        .unwrap();
    cuts.push(streaming.cut_epoch().unwrap());
    assert_eq!(cuts.len(), 3);

    let queries = fixed_queries();
    let batch = QueryBatch::new(C, queries.clone());
    let mut stream = BytesMut::new();
    for cut in &cuts {
        encode_session_open(SESSION, &cut.snapshot, &mut stream);
        encode_session_route(SESSION, &batch, &mut stream);
        encode_session_route(SESSION, &batch, &mut stream);
    }
    let stream = stream.freeze();

    // The golden values must hold for serial and sharded serving alike —
    // the served tier rides the same sharded ≡ serial invariant.
    for shards in [1usize, 4] {
        let node = ServedNode::new(256, shards);
        let mut responses: Vec<Vec<f64>> = Vec::new();
        let stats = node
            .serve_stream(stream.clone(), |session, resp| {
                assert_eq!(session, SESSION);
                responses.push(AnswerBatch::decode(&mut resp.clone()).unwrap().answers);
            })
            .unwrap();
        assert_eq!(
            stats,
            ServedStats {
                opens: 3,
                swaps: 2,
                routes: 6,
                answers: 72,
            }
        );

        // Responses 2k (cold) and 2k+1 (warm) both pin to epoch k+1's row.
        for (epoch, golden_row) in GOLDEN.iter().enumerate() {
            for heat in ["cold", "warm"] {
                let got = &responses[2 * epoch + usize::from(heat == "warm")];
                assert_eq!(got.len(), 12);
                for (i, (g, want)) in got.iter().zip(golden_row.iter()).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        want.to_bits(),
                        "epoch {} query {i} ({}) {heat} at {shards} shard(s): \
                         got {g:?}, golden {want:?}",
                        epoch + 1,
                        queries[i]
                    );
                }
            }
        }
        // Every warm route was answered entirely from the cache, and each
        // swap invalidated it (misses on each epoch's cold route).
        let totals = node.registry().cache_stats_total();
        assert_eq!(totals.hits, 36);
        assert_eq!(totals.misses, 36);
        // Publishing three distinct epochs left the tenant at version 3.
        let tenant = node.registry().get(SESSION).unwrap();
        assert_eq!(tenant.current().version, 3);
    }
}
