//! Seeded golden regression for the *streaming* protocol path: the same
//! pinned `--oracle auto` session as `golden_auto.rs`, but replayed as a
//! framed report stream through an `EpochCollector` that cuts three
//! epochs. Each epoch's cumulative snapshot must answer twelve fixed
//! queries to these exact `f64` constants — identical in debug and
//! release builds and at 1 and 4 shards — so the streaming layer can
//! never silently diverge from the one-shot path it is proven (in
//! `epoch_prop.rs`) to equal.
//!
//! If a change is *supposed* to alter estimates, re-record the constants
//! (the assert message prints the observed value with full round-trip
//! precision).

use bytes::BytesMut;
use privmdr_data::DatasetSpec;
use privmdr_oracles::{OracleChoice, OraclePolicy};
use privmdr_protocol::{ApproachKind, Batch, ClientFactory, EpochCollector, SessionPlan};
use privmdr_query::RangeQuery;
use privmdr_util::rng::derive_rng;

/// The pinned scenario: n=40_000 users, d=3, c=16, ε=1.0, Normal(ρ=0.8)
/// data at seed 24, client randomness derived from seed 7 — exactly
/// `golden_auto.rs`, whose adaptive rule sends the 2-D groups to GRR and
/// the 1-D groups to OLH. The stream arrives as 10_000-report batch
/// frames, deliberately misaligned with the 13_334-report epoch size, so
/// every epoch boundary splits a wire frame.
const N: usize = 40_000;
const C: usize = 16;
const EPOCH_EVERY: u64 = 13_334;
const BATCH_SIZE: usize = 10_000;

fn fixed_queries() -> Vec<RangeQuery> {
    [
        &[(0usize, 0usize, 7usize)][..],
        &[(1, 2, 9)],
        &[(2, 10, 15)],
        &[(0, 0, 7), (1, 0, 7)],
        &[(0, 2, 13), (2, 3, 8)],
        &[(1, 4, 11), (2, 0, 15)],
        &[(0, 0, 15), (1, 0, 15)],
        &[(0, 8, 8), (2, 4, 4)],
        &[(0, 0, 7), (1, 0, 7), (2, 0, 7)],
        &[(0, 1, 14), (1, 3, 10), (2, 5, 12)],
        &[(1, 0, 3), (2, 12, 15)],
        &[(0, 5, 10), (1, 5, 10), (2, 5, 10)],
    ]
    .iter()
    .map(|triples| RangeQuery::from_triples(triples, C).unwrap())
    .collect()
}

/// Recorded per-epoch answers of the pinned streamed session (full
/// round-trip precision), identical in debug and release builds. Row `k`
/// is the cumulative epoch-`k+1` snapshot (13_334 / 26_668 / 40_000
/// reports).
const GOLDEN: [[f64; 12]; 3] = [
    [
        0.48195632686623563,
        0.8608758663288896,
        0.19489311940228496,
        0.39213370616589105,
        0.684675314116644,
        0.8495184604784956,
        1.0,
        0.0,
        0.2450106451690392,
        0.6622593330885514,
        0.003862211057258716,
        0.46993373231716506,
    ],
    [
        0.468008525871858,
        0.7929860111891511,
        0.15865789011993112,
        0.37843785418419906,
        0.6171639780079602,
        0.8840456847461609,
        1.0,
        0.0008955441769833289,
        0.234908357561491,
        0.6265418509277557,
        0.0005382495246154251,
        0.45061147242337435,
    ],
    // Epoch 3 covers the full 40_000-report session, so its first ten
    // answers coincide with `golden_auto.rs`'s one-shot constants —
    // streamed-cumulative ≡ one-shot, pinned at the bit level.
    [
        0.4793604279787603,
        0.8032647056512563,
        0.16273930353724242,
        0.377042927689223,
        0.6553007123189819,
        0.9010661117855181,
        1.0,
        0.0027526219047463024,
        0.23248043478561542,
        0.6186042442396936,
        0.0004242215545043129,
        0.44406558809019747,
    ],
];

#[test]
fn streamed_auto_session_answers_exact_golden_values_per_epoch() {
    let plan = SessionPlan::with_mechanism(N, 3, C, 1.0, 24, OraclePolicy::Auto, ApproachKind::Hdg)
        .unwrap();
    // The scenario only pins the adaptive path if the rule actually mixes
    // oracles (as in `golden_auto.rs`).
    for group in 0..3u32 {
        assert_eq!(plan.group_oracle(group).unwrap().kind(), OracleChoice::Olh);
        assert_eq!(
            plan.group_oracle(group + 3).unwrap().kind(),
            OracleChoice::Grr
        );
    }

    let ds = DatasetSpec::Normal { rho: 0.8 }.generate(N, 3, C, 24);
    let factory = ClientFactory::new(&plan).unwrap();
    let mut rng = derive_rng(7, &[0x60]);
    let reports: Vec<_> = (0..N as u64)
        .map(|uid| {
            factory
                .client(uid)
                .report(ds.row(uid as usize), &mut rng)
                .unwrap()
        })
        .collect();
    let mut wire = BytesMut::new();
    for chunk in reports.chunks(BATCH_SIZE) {
        Batch::tagged(chunk.to_vec(), plan.mechanism_tag()).encode(&mut wire);
    }
    let wire = wire.freeze();

    let queries = fixed_queries();
    // The golden values must hold for the serial AND the sharded streaming
    // engine — epoch cuts ride the same sharded ≡ serial invariant.
    for shards in [1usize, 4] {
        let mut streaming = EpochCollector::new(plan.clone()).unwrap();
        let mut cuts = Vec::new();
        let n = streaming
            .ingest_stream_epochs(wire.clone(), shards, EPOCH_EVERY, |cut| cuts.push(cut))
            .unwrap();
        assert_eq!(n, N);
        // The stream ends mid-epoch-3; seal it explicitly.
        cuts.push(streaming.cut_epoch().unwrap());
        assert_eq!(cuts.len(), 3);
        assert_eq!(cuts[0].total_reports, EPOCH_EVERY);
        assert_eq!(cuts[1].total_reports, 2 * EPOCH_EVERY);
        assert_eq!(cuts[2].total_reports, N as u64);

        for (cut, golden_row) in cuts.iter().zip(GOLDEN.iter()) {
            let model = cut.snapshot.to_model().unwrap();
            for (i, (q, &want)) in queries.iter().zip(golden_row.iter()).enumerate() {
                let got = model.answer(q);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "epoch {} query {i} ({q}) at {shards} shard(s): got {got:?}, golden {want:?}",
                    cut.epoch
                );
            }
        }
    }
}
