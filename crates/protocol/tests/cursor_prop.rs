//! Zero-copy cursor ≡ decode-to-`Vec` ingestion bit-identity.
//!
//! The collector takes the borrowing `FrameCursor` path for contiguous
//! buffers and the original decode-to-`Vec` path for fragmented ones.
//! These suites pin the contract that makes that dispatch invisible: for
//! every stream — v1/v2/v3 frames, batch or standalone framing, valid,
//! truncated, or outright garbage — both paths accept/reject identically,
//! never panic, leave an erroring one-shot collector untouched, and
//! produce bit-identical counters when they succeed. The epoch path gets
//! the same treatment, including its mid-stream-abort semantics.

use bytes::{Buf, BytesMut};
use privmdr_core::ApproachKind;
use privmdr_protocol::{Batch, Collector, EpochCollector, OraclePolicy, Report, SessionPlan};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The mechanism shapes that exercise all three wire versions: v1
/// (default OLH/HDG), v2 narrow-tagged, and v3 wide.
const MECHANISMS: &[(OraclePolicy, ApproachKind)] = &[
    (OraclePolicy::Olh, ApproachKind::Hdg),
    (OraclePolicy::Grr, ApproachKind::Hdg),
    (OraclePolicy::Auto, ApproachKind::Tdg),
    (OraclePolicy::Wheel, ApproachKind::Hdg),
    (OraclePolicy::Sw, ApproachKind::Msw),
];

fn plan_for(mech: usize, c: usize, seed: u64) -> SessionPlan {
    let (oracle, approach) = MECHANISMS[mech % MECHANISMS.len()];
    SessionPlan::with_mechanism(100_000, 3, c, 1.0, seed, oracle, approach).unwrap()
}

/// Random in-plan reports; `y` is arbitrary within the frame width (wide
/// oracles occasionally get hostile raw f64 bits — the oracle folds them
/// deterministically, so equivalence must still hold).
fn random_reports(plan: &SessionPlan, n: usize, rng: &mut StdRng) -> Vec<Report> {
    let wide = plan.mechanism_tag().is_wide();
    (0..n)
        .map(|_| {
            let y = if wide {
                if rng.random_range(0..8) == 0 {
                    rng.random::<u64>()
                } else {
                    rng.random_range(-0.3f64..1.3).to_bits()
                }
            } else {
                u64::from(rng.random::<u32>())
            };
            Report {
                group: rng.random_range(0..plan.group_count() as u32),
                seed: rng.random(),
                y,
            }
        })
        .collect()
}

/// Frames `reports` for the one-shot path: either all batch frames (with
/// random frame sizes) or all standalone reports — the two framings
/// `decode_any_stream_tagged` commits to.
fn encode_stream(
    plan: &SessionPlan,
    reports: &[Report],
    batch_framing: bool,
    frame_size: usize,
    rng: &mut StdRng,
) -> Vec<u8> {
    let tag = plan.mechanism_tag();
    let mut buf = BytesMut::new();
    if batch_framing {
        let mut rest = reports;
        while !rest.is_empty() {
            let take = rng.random_range(1..=frame_size.min(rest.len()).max(1));
            Batch::tagged(rest[..take].to_vec(), tag).encode(&mut buf);
            rest = &rest[take..];
        }
    } else {
        for r in reports {
            r.encode_tagged(&tag, &mut buf);
        }
    }
    buf.to_vec()
}

fn assert_same_state(a: &Collector, b: &Collector, what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.report_count(), b.report_count(), "{}: totals", what);
    for g in 0..a.plan().group_count() as u32 {
        let (sa, na) = a.group_state(g).unwrap();
        let (sb, nb) = b.group_state(g).unwrap();
        prop_assert_eq!(na, nb, "{}: group {} report count", what, g);
        prop_assert_eq!(sa, sb, "{}: group {} supports", what, g);
    }
    Ok(())
}

/// A deliberately fragmented `Buf`: the stream cut into small chunks, so
/// `chunk().len() != remaining()` and the collector cannot take the
/// zero-copy slice path — this is how the tests force the decode-to-`Vec`
/// fallback. Overrides `copy_to_slice` to stitch reads across chunk
/// boundaries (the trait's default assumes a contiguous chunk).
struct SplitBuf(std::collections::VecDeque<Vec<u8>>);

impl SplitBuf {
    /// Fragments `bytes` into `chunk_size`-byte pieces (≥ 2 pieces
    /// whenever the stream is long enough to split).
    fn new(bytes: &[u8], chunk_size: usize) -> Self {
        let chunk_size = chunk_size.max(1);
        SplitBuf(bytes.chunks(chunk_size).map(<[u8]>::to_vec).collect())
    }
}

impl Buf for SplitBuf {
    fn remaining(&self) -> usize {
        self.0.iter().map(Vec::len).sum()
    }

    fn chunk(&self) -> &[u8] {
        self.0.front().map(Vec::as_slice).unwrap_or(&[])
    }

    fn advance(&mut self, mut cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of buffer");
        while cnt > 0 {
            let front = self.0.front_mut().expect("checked remaining");
            if cnt < front.len() {
                front.drain(..cnt);
                return;
            }
            cnt -= front.len();
            self.0.pop_front();
        }
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        let mut at = 0;
        while at < dst.len() {
            let chunk = self.chunk();
            let take = chunk.len().min(dst.len() - at);
            dst[at..at + take].copy_from_slice(&chunk[..take]);
            self.advance(take);
            at += take;
        }
    }
}

proptest! {
    /// One-shot ingestion: zero-copy slice path ≡ decode-to-`Vec` path ≡
    /// pre-decoded `ingest_batch`, for every mechanism, framing, shard
    /// count, and frame-size mix.
    #[test]
    fn one_shot_zero_copy_equals_vec_path(
        mech in 0usize..5,
        c_pow in 2u32..5,
        n_reports in 0usize..200,
        frame_size in 1usize..64,
        batch_framing in any::<bool>(),
        shards in 1usize..6,
        seed in any::<u64>(),
    ) {
        let plan = plan_for(mech, 1usize << c_pow, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let reports = random_reports(&plan, n_reports, &mut rng);
        let bytes = encode_stream(&plan, &reports, batch_framing, frame_size, &mut rng);

        let mut via_slice = Collector::new(plan.clone()).unwrap();
        let n_slice = via_slice.ingest_slice_sharded(&bytes, shards).unwrap();
        prop_assert_eq!(n_slice, reports.len());

        let mut via_vec = Collector::new(plan.clone()).unwrap();
        let n_vec = via_vec
            .ingest_stream_sharded(SplitBuf::new(&bytes, 7), shards)
            .unwrap();
        prop_assert_eq!(n_vec, reports.len());

        let mut via_batch = Collector::new(plan.clone()).unwrap();
        via_batch.ingest_batch(&reports, shards).unwrap();

        assert_same_state(&via_slice, &via_vec, "slice vs vec")?;
        assert_same_state(&via_slice, &via_batch, "slice vs pre-decoded")?;
    }

    /// Truncating a valid stream anywhere: both paths reject identically
    /// (or both still accept a frame-aligned prefix, with identical
    /// state), never panic, and an error leaves the one-shot collector
    /// untouched.
    #[test]
    fn truncation_agrees_and_leaves_collector_untouched(
        mech in 0usize..5,
        n_reports in 1usize..40,
        frame_size in 1usize..16,
        batch_framing in any::<bool>(),
        cut_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let plan = plan_for(mech, 8, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let reports = random_reports(&plan, n_reports, &mut rng);
        let bytes = encode_stream(&plan, &reports, batch_framing, frame_size, &mut rng);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let cut_bytes = &bytes[..cut.min(bytes.len())];

        let mut via_slice = Collector::new(plan.clone()).unwrap();
        let slice_result = via_slice.ingest_slice_sharded(cut_bytes, 2);

        let mut via_vec = Collector::new(plan.clone()).unwrap();
        let vec_result = via_vec.ingest_stream_sharded(SplitBuf::new(cut_bytes, 5), 2);

        prop_assert_eq!(&slice_result, &vec_result, "accept/reject must agree");
        if slice_result.is_err() {
            prop_assert_eq!(via_slice.report_count(), 0, "error must leave state untouched");
        }
        assert_same_state(&via_slice, &via_vec, "truncated stream")?;
    }

    /// Arbitrary byte soup: both paths agree on accept/reject and state,
    /// and neither panics.
    #[test]
    fn garbage_never_panics_and_paths_agree(
        bytes in prop::collection::vec(any::<u8>(), 0..400),
        shards in 1usize..4,
        seed in any::<u64>(),
    ) {
        let plan = plan_for(0, 8, seed);
        let mut via_slice = Collector::new(plan.clone()).unwrap();
        let slice_result = via_slice.ingest_slice_sharded(&bytes, shards);

        let mut via_vec = Collector::new(plan.clone()).unwrap();
        let vec_result = via_vec.ingest_stream_sharded(SplitBuf::new(&bytes, 3), shards);

        prop_assert_eq!(&slice_result, &vec_result, "accept/reject must agree");
        assert_same_state(&via_slice, &via_vec, "garbage stream")?;
    }

    /// Epoch streaming: zero-copy ≡ decode-to-`Vec`, including cut
    /// placement, per-cut report counts, cumulative state, and the
    /// mid-stream-abort semantics when the tail is garbage.
    #[test]
    fn epoch_streaming_zero_copy_equals_vec_path(
        mech in 0usize..5,
        n_reports in 0usize..160,
        frame_size in 1usize..32,
        batch_framing in any::<bool>(),
        epoch_every in 1u64..60,
        shards in 1usize..4,
        corrupt_tail in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let plan = plan_for(mech, 8, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let reports = random_reports(&plan, n_reports, &mut rng);
        let mut bytes = encode_stream(&plan, &reports, batch_framing, frame_size, &mut rng);
        if corrupt_tail {
            bytes.extend_from_slice(&[0x42, 0x13, 0x37]);
        }

        let mut via_slice = EpochCollector::new(plan.clone()).unwrap();
        let mut slice_cuts = Vec::new();
        let slice_result = via_slice.ingest_stream_epochs(
            &bytes[..],
            shards,
            epoch_every,
            |cut| slice_cuts.push((cut.epoch, cut.epoch_reports, cut.total_reports)),
        );

        let mut via_vec = EpochCollector::new(plan.clone()).unwrap();
        let mut vec_cuts = Vec::new();
        let vec_result = via_vec.ingest_stream_epochs(
            SplitBuf::new(&bytes, 11),
            shards,
            epoch_every,
            |cut| vec_cuts.push((cut.epoch, cut.epoch_reports, cut.total_reports)),
        );

        prop_assert_eq!(&slice_result, &vec_result, "accept/reject must agree");
        prop_assert_eq!(slice_cuts, vec_cuts, "cuts must fall identically");
        prop_assert_eq!(via_slice.report_count(), via_vec.report_count());
        assert_same_state(
            &via_slice.cumulative().unwrap(),
            &via_vec.cumulative().unwrap(),
            "epoch cumulative",
        )?;
        if corrupt_tail {
            prop_assert!(slice_result.is_err(), "garbage tail must abort");
            // Mid-stream abort: everything before the bad frame ingested.
            prop_assert_eq!(via_slice.report_count(), reports.len() as u64);
        } else {
            prop_assert_eq!(slice_result.unwrap(), reports.len());
        }
    }
}
