//! The load-bearing invariant of the parallel ingestion engine: sharded
//! ingestion is *exactly* serial ingestion. For arbitrary report sets
//! (including reports no honest client would send), arbitrary shard counts,
//! and arbitrary plan shapes, the merged per-group support counters and
//! report counts equal the single-threaded accumulator's, and `finalize`
//! produces bit-identical estimates.

use bytes::BytesMut;
use privmdr_core::{ApproachKind, MechanismConfig};
use privmdr_protocol::{Batch, Collector, OraclePolicy, Report, SessionPlan};
use privmdr_query::RangeQuery;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random reports with in-plan group ids but otherwise arbitrary contents
/// (`y` may even fall outside the OLH hashed domain — the collector's
/// counters must stay exact regardless).
fn random_reports(plan: &SessionPlan, n: usize, rng: &mut StdRng) -> Vec<Report> {
    (0..n)
        .map(|_| Report {
            group: rng.random_range(0..plan.group_count() as u32),
            seed: rng.random(),
            y: rng.random_range(0..64),
        })
        .collect()
}

/// Random reports for the float-carrying (wide-framed) oracles: `y` is an
/// `f64` bit pattern, mostly a plausible report point but occasionally
/// hostile raw bits (NaN/∞/huge) — Wheel and SW must fold both
/// deterministically.
fn random_wide_reports(plan: &SessionPlan, n: usize, rng: &mut StdRng) -> Vec<Report> {
    (0..n)
        .map(|_| {
            let y = if rng.random_range(0..8) == 0 {
                rng.random::<u64>()
            } else {
                rng.random_range(-0.3f64..1.3).to_bits()
            };
            Report {
                group: rng.random_range(0..plan.group_count() as u32),
                seed: rng.random(),
                y,
            }
        })
        .collect()
}

fn assert_same_state(a: &Collector, b: &Collector, what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.report_count(), b.report_count(), "{}: totals", what);
    for g in 0..a.plan().group_count() as u32 {
        let (sa, na) = a.group_state(g).unwrap();
        let (sb, nb) = b.group_state(g).unwrap();
        prop_assert_eq!(na, nb, "{}: group {} report count", what, g);
        prop_assert_eq!(sa, sb, "{}: group {} supports", what, g);
    }
    Ok(())
}

proptest! {
    /// Merged shard state ≡ serial state, and the finalized estimates are
    /// bit-identical, for every shard count.
    #[test]
    fn sharded_ingestion_equals_serial(
        d in 2usize..5,
        c_pow in 2u32..5,
        eps in 0.3f64..3.0,
        n_reports in 0usize..240,
        shards in 1usize..9,
        seed in any::<u64>(),
    ) {
        let c = 1usize << c_pow;
        let plan = SessionPlan::new(100_000, d, c, eps, seed).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let reports = random_reports(&plan, n_reports, &mut rng);

        let mut serial = Collector::new(plan.clone()).unwrap();
        serial.ingest_batch(&reports, 1).unwrap();
        let mut sharded = Collector::new(plan.clone()).unwrap();
        sharded.ingest_batch(&reports, shards).unwrap();
        assert_same_state(&serial, &sharded, "one batch")?;

        // Finalize must therefore agree to the last bit.
        if n_reports > 0 {
            let qs = RangeQuery::from_triples(&[(0, 0, c - 1), (1, 0, c / 2)], c).unwrap();
            let ms = serial.finalize(MechanismConfig::default()).unwrap();
            let mh = sharded.finalize(MechanismConfig::default()).unwrap();
            prop_assert_eq!(
                ms.answer(&qs).to_bits(),
                mh.answer(&qs).to_bits(),
                "finalized estimates diverge at {} shards", shards
            );
        }
    }

    /// Group-partitioned batch ingestion (the block-transposed kernel fed
    /// one contiguous per-group run at a time) is bit-identical to the
    /// original serial path that dispatched reports to group accumulators
    /// one by one — for arbitrary group interleavings and shard counts.
    #[test]
    fn partitioned_batch_equals_per_report_ingest(
        d in 2usize..5,
        c_pow in 2u32..5,
        eps in 0.3f64..3.0,
        n_reports in 0usize..240,
        shards in 1usize..9,
        seed in any::<u64>(),
    ) {
        let c = 1usize << c_pow;
        let plan = SessionPlan::new(100_000, d, c, eps, seed).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51ED);
        let reports = random_reports(&plan, n_reports, &mut rng);

        // Reference: the pre-batching path — one report at a time, in
        // arrival order, straight into its group's accumulator.
        let mut per_report = Collector::new(plan.clone()).unwrap();
        for r in &reports {
            per_report.ingest(r).unwrap();
        }

        let mut batched = Collector::new(plan.clone()).unwrap();
        batched.ingest_batch(&reports, 1).unwrap();
        assert_same_state(&per_report, &batched, "partitioned batch")?;

        let mut sharded = Collector::new(plan).unwrap();
        sharded.ingest_batch(&reports, shards).unwrap();
        assert_same_state(&per_report, &sharded, "partitioned sharded")?;
    }

    /// The GRR ingestion path: sharded ≡ batched ≡ serial, bit for bit,
    /// for arbitrary report sets (including out-of-domain `y` values no
    /// honest GRR client would send), shard counts, and plan shapes —
    /// extending the OLH invariant above to the second oracle.
    #[test]
    fn grr_sharded_equals_serial(
        d in 2usize..5,
        c_pow in 2u32..5,
        eps in 0.3f64..3.0,
        n_reports in 0usize..240,
        shards in 1usize..9,
        seed in any::<u64>(),
    ) {
        let c = 1usize << c_pow;
        let plan = SessionPlan::with_mechanism(
            100_000, d, c, eps, seed, OraclePolicy::Grr, ApproachKind::Hdg,
        ).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6172);
        let reports = random_reports(&plan, n_reports, &mut rng);

        let mut per_report = Collector::new(plan.clone()).unwrap();
        for r in &reports {
            per_report.ingest(r).unwrap();
        }
        let mut batched = Collector::new(plan.clone()).unwrap();
        batched.ingest_batch(&reports, 1).unwrap();
        assert_same_state(&per_report, &batched, "grr batch")?;

        let mut sharded = Collector::new(plan.clone()).unwrap();
        sharded.ingest_batch(&reports, shards).unwrap();
        assert_same_state(&per_report, &sharded, "grr sharded")?;

        if n_reports > 0 {
            let qs = RangeQuery::from_triples(&[(0, 0, c - 1), (1, 0, c / 2)], c).unwrap();
            let ms = batched.finalize(MechanismConfig::default()).unwrap();
            let mh = sharded.finalize(MechanismConfig::default()).unwrap();
            prop_assert_eq!(
                ms.answer(&qs).to_bits(),
                mh.answer(&qs).to_bits(),
                "grr finalized estimates diverge at {} shards", shards
            );
        }
    }

    /// The auto policy (mixed GRR and OLH groups in one session) and the
    /// TDG approach both preserve the invariant: sharded ≡ serial for the
    /// merged state, and the mechanism-tagged wire framing round-trips
    /// through `ingest_stream_sharded` to the same state.
    #[test]
    fn auto_and_tdg_sharded_equal_serial(
        d in 2usize..5,
        eps in 0.3f64..2.0,
        n_reports in 1usize..200,
        shards in 1usize..9,
        batch_size in 1usize..64,
        tdg in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let approach = if tdg { ApproachKind::Tdg } else { ApproachKind::Hdg };
        let plan = SessionPlan::with_mechanism(
            60_000, d, 16, eps, seed, OraclePolicy::Auto, approach,
        ).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA070);
        let reports = random_reports(&plan, n_reports, &mut rng);

        let mut serial = Collector::new(plan.clone()).unwrap();
        serial.ingest_batch(&reports, 1).unwrap();
        let mut sharded = Collector::new(plan.clone()).unwrap();
        sharded.ingest_batch(&reports, shards).unwrap();
        assert_same_state(&serial, &sharded, "auto batch")?;

        // Same stream through mechanism-tagged wire frames.
        let mut buf = BytesMut::new();
        for chunk in reports.chunks(batch_size) {
            Batch::tagged(chunk.to_vec(), plan.mechanism_tag()).encode(&mut buf);
        }
        let mut framed = Collector::new(plan.clone()).unwrap();
        let n = framed.ingest_stream_sharded(buf.freeze(), shards).unwrap();
        prop_assert_eq!(n, n_reports);
        assert_same_state(&serial, &framed, "auto framed stream")?;

        let config = MechanismConfig::default().with_approach(approach);
        let qs = RangeQuery::from_triples(&[(0, 0, 15), (1, 0, 7)], 16).unwrap();
        let ms = serial.finalize(config).unwrap();
        let mh = sharded.finalize(config).unwrap();
        prop_assert_eq!(
            ms.answer(&qs).to_bits(),
            mh.answer(&qs).to_bits(),
            "auto finalized estimates diverge at {} shards", shards
        );
    }

    /// The wide-framed mechanisms — Wheel as HDG's oracle, MSW on its SW
    /// substrate, and the Wheel/MSW cross — preserve the invariant:
    /// sharded ≡ batched ≡ serial, bit for bit, and the v3 wide wire
    /// framing round-trips through `ingest_stream_sharded` to the same
    /// state and bit-identical answers.
    #[test]
    fn wheel_and_msw_sharded_equal_serial(
        d in 2usize..5,
        eps in 0.3f64..2.0,
        n_reports in 1usize..200,
        shards in 1usize..9,
        batch_size in 1usize..64,
        combo in 0usize..3,
        seed in any::<u64>(),
    ) {
        let (oracle, approach) = [
            (OraclePolicy::Wheel, ApproachKind::Hdg),
            (OraclePolicy::Sw, ApproachKind::Msw),
            (OraclePolicy::Wheel, ApproachKind::Msw),
        ][combo];
        let plan = SessionPlan::with_mechanism(
            60_000, d, 16, eps, seed, oracle, approach,
        ).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x37EE);
        let reports = random_wide_reports(&plan, n_reports, &mut rng);

        let mut serial = Collector::new(plan.clone()).unwrap();
        serial.ingest_batch(&reports, 1).unwrap();
        let mut sharded = Collector::new(plan.clone()).unwrap();
        sharded.ingest_batch(&reports, shards).unwrap();
        assert_same_state(&serial, &sharded, "wide batch")?;

        // Same stream through mechanism-tagged *wide* wire frames.
        let mut buf = BytesMut::new();
        for chunk in reports.chunks(batch_size) {
            Batch::tagged(chunk.to_vec(), plan.mechanism_tag()).encode(&mut buf);
        }
        let mut framed = Collector::new(plan.clone()).unwrap();
        let n = framed.ingest_stream_sharded(buf.freeze(), shards).unwrap();
        prop_assert_eq!(n, n_reports);
        assert_same_state(&serial, &framed, "wide framed stream")?;

        let config = MechanismConfig::default()
            .with_approach(approach)
            .with_oracle(oracle);
        let qs = RangeQuery::from_triples(&[(0, 0, 15), (1, 0, 7)], 16).unwrap();
        let ms = serial.finalize(config).unwrap();
        let mh = sharded.finalize(config).unwrap();
        prop_assert_eq!(
            ms.answer(&qs).to_bits(),
            mh.answer(&qs).to_bits(),
            "wide finalized estimates diverge at {} shards", shards
        );
    }

    /// Splitting the same stream into different batch sizes (wire-framed)
    /// with different shard counts never changes the collector state.
    #[test]
    fn batch_splits_and_framing_are_state_invariant(
        d in 2usize..4,
        batch_size in 1usize..64,
        shards in 1usize..7,
        n_reports in 1usize..200,
        seed in any::<u64>(),
    ) {
        let plan = SessionPlan::new(50_000, d, 8, 1.0, seed).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let reports = random_reports(&plan, n_reports, &mut rng);

        let mut reference = Collector::new(plan.clone()).unwrap();
        reference.ingest_batch(&reports, 1).unwrap();

        let mut buf = BytesMut::new();
        for chunk in reports.chunks(batch_size) {
            Batch::new(chunk.to_vec()).encode(&mut buf);
        }
        let mut framed = Collector::new(plan).unwrap();
        let n = framed.ingest_stream_sharded(buf.freeze(), shards).unwrap();
        prop_assert_eq!(n, n_reports);
        assert_same_state(&reference, &framed, "framed stream")?;
    }
}
