//! The load-bearing invariant of the multi-tenant serving tier: a
//! registry of K tenants — distinct snapshots, mixed HDG/TDG approaches,
//! answering interleaved batches through per-tenant answer caches, with
//! epochs hot-swapped mid-workload — produces answers bit-identical to K
//! *independent single-tenant* uncached `QueryServer`s. Cached ≡ uncached
//! ≡ single-tenant, for any cache capacity (disabled, eviction-heavy
//! small, and all-fits large), any shard count, and any interleaving the
//! strategies generate (256 cases per property, the proptest default).

use privmdr_core::snapshot::ModelSnapshot;
use privmdr_core::{ApproachKind, EstimatorKind};
use privmdr_grid::guideline::Granularities;
use privmdr_grid::pairs::pair_count;
use privmdr_protocol::wire::{AnswerBatch, QueryBatch};
use privmdr_protocol::{
    encode_session_open, encode_session_route, QueryServer, ServedNode, SnapshotRegistry,
};
use privmdr_query::workload::WorkloadBuilder;
use privmdr_query::RangeQuery;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random but structurally valid snapshot over a random pow2 geometry
/// (the `serving_prop.rs` generator, extended with the approach): HDG
/// tenants carry 1-D grids, TDG tenants none, MSW tenants `d`
/// full-resolution marginals — the serving tier must keep every kind of
/// tenant separate and exact.
fn random_snapshot(approach: ApproachKind, d: usize, c_pow: u32, seed: u64) -> ModelSnapshot {
    let c = 1usize << c_pow;
    let mut rng = StdRng::seed_from_u64(seed);
    let (g1, g2) = match approach {
        // MSW snapshots are pinned to full-resolution marginals.
        ApproachKind::Msw => (c, 1),
        _ => (
            1usize << rng.random_range(0..=c_pow),
            1usize << rng.random_range(0..=c_pow),
        ),
    };
    let one_d = match approach {
        ApproachKind::Hdg | ApproachKind::Msw => (0..d)
            .map(|_| (0..g1).map(|_| rng.random_range(0.0..0.5)).collect())
            .collect(),
        ApproachKind::Tdg => Vec::new(),
    };
    let two_d = match approach {
        ApproachKind::Msw => Vec::new(),
        _ => (0..pair_count(d))
            .map(|_| (0..g2 * g2).map(|_| rng.random_range(0.0..0.5)).collect())
            .collect(),
    };
    ModelSnapshot::from_parts_for_approach(
        approach,
        d,
        c,
        Granularities { g1, g2 },
        EstimatorKind::WeightedUpdate,
        1e-7,
        50,
        1e-7,
        50,
        one_d,
        two_d,
    )
    .expect("constructed shape is valid")
}

/// Tenant `t`'s approach: rotating, so every multi-tenant case mixes HDG,
/// TDG, and MSW sessions.
fn approach_for(t: usize) -> ApproachKind {
    [ApproachKind::Hdg, ApproachKind::Tdg, ApproachKind::Msw][t % 3]
}

/// A mixed-λ workload covering 1-D lookups, 2-D lookups, and λ>2
/// estimation.
fn mixed_workload(d: usize, c: usize, seed: u64, per_lambda: usize) -> Vec<RangeQuery> {
    let wl = WorkloadBuilder::new(d, c, seed);
    let mut queries = Vec::new();
    for lambda in 1..=d.min(3) {
        queries.extend(wl.random(lambda, 0.6, per_lambda));
    }
    queries
}

proptest! {
    /// Registry-level equivalence: K tenants answer interleaved batch
    /// rounds through their caches; mid-workload every tenant hot-swaps
    /// to a second epoch. Every batch must match an independent uncached
    /// single-tenant server of whichever epoch was live, bit for bit —
    /// across cache capacities 0 (disabled), 3 (evicting constantly), and
    /// 4096 (everything fits), and across shard counts.
    #[test]
    fn interleaved_multi_tenant_equals_independent_single_tenant(
        tenants in 2usize..5,
        d in 2usize..4,
        c_pow in 2u32..4,
        cache_cap in prop_oneof![Just(0usize), Just(3usize), Just(4096usize)],
        shards in 1usize..5,
        per_lambda in 1usize..6,
        seed in any::<u64>(),
    ) {
        let epochs: Vec<(ModelSnapshot, ModelSnapshot)> = (0..tenants)
            .map(|t| {
                let approach = approach_for(t);
                let s = seed ^ ((t as u64 + 1) << 8);
                (
                    random_snapshot(approach, d, c_pow, s),
                    random_snapshot(approach, d, c_pow, s ^ 0xE9),
                )
            })
            .collect();
        let c = 1usize << c_pow;

        let registry = SnapshotRegistry::new(cache_cap);
        let mut references: Vec<QueryServer> = Vec::new();
        for (t, (first, _)) in epochs.iter().enumerate() {
            registry.publish(t as u64, first).unwrap();
            references.push(QueryServer::new(first).unwrap());
        }
        let workloads: Vec<Vec<RangeQuery>> = (0..tenants)
            .map(|t| mixed_workload(d, c, seed ^ (t as u64) ^ 0x51, per_lambda))
            .collect();

        // Rounds 0–1 on epoch one (cold then warm cache), swap, rounds
        // 2–3 on epoch two (cold-after-invalidation then warm) — batches
        // interleave across tenants within every round.
        for round in 0..4 {
            if round == 2 {
                for (t, (_, second)) in epochs.iter().enumerate() {
                    let receipt = registry.publish(t as u64, second).unwrap();
                    prop_assert!(receipt.swapped && !receipt.created);
                    prop_assert_eq!(receipt.version, 2);
                    references[t] = QueryServer::new(second).unwrap();
                }
            }
            for t in 0..tenants {
                let tenant = registry.get(t as u64).unwrap();
                let got = tenant.answer_cached(&workloads[t], shards);
                let want = references[t].answer_workload(&workloads[t], 1);
                prop_assert_eq!(got.len(), want.len());
                for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                    prop_assert_eq!(
                        g.to_bits(),
                        w.to_bits(),
                        "round {}, tenant {}, query {} ({}) diverges",
                        round, t, i, &workloads[t][i]
                    );
                }
            }
        }

        // With caching disabled every probe missed; with an all-fits cap
        // the warm rounds were pure hits.
        let totals = registry.cache_stats_total();
        let per_round: u64 = workloads.iter().map(|w| w.len() as u64).sum();
        if cache_cap == 0 {
            prop_assert_eq!(totals.hits + totals.misses, 0);
        } else if cache_cap == 4096 {
            prop_assert_eq!(totals.misses, 2 * per_round, "cold rounds 0 and 2 miss");
            prop_assert_eq!(totals.hits, 2 * per_round, "warm rounds 1 and 3 hit");
            prop_assert_eq!(totals.evictions, 0);
        }
    }

    /// Daemon-level equivalence: the same interleaved session stream —
    /// opens, routes, a hot-swap per tenant — expressed as `0x5E` wire
    /// frames and replayed through `ServedNode::serve_stream`, with every
    /// emitted `0xA7` answer frame decoded and compared bit-for-bit
    /// against independent single-tenant servers.
    #[test]
    fn served_stream_equals_independent_single_tenant(
        tenants in 2usize..4,
        d in 2usize..4,
        cache_cap in prop_oneof![Just(0usize), Just(64usize)],
        shards in 1usize..4,
        per_lambda in 1usize..5,
        seed in any::<u64>(),
    ) {
        let c_pow = 3u32;
        let c = 1usize << c_pow;
        let epochs: Vec<(ModelSnapshot, ModelSnapshot)> = (0..tenants)
            .map(|t| {
                let approach = approach_for(t);
                let s = seed ^ ((t as u64 + 1) << 16);
                (
                    random_snapshot(approach, d, c_pow, s),
                    random_snapshot(approach, d, c_pow, s ^ 0xA1),
                )
            })
            .collect();
        let workloads: Vec<Vec<RangeQuery>> = (0..tenants)
            .map(|t| mixed_workload(d, c, seed ^ (t as u64) ^ 0xB2, per_lambda))
            .collect();

        // Build the stream and, in lockstep, the expected answer per
        // route: open all, route all (cold), route all (warm), swap all,
        // route all again.
        let mut stream = bytes::BytesMut::new();
        let mut expected: Vec<(u64, Vec<f64>)> = Vec::new();
        for (t, (first, _)) in epochs.iter().enumerate() {
            encode_session_open(t as u64, first, &mut stream);
        }
        for pass in 0..3 {
            if pass == 2 {
                for (t, (_, second)) in epochs.iter().enumerate() {
                    encode_session_open(t as u64, second, &mut stream);
                }
            }
            for t in 0..tenants {
                let snap = if pass == 2 { &epochs[t].1 } else { &epochs[t].0 };
                encode_session_route(
                    t as u64,
                    &QueryBatch::new(c, workloads[t].clone()),
                    &mut stream,
                );
                expected.push((
                    t as u64,
                    QueryServer::new(snap).unwrap().answer_workload(&workloads[t], 1),
                ));
            }
        }

        let node = ServedNode::new(cache_cap, shards);
        let mut responses: Vec<(u64, Vec<f64>)> = Vec::new();
        let stats = node
            .serve_stream(stream.freeze(), |session, resp| {
                let answers = AnswerBatch::decode(&mut resp.clone()).unwrap().answers;
                responses.push((session, answers));
            })
            .unwrap();
        prop_assert_eq!(stats.opens, 2 * tenants as u64);
        prop_assert_eq!(stats.swaps, tenants as u64);
        prop_assert_eq!(responses.len(), expected.len());
        for (i, ((gs, got), (ws, want))) in responses.iter().zip(&expected).enumerate() {
            prop_assert_eq!(gs, ws, "route {} answered the wrong session", i);
            prop_assert_eq!(got.len(), want.len());
            for (j, (g, w)) in got.iter().zip(want).enumerate() {
                prop_assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "route {}, query {} diverges (session {})", i, j, gs
                );
            }
        }
    }
}
