//! Property tests for the wire format: both framings round-trip arbitrary
//! report contents, and no byte garbage — truncated, corrupted, or lying
//! about its length — can panic a decoder. Malformed input must always
//! surface as a `ProtocolError`.

use bytes::BytesMut;
use privmdr_protocol::wire::{Batch, BATCH_HEADER_LEN, REPORT_BODY_LEN};
use privmdr_protocol::{decode_any_stream, Report};
use proptest::prelude::*;

fn arb_report() -> impl Strategy<Value = Report> {
    (any::<u32>(), any::<u64>(), any::<u32>()).prop_map(|(group, seed, y)| Report {
        group,
        seed,
        y,
    })
}

proptest! {
    /// Wire encoding round-trips arbitrary report contents.
    #[test]
    fn report_roundtrip(group in any::<u32>(), seed in any::<u64>(), y in any::<u32>()) {
        let r = Report { group, seed, y };
        let bytes = r.to_bytes();
        let back = Report::decode(&mut bytes.clone()).unwrap();
        prop_assert_eq!(back, r);
    }

    /// Batch frames round-trip arbitrary report sets of any size, and the
    /// encoded length is exactly the documented header + bodies.
    #[test]
    fn batch_roundtrip(reports in prop::collection::vec(arb_report(), 0..64)) {
        let batch = Batch::new(reports);
        let bytes = batch.to_bytes();
        prop_assert_eq!(
            bytes.len(),
            BATCH_HEADER_LEN + batch.reports.len() * REPORT_BODY_LEN
        );
        let back = Batch::decode(&mut bytes.clone()).unwrap();
        prop_assert_eq!(back, batch);
    }

    /// Arbitrary byte garbage never panics the legacy stream decoder.
    #[test]
    fn report_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = Report::decode_stream(&bytes[..]);
    }

    /// Arbitrary byte garbage never panics the batch decoder or the
    /// framing-detecting stream decoder. A lying count prefix inside the
    /// garbage must be caught before any allocation happens.
    #[test]
    fn batch_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let _ = Batch::decode(&mut &bytes[..]);
        let _ = Batch::decode_stream(&bytes[..]);
        let _ = decode_any_stream(&bytes[..]);
    }

    /// Every strict prefix of a valid batch frame decodes to an error, not
    /// a panic and not a silently shortened batch.
    #[test]
    fn truncated_batch_errors(
        reports in prop::collection::vec(arb_report(), 1..32),
        cut_seed in any::<u64>(),
    ) {
        let bytes = Batch::new(reports).to_bytes();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(Batch::decode(&mut bytes.slice(..cut)).is_err());
    }

    /// Corrupting the tag or version byte of a batch frame is rejected.
    #[test]
    fn corrupted_batch_header_errors(
        reports in prop::collection::vec(arb_report(), 0..16),
        byte in any::<u8>(),
        in_tag in any::<bool>(),
    ) {
        let batch = Batch::new(reports);
        let mut bytes = BytesMut::from(&batch.to_bytes()[..]);
        let idx = usize::from(!in_tag);
        prop_assume!(bytes[idx] != byte);
        bytes[idx] = byte;
        prop_assert!(Batch::decode(&mut bytes.freeze()).is_err());
    }
}
