//! Property tests for the wire format: both framings round-trip arbitrary
//! report contents, and no byte garbage — truncated, corrupted, or lying
//! about its length — can panic a decoder. Malformed input must always
//! surface as a `ProtocolError`.

use bytes::{BufMut, BytesMut};
use privmdr_core::snapshot::ModelSnapshot;
use privmdr_core::EstimatorKind;
use privmdr_grid::guideline::Granularities;
use privmdr_grid::pairs::pair_count;
use privmdr_protocol::stream::{
    collector_state_encoded_len, collector_state_to_bytes, decode_collector_state,
    COLLECTOR_STATE_TAG, COLLECTOR_STATE_VERSION,
};
use privmdr_protocol::wire::{
    decode_snapshot, snapshot_encoded_len, snapshot_to_bytes, AnswerBatch, Batch, QueryBatch,
    BATCH_HEADER_LEN, REPORT_BODY_LEN, SNAPSHOT_HEADER_LEN,
};
use privmdr_protocol::{
    decode_any_stream, ApproachKind, Collector, MechanismTag, OraclePolicy, Report, SessionPlan,
};
use privmdr_query::RangeQuery;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_report() -> impl Strategy<Value = Report> {
    (any::<u32>(), any::<u64>(), any::<u32>()).prop_map(|(group, seed, y)| Report {
        group,
        seed,
        y: y as u64,
    })
}

/// Reports whose `y` spans the full u64 range (raw f64 bit patterns) —
/// only encodable through the wide (version 3) framing.
fn arb_wide_report() -> impl Strategy<Value = Report> {
    (any::<u32>(), any::<u64>(), any::<u64>()).prop_map(|(group, seed, y)| Report {
        group,
        seed,
        y,
    })
}

/// A structurally valid snapshot with seed-derived geometry and finite but
/// otherwise arbitrary frequencies (negative and huge values included —
/// the wire layer must carry them bit-exactly).
fn snapshot_from_seed(d: usize, c_pow: u32, seed: u64) -> ModelSnapshot {
    let c = 1usize << c_pow;
    let mut rng = StdRng::seed_from_u64(seed);
    let g1 = 1usize << rng.random_range(0..=c_pow);
    let g2 = 1usize << rng.random_range(0..=c_pow);
    let mut value = |_: usize| -> f64 { rng.random_range(-1e9..1e9) };
    let one_d = (0..d).map(|_| (0..g1).map(&mut value).collect()).collect();
    let two_d = (0..pair_count(d))
        .map(|_| (0..g2 * g2).map(&mut value).collect())
        .collect();
    ModelSnapshot::from_parts(
        d,
        c,
        Granularities { g1, g2 },
        if seed.is_multiple_of(2) {
            EstimatorKind::WeightedUpdate
        } else {
            EstimatorKind::MaxEntropy
        },
        rng.random_range(0.0..1.0),
        rng.random_range(0..1000),
        rng.random_range(0.0..1.0),
        rng.random_range(0..1000),
        one_d,
        two_d,
    )
    .expect("constructed shape is valid")
}

/// A collector with seed-derived mechanism and arbitrary (not necessarily
/// honest) ingested reports — the source material for `CollectorState`
/// frame properties.
fn collector_from_seed(d: usize, seed: u64) -> Collector {
    let mut rng = StdRng::seed_from_u64(seed);
    let oracle = [
        OraclePolicy::Olh,
        OraclePolicy::Grr,
        OraclePolicy::Auto,
        OraclePolicy::Wheel,
        OraclePolicy::Sw,
    ][rng.random_range(0..5usize)];
    let approach =
        [ApproachKind::Hdg, ApproachKind::Tdg, ApproachKind::Msw][rng.random_range(0..3usize)];
    let plan = SessionPlan::with_mechanism(50_000, d, 16, 1.0, seed, oracle, approach).unwrap();
    let reports: Vec<Report> = (0..rng.random_range(0..160usize))
        .map(|_| Report {
            group: rng.random_range(0..plan.group_count() as u32),
            seed: rng.random(),
            y: rng.random_range(0..64),
        })
        .collect();
    let mut collector = Collector::new(plan).unwrap();
    collector.ingest_batch(&reports, 1).unwrap();
    collector
}

fn assert_untouched(dst: &Collector, before: &Collector) -> Result<(), TestCaseError> {
    prop_assert_eq!(dst.report_count(), before.report_count());
    for g in 0..dst.plan().group_count() as u32 {
        prop_assert_eq!(dst.group_state(g).unwrap(), before.group_state(g).unwrap());
    }
    Ok(())
}

/// A batch of seed-derived valid queries over domain `c`.
fn query_batch_from_seed(c: usize, count: usize, seed: u64) -> QueryBatch {
    let mut rng = StdRng::seed_from_u64(seed);
    let queries = (0..count)
        .map(|_| {
            let lambda = rng.random_range(1..=4usize);
            let triples: Vec<(usize, usize, usize)> = (0..lambda)
                .map(|i| {
                    let (a, b) = (rng.random_range(0..c), rng.random_range(0..c));
                    (i * 7 + rng.random_range(0..3usize), a.min(b), a.max(b))
                })
                .collect();
            RangeQuery::from_triples(&triples, c).expect("distinct attrs, valid intervals")
        })
        .collect();
    QueryBatch::new(c, queries)
}

proptest! {
    /// Wire encoding round-trips arbitrary report contents.
    #[test]
    fn report_roundtrip(group in any::<u32>(), seed in any::<u64>(), y in any::<u32>()) {
        let r = Report { group, seed, y: y as u64 };
        let bytes = r.to_bytes();
        let back = Report::decode(&mut bytes.clone()).unwrap();
        prop_assert_eq!(back, r);
    }

    /// Wide (version 3) frames round-trip the full 64-bit `y` exactly, in
    /// both framings, for both float-carrying oracle discriminants.
    #[test]
    fn wide_report_roundtrip(
        reports in prop::collection::vec(arb_wide_report(), 0..32),
        use_sw in any::<bool>(),
    ) {
        let tag = MechanismTag {
            oracle: if use_sw { OraclePolicy::Sw } else { OraclePolicy::Wheel },
            approach: ApproachKind::Msw,
        };
        let batch = Batch::tagged(reports.clone(), tag);
        let back = Batch::decode(&mut batch.to_bytes().clone()).unwrap();
        prop_assert_eq!(&back, &batch);
        let mut buf = BytesMut::new();
        for r in &reports {
            r.encode_tagged(&tag, &mut buf);
        }
        let back = Report::decode_stream(buf.freeze()).unwrap();
        prop_assert_eq!(back, reports);
    }

    /// Batch frames round-trip arbitrary report sets of any size, and the
    /// encoded length is exactly the documented header + bodies.
    #[test]
    fn batch_roundtrip(reports in prop::collection::vec(arb_report(), 0..64)) {
        let batch = Batch::new(reports);
        let bytes = batch.to_bytes();
        prop_assert_eq!(
            bytes.len(),
            BATCH_HEADER_LEN + batch.reports.len() * REPORT_BODY_LEN
        );
        let back = Batch::decode(&mut bytes.clone()).unwrap();
        prop_assert_eq!(back, batch);
    }

    /// Arbitrary byte garbage never panics the legacy stream decoder.
    #[test]
    fn report_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = Report::decode_stream(&bytes[..]);
    }

    /// Arbitrary byte garbage never panics the batch decoder or the
    /// framing-detecting stream decoder. A lying count prefix inside the
    /// garbage must be caught before any allocation happens.
    #[test]
    fn batch_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let _ = Batch::decode(&mut &bytes[..]);
        let _ = Batch::decode_stream(&bytes[..]);
        let _ = decode_any_stream(&bytes[..]);
    }

    /// Every strict prefix of a valid batch frame decodes to an error, not
    /// a panic and not a silently shortened batch.
    #[test]
    fn truncated_batch_errors(
        reports in prop::collection::vec(arb_report(), 1..32),
        cut_seed in any::<u64>(),
    ) {
        let bytes = Batch::new(reports).to_bytes();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(Batch::decode(&mut bytes.slice(..cut)).is_err());
    }

    /// Corrupting the tag or version byte of a batch frame is rejected.
    #[test]
    fn corrupted_batch_header_errors(
        reports in prop::collection::vec(arb_report(), 0..16),
        byte in any::<u8>(),
        in_tag in any::<bool>(),
    ) {
        let batch = Batch::new(reports);
        let mut bytes = BytesMut::from(&batch.to_bytes()[..]);
        let idx = usize::from(!in_tag);
        prop_assume!(bytes[idx] != byte);
        bytes[idx] = byte;
        prop_assert!(Batch::decode(&mut bytes.freeze()).is_err());
    }

    /// Snapshot frames round-trip *exactly* — every frequency bit, the
    /// geometry, and the estimation settings — for arbitrary shapes.
    #[test]
    fn snapshot_roundtrip_exact(
        d in 2usize..6,
        c_pow in 1u32..7,
        seed in any::<u64>(),
    ) {
        let snap = snapshot_from_seed(d, c_pow, seed);
        let bytes = snapshot_to_bytes(&snap);
        prop_assert_eq!(bytes.len(), snapshot_encoded_len(&snap));
        let back = decode_snapshot(&mut bytes.clone()).unwrap();
        prop_assert_eq!(back, snap);
    }

    /// Every strict prefix of a valid snapshot frame errors — never a
    /// panic, never a silently truncated model.
    #[test]
    fn truncated_snapshot_errors(
        d in 2usize..5,
        c_pow in 1u32..6,
        seed in any::<u64>(),
        cut_seed in any::<u64>(),
    ) {
        let bytes = snapshot_to_bytes(&snapshot_from_seed(d, c_pow, seed));
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(decode_snapshot(&mut bytes.slice(..cut)).is_err());
    }

    /// Corrupting any single header byte of a snapshot frame either yields
    /// a structurally valid (but different) snapshot or an error — never a
    /// panic. Only the tag and version bytes are guaranteed to error: other
    /// header bytes (shape, estimator, settings) may land on a different
    /// but still-valid value, which decode rightly accepts.
    #[test]
    fn corrupted_snapshot_header_never_panics(
        seed in any::<u64>(),
        idx in 0usize..SNAPSHOT_HEADER_LEN,
        byte in any::<u8>(),
    ) {
        let mut bytes = BytesMut::from(&snapshot_to_bytes(&snapshot_from_seed(3, 4, seed))[..]);
        prop_assume!(bytes[idx] != byte);
        bytes[idx] = byte;
        let result = decode_snapshot(&mut bytes.freeze());
        if idx < 2 {
            prop_assert!(result.is_err(), "tag/version corruption must be rejected");
        }
    }

    /// Query batches round-trip exactly, and answers round-trip to the bit
    /// (including non-finite payloads — the frame is transport, not policy).
    #[test]
    fn query_and_answer_batches_roundtrip(
        c_pow in 1u32..7,
        count in 0usize..24,
        seed in any::<u64>(),
        answer_bits in prop::collection::vec(any::<u64>(), 0..48),
    ) {
        let qb = query_batch_from_seed(1usize << c_pow, count, seed);
        let bytes = qb.to_bytes();
        prop_assert_eq!(bytes.len(), qb.encoded_len());
        let back = QueryBatch::decode(&mut bytes.clone()).unwrap();
        prop_assert_eq!(back, qb);

        let ab = AnswerBatch::new(answer_bits.iter().map(|&b| f64::from_bits(b)).collect());
        let back = AnswerBatch::decode(&mut ab.to_bytes().clone()).unwrap();
        prop_assert_eq!(back.answers.len(), ab.answers.len());
        for (x, y) in back.answers.iter().zip(&ab.answers) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Arbitrary byte garbage never panics any of the serving-frame
    /// decoders; malformed shapes always surface as `ProtocolError`.
    #[test]
    fn serving_decoders_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = decode_snapshot(&mut &bytes[..]);
        let _ = QueryBatch::decode(&mut &bytes[..]);
        let _ = AnswerBatch::decode(&mut &bytes[..]);
    }

    /// A garbage buffer opening with a valid serving tag + version (the
    /// adversarial sweet spot: headers parse, payload lies) still never
    /// panics and never over-allocates its way to an abort.
    #[test]
    fn lying_serving_headers_error(
        tag_choice in 0usize..3,
        body in prop::collection::vec(any::<u8>(), 0..96),
    ) {
        let mut buf = BytesMut::new();
        buf.put_u8([0xC5u8, 0xD7, 0xA7][tag_choice]);
        buf.put_u8(1); // WIRE_VERSION
        buf.put_slice(&body);
        let bytes = buf.freeze();
        let _ = decode_snapshot(&mut bytes.clone());
        let _ = QueryBatch::decode(&mut bytes.clone());
        let _ = AnswerBatch::decode(&mut bytes.clone());
    }

    /// `CollectorState` frames round-trip *exactly*: the rebuilt plan and
    /// every group's raw counters are bit-identical to the source, so the
    /// wire boundary can never perturb a fan-in merge.
    #[test]
    fn collector_state_roundtrip_exact(d in 2usize..5, seed in any::<u64>()) {
        let collector = collector_from_seed(d, seed);
        let bytes = collector_state_to_bytes(&collector);
        prop_assert_eq!(bytes.len(), collector_state_encoded_len(&collector));
        let back = decode_collector_state(&mut bytes.clone()).unwrap();
        prop_assert_eq!(back.plan(), collector.plan());
        prop_assert_eq!(back.report_count(), collector.report_count());
        for g in 0..collector.plan().group_count() as u32 {
            prop_assert_eq!(back.group_state(g).unwrap(), collector.group_state(g).unwrap());
        }
    }

    /// Every strict prefix of a valid state frame errors — never a panic,
    /// never a silently shortened counter set — and a failed `merge_state`
    /// leaves the destination collector untouched.
    #[test]
    fn truncated_collector_state_errors_untouched(
        d in 2usize..5,
        seed in any::<u64>(),
        cut_seed in any::<u64>(),
    ) {
        let collector = collector_from_seed(d, seed);
        let bytes = collector_state_to_bytes(&collector);
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(decode_collector_state(&mut bytes.slice(..cut)).is_err());

        let mut dst = collector.clone();
        let before = dst.clone();
        prop_assert!(dst.merge_state(&mut bytes.slice(..cut)).is_err());
        assert_untouched(&dst, &before)?;
    }

    /// Arbitrary byte garbage never panics the state decoder; neither does
    /// a frame that opens with a valid tag + version but lies about its
    /// shape, group count, or counter lengths — the geometry is validated
    /// against the rebuilt plan before any counter vector is allocated.
    #[test]
    fn collector_state_decoder_never_panics(
        with_header in any::<bool>(),
        body in prop::collection::vec(any::<u8>(), 0..160),
    ) {
        let mut buf = BytesMut::new();
        if with_header {
            buf.put_u8(COLLECTOR_STATE_TAG);
            buf.put_u8(COLLECTOR_STATE_VERSION);
        }
        buf.put_slice(&body);
        let _ = decode_collector_state(&mut buf.freeze());
    }

    /// A state frame whose mechanism discriminant conflicts with the
    /// destination's plan — or whose plan geometry differs in any public
    /// parameter — is rejected with the destination untouched: the frame
    /// decodes into its *own* plan, and `merge` refuses mismatched plans
    /// before any counter moves.
    #[test]
    fn mismatched_collector_state_rejected_untouched(
        d in 2usize..5,
        seed in any::<u64>(),
        other_seed in any::<u64>(),
    ) {
        let src = collector_from_seed(d, seed);
        let mut dst = collector_from_seed(d, other_seed);
        prop_assume!(src.plan() != dst.plan());
        let before = dst.clone();
        prop_assert!(dst.merge_state(&mut collector_state_to_bytes(&src).clone()).is_err());
        assert_untouched(&dst, &before)?;

        // Corrupting the mechanism discriminant bytes of a frame aimed at a
        // matching destination must also reject (either as an unknown
        // discriminant or as a now-mismatched plan) — never panic, never
        // partially merge.
        let mut twin = Collector::new(src.plan().clone()).unwrap();
        let twin_before = twin.clone();
        let mut bytes = BytesMut::from(&collector_state_to_bytes(&src)[..]);
        bytes[2] = bytes[2].wrapping_add(1); // oracle discriminant
        prop_assert!(twin.merge_state(&mut bytes.freeze()).is_err());
        assert_untouched(&twin, &twin_before)?;
    }
}
