//! The bit-identity contract of the streaming layer (`protocol::stream`):
//! however a report stream is chopped into epochs, sharded across threads,
//! or split across collectors and fanned back in over the wire, the final
//! cumulative state — and therefore every estimate — is *exactly* the
//! one-shot `ingest_batch` collector's. Support counters are sums of
//! per-report `u64` increments, so all of these reorderings are integer
//! addition reassociations; these properties pin that argument down so no
//! refactor can silently weaken it to "approximately equal".

use privmdr_core::{ApproachKind, MechanismConfig};
use privmdr_protocol::stream::{collector_state_to_bytes, decode_collector_state};
use privmdr_protocol::{Collector, EpochCollector, OraclePolicy, Report, SessionPlan};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random reports with in-plan group ids but otherwise arbitrary contents
/// (`y` may fall outside the hashed domain — counters must stay exact
/// regardless, as in `sharding_prop.rs`).
fn random_reports(plan: &SessionPlan, n: usize, rng: &mut StdRng) -> Vec<Report> {
    (0..n)
        .map(|_| {
            // A third of the reports carry an `f64` bit pattern in `y` so
            // the wide oracles (Wheel/SW) see plausible report points; the
            // rest stay small integers. Either way the counters are pure
            // `u64` folds, so every oracle must stay exact on both.
            let y = if rng.random_range(0..3) == 0 {
                rng.random_range(-0.3f64..1.3).to_bits()
            } else {
                rng.random_range(0..64)
            };
            Report {
                group: rng.random_range(0..plan.group_count() as u32),
                seed: rng.random(),
                y,
            }
        })
        .collect()
}

/// Random cut points partitioning `n` reports into non-empty runs.
fn random_splits(n: usize, pieces: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut cuts: Vec<usize> = (0..pieces.min(n).saturating_sub(1))
        .map(|_| rng.random_range(1..n))
        .collect();
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

fn assert_same_state(a: &Collector, b: &Collector, what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.report_count(), b.report_count(), "{}: totals", what);
    for g in 0..a.plan().group_count() as u32 {
        let (sa, na) = a.group_state(g).unwrap();
        let (sb, nb) = b.group_state(g).unwrap();
        prop_assert_eq!(na, nb, "{}: group {} report count", what, g);
        prop_assert_eq!(sa, sb, "{}: group {} supports", what, g);
    }
    Ok(())
}

fn oracle_from_index(i: usize) -> OraclePolicy {
    [
        OraclePolicy::Olh,
        OraclePolicy::Grr,
        OraclePolicy::Auto,
        OraclePolicy::Wheel,
        OraclePolicy::Sw,
    ][i]
}

fn approach_from_index(i: usize) -> ApproachKind {
    [ApproachKind::Hdg, ApproachKind::Tdg, ApproachKind::Msw][i]
}

/// The ISSUE's shard grid: serial, small, prime, and saturating counts.
fn shard_from_index(i: usize) -> usize {
    [1usize, 2, 3, 7, 64][i]
}

proptest! {
    /// (a) Streamed ingestion with arbitrary epoch cut points produces a
    /// final cumulative state and snapshot bit-identical to one-shot
    /// `ingest_batch` over the same reports — for every oracle policy and
    /// the full shard grid. Intermediate cuts are themselves exact: the
    /// epoch-k snapshot equals a one-shot fit of the first k epochs.
    #[test]
    fn arbitrary_epoch_cuts_equal_one_shot(
        d in 2usize..5,
        eps in 0.3f64..3.0,
        n_reports in 1usize..240,
        pieces in 1usize..9,
        oracle_idx in 0usize..5,
        shard_idx in 0usize..5,
        approach_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let approach = approach_from_index(approach_idx);
        let plan = SessionPlan::with_mechanism(
            60_000, d, 16, eps, seed, oracle_from_index(oracle_idx), approach,
        ).unwrap();
        let shards = shard_from_index(shard_idx);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE90C);
        let reports = random_reports(&plan, n_reports, &mut rng);
        let cuts = random_splits(n_reports, pieces, &mut rng);

        let mut one_shot = Collector::new(plan.clone()).unwrap();
        one_shot.ingest_batch(&reports, 1).unwrap();

        let mut streaming = EpochCollector::new(plan.clone()).unwrap();
        let mut start = 0usize;
        for (k, &cut) in cuts.iter().enumerate() {
            streaming.ingest_batch(&reports[start..cut], shards).unwrap();
            let sealed = streaming.cut_epoch().unwrap();
            prop_assert_eq!(sealed.epoch, k + 1);
            prop_assert_eq!(sealed.epoch_reports, (cut - start) as u64);
            prop_assert_eq!(sealed.total_reports, cut as u64);
            // The epoch-k snapshot is the one-shot fit of the first k epochs.
            let mut prefix = Collector::new(plan.clone()).unwrap();
            prefix.ingest_batch(&reports[..cut], 1).unwrap();
            let config = MechanismConfig::default()
                .with_approach(plan.approach)
                .with_oracle(plan.oracle);
            prop_assert_eq!(sealed.snapshot, prefix.snapshot(config).unwrap());
            start = cut;
        }
        streaming.ingest_batch(&reports[start..], shards).unwrap();

        assert_same_state(&one_shot, &streaming.cumulative().unwrap(), "cumulative")?;
        let config = MechanismConfig::default()
            .with_approach(plan.approach)
            .with_oracle(plan.oracle);
        prop_assert_eq!(
            streaming.cumulative_snapshot().unwrap(),
            one_shot.snapshot(config).unwrap()
        );
    }

    /// (b) `merge` is commutative and associative on the collector state.
    #[test]
    fn merge_is_commutative_and_associative(
        d in 2usize..5,
        oracle_idx in 0usize..5,
        approach_idx in 0usize..3,
        na in 0usize..120,
        nb in 0usize..120,
        nc in 0usize..120,
        seed in any::<u64>(),
    ) {
        let plan = SessionPlan::with_mechanism(
            60_000, d, 16, 1.0, seed,
            oracle_from_index(oracle_idx), approach_from_index(approach_idx),
        ).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3E26);
        let build = |n: usize, rng: &mut StdRng| {
            let mut c = Collector::new(plan.clone()).unwrap();
            c.ingest_batch(&random_reports(&plan, n, rng), 1).unwrap();
            c
        };
        let (a, b, c) = (build(na, &mut rng), build(nb, &mut rng), build(nc, &mut rng));

        // a ⊕ b = b ⊕ a
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        assert_same_state(&ab, &ba, "commutativity")?;

        // (a ⊕ b) ⊕ c = a ⊕ (b ⊕ c)
        let mut ab_c = ab;
        ab_c.merge(&c).unwrap();
        let mut bc = b.clone();
        bc.merge(&c).unwrap();
        let mut a_bc = a.clone();
        a_bc.merge(&bc).unwrap();
        assert_same_state(&ab_c, &a_bc, "associativity")?;
    }

    /// (b) K-way split ≡ single collector: chopping a report stream into
    /// random pieces, ingesting each into its own collector (with its own
    /// shard count), and fanning the pieces back in — directly or through
    /// the `CollectorState` wire frame, in stream order or reversed —
    /// reproduces the single collector's state and snapshot bit for bit.
    #[test]
    fn k_way_split_merges_to_single_collector(
        d in 2usize..5,
        eps in 0.3f64..3.0,
        n_reports in 1usize..240,
        pieces in 1usize..8,
        oracle_idx in 0usize..5,
        shard_idx in 0usize..5,
        approach_idx in 0usize..3,
        reverse in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let plan = SessionPlan::with_mechanism(
            60_000, d, 16, eps, seed,
            oracle_from_index(oracle_idx), approach_from_index(approach_idx),
        ).unwrap();
        let shards = shard_from_index(shard_idx);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5917);
        let reports = random_reports(&plan, n_reports, &mut rng);
        let cuts = random_splits(n_reports, pieces, &mut rng);

        let mut single = Collector::new(plan.clone()).unwrap();
        single.ingest_batch(&reports, 1).unwrap();

        // Split into per-piece collectors.
        let mut splits = Vec::new();
        let mut start = 0usize;
        for &cut in cuts.iter().chain(std::iter::once(&n_reports)) {
            let mut piece = Collector::new(plan.clone()).unwrap();
            piece.ingest_batch(&reports[start..cut], shards).unwrap();
            splits.push(piece);
            start = cut;
        }
        if reverse {
            splits.reverse();
        }

        // Fan in directly…
        let mut merged = Collector::new(plan.clone()).unwrap();
        for piece in &splits {
            merged.merge(piece).unwrap();
        }
        assert_same_state(&single, &merged, "direct fan-in")?;

        // …and through the CollectorState wire frame.
        let mut wired = Collector::new(plan.clone()).unwrap();
        for piece in &splits {
            let frame = collector_state_to_bytes(piece);
            let decoded = decode_collector_state(&mut frame.clone()).unwrap();
            prop_assert_eq!(decoded.plan(), piece.plan());
            let n = wired.merge_state(&mut frame.clone()).unwrap();
            prop_assert_eq!(n, piece.report_count());
        }
        assert_same_state(&single, &wired, "wire fan-in")?;

        let config = MechanismConfig::default()
            .with_approach(plan.approach)
            .with_oracle(plan.oracle);
        prop_assert_eq!(
            wired.snapshot(config).unwrap(),
            single.snapshot(config).unwrap()
        );
    }
}
