//! The load-bearing invariant of the query-serving engine, mirroring
//! `sharding_prop.rs` on the read side: sharded workload answering is
//! *exactly* serial answering. For arbitrary snapshots (including grid
//! frequencies no honest collector would produce), arbitrary mixed-λ
//! workloads, and any shard count, the answer vector is bit-identical —
//! and slicing the same workload into different wire frames never changes
//! it either.

use privmdr_core::snapshot::ModelSnapshot;
use privmdr_core::EstimatorKind;
use privmdr_grid::guideline::Granularities;
use privmdr_grid::pairs::pair_count;
use privmdr_protocol::wire::{AnswerBatch, QueryBatch};
use privmdr_protocol::QueryServer;
use privmdr_query::workload::WorkloadBuilder;
use privmdr_query::RangeQuery;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random but structurally valid snapshot: arbitrary non-negative
/// frequencies (not necessarily normalized or consistent — Algorithm 1
/// must still answer deterministically) over a random pow2 geometry.
fn random_snapshot(d: usize, c_pow: u32, estimator: EstimatorKind, seed: u64) -> ModelSnapshot {
    let c = 1usize << c_pow;
    let mut rng = StdRng::seed_from_u64(seed);
    let g1 = 1usize << rng.random_range(0..=c_pow);
    let g2 = 1usize << rng.random_range(0..=c_pow);
    let one_d = (0..d)
        .map(|_| (0..g1).map(|_| rng.random_range(0.0..0.5)).collect())
        .collect();
    let two_d = (0..pair_count(d))
        .map(|_| (0..g2 * g2).map(|_| rng.random_range(0.0..0.5)).collect())
        .collect();
    ModelSnapshot::from_parts(
        d,
        c,
        Granularities { g1, g2 },
        estimator,
        1e-7,
        50,
        1e-7,
        50,
        one_d,
        two_d,
    )
    .expect("constructed shape is valid")
}

/// A mixed-λ workload covering 1-D lookups, 2-D lookups, and λ>2
/// estimation.
fn mixed_workload(d: usize, c: usize, seed: u64, per_lambda: usize) -> Vec<RangeQuery> {
    let wl = WorkloadBuilder::new(d, c, seed);
    let mut queries = Vec::new();
    for lambda in 1..=d.min(3) {
        queries.extend(wl.random(lambda, 0.6, per_lambda));
    }
    queries
}

proptest! {
    /// Sharded answering ≡ serial answering, bit for bit, for shard counts
    /// {1, 2, 3, 7, max} over one shared server (one shared set of
    /// eagerly built pair caches).
    #[test]
    fn sharded_answering_equals_serial(
        d in 2usize..5,
        c_pow in 2u32..5,
        max_entropy in any::<bool>(),
        per_lambda in 1usize..12,
        seed in any::<u64>(),
    ) {
        let estimator = if max_entropy {
            EstimatorKind::MaxEntropy
        } else {
            EstimatorKind::WeightedUpdate
        };
        let snap = random_snapshot(d, c_pow, estimator, seed);
        let server = QueryServer::new(&snap).unwrap();
        let queries = mixed_workload(d, snap.c, seed ^ 0x51, per_lambda);

        let serial = server.answer_workload(&queries, 1);
        prop_assert_eq!(serial.len(), queries.len());
        let max_shards = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        for shards in [2usize, 3, 7, max_shards] {
            let sharded = server.answer_workload(&queries, shards);
            prop_assert_eq!(serial.len(), sharded.len());
            for (i, (a, b)) in serial.iter().zip(&sharded).enumerate() {
                prop_assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "query {} diverges at {} shards", i, shards
                );
            }
        }
    }

    /// Framing invariance: slicing one workload into request frames of any
    /// batch size, served at any shard count, concatenates to the same
    /// answers as one serial in-process pass — and a fresh server (cold
    /// pair cache) agrees with a warmed one.
    #[test]
    fn frame_splits_and_shards_are_answer_invariant(
        d in 2usize..4,
        batch_size in 1usize..40,
        shards in 1usize..7,
        per_lambda in 1usize..10,
        seed in any::<u64>(),
    ) {
        let snap = random_snapshot(d, 3, EstimatorKind::WeightedUpdate, seed);
        let warm = QueryServer::new(&snap).unwrap();
        let queries = mixed_workload(d, snap.c, seed ^ 0xF1, per_lambda);
        let reference = warm.answer_workload(&queries, 1);

        let cold = QueryServer::new(&snap).unwrap();
        let mut served = Vec::with_capacity(queries.len());
        for chunk in queries.chunks(batch_size) {
            let request = QueryBatch::new(snap.c, chunk.to_vec()).to_bytes();
            let response = cold.serve_frame(&mut request.clone(), shards).unwrap();
            served.extend(AnswerBatch::decode(&mut response.clone()).unwrap().answers);
        }
        prop_assert_eq!(reference.len(), served.len());
        for (i, (a, b)) in reference.iter().zip(&served).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "query {} diverges", i);
        }
    }

    /// Plan invariance (ISSUE 10): the batch planner behind `answer_all` —
    /// pair-grouped rectangles, λ-grouped lane-parallel estimation —
    /// returns exactly what answering each query alone would, for random
    /// snapshots, both estimators, and any workload order. Batching is an
    /// execution strategy, never a semantic one.
    #[test]
    fn planned_batch_equals_per_query_answers(
        d in 2usize..5,
        c_pow in 2u32..5,
        max_entropy in any::<bool>(),
        per_lambda in 1usize..12,
        seed in any::<u64>(),
    ) {
        let estimator = if max_entropy {
            EstimatorKind::MaxEntropy
        } else {
            EstimatorKind::WeightedUpdate
        };
        let snap = random_snapshot(d, c_pow, estimator, seed);
        let server = QueryServer::new(&snap).unwrap();
        let queries = mixed_workload(d, snap.c, seed ^ 0xA7, per_lambda);

        // Per-query reference: one query per call bypasses the planner.
        let reference: Vec<f64> =
            queries.iter().map(|q| server.model().answer(q)).collect();
        let planned = server.answer_workload(&queries, 1);
        prop_assert_eq!(reference.len(), planned.len());
        for (i, (a, b)) in reference.iter().zip(&planned).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "query {} diverges", i);
        }
    }

    /// Reordering the workload permutes the answers with it: the planner's
    /// grouping must scatter every answer back to its own query slot.
    #[test]
    fn planned_answers_follow_their_queries_under_reorder(
        d in 2usize..4,
        per_lambda in 1usize..10,
        rot in 0usize..37,
        seed in any::<u64>(),
    ) {
        let snap = random_snapshot(d, 3, EstimatorKind::WeightedUpdate, seed);
        let server = QueryServer::new(&snap).unwrap();
        let queries = mixed_workload(d, snap.c, seed ^ 0xB3, per_lambda);
        let in_order = server.answer_workload(&queries, 1);

        let rot = rot % queries.len().max(1);
        let mut rotated = queries.clone();
        rotated.rotate_left(rot);
        let answers = server.answer_workload(&rotated, 1);
        for (i, a) in answers.iter().enumerate() {
            let orig = (i + rot) % queries.len();
            prop_assert_eq!(
                a.to_bits(),
                in_order[orig].to_bits(),
                "rotated query {} diverges from original {}", i, orig
            );
        }
    }
}
