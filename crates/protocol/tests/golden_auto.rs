//! Seeded golden regression for the `--oracle auto` protocol path: a fixed
//! end-to-end session (plan → clients → reports → sharded collector →
//! finalize) whose adaptive policy selects **GRR for the 2-D groups and
//! OLH for the 1-D groups** must reproduce these exact `f64` answers.
//!
//! This is the adaptive counterpart of `privmdr-core`'s
//! `golden_answers.rs`: everything downstream of the pinned report set is
//! deterministic arithmetic, so any refactor that disturbs the GRR
//! estimator, the per-group policy selection, the trait dispatch, or the
//! partitioned batch kernel shows up as a bit-level diff. If a change is
//! *supposed* to alter estimates, re-record the constants (the assert
//! message prints the observed value with full round-trip precision).

use privmdr_core::MechanismConfig;
use privmdr_data::DatasetSpec;
use privmdr_oracles::{OracleChoice, OraclePolicy};
use privmdr_protocol::{ApproachKind, ClientFactory, Collector, SessionPlan};
use privmdr_query::RangeQuery;
use privmdr_util::rng::derive_rng;

/// The pinned scenario: n=40_000 users, d=3, c=16, ε=1.0, Normal(ρ=0.8)
/// data at seed 24, client randomness derived from seed 7. At these
/// parameters the guideline picks (g1, g2) = (16, 2), so the paper's rule
/// (`c − 2 < 3eᵋ`, i.e. domain < ~10.15 at ε=1) sends the three 4-cell
/// 2-D groups to GRR and the three 16-cell 1-D groups to OLH.
const N: usize = 40_000;
const C: usize = 16;

fn fixed_queries() -> Vec<RangeQuery> {
    [
        &[(0usize, 0usize, 7usize)][..],
        &[(1, 2, 9)],
        &[(2, 10, 15)],
        &[(0, 0, 7), (1, 0, 7)],
        &[(0, 2, 13), (2, 3, 8)],
        &[(1, 4, 11), (2, 0, 15)],
        &[(0, 0, 15), (1, 0, 15)],
        &[(0, 8, 8), (2, 4, 4)],
        &[(0, 0, 7), (1, 0, 7), (2, 0, 7)],
        &[(0, 1, 14), (1, 3, 10), (2, 5, 12)],
    ]
    .iter()
    .map(|triples| RangeQuery::from_triples(triples, C).unwrap())
    .collect()
}

/// Recorded output of the pinned scenario (full round-trip precision),
/// identical in debug and release builds.
const GOLDEN: [f64; 10] = [
    0.4793604279787603,
    0.8032647056512563,
    0.16273930353724242,
    0.377042927689223,
    0.6553007123189819,
    0.9010661117855181,
    1.0,
    0.0027526219047463024,
    0.23248043478561542,
    0.6186042442396936,
];

#[test]
fn auto_oracle_session_answers_exact_golden_values() {
    let plan = SessionPlan::with_mechanism(N, 3, C, 1.0, 24, OraclePolicy::Auto, ApproachKind::Hdg)
        .unwrap();

    // The scenario only pins the adaptive path if the rule actually mixes
    // oracles: 1-D groups (domain 16) → OLH, 2-D groups (domain 4) → GRR.
    for group in 0..3u32 {
        assert_eq!(
            plan.group_oracle(group).unwrap().kind(),
            OracleChoice::Olh,
            "1-D group {group}"
        );
        assert_eq!(
            plan.group_oracle(group + 3).unwrap().kind(),
            OracleChoice::Grr,
            "2-D group {group}"
        );
    }

    let ds = DatasetSpec::Normal { rho: 0.8 }.generate(N, 3, C, 24);
    let factory = ClientFactory::new(&plan).unwrap();
    let mut rng = derive_rng(7, &[0x60]);
    let reports: Vec<_> = (0..N as u64)
        .map(|uid| {
            factory
                .client(uid)
                .report(ds.row(uid as usize), &mut rng)
                .unwrap()
        })
        .collect();

    let config = MechanismConfig::default().with_oracle(OraclePolicy::Auto);
    let queries = fixed_queries();
    assert_eq!(queries.len(), GOLDEN.len());
    // The golden values must hold for the serial AND the sharded engine —
    // the adaptive path rides the same sharded ≡ serial invariant.
    for shards in [1usize, 4] {
        let mut collector = Collector::new(plan.clone()).unwrap();
        collector.ingest_batch(&reports, shards).unwrap();
        let model = collector.finalize(config).unwrap();
        for (i, (q, &want)) in queries.iter().zip(GOLDEN.iter()).enumerate() {
            let got = model.answer(q);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "query {i} ({q}) at {shards} shard(s): got {got:?}, golden {want:?}"
            );
        }
    }
}
