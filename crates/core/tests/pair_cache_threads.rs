//! Thread-safety of the HDG answerer's shared response-matrix caches.
//!
//! The query server shards workloads across threads against *one* shared
//! model. The per-pair caches are built eagerly at model construction and
//! immutable afterwards (the answer path takes no lock), so the contract
//! this suite pins down is that concurrent answering over the shared
//! state is bit-identical to a serial pass on a fresh model, regardless
//! of thread count or query interleaving — and that a caught panic in one
//! query thread cannot corrupt or wedge the model for the others.

use privmdr_core::{Hdg, Mechanism};
use privmdr_data::DatasetSpec;
use privmdr_query::workload::WorkloadBuilder;
use privmdr_query::RangeQuery;

fn workload(d: usize, c: usize) -> Vec<RangeQuery> {
    let wl = WorkloadBuilder::new(d, c, 77);
    let mut queries = Vec::new();
    // 2-D queries across every attribute pair hammer the pair cache; 1-D
    // and 3-D queries mix in the other answer paths.
    queries.extend(wl.random(2, 0.4, 60));
    queries.extend(wl.random(1, 0.5, 10));
    queries.extend(wl.random(3, 0.6, 10));
    queries
}

#[test]
fn concurrent_answers_match_serial_bit_for_bit() {
    let (d, c) = (4usize, 32usize);
    let ds = DatasetSpec::Normal { rho: 0.7 }.generate(25_000, d, c, 13);
    let hdg = Hdg::default();

    // Serial reference on its own, independently constructed model.
    let serial_model = hdg.fit(&ds, 1.0, 9).unwrap();
    let queries = workload(d, c);
    let reference: Vec<f64> = serial_model.answer_all(&queries);

    // Shared model answered by many threads at once, repeated a few times
    // with different interleavings.
    for round in 0..3 {
        let shared = hdg.fit(&ds, 1.0, 9).unwrap();
        let threads = 8;
        let results: Vec<Vec<f64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let shared = &shared;
                    let queries = &queries;
                    scope.spawn(move || {
                        // Each thread starts at a different offset so the
                        // shared state is read in different orders.
                        let mut answers = vec![0.0; queries.len()];
                        for i in 0..queries.len() {
                            let idx = (i + t * 13) % queries.len();
                            answers[idx] = shared.answer(&queries[idx]);
                        }
                        answers
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (t, answers) in results.iter().enumerate() {
            assert_eq!(answers.len(), reference.len());
            for (i, (a, r)) in answers.iter().zip(&reference).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    r.to_bits(),
                    "round {round}, thread {t}, query {i} ({}) diverged",
                    queries[i]
                );
            }
        }
    }
}

#[test]
fn caught_panic_in_one_thread_does_not_wedge_the_model() {
    // A serving daemon catches per-request panics and keeps going; the
    // shared model must survive that. A query referencing an attribute the
    // model does not have panics inside the answer path (out-of-bounds pair
    // lookup) — after catching it, every other thread must still answer
    // the model's real workload bit-identically to a never-panicked run.
    let (d, c) = (3usize, 16usize);
    let ds = DatasetSpec::Normal { rho: 0.6 }.generate(8_000, d, c, 5);
    let hdg = Hdg::default();
    let queries = workload(d, c);
    let reference: Vec<f64> = hdg.fit(&ds, 1.0, 3).unwrap().answer_all(&queries);

    let shared = hdg.fit(&ds, 1.0, 3).unwrap();
    // `RangeQuery` validates intervals, not attribute indices — the model's
    // dimensionality is not known at construction time — so an
    // out-of-range attribute is exactly the malformed input a buggy router
    // could hand a tenant's model.
    let oob = RangeQuery::from_triples(&[(d + 3, 0, 1), (d + 4, 0, 1)], c).unwrap();
    std::thread::scope(|scope| {
        let panicker = scope.spawn(|| {
            let shared = &shared;
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                shared.answer(&oob);
            }));
            assert!(caught.is_err(), "out-of-range attribute should panic");
        });
        assert!(panicker.join().is_ok());
        // Threads running after the caught panic must keep answering
        // bit-identically: the answer path holds no lock a panic could
        // poison and mutates no shared state a panic could half-write.
        for _ in 0..4 {
            let shared = &shared;
            let queries = &queries;
            let reference = &reference;
            scope.spawn(move || {
                for (q, r) in queries.iter().zip(reference) {
                    assert_eq!(shared.answer(q).to_bits(), r.to_bits(), "query {q}");
                }
            });
        }
    });
}

#[test]
fn snapshot_restored_model_is_equally_thread_safe() {
    // The serving path restores models from snapshots; the restored
    // answerer shares the same cache machinery and must behave identically
    // under contention.
    let (d, c) = (3usize, 16usize);
    let ds = DatasetSpec::Ipums.generate(10_000, d, c, 21);
    let hdg = Hdg::default();
    let snap = hdg.snapshot(&ds, 1.0, 4).unwrap();
    let reference: Vec<f64> = snap.to_model().unwrap().answer_all(&workload(d, c));

    let shared = snap.to_model().unwrap();
    let queries = workload(d, c);
    std::thread::scope(|scope| {
        for _ in 0..6 {
            let shared = &shared;
            let queries = &queries;
            let reference = &reference;
            scope.spawn(move || {
                for (q, r) in queries.iter().zip(reference) {
                    assert_eq!(shared.answer(q).to_bits(), r.to_bits(), "query {q}");
                }
            });
        }
    });
}
