//! Bit-identity of the optimized Weighted-Update paths (ISSUE 10).
//!
//! [`weighted_update_reference`] is the textbook Algorithm 2: a filtered
//! scan over all `2^λ` z-entries per pair. Both production paths — the
//! scalar subcube enumeration behind [`weighted_update`] and the
//! lane-parallel [`weighted_update_batch`] kernel behind the batch query
//! planner — must reproduce it **bit for bit**, in answers and in sweep
//! counts, or the repo-wide determinism contract (golden suites, sharded
//! ≡ serial, replicas answering identically) silently breaks.
//!
//! The sweep here covers: λ from 2 through 8, every lane remainder of the
//! 8-wide blocks (batch sizes 1..=17), lanes that converge at different
//! sweep counts sharing one block, the `y == 0` skip path, and the
//! explicit portable/AVX2/AVX-512 kernel entry points (SIMD ones where
//! the CPU has them). Runs in both debug and release in CI.

use privmdr_core::estimation::{
    estimate_lambda_answer, weighted_update, weighted_update_batch, weighted_update_batch_portable,
    weighted_update_observed, weighted_update_reference, BatchEstimate, PairAnswer, EST_LANES,
};
#[cfg(target_arch = "x86_64")]
use privmdr_core::estimation::{weighted_update_batch_avx2, weighted_update_batch_avx512};

const THRESHOLD: f64 = 1e-9;
const MAX_ITERS: usize = 100;

/// Deterministic pseudo-random f64 in (0, 1) without pulling in an RNG:
/// splitmix-style avalanche of the call-site coordinates.
fn noise(a: u64, b: u64, c: u64) -> f64 {
    let mut x = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(c.wrapping_mul(0x94D0_49BB_1331_11EB));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// The `i < j` lexicographic pair-position list the planner uses.
fn all_pairs(lambda: usize) -> Vec<(usize, usize)> {
    (0..lambda)
        .flat_map(|i| ((i + 1)..lambda).map(move |j| (i, j)))
        .collect()
}

/// A varied batch of per-query pair answers for `n` queries at `lambda`:
/// mixes near-independent, strongly correlated, and tiny targets so
/// different queries converge after different sweep counts.
fn batch_inputs(lambda: usize, n: usize, salt: u64) -> Vec<f64> {
    let npairs = lambda * (lambda - 1) / 2;
    let mut fs = Vec::with_capacity(n * npairs);
    for q in 0..n {
        let scale = match q % 3 {
            0 => 1.0,
            1 => 0.1,
            _ => 0.6,
        };
        for p in 0..npairs {
            fs.push(scale * noise(salt, q as u64, p as u64));
        }
    }
    fs
}

fn to_pair_answers(pairs: &[(usize, usize)], fs: &[f64]) -> Vec<PairAnswer> {
    pairs
        .iter()
        .zip(fs)
        .map(|(&(i, j), &f)| PairAnswer { i, j, f })
        .collect()
}

/// Scalar sweep count for one query, via the observer.
fn scalar_sweeps(lambda: usize, pa: &[PairAnswer]) -> u64 {
    let mut sweeps = 0usize;
    let mut obs = |s: usize, _: f64| sweeps = s;
    let _ = weighted_update_observed(lambda, pa, THRESHOLD, MAX_ITERS, Some(&mut obs));
    sweeps as u64
}

#[test]
fn subcube_enumeration_matches_reference_bit_for_bit() {
    for lambda in 2..=8usize {
        let pairs = all_pairs(lambda);
        for salt in 0..4u64 {
            let fs = batch_inputs(lambda, 1, 1000 + salt);
            let pa = to_pair_answers(&pairs, &fs);
            let fast = weighted_update(lambda, &pa, THRESHOLD, MAX_ITERS);
            let slow = weighted_update_reference(lambda, &pa, THRESHOLD, MAX_ITERS);
            assert_eq!(fast.len(), slow.len());
            for (m, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "lambda {lambda} salt {salt} entry {m}: {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn subcube_enumeration_matches_reference_on_sparse_pair_sets() {
    // Not every pair need be present: the planner always sends the full
    // set, but the API accepts any subset (and repeats).
    let lambda = 5usize;
    let subsets: [&[(usize, usize)]; 3] = [
        &[(0, 4)],
        &[(0, 1), (2, 3), (0, 1)],
        &[(1, 3), (0, 2), (2, 4), (1, 2)],
    ];
    for (k, pairs) in subsets.iter().enumerate() {
        let fs: Vec<f64> = (0..pairs.len())
            .map(|p| noise(7, k as u64, p as u64))
            .collect();
        let pa = to_pair_answers(pairs, &fs);
        let fast = weighted_update(lambda, &pa, THRESHOLD, MAX_ITERS);
        let slow = weighted_update_reference(lambda, &pa, THRESHOLD, MAX_ITERS);
        for (a, b) in fast.iter().zip(&slow) {
            assert_eq!(a.to_bits(), b.to_bits(), "subset {k}");
        }
    }
}

/// Asserts one batch result equals running the scalar path per query, bit
/// for bit, including the sweep counts.
fn assert_batch_matches_scalar(
    lambda: usize,
    pairs: &[(usize, usize)],
    fs: &[f64],
    batch: &BatchEstimate,
    label: &str,
) {
    let npairs = pairs.len();
    let n = fs.len() / npairs;
    assert_eq!(batch.answers.len(), n, "{label}: answer count");
    assert_eq!(batch.sweeps.len(), n, "{label}: sweep count");
    for q in 0..n {
        let pa = to_pair_answers(pairs, &fs[q * npairs..(q + 1) * npairs]);
        let want = estimate_lambda_answer(lambda, &pa, THRESHOLD, MAX_ITERS);
        assert_eq!(
            batch.answers[q].to_bits(),
            want.to_bits(),
            "{label}: query {q}/{n} lambda {lambda}: {} vs {want}",
            batch.answers[q]
        );
        assert_eq!(
            batch.sweeps[q],
            scalar_sweeps(lambda, &pa),
            "{label}: query {q} sweep count"
        );
    }
}

#[test]
fn batch_kernel_matches_scalar_every_lane_remainder() {
    // Block sizes 1..=2*EST_LANES+1 hit every remainder of the 8-lane
    // blocks: a lone query, a partial block, exactly one block, one block
    // plus each partial tail, and two-plus blocks.
    for lambda in [3usize, 4, 6] {
        let pairs = all_pairs(lambda);
        for n in 1..=(2 * EST_LANES + 1) {
            let fs = batch_inputs(lambda, n, 40 + n as u64);
            let batch = weighted_update_batch(lambda, &pairs, &fs, THRESHOLD, MAX_ITERS);
            assert_batch_matches_scalar(lambda, &pairs, &fs, &batch, "dispatched");
        }
    }
}

#[test]
fn batch_kernel_matches_scalar_lambda_sweep() {
    for lambda in 2..=8usize {
        let pairs = all_pairs(lambda);
        let n = EST_LANES + 3;
        let fs = batch_inputs(lambda, n, 90 + lambda as u64);
        let batch = weighted_update_batch(lambda, &pairs, &fs, THRESHOLD, MAX_ITERS);
        assert_batch_matches_scalar(lambda, &pairs, &fs, &batch, "lambda sweep");
    }
}

#[test]
fn lanes_converging_at_different_sweeps_stay_frozen() {
    // One block mixing a hard (correlated, slow-converging) query with
    // near-trivial ones: the easy lanes freeze early and must not drift
    // while the hard lane keeps sweeping.
    let lambda = 4usize;
    let pairs = all_pairs(lambda);
    let npairs = pairs.len();
    let mut fs = vec![0.0f64; EST_LANES * npairs];
    for (q, row) in fs.chunks_exact_mut(npairs).enumerate() {
        match q % 3 {
            // Consistent independent targets: converges almost at once.
            0 => {
                let m = [0.5, 0.5, 0.5, 0.5];
                for (p, &(i, j)) in pairs.iter().enumerate() {
                    row[p] = m[i] * m[j];
                }
            }
            // Perfectly correlated: the inconsistent constraint set makes
            // Weighted Update grind toward the sweep cap.
            1 => row.fill(0.5),
            // Mildly noisy independent.
            _ => {
                for (p, &(i, j)) in pairs.iter().enumerate() {
                    row[p] = (0.3 + 0.1 * i as f64) * (0.3 + 0.1 * j as f64)
                        + 0.01 * noise(3, q as u64, p as u64);
                }
            }
        }
    }
    let batch = weighted_update_batch(lambda, &pairs, &fs, 1e-6, 200);
    let npairs = pairs.len();
    for q in 0..EST_LANES {
        let pa = to_pair_answers(&pairs, &fs[q * npairs..(q + 1) * npairs]);
        let want = {
            let z = weighted_update(lambda, &pa, 1e-6, 200);
            z[(1usize << lambda) - 1]
        };
        assert_eq!(batch.answers[q].to_bits(), want.to_bits(), "lane {q}");
        let mut sweeps = 0usize;
        let mut obs = |s: usize, _: f64| sweeps = s;
        let _ = weighted_update_observed(lambda, &pa, 1e-6, 200, Some(&mut obs));
        assert_eq!(batch.sweeps[q], sweeps as u64, "lane {q} sweeps");
    }
    // The mix really does exercise unequal freeze points.
    let min = batch.sweeps.iter().min().unwrap();
    let max = batch.sweeps.iter().max().unwrap();
    assert!(min < max, "sweep counts should differ: {:?}", batch.sweeps);
}

#[test]
fn zero_y_rows_are_skipped_like_the_scalar_path() {
    // All-zero targets drive every z-entry to 0 after sweep 1; sweep 2
    // then hits the y == 0 skip in every pair. The batch kernel must take
    // the same masked path. Mix zero and nonzero lanes in one block.
    let lambda = 3usize;
    let pairs = all_pairs(lambda);
    let npairs = pairs.len();
    let n = 6usize;
    let mut fs = batch_inputs(lambda, n, 77);
    for q in [0usize, 3, 5] {
        fs[q * npairs..(q + 1) * npairs].fill(0.0);
    }
    // A generous threshold of 0 never converges: both paths must still
    // terminate via max_iters with the zero rows skipping harmlessly.
    let batch = weighted_update_batch(lambda, &pairs, &fs, 0.0, 8);
    for q in 0..n {
        let pa = to_pair_answers(&pairs, &fs[q * npairs..(q + 1) * npairs]);
        let z = weighted_update(lambda, &pa, 0.0, 8);
        assert_eq!(
            batch.answers[q].to_bits(),
            z[(1usize << lambda) - 1].to_bits(),
            "query {q}"
        );
    }
}

#[test]
fn max_iters_zero_still_runs_one_sweep() {
    // The scalar loop clamps max_iters to at least 1; the batch kernel
    // must do the same.
    let lambda = 3usize;
    let pairs = all_pairs(lambda);
    let fs = batch_inputs(lambda, 3, 11);
    let batch = weighted_update_batch(lambda, &pairs, &fs, 1e-9, 0);
    assert_batch_matches_scalar_iters(lambda, &pairs, &fs, &batch, 0);
    assert!(batch.sweeps.iter().all(|&s| s == 1));
}

fn assert_batch_matches_scalar_iters(
    lambda: usize,
    pairs: &[(usize, usize)],
    fs: &[f64],
    batch: &BatchEstimate,
    max_iters: usize,
) {
    let npairs = pairs.len();
    for q in 0..fs.len() / npairs {
        let pa = to_pair_answers(pairs, &fs[q * npairs..(q + 1) * npairs]);
        let z = weighted_update(lambda, &pa, 1e-9, max_iters);
        assert_eq!(
            batch.answers[q].to_bits(),
            z[(1usize << lambda) - 1].to_bits(),
            "query {q}"
        );
    }
}

#[test]
fn portable_kernel_matches_scalar() {
    for lambda in [3usize, 5, 7] {
        let pairs = all_pairs(lambda);
        for n in [1usize, EST_LANES - 1, EST_LANES, EST_LANES + 5] {
            let fs = batch_inputs(lambda, n, 200 + n as u64);
            let batch = weighted_update_batch_portable(lambda, &pairs, &fs, THRESHOLD, MAX_ITERS);
            assert_batch_matches_scalar(lambda, &pairs, &fs, &batch, "portable");
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[test]
fn avx2_kernel_matches_portable_where_supported() {
    for lambda in [3usize, 5, 7] {
        let pairs = all_pairs(lambda);
        for n in [1usize, EST_LANES - 1, EST_LANES, EST_LANES + 5] {
            let fs = batch_inputs(lambda, n, 300 + n as u64);
            let Some(batch) = weighted_update_batch_avx2(lambda, &pairs, &fs, THRESHOLD, MAX_ITERS)
            else {
                eprintln!("skipping: CPU lacks AVX2");
                return;
            };
            assert_batch_matches_scalar(lambda, &pairs, &fs, &batch, "avx2");
            let portable =
                weighted_update_batch_portable(lambda, &pairs, &fs, THRESHOLD, MAX_ITERS);
            assert_eq!(batch, portable, "avx2 vs portable");
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[test]
fn avx512_kernel_matches_portable_where_supported() {
    for lambda in [3usize, 5, 7] {
        let pairs = all_pairs(lambda);
        for n in [1usize, EST_LANES - 1, EST_LANES, EST_LANES + 5] {
            let fs = batch_inputs(lambda, n, 400 + n as u64);
            let Some(batch) =
                weighted_update_batch_avx512(lambda, &pairs, &fs, THRESHOLD, MAX_ITERS)
            else {
                eprintln!("skipping: CPU lacks AVX-512F/DQ");
                return;
            };
            assert_batch_matches_scalar(lambda, &pairs, &fs, &batch, "avx512");
            let portable =
                weighted_update_batch_portable(lambda, &pairs, &fs, THRESHOLD, MAX_ITERS);
            assert_eq!(batch, portable, "avx512 vs portable");
        }
    }
}

#[test]
fn empty_batch_is_empty() {
    let batch = weighted_update_batch(3, &all_pairs(3), &[], THRESHOLD, MAX_ITERS);
    assert!(batch.answers.is_empty());
    assert!(batch.sweeps.is_empty());
}
