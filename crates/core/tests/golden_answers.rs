//! Seeded golden regression: a fixed HDG fit answering a fixed workload
//! must reproduce these exact `f64` values.
//!
//! Everything downstream of `fit` is deterministic arithmetic, so any
//! refactor that changes an estimate — a reordered post-processing step, a
//! "harmless" float re-association in Algorithm 1/2, a granularity-
//! guideline tweak — shows up here immediately as a bit-level diff rather
//! than as a silent accuracy drift that only a statistical suite might
//! catch. If a change is *supposed* to alter estimates, re-record the
//! constants (run with `--nocapture` on failure; the message prints the
//! observed value with full round-trip precision).

use privmdr_core::{Hdg, Mechanism};
use privmdr_data::DatasetSpec;
use privmdr_query::RangeQuery;

/// The pinned scenario: n=40_000 users, d=3 attributes, c=32, ε=1.0,
/// Normal(ρ=0.8) data at seed 24, fit at seed 7.
fn fixed_queries() -> Vec<RangeQuery> {
    let c = 32;
    [
        &[(0usize, 0usize, 15usize)][..],
        &[(1, 4, 11)],
        &[(2, 20, 31)],
        &[(0, 0, 15), (1, 0, 15)],
        &[(0, 3, 28), (2, 5, 17)],
        &[(1, 8, 23), (2, 0, 31)],
        &[(0, 0, 31), (1, 0, 31)],
        &[(0, 16, 16), (2, 8, 8)],
        &[(0, 0, 15), (1, 0, 15), (2, 0, 15)],
        &[(0, 2, 29), (1, 6, 21), (2, 10, 25)],
        &[(0, 0, 7), (1, 24, 31), (2, 12, 19)],
        &[(0, 0, 31), (1, 0, 31), (2, 0, 31)],
    ]
    .iter()
    .map(|triples| RangeQuery::from_triples(triples, c).unwrap())
    .collect()
}

/// Recorded output of the pinned scenario (full round-trip precision).
const GOLDEN: [f64; 12] = [
    0.48381620306990325,
    0.11102183141564242,
    0.1960832265127516,
    0.40846574831997107,
    0.6434636740817283,
    0.9281657903352096,
    1.0,
    0.0010788037701899011,
    0.23585598727668405,
    0.6356271400688915,
    1.4868407278953802e-5,
    0.7707811292069516,
];

#[test]
fn fixed_fit_answers_exact_golden_values() {
    let ds = DatasetSpec::Normal { rho: 0.8 }.generate(40_000, 3, 32, 24);
    let model = Hdg::default().fit(&ds, 1.0, 7).unwrap();
    let queries = fixed_queries();
    assert_eq!(queries.len(), GOLDEN.len());
    for (i, (q, &want)) in queries.iter().zip(GOLDEN.iter()).enumerate() {
        let got = model.answer(q);
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "query {i} ({q}): got {got:?}, golden {want:?}"
        );
    }
}
