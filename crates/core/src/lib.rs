//! Mechanisms for answering multi-dimensional range queries under LDP.
//!
//! This crate assembles the substrates (`privmdr-oracles`, `privmdr-grid`,
//! `privmdr-hierarchy`) into the seven mechanisms the paper evaluates:
//!
//! | Mechanism | Paper | Module |
//! |-----------|-------|--------|
//! | [`Uni`] — uniform guess benchmark | §5.1 | [`uni`] |
//! | [`Msw`] — Multiplied Square Wave | §3.5 | [`msw`] |
//! | [`Calm`] — 2-D marginals baseline | §3.2 | [`calm`] |
//! | [`HioMechanism`] — d-dim hierarchy | §3.3 | [`hio`] |
//! | [`Lhio`] — low-dimensional HIO | §3.4 | [`lhio`] |
//! | [`Tdg`] — Two-Dimensional Grids | §4 | [`tdg`] |
//! | [`Hdg`] — Hybrid-Dimensional Grids | §4 | [`hdg`] |
//!
//! All mechanisms implement [`Mechanism`]: `fit` consumes a dataset and a
//! privacy budget and returns a [`Model`] that answers [`RangeQuery`]s.
//! Higher-dimensional queries (λ > 2) are estimated from the associated
//! 2-D answers with Algorithm 2 ([`estimation`]).
//!
//! A finalized HDG fit can additionally be captured as a serializable
//! [`ModelSnapshot`] ([`snapshot`]) and rebuilt into a bit-identical
//! answerer without re-running the protocol — the artifact query-serving
//! deployments ship around (see `privmdr-protocol`).

pub mod calm;
pub mod config;
pub mod estimation;
pub mod hdg;
pub mod hio;
pub mod lhio;
pub mod msw;
pub mod pair_model;
pub mod snapshot;
pub mod tdg;
pub mod uni;

pub use calm::Calm;
pub use config::{ApproachKind, EstimatorKind, MechanismConfig};
pub use hdg::Hdg;
pub use hio::HioMechanism;
pub use lhio::Lhio;
pub use msw::Msw;
pub use snapshot::ModelSnapshot;
pub use tdg::Tdg;
pub use uni::Uni;

use privmdr_data::Dataset;
use privmdr_query::RangeQuery;

/// Errors surfaced when fitting a mechanism.
#[derive(Debug)]
pub enum MechanismError {
    /// Grid construction failed (bad granularity/domain).
    Grid(privmdr_grid::GridError),
    /// Oracle construction failed (bad epsilon/domain).
    Oracle(privmdr_oracles::OracleError),
    /// Hierarchy construction failed.
    Hierarchy(privmdr_hierarchy::HierarchyError),
    /// Dataset/parameter combination is unusable for this mechanism.
    Invalid(String),
}

impl std::fmt::Display for MechanismError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MechanismError::Grid(e) => write!(f, "grid: {e}"),
            MechanismError::Oracle(e) => write!(f, "oracle: {e}"),
            MechanismError::Hierarchy(e) => write!(f, "hierarchy: {e}"),
            MechanismError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for MechanismError {}

impl From<privmdr_grid::GridError> for MechanismError {
    fn from(e: privmdr_grid::GridError) -> Self {
        MechanismError::Grid(e)
    }
}

impl From<privmdr_oracles::OracleError> for MechanismError {
    fn from(e: privmdr_oracles::OracleError) -> Self {
        MechanismError::Oracle(e)
    }
}

impl From<privmdr_hierarchy::HierarchyError> for MechanismError {
    fn from(e: privmdr_hierarchy::HierarchyError) -> Self {
        MechanismError::Hierarchy(e)
    }
}

/// A snapshot of a model's estimator counters: how many queries were
/// answered per λ, and how many Weighted-Update sweeps (Algorithm 2
/// iterations) they cost in total. Serving benchmarks record this next to
/// queries/sec so throughput figures are comparable across workload
/// mixes — a λ=3-heavy workload legitimately runs orders of magnitude
/// more estimator work per query than a 1-D one.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EstimatorTelemetry {
    /// `(lambda, queries answered)` pairs, ascending λ, zero counts
    /// omitted.
    pub lambda_counts: Vec<(usize, u64)>,
    /// Total Weighted-Update sweeps executed across all λ ≥ 3 answers.
    pub wu_sweeps: u64,
}

/// A fitted mechanism: answers arbitrary range queries without further
/// access to raw data (everything private happened during `fit`).
pub trait Model: Send + Sync {
    /// Estimated fraction of users matching the query.
    fn answer(&self, query: &RangeQuery) -> f64;

    /// Answers a whole workload (hook for batch optimizations).
    fn answer_all(&self, queries: &[RangeQuery]) -> Vec<f64> {
        queries.iter().map(|q| self.answer(q)).collect()
    }

    /// Cumulative estimator telemetry since the model was built; `None`
    /// for models without a λ-estimation stage (e.g. MSW's closed-form
    /// product answers).
    fn estimator_telemetry(&self) -> Option<EstimatorTelemetry> {
        None
    }
}

/// An LDP mechanism for multi-dimensional range queries.
pub trait Mechanism {
    /// Short name matching the paper's figure legends.
    fn name(&self) -> &'static str;

    /// Runs the private collection protocol on `ds` at privacy budget
    /// `epsilon` and returns the fitted model. All randomness (grouping,
    /// perturbation) derives from `seed`.
    fn fit(&self, ds: &Dataset, epsilon: f64, seed: u64) -> Result<Box<dyn Model>, MechanismError>;
}
