//! TDG: Two-Dimensional Grids (paper §4).
//!
//! Phase 1 partitions users into `(d choose 2)` groups and lets each group
//! report its pair's cell in a `g2 × g2` grid through OLH; Phase 2 removes
//! negativity (Norm-Sub) and cross-grid inconsistency; Phase 3 answers 2-D
//! queries by summing fully-covered cells and assuming uniformity inside
//! partially-covered ones, and estimates λ > 2 queries with Algorithm 2.
//!
//! The uniformity assumption inside coarse cells is TDG's weakness — the
//! non-uniformity error HDG later removes with 1-D grids.

use crate::config::MechanismConfig;
use crate::pair_model::{PairAnswerer, Rect2d, SplitModel};
use crate::{Mechanism, MechanismError, Model};
use privmdr_data::Dataset;
use privmdr_grid::consistency::post_process;
use privmdr_grid::guideline::choose_tdg_granularity;
use privmdr_grid::pairs::{pair_index, pair_list};
use privmdr_grid::{Grid1d, Grid2d};
use privmdr_oracles::partition::partition_equal;
use privmdr_util::rng::derive_rng;

/// The TDG mechanism.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tdg {
    /// Shared configuration (granularity override, post-processing, mode).
    pub config: MechanismConfig,
}

impl Tdg {
    /// TDG with the given configuration.
    pub fn new(config: MechanismConfig) -> Self {
        Tdg { config }
    }

    /// The 2-D granularity TDG would pick for `(n, d, ε, c)`.
    pub fn granularity(&self, n: usize, d: usize, epsilon: f64, c: usize) -> usize {
        self.config
            .granularity_override
            .map(|g| g.g2)
            .unwrap_or_else(|| choose_tdg_granularity(n, d, epsilon, c, &self.config.guideline))
    }
}

struct TdgAnswerer {
    d: usize,
    c: usize,
    /// Noisy post-processed pair grids, [`pair_list`] order.
    grids: Vec<Grid2d>,
}

impl PairAnswerer for TdgAnswerer {
    fn domain(&self) -> usize {
        self.c
    }

    fn answer_2d(&self, (j, k): (usize, usize), rect: Rect2d) -> f64 {
        self.grids[pair_index(j, k, self.d)].answer_uniform(rect)
    }

    fn answer_2d_batch(&self, (j, k): (usize, usize), rects: &[Rect2d], out: &mut Vec<f64>) {
        // The batch planner guarantees one pair per call: resolve the grid
        // once for the whole rectangle group.
        let grid = &self.grids[pair_index(j, k, self.d)];
        out.extend(rects.iter().map(|&rect| grid.answer_uniform(rect)));
    }

    fn answer_1d(&self, attr: usize, (lo, hi): (usize, usize)) -> f64 {
        // Marginalize the first grid containing `attr`, then interpolate
        // uniformly within cells.
        let (pair, first) = crate::calm::first_pair_with(attr, self.d);
        let grid = &self.grids[pair];
        let marginal = grid.marginal(if first { 0 } else { 1 });
        Grid1d::from_freqs(attr, grid.granularity(), self.c, marginal)
            .expect("grid geometry already validated")
            .answer_uniform(lo, hi)
    }
}

/// Checks that `two_d` forms a complete TDG pair-grid set for `d`
/// attributes: one 2-D grid per pair in [`pair_list`] order, all over one
/// domain. Returns `c`.
pub(crate) fn validate_pair_grid_set(d: usize, two_d: &[Grid2d]) -> Result<usize, MechanismError> {
    if d < 2 {
        return Err(MechanismError::Invalid(
            "TDG needs at least 2 attributes".into(),
        ));
    }
    let expected = pair_list(d);
    let c = match two_d.first() {
        Some(g) => g.domain(),
        None => {
            return Err(MechanismError::Invalid(
                "TDG needs at least one 2-D grid".into(),
            ))
        }
    };
    if two_d.len() != expected.len()
        || two_d
            .iter()
            .zip(&expected)
            .any(|(g, &p)| g.attrs() != p || g.domain() != c)
    {
        return Err(MechanismError::Invalid(
            "2-D grids must cover all pairs in pair_list order over one domain".into(),
        ));
    }
    Ok(c)
}

impl Tdg {
    /// Builds a TDG model from externally collected raw pair grids (e.g. a
    /// deployment feeding reports through `privmdr-protocol`). Applies
    /// Phase-2 post-processing per the configuration, then wraps the
    /// answering machinery — the TDG counterpart of
    /// `Hdg::model_from_grids`.
    ///
    /// Requires one 2-D grid per pair in `pair_list` order over one domain.
    pub fn model_from_grids(
        &self,
        d: usize,
        two_d: Vec<Grid2d>,
    ) -> Result<Box<dyn Model>, MechanismError> {
        let two_d = self.post_process_pair_grids(d, two_d)?;
        self.model_from_processed_grids(d, two_d)
    }

    /// Validates a raw pair-grid set and runs Phase-2 post-processing on it
    /// (TDG has no 1-D grids, so only Norm-Sub/consistency over the pairs).
    pub(crate) fn post_process_pair_grids(
        &self,
        d: usize,
        mut two_d: Vec<Grid2d>,
    ) -> Result<Vec<Grid2d>, MechanismError> {
        validate_pair_grid_set(d, &two_d)?;
        let mut no_one_d: Vec<Option<Grid1d>> = (0..d).map(|_| None).collect();
        post_process(d, &mut no_one_d, &mut two_d, &self.config.post_process);
        Ok(two_d)
    }

    /// Builds a TDG model from pair grids that are **already**
    /// post-processed — the snapshot-restore path (`crate::snapshot`).
    /// Phase 2 is not idempotent, so restoring a finalized fit must skip
    /// it; this constructor wraps the answering machinery verbatim.
    pub fn model_from_processed_grids(
        &self,
        d: usize,
        two_d: Vec<Grid2d>,
    ) -> Result<Box<dyn Model>, MechanismError> {
        let c = validate_pair_grid_set(d, &two_d)?;
        Ok(Box::new(SplitModel::new(
            TdgAnswerer { d, c, grids: two_d },
            &self.config,
        )))
    }
}

/// Runs TDG Phase 1–2 and returns the post-processed pair grids.
///
/// Exposed separately (mirroring `fit_hdg_grids`) so the snapshot path can
/// capture the exact grids a fit would answer from.
pub fn fit_tdg_grids(
    ds: &Dataset,
    epsilon: f64,
    seed: u64,
    config: &MechanismConfig,
) -> Result<Vec<Grid2d>, MechanismError> {
    let (n, d, c) = (ds.len(), ds.dims(), ds.domain());
    if d < 2 {
        return Err(MechanismError::Invalid(
            "TDG needs at least 2 attributes".into(),
        ));
    }
    let tdg = Tdg::new(*config);
    let g2 = tdg.granularity(n, d, epsilon, c);
    let pairs = pair_list(d);
    let mut rng = derive_rng(seed, &[0x54_4447]); // "TDG"
    let groups = partition_equal(n, pairs.len(), &mut rng);

    let mut grids: Vec<Grid2d> = Vec::with_capacity(pairs.len());
    for (&pair, users) in pairs.iter().zip(&groups) {
        let values = ds.gather_pair(pair, users);
        grids.push(Grid2d::collect_with(
            pair,
            g2,
            c,
            &values,
            epsilon,
            config.oracle,
            config.sim_mode,
            &mut rng,
        )?);
    }

    let mut no_one_d: Vec<Option<Grid1d>> = (0..d).map(|_| None).collect();
    post_process(d, &mut no_one_d, &mut grids, &config.post_process);
    Ok(grids)
}

impl Mechanism for Tdg {
    fn name(&self) -> &'static str {
        "TDG"
    }

    fn fit(&self, ds: &Dataset, epsilon: f64, seed: u64) -> Result<Box<dyn Model>, MechanismError> {
        let (d, c) = (ds.dims(), ds.domain());
        let grids = fit_tdg_grids(ds, epsilon, seed, &self.config)?;
        Ok(Box::new(SplitModel::new(
            TdgAnswerer { d, c, grids },
            &self.config,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmdr_data::DatasetSpec;
    use privmdr_query::workload::{true_answers, WorkloadBuilder};
    use privmdr_query::RangeQuery;

    #[test]
    fn tdg_answers_2d_queries() {
        // At n = 400k the guideline picks g2 = 4; the remaining error is
        // dominated by the uniformity assumption on rho = 0.8 data — the
        // deficiency HDG was designed to remove (so the bar is moderate).
        let ds = DatasetSpec::Normal { rho: 0.8 }.generate(400_000, 4, 64, 17);
        let model = Tdg::default().fit(&ds, 1.0, 11).unwrap();
        let wl = WorkloadBuilder::new(4, 64, 12);
        let queries = wl.random(2, 0.5, 40);
        let truths = true_answers(&ds, &queries);
        let estimates = model.answer_all(&queries);
        let mae = privmdr_query::mae(&estimates, &truths);
        assert!(mae < 0.15, "MAE {mae}");
    }

    #[test]
    fn tdg_beats_uni_on_correlated_data() {
        use crate::uni::Uni;
        let ds = DatasetSpec::Normal { rho: 0.8 }.generate(100_000, 4, 64, 18);
        let wl = WorkloadBuilder::new(4, 64, 13);
        let queries = wl.random(2, 0.5, 50);
        let truths = true_answers(&ds, &queries);
        let tdg = Tdg::default().fit(&ds, 1.0, 12).unwrap();
        let uni = Uni.fit(&ds, 1.0, 12).unwrap();
        let tdg_mae = privmdr_query::mae(&tdg.answer_all(&queries), &truths);
        let uni_mae = privmdr_query::mae(&uni.answer_all(&queries), &truths);
        assert!(tdg_mae < uni_mae, "TDG {tdg_mae} vs Uni {uni_mae}");
    }

    #[test]
    fn granularity_override_is_respected() {
        let cfg = MechanismConfig::default().with_granularities(16, 8);
        let tdg = Tdg::new(cfg);
        assert_eq!(tdg.granularity(1_000_000, 6, 1.0, 64), 8);
        let default = Tdg::default();
        // Default follows the TDG guideline (g2 with all users on 2-D).
        assert_eq!(
            default.granularity(1_000_000, 6, 1.0, 64),
            choose_tdg_granularity(1_000_000, 6, 1.0, 64, &Default::default())
        );
    }

    #[test]
    fn lambda4_estimation_runs() {
        let ds = DatasetSpec::Ipums.generate(50_000, 5, 32, 19);
        let model = Tdg::default().fit(&ds, 1.0, 13).unwrap();
        let q = RangeQuery::from_triples(&[(0, 0, 15), (1, 8, 23), (2, 0, 15), (4, 16, 31)], 32)
            .unwrap();
        let est = model.answer(&q);
        assert!(est.is_finite() && (-0.1..=1.1).contains(&est), "est {est}");
    }
}
