//! HIO mechanism wrapper (paper §3.3).
//!
//! Thin [`Mechanism`] adapter over the `privmdr-hierarchy` HIO substrate:
//! queries are expanded to all `d` attributes (full-domain intervals for
//! unqueried ones) and answered directly from the d-dimensional hierarchy —
//! no Algorithm-2 estimation, no consistency (the paper's HIO has neither).

use crate::config::MechanismConfig;
use crate::{Mechanism, MechanismError, Model};
use privmdr_data::Dataset;
use privmdr_hierarchy::Hio;
use privmdr_query::RangeQuery;
use privmdr_util::rng::derive_rng;

/// The HIO baseline mechanism.
#[derive(Debug, Clone, Copy, Default)]
pub struct HioMechanism {
    /// Shared configuration; only `branching` is consulted (HIO always runs
    /// the exact per-user protocol — its levels cannot be materialized).
    pub config: MechanismConfig,
}

impl HioMechanism {
    /// HIO with the given configuration.
    pub fn new(config: MechanismConfig) -> Self {
        HioMechanism { config }
    }
}

struct HioModel {
    hio: Hio,
    c: usize,
    d: usize,
}

impl Model for HioModel {
    fn answer(&self, query: &RangeQuery) -> f64 {
        let intervals: Vec<(usize, usize)> = (0..self.d)
            .map(|t| query.interval_or_full(t, self.c))
            .collect();
        self.hio.answer(&intervals)
    }
}

impl Mechanism for HioMechanism {
    fn name(&self) -> &'static str {
        "HIO"
    }

    fn fit(&self, ds: &Dataset, epsilon: f64, seed: u64) -> Result<Box<dyn Model>, MechanismError> {
        let mut rng = derive_rng(seed, &[0x48_494f]); // "HIO"
        let hio = Hio::fit(
            ds.raw_rows(),
            ds.dims(),
            ds.domain(),
            self.config.branching,
            epsilon,
            &mut rng,
        )?;
        Ok(Box::new(HioModel {
            hio,
            c: ds.domain(),
            d: ds.dims(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmdr_data::DatasetSpec;

    #[test]
    fn hio_answers_small_scale() {
        let ds = DatasetSpec::Normal { rho: 0.8 }.generate(20_000, 2, 16, 3);
        let model = HioMechanism::default().fit(&ds, 2.0, 1).unwrap();
        let q = RangeQuery::from_triples(&[(0, 0, 7)], 16).unwrap();
        let truth = q.true_answer(&ds);
        let est = model.answer(&q);
        assert!((est - truth).abs() < 0.3, "est {est} truth {truth}");
    }

    #[test]
    fn hio_degrades_with_dimensions() {
        // With d = 4 and c = 16 there are 3^4 = 81 groups of ~120 users:
        // estimates exist but are noisy — the paper's core criticism.
        let ds = DatasetSpec::Normal { rho: 0.8 }.generate(10_000, 4, 16, 4);
        let model = HioMechanism::default().fit(&ds, 1.0, 2).unwrap();
        let q = RangeQuery::from_triples(&[(0, 0, 7), (3, 0, 7)], 16).unwrap();
        let est = model.answer(&q);
        assert!(est.is_finite());
    }
}
