//! Shared query-answering shell for pairwise mechanisms.
//!
//! CALM, LHIO, TDG and HDG all expose the same interface after fitting:
//! they can answer any 1-D or 2-D range query directly, and λ > 2 queries
//! are estimated from the `(λ choose 2)` associated 2-D answers (paper
//! §4.4). [`SplitModel`] implements that protocol once over anything that
//! provides the two primitive answers.

use crate::config::{EstimatorKind, MechanismConfig};
use crate::estimation::{estimate_lambda_answer, max_entropy, PairAnswer};
use crate::Model;
use privmdr_query::RangeQuery;

/// The two primitive answers a pairwise mechanism provides.
pub trait PairAnswerer: Send + Sync {
    /// Attribute domain size `c`.
    fn domain(&self) -> usize;

    /// Answer of the 2-D range query `rect` over the ordered pair `(j, k)`.
    fn answer_2d(&self, pair: (usize, usize), rect: ((usize, usize), (usize, usize))) -> f64;

    /// Answer of a 1-D range query on `attr`.
    fn answer_1d(&self, attr: usize, interval: (usize, usize)) -> f64;
}

/// [`Model`] implementation over any [`PairAnswerer`].
pub struct SplitModel<A> {
    answerer: A,
    estimator: EstimatorKind,
    est_threshold: f64,
    est_max_iters: usize,
}

impl<A: PairAnswerer> SplitModel<A> {
    /// Wraps a fitted pairwise answerer with the λ>2 estimation settings.
    pub fn new(answerer: A, cfg: &MechanismConfig) -> Self {
        SplitModel {
            answerer,
            estimator: cfg.estimator,
            est_threshold: cfg.est_threshold,
            est_max_iters: cfg.est_max_iters,
        }
    }

    /// Access to the wrapped answerer (tests, diagnostics).
    pub fn inner(&self) -> &A {
        &self.answerer
    }

    /// Collects the `(λ choose 2)` associated 2-D answers of `query`,
    /// clamped to `[0, 1]` as Weighted Update requires non-negative
    /// constraint targets.
    fn pair_answers(&self, query: &RangeQuery) -> Vec<PairAnswer> {
        let preds = query.predicates();
        let mut out = Vec::with_capacity(preds.len() * (preds.len() - 1) / 2);
        for i in 0..preds.len() {
            for j in (i + 1)..preds.len() {
                let (pi, pj) = (preds[i], preds[j]);
                let f = self
                    .answerer
                    .answer_2d((pi.attr, pj.attr), ((pi.lo, pi.hi), (pj.lo, pj.hi)))
                    .clamp(0.0, 1.0);
                out.push(PairAnswer { i, j, f });
            }
        }
        out
    }
}

impl<A: PairAnswerer> Model for SplitModel<A> {
    fn answer(&self, query: &RangeQuery) -> f64 {
        let preds = query.predicates();
        match preds.len() {
            1 => self
                .answerer
                .answer_1d(preds[0].attr, (preds[0].lo, preds[0].hi)),
            2 => self.answerer.answer_2d(
                (preds[0].attr, preds[1].attr),
                ((preds[0].lo, preds[0].hi), (preds[1].lo, preds[1].hi)),
            ),
            lambda => {
                let pairs = self.pair_answers(query);
                match self.estimator {
                    EstimatorKind::WeightedUpdate => estimate_lambda_answer(
                        lambda,
                        &pairs,
                        self.est_threshold,
                        self.est_max_iters,
                    ),
                    EstimatorKind::MaxEntropy => {
                        let one_d: Vec<f64> = preds
                            .iter()
                            .map(|p| {
                                self.answerer
                                    .answer_1d(p.attr, (p.lo, p.hi))
                                    .clamp(0.0, 1.0)
                            })
                            .collect();
                        let z = max_entropy(
                            lambda,
                            &pairs,
                            &one_d,
                            self.est_threshold,
                            self.est_max_iters,
                        );
                        z[(1usize << lambda) - 1]
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MechanismConfig;

    /// A noiseless answerer backed by an explicit product distribution.
    struct ProductAnswerer {
        c: usize,
        marginals: Vec<Vec<f64>>,
    }

    impl PairAnswerer for ProductAnswerer {
        fn domain(&self) -> usize {
            self.c
        }
        fn answer_2d(
            &self,
            (j, k): (usize, usize),
            ((lo_j, hi_j), (lo_k, hi_k)): ((usize, usize), (usize, usize)),
        ) -> f64 {
            let a: f64 = self.marginals[j][lo_j..=hi_j].iter().sum();
            let b: f64 = self.marginals[k][lo_k..=hi_k].iter().sum();
            a * b
        }
        fn answer_1d(&self, attr: usize, (lo, hi): (usize, usize)) -> f64 {
            self.marginals[attr][lo..=hi].iter().sum()
        }
    }

    fn model() -> SplitModel<ProductAnswerer> {
        let c = 8;
        let marginals = vec![vec![1.0 / 8.0; 8]; 4];
        SplitModel::new(
            ProductAnswerer { c, marginals },
            &MechanismConfig::default(),
        )
    }

    #[test]
    fn one_and_two_d_pass_through() {
        let m = model();
        let q = RangeQuery::from_triples(&[(0, 0, 3)], 8).unwrap();
        assert!((m.answer(&q) - 0.5).abs() < 1e-12);
        let q = RangeQuery::from_triples(&[(0, 0, 3), (2, 0, 1)], 8).unwrap();
        assert!((m.answer(&q) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn lambda_3_estimates_product() {
        let m = model();
        let q = RangeQuery::from_triples(&[(0, 0, 3), (1, 0, 3), (2, 0, 3)], 8).unwrap();
        let est = m.answer(&q);
        assert!((est - 0.125).abs() < 0.02, "est {est}");
    }

    #[test]
    fn max_entropy_estimator_also_works() {
        let cfg = MechanismConfig {
            estimator: EstimatorKind::MaxEntropy,
            ..MechanismConfig::default()
        };
        let c = 8;
        let marginals = vec![vec![1.0 / 8.0; 8]; 4];
        let m = SplitModel::new(ProductAnswerer { c, marginals }, &cfg);
        let q = RangeQuery::from_triples(&[(0, 0, 3), (1, 0, 3), (3, 0, 3)], 8).unwrap();
        let est = m.answer(&q);
        assert!((est - 0.125).abs() < 0.01, "est {est}");
    }

    #[test]
    fn answer_all_matches_answer() {
        let m = model();
        let qs = vec![
            RangeQuery::from_triples(&[(0, 0, 3)], 8).unwrap(),
            RangeQuery::from_triples(&[(0, 0, 3), (1, 4, 7)], 8).unwrap(),
        ];
        let batch = m.answer_all(&qs);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0], m.answer(&qs[0]));
        assert_eq!(batch[1], m.answer(&qs[1]));
    }
}
