//! Shared query-answering shell for pairwise mechanisms.
//!
//! CALM, LHIO, TDG and HDG all expose the same interface after fitting:
//! they can answer any 1-D or 2-D range query directly, and λ > 2 queries
//! are estimated from the `(λ choose 2)` associated 2-D answers (paper
//! §4.4). [`SplitModel`] implements that protocol once over anything that
//! provides the two primitive answers.

use crate::config::{EstimatorKind, MechanismConfig};
use crate::estimation::{max_entropy, weighted_update_batch, weighted_update_observed, PairAnswer};
use crate::{EstimatorTelemetry, Model};
use privmdr_query::RangeQuery;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// λ values above this collapse into the last telemetry bucket (queries
/// can in principle carry as many predicates as the model has attributes,
/// but the estimator itself caps at 20 — see `estimation`).
const TELEMETRY_LAMBDA_CAP: usize = 64;

/// A 2-D range rectangle: the two attributes' inclusive index intervals,
/// `((lo_j, hi_j), (lo_k, hi_k))`.
pub type Rect2d = ((usize, usize), (usize, usize));

/// The two primitive answers a pairwise mechanism provides.
pub trait PairAnswerer: Send + Sync {
    /// Attribute domain size `c`.
    fn domain(&self) -> usize;

    /// Answer of the 2-D range query `rect` over the ordered pair `(j, k)`.
    fn answer_2d(&self, pair: (usize, usize), rect: Rect2d) -> f64;

    /// Answers many rectangles over the same attribute pair at once (the
    /// batch planner groups requests per pair exactly so implementations
    /// can hoist the per-pair lookup — response matrix, prefix sums — out
    /// of the loop). Must equal mapping [`PairAnswerer::answer_2d`], which
    /// is the default.
    fn answer_2d_batch(&self, pair: (usize, usize), rects: &[Rect2d], out: &mut Vec<f64>) {
        out.extend(rects.iter().map(|&rect| self.answer_2d(pair, rect)));
    }

    /// Answer of a 1-D range query on `attr`.
    fn answer_1d(&self, attr: usize, interval: (usize, usize)) -> f64;
}

/// [`Model`] implementation over any [`PairAnswerer`].
pub struct SplitModel<A> {
    answerer: A,
    estimator: EstimatorKind,
    est_threshold: f64,
    est_max_iters: usize,
    /// Per-λ answered-query counters (relaxed atomics: counters only, no
    /// ordering dependencies) plus total Weighted-Update sweeps.
    lambda_counts: Vec<AtomicU64>,
    wu_sweeps: AtomicU64,
}

impl<A: PairAnswerer> SplitModel<A> {
    /// Wraps a fitted pairwise answerer with the λ>2 estimation settings.
    pub fn new(answerer: A, cfg: &MechanismConfig) -> Self {
        SplitModel {
            answerer,
            estimator: cfg.estimator,
            est_threshold: cfg.est_threshold,
            est_max_iters: cfg.est_max_iters,
            lambda_counts: std::iter::repeat_with(|| AtomicU64::new(0))
                .take(TELEMETRY_LAMBDA_CAP + 1)
                .collect(),
            wu_sweeps: AtomicU64::new(0),
        }
    }

    /// Records one answered query of the given λ.
    fn count_lambda(&self, lambda: usize) {
        self.lambda_counts[lambda.min(TELEMETRY_LAMBDA_CAP)].fetch_add(1, Ordering::Relaxed);
    }

    /// Access to the wrapped answerer (tests, diagnostics).
    pub fn inner(&self) -> &A {
        &self.answerer
    }

    /// Collects the `(λ choose 2)` associated 2-D answers of `query`,
    /// clamped to `[0, 1]` as Weighted Update requires non-negative
    /// constraint targets.
    fn pair_answers(&self, query: &RangeQuery) -> Vec<PairAnswer> {
        let preds = query.predicates();
        let mut out = Vec::with_capacity(preds.len() * (preds.len() - 1) / 2);
        for i in 0..preds.len() {
            for j in (i + 1)..preds.len() {
                let (pi, pj) = (preds[i], preds[j]);
                let f = self
                    .answerer
                    .answer_2d((pi.attr, pj.attr), ((pi.lo, pi.hi), (pj.lo, pj.hi)))
                    .clamp(0.0, 1.0);
                out.push(PairAnswer { i, j, f });
            }
        }
        out
    }
}

impl<A: PairAnswerer> Model for SplitModel<A> {
    fn answer(&self, query: &RangeQuery) -> f64 {
        let preds = query.predicates();
        self.count_lambda(preds.len());
        match preds.len() {
            1 => self
                .answerer
                .answer_1d(preds[0].attr, (preds[0].lo, preds[0].hi)),
            2 => self.answerer.answer_2d(
                (preds[0].attr, preds[1].attr),
                ((preds[0].lo, preds[0].hi), (preds[1].lo, preds[1].hi)),
            ),
            lambda => {
                let pairs = self.pair_answers(query);
                match self.estimator {
                    EstimatorKind::WeightedUpdate => {
                        let mut sweeps = 0usize;
                        let mut obs = |s: usize, _: f64| sweeps = s;
                        let z = weighted_update_observed(
                            lambda,
                            &pairs,
                            self.est_threshold,
                            self.est_max_iters,
                            Some(&mut obs),
                        );
                        self.wu_sweeps.fetch_add(sweeps as u64, Ordering::Relaxed);
                        z[(1usize << lambda) - 1]
                    }
                    EstimatorKind::MaxEntropy => {
                        let one_d: Vec<f64> = preds
                            .iter()
                            .map(|p| {
                                self.answerer
                                    .answer_1d(p.attr, (p.lo, p.hi))
                                    .clamp(0.0, 1.0)
                            })
                            .collect();
                        let z = max_entropy(
                            lambda,
                            &pairs,
                            &one_d,
                            self.est_threshold,
                            self.est_max_iters,
                        );
                        z[(1usize << lambda) - 1]
                    }
                }
            }
        }
    }

    /// The batch query planner (ISSUE 10 tentpole): answers a whole batch
    /// with the work regrouped by shape instead of query-by-query.
    ///
    /// 1. Every needed 2-D rectangle — the λ=2 query itself, or the
    ///    `(λ choose 2)` associated rectangles of a λ≥3 query — is bucketed
    ///    by attribute pair and answered through
    ///    [`PairAnswerer::answer_2d_batch`], so per-pair state (response
    ///    matrix, prefix sums) is fetched once per pair instead of once
    ///    per rectangle.
    /// 2. λ≥3 Weighted-Update queries are grouped by λ and fed to the
    ///    lane-parallel [`weighted_update_batch`] kernel, up to
    ///    `EST_LANES` queries per SIMD block.
    /// 3. Answers scatter back to their original batch positions.
    ///
    /// Every rectangle gets the same arguments and every estimator run
    /// the same clamped inputs as the per-query path, and the batch
    /// kernel is bit-identical to the scalar estimator, so this returns
    /// exactly what mapping [`Model::answer`] would — pinned down by
    /// `serving_prop.rs` (plan invariance) and the golden suites.
    fn answer_all(&self, queries: &[RangeQuery]) -> Vec<f64> {
        if queries.len() < 2 {
            return queries.iter().map(|q| self.answer(q)).collect();
        }
        let mut answers = vec![0.0f64; queries.len()];
        // Phase 1: bucket every needed rectangle by attribute pair.
        // `pair_f[qi]` collects the query's raw 2-D answers in pair-slot
        // order (the i<j lexicographic order `pair_answers` uses).
        #[allow(clippy::type_complexity)]
        let mut by_pair: HashMap<(usize, usize), (Vec<Rect2d>, Vec<(usize, usize)>)> =
            HashMap::new();
        let mut pair_f: Vec<Vec<f64>> = Vec::with_capacity(queries.len());
        for (qi, query) in queries.iter().enumerate() {
            let preds = query.predicates();
            self.count_lambda(preds.len());
            if preds.len() == 1 {
                answers[qi] = self
                    .answerer
                    .answer_1d(preds[0].attr, (preds[0].lo, preds[0].hi));
                pair_f.push(Vec::new());
                continue;
            }
            let mut slot = 0usize;
            for i in 0..preds.len() {
                for j in (i + 1)..preds.len() {
                    let (pi, pj) = (preds[i], preds[j]);
                    let bucket = by_pair.entry((pi.attr, pj.attr)).or_default();
                    bucket.0.push(((pi.lo, pi.hi), (pj.lo, pj.hi)));
                    bucket.1.push((qi, slot));
                    slot += 1;
                }
            }
            pair_f.push(vec![0.0; slot]);
        }
        // Phase 2: answer the rectangles pair-grouped and scatter them
        // into each query's slot vector. Bucket order does not matter:
        // answering is pure and every value lands at its (qi, slot).
        let mut buf = Vec::new();
        for (&pair, (rects, targets)) in &by_pair {
            buf.clear();
            self.answerer.answer_2d_batch(pair, rects, &mut buf);
            debug_assert_eq!(buf.len(), rects.len());
            for (&(qi, slot), &f) in targets.iter().zip(&buf) {
                pair_f[qi][slot] = f;
            }
        }
        // Phase 3: λ=2 queries pass their rectangle through raw; λ≥3
        // queries group by λ for the lane-parallel estimator.
        let mut wu_groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for (qi, query) in queries.iter().enumerate() {
            let lambda = query.predicates().len();
            match lambda {
                1 => {}
                2 => answers[qi] = pair_f[qi][0],
                _ => match self.estimator {
                    EstimatorKind::WeightedUpdate => {
                        wu_groups.entry(lambda).or_default().push(qi);
                    }
                    EstimatorKind::MaxEntropy => {
                        let preds = query.predicates();
                        let pairs: Vec<PairAnswer> = (0..lambda)
                            .flat_map(|i| ((i + 1)..lambda).map(move |j| (i, j)))
                            .zip(&pair_f[qi])
                            .map(|((i, j), &f)| PairAnswer {
                                i,
                                j,
                                f: f.clamp(0.0, 1.0),
                            })
                            .collect();
                        let one_d: Vec<f64> = preds
                            .iter()
                            .map(|p| {
                                self.answerer
                                    .answer_1d(p.attr, (p.lo, p.hi))
                                    .clamp(0.0, 1.0)
                            })
                            .collect();
                        let z = max_entropy(
                            lambda,
                            &pairs,
                            &one_d,
                            self.est_threshold,
                            self.est_max_iters,
                        );
                        answers[qi] = z[(1usize << lambda) - 1];
                    }
                },
            }
        }
        for (&lambda, qis) in &wu_groups {
            let pairs: Vec<(usize, usize)> = (0..lambda)
                .flat_map(|i| ((i + 1)..lambda).map(move |j| (i, j)))
                .collect();
            let mut fs = Vec::with_capacity(qis.len() * pairs.len());
            for &qi in qis {
                fs.extend(pair_f[qi].iter().map(|f| f.clamp(0.0, 1.0)));
            }
            let batch =
                weighted_update_batch(lambda, &pairs, &fs, self.est_threshold, self.est_max_iters);
            for (k, &qi) in qis.iter().enumerate() {
                answers[qi] = batch.answers[k];
            }
            self.wu_sweeps
                .fetch_add(batch.sweeps.iter().sum::<u64>(), Ordering::Relaxed);
        }
        answers
    }

    fn estimator_telemetry(&self) -> Option<EstimatorTelemetry> {
        Some(EstimatorTelemetry {
            lambda_counts: self
                .lambda_counts
                .iter()
                .enumerate()
                .map(|(l, n)| (l, n.load(Ordering::Relaxed)))
                .filter(|&(_, n)| n > 0)
                .collect(),
            wu_sweeps: self.wu_sweeps.load(Ordering::Relaxed),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MechanismConfig;

    /// A noiseless answerer backed by an explicit product distribution.
    struct ProductAnswerer {
        c: usize,
        marginals: Vec<Vec<f64>>,
    }

    impl PairAnswerer for ProductAnswerer {
        fn domain(&self) -> usize {
            self.c
        }
        fn answer_2d(&self, (j, k): (usize, usize), ((lo_j, hi_j), (lo_k, hi_k)): Rect2d) -> f64 {
            let a: f64 = self.marginals[j][lo_j..=hi_j].iter().sum();
            let b: f64 = self.marginals[k][lo_k..=hi_k].iter().sum();
            a * b
        }
        fn answer_1d(&self, attr: usize, (lo, hi): (usize, usize)) -> f64 {
            self.marginals[attr][lo..=hi].iter().sum()
        }
    }

    fn model() -> SplitModel<ProductAnswerer> {
        let c = 8;
        let marginals = vec![vec![1.0 / 8.0; 8]; 4];
        SplitModel::new(
            ProductAnswerer { c, marginals },
            &MechanismConfig::default(),
        )
    }

    #[test]
    fn one_and_two_d_pass_through() {
        let m = model();
        let q = RangeQuery::from_triples(&[(0, 0, 3)], 8).unwrap();
        assert!((m.answer(&q) - 0.5).abs() < 1e-12);
        let q = RangeQuery::from_triples(&[(0, 0, 3), (2, 0, 1)], 8).unwrap();
        assert!((m.answer(&q) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn lambda_3_estimates_product() {
        let m = model();
        let q = RangeQuery::from_triples(&[(0, 0, 3), (1, 0, 3), (2, 0, 3)], 8).unwrap();
        let est = m.answer(&q);
        assert!((est - 0.125).abs() < 0.02, "est {est}");
    }

    #[test]
    fn max_entropy_estimator_also_works() {
        let cfg = MechanismConfig {
            estimator: EstimatorKind::MaxEntropy,
            ..MechanismConfig::default()
        };
        let c = 8;
        let marginals = vec![vec![1.0 / 8.0; 8]; 4];
        let m = SplitModel::new(ProductAnswerer { c, marginals }, &cfg);
        let q = RangeQuery::from_triples(&[(0, 0, 3), (1, 0, 3), (3, 0, 3)], 8).unwrap();
        let est = m.answer(&q);
        assert!((est - 0.125).abs() < 0.01, "est {est}");
    }

    #[test]
    fn answer_all_matches_answer() {
        let m = model();
        let qs = vec![
            RangeQuery::from_triples(&[(0, 0, 3)], 8).unwrap(),
            RangeQuery::from_triples(&[(0, 0, 3), (1, 4, 7)], 8).unwrap(),
        ];
        let batch = m.answer_all(&qs);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0], m.answer(&qs[0]));
        assert_eq!(batch[1], m.answer(&qs[1]));
    }
}
