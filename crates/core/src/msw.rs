//! MSW: Multiplied Square Wave (paper §3.5).
//!
//! Users are split into `d` groups; group `t` reports attribute `t` through
//! Square Wave, and the aggregator reconstructs each attribute's
//! distribution with EM. A multi-dimensional query is answered by the
//! *product* of the associated 1-D answers — an independence assumption
//! that solves the dimensionality and domain-size challenges but forfeits
//! all correlation information (the paper's challenge 1), which is exactly
//! the failure mode the correlated-dataset experiments expose.

use crate::config::MechanismConfig;
use crate::{Mechanism, MechanismError, Model};
use privmdr_data::Dataset;
use privmdr_oracles::partition::partition_equal;
use privmdr_oracles::sw::SquareWave;
use privmdr_query::RangeQuery;
use privmdr_util::rng::derive_rng;

/// The MSW baseline mechanism.
#[derive(Debug, Clone, Copy, Default)]
pub struct Msw {
    /// Shared configuration (simulation mode, SW smoothing).
    pub config: MechanismConfig,
}

impl Msw {
    /// MSW with the given configuration.
    pub fn new(config: MechanismConfig) -> Self {
        Msw { config }
    }

    /// Restores the product-of-marginals answerer from per-attribute
    /// distributions (length `c` each) — the snapshot-restore entry point.
    /// No re-estimation happens: answers are a pure function of the stored
    /// marginals, so restore is bit-identical to the fit that produced
    /// them.
    pub fn model_from_distributions(
        c: usize,
        dists: &[Vec<f64>],
    ) -> Result<Box<dyn Model>, MechanismError> {
        Ok(Box::new(MswModel::from_distributions(c, dists)?))
    }

    /// Runs the MSW protocol on a dataset and captures the per-attribute
    /// marginals as a snapshot instead of a live model (`fit` equals
    /// `snapshot` then `to_model`, bit for bit) — the MSW counterpart of
    /// [`crate::Hdg::snapshot`].
    pub fn snapshot(
        &self,
        ds: &Dataset,
        epsilon: f64,
        seed: u64,
    ) -> Result<crate::ModelSnapshot, MechanismError> {
        let dists = self.fit_marginals(ds, epsilon, seed)?;
        self.snapshot_from_marginals(ds.dims(), ds.domain(), dists)
    }

    /// Packages externally estimated per-attribute marginals (the protocol
    /// collector's output under the MSW approach) as a snapshot.
    pub fn snapshot_from_marginals(
        &self,
        d: usize,
        c: usize,
        dists: Vec<Vec<f64>>,
    ) -> Result<crate::ModelSnapshot, MechanismError> {
        use privmdr_grid::guideline::Granularities;
        crate::ModelSnapshot::from_parts_for_approach(
            crate::ApproachKind::Msw,
            d,
            c,
            // MSW marginals are full resolution; g2 = 1 is the smallest
            // legal pair granularity and is never consulted (no pair
            // grids exist).
            Granularities { g1: c, g2: 1 },
            self.config.estimator,
            self.config.rm_threshold,
            self.config.rm_max_iters,
            self.config.est_threshold,
            self.config.est_max_iters,
            dists,
            Vec::new(),
        )
    }

    /// The estimation core shared by [`Mechanism::fit`] and
    /// [`Msw::snapshot`]: partitions users over attributes and reconstructs
    /// each attribute's distribution through SW + EM.
    fn fit_marginals(
        &self,
        ds: &Dataset,
        epsilon: f64,
        seed: u64,
    ) -> Result<Vec<Vec<f64>>, MechanismError> {
        let (n, d, c) = (ds.len(), ds.dims(), ds.domain());
        let mut rng = derive_rng(seed, &[0x4d_5357]); // "MSW"
        let groups = partition_equal(n, d, &mut rng);
        let sw = SquareWave::new(epsilon, c)?.with_smoothing(self.config.sw_smoothing);
        let mut dists = Vec::with_capacity(d);
        for (t, users) in groups.iter().enumerate() {
            let values: Vec<u32> = ds
                .gather_attr(t, users)
                .into_iter()
                .map(u32::from)
                .collect();
            dists.push(sw.collect(&values, self.config.sim_mode, &mut rng));
        }
        Ok(dists)
    }
}

struct MswModel {
    /// Per-attribute cumulative distributions, length `c + 1` each
    /// (`cdf[v]` = mass of values `< v`), so any interval sum is O(1).
    cdfs: Vec<Vec<f64>>,
}

impl MswModel {
    /// Builds the prefix-sum model from per-attribute distributions of
    /// length `c` each. The CDF construction here is the single place
    /// distributions become answers, shared by `fit` and snapshot restore,
    /// so the two paths cannot drift apart bit-wise.
    fn from_distributions(c: usize, dists: &[Vec<f64>]) -> Result<Self, MechanismError> {
        if dists.is_empty() {
            return Err(MechanismError::Invalid(
                "MSW model needs at least one attribute distribution".into(),
            ));
        }
        if dists.iter().any(|d| d.len() != c) {
            return Err(MechanismError::Invalid(format!(
                "MSW marginals must have length {c}"
            )));
        }
        let mut cdfs = Vec::with_capacity(dists.len());
        for dist in dists {
            let mut cdf = Vec::with_capacity(c + 1);
            let mut acc = 0.0;
            cdf.push(0.0);
            for &f in dist {
                acc += f;
                cdf.push(acc);
            }
            cdfs.push(cdf);
        }
        Ok(MswModel { cdfs })
    }

    fn interval_mass(&self, attr: usize, lo: usize, hi: usize) -> f64 {
        self.cdfs[attr][hi + 1] - self.cdfs[attr][lo]
    }
}

impl Model for MswModel {
    fn answer(&self, query: &RangeQuery) -> f64 {
        query
            .predicates()
            .iter()
            .map(|p| self.interval_mass(p.attr, p.lo, p.hi))
            .product()
    }
}

impl Mechanism for Msw {
    fn name(&self) -> &'static str {
        "MSW"
    }

    fn fit(&self, ds: &Dataset, epsilon: f64, seed: u64) -> Result<Box<dyn Model>, MechanismError> {
        let dists = self.fit_marginals(ds, epsilon, seed)?;
        Ok(Box::new(MswModel::from_distributions(ds.domain(), &dists)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmdr_data::DatasetSpec;
    use privmdr_query::workload::WorkloadBuilder;

    #[test]
    fn msw_recovers_independent_data() {
        // Independent attributes (rho = 0): the product assumption is exact
        // and MSW should answer 2-D queries accurately at a generous budget.
        let ds = DatasetSpec::Normal { rho: 0.0 }.generate(60_000, 3, 16, 5);
        let model = Msw::default().fit(&ds, 2.0, 1).unwrap();
        let wl = WorkloadBuilder::new(3, 16, 2);
        let queries = wl.random(2, 0.5, 30);
        let truths = privmdr_query::workload::true_answers(&ds, &queries);
        let estimates = model.answer_all(&queries);
        let mae = privmdr_query::mae(&estimates, &truths);
        assert!(mae < 0.05, "MAE {mae} on independent data");
    }

    #[test]
    fn msw_misses_correlation() {
        // Strongly correlated attributes: the product assumption undershoots
        // diagonal mass. Compare a diagonal query's estimate vs truth.
        let ds = DatasetSpec::Normal { rho: 0.95 }.generate(60_000, 2, 16, 6);
        let model = Msw::default().fit(&ds, 2.0, 2).unwrap();
        let q = RangeQuery::from_triples(&[(0, 0, 7), (1, 0, 7)], 16).unwrap();
        let truth = q.true_answer(&ds);
        let est = model.answer(&q);
        // Truth ~0.5; independence predicts ~0.25.
        assert!(truth > 0.4, "sanity: diagonal truth {truth}");
        assert!(
            est < truth - 0.15,
            "MSW should undershoot: est {est} truth {truth}"
        );
    }

    #[test]
    fn lambda_one_answers_come_from_sw() {
        let ds = DatasetSpec::Bfive.generate(40_000, 2, 16, 7);
        let model = Msw::default().fit(&ds, 2.0, 3).unwrap();
        let q = RangeQuery::from_triples(&[(0, 0, 7)], 16).unwrap();
        let truth = q.true_answer(&ds);
        let est = model.answer(&q);
        assert!((est - truth).abs() < 0.1, "est {est} truth {truth}");
    }
}
