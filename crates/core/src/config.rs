//! Shared mechanism configuration.

use privmdr_grid::consistency::PostProcessConfig;
use privmdr_grid::guideline::{Granularities, GuidelineParams};
use privmdr_oracles::{OraclePolicy, SimMode};

/// Which grid-based estimation approach builds and answers the model —
/// the serving-side counterpart of picking [`crate::Tdg`] vs [`crate::Hdg`]
/// (paper §4): TDG keeps only the `(d choose 2)` 2-D grids and assumes
/// uniformity inside cells; HDG adds the `d` finer 1-D grids and fuses
/// them through Algorithm 1. The discriminant travels with snapshots and
/// wire frames so one serving engine can host either approach.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ApproachKind {
    /// Hybrid-Dimensional Grids — 1-D + 2-D grids (the paper's headline).
    #[default]
    Hdg,
    /// Two-Dimensional Grids — 2-D grids only.
    Tdg,
    /// Multi-dimensional Square Wave (§3.5 baseline) — `d` full-resolution
    /// 1-D marginals, multi-dimensional answers as products of 1-D range
    /// masses (attribute independence assumed).
    Msw,
}

impl ApproachKind {
    /// Short lowercase name (CLI/JSON/wire-facing).
    pub fn name(self) -> &'static str {
        match self {
            ApproachKind::Hdg => "hdg",
            ApproachKind::Tdg => "tdg",
            ApproachKind::Msw => "msw",
        }
    }

    /// Parses a CLI-style name (`hdg`, `tdg`, `msw`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "hdg" => Ok(ApproachKind::Hdg),
            "tdg" => Ok(ApproachKind::Tdg),
            "msw" => Ok(ApproachKind::Msw),
            other => Err(format!("unknown approach '{other}' (expected hdg|tdg|msw)")),
        }
    }
}

impl std::fmt::Display for ApproachKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which λ>2 estimator to use (paper §4.4 vs Appendix A.8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EstimatorKind {
    /// Algorithm 2: Weighted Update — the paper's choice (faster, equally
    /// accurate).
    #[default]
    WeightedUpdate,
    /// Maximum-entropy iterative scaling over all 2^λ cells with the four
    /// per-pair constraints (Appendix A.8).
    MaxEntropy,
}

/// Configuration shared by all mechanisms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MechanismConfig {
    /// Exact per-user protocol vs fast aggregate sampling (see
    /// `privmdr-oracles`). HIO always runs exact.
    pub sim_mode: SimMode,
    /// Phase-2 post-processing; disable for the ITDG/IHDG ablations.
    pub post_process: PostProcessConfig,
    /// Granularity guideline constants (α1, α2, σ).
    pub guideline: GuidelineParams,
    /// Overrides the guideline with fixed `(g1, g2)` (Figs. 7 and 16 sweep
    /// all combinations).
    pub granularity_override: Option<Granularities>,
    /// Hierarchy branching factor for HIO/LHIO (the paper sets `b = 4`).
    pub branching: usize,
    /// Convergence threshold of Algorithm 1 (response matrix); the paper
    /// uses any value below `1/n`.
    pub rm_threshold: f64,
    /// Sweep cap for Algorithm 1 (relevant when post-processing is off and
    /// inputs are inconsistent; the paper's Appendix A.1 uses 100).
    pub rm_max_iters: usize,
    /// Convergence threshold of Algorithm 2 (λ-D estimation).
    pub est_threshold: f64,
    /// Iteration cap for Algorithm 2.
    pub est_max_iters: usize,
    /// λ>2 estimator selection.
    pub estimator: EstimatorKind,
    /// EMS smoothing for the Square Wave EM reconstruction (MSW).
    pub sw_smoothing: bool,
    /// Which grid approach the collection finalizes into (TDG vs HDG).
    pub approach: ApproachKind,
    /// Frequency-oracle policy applied per report group (the paper's grids
    /// pin OLH; `Auto` applies the §2.2 variance rule per group domain).
    pub oracle: OraclePolicy,
}

impl Default for MechanismConfig {
    fn default() -> Self {
        MechanismConfig {
            sim_mode: SimMode::Fast,
            post_process: PostProcessConfig::default(),
            guideline: GuidelineParams::default(),
            granularity_override: None,
            branching: 4,
            rm_threshold: 1e-7,
            rm_max_iters: 100,
            est_threshold: 1e-7,
            est_max_iters: 100,
            estimator: EstimatorKind::WeightedUpdate,
            sw_smoothing: false,
            approach: ApproachKind::Hdg,
            oracle: OraclePolicy::Olh,
        }
    }
}

impl MechanismConfig {
    /// Exact per-user protocol variant (tests, small-scale validation).
    pub fn exact() -> Self {
        MechanismConfig {
            sim_mode: SimMode::Exact,
            ..Default::default()
        }
    }

    /// The ITDG/IHDG ablation: Phase 2 disabled (Appendix A.1). Algorithm
    /// 1/2 then run on possibly-negative inputs, capped at 100 iterations
    /// exactly as the appendix prescribes.
    pub fn without_post_process(mut self) -> Self {
        self.post_process.enabled = false;
        self
    }

    /// Fixes the grid granularities instead of using the guideline.
    pub fn with_granularities(mut self, g1: usize, g2: usize) -> Self {
        self.granularity_override = Some(Granularities { g1, g2 });
        self
    }

    /// Overrides the 1-D user fraction σ = n1/n (Fig. 15).
    pub fn with_sigma(mut self, sigma: f64) -> Self {
        self.guideline.sigma = Some(sigma);
        self
    }

    /// Selects the estimation approach the collection finalizes into.
    pub fn with_approach(mut self, approach: ApproachKind) -> Self {
        self.approach = approach;
        self
    }

    /// Selects the per-group frequency-oracle policy.
    pub fn with_oracle(mut self, oracle: OraclePolicy) -> Self {
        self.oracle = oracle;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let cfg = MechanismConfig::default();
        assert_eq!(cfg.branching, 4);
        assert_eq!(cfg.guideline.alpha1, 0.7);
        assert_eq!(cfg.guideline.alpha2, 0.03);
        assert!(cfg.post_process.enabled);
        assert_eq!(cfg.estimator, EstimatorKind::WeightedUpdate);
    }

    #[test]
    fn builders_compose() {
        let cfg = MechanismConfig::default()
            .without_post_process()
            .with_granularities(16, 4)
            .with_sigma(0.3);
        assert!(!cfg.post_process.enabled);
        assert_eq!(
            cfg.granularity_override,
            Some(Granularities { g1: 16, g2: 4 })
        );
        assert_eq!(cfg.guideline.sigma, Some(0.3));
    }
}
