//! Uni: the uniform-guess benchmark (paper §5.1).
//!
//! Uni ignores the data entirely and answers every query with the fraction
//! of the data space it selects. Any mechanism worse than Uni is adding
//! noise faster than information — the paper uses it as the floor all LDP
//! approaches must beat (HIO fails to at small ε, Fig. 1).

use crate::{Mechanism, MechanismError, Model};
use privmdr_data::Dataset;
use privmdr_query::RangeQuery;

/// The uniform-guess benchmark mechanism.
#[derive(Debug, Clone, Copy, Default)]
pub struct Uni;

struct UniModel {
    c: usize,
}

impl Model for UniModel {
    fn answer(&self, query: &RangeQuery) -> f64 {
        query.volume(self.c)
    }
}

impl Mechanism for Uni {
    fn name(&self) -> &'static str {
        "Uni"
    }

    fn fit(
        &self,
        ds: &Dataset,
        _epsilon: f64,
        _seed: u64,
    ) -> Result<Box<dyn Model>, MechanismError> {
        Ok(Box::new(UniModel { c: ds.domain() }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmdr_data::DatasetSpec;

    #[test]
    fn answers_are_query_volumes() {
        let ds = DatasetSpec::Ipums.generate(100, 3, 16, 1);
        let model = Uni.fit(&ds, 1.0, 0).unwrap();
        let q = RangeQuery::from_triples(&[(0, 0, 7), (2, 0, 3)], 16).unwrap();
        assert!((model.answer(&q) - 0.5 * 0.25).abs() < 1e-12);
        let q = RangeQuery::from_triples(&[(1, 0, 15)], 16).unwrap();
        assert!((model.answer(&q) - 1.0).abs() < 1e-12);
    }
}
