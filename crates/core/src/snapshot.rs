//! Serializable model snapshots — the fitted HDG as a reusable artifact.
//!
//! Fitting burns the privacy budget once; answering is pure post-processing
//! (paper §4.4). A [`ModelSnapshot`] captures everything a finalized fit
//! needs to answer queries — the post-processed 1-D/2-D grid frequencies,
//! the grid geometry, and the estimation settings — so a query-serving
//! process can rebuild the answerer without re-running the protocol (and
//! without access to any raw data). The snapshot is the unit that crosses
//! process boundaries: `privmdr-protocol` defines a tag-versioned wire
//! frame for it, and its `QueryServer` answers workloads against one.
//!
//! Restoring **must not** repeat Phase-2 post-processing: the captured
//! frequencies are already consistent, and Norm-Sub/consistency are not
//! idempotent in general, so a second pass would silently change answers.
//! [`ModelSnapshot::to_model`] therefore rebuilds the answerer directly
//! from the stored grids ([`Hdg::model_from_processed_grids`]); the
//! round-trip `fit → snapshot → to_model` is bit-identical to the fitted
//! model (pinned by the golden and serving-equivalence test suites).

use crate::config::{ApproachKind, EstimatorKind, MechanismConfig};
use crate::{Hdg, MechanismError, Model, Tdg};
use privmdr_data::Dataset;
use privmdr_grid::guideline::Granularities;
use privmdr_grid::pairs::{pair_count, pair_list};
use privmdr_grid::{Grid1d, Grid2d};

/// Largest attribute count a snapshot may declare. Generous for the paper's
/// regime (d ≤ 10) while keeping `d + (d choose 2)` grids bounded when the
/// shape arrives from an untrusted wire buffer.
pub const MAX_SNAPSHOT_DIMS: usize = 64;
/// Largest domain size a snapshot may declare. The paper evaluates c ≤ 1024;
/// the cap additionally bounds the `c × c` response matrices a restored
/// answerer builds per pair (4096² f64 = 128 MiB each). Restoration builds
/// all `(d choose 2)` of them eagerly, so an untrusted snapshot's full
/// allocation cost is paid — and bounded by these caps — up front at
/// restore time, before the model can serve a single query.
pub const MAX_SNAPSHOT_DOMAIN: usize = 4096;
/// Largest Algorithm-1/2 iteration cap a snapshot may declare. Restored
/// settings drive per-query loops, so a hostile frame must not be able to
/// buy unbounded CPU (the paper uses 100).
pub const MAX_SNAPSHOT_ITERS: usize = 100_000;

/// A finalized grid fit (HDG or TDG), detached from the data and the
/// protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSnapshot {
    /// Which estimation approach the fit used — and therefore which
    /// answerer [`ModelSnapshot::to_model`] restores. TDG snapshots carry
    /// no 1-D grids.
    pub approach: ApproachKind,
    /// Number of attributes.
    pub d: usize,
    /// Attribute domain size (power of two).
    pub c: usize,
    /// Grid granularities the fit used.
    pub granularities: Granularities,
    /// λ>2 estimator selection.
    pub estimator: EstimatorKind,
    /// Algorithm 1 convergence threshold.
    pub rm_threshold: f64,
    /// Algorithm 1 sweep cap.
    pub rm_max_iters: usize,
    /// Algorithm 2 convergence threshold.
    pub est_threshold: f64,
    /// Algorithm 2 iteration cap.
    pub est_max_iters: usize,
    /// Post-processed 1-D cell frequencies, one vector of length `g1` per
    /// attribute, in attribute order.
    pub one_d: Vec<Vec<f64>>,
    /// Post-processed 2-D cell frequencies, one row-major vector of length
    /// `g2²` per pair, in `pair_list` order.
    pub two_d: Vec<Vec<f64>>,
}

/// Validates a snapshot's declared shape without touching frequency data.
///
/// Exposed separately so a wire decoder can reject a lying header *before*
/// allocating payload buffers.
pub fn validate_shape(d: usize, c: usize, g1: usize, g2: usize) -> Result<(), MechanismError> {
    if !(2..=MAX_SNAPSHOT_DIMS).contains(&d) {
        return Err(MechanismError::Invalid(format!(
            "snapshot dimension {d} outside [2, {MAX_SNAPSHOT_DIMS}]"
        )));
    }
    if !privmdr_util::is_pow2(c) || !(2..=MAX_SNAPSHOT_DOMAIN).contains(&c) {
        return Err(MechanismError::Invalid(format!(
            "snapshot domain {c} must be a power of two in [2, {MAX_SNAPSHOT_DOMAIN}]"
        )));
    }
    for (name, g) in [("g1", g1), ("g2", g2)] {
        if !privmdr_util::is_pow2(g) || g < 1 || g > c {
            return Err(MechanismError::Invalid(format!(
                "snapshot granularity {name}={g} must be a power of two in [1, {c}]"
            )));
        }
    }
    Ok(())
}

impl ModelSnapshot {
    /// Assembles and validates an HDG snapshot from raw parts. Frequencies
    /// must be finite; shape must satisfy [`validate_shape`] with one
    /// `g1`-vector per attribute and one `g2²`-vector per pair. See
    /// [`ModelSnapshot::from_parts_for_approach`] for the
    /// approach-parameterized entry point.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        d: usize,
        c: usize,
        granularities: Granularities,
        estimator: EstimatorKind,
        rm_threshold: f64,
        rm_max_iters: usize,
        est_threshold: f64,
        est_max_iters: usize,
        one_d: Vec<Vec<f64>>,
        two_d: Vec<Vec<f64>>,
    ) -> Result<Self, MechanismError> {
        Self::from_parts_for_approach(
            ApproachKind::Hdg,
            d,
            c,
            granularities,
            estimator,
            rm_threshold,
            rm_max_iters,
            est_threshold,
            est_max_iters,
            one_d,
            two_d,
        )
    }

    /// Assembles and validates a snapshot from raw parts (the wire
    /// decoder's entry point). The expected grid set follows the approach:
    /// HDG snapshots carry one `g1`-vector per attribute, TDG snapshots
    /// carry none; both carry one `g2²`-vector per pair. MSW snapshots
    /// carry one full-resolution (`g1 = c`) marginal per attribute and no
    /// pair grids at all.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts_for_approach(
        approach: ApproachKind,
        d: usize,
        c: usize,
        granularities: Granularities,
        estimator: EstimatorKind,
        rm_threshold: f64,
        rm_max_iters: usize,
        est_threshold: f64,
        est_max_iters: usize,
        one_d: Vec<Vec<f64>>,
        two_d: Vec<Vec<f64>>,
    ) -> Result<Self, MechanismError> {
        validate_shape(d, c, granularities.g1, granularities.g2)?;
        let expected_one_d = match approach {
            ApproachKind::Hdg | ApproachKind::Msw => d,
            ApproachKind::Tdg => 0,
        };
        if approach == ApproachKind::Msw && granularities.g1 != c {
            return Err(MechanismError::Invalid(format!(
                "msw snapshot marginals must be full resolution (g1 = {c}, got {})",
                granularities.g1
            )));
        }
        if one_d.len() != expected_one_d || one_d.iter().any(|f| f.len() != granularities.g1) {
            return Err(MechanismError::Invalid(format!(
                "{approach} snapshot needs {expected_one_d} 1-D frequency vectors of length {}",
                granularities.g1
            )));
        }
        let m2 = match approach {
            ApproachKind::Hdg | ApproachKind::Tdg => pair_count(d),
            ApproachKind::Msw => 0,
        };
        let g2_cells = granularities.g2 * granularities.g2;
        if two_d.len() != m2 || two_d.iter().any(|f| f.len() != g2_cells) {
            return Err(MechanismError::Invalid(format!(
                "snapshot needs {m2} 2-D frequency vectors of length {g2_cells}"
            )));
        }
        if one_d
            .iter()
            .chain(two_d.iter())
            .flatten()
            .any(|f| !f.is_finite())
        {
            return Err(MechanismError::Invalid(
                "snapshot frequencies must be finite".into(),
            ));
        }
        // Estimation settings drive per-query loops in the restored
        // answerer, so they are attack surface too: a negative threshold
        // never satisfies a convergence test, which with a huge iteration
        // cap would turn the first query into a CPU bomb.
        if !(rm_threshold.is_finite()
            && rm_threshold >= 0.0
            && est_threshold.is_finite()
            && est_threshold >= 0.0)
        {
            return Err(MechanismError::Invalid(
                "snapshot thresholds must be finite and non-negative".into(),
            ));
        }
        if rm_max_iters > MAX_SNAPSHOT_ITERS || est_max_iters > MAX_SNAPSHOT_ITERS {
            return Err(MechanismError::Invalid(format!(
                "snapshot iteration caps must be at most {MAX_SNAPSHOT_ITERS}"
            )));
        }
        Ok(ModelSnapshot {
            approach,
            d,
            c,
            granularities,
            estimator,
            rm_threshold,
            rm_max_iters,
            est_threshold,
            est_max_iters,
            one_d,
            two_d,
        })
    }

    /// Captures finalized (already post-processed) grids under the given
    /// configuration. The grid set is validated the same way
    /// [`Hdg::model_from_grids`] validates it (attribute order, pair order,
    /// one shared domain) — a misordered set must fail here, not produce a
    /// snapshot that silently answers with swapped attributes.
    pub fn from_processed_grids(
        one_d: &[Grid1d],
        two_d: &[Grid2d],
        config: &MechanismConfig,
    ) -> Result<Self, MechanismError> {
        let (d, c) = crate::hdg::validate_grid_set(one_d, two_d)?;
        let granularities = Granularities {
            g1: one_d[0].granularity(),
            g2: two_d[0].granularity(),
        };
        ModelSnapshot::from_parts(
            d,
            c,
            granularities,
            config.estimator,
            config.rm_threshold,
            config.rm_max_iters,
            config.est_threshold,
            config.est_max_iters,
            one_d.iter().map(|g| g.freqs.clone()).collect(),
            two_d.iter().map(|g| g.freqs.clone()).collect(),
        )
    }

    /// Captures finalized (already post-processed) TDG pair grids under the
    /// given configuration — the TDG counterpart of
    /// [`ModelSnapshot::from_processed_grids`]. The set is validated the
    /// way `Tdg::model_from_processed_grids` validates it; TDG has no 1-D
    /// grids, so the snapshot's `g1` mirrors `g2` (it is never consulted).
    pub fn from_processed_pair_grids(
        d: usize,
        two_d: &[Grid2d],
        config: &MechanismConfig,
    ) -> Result<Self, MechanismError> {
        let c = crate::tdg::validate_pair_grid_set(d, two_d)?;
        let g2 = two_d[0].granularity();
        ModelSnapshot::from_parts_for_approach(
            ApproachKind::Tdg,
            d,
            c,
            Granularities { g1: g2, g2 },
            config.estimator,
            config.rm_threshold,
            config.rm_max_iters,
            config.est_threshold,
            config.est_max_iters,
            Vec::new(),
            two_d.iter().map(|g| g.freqs.clone()).collect(),
        )
    }

    /// A 64-bit digest of everything that determines the snapshot's
    /// answers: approach, geometry, estimation settings, and every stored
    /// frequency bit. Equal snapshots always digest equally, so the serving
    /// tier uses this as a cheap prefilter when deciding whether a
    /// republished epoch actually changed — but a matching digest is only a
    /// hint (64 bits can collide); callers needing certainty must follow up
    /// with full `==` on the snapshots.
    pub fn cache_fingerprint(&self) -> u64 {
        let mut h = 0x9e37_79b9_7f4a_7c15u64;
        let mut mix = |v: u64| h = privmdr_util::mix64(h ^ v);
        mix(match self.approach {
            ApproachKind::Hdg => 1,
            ApproachKind::Tdg => 2,
            ApproachKind::Msw => 3,
        });
        mix(self.d as u64);
        mix(self.c as u64);
        mix(self.granularities.g1 as u64);
        mix(self.granularities.g2 as u64);
        mix(match self.estimator {
            EstimatorKind::WeightedUpdate => 1,
            EstimatorKind::MaxEntropy => 2,
        });
        mix(self.rm_threshold.to_bits());
        mix(self.rm_max_iters as u64);
        mix(self.est_threshold.to_bits());
        mix(self.est_max_iters as u64);
        for freqs in self.one_d.iter().chain(self.two_d.iter()) {
            mix(freqs.len() as u64);
            for &f in freqs {
                mix(f.to_bits());
            }
        }
        h
    }

    /// The mechanism configuration a restored answerer runs under. Only the
    /// answering-relevant fields are meaningful: collection-side settings
    /// (sim mode, guideline, post-processing) played their role before the
    /// snapshot was taken.
    pub fn config(&self) -> MechanismConfig {
        MechanismConfig {
            approach: self.approach,
            granularity_override: Some(self.granularities),
            estimator: self.estimator,
            rm_threshold: self.rm_threshold,
            rm_max_iters: self.rm_max_iters,
            est_threshold: self.est_threshold,
            est_max_iters: self.est_max_iters,
            ..MechanismConfig::default()
        }
    }

    /// The stored grids, rebuilt with their geometry.
    pub fn grids(&self) -> Result<(Vec<Grid1d>, Vec<Grid2d>), MechanismError> {
        let Granularities { g1, g2 } = self.granularities;
        let one_d = self
            .one_d
            .iter()
            .enumerate()
            .map(|(attr, freqs)| Grid1d::from_freqs(attr, g1, self.c, freqs.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        let two_d = pair_list(self.d)
            .into_iter()
            .zip(&self.two_d)
            .map(|(pair, freqs)| Grid2d::from_freqs(pair, g2, self.c, freqs.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok((one_d, two_d))
    }

    /// Rebuilds the query answerer for the snapshot's approach. No
    /// protocol, no post-processing: the restored model is bit-identical
    /// to the one the fit produced.
    pub fn to_model(&self) -> Result<Box<dyn Model>, MechanismError> {
        match self.approach {
            ApproachKind::Hdg => {
                let (one_d, two_d) = self.grids()?;
                Hdg::new(self.config()).model_from_processed_grids(one_d, two_d)
            }
            ApproachKind::Tdg => {
                let (_, two_d) = self.grids()?;
                Tdg::new(self.config()).model_from_processed_grids(self.d, two_d)
            }
            ApproachKind::Msw => crate::Msw::model_from_distributions(self.c, &self.one_d),
        }
    }
}

impl Hdg {
    /// Runs HDG Phases 1–2 on a dataset and captures the result as a
    /// snapshot instead of a live model (`fit` = `snapshot` + `to_model`,
    /// bit for bit).
    pub fn snapshot(
        &self,
        ds: &Dataset,
        epsilon: f64,
        seed: u64,
    ) -> Result<ModelSnapshot, MechanismError> {
        let (one_d, two_d) = crate::hdg::fit_hdg_grids(ds, epsilon, seed, &self.config)?;
        ModelSnapshot::from_processed_grids(&one_d, &two_d, &self.config)
    }

    /// Post-processes externally collected raw grids (the protocol
    /// collector's output) and captures the result as a snapshot — the
    /// serving-side counterpart of [`Hdg::model_from_grids`].
    pub fn snapshot_from_grids(
        &self,
        one_d: Vec<Grid1d>,
        two_d: Vec<Grid2d>,
    ) -> Result<ModelSnapshot, MechanismError> {
        let (one_d, two_d) = self.post_process_grids(one_d, two_d)?;
        ModelSnapshot::from_processed_grids(&one_d, &two_d, &self.config)
    }
}

impl Tdg {
    /// Runs TDG Phases 1–2 on a dataset and captures the result as a
    /// snapshot instead of a live model (`fit` = `snapshot` + `to_model`,
    /// bit for bit) — the TDG counterpart of [`Hdg::snapshot`].
    pub fn snapshot(
        &self,
        ds: &Dataset,
        epsilon: f64,
        seed: u64,
    ) -> Result<ModelSnapshot, MechanismError> {
        let two_d = crate::tdg::fit_tdg_grids(ds, epsilon, seed, &self.config)?;
        ModelSnapshot::from_processed_pair_grids(ds.dims(), &two_d, &self.config)
    }

    /// Post-processes externally collected raw pair grids (the protocol
    /// collector's output under the TDG approach) and captures the result
    /// as a snapshot.
    pub fn snapshot_from_grids(
        &self,
        d: usize,
        two_d: Vec<Grid2d>,
    ) -> Result<ModelSnapshot, MechanismError> {
        let two_d = self.post_process_pair_grids(d, two_d)?;
        ModelSnapshot::from_processed_pair_grids(d, &two_d, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mechanism;
    use privmdr_data::DatasetSpec;
    use privmdr_query::workload::WorkloadBuilder;

    #[test]
    fn shape_validation_rejects_bad_geometry() {
        assert!(validate_shape(1, 16, 4, 4).is_err()); // d < 2
        assert!(validate_shape(65, 16, 4, 4).is_err()); // d too large
        assert!(validate_shape(3, 15, 4, 4).is_err()); // c not pow2
        assert!(validate_shape(3, 1 << 13, 4, 4).is_err()); // c beyond the cap
        assert!(validate_shape(3, 16, 3, 4).is_err()); // g1 not pow2
        assert!(validate_shape(3, 16, 4, 32).is_err()); // g2 > c
        assert!(validate_shape(3, 16, 4, 4).is_ok());
    }

    #[test]
    fn from_parts_rejects_wrong_vector_counts_and_nonfinite() {
        let g = Granularities { g1: 4, g2: 2 };
        let ok = ModelSnapshot::from_parts(
            2,
            16,
            g,
            EstimatorKind::WeightedUpdate,
            1e-7,
            100,
            1e-7,
            100,
            vec![vec![0.25; 4]; 2],
            vec![vec![0.25; 4]; 1],
        );
        assert!(ok.is_ok());
        let wrong_len = ModelSnapshot::from_parts(
            2,
            16,
            g,
            EstimatorKind::WeightedUpdate,
            1e-7,
            100,
            1e-7,
            100,
            vec![vec![0.25; 3]; 2],
            vec![vec![0.25; 4]; 1],
        );
        assert!(wrong_len.is_err());
        let nan = ModelSnapshot::from_parts(
            2,
            16,
            g,
            EstimatorKind::WeightedUpdate,
            1e-7,
            100,
            1e-7,
            100,
            vec![vec![f64::NAN; 4]; 2],
            vec![vec![0.25; 4]; 1],
        );
        assert!(nan.is_err());
    }

    #[test]
    fn from_parts_rejects_hostile_estimation_settings() {
        let g = Granularities { g1: 4, g2: 2 };
        let build = |rm_t: f64, rm_i: usize, est_t: f64, est_i: usize| {
            ModelSnapshot::from_parts(
                2,
                16,
                g,
                EstimatorKind::WeightedUpdate,
                rm_t,
                rm_i,
                est_t,
                est_i,
                vec![vec![0.25; 4]; 2],
                vec![vec![0.25; 4]; 1],
            )
        };
        // A negative threshold never converges; with a huge iteration cap
        // that is a per-query CPU bomb. Both must be rejected up front.
        assert!(build(-1.0, 100, 1e-7, 100).is_err());
        assert!(build(1e-7, 100, -1e-9, 100).is_err());
        assert!(build(1e-7, MAX_SNAPSHOT_ITERS + 1, 1e-7, 100).is_err());
        assert!(build(1e-7, 100, 1e-7, usize::MAX).is_err());
        assert!(build(0.0, MAX_SNAPSHOT_ITERS, 0.0, 0).is_ok());
    }

    #[test]
    fn from_processed_grids_rejects_misordered_grid_sets() {
        use privmdr_grid::{Grid1d, Grid2d};
        let cfg = MechanismConfig::default();
        let g1 = |attr| Grid1d::from_freqs(attr, 4, 16, vec![0.25; 4]).unwrap();
        let g2 = |pair| Grid2d::from_freqs(pair, 2, 16, vec![0.25; 4]).unwrap();
        // Well-formed set passes.
        let ok = ModelSnapshot::from_processed_grids(
            &[g1(0), g1(1)],
            std::slice::from_ref(&g2((0, 1))),
            &cfg,
        );
        assert!(ok.is_ok());
        // Swapped attribute order must fail, not silently capture grids
        // that `grids()` would reattach to the wrong attributes.
        let swapped = ModelSnapshot::from_processed_grids(
            &[g1(1), g1(0)],
            std::slice::from_ref(&g2((0, 1))),
            &cfg,
        );
        assert!(swapped.is_err());
        // A grid over a different domain must fail too.
        let other_domain = Grid1d::from_freqs(1, 4, 32, vec![0.25; 4]).unwrap();
        let mixed = ModelSnapshot::from_processed_grids(
            &[g1(0), other_domain],
            std::slice::from_ref(&g2((0, 1))),
            &cfg,
        );
        assert!(mixed.is_err());
    }

    #[test]
    fn tdg_snapshot_restores_bit_identical_model() {
        let ds = DatasetSpec::Normal { rho: 0.7 }.generate(30_000, 3, 32, 13);
        let tdg = crate::Tdg::new(MechanismConfig::default().with_approach(ApproachKind::Tdg));
        let fitted = tdg.fit(&ds, 1.0, 5).unwrap();
        let snap = tdg.snapshot(&ds, 1.0, 5).unwrap();
        assert_eq!(snap.approach, ApproachKind::Tdg);
        assert!(snap.one_d.is_empty());
        let restored = snap.to_model().unwrap();
        let wl = WorkloadBuilder::new(3, 32, 6);
        let mut queries = wl.random(2, 0.5, 20);
        queries.extend(wl.random(1, 0.3, 5));
        queries.extend(wl.random(3, 0.5, 5));
        for q in &queries {
            assert_eq!(
                fitted.answer(q).to_bits(),
                restored.answer(q).to_bits(),
                "TDG snapshot restore diverges on {q}"
            );
        }
    }

    #[test]
    fn from_parts_for_approach_enforces_grid_counts() {
        let g = Granularities { g1: 4, g2: 2 };
        let build = |approach, one_d: Vec<Vec<f64>>| {
            ModelSnapshot::from_parts_for_approach(
                approach,
                2,
                16,
                g,
                EstimatorKind::WeightedUpdate,
                1e-7,
                100,
                1e-7,
                100,
                one_d,
                vec![vec![0.25; 4]; 1],
            )
        };
        // TDG carries no 1-D grids; HDG needs exactly d of them.
        assert!(build(ApproachKind::Tdg, Vec::new()).is_ok());
        assert!(build(ApproachKind::Tdg, vec![vec![0.25; 4]; 2]).is_err());
        assert!(build(ApproachKind::Hdg, Vec::new()).is_err());
        assert!(build(ApproachKind::Hdg, vec![vec![0.25; 4]; 2]).is_ok());
    }

    #[test]
    fn cache_fingerprint_tracks_every_answer_relevant_field() {
        let g = Granularities { g1: 4, g2: 2 };
        let base = ModelSnapshot::from_parts(
            2,
            16,
            g,
            EstimatorKind::WeightedUpdate,
            1e-7,
            100,
            1e-7,
            100,
            vec![vec![0.25; 4]; 2],
            vec![vec![0.25; 4]; 1],
        )
        .unwrap();
        assert_eq!(
            base.cache_fingerprint(),
            base.clone().cache_fingerprint(),
            "equal snapshots must digest equally"
        );
        // Flip one frequency bit: the digest must move.
        let mut tweaked = base.clone();
        tweaked.two_d[0][3] = 0.25000000000000006;
        assert_ne!(base.cache_fingerprint(), tweaked.cache_fingerprint());
        // A settings-only change moves it too.
        let mut retuned = base.clone();
        retuned.est_max_iters = 99;
        assert_ne!(base.cache_fingerprint(), retuned.cache_fingerprint());
        // Negative zero and positive zero are distinct bit patterns, so a
        // bitwise-faithful digest must separate them (== on f64 would not).
        let mut pos = base.clone();
        pos.one_d[0][0] = 0.0;
        let mut neg = base;
        neg.one_d[0][0] = -0.0;
        assert_ne!(pos.cache_fingerprint(), neg.cache_fingerprint());
    }

    #[test]
    fn snapshot_restores_bit_identical_model() {
        let ds = DatasetSpec::Normal { rho: 0.7 }.generate(30_000, 3, 32, 11);
        let hdg = Hdg::default();
        let fitted = hdg.fit(&ds, 1.0, 5).unwrap();
        let snap = hdg.snapshot(&ds, 1.0, 5).unwrap();
        let restored = snap.to_model().unwrap();
        let wl = WorkloadBuilder::new(3, 32, 4);
        let mut queries = wl.random(2, 0.5, 20);
        queries.extend(wl.random(1, 0.3, 5));
        queries.extend(wl.random(3, 0.5, 5));
        for q in &queries {
            assert_eq!(
                fitted.answer(q).to_bits(),
                restored.answer(q).to_bits(),
                "snapshot restore diverges on {q}"
            );
        }
    }

    #[test]
    fn restoring_does_not_post_process_again() {
        // A snapshot with deliberately inconsistent (non-normalized) grids:
        // a second Phase-2 pass would renormalize them, so equality of the
        // stored frequencies with the restored grids proves restore is raw.
        let g = Granularities { g1: 4, g2: 2 };
        let one = vec![vec![0.9, 0.4, 0.1, 0.0], vec![0.5, 0.5, 0.5, 0.5]];
        let two = vec![vec![0.7, 0.1, 0.1, 0.3]];
        let snap = ModelSnapshot::from_parts(
            2,
            16,
            g,
            EstimatorKind::WeightedUpdate,
            1e-7,
            100,
            1e-7,
            100,
            one.clone(),
            two.clone(),
        )
        .unwrap();
        let (one_d, two_d) = snap.grids().unwrap();
        assert_eq!(one_d[0].freqs, one[0]);
        assert_eq!(one_d[1].freqs, one[1]);
        assert_eq!(two_d[0].freqs, two[0]);
        assert!(snap.to_model().is_ok());
    }
}
