//! LHIO: Low-dimensional HIO (paper §3.4).
//!
//! LHIO keeps HIO's hierarchies but only in two dimensions: users are split
//! into `(d choose 2)` pair groups, each builds a 2-D hierarchy, and two
//! post-processing steps remove the inconsistencies the paper identifies:
//!
//! 1. *within* a hierarchy — 2-D constrained inference (Hay et al. adapted,
//!    run along each attribute);
//! 2. *across* hierarchies — after CI the hierarchy is internally
//!    consistent, so each pair reduces without information loss to its leaf
//!    matrix, and the CALM-style attribute consistency + Norm-Sub loop runs
//!    over those.
//!
//! Higher-dimensional queries go through Algorithm 2 like the grid methods.

use crate::config::MechanismConfig;
use crate::pair_model::{PairAnswerer, SplitModel};
use crate::{Mechanism, MechanismError, Model};
use privmdr_data::Dataset;
use privmdr_grid::consistency::post_process;
use privmdr_grid::norm_sub::norm_sub;
use privmdr_grid::pairs::{pair_index, pair_list};
use privmdr_grid::{Grid2d, PrefixSum2d};
use privmdr_hierarchy::Hierarchy2d;
use privmdr_oracles::partition::partition_equal;
use privmdr_util::rng::derive_rng;

/// The LHIO baseline mechanism.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lhio {
    /// Shared configuration (`branching`, simulation mode, post-processing).
    pub config: MechanismConfig,
}

impl Lhio {
    /// LHIO with the given configuration.
    pub fn new(config: MechanismConfig) -> Self {
        Lhio { config }
    }
}

struct LhioAnswerer {
    d: usize,
    c: usize,
    /// Padded leaf domain (power of the branching factor).
    c_pad: usize,
    /// Prefix sums over each pair's leaf matrix, [`pair_list`] order.
    prefixes: Vec<PrefixSum2d>,
}

impl PairAnswerer for LhioAnswerer {
    fn domain(&self) -> usize {
        self.c
    }

    fn answer_2d(
        &self,
        (j, k): (usize, usize),
        ((lo_j, hi_j), (lo_k, hi_k)): ((usize, usize), (usize, usize)),
    ) -> f64 {
        self.prefixes[pair_index(j, k, self.d)].rect_inclusive(lo_j, hi_j, lo_k, hi_k)
    }

    fn answer_1d(&self, attr: usize, (lo, hi): (usize, usize)) -> f64 {
        let (pair, first) = crate::calm::first_pair_with(attr, self.d);
        let p = &self.prefixes[pair];
        if first {
            p.rect_inclusive(lo, hi, 0, self.c_pad - 1)
        } else {
            p.rect_inclusive(0, self.c_pad - 1, lo, hi)
        }
    }
}

impl Mechanism for Lhio {
    fn name(&self) -> &'static str {
        "LHIO"
    }

    fn fit(&self, ds: &Dataset, epsilon: f64, seed: u64) -> Result<Box<dyn Model>, MechanismError> {
        let (n, d, c) = (ds.len(), ds.dims(), ds.domain());
        if d < 2 {
            return Err(MechanismError::Invalid(
                "LHIO needs at least 2 attributes".into(),
            ));
        }
        let pairs = pair_list(d);
        let mut rng = derive_rng(seed, &[0x4c48_494f]); // "LHIO"
        let groups = partition_equal(n, pairs.len(), &mut rng);

        // Phase 1 + within-hierarchy consistency, pair by pair; keep only
        // the (equivalent) leaf matrices.
        let mut c_pad = c;
        let mut leaf_grids: Vec<Grid2d> = Vec::with_capacity(pairs.len());
        let mut raw_leaves: Vec<Vec<f64>> = Vec::new();
        for (&pair, users) in pairs.iter().zip(&groups) {
            let values = ds.gather_pair(pair, users);
            let mut hier = Hierarchy2d::collect(
                pair,
                self.config.branching,
                c,
                &values,
                epsilon,
                self.config.sim_mode,
                &mut rng,
            )?;
            hier.constrain();
            c_pad = hier.geometry().domain();
            let leaves = hier.leaves().to_vec();
            if privmdr_util::is_pow2(c_pad) {
                leaf_grids.push(
                    Grid2d::from_freqs(pair, c_pad, c_pad, leaves)
                        .expect("padded domain is a valid grid geometry"),
                );
            } else {
                raw_leaves.push(leaves);
            }
        }

        // Across-hierarchy consistency (CALM-style) when the padded domain
        // fits the grid machinery (b = 4 always does: 4^h is a power of 2);
        // otherwise only Norm-Sub applies.
        let prefixes: Vec<PrefixSum2d> = if raw_leaves.is_empty() {
            let mut no_one_d: Vec<Option<privmdr_grid::Grid1d>> = (0..d).map(|_| None).collect();
            post_process(d, &mut no_one_d, &mut leaf_grids, &self.config.post_process);
            leaf_grids
                .iter()
                .map(|g| PrefixSum2d::build(&g.freqs, c_pad, c_pad))
                .collect()
        } else {
            if self.config.post_process.enabled {
                for leaves in &mut raw_leaves {
                    norm_sub(leaves, 1.0);
                }
            }
            raw_leaves
                .iter()
                .map(|l| PrefixSum2d::build(l, c_pad, c_pad))
                .collect()
        };

        Ok(Box::new(SplitModel::new(
            LhioAnswerer {
                d,
                c,
                c_pad,
                prefixes,
            },
            &self.config,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmdr_data::DatasetSpec;
    use privmdr_query::workload::{true_answers, WorkloadBuilder};
    use privmdr_query::RangeQuery;

    #[test]
    fn lhio_answers_2d_queries() {
        let ds = DatasetSpec::Normal { rho: 0.8 }.generate(60_000, 3, 16, 13);
        let model = Lhio::default().fit(&ds, 2.0, 7).unwrap();
        let wl = WorkloadBuilder::new(3, 16, 8);
        let queries = wl.random(2, 0.5, 30);
        let truths = true_answers(&ds, &queries);
        let estimates = model.answer_all(&queries);
        let mae = privmdr_query::mae(&estimates, &truths);
        // CALM-style post-processing trades per-cell bias for validity;
        // range answers over many cells inherit a clamping bias (the
        // paper's Fig. 2 "arch" effect), so the bar is moderate.
        assert!(mae < 0.2, "MAE {mae}");
    }

    #[test]
    fn within_hierarchy_ci_alone_is_accurate() {
        // Without the CALM-style cross-pair step, the constrained
        // hierarchies answer 2-D ranges tightly at this budget.
        let ds = DatasetSpec::Normal { rho: 0.8 }.generate(60_000, 3, 16, 13);
        let model = Lhio::new(MechanismConfig::default().without_post_process())
            .fit(&ds, 2.0, 7)
            .unwrap();
        let wl = WorkloadBuilder::new(3, 16, 8);
        let queries = wl.random(2, 0.5, 30);
        let truths = true_answers(&ds, &queries);
        let mae = privmdr_query::mae(&model.answer_all(&queries), &truths);
        assert!(mae < 0.08, "MAE {mae}");
    }

    #[test]
    fn lhio_beats_hio_at_equal_budget() {
        // The paper's headline for LHIO: pairwise hierarchies + consistency
        // crush full-dimensional HIO. Statistical, seeded.
        use crate::hio::HioMechanism;
        let ds = DatasetSpec::Normal { rho: 0.8 }.generate(30_000, 4, 16, 14);
        let wl = WorkloadBuilder::new(4, 16, 9);
        let queries = wl.random(2, 0.5, 25);
        let truths = true_answers(&ds, &queries);
        let mut lhio_mae = 0.0;
        let mut hio_mae = 0.0;
        for seed in 0..3 {
            let lhio = Lhio::default().fit(&ds, 0.8, seed).unwrap();
            lhio_mae += privmdr_query::mae(&lhio.answer_all(&queries), &truths);
            let hio = HioMechanism::default().fit(&ds, 0.8, seed).unwrap();
            hio_mae += privmdr_query::mae(&hio.answer_all(&queries), &truths);
        }
        assert!(
            lhio_mae < hio_mae,
            "LHIO {lhio_mae} should beat HIO {hio_mae}"
        );
    }

    #[test]
    fn lhio_lambda3_via_estimation() {
        let ds = DatasetSpec::Normal { rho: 0.0 }.generate(60_000, 3, 16, 15);
        let model = Lhio::default().fit(&ds, 2.0, 8).unwrap();
        let q = RangeQuery::from_triples(&[(0, 0, 7), (1, 0, 7), (2, 0, 7)], 16).unwrap();
        let truth = q.true_answer(&ds);
        let est = model.answer(&q);
        assert!((est - truth).abs() < 0.1, "est {est} truth {truth}");
    }
}
