//! λ-dimensional estimation from 2-D answers (paper §4.4, Algorithm 2;
//! Appendix A.8).
//!
//! A λ-D query `q` splits into `(λ choose 2)` associated 2-D queries. The
//! estimated answer vector `z` has `2^λ` entries, one per combination of
//! "interval or complement" across the λ predicates (entry `mask` uses the
//! query interval for attribute positions whose bit is set). Weighted
//! Update repeatedly rescales, for each pair `(i, j)`, the `2^{λ−2}` entries
//! whose bits `i` and `j` are both set so they sum to the measured 2-D
//! answer, until the total change per sweep falls below a threshold. The
//! final answer is `z[11…1]`.
//!
//! The appendix's Maximum-Entropy alternative constrains all four
//! sign-combinations per pair (deriving the complements from 1-D answers)
//! plus global normalization; it converges to the max-entropy distribution
//! but more slowly — the reason the paper prefers Weighted Update.

/// Observer invoked with `(sweep, total_change)` after each sweep (Fig. 18).
pub type SweepObserver<'a> = &'a mut dyn FnMut(usize, f64);

/// One measured 2-D answer for positions `(i, j)` within the query's
/// attribute list (`i < j < λ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairAnswer {
    /// First attribute position within the query (not the global index).
    pub i: usize,
    /// Second attribute position within the query.
    pub j: usize,
    /// Measured 2-D answer `f_{q(i,j)}`, clamped to `[0, 1]` by callers.
    pub f: f64,
}

/// Algorithm 2: estimates the full answer vector `z` (length `2^λ`) from
/// the associated 2-D answers.
pub fn weighted_update(
    lambda: usize,
    pair_answers: &[PairAnswer],
    threshold: f64,
    max_iters: usize,
) -> Vec<f64> {
    weighted_update_observed(lambda, pair_answers, threshold, max_iters, None)
}

/// [`weighted_update`] with a per-sweep convergence observer.
pub fn weighted_update_observed(
    lambda: usize,
    pair_answers: &[PairAnswer],
    threshold: f64,
    max_iters: usize,
    mut observer: Option<SweepObserver<'_>>,
) -> Vec<f64> {
    assert!((2..=20).contains(&lambda), "lambda out of range");
    let size = 1usize << lambda;
    let mut z = vec![1.0 / size as f64; size];
    let mut change = f64::INFINITY;
    let mut sweep = 0usize;
    while sweep < max_iters.max(1) && change >= threshold {
        change = 0.0;
        for pa in pair_answers {
            let both = (1usize << pa.i) | (1usize << pa.j);
            let mut y = 0.0;
            for (mask, &v) in z.iter().enumerate() {
                if mask & both == both {
                    y += v;
                }
            }
            if y == 0.0 {
                continue; // Algorithm 2 line 6
            }
            let factor = pa.f / y;
            for (mask, v) in z.iter_mut().enumerate() {
                if mask & both == both {
                    let new = *v * factor;
                    change += (new - *v).abs();
                    *v = new;
                }
            }
        }
        sweep += 1;
        if let Some(obs) = observer.as_mut() {
            obs(sweep, change);
        }
    }
    z
}

/// Convenience: the λ-D query answer `z[11…1]` from Algorithm 2.
pub fn estimate_lambda_answer(
    lambda: usize,
    pair_answers: &[PairAnswer],
    threshold: f64,
    max_iters: usize,
) -> f64 {
    let z = weighted_update(lambda, pair_answers, threshold, max_iters);
    z[(1usize << lambda) - 1]
}

/// Appendix A.8: maximum-entropy estimation by iterative scaling.
///
/// Besides the `(λ choose 2)` positive-quadrant answers, this uses the 1-D
/// answers `f_i` of each queried interval to derive all four
/// sign-combination constraints per pair:
/// `f(+,+) = f_{ij}`, `f(+,−) = f_i − f_{ij}`, `f(−,+) = f_j − f_{ij}`,
/// `f(−,−) = 1 − f_i − f_j + f_{ij}` (each clamped to `[0, 1]`), plus
/// normalization of `z` to total mass 1 each sweep.
pub fn max_entropy(
    lambda: usize,
    pair_answers: &[PairAnswer],
    one_d_answers: &[f64],
    threshold: f64,
    max_iters: usize,
) -> Vec<f64> {
    assert!((2..=20).contains(&lambda), "lambda out of range");
    assert_eq!(one_d_answers.len(), lambda, "one 1-D answer per position");
    let size = 1usize << lambda;
    let mut z = vec![1.0 / size as f64; size];
    let mut change = f64::INFINITY;
    let mut sweep = 0usize;
    while sweep < max_iters.max(1) && change >= threshold {
        change = 0.0;
        for pa in pair_answers {
            let (bi, bj) = (1usize << pa.i, 1usize << pa.j);
            let fi = one_d_answers[pa.i].clamp(0.0, 1.0);
            let fj = one_d_answers[pa.j].clamp(0.0, 1.0);
            let fij = pa.f.clamp(0.0, 1.0);
            // Constraints for the four sign quadrants of the pair.
            let quadrants = [
                (bi | bj, bi | bj, fij),
                (bi | bj, bi, (fi - fij).clamp(0.0, 1.0)),
                (bi | bj, bj, (fj - fij).clamp(0.0, 1.0)),
                (bi | bj, 0, (1.0 - fi - fj + fij).clamp(0.0, 1.0)),
            ];
            for (select, want, target) in quadrants {
                let mut y = 0.0;
                for (mask, &v) in z.iter().enumerate() {
                    if mask & select == want {
                        y += v;
                    }
                }
                if y == 0.0 {
                    continue;
                }
                let factor = target / y;
                for (mask, v) in z.iter_mut().enumerate() {
                    if mask & select == want {
                        let new = *v * factor;
                        change += (new - *v).abs();
                        *v = new;
                    }
                }
            }
        }
        // Normalization constraint.
        let total: f64 = z.iter().sum();
        if total > 0.0 {
            for v in z.iter_mut() {
                *v /= total;
            }
        }
        sweep += 1;
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds all pair answers for independent attributes with marginal
    /// interval masses `f`.
    fn independent_pairs(f: &[f64]) -> Vec<PairAnswer> {
        let mut out = Vec::new();
        for i in 0..f.len() {
            for j in (i + 1)..f.len() {
                out.push(PairAnswer {
                    i,
                    j,
                    f: f[i] * f[j],
                });
            }
        }
        out
    }

    #[test]
    fn exact_product_case_lambda3() {
        // Independent attributes: the constraint set is consistent and the
        // answer should approach the product (the max-entropy solution).
        let f = [0.5, 0.5, 0.5];
        let est = estimate_lambda_answer(3, &independent_pairs(&f), 1e-12, 500);
        let want = 0.125;
        assert!((est - want).abs() < 0.02, "est {est} want {want}");
    }

    #[test]
    fn symmetric_lambda4() {
        let f = [0.5; 4];
        let est = estimate_lambda_answer(4, &independent_pairs(&f), 1e-12, 500);
        assert!((est - 0.0625).abs() < 0.02, "est {est}");
    }

    #[test]
    fn perfectly_correlated_pairs() {
        // All pairwise answers 0.5 and marginals 0.5: the consistent joints
        // put mass 0.5 on "all in" and 0.5 on "all out"; Algorithm 2 should
        // estimate z[full] near 0.5, far above the product 0.125.
        let pairs: Vec<PairAnswer> = (0..3)
            .flat_map(|i| ((i + 1)..3).map(move |j| PairAnswer { i, j, f: 0.5 }))
            .collect();
        let est = estimate_lambda_answer(3, &pairs, 1e-12, 500);
        // Algorithm 2's pairwise log-linear family cannot express the exact
        // two-point joint (that needs higher-order terms), but the estimate
        // must land far above the independence product 0.125.
        assert!(est > 0.25, "correlated estimate {est}");
    }

    #[test]
    fn zero_pair_answer_forces_zero() {
        // If one 2-D answer is 0, the full conjunction must be 0.
        let mut pairs = independent_pairs(&[0.5, 0.5, 0.5]);
        pairs[0].f = 0.0;
        let est = estimate_lambda_answer(3, &pairs, 1e-12, 500);
        assert!(est.abs() < 1e-9, "est {est}");
    }

    #[test]
    fn convergence_observer_reports_decay() {
        let pairs = independent_pairs(&[0.4, 0.6, 0.3, 0.7]);
        let mut trace = Vec::new();
        let mut obs = |s: usize, ch: f64| trace.push((s, ch));
        let _ = weighted_update_observed(4, &pairs, 1e-12, 200, Some(&mut obs));
        assert!(trace.len() >= 2);
        let first = trace[0].1;
        let last = trace.last().unwrap().1;
        assert!(
            last < first,
            "change must decay: first {first}, last {last}"
        );
    }

    #[test]
    fn max_entropy_matches_weighted_update_on_consistent_inputs() {
        let f = [0.4, 0.5, 0.6];
        let pairs = independent_pairs(&f);
        let wu = estimate_lambda_answer(3, &pairs, 1e-12, 500);
        let me = max_entropy(3, &pairs, &f, 1e-12, 500);
        let me_ans = me[7];
        let want = 0.4 * 0.5 * 0.6;
        assert!((wu - want).abs() < 0.03, "wu {wu}");
        assert!((me_ans - want).abs() < 0.01, "me {me_ans}");
        // Max-entropy z is a proper distribution.
        assert!((me.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!(me.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn max_entropy_handles_correlation_better_with_marginals() {
        // Correlated case: f_i = 0.5, f_ij = 0.45 (near-perfect correlation).
        let pairs: Vec<PairAnswer> = (0..3)
            .flat_map(|i| ((i + 1)..3).map(move |j| PairAnswer { i, j, f: 0.45 }))
            .collect();
        let me = max_entropy(3, &pairs, &[0.5, 0.5, 0.5], 1e-12, 1000);
        let est = me[7];
        assert!(est > 0.3, "correlated max-ent estimate {est}");
    }

    #[test]
    #[should_panic(expected = "lambda out of range")]
    fn lambda_one_is_rejected() {
        let _ = weighted_update(1, &[], 1e-9, 10);
    }
}
