//! λ-dimensional estimation from 2-D answers (paper §4.4, Algorithm 2;
//! Appendix A.8).
//!
//! A λ-D query `q` splits into `(λ choose 2)` associated 2-D queries. The
//! estimated answer vector `z` has `2^λ` entries, one per combination of
//! "interval or complement" across the λ predicates (entry `mask` uses the
//! query interval for attribute positions whose bit is set). Weighted
//! Update repeatedly rescales, for each pair `(i, j)`, the `2^{λ−2}` entries
//! whose bits `i` and `j` are both set so they sum to the measured 2-D
//! answer, until the total change per sweep falls below a threshold. The
//! final answer is `z[11…1]`.
//!
//! # The subcube enumeration
//!
//! The entries a pair `(i, j)` touches — masks with `mask & both == both`
//! where `both = 2^i | 2^j` — form a subcube: `{both | s}` for every subset
//! `s` of `free = (2^λ − 1) ^ both`. Instead of scanning all `2^λ` entries
//! with a branch (the textbook form, kept as
//! [`weighted_update_reference`]), the production path enumerates the
//! `2^{λ−2}` members directly with the standard increasing-subset stepper
//! `s ← (s − free) & free`. `both` and `s` are disjoint, so `both | s`
//! increases with `s` and the subcube is visited in exactly the order the
//! filtered scan visits it — the f64 accumulation order is unchanged and
//! the result is **bit-identical**, 4× less work and branch-free.
//!
//! # The lane-parallel batch kernel
//!
//! [`weighted_update_batch`] runs Algorithm 2 for up to [`EST_LANES`]
//! same-shape queries at once: the z-vectors are transposed into SoA
//! layout (`zt[mask · LANES + lane]`, one lane per query) and every sweep
//! updates all lanes with element-wise f64 vector arithmetic — explicit
//! AVX-512 / AVX2 paths with a portable fallback, dispatched once per
//! process through the same feature detection as the OLH support kernel
//! (`privmdr_util::hash::kernel_backend`). Per-lane convergence masks
//! freeze finished lanes (a frozen lane's entries are never written
//! again), so each lane performs exactly the f64 operation sequence the
//! scalar path would: IEEE-754 lane arithmetic is identical to scalar
//! arithmetic, hence the batch answers are bit-identical to
//! [`weighted_update`]'s. `crates/core/tests/estimator_prop.rs` pins all
//! of this down against the reference at every lane remainder.
//!
//! The appendix's Maximum-Entropy alternative constrains all four
//! sign-combinations per pair (deriving the complements from 1-D answers)
//! plus global normalization; it converges to the max-entropy distribution
//! but more slowly — the reason the paper prefers Weighted Update.

/// Observer invoked with `(sweep, total_change)` after each sweep (Fig. 18).
pub type SweepObserver<'a> = &'a mut dyn FnMut(usize, f64);

/// One measured 2-D answer for positions `(i, j)` within the query's
/// attribute list (`i < j < λ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairAnswer {
    /// First attribute position within the query (not the global index).
    pub i: usize,
    /// Second attribute position within the query.
    pub j: usize,
    /// Measured 2-D answer `f_{q(i,j)}`, clamped to `[0, 1]` by callers.
    pub f: f64,
}

/// Algorithm 2: estimates the full answer vector `z` (length `2^λ`) from
/// the associated 2-D answers.
pub fn weighted_update(
    lambda: usize,
    pair_answers: &[PairAnswer],
    threshold: f64,
    max_iters: usize,
) -> Vec<f64> {
    weighted_update_observed(lambda, pair_answers, threshold, max_iters, None)
}

/// [`weighted_update`] with a per-sweep convergence observer.
///
/// This is the production scalar path: per pair it walks the `2^{λ−2}`
/// subcube directly (see the module docs) instead of branching over all
/// `2^λ` entries. Same accumulation order, bit-identical results.
pub fn weighted_update_observed(
    lambda: usize,
    pair_answers: &[PairAnswer],
    threshold: f64,
    max_iters: usize,
    mut observer: Option<SweepObserver<'_>>,
) -> Vec<f64> {
    assert!((2..=20).contains(&lambda), "lambda out of range");
    let size = 1usize << lambda;
    let full = size - 1;
    for pa in pair_answers {
        assert!(pa.i < lambda && pa.j < lambda, "pair position out of range");
    }
    let mut z = vec![1.0 / size as f64; size];
    let mut change = f64::INFINITY;
    let mut sweep = 0usize;
    while sweep < max_iters.max(1) && change >= threshold {
        change = 0.0;
        for pa in pair_answers {
            let both = (1usize << pa.i) | (1usize << pa.j);
            let free = full ^ both;
            // y = sum over the subcube, in increasing-mask order.
            let mut y = 0.0;
            let mut s = 0usize;
            loop {
                y += z[both | s];
                s = s.wrapping_sub(free) & free;
                if s == 0 {
                    break;
                }
            }
            if y == 0.0 {
                continue; // Algorithm 2 line 6
            }
            let factor = pa.f / y;
            let mut s = 0usize;
            loop {
                let v = &mut z[both | s];
                let new = *v * factor;
                change += (new - *v).abs();
                *v = new;
                s = s.wrapping_sub(free) & free;
                if s == 0 {
                    break;
                }
            }
        }
        sweep += 1;
        if let Some(obs) = observer.as_mut() {
            obs(sweep, change);
        }
    }
    z
}

/// The textbook form of Algorithm 2: a filtered scan over all `2^λ`
/// entries per pair. Kept as the reference implementation the optimized
/// subcube / lane-parallel paths are proven bit-identical to
/// (`tests/estimator_prop.rs`) — hot paths should call
/// [`weighted_update`] or [`weighted_update_batch`] instead.
pub fn weighted_update_reference(
    lambda: usize,
    pair_answers: &[PairAnswer],
    threshold: f64,
    max_iters: usize,
) -> Vec<f64> {
    assert!((2..=20).contains(&lambda), "lambda out of range");
    let size = 1usize << lambda;
    let mut z = vec![1.0 / size as f64; size];
    let mut change = f64::INFINITY;
    let mut sweep = 0usize;
    while sweep < max_iters.max(1) && change >= threshold {
        change = 0.0;
        for pa in pair_answers {
            let both = (1usize << pa.i) | (1usize << pa.j);
            let mut y = 0.0;
            for (mask, &v) in z.iter().enumerate() {
                if mask & both == both {
                    y += v;
                }
            }
            if y == 0.0 {
                continue;
            }
            let factor = pa.f / y;
            for (mask, v) in z.iter_mut().enumerate() {
                if mask & both == both {
                    let new = *v * factor;
                    change += (new - *v).abs();
                    *v = new;
                }
            }
        }
        sweep += 1;
    }
    z
}

/// Convenience: the λ-D query answer `z[11…1]` from Algorithm 2.
pub fn estimate_lambda_answer(
    lambda: usize,
    pair_answers: &[PairAnswer],
    threshold: f64,
    max_iters: usize,
) -> f64 {
    let z = weighted_update(lambda, pair_answers, threshold, max_iters);
    z[(1usize << lambda) - 1]
}

/// Lane width of the batch estimator: 8 queries per block, one f64 lane
/// each — one AVX-512 vector, or two AVX2 vectors, per element-wise step.
pub const EST_LANES: usize = 8;

/// The result of a [`weighted_update_batch`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchEstimate {
    /// Per query, the λ-D answer `z[11…1]` — bit-identical to
    /// [`estimate_lambda_answer`] on the query's own pair answers.
    pub answers: Vec<f64>,
    /// Per query, the number of Weighted-Update sweeps it ran before
    /// converging (or hitting `max_iters`) — identical to the scalar
    /// path's sweep count, for estimator telemetry.
    pub sweeps: Vec<u64>,
}

/// Lane-parallel Weighted Update over a batch of same-shape queries.
///
/// All queries share `lambda` and the pair-position list `pairs` (the
/// planner groups by λ, and `SplitModel` always emits pairs in the same
/// `i < j` lexicographic order); `fs` holds each query's measured 2-D
/// answers row-major (`fs[q · pairs.len() + p]`). Queries are processed
/// in blocks of [`EST_LANES`] lanes; the per-pair subcube index lists are
/// materialized once per call (they depend only on the `(λ, pair-set)`
/// shape) and reused by every block and sweep.
///
/// Dispatches to AVX-512/AVX2/portable once per process via
/// `privmdr_util::hash::kernel_backend()`. Every backend performs the
/// same per-lane f64 operation sequence, so the answers are
/// **bit-identical** to running [`weighted_update`] per query.
pub fn weighted_update_batch(
    lambda: usize,
    pairs: &[(usize, usize)],
    fs: &[f64],
    threshold: f64,
    max_iters: usize,
) -> BatchEstimate {
    batch_run(lambda, pairs, fs, threshold, max_iters, dispatch_block)
}

/// [`weighted_update_batch`] pinned to the portable lane kernel, exposed
/// so the equivalence tests can exercise it even where dispatch picks a
/// SIMD backend.
pub fn weighted_update_batch_portable(
    lambda: usize,
    pairs: &[(usize, usize)],
    fs: &[f64],
    threshold: f64,
    max_iters: usize,
) -> BatchEstimate {
    batch_run(lambda, pairs, fs, threshold, max_iters, wu_block_portable)
}

/// [`weighted_update_batch`] pinned to the explicit AVX2 kernel; `None`
/// when the CPU lacks AVX2.
#[cfg(target_arch = "x86_64")]
pub fn weighted_update_batch_avx2(
    lambda: usize,
    pairs: &[(usize, usize)],
    fs: &[f64],
    threshold: f64,
    max_iters: usize,
) -> Option<BatchEstimate> {
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 presence was just verified; the block fn is only
        // invoked from this dispatch.
        Some(batch_run(
            lambda,
            pairs,
            fs,
            threshold,
            max_iters,
            |b| unsafe { avx2::wu_block(b) },
        ))
    } else {
        None
    }
}

/// [`weighted_update_batch`] pinned to the explicit AVX-512 kernel;
/// `None` when the CPU lacks AVX-512F/DQ.
#[cfg(target_arch = "x86_64")]
pub fn weighted_update_batch_avx512(
    lambda: usize,
    pairs: &[(usize, usize)],
    fs: &[f64],
    threshold: f64,
    max_iters: usize,
) -> Option<BatchEstimate> {
    if std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512dq")
    {
        // SAFETY: AVX-512F and AVX-512DQ presence was just verified.
        Some(batch_run(
            lambda,
            pairs,
            fs,
            threshold,
            max_iters,
            |b| unsafe { avx512::wu_block(b) },
        ))
    } else {
        None
    }
}

/// One block's worth of state, shared by every backend: the per-pair
/// subcube index lists, the SoA-transposed per-pair answers and z-vector,
/// and the convergence settings.
struct WuBlock<'a> {
    /// Per pair, the `2^{λ−2}` subcube member masks in increasing order.
    idx: &'a [Vec<u32>],
    /// Per-pair target answers, SoA: `fsb[p · EST_LANES + lane]`.
    fsb: &'a [f64],
    /// Transposed z: `zt[mask · EST_LANES + lane]`, pre-initialized to
    /// `1 / 2^λ` in every live lane.
    zt: &'a mut [f64],
    /// Number of live lanes (1..=EST_LANES); higher lanes are padding.
    nq: usize,
    threshold: f64,
    max_iters: usize,
    /// Out: per-lane executed sweep counts.
    sweeps: [u64; EST_LANES],
}

/// Dispatched block kernel (the production path of
/// [`weighted_update_batch`]).
fn dispatch_block(block: &mut WuBlock<'_>) {
    #[cfg(target_arch = "x86_64")]
    match privmdr_util::hash::kernel_backend() {
        // SAFETY: each SIMD backend is only ever selected after
        // `is_x86_feature_detected!` confirmed its features on this CPU.
        privmdr_util::hash::KernelBackend::Avx512 => return unsafe { avx512::wu_block(block) },
        privmdr_util::hash::KernelBackend::Avx2 => return unsafe { avx2::wu_block(block) },
        privmdr_util::hash::KernelBackend::Portable => {}
    }
    wu_block_portable(block)
}

/// The backend-independent batch driver: validates the shape, builds the
/// per-pair subcube index lists once, and runs `block_fn` over each
/// [`EST_LANES`]-lane block of queries.
fn batch_run(
    lambda: usize,
    pairs: &[(usize, usize)],
    fs: &[f64],
    threshold: f64,
    max_iters: usize,
    mut block_fn: impl FnMut(&mut WuBlock<'_>),
) -> BatchEstimate {
    assert!((2..=20).contains(&lambda), "lambda out of range");
    assert!(!pairs.is_empty(), "batch needs at least one pair per query");
    assert!(
        fs.len().is_multiple_of(pairs.len()),
        "fs must hold pairs.len() answers per query"
    );
    let npairs = pairs.len();
    let n = fs.len() / npairs;
    let size = 1usize << lambda;
    let full = size - 1;

    // Per-pair subcube index lists, increasing order — computed once per
    // (λ, pair-set) shape and reused by every block and sweep.
    let idx: Vec<Vec<u32>> = pairs
        .iter()
        .map(|&(i, j)| {
            assert!(i < lambda && j < lambda, "pair position out of range");
            let both = (1usize << i) | (1usize << j);
            let free = full ^ both;
            let mut members = Vec::with_capacity(1usize << (lambda - 2));
            let mut s = 0usize;
            loop {
                members.push((both | s) as u32);
                s = s.wrapping_sub(free) & free;
                if s == 0 {
                    break;
                }
            }
            members
        })
        .collect();

    let mut answers = Vec::with_capacity(n);
    let mut sweeps = Vec::with_capacity(n);
    let mut zt = vec![0.0f64; size * EST_LANES];
    let mut fsb = vec![0.0f64; npairs * EST_LANES];
    let init = 1.0 / size as f64;
    for block_start in (0..n).step_by(EST_LANES) {
        let nq = EST_LANES.min(n - block_start);
        zt.fill(init);
        // Transpose this block's pair answers to SoA; padding lanes get
        // 0.0 targets but are masked off from the first sweep anyway.
        fsb.fill(0.0);
        for (lane, q) in (block_start..block_start + nq).enumerate() {
            for p in 0..npairs {
                fsb[p * EST_LANES + lane] = fs[q * npairs + p];
            }
        }
        let mut block = WuBlock {
            idx: &idx,
            fsb: &fsb,
            zt: &mut zt,
            nq,
            threshold,
            max_iters,
            sweeps: [0; EST_LANES],
        };
        block_fn(&mut block);
        let block_sweeps = block.sweeps;
        for lane in 0..nq {
            answers.push(zt[full * EST_LANES + lane]);
            sweeps.push(block_sweeps[lane]);
        }
    }
    BatchEstimate { answers, sweeps }
}

/// Portable lane kernel: fixed [`EST_LANES`]-wide array sweeps written for
/// autovectorization. Each lane replays the scalar op sequence exactly
/// (same subcube order, same mul/div/add/abs), with a per-lane update
/// mask standing in for the scalar `y == 0` skip and convergence exit.
fn wu_block_portable(block: &mut WuBlock<'_>) {
    const L: usize = EST_LANES;
    let mut active = [false; L];
    active[..block.nq].iter_mut().for_each(|a| *a = true);
    let mut sweep = 0usize;
    while sweep < block.max_iters.max(1) && active.iter().any(|&a| a) {
        let mut change = [0.0f64; L];
        for (masks, f) in block.idx.iter().zip(block.fsb.chunks_exact(L)) {
            let mut y = [0.0f64; L];
            for &m in masks {
                let row = &block.zt[m as usize * L..m as usize * L + L];
                for l in 0..L {
                    y[l] += row[l];
                }
            }
            // The scalar path skips the pair when y == 0 (and a frozen
            // lane must not move at all): mask the store and the change
            // accumulation per lane.
            let mut upd = [false; L];
            let mut factor = [0.0f64; L];
            for l in 0..L {
                upd[l] = active[l] && y[l] != 0.0;
                factor[l] = f[l] / y[l];
            }
            for &m in masks {
                let row = &mut block.zt[m as usize * L..m as usize * L + L];
                for l in 0..L {
                    if upd[l] {
                        let new = row[l] * factor[l];
                        change[l] += (new - row[l]).abs();
                        row[l] = new;
                    }
                }
            }
        }
        sweep += 1;
        for l in 0..L {
            if active[l] {
                block.sweeps[l] += 1;
                // NaN-safe freeze: the scalar loop continues only while
                // `change >= threshold`, so freeze on the negation —
                // `change < threshold` would differ for a NaN change.
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                if !(change[l] >= block.threshold) {
                    active[l] = false;
                }
            }
        }
    }
}

/// Explicit AVX2 batch kernel: the 8 lanes as two 256-bit vectors of f64.
///
/// All arithmetic is element-wise IEEE-754 (`vaddpd`/`vmulpd`/`vdivpd`,
/// abs as a sign-bit clear), so each lane computes bit-for-bit the scalar
/// sequence. The update mask (`active && y != 0`) is carried as a full-
/// width f64 mask: stores blend through it and change accumulates
/// `and(|new−old|, mask)` — exactly `+0.0` for masked lanes, which cannot
/// move a non-negative change accumulator.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{WuBlock, EST_LANES};
    use core::arch::x86_64::*;

    /// # Safety
    ///
    /// The caller must have verified AVX2 support on the running CPU.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn wu_block(block: &mut WuBlock<'_>) {
        const L: usize = EST_LANES;
        let thr = _mm256_set1_pd(block.threshold);
        let zero = _mm256_setzero_pd();
        let absmask = _mm256_castsi256_pd(_mm256_set1_epi64x(i64::MAX));
        // Live-lane masks: all-ones for lanes < nq.
        let lane_live = |base: usize| {
            let mut m = [0i64; 4];
            for (l, v) in m.iter_mut().enumerate() {
                *v = if base + l < block.nq { -1 } else { 0 };
            }
            _mm256_castsi256_pd(_mm256_setr_epi64x(m[0], m[1], m[2], m[3]))
        };
        let mut active = [lane_live(0), lane_live(4)];
        let mut sweep = 0usize;
        while sweep < block.max_iters.max(1)
            && (_mm256_movemask_pd(active[0]) | _mm256_movemask_pd(active[1])) != 0
        {
            let mut change = [zero, zero];
            for (masks, f) in block.idx.iter().zip(block.fsb.chunks_exact(L)) {
                let fv = [
                    _mm256_loadu_pd(f.as_ptr()),
                    _mm256_loadu_pd(f.as_ptr().add(4)),
                ];
                let mut y = [zero, zero];
                for &m in masks {
                    let row = block.zt.as_ptr().add(m as usize * L);
                    y[0] = _mm256_add_pd(y[0], _mm256_loadu_pd(row));
                    y[1] = _mm256_add_pd(y[1], _mm256_loadu_pd(row.add(4)));
                }
                let mut upd = [zero, zero];
                let mut factor = [zero, zero];
                for h in 0..2 {
                    // NEQ_UQ: NaN y counts as != 0, matching the scalar
                    // `y == 0.0` skip condition's negation.
                    upd[h] = _mm256_and_pd(active[h], _mm256_cmp_pd::<_CMP_NEQ_UQ>(y[h], zero));
                    factor[h] = _mm256_div_pd(fv[h], y[h]);
                }
                for &m in masks {
                    let row = block.zt.as_mut_ptr().add(m as usize * L);
                    for h in 0..2 {
                        let old = _mm256_loadu_pd(row.add(h * 4));
                        let new = _mm256_blendv_pd(old, _mm256_mul_pd(old, factor[h]), upd[h]);
                        let diff =
                            _mm256_and_pd(_mm256_and_pd(_mm256_sub_pd(new, old), absmask), upd[h]);
                        change[h] = _mm256_add_pd(change[h], diff);
                        _mm256_storeu_pd(row.add(h * 4), new);
                    }
                }
            }
            sweep += 1;
            for h in 0..2 {
                let live = _mm256_movemask_pd(active[h]);
                for l in 0..4 {
                    if live & (1 << l) != 0 {
                        block.sweeps[h * 4 + l] += 1;
                    }
                }
                // GE_OQ is false for NaN change — the NaN-safe freeze.
                active[h] = _mm256_and_pd(active[h], _mm256_cmp_pd::<_CMP_GE_OQ>(change[h], thr));
            }
        }
    }
}

/// Explicit AVX-512 batch kernel: the 8 lanes as one 512-bit vector of
/// f64, with update/convergence masks in `__mmask8` registers and masked
/// multiply/add doing the blending in one instruction.
///
/// Same bit-identity argument as the AVX2 path: element-wise IEEE-754
/// arithmetic per lane, masked lanes keep their old value and contribute
/// nothing to the change accumulator.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::{WuBlock, EST_LANES};
    use core::arch::x86_64::*;

    /// # Safety
    ///
    /// The caller must have verified AVX-512F and AVX-512DQ support on
    /// the running CPU.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn wu_block(block: &mut WuBlock<'_>) {
        const L: usize = EST_LANES;
        let thr = _mm512_set1_pd(block.threshold);
        let zero = _mm512_setzero_pd();
        let mut active: __mmask8 = if block.nq >= 8 {
            0xFF
        } else {
            (1u8 << block.nq) - 1
        };
        let mut sweep = 0usize;
        while sweep < block.max_iters.max(1) && active != 0 {
            let mut change = zero;
            for (masks, f) in block.idx.iter().zip(block.fsb.chunks_exact(L)) {
                let fv = _mm512_loadu_pd(f.as_ptr());
                let mut y = zero;
                for &m in masks {
                    y = _mm512_add_pd(y, _mm512_loadu_pd(block.zt.as_ptr().add(m as usize * L)));
                }
                // NEQ_UQ: NaN y counts as != 0 (scalar skip negated).
                let upd = active & _mm512_cmp_pd_mask::<_CMP_NEQ_UQ>(y, zero);
                let factor = _mm512_div_pd(fv, y);
                for &m in masks {
                    let row = block.zt.as_mut_ptr().add(m as usize * L);
                    let old = _mm512_loadu_pd(row);
                    // Masked multiply: frozen / y==0 lanes keep `old`.
                    let new = _mm512_mask_mul_pd(old, upd, old, factor);
                    let diff = _mm512_abs_pd(_mm512_sub_pd(new, old));
                    change = _mm512_mask_add_pd(change, upd, change, diff);
                    _mm512_storeu_pd(row, new);
                }
            }
            sweep += 1;
            for l in 0..L {
                if active & (1 << l) != 0 {
                    block.sweeps[l] += 1;
                }
            }
            // GE_OQ is false for NaN change — the NaN-safe freeze.
            active &= _mm512_cmp_pd_mask::<_CMP_GE_OQ>(change, thr);
        }
    }
}

/// Appendix A.8: maximum-entropy estimation by iterative scaling.
///
/// Besides the `(λ choose 2)` positive-quadrant answers, this uses the 1-D
/// answers `f_i` of each queried interval to derive all four
/// sign-combination constraints per pair:
/// `f(+,+) = f_{ij}`, `f(+,−) = f_i − f_{ij}`, `f(−,+) = f_j − f_{ij}`,
/// `f(−,−) = 1 − f_i − f_j + f_{ij}` (each clamped to `[0, 1]`), plus
/// normalization of `z` to total mass 1 each sweep.
pub fn max_entropy(
    lambda: usize,
    pair_answers: &[PairAnswer],
    one_d_answers: &[f64],
    threshold: f64,
    max_iters: usize,
) -> Vec<f64> {
    assert!((2..=20).contains(&lambda), "lambda out of range");
    assert_eq!(one_d_answers.len(), lambda, "one 1-D answer per position");
    let size = 1usize << lambda;
    let mut z = vec![1.0 / size as f64; size];
    let mut change = f64::INFINITY;
    let mut sweep = 0usize;
    while sweep < max_iters.max(1) && change >= threshold {
        change = 0.0;
        for pa in pair_answers {
            let (bi, bj) = (1usize << pa.i, 1usize << pa.j);
            let fi = one_d_answers[pa.i].clamp(0.0, 1.0);
            let fj = one_d_answers[pa.j].clamp(0.0, 1.0);
            let fij = pa.f.clamp(0.0, 1.0);
            // Constraints for the four sign quadrants of the pair.
            let quadrants = [
                (bi | bj, bi | bj, fij),
                (bi | bj, bi, (fi - fij).clamp(0.0, 1.0)),
                (bi | bj, bj, (fj - fij).clamp(0.0, 1.0)),
                (bi | bj, 0, (1.0 - fi - fj + fij).clamp(0.0, 1.0)),
            ];
            for (select, want, target) in quadrants {
                let mut y = 0.0;
                for (mask, &v) in z.iter().enumerate() {
                    if mask & select == want {
                        y += v;
                    }
                }
                if y == 0.0 {
                    continue;
                }
                let factor = target / y;
                for (mask, v) in z.iter_mut().enumerate() {
                    if mask & select == want {
                        let new = *v * factor;
                        change += (new - *v).abs();
                        *v = new;
                    }
                }
            }
        }
        // Normalization constraint.
        let total: f64 = z.iter().sum();
        if total > 0.0 {
            for v in z.iter_mut() {
                *v /= total;
            }
        }
        sweep += 1;
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds all pair answers for independent attributes with marginal
    /// interval masses `f`.
    fn independent_pairs(f: &[f64]) -> Vec<PairAnswer> {
        let mut out = Vec::new();
        for i in 0..f.len() {
            for j in (i + 1)..f.len() {
                out.push(PairAnswer {
                    i,
                    j,
                    f: f[i] * f[j],
                });
            }
        }
        out
    }

    #[test]
    fn exact_product_case_lambda3() {
        // Independent attributes: the constraint set is consistent and the
        // answer should approach the product (the max-entropy solution).
        let f = [0.5, 0.5, 0.5];
        let est = estimate_lambda_answer(3, &independent_pairs(&f), 1e-12, 500);
        let want = 0.125;
        assert!((est - want).abs() < 0.02, "est {est} want {want}");
    }

    #[test]
    fn symmetric_lambda4() {
        let f = [0.5; 4];
        let est = estimate_lambda_answer(4, &independent_pairs(&f), 1e-12, 500);
        assert!((est - 0.0625).abs() < 0.02, "est {est}");
    }

    #[test]
    fn perfectly_correlated_pairs() {
        // All pairwise answers 0.5 and marginals 0.5: the consistent joints
        // put mass 0.5 on "all in" and 0.5 on "all out"; Algorithm 2 should
        // estimate z[full] near 0.5, far above the product 0.125.
        let pairs: Vec<PairAnswer> = (0..3)
            .flat_map(|i| ((i + 1)..3).map(move |j| PairAnswer { i, j, f: 0.5 }))
            .collect();
        let est = estimate_lambda_answer(3, &pairs, 1e-12, 500);
        // Algorithm 2's pairwise log-linear family cannot express the exact
        // two-point joint (that needs higher-order terms), but the estimate
        // must land far above the independence product 0.125.
        assert!(est > 0.25, "correlated estimate {est}");
    }

    #[test]
    fn zero_pair_answer_forces_zero() {
        // If one 2-D answer is 0, the full conjunction must be 0.
        let mut pairs = independent_pairs(&[0.5, 0.5, 0.5]);
        pairs[0].f = 0.0;
        let est = estimate_lambda_answer(3, &pairs, 1e-12, 500);
        assert!(est.abs() < 1e-9, "est {est}");
    }

    #[test]
    fn convergence_observer_reports_decay() {
        let pairs = independent_pairs(&[0.4, 0.6, 0.3, 0.7]);
        let mut trace = Vec::new();
        let mut obs = |s: usize, ch: f64| trace.push((s, ch));
        let _ = weighted_update_observed(4, &pairs, 1e-12, 200, Some(&mut obs));
        assert!(trace.len() >= 2);
        let first = trace[0].1;
        let last = trace.last().unwrap().1;
        assert!(
            last < first,
            "change must decay: first {first}, last {last}"
        );
    }

    #[test]
    fn subcube_path_matches_reference_bits() {
        // The dedicated sweep lives in tests/estimator_prop.rs; this is
        // the quick in-crate anchor.
        for lambda in 2..=6usize {
            let f: Vec<f64> = (0..lambda).map(|i| 0.3 + 0.1 * i as f64).collect();
            let pairs = independent_pairs(&f);
            let a = weighted_update(lambda, &pairs, 1e-9, 100);
            let b = weighted_update_reference(lambda, &pairs, 1e-9, 100);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "lambda {lambda}");
            }
        }
    }

    #[test]
    fn batch_matches_scalar_bits() {
        let lambda = 4usize;
        let pair_pos: Vec<(usize, usize)> = (0..lambda)
            .flat_map(|i| ((i + 1)..lambda).map(move |j| (i, j)))
            .collect();
        // 11 queries: every lane remainder of one full block plus change.
        let mut fs = Vec::new();
        let mut scalar = Vec::new();
        for q in 0..11usize {
            let f: Vec<f64> = (0..lambda)
                .map(|i| 0.2 + 0.07 * ((q + i) % 9) as f64)
                .collect();
            let pairs = independent_pairs(&f);
            fs.extend(pairs.iter().map(|pa| pa.f));
            scalar.push(estimate_lambda_answer(lambda, &pairs, 1e-9, 100));
        }
        let batch = weighted_update_batch(lambda, &pair_pos, &fs, 1e-9, 100);
        assert_eq!(batch.answers.len(), 11);
        for (a, b) in batch.answers.iter().zip(&scalar) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn max_entropy_matches_weighted_update_on_consistent_inputs() {
        let f = [0.4, 0.5, 0.6];
        let pairs = independent_pairs(&f);
        let wu = estimate_lambda_answer(3, &pairs, 1e-12, 500);
        let me = max_entropy(3, &pairs, &f, 1e-12, 500);
        let me_ans = me[7];
        let want = 0.4 * 0.5 * 0.6;
        assert!((wu - want).abs() < 0.03, "wu {wu}");
        assert!((me_ans - want).abs() < 0.01, "me {me_ans}");
        // Max-entropy z is a proper distribution.
        assert!((me.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!(me.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn max_entropy_handles_correlation_better_with_marginals() {
        // Correlated case: f_i = 0.5, f_ij = 0.45 (near-perfect correlation).
        let pairs: Vec<PairAnswer> = (0..3)
            .flat_map(|i| ((i + 1)..3).map(move |j| PairAnswer { i, j, f: 0.45 }))
            .collect();
        let me = max_entropy(3, &pairs, &[0.5, 0.5, 0.5], 1e-12, 1000);
        let est = me[7];
        assert!(est > 0.3, "correlated max-ent estimate {est}");
    }

    #[test]
    #[should_panic(expected = "lambda out of range")]
    fn lambda_one_is_rejected() {
        let _ = weighted_update(1, &[], 1e-9, 10);
    }
}
