//! HDG: Hybrid-Dimensional Grids — the paper's headline contribution (§4).
//!
//! HDG extends TDG with `d` finer-grained 1-D grids (granularity `g1`)
//! alongside the `(d choose 2)` 2-D grids (granularity `g2`), dividing
//! users into `d + (d choose 2)` groups. After Phase-2 post-processing,
//! each pair's three grids `{G(j), G(k), G(j,k)}` are fused into a `c × c`
//! response matrix by Algorithm 1; a 2-D query then takes fully-covered
//! cells from the (lower-variance) 2-D grid and the partially-covered
//! boundary from the response matrix — replacing TDG's uniformity
//! assumption with the 1-D grids' finer distribution information.
//!
//! Response matrices for all `(d choose 2)` pairs are built **eagerly**
//! when the model is constructed (fit or snapshot restore) and stored in
//! an immutable indexed `Vec`, so the answer path is lock-free: a query
//! thread indexes straight into its pair's cache with no mutex, no
//! `Arc` bump, and no cold-pair hiccup. The Algorithm-1 cost lands at
//! publish/restore time — where ingestion already pays milliseconds and a
//! hostile snapshot fails fast before it can serve — instead of on the
//! first unlucky query. Snapshot caps (`crate::snapshot`) bound the total
//! at the same ceiling the lazy cache eventually reached anyway under
//! mixed workloads, which touch every pair.

use crate::config::MechanismConfig;
use crate::pair_model::{PairAnswerer, Rect2d, SplitModel};
use crate::{Mechanism, MechanismError, Model};
use privmdr_data::Dataset;
use privmdr_grid::consistency::post_process;
use privmdr_grid::guideline::{choose_granularities, default_sigma, Granularities};
use privmdr_grid::pairs::{pair_index, pair_list};
use privmdr_grid::response_matrix::{build_response_matrix, ResponseMatrix};
use privmdr_grid::{Grid1d, Grid2d, PrefixSum2d};
use privmdr_oracles::partition::{partition_users, proportional_sizes};
use privmdr_util::rng::derive_rng;

/// The HDG mechanism.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hdg {
    /// Shared configuration (guideline constants, σ, overrides, mode).
    pub config: MechanismConfig,
}

impl Hdg {
    /// HDG with the given configuration.
    pub fn new(config: MechanismConfig) -> Self {
        Hdg { config }
    }

    /// The granularities HDG would pick for `(n, d, ε, c)`.
    pub fn granularities(&self, n: usize, d: usize, epsilon: f64, c: usize) -> Granularities {
        self.config
            .granularity_override
            .unwrap_or_else(|| choose_granularities(n, d, epsilon, c, &self.config.guideline))
    }
}

/// Per-pair answering state, built eagerly at model construction.
struct PairCache {
    /// Prefix sums over the pair's `g2 × g2` grid frequencies.
    grid_prefix: PrefixSum2d,
    /// Algorithm-1 response matrix with its own prefix table.
    matrix: ResponseMatrix,
}

struct HdgAnswerer {
    d: usize,
    c: usize,
    one_d: Vec<Grid1d>,
    two_d: Vec<Grid2d>,
    /// One [`PairCache`] per pair, indexed by `pair_index` — immutable
    /// after construction, so answering never takes a lock.
    caches: Vec<PairCache>,
}

impl HdgAnswerer {
    /// Runs Algorithm 1 for every pair and assembles the lock-free
    /// answerer. Shared by the fit and snapshot-restore paths.
    fn build(
        d: usize,
        c: usize,
        one_d: Vec<Grid1d>,
        two_d: Vec<Grid2d>,
        rm_threshold: f64,
        rm_max_iters: usize,
    ) -> Self {
        let caches = two_d
            .iter()
            .map(|grid| {
                let (j, k) = grid.attrs();
                let matrix =
                    build_response_matrix(&one_d[j], &one_d[k], grid, rm_threshold, rm_max_iters);
                let g2 = grid.granularity();
                PairCache {
                    grid_prefix: PrefixSum2d::build(&grid.freqs, g2, g2),
                    matrix,
                }
            })
            .collect();
        HdgAnswerer {
            d,
            c,
            one_d,
            two_d,
            caches,
        }
    }

    /// Phase 3 for one rectangle against an already-fetched pair cache.
    fn answer_2d_cached(
        cache: &PairCache,
        w: usize,
        rect @ ((lo_j, hi_j), (lo_k, hi_k)): Rect2d,
    ) -> f64 {
        // Fully-covered cell block [a0, a1] × [b0, b1] (possibly empty).
        let a0 = lo_j.div_ceil(w);
        let a1 = (hi_j + 1) / w; // exclusive cell end
        let b0 = lo_k.div_ceil(w);
        let b1 = (hi_k + 1) / w;
        if a0 >= a1 || b0 >= b1 {
            // No fully-covered cells: everything comes from the matrix.
            return cache.matrix.rect_sum(rect);
        }
        let grid_part = cache.grid_prefix.rect(a0, a1, b0, b1);
        // Boundary frame = query rect minus the inner value rectangle.
        let inner = ((a0 * w, a1 * w - 1), (b0 * w, b1 * w - 1));
        grid_part + cache.matrix.rect_sum(rect) - cache.matrix.rect_sum(inner)
    }
}

impl PairAnswerer for HdgAnswerer {
    fn domain(&self) -> usize {
        self.c
    }

    /// Phase 3 for a 2-D query: fully-covered cells from the grid,
    /// partially-covered boundary from the response matrix.
    fn answer_2d(&self, (j, k): (usize, usize), rect: Rect2d) -> f64 {
        let pair_idx = pair_index(j, k, self.d);
        let w = self.two_d[pair_idx].cell_width();
        Self::answer_2d_cached(&self.caches[pair_idx], w, rect)
    }

    /// Batch form: the pair's cache and cell width are fetched once for
    /// the whole rectangle group instead of once per rectangle.
    fn answer_2d_batch(&self, (j, k): (usize, usize), rects: &[Rect2d], out: &mut Vec<f64>) {
        let pair_idx = pair_index(j, k, self.d);
        let cache = &self.caches[pair_idx];
        let w = self.two_d[pair_idx].cell_width();
        out.extend(
            rects
                .iter()
                .map(|&rect| Self::answer_2d_cached(cache, w, rect)),
        );
    }

    fn answer_1d(&self, attr: usize, (lo, hi): (usize, usize)) -> f64 {
        // The finer-grained 1-D grid answers single-attribute ranges.
        self.one_d[attr].answer_uniform(lo, hi)
    }
}

/// Checks that `one_d`/`two_d` form a complete grid set: one 1-D grid per
/// attribute in order, one 2-D grid per pair in `pair_list` order, all over
/// one domain. Returns `(d, c)`.
pub(crate) fn validate_grid_set(
    one_d: &[Grid1d],
    two_d: &[Grid2d],
) -> Result<(usize, usize), MechanismError> {
    let d = one_d.len();
    if d < 2 {
        return Err(MechanismError::Invalid(
            "HDG needs at least 2 attributes".into(),
        ));
    }
    let c = one_d[0].domain();
    if one_d
        .iter()
        .enumerate()
        .any(|(t, g)| g.attr() != t || g.domain() != c)
    {
        return Err(MechanismError::Invalid(
            "1-D grids must cover attributes 0..d in order over one domain".into(),
        ));
    }
    let expected = pair_list(d);
    if two_d.len() != expected.len()
        || two_d
            .iter()
            .zip(&expected)
            .any(|(g, &p)| g.attrs() != p || g.domain() != c)
    {
        return Err(MechanismError::Invalid(
            "2-D grids must cover all pairs in pair_list order over one domain".into(),
        ));
    }
    Ok((d, c))
}

impl Hdg {
    /// Builds an HDG model from externally collected raw grids (e.g. a real
    /// client/server deployment feeding reports through
    /// `privmdr-protocol`). Applies Phase-2 post-processing per the
    /// configuration, then wraps the answering machinery.
    ///
    /// Requires one 1-D grid per attribute (in attribute order) and one 2-D
    /// grid per pair in `pair_list` order, all over the same domain.
    pub fn model_from_grids(
        &self,
        one_d: Vec<Grid1d>,
        two_d: Vec<Grid2d>,
    ) -> Result<Box<dyn Model>, MechanismError> {
        let (one_d, two_d) = self.post_process_grids(one_d, two_d)?;
        self.model_from_processed_grids(one_d, two_d)
    }

    /// Validates a raw grid set and runs Phase-2 post-processing on it.
    pub(crate) fn post_process_grids(
        &self,
        one_d: Vec<Grid1d>,
        mut two_d: Vec<Grid2d>,
    ) -> Result<(Vec<Grid1d>, Vec<Grid2d>), MechanismError> {
        let (d, _) = validate_grid_set(&one_d, &two_d)?;
        let mut one_d_opt: Vec<Option<Grid1d>> = one_d.into_iter().map(Some).collect();
        post_process(d, &mut one_d_opt, &mut two_d, &self.config.post_process);
        let one_d: Vec<Grid1d> = one_d_opt
            .into_iter()
            .map(|g| g.expect("all present"))
            .collect();
        Ok((one_d, two_d))
    }

    /// Builds an HDG model from grids that are **already** post-processed —
    /// the snapshot-restore path (`crate::snapshot`). Phase 2 is not
    /// idempotent, so restoring a finalized fit must skip it; this
    /// constructor wraps the answering machinery around the grids verbatim.
    pub fn model_from_processed_grids(
        &self,
        one_d: Vec<Grid1d>,
        two_d: Vec<Grid2d>,
    ) -> Result<Box<dyn Model>, MechanismError> {
        let (d, c) = validate_grid_set(&one_d, &two_d)?;
        Ok(Box::new(SplitModel::new(
            HdgAnswerer::build(
                d,
                c,
                one_d,
                two_d,
                self.config.rm_threshold,
                self.config.rm_max_iters,
            ),
            &self.config,
        )))
    }
}

impl Mechanism for Hdg {
    fn name(&self) -> &'static str {
        "HDG"
    }

    fn fit(&self, ds: &Dataset, epsilon: f64, seed: u64) -> Result<Box<dyn Model>, MechanismError> {
        let (d, c) = (ds.dims(), ds.domain());
        let (one_d, two_d) = fit_hdg_grids(ds, epsilon, seed, &self.config)?;
        Ok(Box::new(SplitModel::new(
            HdgAnswerer::build(
                d,
                c,
                one_d,
                two_d,
                self.config.rm_threshold,
                self.config.rm_max_iters,
            ),
            &self.config,
        )))
    }
}

/// Runs HDG Phases 1–2 and returns the post-processed grids.
///
/// Exposed separately so the Fig. 17 convergence experiment (and any other
/// diagnostic) can inspect the exact grids HDG feeds into Algorithm 1.
pub fn fit_hdg_grids(
    ds: &Dataset,
    epsilon: f64,
    seed: u64,
    config: &MechanismConfig,
) -> Result<(Vec<Grid1d>, Vec<Grid2d>), MechanismError> {
    let (n, d, c) = (ds.len(), ds.dims(), ds.domain());
    if d < 2 {
        return Err(MechanismError::Invalid(
            "HDG needs at least 2 attributes".into(),
        ));
    }
    let hdg = Hdg::new(*config);
    let Granularities { g1, g2 } = hdg.granularities(n, d, epsilon, c);
    let pairs = pair_list(d);
    let m2 = pairs.len();

    // Split users: fraction σ to the d 1-D groups, the rest to the
    // (d choose 2) 2-D groups, equal populations within each class.
    let sigma = config
        .guideline
        .sigma
        .unwrap_or_else(|| default_sigma(d))
        .clamp(0.0, 1.0);
    let mut weights = vec![sigma / d as f64; d];
    weights.extend(std::iter::repeat_n((1.0 - sigma) / m2 as f64, m2));
    let mut rng = derive_rng(seed, &[0x48_4447]); // "HDG"
    let groups = partition_users(n, &proportional_sizes(n, &weights), &mut rng);

    let mut one_d: Vec<Grid1d> = Vec::with_capacity(d);
    for (t, users) in groups[..d].iter().enumerate() {
        let values = ds.gather_attr(t, users);
        one_d.push(Grid1d::collect_with(
            t,
            g1,
            c,
            &values,
            epsilon,
            config.oracle,
            config.sim_mode,
            &mut rng,
        )?);
    }
    let mut two_d: Vec<Grid2d> = Vec::with_capacity(m2);
    for (&pair, users) in pairs.iter().zip(&groups[d..]) {
        let values = ds.gather_pair(pair, users);
        two_d.push(Grid2d::collect_with(
            pair,
            g2,
            c,
            &values,
            epsilon,
            config.oracle,
            config.sim_mode,
            &mut rng,
        )?);
    }

    // Phase 2.
    let mut one_d_opt: Vec<Option<Grid1d>> = one_d.into_iter().map(Some).collect();
    post_process(d, &mut one_d_opt, &mut two_d, &config.post_process);
    let one_d: Vec<Grid1d> = one_d_opt
        .into_iter()
        .map(|g| g.expect("all 1-D grids present"))
        .collect();
    Ok((one_d, two_d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmdr_data::DatasetSpec;
    use privmdr_query::workload::{true_answers, WorkloadBuilder};
    use privmdr_query::RangeQuery;

    #[test]
    fn hdg_answers_2d_queries_well() {
        let ds = DatasetSpec::Normal { rho: 0.8 }.generate(100_000, 4, 64, 23);
        let model = Hdg::default().fit(&ds, 1.0, 21).unwrap();
        let wl = WorkloadBuilder::new(4, 64, 22);
        let queries = wl.random(2, 0.5, 40);
        let truths = true_answers(&ds, &queries);
        let estimates = model.answer_all(&queries);
        let mae = privmdr_query::mae(&estimates, &truths);
        assert!(mae < 0.06, "MAE {mae}");
    }

    #[test]
    fn hdg_beats_tdg_on_skewed_data() {
        // The headline claim: 1-D grids correct the uniformity assumption.
        // Averaged over repeats to make the comparison stable.
        use crate::tdg::Tdg;
        let ds = DatasetSpec::Ipums.generate(150_000, 4, 64, 24);
        let wl = WorkloadBuilder::new(4, 64, 23);
        let queries = wl.random(2, 0.5, 50);
        let truths = true_answers(&ds, &queries);
        let (mut hdg_mae, mut tdg_mae) = (0.0, 0.0);
        for seed in 0..4 {
            let hdg = Hdg::default().fit(&ds, 1.0, seed).unwrap();
            hdg_mae += privmdr_query::mae(&hdg.answer_all(&queries), &truths);
            let tdg = Tdg::default().fit(&ds, 1.0, seed).unwrap();
            tdg_mae += privmdr_query::mae(&tdg.answer_all(&queries), &truths);
        }
        assert!(
            hdg_mae < tdg_mae,
            "HDG {hdg_mae} should beat TDG {tdg_mae} on skewed data"
        );
    }

    #[test]
    fn full_domain_query_is_near_one() {
        let ds = DatasetSpec::Laplace { rho: 0.8 }.generate(50_000, 3, 32, 25);
        let model = Hdg::default().fit(&ds, 1.0, 22).unwrap();
        let q = RangeQuery::from_triples(&[(0, 0, 31), (1, 0, 31)], 32).unwrap();
        let est = model.answer(&q);
        assert!((est - 1.0).abs() < 0.05, "est {est}");
    }

    #[test]
    fn lambda4_estimation_is_sane() {
        let ds = DatasetSpec::Normal { rho: 0.8 }.generate(100_000, 5, 64, 26);
        let model = Hdg::default().fit(&ds, 1.0, 23).unwrap();
        let wl = WorkloadBuilder::new(5, 64, 24);
        let queries = wl.random(4, 0.5, 20);
        let truths = true_answers(&ds, &queries);
        let estimates = model.answer_all(&queries);
        let mae = privmdr_query::mae(&estimates, &truths);
        // Estimation error dominates lambda = 4 on strongly correlated data
        // (the paper's own Fig. 1f sits near 0.2-0.3 at eps = 1).
        assert!(mae < 0.3, "MAE {mae}");
    }

    #[test]
    fn sigma_override_changes_split() {
        let cfg = MechanismConfig::default().with_sigma(0.6);
        let ds = DatasetSpec::Bfive.generate(20_000, 3, 32, 27);
        // Just exercises the weighted partition path.
        let model = Hdg::new(cfg).fit(&ds, 1.0, 24).unwrap();
        let q = RangeQuery::from_triples(&[(0, 0, 15)], 32).unwrap();
        assert!(model.answer(&q).is_finite());
    }

    #[test]
    fn ihdg_ablation_runs_without_post_processing() {
        let cfg = MechanismConfig::default().without_post_process();
        let ds = DatasetSpec::Normal { rho: 0.8 }.generate(30_000, 3, 32, 28);
        let model = Hdg::new(cfg).fit(&ds, 1.0, 25).unwrap();
        let q = RangeQuery::from_triples(&[(0, 0, 15), (1, 0, 15)], 32).unwrap();
        assert!(model.answer(&q).is_finite());
    }
}
