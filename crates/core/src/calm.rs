//! CALM: marginal release adapted to range queries (paper §3.2; Zhang et
//! al., CCS'18).
//!
//! CALM collects low-dimensional (here 2-D, the choice the paper evaluates)
//! marginals — one full `c × c` joint histogram per attribute pair, each
//! from its own user group — enforces consistency across them, and answers
//! a range query by summing the noisy marginal cells inside it. Capturing
//! only pairwise correlations solves challenges 1 and 2, but summing
//! `(c·ω)²` noisy cells per query is exactly the large-domain failure
//! (challenge 3) that grids fix with binning.

use crate::config::MechanismConfig;
use crate::pair_model::{PairAnswerer, SplitModel};
use crate::{Mechanism, MechanismError, Model};
use privmdr_data::Dataset;
use privmdr_grid::consistency::post_process;
use privmdr_grid::pairs::{pair_index, pair_list};
use privmdr_grid::{Grid2d, PrefixSum2d};
use privmdr_oracles::partition::partition_equal;
use privmdr_util::rng::derive_rng;

/// The CALM baseline mechanism (2-D marginal release).
#[derive(Debug, Clone, Copy, Default)]
pub struct Calm {
    /// Shared configuration (simulation mode, post-processing rounds).
    pub config: MechanismConfig,
}

impl Calm {
    /// CALM with the given configuration.
    pub fn new(config: MechanismConfig) -> Self {
        Calm { config }
    }
}

struct CalmAnswerer {
    d: usize,
    c: usize,
    /// Prefix sums over each pair's `c × c` marginal, [`pair_list`] order.
    prefixes: Vec<PrefixSum2d>,
}

impl PairAnswerer for CalmAnswerer {
    fn domain(&self) -> usize {
        self.c
    }

    fn answer_2d(
        &self,
        (j, k): (usize, usize),
        ((lo_j, hi_j), (lo_k, hi_k)): ((usize, usize), (usize, usize)),
    ) -> f64 {
        self.prefixes[pair_index(j, k, self.d)].rect_inclusive(lo_j, hi_j, lo_k, hi_k)
    }

    fn answer_1d(&self, attr: usize, (lo, hi): (usize, usize)) -> f64 {
        // Marginalize the first pair containing `attr`.
        let (pair, first) = first_pair_with(attr, self.d);
        let p = &self.prefixes[pair];
        if first {
            p.rect_inclusive(lo, hi, 0, self.c - 1)
        } else {
            p.rect_inclusive(0, self.c - 1, lo, hi)
        }
    }
}

/// Index (and orientation) of the first pair containing `attr`.
pub(crate) fn first_pair_with(attr: usize, d: usize) -> (usize, bool) {
    let (j, k) = if attr == 0 { (0, 1) } else { (0, attr) };
    (pair_index(j, k, d), attr == j)
}

impl Mechanism for Calm {
    fn name(&self) -> &'static str {
        "CALM"
    }

    fn fit(&self, ds: &Dataset, epsilon: f64, seed: u64) -> Result<Box<dyn Model>, MechanismError> {
        let (n, d, c) = (ds.len(), ds.dims(), ds.domain());
        if d < 2 {
            return Err(MechanismError::Invalid(
                "CALM needs at least 2 attributes".into(),
            ));
        }
        let pairs = pair_list(d);
        let mut rng = derive_rng(seed, &[0x4341_4c4d]); // "CALM"
        let groups = partition_equal(n, pairs.len(), &mut rng);

        // Phase 1: one full-resolution (g = c) 2-D marginal per pair.
        let mut marginals: Vec<Grid2d> = Vec::with_capacity(pairs.len());
        for (&pair, users) in pairs.iter().zip(&groups) {
            let values = ds.gather_pair(pair, users);
            marginals.push(Grid2d::collect(
                pair,
                c,
                c,
                &values,
                epsilon,
                self.config.sim_mode,
                &mut rng,
            )?);
        }

        // Phase 2: CALM's overall consistency + non-negativity.
        let mut no_one_d: Vec<Option<privmdr_grid::Grid1d>> = (0..d).map(|_| None).collect();
        post_process(d, &mut no_one_d, &mut marginals, &self.config.post_process);

        let prefixes = marginals
            .iter()
            .map(|g| PrefixSum2d::build(&g.freqs, c, c))
            .collect();
        Ok(Box::new(SplitModel::new(
            CalmAnswerer { d, c, prefixes },
            &self.config,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmdr_data::DatasetSpec;
    use privmdr_query::workload::{true_answers, WorkloadBuilder};
    use privmdr_query::RangeQuery;

    #[test]
    fn calm_answers_2d_queries_reasonably() {
        let ds = DatasetSpec::Normal { rho: 0.8 }.generate(80_000, 3, 16, 9);
        let model = Calm::default().fit(&ds, 2.0, 4).unwrap();
        let wl = WorkloadBuilder::new(3, 16, 5);
        let queries = wl.random(2, 0.5, 40);
        let truths = true_answers(&ds, &queries);
        let estimates = model.answer_all(&queries);
        let mae = privmdr_query::mae(&estimates, &truths);
        assert!(mae < 0.08, "MAE {mae}");
    }

    #[test]
    fn calm_captures_correlation_unlike_msw() {
        let ds = DatasetSpec::Normal { rho: 0.95 }.generate(80_000, 2, 16, 10);
        let model = Calm::default().fit(&ds, 2.0, 5).unwrap();
        let q = RangeQuery::from_triples(&[(0, 0, 7), (1, 0, 7)], 16).unwrap();
        let truth = q.true_answer(&ds);
        let est = model.answer(&q);
        assert!((est - truth).abs() < 0.1, "est {est} truth {truth}");
    }

    #[test]
    fn calm_higher_lambda_via_estimation() {
        let ds = DatasetSpec::Normal { rho: 0.0 }.generate(80_000, 4, 16, 11);
        let model = Calm::default().fit(&ds, 2.0, 6).unwrap();
        let q =
            RangeQuery::from_triples(&[(0, 0, 7), (1, 0, 7), (2, 0, 7), (3, 0, 7)], 16).unwrap();
        let truth = q.true_answer(&ds);
        let est = model.answer(&q);
        assert!((est - truth).abs() < 0.08, "est {est} truth {truth}");
    }

    #[test]
    fn rejects_single_attribute() {
        let ds = DatasetSpec::Bfive.generate(100, 1, 16, 1);
        assert!(Calm::default().fit(&ds, 1.0, 0).is_err());
    }
}
