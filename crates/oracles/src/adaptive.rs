//! Adaptive oracle selection (paper §2.2, last paragraph).
//!
//! GRR's variance grows with the domain size `c` while OLH's does not, so
//! "for a small c (such that c − 2 < 3eᵋ), GRR is better; but for a large c,
//! OLH is preferable". CALM uses this rule; the paper's grid mechanisms pin
//! OLH, but the rule is exposed here as a configuration option.

use crate::grr::Grr;
use crate::olh::Olh;
use crate::{OracleError, SimMode};
use rand::Rng;

/// Which concrete oracle the adaptive rule selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleChoice {
    /// Generalized Randomized Response.
    Grr,
    /// Optimized Local Hash.
    Olh,
}

/// Applies the variance-comparison rule: GRR iff `c − 2 < 3eᵋ`.
pub fn choose_oracle(epsilon: f64, domain: usize) -> OracleChoice {
    if (domain as f64) - 2.0 < 3.0 * epsilon.exp() {
        OracleChoice::Grr
    } else {
        OracleChoice::Olh
    }
}

/// A frequency oracle that dispatches to GRR or OLH by the adaptive rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdaptiveOracle {
    /// GRR branch (small domains).
    Grr(Grr),
    /// OLH branch (large domains).
    Olh(Olh),
}

impl AdaptiveOracle {
    /// Creates the variance-optimal oracle for `(epsilon, domain)`.
    pub fn new(epsilon: f64, domain: usize) -> Result<Self, OracleError> {
        Ok(match choose_oracle(epsilon, domain) {
            OracleChoice::Grr => AdaptiveOracle::Grr(Grr::new(epsilon, domain)?),
            OracleChoice::Olh => AdaptiveOracle::Olh(Olh::new(epsilon, domain)?),
        })
    }

    /// Collects frequency estimates from true `values`.
    pub fn collect<R: Rng + ?Sized>(&self, values: &[u32], mode: SimMode, rng: &mut R) -> Vec<f64> {
        match self {
            AdaptiveOracle::Grr(g) => g.collect(values, mode, rng),
            AdaptiveOracle::Olh(o) => o.collect(values, mode, rng),
        }
    }

    /// Single-frequency estimation variance of the selected branch.
    pub fn variance(&self, n: usize) -> f64 {
        match self {
            AdaptiveOracle::Grr(g) => g.variance(n),
            AdaptiveOracle::Olh(o) => o.variance(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_matches_variance_ordering() {
        for eps in [0.2, 0.5, 1.0, 2.0] {
            for c in [2usize, 4, 8, 16, 64, 256] {
                let choice = choose_oracle(eps, c);
                let grr_var = Grr::new(eps, c).unwrap().variance(1000);
                let olh_var = Olh::new(eps, c).unwrap().variance(1000);
                // The rule is derived from the ideal (unrounded) OLH variance
                // 4e/(e-1)^2; allow the rounded-c' boundary cases 20% slack.
                match choice {
                    OracleChoice::Grr => {
                        assert!(grr_var <= olh_var * 1.2, "eps {eps} c {c}")
                    }
                    OracleChoice::Olh => {
                        assert!(olh_var <= grr_var * 1.2, "eps {eps} c {c}")
                    }
                }
            }
        }
    }

    #[test]
    fn small_domains_pick_grr_large_pick_olh() {
        assert_eq!(choose_oracle(1.0, 4), OracleChoice::Grr);
        assert_eq!(choose_oracle(1.0, 64), OracleChoice::Olh);
    }

    #[test]
    fn adaptive_collect_runs_both_branches() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let values: Vec<u32> = (0..2000u32).map(|i| i % 4).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let small = AdaptiveOracle::new(1.0, 4).unwrap();
        assert!(matches!(small, AdaptiveOracle::Grr(_)));
        let f = small.collect(&values, SimMode::Fast, &mut rng);
        assert_eq!(f.len(), 4);

        let values: Vec<u32> = (0..2000u32).map(|i| i % 64).collect();
        let large = AdaptiveOracle::new(1.0, 64).unwrap();
        assert!(matches!(large, AdaptiveOracle::Olh(_)));
        let f = large.collect(&values, SimMode::Fast, &mut rng);
        assert_eq!(f.len(), 64);
    }
}
