//! Adaptive oracle selection (paper §2.2, last paragraph).
//!
//! GRR's variance grows with the domain size `c` while OLH's does not, so
//! "for a small c (such that c − 2 < 3eᵋ), GRR is better; but for a large c,
//! OLH is preferable". CALM uses this rule; the paper's grid mechanisms pin
//! OLH, but the rule is exposed here as a configuration option.

use crate::grr::Grr;
use crate::olh::Olh;
use crate::sw::SquareWave;
use crate::wheel::Wheel;
use crate::{FrequencyOracle, OracleError, SimMode};
use rand::Rng;

/// Which concrete oracle the adaptive rule selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleChoice {
    /// Generalized Randomized Response.
    Grr,
    /// Optimized Local Hash.
    Olh,
    /// The Wheel mechanism (OLH-equivalent variance, float reports).
    Wheel,
    /// Square Wave with EM reconstruction (ordinal domains; MSW substrate).
    Sw,
}

impl OracleChoice {
    /// Short lowercase name (CLI/JSON/wire-facing).
    pub fn name(self) -> &'static str {
        match self {
            OracleChoice::Grr => "grr",
            OracleChoice::Olh => "olh",
            OracleChoice::Wheel => "wheel",
            OracleChoice::Sw => "sw",
        }
    }
}

/// Applies the variance-comparison rule: GRR iff `c − 2 < 3eᵋ`.
pub fn choose_oracle(epsilon: f64, domain: usize) -> OracleChoice {
    if (domain as f64) - 2.0 < 3.0 * epsilon.exp() {
        OracleChoice::Grr
    } else {
        OracleChoice::Olh
    }
}

/// How a protocol session picks the frequency oracle for each report
/// group. The policy is public plan state: it is chosen by the aggregator,
/// published alongside the grid geometry, and applied per group to that
/// group's randomization domain (`g1` for 1-D grids, `g2²` for 2-D grids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OraclePolicy {
    /// Always OLH — the paper's grid default, variance independent of the
    /// domain size.
    #[default]
    Olh,
    /// Always GRR — cheaper reports and aggregation, best for small
    /// domains.
    Grr,
    /// Per-group adaptive selection by the paper's variance-crossover rule
    /// ([`choose_oracle`]: GRR iff `c − 2 < 3eᵋ`).
    Auto,
    /// Always the Wheel mechanism (paper §6) — OLH-equivalent variance with
    /// circle-point (`f64`) reports; exercises the wide wire encoding.
    Wheel,
    /// Always Square Wave — ordinal-domain reporting with EM
    /// reconstruction; the substrate the MSW approach builds on.
    Sw,
}

impl OraclePolicy {
    /// The concrete oracle this policy selects for `(epsilon, domain)`.
    pub fn select(self, epsilon: f64, domain: usize) -> OracleChoice {
        match self {
            OraclePolicy::Olh => OracleChoice::Olh,
            OraclePolicy::Grr => OracleChoice::Grr,
            OraclePolicy::Auto => choose_oracle(epsilon, domain),
            OraclePolicy::Wheel => OracleChoice::Wheel,
            OraclePolicy::Sw => OracleChoice::Sw,
        }
    }

    /// Builds the selected oracle for `(epsilon, domain)`.
    pub fn build(self, epsilon: f64, domain: usize) -> Result<AdaptiveOracle, OracleError> {
        AdaptiveOracle::from_choice(self.select(epsilon, domain), epsilon, domain)
    }

    /// Short lowercase name (CLI/JSON-facing).
    pub fn name(self) -> &'static str {
        match self {
            OraclePolicy::Olh => "olh",
            OraclePolicy::Grr => "grr",
            OraclePolicy::Auto => "auto",
            OraclePolicy::Wheel => "wheel",
            OraclePolicy::Sw => "sw",
        }
    }

    /// Parses a CLI-style name (`olh`, `grr`, `auto`, `wheel`, `sw`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "olh" => Ok(OraclePolicy::Olh),
            "grr" => Ok(OraclePolicy::Grr),
            "auto" => Ok(OraclePolicy::Auto),
            "wheel" => Ok(OraclePolicy::Wheel),
            "sw" => Ok(OraclePolicy::Sw),
            other => Err(format!(
                "unknown oracle '{other}' (expected olh|grr|auto|wheel|sw)"
            )),
        }
    }
}

impl std::fmt::Display for OraclePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A frequency oracle that dispatches to the policy-selected branch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdaptiveOracle {
    /// GRR branch (small domains).
    Grr(Grr),
    /// OLH branch (large domains).
    Olh(Olh),
    /// Wheel branch (explicit `wheel` policy).
    Wheel(Wheel),
    /// Square Wave branch (explicit `sw` policy; MSW substrate).
    Sw(SquareWave),
}

impl AdaptiveOracle {
    /// Creates the variance-optimal oracle for `(epsilon, domain)`.
    pub fn new(epsilon: f64, domain: usize) -> Result<Self, OracleError> {
        Self::from_choice(choose_oracle(epsilon, domain), epsilon, domain)
    }

    /// Constructs the branch a selection rule picked — the single
    /// construction site both [`AdaptiveOracle::new`] and
    /// [`OraclePolicy::build`] funnel through.
    pub fn from_choice(
        choice: OracleChoice,
        epsilon: f64,
        domain: usize,
    ) -> Result<Self, OracleError> {
        Ok(match choice {
            OracleChoice::Grr => AdaptiveOracle::Grr(Grr::new(epsilon, domain)?),
            OracleChoice::Olh => AdaptiveOracle::Olh(Olh::new(epsilon, domain)?),
            OracleChoice::Wheel => AdaptiveOracle::Wheel(Wheel::new(epsilon, domain)?),
            OracleChoice::Sw => AdaptiveOracle::Sw(SquareWave::new(epsilon, domain)?),
        })
    }

    /// Collects frequency estimates from true `values`.
    pub fn collect<R: Rng + ?Sized>(&self, values: &[u32], mode: SimMode, rng: &mut R) -> Vec<f64> {
        match self {
            AdaptiveOracle::Grr(g) => g.collect(values, mode, rng),
            AdaptiveOracle::Olh(o) => o.collect(values, mode, rng),
            AdaptiveOracle::Wheel(w) => w.collect(values, mode, rng),
            AdaptiveOracle::Sw(s) => s.collect(values, mode, rng),
        }
    }

    /// Single-frequency estimation variance of the selected branch.
    pub fn variance(&self, n: usize) -> f64 {
        match self {
            AdaptiveOracle::Grr(g) => g.variance(n),
            AdaptiveOracle::Olh(o) => o.variance(n),
            AdaptiveOracle::Wheel(w) => w.variance(n),
            AdaptiveOracle::Sw(s) => s.variance(n),
        }
    }

    /// Which branch is active.
    pub fn kind(&self) -> OracleChoice {
        match self {
            AdaptiveOracle::Grr(_) => OracleChoice::Grr,
            AdaptiveOracle::Olh(_) => OracleChoice::Olh,
            AdaptiveOracle::Wheel(_) => OracleChoice::Wheel,
            AdaptiveOracle::Sw(_) => OracleChoice::Sw,
        }
    }
}

/// The trait passthrough: an `AdaptiveOracle` *is* its selected branch.
/// Every method delegates to the concrete oracle's own implementation, so
/// dispatching through the enum (or through `dyn FrequencyOracle`) is
/// bit-identical to calling `Olh`/`Grr` directly — including the
/// block-transposed OLH support kernel.
impl FrequencyOracle for AdaptiveOracle {
    fn kind(&self) -> OracleChoice {
        AdaptiveOracle::kind(self)
    }

    fn domain(&self) -> usize {
        match self {
            AdaptiveOracle::Grr(g) => g.domain(),
            AdaptiveOracle::Olh(o) => o.domain(),
            AdaptiveOracle::Wheel(w) => w.domain(),
            AdaptiveOracle::Sw(s) => s.bins(),
        }
    }

    fn epsilon(&self) -> f64 {
        match self {
            AdaptiveOracle::Grr(g) => g.epsilon(),
            AdaptiveOracle::Olh(o) => o.epsilon(),
            AdaptiveOracle::Wheel(w) => FrequencyOracle::epsilon(w),
            AdaptiveOracle::Sw(s) => s.epsilon(),
        }
    }

    fn support_cells(&self) -> usize {
        match self {
            AdaptiveOracle::Grr(g) => FrequencyOracle::support_cells(g),
            AdaptiveOracle::Olh(o) => FrequencyOracle::support_cells(o),
            AdaptiveOracle::Wheel(w) => FrequencyOracle::support_cells(w),
            AdaptiveOracle::Sw(s) => FrequencyOracle::support_cells(s),
        }
    }

    fn randomize(&self, value: usize, rng: &mut dyn rand::RngCore) -> (u64, u64) {
        match self {
            AdaptiveOracle::Grr(g) => FrequencyOracle::randomize(g, value, rng),
            AdaptiveOracle::Olh(o) => FrequencyOracle::randomize(o, value, rng),
            AdaptiveOracle::Wheel(w) => FrequencyOracle::randomize(w, value, rng),
            AdaptiveOracle::Sw(s) => FrequencyOracle::randomize(s, value, rng),
        }
    }

    fn add_support_batch(&self, reports: &[(u64, u64)], supports: &mut [u64]) {
        match self {
            AdaptiveOracle::Grr(g) => g.add_support_batch(reports, supports),
            AdaptiveOracle::Olh(o) => o.add_support_batch(reports, supports),
            AdaptiveOracle::Wheel(w) => Wheel::add_support_batch(w, reports, supports),
            AdaptiveOracle::Sw(s) => FrequencyOracle::add_support_batch(s, reports, supports),
        }
    }

    fn estimate(&self, supports: &[u64], reports: u64) -> Vec<f64> {
        match self {
            AdaptiveOracle::Grr(g) => FrequencyOracle::estimate(g, supports, reports),
            AdaptiveOracle::Olh(o) => FrequencyOracle::estimate(o, supports, reports),
            AdaptiveOracle::Wheel(w) => FrequencyOracle::estimate(w, supports, reports),
            AdaptiveOracle::Sw(s) => FrequencyOracle::estimate(s, supports, reports),
        }
    }

    fn variance(&self, n: usize) -> f64 {
        AdaptiveOracle::variance(self, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_matches_variance_ordering() {
        for eps in [0.2, 0.5, 1.0, 2.0] {
            for c in [2usize, 4, 8, 16, 64, 256] {
                let choice = choose_oracle(eps, c);
                let grr_var = Grr::new(eps, c).unwrap().variance(1000);
                let olh_var = Olh::new(eps, c).unwrap().variance(1000);
                // The rule is derived from the ideal (unrounded) OLH variance
                // 4e/(e-1)^2; allow the rounded-c' boundary cases 20% slack.
                match choice {
                    OracleChoice::Grr => {
                        assert!(grr_var <= olh_var * 1.2, "eps {eps} c {c}")
                    }
                    OracleChoice::Olh => {
                        assert!(olh_var <= grr_var * 1.2, "eps {eps} c {c}")
                    }
                    other => panic!("auto rule never selects {other:?}"),
                }
            }
        }
    }

    #[test]
    fn small_domains_pick_grr_large_pick_olh() {
        assert_eq!(choose_oracle(1.0, 4), OracleChoice::Grr);
        assert_eq!(choose_oracle(1.0, 64), OracleChoice::Olh);
    }

    #[test]
    fn adaptive_collect_runs_both_branches() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let values: Vec<u32> = (0..2000u32).map(|i| i % 4).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let small = AdaptiveOracle::new(1.0, 4).unwrap();
        assert!(matches!(small, AdaptiveOracle::Grr(_)));
        let f = small.collect(&values, SimMode::Fast, &mut rng);
        assert_eq!(f.len(), 4);

        let values: Vec<u32> = (0..2000u32).map(|i| i % 64).collect();
        let large = AdaptiveOracle::new(1.0, 64).unwrap();
        assert!(matches!(large, AdaptiveOracle::Olh(_)));
        let f = large.collect(&values, SimMode::Fast, &mut rng);
        assert_eq!(f.len(), 64);
    }
}
