//! The Wheel mechanism (Wang et al., PVLDB'20; paper §6).
//!
//! The paper's related work singles out the wheel mechanism as a newer
//! frequency oracle "which has a same variance as OLH". It maps values onto
//! the unit circle with a per-user hash: the report is a point drawn with
//! density `p` on the arc of length `b` starting at the user's value-point
//! and density `q` elsewhere (`p/q = eᵋ`). Support counting mirrors OLH:
//! a report supports value `u` when it lands inside `u`'s arc.
//!
//! With the variance-optimal arc length `b = 1/(eᵋ + 1)`, the estimation
//! variance equals OLH's `4eᵋ/((eᵋ−1)² n)` — verified by this module's
//! tests — while perturbation avoids GRR's categorical sampling entirely.

use crate::{check_domain, check_epsilon, OracleError, SimMode};
use privmdr_util::hash::mix64;
use privmdr_util::sampling::binomial;
use rand::Rng;

/// One Wheel report: the user's hash seed plus a point on the unit circle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WheelReport {
    /// Seed identifying the user's value-to-circle mapping.
    pub seed: u64,
    /// The reported point in `[0, 1)`.
    pub y: f64,
}

/// A configured Wheel mechanism over a fixed categorical domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wheel {
    epsilon: f64,
    domain: usize,
    /// Arc length `b = 1/(eᵋ + 1)` (variance-optimal for one item).
    b: f64,
    /// In-arc density `p = eᵋ / (b·eᵋ + 1 − b)`.
    p: f64,
    /// Out-of-arc density `q = 1 / (b·eᵋ + 1 − b)`.
    q: f64,
}

impl Wheel {
    /// Creates a Wheel mechanism for `domain` values at budget `epsilon`.
    pub fn new(epsilon: f64, domain: usize) -> Result<Self, OracleError> {
        check_epsilon(epsilon)?;
        check_domain(domain)?;
        let e = epsilon.exp();
        let b = 1.0 / (e + 1.0);
        let denom = b * e + 1.0 - b;
        Ok(Wheel {
            epsilon,
            domain,
            b,
            p: e / denom,
            q: 1.0 / denom,
        })
    }

    /// Arc length `b`.
    pub fn arc(&self) -> f64 {
        self.b
    }

    /// In-arc density `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Out-of-arc density `q`.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Input domain size.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// The circle position of `value` under `seed`'s mapping.
    #[inline]
    fn position(&self, seed: u64, value: usize) -> f64 {
        // 53-bit uniform in [0, 1) from the mixed hash.
        (mix64(seed ^ (value as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 11) as f64
            / (1u64 << 53) as f64
    }

    /// Client side: perturbs one value into a [`WheelReport`].
    pub fn perturb<R: Rng + ?Sized>(&self, value: usize, rng: &mut R) -> WheelReport {
        debug_assert!(value < self.domain);
        let seed: u64 = rng.random();
        let omega = self.position(seed, value);
        let y = self.report_point(omega, rng.random());
        WheelReport { seed, y }
    }

    /// The deterministic half of [`Wheel::perturb`]: maps one uniform draw
    /// `u ∈ [0, 1)` to the report point for a value sitting at circle
    /// position `omega`. Split out so the float-boundary cases are directly
    /// testable.
    fn report_point(&self, omega: f64, u: f64) -> f64 {
        let in_arc_mass = self.b * self.p;
        if u < in_arc_mass {
            // Uniform over the arc [omega, omega + b).
            (omega + self.b * (u / in_arc_mass)).fract()
        } else {
            // Uniform over the complement arc of length 1 - b. In exact
            // arithmetic t < 1 - b, but the floating-point out-of-arc mass
            // (1 - b)·q can fall a few ulps short of 1 - in_arc_mass, so a
            // draw near 1 can round t up to exactly 1 - b — wrapping the
            // claimed out-of-arc report back onto `omega`, inside the
            // holder's own arc. Clamp strictly inside the complement arc.
            let t = ((u - in_arc_mass) / ((1.0 - self.b) * self.q) * (1.0 - self.b))
                .min((1.0 - self.b) * (1.0 - f64::EPSILON));
            let mut y = (omega + self.b + t).fract();
            // Even clamped, the rounded sum `omega + b + t` can cross onto
            // the arc by a fraction of an ulp — at either end. In exact
            // arithmetic the point lies in [omega + b, omega + 1), so which
            // end it rounded across is unambiguous: penetration is ulps,
            // never a macroscopic fraction of the arc length `b`.
            if circle_dist(y, omega) < 0.5 * self.b {
                // Rounded the full circle back onto omega (t near 1 − b,
                // e.g. omega + 1 − (1−b)ε rounding to omega + 1): snap to
                // the last point strictly below omega.
                y = if omega > 0.0 {
                    omega.next_down()
                } else {
                    1.0f64.next_down()
                };
            }
            // Rounded a hair back across the arc's exclusive end omega + b
            // (e.g. the boundary draw u == in_arc_mass, t = 0): step the
            // few ulps out so an out-of-arc draw never supports the holder.
            while circle_dist(y, omega) < self.b {
                y = y.next_up();
                if y >= 1.0 {
                    y = 0.0;
                }
            }
            y
        }
    }

    /// Whether a report supports `value` (its point lies in the value's arc).
    #[inline]
    pub fn supports(&self, report: &WheelReport, value: usize) -> bool {
        circle_dist(report.y, self.position(report.seed, value)) < self.b
    }

    /// Aggregator side: unbiased frequency estimates for all values.
    ///
    /// A non-holder's value-point is uniform on the circle, so its support
    /// probability is exactly `b`; a holder supports with probability `b·p`.
    pub fn aggregate(&self, reports: &[WheelReport]) -> Vec<f64> {
        let mut supports = vec![0u64; self.domain];
        let pairs: Vec<(u64, u64)> = reports.iter().map(|r| (r.seed, r.y.to_bits())).collect();
        self.add_support_batch(&pairs, &mut supports);
        self.unbias(&supports, reports.len())
    }

    /// The support-counting kernel, batch form: folds `(seed, y_bits)` wire
    /// pairs (`y_bits` = the report point's `f64` bit pattern) into
    /// per-value support counters. A pair only a dishonest client could
    /// produce — a point outside `[0, 1)`, including NaN — supports
    /// nothing: every honest report point lies on the circle by
    /// construction.
    pub fn add_support_batch(&self, reports: &[(u64, u64)], supports: &mut [u64]) {
        debug_assert_eq!(supports.len(), self.domain);
        for &(seed, y_bits) in reports {
            let y = f64::from_bits(y_bits);
            if !(0.0..1.0).contains(&y) {
                continue;
            }
            for (v, s) in supports.iter_mut().enumerate() {
                *s += u64::from(circle_dist(y, self.position(seed, v)) < self.b);
            }
        }
    }

    /// Collects frequency estimates from true `values`, dispatching on the
    /// simulation mode.
    pub fn collect<R: Rng + ?Sized>(&self, values: &[u32], mode: SimMode, rng: &mut R) -> Vec<f64> {
        match mode {
            SimMode::Exact => {
                let reports: Vec<WheelReport> = values
                    .iter()
                    .map(|&v| self.perturb(v as usize, rng))
                    .collect();
                self.aggregate(&reports)
            }
            SimMode::Fast => {
                let mut true_counts = vec![0u64; self.domain];
                for &v in values {
                    true_counts[v as usize] += 1;
                }
                let n: u64 = true_counts.iter().sum();
                let supports: Vec<u64> = true_counts
                    .iter()
                    .map(|&t| binomial(rng, t, self.b * self.p) + binomial(rng, n - t, self.b))
                    .collect();
                self.unbias(&supports, n as usize)
            }
        }
    }

    fn unbias(&self, supports: &[u64], n: usize) -> Vec<f64> {
        // Zero reports carry zero information: estimate every frequency as
        // zero rather than unbiasing empty counters into the constant
        // −q_eff/(p_eff − q_eff) for every cell.
        if n == 0 {
            return vec![0.0; supports.len()];
        }
        let n = n as f64;
        let p_eff = self.b * self.p;
        let q_eff = self.b;
        supports
            .iter()
            .map(|&s| (s as f64 / n - q_eff) / (p_eff - q_eff))
            .collect()
    }

    /// Single-frequency estimation variance
    /// `q_eff(1 − q_eff) / ((p_eff − q_eff)² n)` with `q_eff = b`,
    /// `p_eff = b·p`; equals OLH's Eq.-3 variance at the optimal `b`.
    pub fn variance(&self, n: usize) -> f64 {
        let p_eff = self.b * self.p;
        let q_eff = self.b;
        q_eff * (1.0 - q_eff) / ((p_eff - q_eff).powi(2) * n as f64)
    }
}

/// Forward distance from `omega` to `y` on the unit circle — the one
/// membership primitive both perturbation and support counting share, so
/// the two sides cannot disagree about the arc boundary.
#[inline]
fn circle_dist(y: f64, omega: f64) -> f64 {
    let dist = y - omega;
    if dist < 0.0 {
        dist + 1.0
    } else {
        dist
    }
}

impl crate::FrequencyOracle for Wheel {
    fn kind(&self) -> crate::OracleChoice {
        crate::OracleChoice::Wheel
    }

    fn domain(&self) -> usize {
        self.domain
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn randomize(&self, value: usize, rng: &mut dyn rand::RngCore) -> (u64, u64) {
        let report = self.perturb(value, rng);
        (report.seed, report.y.to_bits())
    }

    fn add_support_batch(&self, reports: &[(u64, u64)], supports: &mut [u64]) {
        Wheel::add_support_batch(self, reports, supports);
    }

    fn estimate(&self, supports: &[u64], reports: u64) -> Vec<f64> {
        self.unbias(supports, reports as usize)
    }

    fn variance(&self, n: usize) -> f64 {
        Wheel::variance(self, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::olh::Olh;
    use privmdr_util::stats::{mean, std_dev};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Wheel::new(0.0, 16).is_err());
        assert!(Wheel::new(1.0, 1).is_err());
        assert!(Wheel::new(1.0, 16).is_ok());
    }

    #[test]
    fn densities_satisfy_ldp_and_normalize() {
        for eps in [0.2, 1.0, 3.0] {
            let w = Wheel::new(eps, 64).unwrap();
            assert!((w.p() / w.q() - eps.exp()).abs() < 1e-9);
            let total = w.arc() * w.p() + (1.0 - w.arc()) * w.q();
            assert!((total - 1.0).abs() < 1e-9, "mass {total}");
        }
    }

    #[test]
    fn reports_live_on_the_circle() {
        let w = Wheel::new(1.0, 32).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..5_000 {
            let r = w.perturb(i % 32, &mut rng);
            assert!((0.0..1.0).contains(&r.y), "y = {}", r.y);
        }
    }

    #[test]
    fn holder_support_rate_is_bp_nonholder_is_b() {
        let w = Wheel::new(1.0, 16).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 60_000;
        let (mut own, mut other) = (0u64, 0u64);
        for _ in 0..n {
            let r = w.perturb(3, &mut rng);
            own += u64::from(w.supports(&r, 3));
            other += u64::from(w.supports(&r, 11));
        }
        let own_rate = own as f64 / n as f64;
        let other_rate = other as f64 / n as f64;
        assert!((own_rate - w.arc() * w.p()).abs() < 0.01, "own {own_rate}");
        assert!((other_rate - w.arc()).abs() < 0.01, "other {other_rate}");
    }

    #[test]
    fn estimates_are_unbiased() {
        let w = Wheel::new(1.0, 16).unwrap();
        let n = 8_000usize;
        let values: Vec<u32> = (0..n).map(|i| if i < n / 4 { 2 } else { 9 }).collect();
        let reps = 40;
        let (mut e2, mut e9, mut e5) = (Vec::new(), Vec::new(), Vec::new());
        for r in 0..reps {
            let mut rng = StdRng::seed_from_u64(100 + r);
            let f = w.collect(&values, SimMode::Exact, &mut rng);
            e2.push(f[2]);
            e9.push(f[9]);
            e5.push(f[5]);
        }
        assert!((mean(&e2) - 0.25).abs() < 0.02, "{}", mean(&e2));
        assert!((mean(&e9) - 0.75).abs() < 0.02, "{}", mean(&e9));
        assert!(mean(&e5).abs() < 0.02, "{}", mean(&e5));
    }

    #[test]
    fn variance_matches_olh_as_the_paper_claims() {
        // §6: the wheel mechanism "has a same variance as OLH".
        let n = 10_000;
        for eps in [0.5, 1.0, 2.0] {
            let wheel_var = Wheel::new(eps, 64).unwrap().variance(n);
            let olh_var = Olh::new(eps, 64).unwrap().variance(n);
            assert!(
                (wheel_var - olh_var).abs() < olh_var * 0.15,
                "eps {eps}: wheel {wheel_var} vs olh {olh_var}"
            );
        }
    }

    /// Regression: `aggregate(&[])` (and the Fast path at `n = 0`) used to
    /// run the unbias formula with `n.max(1)`, turning empty support
    /// counters into the constant `−q_eff/(p_eff − q_eff)` for every cell.
    /// Zero reports must estimate zero everywhere.
    #[test]
    fn empty_aggregate_estimates_all_zeros() {
        let w = Wheel::new(1.0, 16).unwrap();
        assert_eq!(w.aggregate(&[]), vec![0.0; 16]);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(w.collect(&[], SimMode::Fast, &mut rng), vec![0.0; 16]);
        assert_eq!(w.collect(&[], SimMode::Exact, &mut rng), vec![0.0; 16]);
    }

    /// Regression for the float-boundary leak in the complement-arc branch:
    /// a draw near 1 could round `t` up to exactly `1 − b`, wrapping the
    /// claimed out-of-arc report back onto `omega` — inside the holder's
    /// arc. The boundary draw `u == in_arc_mass` (`t = 0`, the arc's
    /// exclusive end) must stay out-of-arc too.
    #[test]
    fn out_of_arc_draws_never_support_the_holder() {
        for eps in [0.2f64, 1.0, 3.0] {
            let w = Wheel::new(eps, 16).unwrap();
            let in_arc_mass = w.arc() * w.p();
            let mut boundary_draws = vec![in_arc_mass, 1.0 - f64::EPSILON];
            let mut u = 1.0f64;
            for _ in 0..8 {
                u = u.next_down();
                boundary_draws.push(u);
            }
            for seed in 0..64u64 {
                let omega = w.position(seed, 3);
                for &u in &boundary_draws {
                    let y = w.report_point(omega, u);
                    let report = WheelReport { seed, y };
                    assert!(
                        !w.supports(&report, 3),
                        "eps {eps} seed {seed} u {u:.17}: out-of-arc draw landed \
                         in the holder's arc (omega {omega}, y {y})"
                    );
                    assert!((0.0..1.0).contains(&y), "y {y} off the circle");
                }
            }
        }
    }

    #[test]
    fn batch_kernel_matches_per_report_supports_and_absorbs_hostile_pairs() {
        let w = Wheel::new(1.0, 12).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let reports: Vec<WheelReport> = (0..400).map(|i| w.perturb(i % 12, &mut rng)).collect();
        let mut manual = vec![0u64; 12];
        for r in &reports {
            for (v, cell) in manual.iter_mut().enumerate() {
                *cell += u64::from(w.supports(r, v));
            }
        }
        let pairs: Vec<(u64, u64)> = reports.iter().map(|r| (r.seed, r.y.to_bits())).collect();
        let mut batched = vec![0u64; 12];
        w.add_support_batch(&pairs, &mut batched);
        assert_eq!(batched, manual);
        // Hostile pairs — points off the circle, NaN, negative zero's
        // complement — support nothing and never panic.
        let hostile = [
            (1u64, 1.5f64.to_bits()),
            (2, (-0.25f64).to_bits()),
            (3, f64::NAN.to_bits()),
            (4, f64::INFINITY.to_bits()),
            (5, 1.0f64.to_bits()),
        ];
        let mut supports = vec![0u64; 12];
        w.add_support_batch(&hostile, &mut supports);
        assert_eq!(supports, vec![0u64; 12]);
    }

    #[test]
    fn fast_matches_exact_in_distribution() {
        let w = Wheel::new(1.0, 16).unwrap();
        let n = 5_000usize;
        let values: Vec<u32> = (0..n).map(|i| (i % 16) as u32).collect();
        let reps = 200;
        let (mut exact, mut fast) = (Vec::new(), Vec::new());
        for r in 0..reps {
            let mut rng = StdRng::seed_from_u64(5_000 + r);
            exact.push(w.collect(&values, SimMode::Exact, &mut rng)[7]);
            let mut rng = StdRng::seed_from_u64(9_500 + r);
            fast.push(w.collect(&values, SimMode::Fast, &mut rng)[7]);
        }
        assert!((mean(&exact) - mean(&fast)).abs() < 0.02);
        let (ve, vf) = (std_dev(&exact).powi(2), std_dev(&fast).powi(2));
        assert!((ve - vf).abs() < 0.6 * ve.max(vf), "exact {ve} fast {vf}");
    }
}
