//! Generalized Randomized Response (paper §2.2, Eq. 1–2).
//!
//! A user holding `v ∈ [c]` reports `v` with probability
//! `p = eᵋ / (eᵋ + c − 1)` and each other value with probability
//! `p' = 1 / (eᵋ + c − 1)`. The aggregator unbiases the observed counts with
//! `f̂_v = (count_v/n − p') / (p − p')`.

use crate::{check_domain, check_epsilon, OracleError, SimMode};
use privmdr_util::sampling::binomial;
use rand::Rng;

/// A configured GRR mechanism over a fixed categorical domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grr {
    epsilon: f64,
    domain: usize,
    p: f64,
    p_prime: f64,
}

impl Grr {
    /// Creates a GRR mechanism for `domain` values at privacy budget
    /// `epsilon`.
    pub fn new(epsilon: f64, domain: usize) -> Result<Self, OracleError> {
        check_epsilon(epsilon)?;
        check_domain(domain)?;
        let e = epsilon.exp();
        let denom = e + domain as f64 - 1.0;
        Ok(Grr {
            epsilon,
            domain,
            p: e / denom,
            p_prime: 1.0 / denom,
        })
    }

    /// The probability of reporting the true value.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The probability of reporting any specific other value.
    pub fn p_prime(&self) -> f64 {
        self.p_prime
    }

    /// Domain size `c`.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Privacy budget ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Perturbs a single value (the client side of the protocol).
    pub fn perturb<R: Rng + ?Sized>(&self, value: usize, rng: &mut R) -> usize {
        debug_assert!(value < self.domain);
        if rng.random::<f64>() < self.p {
            value
        } else {
            // Uniform over the other c-1 values.
            let mut other = rng.random_range(0..self.domain - 1);
            if other >= value {
                other += 1;
            }
            other
        }
    }

    /// Aggregates perturbed reports into unbiased frequency estimates.
    pub fn aggregate(&self, reports: &[u32]) -> Vec<f64> {
        let n = reports.len();
        let mut counts = vec![0u64; self.domain];
        for &r in reports {
            counts[r as usize] += 1;
        }
        self.unbias(&counts, n)
    }

    /// Collects frequency estimates from true `values` in one call,
    /// dispatching on the simulation mode.
    pub fn collect<R: Rng + ?Sized>(&self, values: &[u32], mode: SimMode, rng: &mut R) -> Vec<f64> {
        match mode {
            SimMode::Exact => {
                let reports: Vec<u32> = values
                    .iter()
                    .map(|&v| self.perturb(v as usize, rng) as u32)
                    .collect();
                self.aggregate(&reports)
            }
            SimMode::Fast => {
                let mut true_counts = vec![0u64; self.domain];
                for &v in values {
                    true_counts[v as usize] += 1;
                }
                self.collect_fast(&true_counts, rng)
            }
        }
    }

    /// Fast path: samples the observed count of each value directly.
    ///
    /// Observed count of `v` = `Binomial(n_v, p) + Binomial(n − n_v, p')`:
    /// holders of `v` report it w.p. `p`, every other user w.p. `p'`.
    pub fn collect_fast<R: Rng + ?Sized>(&self, true_counts: &[u64], rng: &mut R) -> Vec<f64> {
        debug_assert_eq!(true_counts.len(), self.domain);
        let n: u64 = true_counts.iter().sum();
        let counts: Vec<u64> = true_counts
            .iter()
            .map(|&t| binomial(rng, t, self.p) + binomial(rng, n - t, self.p_prime))
            .collect();
        self.unbias(&counts, n as usize)
    }

    fn unbias(&self, counts: &[u64], n: usize) -> Vec<f64> {
        let n = n.max(1) as f64;
        counts
            .iter()
            .map(|&cnt| (cnt as f64 / n - self.p_prime) / (self.p - self.p_prime))
            .collect()
    }

    /// Estimation variance for one frequency (Eq. 2):
    /// `Var = (c − 2 + eᵋ) / ((eᵋ − 1)² n)`.
    pub fn variance(&self, n: usize) -> f64 {
        let e = self.epsilon.exp();
        (self.domain as f64 - 2.0 + e) / ((e - 1.0).powi(2) * n as f64)
    }

    /// The support-counting kernel, batch form: a GRR report supports
    /// exactly the value it carries, so each wire pair `(_, y)` bumps
    /// `supports[y]`. The `seed` half of the pair is unused (GRR reports
    /// carry `seed = 0` on the wire).
    ///
    /// An out-of-domain `y` — which only a dishonest client can produce —
    /// supports nothing: the increment is dropped rather than panicking,
    /// mirroring how an out-of-range OLH `y` matches no hash output.
    pub fn add_support_batch(&self, reports: &[(u64, u64)], supports: &mut [u64]) {
        debug_assert_eq!(supports.len(), self.domain);
        for &(_seed, y) in reports {
            if let Some(s) = supports.get_mut(y as usize) {
                *s += 1;
            }
        }
    }
}

impl crate::FrequencyOracle for Grr {
    fn kind(&self) -> crate::OracleChoice {
        crate::OracleChoice::Grr
    }

    fn domain(&self) -> usize {
        self.domain
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn randomize(&self, value: usize, rng: &mut dyn rand::RngCore) -> (u64, u64) {
        (0, self.perturb(value, rng) as u64)
    }

    fn add_support_batch(&self, reports: &[(u64, u64)], supports: &mut [u64]) {
        Grr::add_support_batch(self, reports, supports);
    }

    fn estimate(&self, supports: &[u64], reports: u64) -> Vec<f64> {
        self.unbias(supports, reports as usize)
    }

    fn variance(&self, n: usize) -> f64 {
        Grr::variance(self, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmdr_util::stats::mean;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Grr::new(0.0, 4).is_err());
        assert!(Grr::new(-1.0, 4).is_err());
        assert!(Grr::new(f64::NAN, 4).is_err());
        assert!(Grr::new(1.0, 1).is_err());
        assert!(Grr::new(1.0, 2).is_ok());
    }

    #[test]
    fn probabilities_satisfy_ldp_ratio() {
        for eps in [0.1, 0.5, 1.0, 2.0] {
            for c in [2usize, 8, 64] {
                let g = Grr::new(eps, c).unwrap();
                let ratio = g.p() / g.p_prime();
                assert!(
                    (ratio - eps.exp()).abs() < 1e-9,
                    "p/p' must equal e^eps exactly"
                );
                // Mass balances: p + (c-1) p' == 1.
                let total = g.p() + (c as f64 - 1.0) * g.p_prime();
                assert!((total - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn empirical_ldp_ratio_bound() {
        // Frequency of each output under input v vs input v' stays within
        // e^eps (the definition of eps-LDP), checked empirically.
        let eps = 1.0;
        let c = 8;
        let g = Grr::new(eps, c).unwrap();
        let n = 200_000;
        let mut rng = StdRng::seed_from_u64(11);
        let mut hist_a = vec![0f64; c];
        let mut hist_b = vec![0f64; c];
        for _ in 0..n {
            hist_a[g.perturb(0, &mut rng)] += 1.0;
            hist_b[g.perturb(3, &mut rng)] += 1.0;
        }
        for y in 0..c {
            let (a, b) = (hist_a[y].max(1.0), hist_b[y].max(1.0));
            let ratio = a / b;
            assert!(
                ratio < eps.exp() * 1.15 && ratio > (-eps).exp() / 1.15,
                "output {y}: ratio {ratio}"
            );
        }
    }

    #[test]
    fn exact_estimates_are_unbiased() {
        let g = Grr::new(1.0, 8).unwrap();
        let n = 40_000usize;
        // True distribution: value 2 has frequency 0.5, value 5 has 0.25,
        // rest spread over value 0.
        let mut values = Vec::with_capacity(n);
        values.extend(std::iter::repeat_n(2u32, n / 2));
        values.extend(std::iter::repeat_n(5u32, n / 4));
        values.extend(std::iter::repeat_n(0u32, n - n / 2 - n / 4));
        let reps = 40;
        let mut est2 = Vec::new();
        let mut est5 = Vec::new();
        for r in 0..reps {
            let mut rng = StdRng::seed_from_u64(100 + r);
            let f = g.collect(&values, SimMode::Exact, &mut rng);
            est2.push(f[2]);
            est5.push(f[5]);
        }
        assert!((mean(&est2) - 0.5).abs() < 0.01, "{}", mean(&est2));
        assert!((mean(&est5) - 0.25).abs() < 0.01, "{}", mean(&est5));
    }

    #[test]
    fn fast_matches_exact_in_distribution() {
        // Same mean and (approximately) the Eq.-2 variance in both modes.
        let g = Grr::new(1.0, 16).unwrap();
        let n = 10_000usize;
        let values: Vec<u32> = (0..n).map(|i| if i < n / 10 { 7 } else { 1 }).collect();
        let reps = 300;
        let mut exact = Vec::new();
        let mut fast = Vec::new();
        for r in 0..reps {
            let mut rng = StdRng::seed_from_u64(2_000 + r);
            exact.push(g.collect(&values, SimMode::Exact, &mut rng)[7]);
            let mut rng = StdRng::seed_from_u64(9_000 + r);
            fast.push(g.collect(&values, SimMode::Fast, &mut rng)[7]);
        }
        let (me, mf) = (mean(&exact), mean(&fast));
        assert!((me - 0.1).abs() < 0.01, "exact mean {me}");
        assert!((mf - 0.1).abs() < 0.01, "fast mean {mf}");
        let ve = privmdr_util::stats::std_dev(&exact).powi(2);
        let vf = privmdr_util::stats::std_dev(&fast).powi(2);
        assert!(
            (ve - vf).abs() < 0.5 * ve.max(vf),
            "variances diverge: exact {ve} fast {vf}"
        );
    }

    #[test]
    fn variance_formula_matches_empirical() {
        let g = Grr::new(1.0, 16).unwrap();
        let n = 20_000usize;
        // All users hold value 0; measure the estimator variance of a
        // zero-frequency cell, which Eq. 2 approximates.
        let values = vec![0u32; n];
        let reps = 400;
        let mut ests = Vec::new();
        for r in 0..reps {
            let mut rng = StdRng::seed_from_u64(31_000 + r);
            ests.push(g.collect(&values, SimMode::Fast, &mut rng)[9]);
        }
        let emp_var = privmdr_util::stats::std_dev(&ests).powi(2);
        let formula = g.variance(n);
        assert!(
            (emp_var - formula).abs() < formula * 0.3,
            "empirical {emp_var} vs formula {formula}"
        );
    }

    #[test]
    fn estimates_sum_near_one() {
        // In Fast mode the per-cell counts are sampled independently, so a
        // single total has sd ~0.11 here; average over repeats to make the
        // 0.1 tolerance a ~4-sigma bound instead of a seed lottery.
        let g = Grr::new(1.0, 32).unwrap();
        let values: Vec<u32> = (0..32_000u32).map(|i| i % 32).collect();
        let reps = 20;
        let mut totals = Vec::with_capacity(reps);
        for r in 0..reps {
            let mut rng = StdRng::seed_from_u64(77 + r as u64);
            let f = g.collect(&values, SimMode::Fast, &mut rng);
            totals.push(f.iter().sum::<f64>());
        }
        let total = mean(&totals);
        assert!((total - 1.0).abs() < 0.1, "mean sum {total}");
    }
}
