//! Optimized Local Hash (paper §2.2, Eq. 3; Wang et al., USENIX Security'17).
//!
//! Each user draws a random hash function `H` from a universal family,
//! compresses their value `v ∈ [c]` to `H(v) ∈ [c']` with `c' = eᵋ + 1`, and
//! reports `⟨H, GRR_{c'}(H(v))⟩`. The aggregator counts, for each value `v`,
//! how many reports *support* it (`H_i(v) = y_i`), then unbiases with the
//! baseline support probability `1/c'`.
//!
//! OLH is the oracle all grid and hierarchy mechanisms in the paper use; its
//! variance `4eᵋ / ((eᵋ − 1)² n)` is independent of the domain size.

#![allow(clippy::needless_range_loop)]
use crate::{check_domain, check_epsilon, OracleError, SimMode};
use privmdr_util::hash::{self, SeededHash};
use privmdr_util::sampling::binomial;
use rand::Rng;

/// Report-block size of the batch support kernel: 1024 `(u64, u64)` pairs
/// = 16 KiB, half a typical 32 KiB L1d, so a block stays resident while the
/// value loop sweeps it `c` times. (The old `(u64, u32)` pair occupied the
/// same 16 bytes after alignment padding, so widening `y` to `u64` for the
/// float-carrying oracles left the tiling unchanged.)
const SUPPORT_BLOCK: usize = 1024;

/// One OLH report: the user's hash seed plus the perturbed hashed value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OlhReport {
    /// Seed identifying the user's hash function.
    pub seed: u64,
    /// `GRR_{c'}(H(v))` — the randomized hashed value.
    pub y: u32,
}

/// A configured OLH mechanism over a fixed categorical domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Olh {
    epsilon: f64,
    domain: usize,
    /// Hashed domain size `c' = round(eᵋ) + 1`, at least 2.
    c_prime: usize,
    /// GRR keep-probability over the hashed domain.
    p: f64,
    /// Support probability for a non-held value: `1/c'`.
    q: f64,
}

impl Olh {
    /// Creates an OLH mechanism for `domain` values at privacy budget
    /// `epsilon`. The hashed domain is the variance-optimal `c' = eᵋ + 1`
    /// rounded to the nearest integer (min 2).
    pub fn new(epsilon: f64, domain: usize) -> Result<Self, OracleError> {
        check_epsilon(epsilon)?;
        check_domain(domain)?;
        let e = epsilon.exp();
        let c_prime = ((e + 1.0).round() as usize).max(2);
        let p = e / (e + c_prime as f64 - 1.0);
        let q = 1.0 / c_prime as f64;
        Ok(Olh {
            epsilon,
            domain,
            c_prime,
            p,
            q,
        })
    }

    /// Hashed domain size `c'`.
    pub fn c_prime(&self) -> usize {
        self.c_prime
    }

    /// GRR keep-probability on the hashed domain.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Baseline support probability `1/c'`.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Input domain size `c`.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Privacy budget ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Client side: perturbs one value into an [`OlhReport`].
    pub fn perturb<R: Rng + ?Sized>(&self, value: usize, rng: &mut R) -> OlhReport {
        debug_assert!(value < self.domain);
        let seed: u64 = rng.random();
        let h = SeededHash::new(seed, self.c_prime);
        let hashed = h.hash(value);
        // GRR over the hashed domain [c'].
        let y = if rng.random::<f64>() < self.p {
            hashed
        } else {
            let mut other = rng.random_range(0..self.c_prime - 1);
            if other >= hashed {
                other += 1;
            }
            other
        };
        OlhReport { seed, y: y as u32 }
    }

    /// The support-counting kernel, single-report form: folds one report
    /// into per-value support counters, incrementing `supports[v]` for every
    /// `v` with `H_seed(v) = y` (`O(domain)` hash evaluations).
    ///
    /// This is a thin wrapper over [`Olh::add_support_batch`] with a
    /// length-1 batch, so the per-report and batched paths share one kernel
    /// and cannot drift apart.
    #[inline]
    pub fn add_support(&self, seed: u64, y: u32, supports: &mut [u64]) {
        self.add_support_batch(&[(seed, y as u64)], supports);
    }

    /// The support-counting kernel, block-transposed batch form — the hot
    /// loop of exact aggregation. Folds a batch of `(seed, y)` report pairs
    /// into per-value support counters: `supports[v]` gains, for each pair,
    /// `1` iff `H_seed(v) = y`. Bit-identical to folding the reports one at
    /// a time through [`Olh::add_support`] — `u64` adds commute — for any
    /// batch size, including empty.
    ///
    /// The loop nest is transposed relative to the naive per-report sweep:
    /// reports are tiled into `SUPPORT_BLOCK`-sized (1024-pair, 16 KiB,
    /// L1-resident) blocks, and for each block the value loop runs
    /// [`hash::support_count_lanes_soa`] over a once-per-block SoA
    /// transpose of the pairs — premix hoisted, lane-parallel (runtime
    /// dispatch to an explicit AVX-512 or AVX2 path on x86-64 CPUs that
    /// have one, a portable 8-chain autovectorized sweep otherwise; see
    /// [`hash::kernel_backend`]), branchless, count kept in registers — so
    /// the supports array is streamed once per *block* instead of once per
    /// report and the SIMD loads are two straight vector loads. Both
    /// [`Olh::aggregate`] and the streaming collector in `privmdr-protocol`
    /// go through this kernel. Every backend is bit-identical to the scalar
    /// reference [`hash::support_count`].
    ///
    /// The hashed-domain invariant (`c' >= 2`, [`SeededHash::new`]'s assert)
    /// is validated once per batch here, not once per report.
    pub fn add_support_batch(&self, reports: &[(u64, u64)], supports: &mut [u64]) {
        self.add_support_batch_with_block(reports, supports, SUPPORT_BLOCK);
    }

    /// [`Olh::add_support_batch`] with an explicit report-block size, so the
    /// equivalence property tests can sweep tilings. Not part of the stable
    /// API — the default block is tuned for L1.
    #[doc(hidden)]
    pub fn add_support_batch_with_block(
        &self,
        reports: &[(u64, u64)],
        supports: &mut [u64],
        block: usize,
    ) {
        debug_assert_eq!(supports.len(), self.domain);
        // Hoisted from the per-report SeededHash::new assert: one check per
        // batch. (Olh::new already guarantees this; keep the guard so the
        // kernel is safe under any future construction path.)
        assert!(
            self.c_prime >= 2,
            "hash output domain must have at least 2 values"
        );
        let c_prime = self.c_prime as u64;
        // Per-block SoA transpose: the SIMD lane kernels fill all lanes
        // with two straight vector loads from the parallel slices, where
        // an AoS block would pay a per-field gather per lane. The copy is
        // linear in the block and amortizes over the `cells` value sweeps.
        let scratch = reports.len().min(block.max(1));
        let mut seeds = Vec::with_capacity(scratch);
        let mut ys = Vec::with_capacity(scratch);
        for block in reports.chunks(block.max(1)) {
            seeds.clear();
            ys.clear();
            seeds.extend(block.iter().map(|&(seed, _)| seed));
            ys.extend(block.iter().map(|&(_, y)| y));
            for (v, s) in supports.iter_mut().enumerate() {
                *s += hash::support_count_lanes_soa(&seeds, &ys, v as u64, c_prime);
            }
        }
    }

    /// Aggregator side: unbiased frequency estimates for all `c` values.
    pub fn aggregate(&self, reports: &[OlhReport]) -> Vec<f64> {
        let mut supports = vec![0u64; self.domain];
        let pairs: Vec<(u64, u64)> = reports.iter().map(|r| (r.seed, r.y as u64)).collect();
        self.add_support_batch(&pairs, &mut supports);
        self.unbias(&supports, reports.len())
    }

    /// Collects frequency estimates from true `values` in one call,
    /// dispatching on the simulation mode.
    pub fn collect<R: Rng + ?Sized>(&self, values: &[u32], mode: SimMode, rng: &mut R) -> Vec<f64> {
        match mode {
            SimMode::Exact => {
                let reports: Vec<OlhReport> = values
                    .iter()
                    .map(|&v| self.perturb(v as usize, rng))
                    .collect();
                self.aggregate(&reports)
            }
            SimMode::Fast => {
                let mut true_counts = vec![0u64; self.domain];
                for &v in values {
                    true_counts[v as usize] += 1;
                }
                self.collect_fast(&true_counts, rng)
            }
        }
    }

    /// Fast path: samples the support count of each value directly.
    ///
    /// A holder of `v` supports `v` with probability `p`; any other user
    /// supports `v` with probability exactly `1/c'` (hash collision folded
    /// with GRR randomness), so
    /// `support_v ~ Binomial(n_v, p) + Binomial(n − n_v, 1/c')`.
    pub fn collect_fast<R: Rng + ?Sized>(&self, true_counts: &[u64], rng: &mut R) -> Vec<f64> {
        debug_assert_eq!(true_counts.len(), self.domain);
        let n: u64 = true_counts.iter().sum();
        let supports: Vec<u64> = true_counts
            .iter()
            .map(|&t| binomial(rng, t, self.p) + binomial(rng, n - t, self.q))
            .collect();
        self.unbias(&supports, n as usize)
    }

    fn unbias(&self, supports: &[u64], n: usize) -> Vec<f64> {
        let n = n.max(1) as f64;
        supports
            .iter()
            .map(|&s| (s as f64 / n - self.q) / (self.p - self.q))
            .collect()
    }

    /// Unbiases a raw support count obtained externally (used by the lazy
    /// [`OlhReportSet`] estimator).
    fn unbias_one(&self, support: u64, n: usize) -> f64 {
        (support as f64 / n.max(1) as f64 - self.q) / (self.p - self.q)
    }

    /// Estimation variance for one frequency (Eq. 3 with the rounded `c'`):
    /// `Var = q(1 − q) / ((p − q)² n)`; equals `4eᵋ/((eᵋ−1)² n)` when
    /// `c' = eᵋ + 1` exactly.
    pub fn variance(&self, n: usize) -> f64 {
        self.q * (1.0 - self.q) / ((self.p - self.q).powi(2) * n as f64)
    }
}

impl crate::FrequencyOracle for Olh {
    fn kind(&self) -> crate::OracleChoice {
        crate::OracleChoice::Olh
    }

    fn domain(&self) -> usize {
        self.domain
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn randomize(&self, value: usize, rng: &mut dyn rand::RngCore) -> (u64, u64) {
        let report = self.perturb(value, rng);
        (report.seed, report.y as u64)
    }

    fn add_support_batch(&self, reports: &[(u64, u64)], supports: &mut [u64]) {
        Olh::add_support_batch(self, reports, supports);
    }

    fn estimate(&self, supports: &[u64], reports: u64) -> Vec<f64> {
        self.unbias(supports, reports as usize)
    }

    fn variance(&self, n: usize) -> f64 {
        Olh::variance(self, n)
    }
}

/// Retained OLH reports supporting lazy, on-demand frequency estimation.
///
/// HIO's d-dimensional levels are far too large to materialize all interval
/// frequencies, so the aggregator keeps each group's raw reports and
/// estimates only the intervals a query touches.
#[derive(Debug, Clone)]
pub struct OlhReportSet {
    olh: Olh,
    reports: Vec<OlhReport>,
}

impl OlhReportSet {
    /// Collects exact per-user reports for `values` under `olh`.
    ///
    /// Values are `u64` because HIO's d-dimensional levels index interval
    /// combinations whose count exceeds `u32` for large `d`.
    pub fn collect<R: Rng + ?Sized>(olh: Olh, values: &[u64], rng: &mut R) -> Self {
        let reports = values
            .iter()
            .map(|&v| olh.perturb(v as usize, rng))
            .collect();
        OlhReportSet { olh, reports }
    }

    /// Number of retained reports.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Unbiased frequency estimate of a single value, scanning the group.
    pub fn estimate(&self, value: usize) -> f64 {
        debug_assert!(value < self.olh.domain());
        let support = self
            .reports
            .iter()
            .filter(|r| SeededHash::new(r.seed, self.olh.c_prime()).hash(value) == r.y as usize)
            .count() as u64;
        self.olh.unbias_one(support, self.reports.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmdr_util::stats::{mean, std_dev};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Olh::new(0.0, 64).is_err());
        assert!(Olh::new(1.0, 0).is_err());
        assert!(Olh::new(1.0, 1).is_err());
    }

    #[test]
    fn c_prime_is_variance_optimal() {
        // c' = round(e^eps + 1), min 2.
        assert_eq!(Olh::new(1.0, 64).unwrap().c_prime(), 4); // e+1 = 3.72
        assert_eq!(Olh::new(2.0, 64).unwrap().c_prime(), 8); // e^2+1 = 8.39
        assert_eq!(Olh::new(0.1, 64).unwrap().c_prime(), 2);
    }

    #[test]
    fn exact_estimates_are_unbiased() {
        let olh = Olh::new(1.0, 32).unwrap();
        let n = 8_000usize;
        let mut values = Vec::with_capacity(n);
        values.extend(std::iter::repeat_n(4u32, n / 2));
        values.extend(std::iter::repeat_n(20u32, n / 2));
        let reps = 40;
        let (mut e4, mut e20, mut e9) = (Vec::new(), Vec::new(), Vec::new());
        for r in 0..reps {
            let mut rng = StdRng::seed_from_u64(500 + r);
            let f = olh.collect(&values, SimMode::Exact, &mut rng);
            e4.push(f[4]);
            e20.push(f[20]);
            e9.push(f[9]);
        }
        assert!((mean(&e4) - 0.5).abs() < 0.02, "{}", mean(&e4));
        assert!((mean(&e20) - 0.5).abs() < 0.02, "{}", mean(&e20));
        assert!(mean(&e9).abs() < 0.02, "{}", mean(&e9));
    }

    #[test]
    fn add_support_batch_matches_per_report_across_block_boundaries() {
        // Batch lengths straddling the internal SUPPORT_BLOCK tiling (1024)
        // and every unroll remainder must fold to bit-identical counters.
        let olh = Olh::new(1.0, 19).unwrap();
        let mut rng = StdRng::seed_from_u64(4242);
        let pairs: Vec<(u64, u64)> = (0..2 * SUPPORT_BLOCK + 3)
            .map(|_| (rng.random(), rng.random_range(0..6)))
            .collect();
        for n in [0, 1, 2, 3, 4, 5, 1023, 1024, 1025, 2 * SUPPORT_BLOCK + 3] {
            let mut per_report = vec![0u64; 19];
            for &(s, y) in &pairs[..n] {
                olh.add_support(s, y as u32, &mut per_report);
            }
            let mut batched = vec![0u64; 19];
            olh.add_support_batch(&pairs[..n], &mut batched);
            assert_eq!(batched, per_report, "batch length {n}");
        }
    }

    #[test]
    fn add_support_kernel_matches_manual_count() {
        let olh = Olh::new(1.0, 24).unwrap();
        let mut rng = StdRng::seed_from_u64(71);
        let reports: Vec<OlhReport> = (0..300).map(|i| olh.perturb(i % 24, &mut rng)).collect();
        let mut supports = vec![0u64; 24];
        for r in &reports {
            olh.add_support(r.seed, r.y, &mut supports);
        }
        for (v, &s) in supports.iter().enumerate() {
            let manual = reports
                .iter()
                .filter(|r| SeededHash::new(r.seed, olh.c_prime()).hash(v) == r.y as usize)
                .count() as u64;
            assert_eq!(s, manual, "value {v}");
        }
        // The kernel is exactly what aggregate() unbiases.
        let agg = olh.aggregate(&reports);
        let manual: Vec<f64> = supports
            .iter()
            .map(|&s| (s as f64 / 300.0 - olh.q()) / (olh.p() - olh.q()))
            .collect();
        assert_eq!(agg, manual);
    }

    /// Statistical regression gate for the shared support-counting kernel:
    /// `Exact` (which folds every report through [`Olh::add_support`]) and
    /// `Fast` (which samples the aggregate distribution directly) must give
    /// the same mean estimate within a 4-sigma bound over seeded repeats.
    #[test]
    fn exact_and_fast_means_agree_within_4_sigma() {
        let olh = Olh::new(1.0, 32).unwrap();
        let n = 4_000usize;
        let true_freq = 0.3;
        let hot = (n as f64 * true_freq) as usize;
        let values: Vec<u32> = (0..n).map(|i| if i < hot { 5 } else { 17 }).collect();
        let reps = 24u64;
        let (mut exact, mut fast) = (Vec::new(), Vec::new());
        for r in 0..reps {
            let mut rng = StdRng::seed_from_u64(40_000 + r);
            exact.push(olh.collect(&values, SimMode::Exact, &mut rng)[5]);
            let mut rng = StdRng::seed_from_u64(60_000 + r);
            fast.push(olh.collect(&values, SimMode::Fast, &mut rng)[5]);
        }
        // Std-dev of a mean of `reps` unbiased estimates.
        let sigma_mean = (olh.variance(n) / reps as f64).sqrt();
        let (me, mf) = (mean(&exact), mean(&fast));
        assert!(
            (me - true_freq).abs() < 4.0 * sigma_mean,
            "exact mean {me} drifts from {true_freq} (sigma_mean {sigma_mean})"
        );
        assert!(
            (mf - true_freq).abs() < 4.0 * sigma_mean,
            "fast mean {mf} drifts from {true_freq} (sigma_mean {sigma_mean})"
        );
        // The two modes against each other: difference of two independent
        // means has std sqrt(2) * sigma_mean.
        assert!(
            (me - mf).abs() < 4.0 * std::f64::consts::SQRT_2 * sigma_mean,
            "exact {me} vs fast {mf} beyond 4 sigma ({sigma_mean})"
        );
    }

    #[test]
    fn fast_matches_exact_in_distribution() {
        let olh = Olh::new(1.0, 16).unwrap();
        let n = 5_000usize;
        let values: Vec<u32> = (0..n).map(|i| if i < n / 5 { 3 } else { 12 }).collect();
        let reps = 250;
        let (mut exact, mut fast) = (Vec::new(), Vec::new());
        for r in 0..reps {
            let mut rng = StdRng::seed_from_u64(3_000 + r);
            exact.push(olh.collect(&values, SimMode::Exact, &mut rng)[3]);
            let mut rng = StdRng::seed_from_u64(8_000 + r);
            fast.push(olh.collect(&values, SimMode::Fast, &mut rng)[3]);
        }
        assert!((mean(&exact) - 0.2).abs() < 0.015, "exact {}", mean(&exact));
        assert!((mean(&fast) - 0.2).abs() < 0.015, "fast {}", mean(&fast));
        let (ve, vf) = (std_dev(&exact).powi(2), std_dev(&fast).powi(2));
        assert!(
            (ve - vf).abs() < 0.5 * ve.max(vf),
            "variances diverge: exact {ve} fast {vf}"
        );
    }

    #[test]
    fn variance_formula_matches_empirical_and_eq3() {
        let olh = Olh::new(1.0, 64).unwrap();
        let n = 10_000usize;
        let values = vec![0u32; n];
        let reps = 500;
        let mut ests = Vec::new();
        for r in 0..reps {
            let mut rng = StdRng::seed_from_u64(21_000 + r);
            ests.push(olh.collect(&values, SimMode::Fast, &mut rng)[40]);
        }
        let emp = std_dev(&ests).powi(2);
        let formula = olh.variance(n);
        assert!(
            (emp - formula).abs() < formula * 0.3,
            "emp {emp} formula {formula}"
        );
        // Eq. 3 approximation with the ideal (unrounded) c'.
        let e = 1f64.exp();
        let eq3 = 4.0 * e / ((e - 1.0).powi(2) * n as f64);
        assert!(
            (formula - eq3).abs() < eq3 * 0.15,
            "formula {formula} eq3 {eq3}"
        );
    }

    #[test]
    fn variance_beats_grr_for_large_domains() {
        // The whole point of OLH: for c >> e^eps its variance is smaller.
        let n = 1000;
        let eps = 1.0;
        let olh = Olh::new(eps, 1024).unwrap();
        let grr = crate::grr::Grr::new(eps, 1024).unwrap();
        assert!(olh.variance(n) < grr.variance(n) / 10.0);
    }

    #[test]
    fn report_set_lazy_estimates_match_aggregate() {
        let olh = Olh::new(1.0, 16).unwrap();
        let values: Vec<u64> = (0..4_000u64).map(|i| i % 16).collect();
        let mut rng = StdRng::seed_from_u64(9);
        let set = OlhReportSet::collect(olh, &values, &mut rng);
        assert_eq!(set.len(), 4_000);
        // Lazy estimate equals the batch aggregate for every value.
        let reports: Vec<OlhReport> = set.reports.clone();
        let batch = olh.aggregate(&reports);
        for v in 0..16 {
            assert!((set.estimate(v) - batch[v]).abs() < 1e-12);
        }
    }

    #[test]
    fn perturb_satisfies_ldp_on_hashed_output() {
        // The randomized mapping (given a fixed hash seed distribution) keeps
        // p/p'_grr = e^eps on the hashed domain.
        let olh = Olh::new(1.0, 64).unwrap();
        let p_grr_other = (1.0 - olh.p()) / (olh.c_prime() as f64 - 1.0);
        let ratio = olh.p() / p_grr_other;
        assert!((ratio - 1f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn estimates_sum_near_one() {
        let olh = Olh::new(1.0, 64).unwrap();
        let values: Vec<u32> = (0..64_000u32).map(|i| i % 64).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let f = olh.collect(&values, SimMode::Fast, &mut rng);
        let total: f64 = f.iter().sum();
        assert!((total - 1.0).abs() < 0.15, "sum {total}");
    }
}
