//! Square Wave mechanism with EM reconstruction (paper §3.5; Li et al.,
//! SIGMOD'20).
//!
//! Square Wave perturbs a numerical value `v ∈ [0, 1]` by reporting a value
//! close to `v` with high probability: outputs within the closeness threshold
//! `δ` of `v` have density `p`, all others density `q`, with `p/q = eᵋ`.
//! The aggregator discretizes the reports and runs Expectation–Maximization
//! to recover the input distribution over `bins` buckets.
//!
//! This is the substrate of the MSW baseline: each attribute group reports
//! through SW, and multi-dimensional answers are products of 1-D answers.

use crate::{check_domain, check_epsilon, OracleError, SimMode};
use privmdr_util::sampling::multinomial;
use rand::Rng;

/// A configured Square Wave mechanism for one ordinal attribute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SquareWave {
    epsilon: f64,
    /// Input discretization (the attribute's domain size `c`).
    bins: usize,
    /// Output discretization over `[−δ, 1+δ]`.
    out_bins: usize,
    delta: f64,
    /// In-band density.
    p: f64,
    /// Out-of-band density.
    q: f64,
    /// Whether to apply the EMS smoothing kernel between EM iterations.
    smoothing: bool,
    max_iters: usize,
}

impl SquareWave {
    /// Creates a Square Wave mechanism for a discrete domain of `bins`
    /// values at privacy budget `epsilon`.
    pub fn new(epsilon: f64, bins: usize) -> Result<Self, OracleError> {
        check_epsilon(epsilon)?;
        check_domain(bins)?;
        let e = epsilon.exp();
        // δ = (ε·eᵋ − eᵋ + 1) / (2eᵋ (eᵋ − 1 − ε)), the utility-optimal
        // closeness threshold derived in the SW paper.
        let delta = (epsilon * e - e + 1.0) / (2.0 * e * (e - 1.0 - epsilon));
        let p = e / (2.0 * delta * e + 1.0);
        let q = 1.0 / (2.0 * delta * e + 1.0);
        // Output bins sized to roughly the input resolution.
        let side = (delta * bins as f64).ceil() as usize;
        let out_bins = bins + 2 * side.max(1);
        Ok(SquareWave {
            epsilon,
            bins,
            out_bins,
            delta,
            p,
            q,
            smoothing: false,
            max_iters: 400,
        })
    }

    /// Enables the EMS smoothing step (binomial kernel between iterations),
    /// which the SW paper recommends for distribution/range-query workloads.
    pub fn with_smoothing(mut self, smoothing: bool) -> Self {
        self.smoothing = smoothing;
        self
    }

    /// Caps the number of EM iterations.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters.max(1);
        self
    }

    /// The closeness threshold δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// In-band report density `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Out-of-band report density `q` (`p/q = eᵋ`).
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Input domain size.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Output discretization over `[−δ, 1+δ]` — the number of support
    /// cells the aggregator accumulates before EM reconstruction.
    pub fn out_bins(&self) -> usize {
        self.out_bins
    }

    /// The privacy budget this mechanism was configured with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Client side: perturbs a normalized value `v ∈ [0, 1]` into a report
    /// in `[−δ, 1 + δ]`.
    pub fn perturb<R: Rng + ?Sized>(&self, v: f64, rng: &mut R) -> f64 {
        debug_assert!((0.0..=1.0).contains(&v));
        let near_mass = 2.0 * self.delta * self.p;
        let u: f64 = rng.random();
        if u < near_mass {
            // Uniform over [v − δ, v + δ].
            v - self.delta + 2.0 * self.delta * (u / near_mass)
        } else {
            // Uniform over [−δ, 1+δ] \ [v−δ, v+δ], whose total length is 1.
            let t = (u - near_mass) / self.q;
            if t < v {
                -self.delta + t
            } else {
                v + self.delta + (t - v)
            }
        }
    }

    /// Collects the estimated input distribution (length `bins`, sums to 1)
    /// from true discrete `values`, dispatching on the simulation mode.
    pub fn collect<R: Rng + ?Sized>(&self, values: &[u32], mode: SimMode, rng: &mut R) -> Vec<f64> {
        let obs = match mode {
            SimMode::Exact => {
                let mut obs = vec![0u64; self.out_bins];
                for &v in values {
                    let v01 = (v as f64 + 0.5) / self.bins as f64;
                    let y = self.perturb(v01, rng);
                    obs[self.out_bin_of(y)] += 1;
                }
                obs
            }
            SimMode::Fast => {
                let mut true_counts = vec![0u64; self.bins];
                for &v in values {
                    true_counts[v as usize] += 1;
                }
                self.sample_output_histogram(&true_counts, rng)
            }
        };
        self.em(&obs)
    }

    /// Fast path: samples the output histogram column-by-column from the
    /// transition kernel (exact in distribution given bin-center inputs).
    fn sample_output_histogram<R: Rng + ?Sized>(
        &self,
        true_counts: &[u64],
        rng: &mut R,
    ) -> Vec<u64> {
        let t = self.transition_matrix();
        let mut obs = vec![0u64; self.out_bins];
        let mut col = vec![0f64; self.out_bins];
        for (i, &cnt) in true_counts.iter().enumerate() {
            if cnt == 0 {
                continue;
            }
            for j in 0..self.out_bins {
                col[j] = t[j * self.bins + i];
            }
            for (o, d) in obs.iter_mut().zip(multinomial(rng, cnt, &col)) {
                *o += d;
            }
        }
        obs
    }

    #[inline]
    fn out_bin_of(&self, y: f64) -> usize {
        let lo = -self.delta;
        let w = (1.0 + 2.0 * self.delta) / self.out_bins as f64;
        (((y - lo) / w).floor() as isize).clamp(0, self.out_bins as isize - 1) as usize
    }

    /// `T[j * bins + i] = Pr[output bin j | input bin i]`, integrating the
    /// square-wave kernel over output bin `j` with the input at bin center.
    fn transition_matrix(&self) -> Vec<f64> {
        let w_out = (1.0 + 2.0 * self.delta) / self.out_bins as f64;
        let lo = -self.delta;
        let mut t = vec![0f64; self.out_bins * self.bins];
        for i in 0..self.bins {
            let v = (i as f64 + 0.5) / self.bins as f64;
            let (band_lo, band_hi) = (v - self.delta, v + self.delta);
            for j in 0..self.out_bins {
                let (b_lo, b_hi) = (lo + j as f64 * w_out, lo + (j + 1) as f64 * w_out);
                let overlap = (b_hi.min(band_hi) - b_lo.max(band_lo)).max(0.0);
                t[j * self.bins + i] = self.q * w_out + (self.p - self.q) * overlap;
            }
        }
        t
    }

    /// Coarse single-frequency estimation variance analogue, treating a
    /// report inside a value's ±δ band as "support": a holder lands there
    /// with mass `p_eff = 2δp`, a uniformly random non-holder with mass
    /// `q_eff = 2δ` (unit density over the unit interval). This is a
    /// diagnostic figure for oracle comparison dashboards — EM estimates
    /// are not per-cell unbiasings, so no exact closed form exists.
    pub fn variance(&self, n: usize) -> f64 {
        let p_eff = 2.0 * self.delta * self.p;
        let q_eff = 2.0 * self.delta;
        q_eff * (1.0 - q_eff) / ((p_eff - q_eff).powi(2) * n as f64)
    }

    /// EM reconstruction of the input distribution from the observed output
    /// histogram. Returns a non-negative vector summing to 1.
    fn em(&self, obs: &[u64]) -> Vec<f64> {
        let t = self.transition_matrix();
        let n: u64 = obs.iter().sum();
        if n == 0 {
            return vec![1.0 / self.bins as f64; self.bins];
        }
        let n_f = n as f64;
        let mut f = vec![1.0 / self.bins as f64; self.bins];
        let mut next = vec![0f64; self.bins];
        let mut prev_ll = f64::NEG_INFINITY;
        for _ in 0..self.max_iters {
            next.iter_mut().for_each(|x| *x = 0.0);
            let mut ll = 0.0;
            for (j, &o) in obs.iter().enumerate() {
                if o == 0 {
                    continue;
                }
                let row = &t[j * self.bins..(j + 1) * self.bins];
                let mut denom = 0.0;
                for (i, &fi) in f.iter().enumerate() {
                    denom += row[i] * fi;
                }
                if denom <= 0.0 {
                    continue;
                }
                ll += o as f64 * denom.ln();
                let scale = o as f64 / (n_f * denom);
                for (i, &fi) in f.iter().enumerate() {
                    next[i] += fi * row[i] * scale;
                }
            }
            if self.smoothing {
                smooth_binomial(&mut next);
            }
            // Renormalize to guard against drift from smoothing.
            let total: f64 = next.iter().sum();
            if total > 0.0 {
                next.iter_mut().for_each(|x| *x /= total);
            }
            std::mem::swap(&mut f, &mut next);
            if (ll - prev_ll).abs() < 1e-7 * ll.abs().max(1.0) {
                break;
            }
            prev_ll = ll;
        }
        f
    }
}

impl crate::FrequencyOracle for SquareWave {
    fn kind(&self) -> crate::OracleChoice {
        crate::OracleChoice::Sw
    }

    fn domain(&self) -> usize {
        self.bins
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// SW support counters are *output-bin* counters, not value counters:
    /// the aggregator accumulates the discretized report histogram and EM
    /// inverts it at estimation time.
    fn support_cells(&self) -> usize {
        self.out_bins
    }

    /// The wire pair carries the report point's `f64` bit pattern in `y`
    /// (`seed = 0` — SW has no per-user hash).
    fn randomize(&self, value: usize, rng: &mut dyn rand::RngCore) -> (u64, u64) {
        debug_assert!(value < self.bins);
        let v01 = (value as f64 + 0.5) / self.bins as f64;
        (0, self.perturb(v01, rng).to_bits())
    }

    /// Folds report points into the output histogram. `out_bin_of` clamps
    /// every float — including hostile NaN/∞ bit patterns a dishonest
    /// client could send — onto a valid bin, deterministically, so the
    /// fold never panics and stays order-independent (`u64` adds).
    fn add_support_batch(&self, reports: &[(u64, u64)], supports: &mut [u64]) {
        debug_assert_eq!(supports.len(), self.out_bins);
        for &(_seed, y_bits) in reports {
            supports[self.out_bin_of(f64::from_bits(y_bits))] += 1;
        }
    }

    /// EM reconstruction over the accumulated output histogram; the
    /// `reports` count is implicit in the histogram total.
    fn estimate(&self, supports: &[u64], _reports: u64) -> Vec<f64> {
        self.em(supports)
    }

    fn variance(&self, n: usize) -> f64 {
        SquareWave::variance(self, n)
    }
}

/// In-place convolution with the binomial kernel [1, 2, 1]/4 (EMS smoothing).
fn smooth_binomial(f: &mut [f64]) {
    if f.len() < 3 {
        return;
    }
    let mut prev = f[0];
    let last = f.len() - 1;
    let first = (2.0 * f[0] + f[1]) / 3.0;
    for i in 1..last {
        let cur = f[i];
        f[i] = (prev + 2.0 * cur + f[i + 1]) / 4.0;
        prev = cur;
    }
    f[last] = (prev + 2.0 * f[last]) / 3.0;
    f[0] = first;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(SquareWave::new(0.0, 64).is_err());
        assert!(SquareWave::new(1.0, 1).is_err());
    }

    #[test]
    fn densities_satisfy_ldp_ratio_and_normalization() {
        for eps in [0.5, 1.0, 2.0] {
            let sw = SquareWave::new(eps, 64).unwrap();
            assert!((sw.p() / sw.q() - eps.exp()).abs() < 1e-9);
            // Total mass: 2δp + 1·q = 1.
            let total = 2.0 * sw.delta() * sw.p() + sw.q();
            assert!((total - 1.0).abs() < 1e-9, "total {total}");
            assert!(sw.delta() > 0.0 && sw.delta() < 1.0);
        }
    }

    #[test]
    fn perturb_output_in_range_and_concentrated() {
        let sw = SquareWave::new(1.0, 64).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let v = 0.3;
        let mut near = 0usize;
        let n = 50_000;
        for _ in 0..n {
            let y = sw.perturb(v, &mut rng);
            assert!(y >= -sw.delta() - 1e-12 && y <= 1.0 + sw.delta() + 1e-12);
            if (y - v).abs() <= sw.delta() {
                near += 1;
            }
        }
        let got = near as f64 / n as f64;
        let want = 2.0 * sw.delta() * sw.p();
        assert!((got - want).abs() < 0.01, "near fraction {got} vs {want}");
    }

    #[test]
    fn transition_matrix_columns_sum_to_one() {
        let sw = SquareWave::new(1.0, 32).unwrap();
        let t = sw.transition_matrix();
        for i in 0..sw.bins {
            let s: f64 = (0..sw.out_bins).map(|j| t[j * sw.bins + i]).sum();
            assert!((s - 1.0).abs() < 1e-9, "column {i} sums to {s}");
        }
    }

    #[test]
    fn em_recovers_distribution() {
        // A bimodal distribution should be recovered with small L1 error at a
        // generous privacy budget and population.
        let sw = SquareWave::new(2.0, 16).unwrap();
        let n = 60_000usize;
        let mut values = Vec::with_capacity(n);
        values.extend(std::iter::repeat_n(2u32, n / 2));
        values.extend(std::iter::repeat_n(12u32, n / 2));
        let mut rng = StdRng::seed_from_u64(17);
        let f = sw.collect(&values, SimMode::Fast, &mut rng);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Mass near the modes dominates.
        let m2: f64 = f[1..4].iter().sum();
        let m12: f64 = f[11..14].iter().sum();
        assert!(m2 > 0.3, "mode at 2 has mass {m2}");
        assert!(m12 > 0.3, "mode at 12 has mass {m12}");
    }

    #[test]
    fn exact_and_fast_reconstructions_agree() {
        let sw = SquareWave::new(1.0, 16).unwrap();
        let n = 30_000usize;
        let values: Vec<u32> = (0..n as u32).map(|i| (i % 4) * 4).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let fe = sw.collect(&values, SimMode::Exact, &mut rng);
        let mut rng = StdRng::seed_from_u64(6);
        let ff = sw.collect(&values, SimMode::Fast, &mut rng);
        // Per-bin estimates are noisy (EM amplifies sampling noise on spiky
        // inputs), but range sums — what MSW actually consumes — must agree.
        for (lo, hi) in [(0usize, 8usize), (4, 12), (0, 16), (2, 6)] {
            let re: f64 = fe[lo..hi].iter().sum();
            let rf: f64 = ff[lo..hi].iter().sum();
            assert!(
                (re - rf).abs() < 0.05,
                "range [{lo},{hi}): exact {re} fast {rf}"
            );
        }
    }

    #[test]
    fn smoothing_preserves_mass() {
        let mut f = vec![0.1, 0.5, 0.2, 0.1, 0.1];
        let before: f64 = f.iter().sum();
        smooth_binomial(&mut f);
        let after: f64 = f.iter().sum();
        // Kernel is mass-preserving up to edge renormalization; EM
        // renormalizes right after, so only rough conservation matters.
        assert!((before - after).abs() < 0.05);
        // Peak is flattened.
        assert!(f[1] < 0.5);
    }

    #[test]
    fn em_handles_empty_group() {
        let sw = SquareWave::new(1.0, 8).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let f = sw.collect(&[], SimMode::Fast, &mut rng);
        assert_eq!(f.len(), 8);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
