//! LDP frequency oracles (paper §2.2, §3.5).
//!
//! This crate implements the three local-differential-privacy primitives the
//! paper builds on, plus the user-partitioning principle of §2.3:
//!
//! * [`grr`] — Generalized Randomized Response (Eq. 1), the basic categorical
//!   mechanism; estimation variance per Eq. 2.
//! * [`olh`] — Optimized Local Hash (Wang et al. 2017), the oracle every grid
//!   and hierarchy in the paper reports through; variance per Eq. 3.
//! * [`sw`] — Square Wave (Li et al. 2020) with Expectation–Maximization
//!   reconstruction, used by the MSW baseline (§3.5).
//! * [`wheel`] — the Wheel mechanism (Wang et al. 2020), the paper's cited
//!   same-variance alternative to OLH (§6).
//! * [`adaptive`] — the GRR-vs-OLH domain-size rule (`c − 2 < 3eᵋ` ⇒ GRR).
//! * [`partition`] — random division of users into reporting groups.
//!
//! # Exact vs. fast simulation
//!
//! Each oracle supports two statistically equivalent collection modes
//! ([`SimMode`]): `Exact` runs the per-user protocol verbatim (perturb each
//! report, aggregate supports), `Fast` samples the aggregate support counts
//! directly from their exact sampling distribution (sums of binomials). Fast
//! mode turns an `O(n_users × domain)` aggregation into `O(domain)` sampling
//! and is what makes sweeping the paper's full evaluation grid tractable;
//! the statistical equivalence is asserted by unit tests in this crate.

pub mod adaptive;
pub mod grr;
pub mod olh;
pub mod partition;
pub mod sw;
pub mod wheel;

pub use adaptive::{choose_oracle, AdaptiveOracle, OracleChoice, OraclePolicy};
pub use grr::Grr;
pub use olh::{Olh, OlhReport, OlhReportSet};
pub use partition::{partition_users, proportional_sizes};
pub use sw::SquareWave;
pub use wheel::{Wheel, WheelReport};

use rand::RngCore;

/// A pluggable LDP frequency oracle — the protocol-facing contract every
/// mechanism plugs into (paper §2.2).
///
/// The trait covers the three protocol roles an oracle plays:
///
/// 1. **Client**: [`randomize`](FrequencyOracle::randomize) perturbs one
///    value into a `(seed, y)` wire pair — the complete content of a
///    report. OLH fills both halves (hash seed + perturbed hashed value);
///    seedless oracles like GRR set `seed = 0` and carry the perturbed
///    value in `y`. Continuous-output oracles (Wheel, Square Wave) carry
///    the report point's `f64` bit pattern in `y` — the pair is wide
///    enough (`u64`) for either shape, and integer-valued oracles use
///    values `< 2³²` so nothing changes for them.
/// 2. **Aggregator hot loop**:
///    [`add_support_batch`](FrequencyOracle::add_support_batch) folds a
///    batch of wire pairs into per-value support counters. Support counts
///    are sums of per-report `u64` increments, so folding commutes across
///    any batching or sharding — the invariant the parallel ingestion
///    engine is built on. Counter layout is oracle-defined:
///    [`support_cells`](FrequencyOracle::support_cells) is `domain` for
///    value-supporting oracles but an output-histogram width for SW.
/// 3. **Estimation**: [`estimate`](FrequencyOracle::estimate) unbiases the
///    counters into frequency estimates, and
///    [`variance`](FrequencyOracle::variance) reports the per-frequency
///    estimation variance the adaptive GRR-vs-OLH rule compares.
///
/// Implementations must keep every method bit-identical to their concrete
/// inherent counterparts (pinned by `tests/oracle_trait.rs`): dispatching
/// through the trait is a routing decision, never a numeric one.
pub trait FrequencyOracle: Send + Sync {
    /// Which concrete oracle this is (the wire/protocol discriminant).
    fn kind(&self) -> OracleChoice;

    /// Input domain size `c`.
    fn domain(&self) -> usize;

    /// Privacy budget ε.
    fn epsilon(&self) -> f64;

    /// Number of accumulator cells
    /// [`add_support_batch`](FrequencyOracle::add_support_batch) folds
    /// into. Defaults to [`domain`](FrequencyOracle::domain) (one counter
    /// per value); SW overrides it with its output-histogram width.
    fn support_cells(&self) -> usize {
        self.domain()
    }

    /// Client side: perturbs `value` into a `(seed, y)` wire pair.
    fn randomize(&self, value: usize, rng: &mut dyn RngCore) -> (u64, u64);

    /// Aggregator side: folds a batch of `(seed, y)` wire pairs into
    /// support counters (`supports.len() == support_cells()`). Pairs a
    /// dishonest client could never produce (e.g. out-of-range `y`, or a
    /// NaN bit pattern for float-carrying oracles) must be absorbed
    /// without panicking — they simply support nothing.
    fn add_support_batch(&self, reports: &[(u64, u64)], supports: &mut [u64]);

    /// Unbiased frequency estimates from support counters over `reports`
    /// ingested reports.
    fn estimate(&self, supports: &[u64], reports: u64) -> Vec<f64>;

    /// Estimation variance of a single frequency at population `n`.
    fn variance(&self, n: usize) -> f64;
}

/// How aggregate frequencies are produced from a user group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimMode {
    /// Per-user perturbation and aggregation, exactly as the protocol runs.
    Exact,
    /// Direct sampling of the aggregate estimate distribution (same mean and
    /// variance as `Exact`; see the module docs).
    #[default]
    Fast,
}

/// Errors from invalid oracle parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleError {
    /// `epsilon` must be strictly positive and finite.
    InvalidEpsilon(f64),
    /// Categorical domains need at least two values.
    DomainTooSmall(usize),
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::InvalidEpsilon(e) => {
                write!(f, "epsilon must be positive and finite, got {e}")
            }
            OracleError::DomainTooSmall(c) => {
                write!(f, "domain must have at least 2 values, got {c}")
            }
        }
    }
}

impl std::error::Error for OracleError {}

/// Validates a privacy budget: strictly positive and finite.
pub fn validate_epsilon(epsilon: f64) -> Result<(), OracleError> {
    check_epsilon(epsilon)
}

pub(crate) fn check_epsilon(epsilon: f64) -> Result<(), OracleError> {
    if !(epsilon > 0.0 && epsilon.is_finite()) {
        return Err(OracleError::InvalidEpsilon(epsilon));
    }
    Ok(())
}

pub(crate) fn check_domain(domain: usize) -> Result<(), OracleError> {
    if domain < 2 {
        return Err(OracleError::DomainTooSmall(domain));
    }
    Ok(())
}
