//! LDP frequency oracles (paper §2.2, §3.5).
//!
//! This crate implements the three local-differential-privacy primitives the
//! paper builds on, plus the user-partitioning principle of §2.3:
//!
//! * [`grr`] — Generalized Randomized Response (Eq. 1), the basic categorical
//!   mechanism; estimation variance per Eq. 2.
//! * [`olh`] — Optimized Local Hash (Wang et al. 2017), the oracle every grid
//!   and hierarchy in the paper reports through; variance per Eq. 3.
//! * [`sw`] — Square Wave (Li et al. 2020) with Expectation–Maximization
//!   reconstruction, used by the MSW baseline (§3.5).
//! * [`wheel`] — the Wheel mechanism (Wang et al. 2020), the paper's cited
//!   same-variance alternative to OLH (§6).
//! * [`adaptive`] — the GRR-vs-OLH domain-size rule (`c − 2 < 3eᵋ` ⇒ GRR).
//! * [`partition`] — random division of users into reporting groups.
//!
//! # Exact vs. fast simulation
//!
//! Each oracle supports two statistically equivalent collection modes
//! ([`SimMode`]): `Exact` runs the per-user protocol verbatim (perturb each
//! report, aggregate supports), `Fast` samples the aggregate support counts
//! directly from their exact sampling distribution (sums of binomials). Fast
//! mode turns an `O(n_users × domain)` aggregation into `O(domain)` sampling
//! and is what makes sweeping the paper's full evaluation grid tractable;
//! the statistical equivalence is asserted by unit tests in this crate.

pub mod adaptive;
pub mod grr;
pub mod olh;
pub mod partition;
pub mod sw;
pub mod wheel;

pub use adaptive::{choose_oracle, OracleChoice};
pub use olh::{Olh, OlhReport, OlhReportSet};
pub use partition::{partition_users, proportional_sizes};
pub use wheel::{Wheel, WheelReport};

/// How aggregate frequencies are produced from a user group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimMode {
    /// Per-user perturbation and aggregation, exactly as the protocol runs.
    Exact,
    /// Direct sampling of the aggregate estimate distribution (same mean and
    /// variance as `Exact`; see the module docs).
    #[default]
    Fast,
}

/// Errors from invalid oracle parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleError {
    /// `epsilon` must be strictly positive and finite.
    InvalidEpsilon(f64),
    /// Categorical domains need at least two values.
    DomainTooSmall(usize),
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::InvalidEpsilon(e) => {
                write!(f, "epsilon must be positive and finite, got {e}")
            }
            OracleError::DomainTooSmall(c) => {
                write!(f, "domain must have at least 2 values, got {c}")
            }
        }
    }
}

impl std::error::Error for OracleError {}

/// Validates a privacy budget: strictly positive and finite.
pub fn validate_epsilon(epsilon: f64) -> Result<(), OracleError> {
    check_epsilon(epsilon)
}

pub(crate) fn check_epsilon(epsilon: f64) -> Result<(), OracleError> {
    if !(epsilon > 0.0 && epsilon.is_finite()) {
        return Err(OracleError::InvalidEpsilon(epsilon));
    }
    Ok(())
}

pub(crate) fn check_domain(domain: usize) -> Result<(), OracleError> {
    if domain < 2 {
        return Err(OracleError::DomainTooSmall(domain));
    }
    Ok(())
}
