//! The principle of dividing users (paper §2.3).
//!
//! In the local setting, collecting `m` pieces of information is best done by
//! randomly splitting the population into `m` groups (an `m×` variance
//! factor) rather than splitting the privacy budget (an `m²` factor). Every
//! mechanism in this workspace partitions users through this module so the
//! random assignment is uniform and reproducible.

use rand::seq::SliceRandom;
use rand::Rng;

/// Splits `n` into `weights.len()` integer sizes proportional to `weights`,
/// summing exactly to `n` (largest-remainder rounding).
///
/// Every weight must be finite and non-negative: a negative weight would
/// inflate `total` while contributing nothing assignable, leaving the
/// floors summing past `n` and the leftover count underflowing.
pub fn proportional_sizes(n: usize, weights: &[f64]) -> Vec<usize> {
    assert!(!weights.is_empty(), "need at least one group");
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be finite and non-negative"
    );
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must have positive mass");
    let mut sizes = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(weights.len());
    let mut assigned = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        let exact = n as f64 * w / total;
        let floor = exact.floor() as usize;
        sizes.push(floor);
        assigned += floor;
        remainders.push((i, exact - floor as f64));
    }
    // Hand out the leftover units to the largest remainders.
    remainders.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    for k in 0..(n - assigned) {
        sizes[remainders[k % remainders.len()].0] += 1;
    }
    sizes
}

/// Randomly partitions user indices `0..n` into groups of the given sizes.
///
/// Panics if `sizes` does not sum to `n`. Returns one index vector per group;
/// the assignment is a uniform random partition.
pub fn partition_users<R: Rng + ?Sized>(n: usize, sizes: &[usize], rng: &mut R) -> Vec<Vec<u32>> {
    assert_eq!(sizes.iter().sum::<usize>(), n, "group sizes must sum to n");
    assert!(n <= u32::MAX as usize, "user indices are stored as u32");
    let mut ids: Vec<u32> = (0..n as u32).collect();
    ids.shuffle(rng);
    let mut out = Vec::with_capacity(sizes.len());
    let mut start = 0usize;
    for &s in sizes {
        out.push(ids[start..start + s].to_vec());
        start += s;
    }
    out
}

/// Convenience: `m` equal-population groups (the paper's default split).
pub fn partition_equal<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Vec<Vec<u32>> {
    partition_users(n, &proportional_sizes(n, &vec![1.0; m]), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn proportional_sizes_sum_exactly() {
        for n in [0usize, 1, 7, 100, 1_000_003] {
            for weights in [vec![1.0; 3], vec![1.0, 2.0, 3.0], vec![0.3, 0.7]] {
                let sizes = proportional_sizes(n, &weights);
                assert_eq!(sizes.iter().sum::<usize>(), n);
            }
        }
    }

    #[test]
    fn proportional_sizes_are_proportional() {
        let sizes = proportional_sizes(1000, &[1.0, 3.0]);
        assert_eq!(sizes, vec![250, 750]);
        let sizes = proportional_sizes(21, &[6.0, 15.0]);
        assert_eq!(sizes, vec![6, 15]);
    }

    #[test]
    fn partition_covers_all_users_once() {
        let mut rng = StdRng::seed_from_u64(1);
        let groups = partition_equal(1003, 7, &mut rng);
        assert_eq!(groups.len(), 7);
        let mut seen = vec![false; 1003];
        for g in &groups {
            for &u in g {
                assert!(!seen[u as usize], "user {u} appears twice");
                seen[u as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
        // Group sizes differ by at most 1.
        let (min, max) = groups.iter().fold((usize::MAX, 0), |(lo, hi), g| {
            (lo.min(g.len()), hi.max(g.len()))
        });
        assert!(max - min <= 1);
    }

    #[test]
    fn partition_is_random_but_seeded() {
        let a = partition_equal(100, 4, &mut StdRng::seed_from_u64(5));
        let b = partition_equal(100, 4, &mut StdRng::seed_from_u64(5));
        let c = partition_equal(100, 4, &mut StdRng::seed_from_u64(6));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "sum to n")]
    fn partition_rejects_bad_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = partition_users(10, &[3, 3], &mut rng);
    }

    /// Regression: a negative weight used to be clamped per-entry but still
    /// counted in `total`, so the floors could sum past `n` and the
    /// leftover count `n - assigned` underflowed `usize` (debug panic with
    /// "attempt to subtract with overflow", near-infinite loop in release).
    /// It must be rejected up front with a named invariant instead.
    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn proportional_sizes_rejects_negative_weights() {
        let _ = proportional_sizes(10, &[5.0, -4.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn proportional_sizes_rejects_non_finite_weights() {
        let _ = proportional_sizes(10, &[1.0, f64::NAN]);
    }
}
