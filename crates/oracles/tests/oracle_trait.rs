//! The load-bearing contract of the `FrequencyOracle` trait: dispatching
//! through the trait (or through a trait object) is a *routing* decision,
//! never a numeric one. For arbitrary `(ε, domain)`, every trait method —
//! `randomize`, the batched support kernel at all unroll remainders and
//! tiling boundaries, and `estimate` — must be bit-identical to calling
//! the concrete `Olh`/`Grr` inherent API directly, and the `auto` policy
//! must select exactly the paper's variance rule per domain.

use privmdr_oracles::{
    choose_oracle, FrequencyOracle, Grr, Olh, OracleChoice, OraclePolicy, Wheel,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random wire pairs: well-mixed seeds, `y` ranging past every hashed and
/// raw domain in the sweep so out-of-range values are exercised too.
fn random_pairs(n: usize, rng: &mut StdRng) -> Vec<(u64, u64)> {
    (0..n)
        .map(|_| (rng.random(), rng.random_range(0..40u64)))
        .collect()
}

proptest! {
    /// Trait-object `randomize` consumes the same randomness and returns
    /// the same wire pair as the concrete perturbation calls.
    #[test]
    fn randomize_matches_concrete(
        eps in 0.2f64..3.0,
        domain in 2usize..40,
        value_seed in any::<u64>(),
        rng_seed in any::<u64>(),
    ) {
        let value = (value_seed % domain as u64) as usize;

        let olh = Olh::new(eps, domain).unwrap();
        let via_concrete = {
            let mut rng = StdRng::seed_from_u64(rng_seed);
            let r = olh.perturb(value, &mut rng);
            (r.seed, r.y as u64)
        };
        let via_trait = {
            let mut rng = StdRng::seed_from_u64(rng_seed);
            let dyn_oracle: &dyn FrequencyOracle = &olh;
            dyn_oracle.randomize(value, &mut rng)
        };
        prop_assert_eq!(via_concrete, via_trait, "OLH randomize diverges");

        let grr = Grr::new(eps, domain).unwrap();
        let via_concrete = {
            let mut rng = StdRng::seed_from_u64(rng_seed);
            (0u64, grr.perturb(value, &mut rng) as u64)
        };
        let via_trait = {
            let mut rng = StdRng::seed_from_u64(rng_seed);
            let dyn_oracle: &dyn FrequencyOracle = &grr;
            dyn_oracle.randomize(value, &mut rng)
        };
        prop_assert_eq!(via_concrete, via_trait, "GRR randomize diverges");
    }

    /// The trait-object support kernel is bit-identical to the concrete
    /// batched kernel AND to one-pair-at-a-time folding, at every batch
    /// length around the ×4 unroll (remainders 0..=4) and across tiling
    /// block boundaries.
    #[test]
    fn support_kernel_matches_concrete_at_all_remainders(
        eps in 0.2f64..3.0,
        domain in 2usize..24,
        seed in any::<u64>(),
        block in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs = random_pairs(21, &mut rng);
        let olh = Olh::new(eps, domain).unwrap();
        let grr = Grr::new(eps, domain).unwrap();
        let oracles: [&dyn FrequencyOracle; 2] = [&olh, &grr];
        // 0..=5 covers every ×4 unroll remainder; 21 adds a longer tail.
        for n in [0usize, 1, 2, 3, 4, 5, 21] {
            for oracle in oracles {
                let mut via_trait = vec![0u64; domain];
                oracle.add_support_batch(&pairs[..n], &mut via_trait);

                let mut one_at_a_time = vec![0u64; domain];
                for &pair in &pairs[..n] {
                    oracle.add_support_batch(&[pair], &mut one_at_a_time);
                }
                prop_assert_eq!(
                    &via_trait,
                    &one_at_a_time,
                    "{} batch {} != per-pair", oracle.kind().name(), n
                );
            }
            // Concrete-vs-trait, including the OLH kernel's explicit
            // tiling override sweeping small blocks.
            let mut concrete = vec![0u64; domain];
            olh.add_support_batch_with_block(&pairs[..n], &mut concrete, block);
            let mut via_trait = vec![0u64; domain];
            FrequencyOracle::add_support_batch(&olh, &pairs[..n], &mut via_trait);
            prop_assert_eq!(&concrete, &via_trait, "OLH trait != block {}", block);

            let mut concrete = vec![0u64; domain];
            Grr::add_support_batch(&grr, &pairs[..n], &mut concrete);
            let mut via_trait = vec![0u64; domain];
            FrequencyOracle::add_support_batch(&grr, &pairs[..n], &mut via_trait);
            prop_assert_eq!(&concrete, &via_trait, "GRR trait != concrete");
        }
    }

    /// Trait-object estimation is bit-identical to the concrete unbiasing:
    /// folding honest reports through the kernel and estimating equals
    /// `aggregate` for OLH and the count-unbias pipeline for GRR.
    #[test]
    fn estimate_matches_concrete(
        eps in 0.2f64..3.0,
        domain in 2usize..24,
        n_reports in 1usize..200,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let olh = Olh::new(eps, domain).unwrap();
        let reports: Vec<_> = (0..n_reports)
            .map(|i| olh.perturb(i % domain, &mut rng))
            .collect();
        let concrete = olh.aggregate(&reports);
        let pairs: Vec<(u64, u64)> = reports.iter().map(|r| (r.seed, r.y as u64)).collect();
        let dyn_oracle: &dyn FrequencyOracle = &olh;
        let mut supports = vec![0u64; domain];
        dyn_oracle.add_support_batch(&pairs, &mut supports);
        let via_trait = dyn_oracle.estimate(&supports, n_reports as u64);
        prop_assert_eq!(concrete.len(), via_trait.len());
        for (a, b) in concrete.iter().zip(&via_trait) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "OLH estimate diverges");
        }

        let grr = Grr::new(eps, domain).unwrap();
        let raw: Vec<u32> = (0..n_reports)
            .map(|i| grr.perturb(i % domain, &mut rng) as u32)
            .collect();
        let concrete = grr.aggregate(&raw);
        let pairs: Vec<(u64, u64)> = raw.iter().map(|&y| (0u64, y as u64)).collect();
        let dyn_oracle: &dyn FrequencyOracle = &grr;
        let mut supports = vec![0u64; domain];
        dyn_oracle.add_support_batch(&pairs, &mut supports);
        let via_trait = dyn_oracle.estimate(&supports, n_reports as u64);
        for (a, b) in concrete.iter().zip(&via_trait) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "GRR estimate diverges");
        }
    }

    /// The policy layer: fixed policies always pick their oracle, and
    /// `Auto` applies exactly the paper's `c − 2 < 3eᵋ` rule; the built
    /// oracle's parameters and kind agree with the selection.
    #[test]
    fn policy_selection_matches_rule(
        eps in 0.2f64..3.0,
        domain in 2usize..200,
    ) {
        prop_assert_eq!(OraclePolicy::Olh.select(eps, domain), OracleChoice::Olh);
        prop_assert_eq!(OraclePolicy::Grr.select(eps, domain), OracleChoice::Grr);
        let auto = OraclePolicy::Auto.select(eps, domain);
        prop_assert_eq!(auto, choose_oracle(eps, domain));
        let expected = if (domain as f64) - 2.0 < 3.0 * eps.exp() {
            OracleChoice::Grr
        } else {
            OracleChoice::Olh
        };
        prop_assert_eq!(auto, expected);

        prop_assert_eq!(OraclePolicy::Wheel.select(eps, domain), OracleChoice::Wheel);
        prop_assert_eq!(OraclePolicy::Sw.select(eps, domain), OracleChoice::Sw);

        for policy in [
            OraclePolicy::Olh,
            OraclePolicy::Grr,
            OraclePolicy::Auto,
            OraclePolicy::Wheel,
            OraclePolicy::Sw,
        ] {
            let oracle = policy.build(eps, domain).unwrap();
            prop_assert_eq!(oracle.kind(), policy.select(eps, domain));
            prop_assert_eq!(FrequencyOracle::domain(&oracle), domain);
            prop_assert_eq!(FrequencyOracle::epsilon(&oracle), eps);
            // Value-supporting oracles count per value; SW counts output
            // bins, strictly more than the input bins by construction.
            match oracle.kind() {
                OracleChoice::Sw => {
                    prop_assert!(FrequencyOracle::support_cells(&oracle) > domain)
                }
                _ => prop_assert_eq!(FrequencyOracle::support_cells(&oracle), domain),
            }
        }
    }

    /// Trait-object Wheel dispatch is bit-identical to the concrete API:
    /// the same randomness gives the same wire pair, and folding pairs
    /// through the trait kernel + `estimate` equals `aggregate`.
    #[test]
    fn wheel_trait_matches_concrete(
        eps in 0.2f64..3.0,
        domain in 2usize..24,
        n_reports in 1usize..200,
        seed in any::<u64>(),
    ) {
        let wheel = Wheel::new(eps, domain).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<_> = (0..n_reports)
            .map(|i| wheel.perturb(i % domain, &mut rng))
            .collect();

        let dyn_oracle: &dyn FrequencyOracle = &wheel;
        let concrete = wheel.aggregate(&reports);
        let pairs: Vec<(u64, u64)> = reports.iter().map(|r| (r.seed, r.y.to_bits())).collect();
        let mut supports = vec![0u64; domain];
        dyn_oracle.add_support_batch(&pairs, &mut supports);
        let via_trait = dyn_oracle.estimate(&supports, n_reports as u64);
        prop_assert_eq!(concrete.len(), via_trait.len());
        for (a, b) in concrete.iter().zip(&via_trait) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "Wheel estimate diverges");
        }

        let value = (seed % domain as u64) as usize;
        let mut rng_a = StdRng::seed_from_u64(seed ^ 0xA5A5);
        let r = wheel.perturb(value, &mut rng_a);
        let mut rng_b = StdRng::seed_from_u64(seed ^ 0xA5A5);
        let (s, y_bits) = dyn_oracle.randomize(value, &mut rng_b);
        prop_assert_eq!((r.seed, r.y.to_bits()), (s, y_bits), "Wheel randomize diverges");
    }
}

/// Out-of-domain `y` values (possible only from dishonest clients) are
/// absorbed by both kernels without panicking: OLH counts no support (no
/// hash output matches), GRR drops the increment.
#[test]
fn hostile_y_values_are_absorbed() {
    let olh = Olh::new(1.0, 8).unwrap();
    let grr = Grr::new(1.0, 8).unwrap();
    let hostile: Vec<(u64, u64)> = (0..50u64).map(|i| (i * 77, u64::MAX - i)).collect();
    let wheel = Wheel::new(1.0, 8).unwrap();
    for oracle in [&olh as &dyn FrequencyOracle, &grr, &wheel] {
        let mut supports = vec![0u64; 8];
        oracle.add_support_batch(&hostile, &mut supports);
        assert!(
            supports.iter().all(|&s| s == 0),
            "{} counted hostile y values",
            oracle.kind().name()
        );
    }
}
