//! Property tests for the frequency oracles.

use privmdr_oracles::grr::Grr;
use privmdr_oracles::olh::Olh;
use privmdr_oracles::partition::{partition_users, proportional_sizes};
use privmdr_oracles::sw::SquareWave;
use privmdr_oracles::{FrequencyOracle, SimMode};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    /// GRR perturbation always outputs a domain value, and its probability
    /// parameters satisfy the ε-LDP ratio exactly.
    #[test]
    fn grr_output_in_domain(
        eps in 0.1f64..4.0,
        domain in 2usize..256,
        v_raw in 0usize..1024,
        seed in any::<u64>(),
    ) {
        let grr = Grr::new(eps, domain).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let y = grr.perturb(v_raw % domain, &mut rng);
        prop_assert!(y < domain);
        prop_assert!((grr.p() / grr.p_prime() - eps.exp()).abs() < 1e-9);
    }

    /// OLH reports use the optimal hashed domain and in-domain outputs.
    #[test]
    fn olh_report_valid(
        eps in 0.1f64..4.0,
        domain in 2usize..256,
        v_raw in 0usize..1024,
        seed in any::<u64>(),
    ) {
        let olh = Olh::new(eps, domain).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let r = olh.perturb(v_raw % domain, &mut rng);
        prop_assert!((r.y as usize) < olh.c_prime());
        prop_assert_eq!(olh.c_prime(), ((eps.exp() + 1.0).round() as usize).max(2));
    }

    /// The block-transposed batch kernel is bit-for-bit the per-report
    /// kernel: for random domains, budgets (i.e. hashed domains c'), tiling
    /// block sizes, and batch lengths — including empty and length-1
    /// batches, and `y` values outside the hashed domain — folding a batch
    /// through `add_support_batch` equals folding its reports one at a time
    /// through `add_support`, with exact u64 equality.
    #[test]
    fn add_support_batch_equals_per_report(
        eps in 0.1f64..4.0,
        domain in 2usize..200,
        n in 0usize..300,
        block in 1usize..40,
        seed in any::<u64>(),
    ) {
        let olh = Olh::new(eps, domain).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.random(), rng.random_range(0..32)))
            .collect();

        let mut per_report = vec![0u64; domain];
        for &(s, y) in &pairs {
            olh.add_support(s, y as u32, &mut per_report);
        }
        let mut batched = vec![0u64; domain];
        olh.add_support_batch(&pairs, &mut batched);
        prop_assert_eq!(&batched, &per_report, "default block");

        let mut tiled = vec![0u64; domain];
        olh.add_support_batch_with_block(&pairs, &mut tiled, block);
        prop_assert_eq!(&tiled, &per_report, "block size {}", block);
    }

    /// Fast collection returns one finite estimate per domain value, with
    /// total near the true total 1 (unbiasedness in aggregate).
    #[test]
    fn fast_collect_shape(
        eps in 0.3f64..3.0,
        domain in 2usize..64,
        seed in any::<u64>(),
    ) {
        let olh = Olh::new(eps, domain).unwrap();
        let values: Vec<u32> = (0..3000u32).map(|i| i % domain as u32).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let f = olh.collect(&values, SimMode::Fast, &mut rng);
        prop_assert_eq!(f.len(), domain);
        prop_assert!(f.iter().all(|x| x.is_finite()));
    }

    /// SW's densities are a valid conditional distribution and the LDP
    /// ratio holds for every budget.
    #[test]
    fn sw_parameters_valid(eps in 0.1f64..4.0, bins in 2usize..512) {
        let sw = SquareWave::new(eps, bins).unwrap();
        prop_assert!(sw.delta() > 0.0);
        prop_assert!((sw.p() / sw.q() - eps.exp()).abs() < 1e-6);
        let total = 2.0 * sw.delta() * sw.p() + sw.q();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// SW perturbation stays inside the padded output interval.
    #[test]
    fn sw_output_in_range(
        eps in 0.2f64..3.0,
        v in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let sw = SquareWave::new(eps, 64).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let y = sw.perturb(v, &mut rng);
        prop_assert!(y >= -sw.delta() - 1e-9 && y <= 1.0 + sw.delta() + 1e-9);
    }

    /// SW's EM reconstruction is a pure function of the observed histogram:
    /// repeated runs on the same counters are bit-identical, invariant to
    /// when/where they run. Together with the pinned-bits unit test below
    /// (asserted under both debug and release in CI) this is the
    /// precondition for pinning MSW golden answers.
    #[test]
    fn sw_em_is_deterministic(
        eps in 0.2f64..3.0,
        bins in 2usize..48,
        seed in any::<u64>(),
        n_scale in 1u64..10_000,
    ) {
        let sw = SquareWave::new(eps, bins).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let obs: Vec<u64> = (0..sw.out_bins())
            .map(|_| rng.random_range(0..n_scale))
            .collect();
        let total: u64 = obs.iter().sum();
        let a = FrequencyOracle::estimate(&sw, &obs, total);
        let b = FrequencyOracle::estimate(&sw, &obs, total);
        prop_assert_eq!(a.len(), bins);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "EM is not deterministic");
        }
        prop_assert!(a.iter().all(|x| x.is_finite() && *x >= 0.0));
    }

    /// Proportional sizes always partition n exactly.
    #[test]
    fn sizes_partition_exactly(
        n in 0usize..100_000,
        weights in prop::collection::vec(0.01f64..10.0, 1..40),
    ) {
        let sizes = proportional_sizes(n, &weights);
        prop_assert_eq!(sizes.iter().sum::<usize>(), n);
        prop_assert_eq!(sizes.len(), weights.len());
    }

    /// Random partitions are exact partitions of the user set.
    #[test]
    fn partition_is_partition(n in 1usize..2000, m in 1usize..20, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sizes = proportional_sizes(n, &vec![1.0; m]);
        let groups = partition_users(n, &sizes, &mut rng);
        let mut seen = vec![false; n];
        for g in &groups {
            for &u in g {
                prop_assert!(!seen[u as usize]);
                seen[u as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&x| x));
    }
}

/// Pinned EM reconstruction bits for one fixed histogram: the exact `u64`
/// bit patterns must reproduce under both debug and release profiles (CI
/// runs this test in both). EM uses only scalar IEEE-754 ops in a fixed
/// iteration order, so optimization level must not change a single bit.
#[test]
fn sw_em_pinned_bits() {
    let sw = SquareWave::new(1.0, 8).unwrap();
    let obs: Vec<u64> = (0..sw.out_bins() as u64)
        .map(|i| (i * 37 + 11) % 101)
        .collect();
    let total: u64 = obs.iter().sum();
    let f = FrequencyOracle::estimate(&sw, &obs, total);
    let bits: Vec<u64> = f.iter().map(|x| x.to_bits()).collect();
    let expected: Vec<u64> = vec![
        4553995124347337789,
        4602939968793853373,
        4562180409030541950,
        4593674313038638247,
        4522621146927474261,
        4576775626778430582,
        4421987841708643665,
        4599704685023312698,
    ];
    assert_eq!(
        bits, expected,
        "EM output bits moved; floats: {f:?}, bits: {bits:?}"
    );
}
