//! Algorithm 1: building the response matrix (paper §4.3).
//!
//! For an attribute pair `(j, k)`, HDG fuses the three grids
//! `{G(j), G(k), G(j,k)}` into a `c × c` matrix `M` whose entries estimate
//! per-value joint frequencies. The construction is Weighted Update
//! (multiplicative weights / iterative proportional fitting): start from the
//! uniform matrix and repeatedly rescale each cell's rectangle so its mass
//! matches the cell's noisy frequency, until the total change per sweep
//! drops below a threshold (the paper uses `1/n`).

use crate::grid1d::Grid1d;
use crate::grid2d::Grid2d;
use crate::prefix::PrefixSum2d;

/// The fused `c × c` joint-frequency estimate for one attribute pair, with a
/// prefix table for O(1) rectangle sums.
#[derive(Debug, Clone)]
pub struct ResponseMatrix {
    c: usize,
    data: Vec<f64>,
    prefix: PrefixSum2d,
    /// Total absolute change in the final sweep (convergence diagnostic).
    pub final_change: f64,
    /// Number of sweeps executed.
    pub iterations: usize,
}

impl ResponseMatrix {
    /// Domain size `c` (matrix is `c × c`).
    pub fn domain(&self) -> usize {
        self.c
    }

    /// Estimated frequency of the joint value `(v_j, v_k)`.
    #[inline]
    pub fn value(&self, vj: usize, vk: usize) -> f64 {
        self.data[vj * self.c + vk]
    }

    /// Sum over the inclusive value rectangle
    /// `[lo_j, hi_j] × [lo_k, hi_k]`.
    #[inline]
    pub fn rect_sum(&self, rect: ((usize, usize), (usize, usize))) -> f64 {
        let ((lo_j, hi_j), (lo_k, hi_k)) = rect;
        self.prefix.rect_inclusive(lo_j, hi_j, lo_k, hi_k)
    }

    /// Raw matrix entries (row-major, `v_j` major).
    pub fn entries(&self) -> &[f64] {
        &self.data
    }
}

/// Observer invoked with the total absolute change after each sweep; used by
/// the Fig. 17 convergence experiment.
pub type SweepObserver<'a> = &'a mut dyn FnMut(usize, f64);

/// Runs Algorithm 1. `threshold` is the total-change stopping criterion
/// (paper: any value below `1/n` gives indistinguishable results);
/// `max_iters` bounds the sweep count (needed when inputs were not
/// post-processed and may be negative, Appendix A.1).
pub fn build_response_matrix(
    g_j: &Grid1d,
    g_k: &Grid1d,
    g_jk: &Grid2d,
    threshold: f64,
    max_iters: usize,
) -> ResponseMatrix {
    build_response_matrix_observed(g_j, g_k, g_jk, threshold, max_iters, None)
}

/// [`build_response_matrix`] with an optional per-sweep observer.
pub fn build_response_matrix_observed(
    g_j: &Grid1d,
    g_k: &Grid1d,
    g_jk: &Grid2d,
    threshold: f64,
    max_iters: usize,
    mut observer: Option<SweepObserver<'_>>,
) -> ResponseMatrix {
    let c = g_jk.domain();
    assert_eq!(g_j.domain(), c, "1-D grid domains must match the pair grid");
    assert_eq!(g_k.domain(), c, "1-D grid domains must match the pair grid");

    let mut m = vec![1.0 / (c * c) as f64; c * c];
    let mut change = f64::INFINITY;
    let mut iterations = 0usize;

    while iterations < max_iters.max(1) && change >= threshold {
        change = 0.0;
        // G(j): each cell constrains a row band [rows] × [0, c).
        let w1j = g_j.cell_width();
        for (cell, &fs) in g_j.freqs.iter().enumerate() {
            change += scale_rect(&mut m, c, cell * w1j, (cell + 1) * w1j, 0, c, fs);
        }
        // G(k): each cell constrains a column band [0, c) × [cols].
        let w1k = g_k.cell_width();
        for (cell, &fs) in g_k.freqs.iter().enumerate() {
            change += scale_rect(&mut m, c, 0, c, cell * w1k, (cell + 1) * w1k, fs);
        }
        // G(j,k): each cell constrains its own rectangle.
        let g2 = g_jk.granularity();
        let w2 = g_jk.cell_width();
        for a in 0..g2 {
            for b in 0..g2 {
                change += scale_rect(
                    &mut m,
                    c,
                    a * w2,
                    (a + 1) * w2,
                    b * w2,
                    (b + 1) * w2,
                    g_jk.cell(a, b),
                );
            }
        }
        iterations += 1;
        if let Some(obs) = observer.as_mut() {
            obs(iterations, change);
        }
    }

    let prefix = PrefixSum2d::build(&m, c, c);
    ResponseMatrix {
        c,
        data: m,
        prefix,
        final_change: change,
        iterations,
    }
}

/// One Weighted Update step: rescales `m`'s half-open rectangle so it sums to
/// `target` (skipped when the current mass is zero, per Algorithm 1 line 7).
/// Returns the total absolute change.
fn scale_rect(
    m: &mut [f64],
    c: usize,
    r0: usize,
    r1: usize,
    c0: usize,
    c1: usize,
    target: f64,
) -> f64 {
    let mut y = 0.0;
    for r in r0..r1 {
        for v in &m[r * c + c0..r * c + c1] {
            y += *v;
        }
    }
    if y == 0.0 {
        return 0.0;
    }
    let factor = target / y;
    let mut change = 0.0;
    for r in r0..r1 {
        for v in &mut m[r * c + c0..r * c + c1] {
            let new = *v * factor;
            change += (new - *v).abs();
            *v = new;
        }
    }
    change
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_1d(attr: usize, g: usize, c: usize) -> Grid1d {
        Grid1d::from_freqs(attr, g, c, vec![1.0 / g as f64; g]).unwrap()
    }

    #[test]
    fn uniform_inputs_give_uniform_matrix() {
        let c = 16;
        let gj = uniform_1d(0, 8, c);
        let gk = uniform_1d(1, 8, c);
        let gjk = Grid2d::from_freqs((0, 1), 4, c, vec![1.0 / 16.0; 16]).unwrap();
        let m = build_response_matrix(&gj, &gk, &gjk, 1e-9, 100);
        for vj in 0..c {
            for vk in 0..c {
                assert!((m.value(vj, vk) - 1.0 / 256.0).abs() < 1e-9);
            }
        }
        assert!(m.iterations <= 3, "uniform case must converge immediately");
    }

    #[test]
    fn matrix_satisfies_all_grid_constraints_at_convergence() {
        let c = 16;
        // A skewed but consistent set of grids derived from one underlying
        // product distribution.
        let fj: Vec<f64> = vec![0.4, 0.2, 0.2, 0.05, 0.05, 0.04, 0.03, 0.03];
        let fk: Vec<f64> = vec![0.05, 0.05, 0.1, 0.1, 0.2, 0.2, 0.2, 0.1];
        let gj = Grid1d::from_freqs(0, 8, c, fj.clone()).unwrap();
        let gk = Grid1d::from_freqs(1, 8, c, fk.clone()).unwrap();
        // 2-D grid at g2=4: aggregate the product of block sums.
        let blk = |f: &Vec<f64>, b: usize| f[2 * b] + f[2 * b + 1];
        let mut f2 = vec![0.0; 16];
        for a in 0..4 {
            for b in 0..4 {
                f2[a * 4 + b] = blk(&fj, a) * blk(&fk, b);
            }
        }
        let gjk = Grid2d::from_freqs((0, 1), 4, c, f2).unwrap();
        let m = build_response_matrix(&gj, &gk, &gjk, 1e-12, 500);

        // Row bands reproduce G(j).
        for (cell, &want) in fj.iter().enumerate() {
            let got = m.rect_sum(((cell * 2, cell * 2 + 1), (0, c - 1)));
            assert!(
                (got - want).abs() < 1e-6,
                "G(j) cell {cell}: {got} vs {want}"
            );
        }
        // Column bands reproduce G(k).
        for (cell, &want) in fk.iter().enumerate() {
            let got = m.rect_sum(((0, c - 1), (cell * 2, cell * 2 + 1)));
            assert!(
                (got - want).abs() < 1e-6,
                "G(k) cell {cell}: {got} vs {want}"
            );
        }
        // 2-D cells reproduce G(j,k).
        for a in 0..4 {
            for b in 0..4 {
                let got = m.rect_sum(((a * 4, a * 4 + 3), (b * 4, b * 4 + 3)));
                let want = gjk.cell(a, b);
                assert!((got - want).abs() < 1e-6, "G(j,k) cell ({a},{b})");
            }
        }
        // Matrix is a distribution.
        let total: f64 = m.entries().iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!(m.entries().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn finer_1d_information_refines_within_coarse_cells() {
        // The 2-D grid alone cannot distinguish values inside a cell; the 1-D
        // grids must reshape the within-cell distribution.
        let c = 8;
        // Attribute j: all mass on values 0..2 (cell 0 of 4, but within the
        // first half of the 2-D cell 0 which spans 0..4).
        let fj = vec![0.5, 0.5, 0.0, 0.0]; // g1 = 4, cell width 2
        let fk = vec![0.25; 4];
        let gj = Grid1d::from_freqs(0, 4, c, fj).unwrap();
        let gk = Grid1d::from_freqs(1, 4, c, fk).unwrap();
        let gjk = Grid2d::from_freqs((0, 1), 2, c, vec![0.5, 0.0, 0.0, 0.5]).unwrap();
        let m = build_response_matrix(&gj, &gk, &gjk, 1e-12, 500);
        // Values of j in 4..8 carry no mass.
        let upper = m.rect_sum(((4, 7), (0, 7)));
        assert!(upper.abs() < 1e-9, "upper half mass {upper}");
        // Mass concentrated in j∈0..4 AND the 2-D structure (k∈0..4).
        let q = m.rect_sum(((0, 3), (0, 3)));
        assert!((q - 0.5).abs() < 1e-6, "quadrant mass {q}");
    }

    #[test]
    fn zero_mass_rectangles_are_skipped_not_nan() {
        let c = 8;
        let gj = Grid1d::from_freqs(0, 4, c, vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        let gk = Grid1d::from_freqs(1, 4, c, vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        let gjk = Grid2d::from_freqs((0, 1), 4, c, {
            let mut f = vec![0.0; 16];
            f[0] = 1.0;
            f
        })
        .unwrap();
        let m = build_response_matrix(&gj, &gk, &gjk, 1e-12, 200);
        assert!(m.entries().iter().all(|v| v.is_finite()));
        assert!((m.rect_sum(((0, 1), (0, 1))) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn observer_reports_convergence_for_consistent_grids() {
        // Consistent constraints (the post-Phase-2 situation): the nested
        // band structure lets iterative proportional fitting satisfy all
        // constraints within one sweep, so the change collapses to the
        // numerical floor immediately after -- the plateau of Fig. 17.
        let c = 16;
        let fj: Vec<f64> = (0..8).map(|i| (i + 1) as f64 / 36.0).collect();
        let fk: Vec<f64> = (0..8).map(|i| (8 - i) as f64 / 36.0).collect();
        let blk = |f: &[f64], b: usize| f[2 * b] + f[2 * b + 1];
        let mut f2 = vec![0.0; 16];
        for a in 0..4 {
            for b in 0..4 {
                f2[a * 4 + b] = blk(&fj, a) * blk(&fk, b);
            }
        }
        // Correlation term with zero block margins keeps constraints
        // consistent while making the joint non-product.
        for (a, b, sign) in [(0, 0, 1.0), (1, 1, 1.0), (0, 1, -1.0), (1, 0, -1.0)] {
            f2[a * 4 + b] += sign * 0.02;
        }
        let gj = Grid1d::from_freqs(0, 8, c, fj.clone()).unwrap();
        let gk = Grid1d::from_freqs(1, 8, c, fk.clone()).unwrap();
        let gjk = Grid2d::from_freqs((0, 1), 4, c, f2).unwrap();
        let mut trace = Vec::new();
        let mut obs = |step: usize, change: f64| trace.push((step, change));
        let m = build_response_matrix_observed(&gj, &gk, &gjk, 1e-12, 60, Some(&mut obs));
        assert_eq!(trace.len(), m.iterations);
        let first = trace.first().unwrap().1;
        let last = trace.last().unwrap().1;
        assert!(last < first * 1e-6, "first {first}, last {last}");
        assert!(last < 1e-12, "converged change {last}");
    }

    #[test]
    fn inconsistent_grids_cycle_boundedly() {
        // With (slightly) inconsistent constraints IPF settles into a limit
        // cycle whose per-sweep change equals the residual inconsistency;
        // max_iters bounds the run and the matrix stays a finite, sensible
        // distribution. This is why Phase 2 must precede Algorithm 1.
        let c = 16;
        let fj: Vec<f64> = (0..8).map(|i| (i + 1) as f64 / 36.0).collect();
        let fk: Vec<f64> = (0..8).map(|i| (8 - i) as f64 / 36.0).collect();
        let blk = |f: &[f64], b: usize| f[2 * b] + f[2 * b + 1];
        let mut f2 = vec![0.0; 16];
        for a in 0..4 {
            for b in 0..4 {
                f2[a * 4 + b] = blk(&fj, a) * blk(&fk, b);
            }
        }
        for (i, v) in f2.iter_mut().enumerate() {
            *v += 0.004 * ((i * 7 % 5) as f64 - 2.0);
        }
        let gj = Grid1d::from_freqs(0, 8, c, fj).unwrap();
        let gk = Grid1d::from_freqs(1, 8, c, fk).unwrap();
        let gjk = Grid2d::from_freqs((0, 1), 4, c, f2).unwrap();
        let mut trace = Vec::new();
        let mut obs = |step: usize, change: f64| trace.push((step, change));
        let m = build_response_matrix_observed(&gj, &gk, &gjk, 1e-12, 40, Some(&mut obs));
        assert_eq!(m.iterations, 40, "must stop on max_iters, not threshold");
        // Change settles to a small constant below the initial transient.
        let first = trace[0].1;
        let tail: Vec<f64> = trace[5..].iter().map(|&(_, ch)| ch).collect();
        let (lo, hi) = tail
            .iter()
            .fold((f64::MAX, f64::MIN), |(l, h), &x| (l.min(x), h.max(x)));
        assert!(hi < first * 0.2, "tail change {hi} vs transient {first}");
        assert!((hi - lo) < 1e-9, "tail is a stable cycle: [{lo}, {hi}]");
        assert!(m.entries().iter().all(|v| v.is_finite() && *v >= 0.0));
        let total: f64 = m.entries().iter().sum();
        assert!((total - 1.0).abs() < 0.05, "total {total}");
    }

    #[test]
    fn respects_max_iters() {
        let c = 8;
        let gj = uniform_1d(0, 4, c);
        let gk = uniform_1d(1, 4, c);
        // Inconsistent (unnormalized) 2-D grid keeps the loop alive.
        let gjk = Grid2d::from_freqs((0, 1), 2, c, vec![0.9, 0.8, 0.7, 0.9]).unwrap();
        let m = build_response_matrix(&gj, &gk, &gjk, 0.0, 7);
        assert_eq!(m.iterations, 7);
    }
}
