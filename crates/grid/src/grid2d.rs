//! 2-D grids (paper §4.1, Phase 1 of both TDG and HDG).
//!
//! A 2-D grid partitions the joint domain `[c] × [c]` of an attribute pair
//! into `g2 × g2` equal cells. Cell frequencies are collected through OLH
//! from the user group assigned to the pair, and are the only source of
//! pairwise-correlation information in TDG/HDG.

use crate::{check_geometry, GridError};
use privmdr_oracles::{OraclePolicy, SimMode};
use rand::Rng;

/// A binned joint-frequency view of an attribute pair `(j, k)` with `j < k`.
///
/// Cells are stored row-major: index `a * g + b` covers the `a`-th interval
/// of attribute `j` crossed with the `b`-th interval of attribute `k`.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid2d {
    attrs: (usize, usize),
    g: usize,
    c: usize,
    /// Cell frequencies, length `g²`; public for Phase-2 post-processing.
    pub freqs: Vec<f64>,
}

impl Grid2d {
    /// Wraps existing cell frequencies (tests, post-processing).
    pub fn from_freqs(
        attrs: (usize, usize),
        g: usize,
        c: usize,
        freqs: Vec<f64>,
    ) -> Result<Self, GridError> {
        check_geometry(g, c)?;
        assert!(attrs.0 < attrs.1, "pair must be ordered (j < k)");
        assert_eq!(freqs.len(), g * g, "frequency vector must have g² entries");
        Ok(Grid2d { attrs, g, c, freqs })
    }

    /// Phase 1: builds the grid from one user group's raw value pairs
    /// `(v_j, v_k)` via OLH at budget `epsilon`.
    pub fn collect<R: Rng + ?Sized>(
        attrs: (usize, usize),
        g: usize,
        c: usize,
        value_pairs: &[(u16, u16)],
        epsilon: f64,
        mode: SimMode,
        rng: &mut R,
    ) -> Result<Self, GridError> {
        Self::collect_with(
            attrs,
            g,
            c,
            value_pairs,
            epsilon,
            OraclePolicy::Olh,
            mode,
            rng,
        )
    }

    /// [`Grid2d::collect`] with an explicit frequency-oracle policy applied
    /// to the grid's `g²`-cell randomization domain (`OraclePolicy::Olh`
    /// reproduces [`Grid2d::collect`] bit for bit).
    #[allow(clippy::too_many_arguments)]
    pub fn collect_with<R: Rng + ?Sized>(
        attrs: (usize, usize),
        g: usize,
        c: usize,
        value_pairs: &[(u16, u16)],
        epsilon: f64,
        oracle: OraclePolicy,
        mode: SimMode,
        rng: &mut R,
    ) -> Result<Self, GridError> {
        check_geometry(g, c)?;
        assert!(attrs.0 < attrs.1, "pair must be ordered (j < k)");
        privmdr_oracles::validate_epsilon(epsilon).map_err(|_| GridError::BadEpsilon(epsilon))?;
        let width = (c / g) as u16;
        let cells: Vec<u32> = value_pairs
            .iter()
            .map(|&(vj, vk)| (vj / width) as u32 * g as u32 + (vk / width) as u32)
            .collect();
        let oracle = oracle
            .build(epsilon, g * g)
            .expect("validated geometry implies valid domain");
        let freqs = oracle.collect(&cells, mode, rng);
        Ok(Grid2d { attrs, g, c, freqs })
    }

    /// Noiseless construction from exact value pairs (ε = ∞ reference).
    pub fn from_exact(
        attrs: (usize, usize),
        g: usize,
        c: usize,
        value_pairs: &[(u16, u16)],
    ) -> Result<Self, GridError> {
        check_geometry(g, c)?;
        assert!(attrs.0 < attrs.1, "pair must be ordered (j < k)");
        let width = (c / g) as u16;
        let mut freqs = vec![0f64; g * g];
        for &(vj, vk) in value_pairs {
            freqs[(vj / width) as usize * g + (vk / width) as usize] += 1.0;
        }
        let n = value_pairs.len().max(1) as f64;
        freqs.iter_mut().for_each(|f| *f /= n);
        Ok(Grid2d { attrs, g, c, freqs })
    }

    /// The ordered attribute pair `(j, k)`.
    pub fn attrs(&self) -> (usize, usize) {
        self.attrs
    }

    /// Per-axis granularity `g2`.
    pub fn granularity(&self) -> usize {
        self.g
    }

    /// Attribute domain size `c`.
    pub fn domain(&self) -> usize {
        self.c
    }

    /// Values per cell side, `c / g2`.
    #[inline]
    pub fn cell_width(&self) -> usize {
        self.c / self.g
    }

    /// Frequency of cell `(a, b)`.
    #[inline]
    pub fn cell(&self, a: usize, b: usize) -> f64 {
        self.freqs[a * self.g + b]
    }

    /// Inclusive value interval covered by row/column index `i`.
    #[inline]
    pub fn cell_bounds(&self, i: usize) -> (usize, usize) {
        let w = self.cell_width();
        (i * w, (i + 1) * w - 1)
    }

    /// Marginal cell frequencies on one side of the pair (`0` = attribute
    /// `j`, `1` = attribute `k`), length `g2`.
    pub fn marginal(&self, side: usize) -> Vec<f64> {
        assert!(side < 2);
        let mut out = vec![0f64; self.g];
        for a in 0..self.g {
            for b in 0..self.g {
                let idx = if side == 0 { a } else { b };
                out[idx] += self.cell(a, b);
            }
        }
        out
    }

    /// TDG-style answer of the 2-D range query
    /// `[lo_j, hi_j] × [lo_k, hi_k]` (inclusive): fully-covered cells
    /// contribute their frequency, partially-covered cells contribute the
    /// uniform fraction of their frequency (the uniformity assumption,
    /// paper Phase 3 / Example 1).
    pub fn answer_uniform(&self, rect: ((usize, usize), (usize, usize))) -> f64 {
        let ((lo_j, hi_j), (lo_k, hi_k)) = rect;
        debug_assert!(lo_j <= hi_j && hi_j < self.c);
        debug_assert!(lo_k <= hi_k && hi_k < self.c);
        let w = self.cell_width() as f64;
        let (first_a, last_a) = (lo_j / self.cell_width(), hi_j / self.cell_width());
        let (first_b, last_b) = (lo_k / self.cell_width(), hi_k / self.cell_width());
        let mut total = 0.0;
        for a in first_a..=last_a {
            let (a_lo, a_hi) = self.cell_bounds(a);
            let frac_a = (hi_j.min(a_hi) + 1 - lo_j.max(a_lo)) as f64 / w;
            for b in first_b..=last_b {
                let (b_lo, b_hi) = self.cell_bounds(b);
                let frac_b = (hi_k.min(b_hi) + 1 - lo_k.max(b_lo)) as f64 / w;
                total += self.cell(a, b) * frac_a * frac_b;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn geometry_validation() {
        assert!(Grid2d::from_freqs((0, 1), 3, 64, vec![0.0; 9]).is_err());
        assert!(Grid2d::from_freqs((0, 1), 4, 64, vec![0.0; 16]).is_ok());
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn unordered_pair_rejected() {
        let _ = Grid2d::from_freqs((1, 0), 4, 64, vec![0.0; 16]);
    }

    #[test]
    fn exact_counting_and_marginals() {
        // 4 points in a c=8, g=2 grid (cell width 4).
        let pairs: Vec<(u16, u16)> = vec![(0, 0), (1, 7), (6, 2), (7, 7)];
        let g = Grid2d::from_exact((0, 1), 2, 8, &pairs).unwrap();
        assert!((g.cell(0, 0) - 0.25).abs() < 1e-12); // (0,0)
        assert!((g.cell(0, 1) - 0.25).abs() < 1e-12); // (1,7)
        assert!((g.cell(1, 0) - 0.25).abs() < 1e-12); // (6,2)
        assert!((g.cell(1, 1) - 0.25).abs() < 1e-12); // (7,7)
        assert_eq!(g.marginal(0), vec![0.5, 0.5]);
        assert_eq!(g.marginal(1), vec![0.5, 0.5]);
    }

    #[test]
    fn uniform_answer_matches_geometry() {
        // All mass in cell (1,1) of a 2x2 grid over c=8: values 4..=7 each axis.
        let mut freqs = vec![0.0; 4];
        freqs[3] = 1.0;
        let g = Grid2d::from_freqs((0, 1), 2, 8, freqs).unwrap();
        assert!((g.answer_uniform(((4, 7), (4, 7))) - 1.0).abs() < 1e-12);
        assert!((g.answer_uniform(((0, 7), (0, 7))) - 1.0).abs() < 1e-12);
        // Quarter of the cell area -> quarter of the mass under uniformity.
        assert!((g.answer_uniform(((4, 5), (4, 5))) - 0.25).abs() < 1e-12);
        assert!(g.answer_uniform(((0, 3), (0, 3))).abs() < 1e-12);
        // Half along one axis only.
        assert!((g.answer_uniform(((4, 7), (4, 5))) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn collected_grid_is_unbiased() {
        let n = 40_000usize;
        // Perfectly correlated pair: both attrs equal, half at 5, half at 40.
        let pairs: Vec<(u16, u16)> = (0..n)
            .map(|i| if i < n / 2 { (5, 5) } else { (40, 40) })
            .collect();
        let reps = 30;
        let mut c00 = 0.0;
        let mut c55 = 0.0;
        let mut off = 0.0;
        for r in 0..reps {
            let mut rng = StdRng::seed_from_u64(900 + r);
            let g = Grid2d::collect((0, 1), 8, 64, &pairs, 1.0, SimMode::Fast, &mut rng).unwrap();
            c00 += g.cell(0, 0);
            c55 += g.cell(5, 5);
            off += g.cell(0, 5);
        }
        assert!((c00 / reps as f64 - 0.5).abs() < 0.03);
        assert!((c55 / reps as f64 - 0.5).abs() < 0.03);
        assert!((off / reps as f64).abs() < 0.03);
    }
}
