//! Grid substrates for TDG and HDG (paper §4).
//!
//! * [`grid1d`] / [`grid2d`] — binned frequency grids over single attributes
//!   and attribute pairs, collected through OLH (Phase 1).
//! * [`norm_sub`](mod@norm_sub) — the Norm-Sub non-negativity step (Phase 2).
//! * [`consistency`] — the optimal weighted-average consistency step across
//!   grids sharing an attribute (Phase 2).
//! * [`response_matrix`] — Algorithm 1: building the c×c response matrix
//!   from {G(j), G(k), G(j,k)} via Weighted Update (Phase 3, HDG).
//! * [`guideline`] — §4.6's rule for choosing granularities g1, g2
//!   (reproduces the paper's Table 2).
//! * [`prefix`] — 2-D prefix-sum tables giving O(1) rectangle sums when
//!   answering range queries.
//! * [`pairs`] — canonical ordering of the (d choose 2) attribute pairs.

pub mod consistency;
pub mod grid1d;
pub mod grid2d;
pub mod guideline;
pub mod norm_sub;
pub mod pairs;
pub mod prefix;
pub mod response_matrix;

pub use consistency::{enforce_attribute_consistency, post_process, PostProcessConfig};
pub use grid1d::Grid1d;
pub use grid2d::Grid2d;
pub use guideline::{choose_granularities, Granularities, GuidelineParams};
pub use norm_sub::norm_sub;
pub use pairs::{pair_count, pair_index, pair_list};
pub use prefix::PrefixSum2d;
pub use response_matrix::{build_response_matrix, ResponseMatrix};

/// Errors from invalid grid parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// Granularity must be a power of two in `[1, c]` dividing the domain.
    BadGranularity { granularity: usize, domain: usize },
    /// Domain must be a power of two (paper §3.1).
    BadDomain(usize),
    /// The privacy budget must be strictly positive and finite.
    BadEpsilon(f64),
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::BadGranularity {
                granularity,
                domain,
            } => write!(
                f,
                "granularity {granularity} must be a power of two dividing domain {domain}"
            ),
            GridError::BadDomain(c) => {
                write!(f, "domain size {c} must be a power of two >= 2")
            }
            GridError::BadEpsilon(e) => {
                write!(f, "epsilon must be positive and finite, got {e}")
            }
        }
    }
}

impl std::error::Error for GridError {}

pub(crate) fn check_geometry(g: usize, c: usize) -> Result<(), GridError> {
    if !privmdr_util::is_pow2(c) || c < 2 {
        return Err(GridError::BadDomain(c));
    }
    if !privmdr_util::is_pow2(g) || g == 0 || g > c {
        return Err(GridError::BadGranularity {
            granularity: g,
            domain: c,
        });
    }
    Ok(())
}
