//! 2-D prefix-sum tables.
//!
//! Answering a 2-D range query from a grid or response matrix is a rectangle
//! sum; a prefix table makes every such sum O(1), which matters because each
//! λ-D query expands into `(λ choose 2)` rectangle sums and the evaluation
//! workloads pose hundreds of thousands of them (Figs. 11–12).

/// Inclusion–exclusion prefix sums over a row-major `rows × cols` array.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefixSum2d {
    rows: usize,
    cols: usize,
    /// `(rows+1) × (cols+1)` table; entry `(r, c)` holds the sum of the
    /// rectangle `[0, r) × [0, c)`.
    table: Vec<f64>,
}

impl PrefixSum2d {
    /// Builds the table from row-major `data` of shape `rows × cols`.
    pub fn build(data: &[f64], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols);
        let w = cols + 1;
        let mut table = vec![0f64; (rows + 1) * w];
        for r in 0..rows {
            let mut row_acc = 0f64;
            for c in 0..cols {
                row_acc += data[r * cols + c];
                table[(r + 1) * w + (c + 1)] = table[r * w + (c + 1)] + row_acc;
            }
        }
        PrefixSum2d { rows, cols, table }
    }

    /// Sum over the half-open rectangle `[r0, r1) × [c0, c1)`.
    #[inline]
    pub fn rect(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> f64 {
        debug_assert!(r0 <= r1 && r1 <= self.rows);
        debug_assert!(c0 <= c1 && c1 <= self.cols);
        let w = self.cols + 1;
        self.table[r1 * w + c1] - self.table[r0 * w + c1] - self.table[r1 * w + c0]
            + self.table[r0 * w + c0]
    }

    /// Sum over the inclusive rectangle `[r0, r1] × [c0, c1]`.
    #[inline]
    pub fn rect_inclusive(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> f64 {
        self.rect(r0, r1 + 1, c0, c1 + 1)
    }

    /// Total sum of the underlying array.
    #[inline]
    pub fn total(&self) -> f64 {
        self.rect(0, self.rows, 0, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(data: &[f64], cols: usize, r0: usize, r1: usize, c0: usize, c1: usize) -> f64 {
        let mut s = 0.0;
        for r in r0..r1 {
            for c in c0..c1 {
                s += data[r * cols + c];
            }
        }
        s
    }

    #[test]
    fn matches_brute_force() {
        let (rows, cols) = (5usize, 7usize);
        let data: Vec<f64> = (0..rows * cols).map(|i| (i as f64).sin()).collect();
        let p = PrefixSum2d::build(&data, rows, cols);
        for r0 in 0..=rows {
            for r1 in r0..=rows {
                for c0 in 0..=cols {
                    for c1 in c0..=cols {
                        let want = brute(&data, cols, r0, r1, c0, c1);
                        let got = p.rect(r0, r1, c0, c1);
                        assert!((want - got).abs() < 1e-9, "({r0},{r1},{c0},{c1})");
                    }
                }
            }
        }
    }

    #[test]
    fn inclusive_and_total() {
        let data = vec![1.0, 2.0, 3.0, 4.0];
        let p = PrefixSum2d::build(&data, 2, 2);
        assert_eq!(p.total(), 10.0);
        assert_eq!(p.rect_inclusive(0, 0, 0, 0), 1.0);
        assert_eq!(p.rect_inclusive(0, 1, 1, 1), 6.0);
        assert_eq!(p.rect_inclusive(0, 1, 0, 1), 10.0);
    }

    #[test]
    fn empty_rect_is_zero() {
        let data = vec![1.0; 9];
        let p = PrefixSum2d::build(&data, 3, 3);
        assert_eq!(p.rect(1, 1, 0, 3), 0.0);
        assert_eq!(p.rect(0, 3, 2, 2), 0.0);
    }
}
