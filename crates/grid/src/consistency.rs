//! Phase 2: removing negativity and inconsistency (paper §4.2).
//!
//! An attribute `a` appears in up to `d` grids (its 1-D grid plus `d−1` 2-D
//! grids), and the noisy per-grid aggregates over the same value block
//! generally disagree. The consistency step replaces them with the
//! variance-optimal weighted average (weights `θ_i ∝ 1/|S_i|`, where `|S_i|`
//! is the number of cells grid `i` sums over) and spreads the correction
//! evenly over the contributing cells.
//!
//! Norm-Sub and consistency can each undo the other, so [`post_process`]
//! alternates them a configurable number of rounds and — because Phase 3's
//! response-matrix construction requires non-negative inputs — always ends
//! with Norm-Sub.

use crate::grid1d::Grid1d;
use crate::grid2d::Grid2d;
use crate::norm_sub::norm_sub;
use crate::pairs::pair_list;

/// Configuration of the Phase-2 post-processing loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PostProcessConfig {
    /// Alternation rounds of (consistency over all attributes, Norm-Sub).
    pub rounds: usize,
    /// Disable entirely to obtain the ITDG / IHDG ablations (Appendix A.1).
    pub enabled: bool,
}

impl Default for PostProcessConfig {
    fn default() -> Self {
        PostProcessConfig {
            rounds: 3,
            enabled: true,
        }
    }
}

/// One consistency pass for a single attribute across all grids containing
/// it: the attribute's 1-D grid (if any) and every 2-D grid whose pair
/// includes it.
///
/// `one_d` is indexed by attribute (entries may be `None`, e.g. in TDG);
/// `two_d` holds all pairs in [`pair_list`] order. Grids may have different
/// granularities; blocks are formed on the coarsest granularity present.
pub fn enforce_attribute_consistency(
    attr: usize,
    d: usize,
    one_d: &mut [Option<Grid1d>],
    two_d: &mut [Grid2d],
) {
    // Gather the (grid kind, granularity on `attr`) of every participant.
    let pairs = pair_list(d);
    let mut gb = usize::MAX;
    if let Some(g) = one_d.get(attr).and_then(|g| g.as_ref()) {
        gb = gb.min(g.granularity());
    }
    let mut members: Vec<(usize, bool)> = Vec::new(); // (pair index, attr-is-first)
    for (idx, &(j, k)) in pairs.iter().enumerate() {
        if j == attr || k == attr {
            members.push((idx, j == attr));
            gb = gb.min(two_d[idx].granularity());
        }
    }
    if gb == usize::MAX || (members.is_empty() && one_d.get(attr).is_none_or(|g| g.is_none())) {
        return; // nothing to reconcile
    }
    let has_1d = one_d.get(attr).is_some_and(|g| g.is_some());
    // A single grid cannot be inconsistent with itself.
    if members.len() + usize::from(has_1d) < 2 {
        return;
    }

    for block in 0..gb {
        // Per-grid block sums P_i and cell counts |S_i|.
        let mut p = Vec::with_capacity(members.len() + 1);
        let mut s = Vec::with_capacity(members.len() + 1);
        if has_1d {
            let g1 = one_d[attr].as_ref().expect("checked above");
            let cpb = g1.granularity() / gb;
            let sum: f64 = g1.freqs[block * cpb..(block + 1) * cpb].iter().sum();
            p.push(sum);
            s.push(cpb);
        }
        for &(idx, is_first) in &members {
            let grid = &two_d[idx];
            let g2 = grid.granularity();
            let bpb = g2 / gb; // rows (or columns) per block
            let mut sum = 0.0;
            if is_first {
                for row in block * bpb..(block + 1) * bpb {
                    sum += grid.freqs[row * g2..(row + 1) * g2].iter().sum::<f64>();
                }
            } else {
                for col in block * bpb..(block + 1) * bpb {
                    for row in 0..g2 {
                        sum += grid.freqs[row * g2 + col];
                    }
                }
            }
            p.push(sum);
            s.push(bpb * g2);
        }

        // Optimal weighted average: θ_i ∝ 1/|S_i| (paper §4.2).
        let inv_sum: f64 = s.iter().map(|&si| 1.0 / si as f64).sum();
        let target: f64 = p
            .iter()
            .zip(&s)
            .map(|(&pi, &si)| pi / si as f64)
            .sum::<f64>()
            / inv_sum;

        // Spread each grid's correction evenly over its contributing cells.
        let mut slot = 0usize;
        if has_1d {
            let g1 = one_d[attr].as_mut().expect("checked above");
            let cpb = g1.granularity() / gb;
            let delta = (target - p[slot]) / s[slot] as f64;
            for f in &mut g1.freqs[block * cpb..(block + 1) * cpb] {
                *f += delta;
            }
            slot += 1;
        }
        for &(idx, is_first) in &members {
            let grid = &mut two_d[idx];
            let g2 = grid.granularity();
            let bpb = g2 / gb;
            let delta = (target - p[slot]) / s[slot] as f64;
            if is_first {
                for row in block * bpb..(block + 1) * bpb {
                    for f in &mut grid.freqs[row * g2..(row + 1) * g2] {
                        *f += delta;
                    }
                }
            } else {
                for col in block * bpb..(block + 1) * bpb {
                    for row in 0..g2 {
                        grid.freqs[row * g2 + col] += delta;
                    }
                }
            }
            slot += 1;
        }
    }
}

/// The full Phase-2 loop: alternate consistency (attribute by attribute) and
/// Norm-Sub for `config.rounds` rounds, ending on Norm-Sub.
pub fn post_process(
    d: usize,
    one_d: &mut [Option<Grid1d>],
    two_d: &mut [Grid2d],
    config: &PostProcessConfig,
) {
    if !config.enabled {
        return;
    }
    for _ in 0..config.rounds.max(1) {
        for attr in 0..d {
            enforce_attribute_consistency(attr, d, one_d, two_d);
        }
        for grid in one_d.iter_mut().flatten() {
            norm_sub(&mut grid.freqs, 1.0);
        }
        for grid in two_d.iter_mut() {
            norm_sub(&mut grid.freqs, 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::pair_index;

    /// Block sums of `attr` at granularity `gb` from a 2-D grid.
    fn block_sums_2d(grid: &Grid2d, is_first: bool, gb: usize) -> Vec<f64> {
        let g2 = grid.granularity();
        let bpb = g2 / gb;
        let mut out = vec![0.0; gb];
        for a in 0..g2 {
            for b in 0..g2 {
                let on = if is_first { a } else { b };
                out[on / bpb] += grid.cell(a, b);
            }
        }
        out
    }

    fn block_sums_1d(grid: &Grid1d, gb: usize) -> Vec<f64> {
        let cpb = grid.granularity() / gb;
        (0..gb)
            .map(|b| grid.freqs[b * cpb..(b + 1) * cpb].iter().sum())
            .collect()
    }

    #[test]
    fn consistency_equalizes_block_sums() {
        let d = 3;
        let c = 16;
        // 1-D grid for attr 0 at g1=8; three 2-D grids at g2=4.
        let mut one_d: Vec<Option<Grid1d>> = vec![
            Some(
                Grid1d::from_freqs(0, 8, c, vec![0.2, 0.0, 0.1, 0.1, 0.05, 0.05, 0.3, 0.2])
                    .unwrap(),
            ),
            None,
            None,
        ];
        let mk2 = |attrs, seed: f64| {
            let freqs: Vec<f64> = (0..16).map(|i| ((i as f64) * seed).sin().abs()).collect();
            let total: f64 = freqs.iter().sum();
            Grid2d::from_freqs(attrs, 4, c, freqs.iter().map(|f| f / total).collect()).unwrap()
        };
        let mut two_d = vec![mk2((0, 1), 0.7), mk2((0, 2), 1.3), mk2((1, 2), 2.1)];

        enforce_attribute_consistency(0, d, &mut one_d, &mut two_d);

        let gb = 4;
        let b1 = block_sums_1d(one_d[0].as_ref().unwrap(), gb);
        let b01 = block_sums_2d(&two_d[pair_index(0, 1, d)], true, gb);
        let b02 = block_sums_2d(&two_d[pair_index(0, 2, d)], true, gb);
        for i in 0..gb {
            assert!(
                (b1[i] - b01[i]).abs() < 1e-10,
                "block {i}: {b1:?} vs {b01:?}"
            );
            assert!(
                (b1[i] - b02[i]).abs() < 1e-10,
                "block {i}: {b1:?} vs {b02:?}"
            );
        }
        // The grid not containing attr 0 is untouched.
        let untouched = mk2((1, 2), 2.1);
        assert_eq!(two_d[pair_index(1, 2, d)], untouched);
    }

    #[test]
    fn consistency_preserves_total_mass_per_grid() {
        let d = 3;
        let c = 16;
        let mut one_d: Vec<Option<Grid1d>> = vec![
            Some(Grid1d::from_freqs(0, 4, c, vec![0.4, 0.1, 0.3, 0.2]).unwrap()),
            None,
            None,
        ];
        let freqs: Vec<f64> = (0..16).map(|i| i as f64 / 120.0).collect();
        let mut two_d = vec![
            Grid2d::from_freqs((0, 1), 4, c, freqs.clone()).unwrap(),
            Grid2d::from_freqs((0, 2), 4, c, freqs.clone()).unwrap(),
            Grid2d::from_freqs((1, 2), 4, c, freqs).unwrap(),
        ];
        let before: Vec<f64> = two_d.iter().map(|g| g.freqs.iter().sum()).collect();
        enforce_attribute_consistency(0, d, &mut one_d, &mut two_d);
        // The weighted average preserves each grid's total because every
        // block moves toward the common target but blocks of one grid gain
        // exactly what its other blocks lose only if totals agreed; instead
        // totals converge toward the weighted-average total.
        let after: Vec<f64> = two_d.iter().map(|g| g.freqs.iter().sum()).collect();
        // Totals remain finite and close to the originals (all inputs here
        // sum to 1 within rounding).
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 0.2, "total drifted: {b} -> {a}");
        }
    }

    #[test]
    fn single_membership_is_noop() {
        // d = 2 with only one 2-D grid and no 1-D grids: nothing to average.
        let freqs = vec![0.25, 0.25, 0.25, 0.25];
        let mut two_d = vec![Grid2d::from_freqs((0, 1), 2, 8, freqs.clone()).unwrap()];
        let mut one_d: Vec<Option<Grid1d>> = vec![None, None];
        enforce_attribute_consistency(0, 2, &mut one_d, &mut two_d);
        assert_eq!(two_d[0].freqs, freqs);
    }

    #[test]
    fn consistency_weights_favor_fine_grids() {
        // The 1-D grid contributes with weight 1/|S| where |S| = g1/gb is
        // small, so its block sums dominate the consensus.
        let d = 2;
        let c = 8;
        // 1-D grid says block 0 holds everything.
        let mut one_d: Vec<Option<Grid1d>> = vec![
            Some(
                Grid1d::from_freqs(0, 8, c, vec![0.5, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]).unwrap(),
            ),
            None,
        ];
        // 2-D grid says mass is uniform.
        let mut two_d = vec![Grid2d::from_freqs((0, 1), 2, c, vec![0.25; 4]).unwrap()];
        enforce_attribute_consistency(0, d, &mut one_d, &mut two_d);
        let b2 = block_sums_2d(&two_d[0], true, 2);
        // Consensus target for block 0: weights 1/4 (1-D, |S|=4) vs 1/2
        // (2-D, |S|=2)... i.e. 1-D weight = (1/4)/(1/4+1/2) = 1/3.
        // P = (1/4*... compute: inv sums: 1/4 and 1/2 -> theta_1d = (1/4)/(3/4) = 1/3.
        // target = 1/3*1.0 + 2/3*0.5 = 2/3.
        assert!((b2[0] - 2.0 / 3.0).abs() < 1e-10, "{b2:?}");
        let b1 = block_sums_1d(one_d[0].as_ref().unwrap(), 2);
        assert!((b1[0] - 2.0 / 3.0).abs() < 1e-10, "{b1:?}");
    }

    #[test]
    fn post_process_yields_valid_grids() {
        let d = 3;
        let c = 16;
        // A realistic Phase-1 outcome: one underlying skewed distribution,
        // each grid observing it with independent deterministic "noise"
        // (including negative dips, as OLH produces).
        let base1 = [0.30, 0.25, 0.15, 0.10, 0.08, 0.06, 0.04, 0.02];
        let mut one_d: Vec<Option<Grid1d>> = (0..d)
            .map(|a| {
                let noisy: Vec<f64> = base1
                    .iter()
                    .enumerate()
                    .map(|(i, &f)| f + 0.03 * ((i + 3 * a) as f64 * 1.7).sin())
                    .collect();
                Some(Grid1d::from_freqs(a, 8, c, noisy).unwrap())
            })
            .collect();
        let blk = |b: usize| base1[2 * b] + base1[2 * b + 1];
        let mut two_d: Vec<Grid2d> = pair_list(d)
            .into_iter()
            .map(|(j, k)| {
                let noisy: Vec<f64> = (0..16)
                    .map(|i| {
                        let (a, b) = (i / 4, i % 4);
                        blk(a) * blk(b) + 0.02 * ((i + j + 5 * k) as f64 * 0.9).cos()
                    })
                    .collect();
                Grid2d::from_freqs((j, k), 4, c, noisy).unwrap()
            })
            .collect();

        post_process(d, &mut one_d, &mut two_d, &PostProcessConfig::default());

        for g in one_d.iter().flatten() {
            assert!(g.freqs.iter().all(|&f| f >= 0.0));
            assert!((g.freqs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        for g in &two_d {
            assert!(g.freqs.iter().all(|&f| f >= 0.0));
            assert!((g.freqs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        // After the final Norm-Sub, residual inconsistency should be small
        // (the paper notes it "tends to be very small").
        let b1 = block_sums_1d(one_d[0].as_ref().unwrap(), 4);
        let b01 = block_sums_2d(&two_d[0], true, 4);
        for i in 0..4 {
            assert!(
                (b1[i] - b01[i]).abs() < 0.05,
                "block {i}: {b1:?} vs {b01:?}"
            );
        }
    }

    #[test]
    fn disabled_post_process_is_noop() {
        let mut one_d: Vec<Option<Grid1d>> = vec![
            Some(Grid1d::from_freqs(0, 4, 8, vec![-0.5, 1.0, 0.3, 0.2]).unwrap()),
            None,
        ];
        let mut two_d = vec![Grid2d::from_freqs((0, 1), 2, 8, vec![0.7, -0.1, 0.2, 0.2]).unwrap()];
        let cfg = PostProcessConfig {
            rounds: 3,
            enabled: false,
        };
        post_process(2, &mut one_d, &mut two_d, &cfg);
        assert_eq!(one_d[0].as_ref().unwrap().freqs, vec![-0.5, 1.0, 0.3, 0.2]);
        assert_eq!(two_d[0].freqs, vec![0.7, -0.1, 0.2, 0.2]);
    }
}
