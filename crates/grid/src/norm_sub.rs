//! Norm-Sub non-negativity step (paper §4.2; Wang et al., NDSS'20).
//!
//! Frequency estimates coming out of an LDP oracle can be negative and need
//! not sum to 1. Norm-Sub repairs both: clamp negatives to zero, subtract the
//! (signed) surplus evenly from the positive entries, and repeat until no new
//! negatives appear. The result is the Euclidean-style projection used
//! throughout the paper's Phase 2.

/// Applies Norm-Sub in place so the entries become non-negative and sum to
/// `total` (1 for a full grid).
///
/// Degenerate all-non-positive inputs become the uniform vector.
pub fn norm_sub(x: &mut [f64], total: f64) {
    assert!(total >= 0.0 && total.is_finite());
    if x.is_empty() {
        return;
    }
    // Each round either terminates or strictly reduces the number of positive
    // entries, so `len + 1` rounds always suffice.
    for _ in 0..=x.len() {
        let mut pos_count = 0usize;
        let mut pos_sum = 0.0f64;
        for v in x.iter_mut() {
            if *v < 0.0 {
                *v = 0.0;
            } else if *v > 0.0 {
                pos_count += 1;
                pos_sum += *v;
            }
        }
        if pos_count == 0 {
            let u = total / x.len() as f64;
            x.fill(u);
            return;
        }
        let diff = (pos_sum - total) / pos_count as f64;
        if diff.abs() < 1e-15 {
            return;
        }
        let mut created_negative = false;
        for v in x.iter_mut() {
            if *v > 0.0 {
                *v -= diff;
                created_negative |= *v < 0.0;
            }
        }
        if !created_negative {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_valid(x: &[f64], total: f64) {
        assert!(x.iter().all(|&v| v >= 0.0), "negative entry in {x:?}");
        let s: f64 = x.iter().sum();
        assert!((s - total).abs() < 1e-9, "sum {s} != {total}");
    }

    #[test]
    fn already_valid_is_untouched() {
        let mut x = vec![0.25, 0.25, 0.5];
        norm_sub(&mut x, 1.0);
        assert_eq!(x, vec![0.25, 0.25, 0.5]);
    }

    #[test]
    fn clamps_negatives_and_renormalizes() {
        let mut x = vec![-0.1, 0.6, 0.7];
        norm_sub(&mut x, 1.0);
        assert_valid(&x, 1.0);
        assert_eq!(x[0], 0.0);
        // Surplus 0.3 removed evenly from the two positives.
        assert!((x[1] - 0.45).abs() < 1e-12);
        assert!((x[2] - 0.55).abs() < 1e-12);
    }

    #[test]
    fn cascading_rounds() {
        // First subtraction pushes a small positive negative, forcing a
        // second round.
        let mut x = vec![0.05, 0.9, 0.9];
        norm_sub(&mut x, 1.0);
        assert_valid(&x, 1.0);
        assert_eq!(x[0], 0.0);
        assert!((x[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deficit_distributes_to_positives() {
        let mut x = vec![0.2, 0.2, 0.0];
        norm_sub(&mut x, 1.0);
        assert_valid(&x, 1.0);
        // Zero entries stay zero; deficit added to positives.
        assert_eq!(x[2], 0.0);
        assert!((x[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_all_negative_becomes_uniform() {
        let mut x = vec![-0.5, -0.1, -0.2, -0.2];
        norm_sub(&mut x, 1.0);
        assert_valid(&x, 1.0);
        assert!(x.iter().all(|&v| (v - 0.25).abs() < 1e-12));
    }

    #[test]
    fn custom_total() {
        let mut x = vec![1.0, -1.0, 2.0];
        norm_sub(&mut x, 0.5);
        assert_valid(&x, 0.5);
    }

    #[test]
    fn total_zero_zeroes_everything() {
        let mut x = vec![0.5, -0.5, 0.25];
        norm_sub(&mut x, 0.0);
        assert_valid(&x, 0.0);
    }

    #[test]
    fn idempotent() {
        let mut x = vec![0.4, -0.2, 0.9, -0.05, 0.3];
        norm_sub(&mut x, 1.0);
        let once = x.clone();
        norm_sub(&mut x, 1.0);
        assert_eq!(x, once);
    }
}
