//! Canonical ordering of attribute pairs.
//!
//! TDG/HDG/CALM/LHIO all maintain one structure per unordered attribute pair
//! `(j, k)` with `j < k`. This module fixes the enumeration order
//! (lexicographic) so that group assignments, grid storage, and query routing
//! agree across crates.

/// Number of unordered pairs over `d` attributes: `d·(d−1)/2`.
#[inline]
pub fn pair_count(d: usize) -> usize {
    d * d.saturating_sub(1) / 2
}

/// All pairs `(j, k)` with `j < k < d`, in lexicographic order.
pub fn pair_list(d: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(pair_count(d));
    for j in 0..d {
        for k in (j + 1)..d {
            out.push((j, k));
        }
    }
    out
}

/// Index of pair `(j, k)` (with `j < k`) in [`pair_list`]'s order.
#[inline]
pub fn pair_index(j: usize, k: usize, d: usize) -> usize {
    debug_assert!(j < k && k < d);
    // Pairs starting with attributes < j come first: sum_{i<j} (d-1-i).
    j * d - j * (j + 1) / 2 + (k - j - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        assert_eq!(pair_count(0), 0);
        assert_eq!(pair_count(1), 0);
        assert_eq!(pair_count(2), 1);
        assert_eq!(pair_count(6), 15);
        assert_eq!(pair_count(10), 45);
    }

    #[test]
    fn index_matches_list_for_all_d() {
        for d in 2..=12 {
            let list = pair_list(d);
            assert_eq!(list.len(), pair_count(d));
            for (idx, &(j, k)) in list.iter().enumerate() {
                assert_eq!(pair_index(j, k, d), idx, "d={d} pair=({j},{k})");
            }
        }
    }
}
