//! 1-D grids (paper §4.1, HDG Phase 1).
//!
//! A 1-D grid partitions one attribute's domain `[c]` into `g1` equal cells
//! and holds (noisy) cell frequencies. HDG introduces these finer-grained
//! grids to correct the uniformity assumption TDG must make inside its
//! coarse 2-D cells.

use crate::{check_geometry, GridError};
use privmdr_oracles::{OraclePolicy, SimMode};
use rand::Rng;

/// A binned frequency view of a single attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid1d {
    attr: usize,
    g: usize,
    c: usize,
    /// Cell frequencies, length `g`. Public so Phase-2 post-processing can
    /// adjust them in place.
    pub freqs: Vec<f64>,
}

impl Grid1d {
    /// Wraps existing cell frequencies (used by tests and post-processing).
    pub fn from_freqs(attr: usize, g: usize, c: usize, freqs: Vec<f64>) -> Result<Self, GridError> {
        check_geometry(g, c)?;
        assert_eq!(freqs.len(), g, "frequency vector must have g entries");
        Ok(Grid1d { attr, g, c, freqs })
    }

    /// Phase 1: builds the grid from one user group's raw attribute values
    /// via OLH at budget `epsilon`.
    pub fn collect<R: Rng + ?Sized>(
        attr: usize,
        g: usize,
        c: usize,
        values: &[u16],
        epsilon: f64,
        mode: SimMode,
        rng: &mut R,
    ) -> Result<Self, GridError> {
        Self::collect_with(attr, g, c, values, epsilon, OraclePolicy::Olh, mode, rng)
    }

    /// [`Grid1d::collect`] with an explicit frequency-oracle policy: the
    /// group reports through whichever oracle `oracle` selects for the
    /// grid's `g`-cell randomization domain (`OraclePolicy::Olh` reproduces
    /// [`Grid1d::collect`] bit for bit).
    #[allow(clippy::too_many_arguments)]
    pub fn collect_with<R: Rng + ?Sized>(
        attr: usize,
        g: usize,
        c: usize,
        values: &[u16],
        epsilon: f64,
        oracle: OraclePolicy,
        mode: SimMode,
        rng: &mut R,
    ) -> Result<Self, GridError> {
        check_geometry(g, c)?;
        privmdr_oracles::validate_epsilon(epsilon).map_err(|_| GridError::BadEpsilon(epsilon))?;
        let width = (c / g) as u16;
        let cells: Vec<u32> = values.iter().map(|&v| (v / width) as u32).collect();
        let oracle = oracle
            .build(epsilon, g)
            .expect("validated geometry implies valid domain");
        let freqs = oracle.collect(&cells, mode, rng);
        Ok(Grid1d { attr, g, c, freqs })
    }

    /// Noiseless construction from exact values (ε = ∞ reference).
    pub fn from_exact(attr: usize, g: usize, c: usize, values: &[u16]) -> Result<Self, GridError> {
        check_geometry(g, c)?;
        let width = (c / g) as u16;
        let mut freqs = vec![0f64; g];
        for &v in values {
            freqs[(v / width) as usize] += 1.0;
        }
        let n = values.len().max(1) as f64;
        freqs.iter_mut().for_each(|f| *f /= n);
        Ok(Grid1d { attr, g, c, freqs })
    }

    /// The attribute this grid describes.
    pub fn attr(&self) -> usize {
        self.attr
    }

    /// Number of cells `g1`.
    pub fn granularity(&self) -> usize {
        self.g
    }

    /// Attribute domain size `c`.
    pub fn domain(&self) -> usize {
        self.c
    }

    /// Values per cell, `c / g1`.
    #[inline]
    pub fn cell_width(&self) -> usize {
        self.c / self.g
    }

    /// Cell index containing value `v`.
    #[inline]
    pub fn cell_of(&self, v: usize) -> usize {
        debug_assert!(v < self.c);
        v / self.cell_width()
    }

    /// Inclusive value interval `[lo, hi]` covered by cell `i`.
    #[inline]
    pub fn cell_bounds(&self, i: usize) -> (usize, usize) {
        let w = self.cell_width();
        (i * w, (i + 1) * w - 1)
    }

    /// Answer of the 1-D range query `[lo, hi]` (inclusive), assuming values
    /// inside each cell are uniformly distributed.
    pub fn answer_uniform(&self, lo: usize, hi: usize) -> f64 {
        debug_assert!(lo <= hi && hi < self.c);
        let w = self.cell_width();
        let (first, last) = (lo / w, hi / w);
        let mut total = 0.0;
        for cell in first..=last {
            let (c_lo, c_hi) = self.cell_bounds(cell);
            let overlap = (hi.min(c_hi) + 1 - lo.max(c_lo)) as f64;
            total += self.freqs[cell] * overlap / w as f64;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn geometry_validation() {
        assert!(Grid1d::from_freqs(0, 3, 64, vec![0.0; 3]).is_err()); // not pow2
        assert!(Grid1d::from_freqs(0, 128, 64, vec![0.0; 128]).is_err()); // g > c
        assert!(Grid1d::from_freqs(0, 8, 63, vec![0.0; 8]).is_err()); // c not pow2
        assert!(Grid1d::from_freqs(0, 8, 64, vec![0.0; 8]).is_ok());
    }

    #[test]
    fn cell_indexing_round_trips() {
        let g = Grid1d::from_freqs(2, 8, 64, vec![0.0; 8]).unwrap();
        assert_eq!(g.cell_width(), 8);
        for v in 0..64 {
            let cell = g.cell_of(v);
            let (lo, hi) = g.cell_bounds(cell);
            assert!(lo <= v && v <= hi);
        }
        assert_eq!(g.cell_of(0), 0);
        assert_eq!(g.cell_of(63), 7);
    }

    #[test]
    fn exact_grid_counts_correctly() {
        let values: Vec<u16> = vec![0, 1, 8, 9, 63, 63, 63, 63];
        let g = Grid1d::from_exact(0, 8, 64, &values).unwrap();
        assert!((g.freqs[0] - 0.25).abs() < 1e-12);
        assert!((g.freqs[1] - 0.25).abs() < 1e-12);
        assert!((g.freqs[7] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn uniform_answer_full_and_partial_cells() {
        // One cell (8 values wide) holds all mass.
        let mut freqs = vec![0.0; 8];
        freqs[2] = 1.0; // values 16..=23
        let g = Grid1d::from_freqs(0, 8, 64, freqs).unwrap();
        assert!((g.answer_uniform(16, 23) - 1.0).abs() < 1e-12);
        assert!((g.answer_uniform(0, 63) - 1.0).abs() < 1e-12);
        // Half the cell.
        assert!((g.answer_uniform(16, 19) - 0.5).abs() < 1e-12);
        // Single value inside the cell: 1/8 of its mass.
        assert!((g.answer_uniform(20, 20) - 0.125).abs() < 1e-12);
        // Outside.
        assert!(g.answer_uniform(0, 15).abs() < 1e-12);
    }

    #[test]
    fn collected_grid_is_unbiased() {
        let n = 30_000usize;
        let values: Vec<u16> = (0..n).map(|i| if i < n / 2 { 5 } else { 40 }).collect();
        let mut sums = [0.0f64; 8];
        let reps = 30;
        for r in 0..reps {
            let mut rng = StdRng::seed_from_u64(r);
            let g = Grid1d::collect(0, 8, 64, &values, 1.0, SimMode::Fast, &mut rng).unwrap();
            for (s, f) in sums.iter_mut().zip(&g.freqs) {
                *s += f;
            }
        }
        // Cells 0 (values 0..8) and 5 (40..48) each hold half the mass.
        assert!((sums[0] / reps as f64 - 0.5).abs() < 0.02);
        assert!((sums[5] / reps as f64 - 0.5).abs() < 0.02);
        assert!((sums[3] / reps as f64).abs() < 0.02);
    }

    #[test]
    fn g_equal_c_degenerates_to_full_histogram() {
        let values: Vec<u16> = vec![0, 0, 1, 3];
        let g = Grid1d::from_exact(0, 4, 4, &values).unwrap();
        assert_eq!(g.cell_width(), 1);
        assert!((g.answer_uniform(0, 0) - 0.5).abs() < 1e-12);
        assert!((g.answer_uniform(3, 3) - 0.25).abs() < 1e-12);
    }
}
