//! The granularity guideline (paper §4.6, Table 2).
//!
//! Choosing grid granularities is a bias–variance trade-off: finer grids
//! raise noise error (more cells per query), coarser grids raise
//! non-uniformity error (more mass in partially covered cells). Minimizing
//! the sum of the two squared errors gives
//!
//! * `g1 = ∛( n1 (eᵋ−1)² α1² / (2 m1 eᵋ) )` for 1-D grids, and
//! * `g2 = √( 2 α2 (eᵋ−1) √( n2 / (m2 eᵋ) ) )` for 2-D grids,
//!
//! each rounded to the closest power of two and clamped to `[2, c]`. The
//! constants `α1 = 0.7`, `α2 = 0.03` are the paper's recommended dataset-
//! independent settings; `n_i`/`m_i` are the user count and group count
//! dedicated to i-D grids (equal per-group populations by default).

use crate::pairs::pair_count;
use privmdr_util::pow2::granularity_from;

/// Tunable constants of the guideline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuidelineParams {
    /// Non-uniformity constant for 1-D grids (paper recommends 0.7).
    pub alpha1: f64,
    /// Non-uniformity constant for 2-D grids (paper recommends 0.03).
    pub alpha2: f64,
    /// Fraction `σ = n1/n` of users assigned to 1-D grids. `None` uses the
    /// equal-group-population default `σ0 = d / (d + (d choose 2))`
    /// (Appendix A.5 sweeps this).
    pub sigma: Option<f64>,
}

impl Default for GuidelineParams {
    fn default() -> Self {
        GuidelineParams {
            alpha1: 0.7,
            alpha2: 0.03,
            sigma: None,
        }
    }
}

/// The chosen granularities for HDG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Granularities {
    /// 1-D grid granularity.
    pub g1: usize,
    /// 2-D grid granularity (per axis).
    pub g2: usize,
}

/// The default 1-D user fraction `σ0 = m1 / (m1 + m2)`, which makes every
/// group's population equal.
pub fn default_sigma(d: usize) -> f64 {
    let m1 = d as f64;
    let m2 = pair_count(d) as f64;
    m1 / (m1 + m2)
}

/// HDG's guideline: granularities for `n` users over `d` attributes of
/// domain `c` at privacy budget `epsilon`.
pub fn choose_granularities(
    n: usize,
    d: usize,
    epsilon: f64,
    c: usize,
    params: &GuidelineParams,
) -> Granularities {
    assert!(d >= 2, "HDG needs at least two attributes");
    let sigma = params
        .sigma
        .unwrap_or_else(|| default_sigma(d))
        .clamp(0.0, 1.0);
    let n1 = n as f64 * sigma;
    let n2 = n as f64 * (1.0 - sigma);
    let m1 = d as f64;
    let m2 = pair_count(d) as f64;
    let g1 = granularity_from(g1_raw(n1, m1, epsilon, params.alpha1), 2, c);
    let g2 = granularity_from(g2_raw(n2, m2, epsilon, params.alpha2), 2, c);
    // The consistency step reconciles grids on g2-blocks, which requires the
    // 1-D grids to be at least as fine; the raw formulas already satisfy
    // this everywhere in Table 2, so the max is a safety net.
    Granularities { g1: g1.max(g2), g2 }
}

/// TDG's guideline: only 2-D grids exist, so all `n` users and
/// `(d choose 2)` groups go to them.
pub fn choose_tdg_granularity(
    n: usize,
    d: usize,
    epsilon: f64,
    c: usize,
    params: &GuidelineParams,
) -> usize {
    assert!(d >= 2, "TDG needs at least two attributes");
    let m2 = pair_count(d) as f64;
    granularity_from(g2_raw(n as f64, m2, epsilon, params.alpha2), 2, c)
}

/// Real-valued minimizer for 1-D grids (before rounding):
/// `∛( n1 (eᵋ−1)² α1² / (2 m1 eᵋ) )`.
fn g1_raw(n1: f64, m1: f64, epsilon: f64, alpha1: f64) -> f64 {
    let e = epsilon.exp();
    (n1 * (e - 1.0).powi(2) * alpha1 * alpha1 / (2.0 * m1 * e)).cbrt()
}

/// Real-valued minimizer for 2-D grids (before rounding):
/// `√( 2 α2 (eᵋ−1) √( n2 / (m2 eᵋ) ) )`.
fn g2_raw(n2: f64, m2: f64, epsilon: f64, alpha2: f64) -> f64 {
    let e = epsilon.exp();
    (2.0 * alpha2 * (e - 1.0) * (n2 / (m2 * e)).sqrt()).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sigma_matches_equal_groups() {
        // d = 6: sigma0 = 6 / 21.
        assert!((default_sigma(6) - 6.0 / 21.0).abs() < 1e-12);
        assert!((default_sigma(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn headline_cell_d6_n1e6_eps1() {
        // The worked example from DESIGN.md: (g1, g2) = (16, 4).
        let g = choose_granularities(1_000_000, 6, 1.0, 64, &GuidelineParams::default());
        assert_eq!((g.g1, g.g2), (16, 4));
    }

    #[test]
    fn granularities_monotone_in_epsilon_and_n() {
        let p = GuidelineParams::default();
        let mut prev = (0usize, 0usize);
        for eps in [0.2, 0.6, 1.0, 1.4, 1.8] {
            let g = choose_granularities(1_000_000, 6, eps, 1024, &p);
            assert!(g.g1 >= prev.0 && g.g2 >= prev.1, "eps {eps}");
            prev = (g.g1, g.g2);
        }
        let small = choose_granularities(100_000, 6, 1.0, 1024, &p);
        let large = choose_granularities(10_000_000, 6, 1.0, 1024, &p);
        assert!(large.g1 > small.g1 && large.g2 >= small.g2);
    }

    #[test]
    fn clamps_to_domain() {
        let p = GuidelineParams::default();
        let g = choose_granularities(100_000_000, 3, 2.0, 16, &p);
        assert!(g.g1 <= 16 && g.g2 <= 16);
        let g = choose_granularities(100, 10, 0.2, 64, &p);
        assert!(g.g1 >= 2 && g.g2 >= 2);
    }

    #[test]
    fn tdg_uses_all_users_for_2d() {
        // With all n users on 2-D grids, TDG's g2 is >= HDG's at equal n.
        let p = GuidelineParams::default();
        let hdg = choose_granularities(1_000_000, 6, 1.0, 64, &p);
        let tdg = choose_tdg_granularity(1_000_000, 6, 1.0, 64, &p);
        assert!(tdg >= hdg.g2);
    }

    #[test]
    fn sigma_override_shifts_budget() {
        let p_low = GuidelineParams {
            sigma: Some(0.1),
            ..Default::default()
        };
        let p_high = GuidelineParams {
            sigma: Some(0.9),
            ..Default::default()
        };
        let lo = choose_granularities(1_000_000, 6, 1.0, 1024, &p_low);
        let hi = choose_granularities(1_000_000, 6, 1.0, 1024, &p_high);
        // More 1-D users => finer 1-D grids; fewer 2-D users => coarser 2-D.
        assert!(hi.g1 >= lo.g1);
        assert!(hi.g2 <= lo.g2);
    }

    /// Reproduces the paper's Table 2 in full: recommended `(g1, g2)` with
    /// `α1 = 0.7`, `α2 = 0.03`, `c = 64` for every row `(d, lg n)` and
    /// `ε ∈ {0.2, …, 2.0}`.
    #[test]
    #[allow(clippy::type_complexity)]
    fn reproduces_paper_table_2() {
        #[rustfmt::skip]
        let table: &[(usize, f64, [(usize, usize); 10])] = &[
            (3, 6.0, [(8,2),(16,4),(32,4),(32,4),(32,4),(32,4),(32,8),(64,8),(64,8),(64,8)]),
            (4, 6.0, [(8,2),(16,2),(16,4),(32,4),(32,4),(32,4),(32,4),(32,4),(32,8),(64,8)]),
            (5, 6.0, [(8,2),(16,2),(16,4),(16,4),(32,4),(32,4),(32,4),(32,4),(32,4),(32,8)]),
            (6, 6.0, [(8,2),(16,2),(16,2),(16,4),(16,4),(32,4),(32,4),(32,4),(32,4),(32,4)]),
            (7, 6.0, [(8,2),(8,2),(16,2),(16,4),(16,4),(32,4),(32,4),(32,4),(32,4),(32,4)]),
            (8, 6.0, [(8,2),(8,2),(16,2),(16,2),(16,4),(16,4),(32,4),(32,4),(32,4),(32,4)]),
            (9, 6.0, [(8,2),(8,2),(16,2),(16,2),(16,4),(16,4),(16,4),(32,4),(32,4),(32,4)]),
            (10, 6.0, [(4,2),(8,2),(8,2),(16,2),(16,2),(16,4),(16,4),(32,4),(32,4),(32,4)]),
            (6, 5.0, [(4,2),(4,2),(8,2),(8,2),(8,2),(16,2),(16,2),(16,2),(16,2),(16,4)]),
            (6, 5.2, [(4,2),(8,2),(8,2),(8,2),(16,2),(16,2),(16,2),(16,4),(16,4),(16,4)]),
            (6, 5.4, [(4,2),(8,2),(8,2),(16,2),(16,2),(16,2),(16,4),(16,4),(16,4),(32,4)]),
            (6, 5.6, [(4,2),(8,2),(8,2),(16,2),(16,2),(16,4),(16,4),(32,4),(32,4),(32,4)]),
            (6, 5.8, [(8,2),(8,2),(16,2),(16,2),(16,4),(16,4),(32,4),(32,4),(32,4),(32,4)]),
            (6, 6.0, [(8,2),(16,2),(16,2),(16,4),(16,4),(32,4),(32,4),(32,4),(32,4),(32,4)]),
            (6, 6.2, [(8,2),(16,2),(16,4),(16,4),(32,4),(32,4),(32,4),(32,4),(32,4),(32,8)]),
            (6, 6.4, [(8,2),(16,2),(16,4),(32,4),(32,4),(32,4),(32,4),(32,8),(64,8),(64,8)]),
            (6, 6.6, [(16,2),(16,4),(32,4),(32,4),(32,4),(32,4),(32,8),(64,8),(64,8),(64,8)]),
            (6, 6.8, [(16,2),(16,4),(32,4),(32,4),(32,4),(64,8),(64,8),(64,8),(64,8),(64,8)]),
            (6, 7.0, [(16,2),(32,4),(32,4),(32,4),(64,8),(64,8),(64,8),(64,8),(64,8),(64,8)]),
        ];
        let params = GuidelineParams::default();
        let mut mismatches = Vec::new();
        for &(d, lg_n, expected) in table {
            let n = 10f64.powf(lg_n).round() as usize;
            for (col, &(want_g1, want_g2)) in expected.iter().enumerate() {
                let eps = 0.2 * (col + 1) as f64;
                let got = choose_granularities(n, d, eps, 64, &params);
                if (got.g1, got.g2) != (want_g1, want_g2) {
                    mismatches.push(format!(
                        "d={d} lg(n)={lg_n} eps={eps:.1}: got ({},{}) want ({want_g1},{want_g2})",
                        got.g1, got.g2
                    ));
                }
            }
        }
        assert!(
            mismatches.is_empty(),
            "{} of 190 Table-2 cells disagree:\n{}",
            mismatches.len(),
            mismatches.join("\n")
        );
    }
}
