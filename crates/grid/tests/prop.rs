//! Property tests for the grid substrate.

use privmdr_grid::consistency::{post_process, PostProcessConfig};
use privmdr_grid::pairs::{pair_index, pair_list};
use privmdr_grid::response_matrix::build_response_matrix;
use privmdr_grid::{norm_sub, Grid1d, Grid2d};
use proptest::prelude::*;

fn arb_granularity() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![2usize, 4, 8, 16])
}

proptest! {
    /// Norm-Sub reaches a valid distribution from any starting vector and
    /// any non-negative target total.
    #[test]
    fn norm_sub_reaches_target(
        xs in prop::collection::vec(-5.0f64..5.0, 1..128),
        total in 0.0f64..3.0,
    ) {
        let mut v = xs;
        norm_sub(&mut v, total);
        prop_assert!(v.iter().all(|&x| x >= -1e-12));
        let sum: f64 = v.iter().sum();
        prop_assert!((sum - total).abs() < 1e-6, "sum {} target {}", sum, total);
    }

    /// Grid cell indexing round-trips for every value and geometry.
    #[test]
    fn grid1d_cell_roundtrip(g in arb_granularity(), v_raw in 0usize..1024) {
        let c = 64usize;
        let grid = Grid1d::from_freqs(0, g, c, vec![0.0; g]).unwrap();
        let v = v_raw % c;
        let cell = grid.cell_of(v);
        let (lo, hi) = grid.cell_bounds(cell);
        prop_assert!(lo <= v && v <= hi);
        prop_assert_eq!(hi - lo + 1, c / g);
    }

    /// The uniform-interpolation answer is linear in the interval: for a
    /// uniform grid it equals the interval's relative length.
    #[test]
    fn uniform_grid_answers_volume(
        g in arb_granularity(),
        lo in 0usize..64,
        len in 0usize..64,
    ) {
        let c = 64usize;
        let hi = (lo + len).min(c - 1);
        let grid = Grid1d::from_freqs(0, g, c, vec![1.0 / g as f64; g]).unwrap();
        let want = (hi - lo + 1) as f64 / c as f64;
        prop_assert!((grid.answer_uniform(lo, hi) - want).abs() < 1e-9);
    }

    /// 2-D uniform grids answer the rectangle's relative area.
    #[test]
    fn uniform_grid2d_answers_area(
        g in arb_granularity(),
        lo1 in 0usize..32, len1 in 0usize..32,
        lo2 in 0usize..32, len2 in 0usize..32,
    ) {
        let c = 32usize;
        let g = g.min(c);
        let (hi1, hi2) = ((lo1 + len1).min(c - 1), (lo2 + len2).min(c - 1));
        let grid =
            Grid2d::from_freqs((0, 1), g, c, vec![1.0 / (g * g) as f64; g * g]).unwrap();
        let want = ((hi1 - lo1 + 1) * (hi2 - lo2 + 1)) as f64 / (c * c) as f64;
        prop_assert!((grid.answer_uniform(((lo1, hi1), (lo2, hi2))) - want).abs() < 1e-9);
    }

    /// Marginals of a 2-D grid sum to the grid total on both sides.
    #[test]
    fn grid2d_marginals_conserve_mass(
        freqs in prop::collection::vec(0.0f64..1.0, 16),
    ) {
        let grid = Grid2d::from_freqs((0, 1), 4, 16, freqs.clone()).unwrap();
        let total: f64 = freqs.iter().sum();
        for side in 0..2 {
            let m = grid.marginal(side);
            prop_assert!((m.iter().sum::<f64>() - total).abs() < 1e-9);
        }
    }

    /// pair_index is a bijection onto 0..pair_count for every d.
    #[test]
    fn pair_index_bijective(d in 2usize..12) {
        let list = pair_list(d);
        let mut seen = vec![false; list.len()];
        for &(j, k) in &list {
            let idx = pair_index(j, k, d);
            prop_assert!(!seen[idx]);
            seen[idx] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Post-processing always yields valid grids (non-negative, total 1)
    /// regardless of the (arbitrary noisy) input frequencies.
    #[test]
    fn post_process_total_correctness(
        seed_freqs in prop::collection::vec(-0.2f64..0.5, 16),
    ) {
        let d = 3usize;
        let c = 16usize;
        let mut one_d: Vec<Option<Grid1d>> = (0..d)
            .map(|t| {
                let f: Vec<f64> =
                    (0..8).map(|i| seed_freqs[(i + t) % seed_freqs.len()]).collect();
                Some(Grid1d::from_freqs(t, 8, c, f).unwrap())
            })
            .collect();
        let mut two_d: Vec<Grid2d> = pair_list(d)
            .into_iter()
            .map(|(j, k)| {
                let f: Vec<f64> = (0..16)
                    .map(|i| seed_freqs[(i + j + 5 * k) % seed_freqs.len()])
                    .collect();
                Grid2d::from_freqs((j, k), 4, c, f).unwrap()
            })
            .collect();
        post_process(d, &mut one_d, &mut two_d, &PostProcessConfig::default());
        for g in one_d.iter().flatten() {
            prop_assert!(g.freqs.iter().all(|&f| f >= -1e-12));
            prop_assert!((g.freqs.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        }
        for g in &two_d {
            prop_assert!(g.freqs.iter().all(|&f| f >= -1e-12));
            prop_assert!((g.freqs.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        }
    }

    /// The Phase-2 invariant the ingestion engine's `finalize` leans on:
    /// for *random geometries* (d, g1, g2) and arbitrary noisy inputs, the
    /// consistency/Norm-Sub loop preserves total mass to 1 ± 1e-9 and never
    /// lets a clipped negative survive.
    #[test]
    fn post_process_preserves_mass_and_nonnegativity(
        (d, g1, g2) in (
            2usize..5,
            prop::sample::select(vec![4usize, 8, 16]),
            prop::sample::select(vec![2usize, 4]),
        ),
        noise1 in prop::collection::vec(-0.3f64..0.6, 64),
        noise2 in prop::collection::vec(-0.3f64..0.6, 96),
    ) {
        let c = 16usize;
        let mut one_d: Vec<Option<Grid1d>> = (0..d)
            .map(|t| {
                let f: Vec<f64> = (0..g1).map(|i| noise1[(t * g1 + i) % noise1.len()]).collect();
                Some(Grid1d::from_freqs(t, g1, c, f).unwrap())
            })
            .collect();
        let mut two_d: Vec<Grid2d> = pair_list(d)
            .into_iter()
            .enumerate()
            .map(|(idx, (j, k))| {
                let f: Vec<f64> = (0..g2 * g2)
                    .map(|i| noise2[(idx * g2 * g2 + i) % noise2.len()])
                    .collect();
                Grid2d::from_freqs((j, k), g2, c, f).unwrap()
            })
            .collect();
        post_process(d, &mut one_d, &mut two_d, &PostProcessConfig::default());
        for g in one_d.iter().flatten() {
            prop_assert!(
                g.freqs.iter().all(|&f| f >= 0.0),
                "negative after clipping in 1-D grid: {:?}", g.freqs
            );
            let total: f64 = g.freqs.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "1-D mass {}", total);
        }
        for g in &two_d {
            prop_assert!(
                g.freqs.iter().all(|&f| f >= 0.0),
                "negative after clipping in 2-D grid: {:?}", g.freqs
            );
            let total: f64 = g.freqs.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "2-D mass {}", total);
        }
    }

    /// The response matrix is a finite non-negative array whose total tracks
    /// the (normalized) 2-D grid for any valid (post-processed-like) input.
    #[test]
    fn response_matrix_is_valid_distribution(
        raw1 in prop::collection::vec(0.001f64..1.0, 8),
        raw2 in prop::collection::vec(0.001f64..1.0, 8),
        raw_joint in prop::collection::vec(0.001f64..1.0, 16),
    ) {
        let c = 16usize;
        let norm = |v: Vec<f64>| {
            let t: f64 = v.iter().sum();
            v.into_iter().map(|x| x / t).collect::<Vec<_>>()
        };
        let gj = Grid1d::from_freqs(0, 8, c, norm(raw1)).unwrap();
        let gk = Grid1d::from_freqs(1, 8, c, norm(raw2)).unwrap();
        let gjk = Grid2d::from_freqs((0, 1), 4, c, norm(raw_joint)).unwrap();
        let m = build_response_matrix(&gj, &gk, &gjk, 1e-9, 60);
        prop_assert!(m.entries().iter().all(|v| v.is_finite() && *v >= 0.0));
        let total: f64 = m.entries().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "total {}", total);
        // Rectangle sums agree with direct summation on a spot check.
        let direct: f64 = (0..8).flat_map(|a| (0..8).map(move |b| (a, b)))
            .map(|(a, b)| m.value(a, b)).sum();
        prop_assert!((m.rect_sum(((0, 7), (0, 7))) - direct).abs() < 1e-9);
    }
}
