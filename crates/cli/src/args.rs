//! Minimal `--key value` argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed `--key value` pairs, bare flags (`--truth`), and positional
/// operands (`privmdr merge a.state b.state`).
#[derive(Debug, Default, Clone)]
pub struct ParsedArgs {
    values: HashMap<String, String>,
    flags: Vec<String>,
    positionals: Vec<String>,
}

impl ParsedArgs {
    /// Parses an argument list. A token starting with `--` followed by a
    /// non-`--` token is a key/value pair; a `--` token on its own is a
    /// flag; anything else is a positional operand.
    pub fn parse(argv: &[String]) -> Self {
        let mut out = ParsedArgs::default();
        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            if let Some(key) = token.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    out.values.insert(key.to_string(), argv[i + 1].clone());
                    i += 2;
                    continue;
                }
                out.flags.push(key.to_string());
            } else {
                out.positionals.push(token.clone());
            }
            i += 1;
        }
        out
    }

    /// The positional operands, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// A string value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// A required string value, with a helpful error.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// A parsed numeric value (supports `1e6`-style floats for counts).
    pub fn number<T: FromF64>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => {
                let f: f64 = raw
                    .parse()
                    .map_err(|_| format!("--{key}: '{raw}' is not a number"))?;
                Ok(Some(T::from_f64(f)))
            }
        }
    }

    /// A required numeric value.
    pub fn require_number<T: FromF64>(&self, key: &str) -> Result<T, String> {
        self.number(key)?
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Whether a bare flag was present.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

/// Numeric conversion for CLI values (`--n 1e6` should work for counts).
pub trait FromF64 {
    /// Converts from the parsed f64.
    fn from_f64(f: f64) -> Self;
}

impl FromF64 for f64 {
    fn from_f64(f: f64) -> Self {
        f
    }
}

impl FromF64 for usize {
    fn from_f64(f: f64) -> Self {
        f.max(0.0).round() as usize
    }
}

impl FromF64 for u64 {
    fn from_f64(f: f64) -> Self {
        f.max(0.0).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_pairs_and_flags() {
        let a = ParsedArgs::parse(&argv("--n 1e6 --spec ipums --truth --c 64"));
        assert_eq!(a.require_number::<usize>("n").unwrap(), 1_000_000);
        assert_eq!(a.get("spec"), Some("ipums"));
        assert!(a.flag("truth"));
        assert!(!a.flag("quick"));
        assert_eq!(a.require_number::<usize>("c").unwrap(), 64);
    }

    #[test]
    fn missing_and_malformed() {
        let a = ParsedArgs::parse(&argv("--n abc"));
        assert!(a.require("spec").is_err());
        assert!(a.number::<usize>("n").is_err());
        assert!(a.number::<usize>("absent").unwrap().is_none());
    }

    #[test]
    fn flag_followed_by_flag() {
        let a = ParsedArgs::parse(&argv("--truth --verbose"));
        assert!(a.flag("truth"));
        assert!(a.flag("verbose"));
    }

    #[test]
    fn positionals_interleave_with_options() {
        let a = ParsedArgs::parse(&argv("a.state --out merged.bin b.state c.state --truth"));
        assert_eq!(a.positionals(), ["a.state", "b.state", "c.state"]);
        assert_eq!(a.get("out"), Some("merged.bin"));
        assert!(a.flag("truth"));
        assert!(ParsedArgs::parse(&argv("--n 5")).positionals().is_empty());
    }
}
