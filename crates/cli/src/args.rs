//! Minimal `--key value` argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed `--key value` pairs, bare flags (`--truth`), and positional
/// operands (`privmdr merge a.state b.state`).
///
/// Duplicate options resolve **last-wins**: `--shards 2 --shards 8` means
/// 8, matching the common shell habit of appending an override to a saved
/// command line. The resolution lives in [`ParsedArgs::parse`], not in the
/// accessors, so every lookup sees the same winner.
#[derive(Debug, Default, Clone)]
pub struct ParsedArgs {
    values: HashMap<String, String>,
    flags: Vec<String>,
    positionals: Vec<String>,
}

impl ParsedArgs {
    /// Parses an argument list. A token starting with `--` followed by a
    /// non-`--` token is a key/value pair; a `--` token on its own is a
    /// flag; anything else is a positional operand. A repeated key
    /// overwrites the earlier value (explicit last-wins).
    pub fn parse(argv: &[String]) -> Self {
        let mut out = ParsedArgs::default();
        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            if let Some(key) = token.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    // Last occurrence wins, deliberately: `insert`
                    // replaces any earlier value for the key.
                    out.values.insert(key.to_string(), argv[i + 1].clone());
                    i += 2;
                    continue;
                }
                out.flags.push(key.to_string());
            } else {
                out.positionals.push(token.clone());
            }
            i += 1;
        }
        out
    }

    /// The positional operands, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// A string value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// A required string value, with a helpful error.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// A parsed numeric value (supports `1e6`-style floats for counts,
    /// while integer-typed options reject anything a round-trip through
    /// `f64` would corrupt — see [`FromArg`]).
    pub fn number<T: FromArg>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => T::from_arg(key, raw).map(Some),
        }
    }

    /// A required numeric value.
    pub fn require_number<T: FromArg>(&self, key: &str) -> Result<T, String> {
        self.number(key)?
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Whether a bare flag was present.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

/// Largest integer magnitude `f64` represents exactly (2^53). Scientific
/// notation beyond this cannot name a specific integer, so integer options
/// reject it rather than silently rounding.
const EXACT_F64_INT: f64 = 9_007_199_254_740_992.0;

/// Parses one option value for a numeric type.
///
/// Floats parse as `f64` directly. Integer types try the native integer
/// path first (so `--uid-start 18446744073709551615` survives untruncated),
/// then fall back to the float form for `1e6`-style counts — but only when
/// the float names an exact integer within `f64`'s 2^53-exact range and the
/// target type; any lossy value is an error, never a silent round.
pub trait FromArg: Sized {
    /// Converts the raw string for option `--{key}`, with a flag-naming
    /// error on failure.
    fn from_arg(key: &str, raw: &str) -> Result<Self, String>;
}

impl FromArg for f64 {
    fn from_arg(key: &str, raw: &str) -> Result<Self, String> {
        raw.parse()
            .map_err(|_| format!("--{key}: '{raw}' is not a number"))
    }
}

/// The shared integer path: exact native parse, then a lossless-only
/// float fallback.
fn int_from_arg<T>(key: &str, raw: &str, max: u64) -> Result<T, String>
where
    T: std::str::FromStr + TryFrom<u64>,
{
    if let Ok(v) = raw.parse::<T>() {
        return Ok(v);
    }
    let f: f64 = raw
        .parse()
        .map_err(|_| format!("--{key}: '{raw}' is not a number"))?;
    if !f.is_finite() || f < 0.0 || f.fract() != 0.0 {
        return Err(format!("--{key}: '{raw}' is not a non-negative integer"));
    }
    if f > EXACT_F64_INT {
        return Err(format!(
            "--{key}: '{raw}' exceeds 2^53 and would lose integer precision; \
             write the exact integer instead"
        ));
    }
    let v = f as u64;
    if v > max {
        return Err(format!("--{key}: '{raw}' is out of range"));
    }
    T::try_from(v).map_err(|_| format!("--{key}: '{raw}' is out of range"))
}

impl FromArg for usize {
    fn from_arg(key: &str, raw: &str) -> Result<Self, String> {
        int_from_arg(key, raw, usize::MAX as u64)
    }
}

impl FromArg for u64 {
    fn from_arg(key: &str, raw: &str) -> Result<Self, String> {
        int_from_arg(key, raw, u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_pairs_and_flags() {
        let a = ParsedArgs::parse(&argv("--n 1e6 --spec ipums --truth --c 64"));
        assert_eq!(a.require_number::<usize>("n").unwrap(), 1_000_000);
        assert_eq!(a.get("spec"), Some("ipums"));
        assert!(a.flag("truth"));
        assert!(!a.flag("quick"));
        assert_eq!(a.require_number::<usize>("c").unwrap(), 64);
    }

    #[test]
    fn missing_and_malformed() {
        let a = ParsedArgs::parse(&argv("--n abc"));
        assert!(a.require("spec").is_err());
        assert!(a.number::<usize>("n").is_err());
        assert!(a.number::<usize>("absent").unwrap().is_none());
    }

    #[test]
    fn duplicate_options_resolve_last_wins() {
        let a = ParsedArgs::parse(&argv("--shards 2 --n 10 --shards 8"));
        assert_eq!(a.require_number::<usize>("shards").unwrap(), 8);
        assert_eq!(a.require_number::<usize>("n").unwrap(), 10);
        // Same for string-valued options.
        let a = ParsedArgs::parse(&argv("--spec ipums --spec uniform"));
        assert_eq!(a.get("spec"), Some("uniform"));
    }

    #[test]
    fn integer_options_keep_full_u64_precision() {
        // u64::MAX round-trips exactly through the integer path; the old
        // f64 route would have rounded it to 2^64 and wrapped.
        let a = ParsedArgs::parse(&argv("--uid-start 18446744073709551615"));
        assert_eq!(
            a.require_number::<u64>("uid-start").unwrap(),
            u64::MAX,
            "u64::MAX must survive parsing untruncated"
        );
        // Just above 2^53, adjacent integers are distinguishable only via
        // the integer path.
        let a = ParsedArgs::parse(&argv("--uid-start 9007199254740993"));
        assert_eq!(
            a.require_number::<u64>("uid-start").unwrap(),
            9_007_199_254_740_993
        );
    }

    #[test]
    fn integer_options_reject_lossy_values() {
        // Scientific notation beyond 2^53 cannot name an exact integer.
        let a = ParsedArgs::parse(&argv("--n 1e19"));
        let err = a.require_number::<u64>("n").unwrap_err();
        assert!(err.contains("--n"), "error must name the flag: {err}");
        assert!(err.contains("precision"), "error must say why: {err}");
        // Fractions, negatives, and non-finite values are no better.
        for bad in ["2.5", "-3", "inf", "nan"] {
            let a = ParsedArgs::parse(&["--n".to_string(), bad.to_string()]);
            assert!(
                a.require_number::<usize>("n").is_err(),
                "'{bad}' must be rejected for an integer option"
            );
        }
        // Exact float forms still work for counts.
        let a = ParsedArgs::parse(&argv("--n 2.5e5"));
        assert_eq!(a.require_number::<usize>("n").unwrap(), 250_000);
        let a = ParsedArgs::parse(&argv("--n 0"));
        assert_eq!(a.require_number::<u64>("n").unwrap(), 0);
    }

    #[test]
    fn flag_followed_by_flag() {
        let a = ParsedArgs::parse(&argv("--truth --verbose"));
        assert!(a.flag("truth"));
        assert!(a.flag("verbose"));
    }

    #[test]
    fn positionals_interleave_with_options() {
        let a = ParsedArgs::parse(&argv("a.state --out merged.bin b.state c.state --truth"));
        assert_eq!(a.positionals(), ["a.state", "b.state", "c.state"]);
        assert_eq!(a.get("out"), Some("merged.bin"));
        assert!(a.flag("truth"));
        assert!(ParsedArgs::parse(&argv("--n 5")).positionals().is_empty());
    }
}
