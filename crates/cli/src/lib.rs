//! Implementation of the `privmdr` command-line tool.
//!
//! Subcommands:
//!
//! * `synth` — generate a CSV dataset from one of the built-in generators;
//! * `fit-query` — run an LDP mechanism over a CSV dataset and answer a
//!   workload file of range queries;
//! * `guideline` — print the paper's recommended grid granularities;
//! * `info` — summarize a CSV dataset (shape, per-attribute histogram
//!   sketch, pairwise correlations);
//! * `ingest` — replay a synthetic report stream through the wire
//!   protocol's sharded collector and report ingestion throughput.
//! * `collect` — stream a wire report file through the epoch collector,
//!   sealing cumulative snapshots every `--epoch-every` reports and
//!   writing the fan-in collector state.
//! * `merge` — fan split collector-state files back into one model
//!   (bit-identical to a single collector, by construction).
//! * `serve` — fit a model (or restore a `--snapshot` written by
//!   `collect`/`merge`), detach it as a wire-framed snapshot, and replay a
//!   query workload through the sharded query server, reporting
//!   queries/sec.
//! * `served` — the multi-tenant daemon loop: open sessions from `0x5E`
//!   frame files (`collect --opens`) or fit `--sessions K` synthetic
//!   tenants, route workloads through per-tenant LRU answer caches with
//!   epoch hot-swap, reporting cold/warm/uncached queries/sec.
//!
//! The logic lives in this library so tests can drive it without spawning
//! processes; `main.rs` is a thin wrapper.

pub mod args;
pub mod commands;

use args::ParsedArgs;

/// Runs the CLI; returns the text to print or a user-facing error message.
pub fn run(argv: &[String]) -> Result<String, String> {
    let Some((command, rest)) = argv.split_first() else {
        return Err(usage());
    };
    let parsed = ParsedArgs::parse(rest);
    match command.as_str() {
        "synth" => commands::synth(&parsed),
        "fit-query" => commands::fit_query(&parsed),
        "guideline" => commands::guideline(&parsed),
        "info" => commands::info(&parsed),
        "ingest" => commands::ingest(&parsed),
        "collect" => commands::collect(&parsed),
        "merge" => commands::merge(&parsed),
        "serve" => commands::serve(&parsed),
        "served" => commands::served(&parsed),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command '{other}'\n\n{}", usage())),
    }
}

/// The top-level usage text.
pub fn usage() -> String {
    "privmdr — multi-dimensional range queries under local differential privacy

USAGE:
    privmdr <COMMAND> [OPTIONS]

COMMANDS:
    synth       generate a CSV dataset
                  --spec ipums|bfive|loan|acs|normal|laplace  [--rho R]
                  --n N --d D --c C [--seed S] [--out FILE]
    fit-query   fit a mechanism and answer a query workload
                  --data FILE --c C --mechanism uni|msw|calm|lhio|tdg|hdg
                  --epsilon E --queries FILE [--seed S] [--truth]
    guideline   print recommended grid granularities (paper Table 2)
                  --n N --d D --c C [--alpha1 A] [--alpha2 A]
    info        summarize a CSV dataset
                  --data FILE --c C
    ingest      replay a synthetic report stream through the sharded collector
                  --n N --d D --c C --epsilon E [--spec S] [--rho R]
                  [--oracle olh|grr|auto|wheel|sw] [--approach hdg|tdg|msw]
                  [--seed S] [--shards K] [--batch B] [--json] [--repeat K]
                  [--uid-start U] [--uid-count K] [--emit FILE]
    collect     stream a wire report file through the epoch collector
                  --in FILE|- --n N --d D --c C --epsilon E
                  [--oracle O] [--approach A] [--seed S] [--shards K]
                  [--epoch-every N] [--state FILE] [--snapshot FILE]
                  [--opens FILE] [--session-id S]
    merge       fan split collector states back into one model
                  <STATE>... [--state FILE] [--snapshot FILE]
    serve       fit, snapshot, and replay a query workload through the
                sharded query server (snapshot -> wire -> answers)
                  --n N --d D --c C --epsilon E [--spec S] [--rho R]
                  [--oracle olh|grr|auto|wheel|sw] [--approach hdg|tdg|msw]
                  [--seed S] [--queries Q] [--batch B] [--shards K] [--json]
                  [--repeat K] [--lambdas L]
                or restore a collect/merge snapshot instead of fitting:
                  --snapshot FILE [--queries Q] [--batch B] [--shards K]
                  [--lambdas L]
    served      multi-tenant daemon: sessions -> hot-swapped snapshots ->
                per-tenant LRU-cached answers (cold/warm/uncached rates)
                  <FRAMES>... [--seed S] [--shards K]
                  [--cache-cap N] [--queries Q] [--repeat R]
                or fit synthetic tenants instead of reading frame files:
                  --sessions K --n N --d D --c C --epsilon E [--spec S]
                  [--oracle O] [--approach A] [--seed S] [--shards K]
                  [--cache-cap N] [--queries Q] [--repeat R] [--json]
                  [--lambdas L]

--oracle picks the per-group frequency oracle (auto applies the paper's
variance rule per group domain; wheel and sw are the wide, float-reporting
oracles framed as v3 wire records); --approach picks the estimation
approach the session finalizes into (HDG = 1-D + 2-D grids, TDG = 2-D
only, MSW = d full-resolution marginals composed by product-of-CDFs).

The streaming loop: `ingest --emit` writes a wire report stream (optionally
one `--uid-start/--uid-count` slice of the population per run); `collect`
replays it with epoch cuts and writes the 0xCC collector state; `merge`
fans split states into one; `serve --snapshot` answers queries from the
result. Every path is bit-identical to the one-shot fit. With `collect
--opens FILE` each epoch cut is additionally written as a 0x5E session-open
frame, ready for `served FILE` to replay as hot-swapped epochs of one
tenant session.

--lambdas picks the serve/served workload's query dimensionalities as a
comma list of values or ranges (\"3\", \"1-3\", \"3,4\"); the default mix is
1-3 capped at d. serve and served report estimator telemetry alongside
throughput: per-lambda answered-query counts and the total number of
Weighted-Update sweeps (Algorithm 2 iterations) the workload cost.

--json makes ingest/serve/served emit one machine-readable line (throughput, n, d,
c, shards, available cpus, oracle, approach, and for serve the workload
lambda spec when non-default plus the estimator telemetry) suitable for
appending to a BENCH_*.json trend file (see scripts/bench_trend.sh).

Query workload files take one query per line, either form:
    a0 in [3, 40] AND a2 in [1, 5]
    0:3-40, 2:1-5
"
    .to_string()
}
