//! `privmdr` CLI entry point; all logic lives in the library for testing.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match privmdr_cli::run(&argv) {
        Ok(output) => {
            use std::io::Write;
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            let _ = lock.write_all(output.as_bytes());
        }
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}
