//! The CLI subcommands.

use crate::args::ParsedArgs;
use privmdr_core::{Calm, Hdg, Lhio, Mechanism, Msw, Tdg, Uni};
use privmdr_data::{dataset_from_csv, dataset_to_csv, Dataset, DatasetSpec};
use privmdr_grid::guideline::{choose_granularities, choose_tdg_granularity, GuidelineParams};
use privmdr_query::parse::parse_workload;
use privmdr_query::workload::true_answers;

/// `privmdr synth`: generate a CSV dataset.
pub fn synth(args: &ParsedArgs) -> Result<String, String> {
    let spec = match args.require("spec")? {
        "ipums" => DatasetSpec::Ipums,
        "bfive" => DatasetSpec::Bfive,
        "loan" => DatasetSpec::Loan,
        "acs" => DatasetSpec::Acs,
        "normal" => DatasetSpec::Normal {
            rho: args.number("rho")?.unwrap_or(0.8),
        },
        "laplace" => DatasetSpec::Laplace {
            rho: args.number("rho")?.unwrap_or(0.8),
        },
        other => return Err(format!("unknown --spec '{other}'")),
    };
    let n: usize = args.require_number("n")?;
    let d: usize = args.require_number("d")?;
    let c: usize = args.require_number("c")?;
    let seed: u64 = args.number("seed")?.unwrap_or(1);
    if !privmdr_util::is_pow2(c) || c < 2 {
        return Err(format!("--c {c} must be a power of two >= 2"));
    }
    let ds = spec.generate(n, d, c, seed);
    let csv = dataset_to_csv(&ds);
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &csv).map_err(|e| format!("writing {path}: {e}"))?;
            Ok(format!(
                "wrote {n} x {d} dataset ({}) to {path}",
                spec.name()
            ))
        }
        None => Ok(csv),
    }
}

/// `privmdr fit-query`: fit a mechanism and answer a workload.
pub fn fit_query(args: &ParsedArgs) -> Result<String, String> {
    let c: usize = args.require_number("c")?;
    let data_path = args.require("data")?;
    let text =
        std::fs::read_to_string(data_path).map_err(|e| format!("reading {data_path}: {e}"))?;
    let ds = dataset_from_csv(&text, c).map_err(|e| format!("{data_path}: {e}"))?;

    let queries_path = args.require("queries")?;
    let q_text = std::fs::read_to_string(queries_path)
        .map_err(|e| format!("reading {queries_path}: {e}"))?;
    let queries =
        parse_workload(&q_text, c).map_err(|(line, e)| format!("{queries_path}:{line}: {e}"))?;
    if queries.is_empty() {
        return Err(format!("{queries_path}: no queries"));
    }
    if let Some(bad) = queries.iter().find(|q| q.attrs().any(|a| a >= ds.dims())) {
        return Err(format!(
            "query '{bad}' references an attribute outside the data"
        ));
    }

    let epsilon: f64 = args.require_number("epsilon")?;
    let seed: u64 = args.number("seed")?.unwrap_or(1);
    let mech: Box<dyn Mechanism> = match args.require("mechanism")? {
        "uni" => Box::new(Uni),
        "msw" => Box::new(Msw::default()),
        "calm" => Box::new(Calm::default()),
        "lhio" => Box::new(Lhio::default()),
        "tdg" => Box::new(Tdg::default()),
        "hdg" => Box::new(Hdg::default()),
        other => return Err(format!("unknown --mechanism '{other}'")),
    };
    let model = mech.fit(&ds, epsilon, seed).map_err(|e| e.to_string())?;
    let estimates = model.answer_all(&queries);

    let mut out = String::new();
    if args.flag("truth") {
        let truths = true_answers(&ds, &queries);
        out.push_str("query,estimate,truth,abs_error\n");
        for ((q, e), t) in queries.iter().zip(&estimates).zip(&truths) {
            out.push_str(&format!("\"{q}\",{e:.6},{t:.6},{:.6}\n", (e - t).abs()));
        }
        out.push_str(&format!(
            "# MAE over {} queries: {:.6}\n",
            queries.len(),
            privmdr_query::mae(&estimates, &truths)
        ));
    } else {
        out.push_str("query,estimate\n");
        for (q, e) in queries.iter().zip(&estimates) {
            out.push_str(&format!("\"{q}\",{e:.6}\n"));
        }
    }
    if let Some(path) = args.get("out") {
        std::fs::write(path, &out).map_err(|e| format!("writing {path}: {e}"))?;
        return Ok(format!("wrote {} answers to {path}", queries.len()));
    }
    Ok(out)
}

/// `privmdr guideline`: print the recommended granularities.
pub fn guideline(args: &ParsedArgs) -> Result<String, String> {
    let n: usize = args.require_number("n")?;
    let d: usize = args.require_number("d")?;
    let c: usize = args.require_number("c")?;
    if d < 2 {
        return Err("--d must be at least 2".into());
    }
    if !privmdr_util::is_pow2(c) || c < 2 {
        return Err(format!("--c {c} must be a power of two >= 2"));
    }
    let params = GuidelineParams {
        alpha1: args.number("alpha1")?.unwrap_or(0.7),
        alpha2: args.number("alpha2")?.unwrap_or(0.03),
        sigma: args.number("sigma")?,
    };
    let mut out = format!(
        "granularity guideline for n={n}, d={d}, c={c} (alpha1={}, alpha2={})\n",
        params.alpha1, params.alpha2
    );
    out.push_str("eps   HDG(g1,g2)   TDG(g2)\n");
    for i in 1..=10 {
        let eps = 0.2 * i as f64;
        let g = choose_granularities(n, d, eps, c, &params);
        let t = choose_tdg_granularity(n, d, eps, c, &params);
        out.push_str(&format!("{eps:<5.1} ({:>3},{:>3})    {t:>3}\n", g.g1, g.g2));
    }
    Ok(out)
}

/// `privmdr info`: dataset summary.
pub fn info(args: &ParsedArgs) -> Result<String, String> {
    let c: usize = args.require_number("c")?;
    let data_path = args.require("data")?;
    let text =
        std::fs::read_to_string(data_path).map_err(|e| format!("reading {data_path}: {e}"))?;
    let ds = dataset_from_csv(&text, c).map_err(|e| format!("{data_path}: {e}"))?;
    Ok(summarize(&ds))
}

/// Shape, per-attribute sketch, and pairwise correlations of a dataset.
pub fn summarize(ds: &Dataset) -> String {
    let (n, d, c) = (ds.len(), ds.dims(), ds.domain());
    let mut out = format!("{n} users x {d} attributes, domain 0..{c}\n\n");
    for t in 0..d {
        let mut hist = [0usize; 8];
        let mut sum = 0.0;
        for u in 0..n {
            let v = ds.value(u, t) as usize;
            hist[v * 8 / c] += 1;
            sum += v as f64;
        }
        let spark: String = hist
            .iter()
            .map(|&h| {
                let levels = [' ', '.', ':', '+', '*', '#'];
                let idx = (h * 5).div_ceil(n.max(1)).min(5);
                levels[idx]
            })
            .collect();
        out.push_str(&format!(
            "a{t}: mean {:>6.2}  octile sketch [{spark}]\n",
            sum / n as f64
        ));
    }
    if d >= 2 {
        out.push_str("\npairwise correlation:\n");
        for j in 0..d {
            for k in (j + 1)..d {
                out.push_str(&format!(
                    "  (a{j}, a{k}): {:+.3}\n",
                    privmdr_data::synth::empirical_correlation(ds, j, k)
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::ParsedArgs;

    fn argv(s: &str) -> ParsedArgs {
        ParsedArgs::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>())
    }

    #[test]
    fn synth_to_stdout_and_validation() {
        let out = synth(&argv("--spec normal --rho 0.5 --n 20 --d 3 --c 16")).unwrap();
        assert!(out.starts_with("a0,a1,a2\n"));
        assert_eq!(out.lines().count(), 21);
        assert!(synth(&argv("--spec nosuch --n 10 --d 2 --c 16")).is_err());
        assert!(synth(&argv("--spec ipums --n 10 --d 2 --c 60")).is_err());
        assert!(synth(&argv("--spec ipums --d 2 --c 64")).is_err()); // no n
    }

    #[test]
    fn guideline_prints_table() {
        let out = guideline(&argv("--n 1e6 --d 6 --c 64")).unwrap();
        assert!(out.contains("eps"));
        // The paper's Table 2 headline cell at eps=1.0.
        assert!(out.contains("( 16,  4)"), "{out}");
        assert!(guideline(&argv("--n 100 --d 1 --c 64")).is_err());
    }

    #[test]
    fn summarize_mentions_shape_and_correlation() {
        let ds = DatasetSpec::Normal { rho: 0.9 }.generate(2000, 2, 16, 3);
        let s = summarize(&ds);
        assert!(s.contains("2000 users x 2 attributes"));
        assert!(s.contains("(a0, a1)"));
    }

    #[test]
    fn fit_query_end_to_end_via_files() {
        let dir = std::env::temp_dir().join("privmdr_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.csv");
        let queries_path = dir.join("queries.txt");
        let ds = DatasetSpec::Ipums.generate(5000, 3, 16, 9);
        std::fs::write(&data_path, dataset_to_csv(&ds)).unwrap();
        std::fs::write(&queries_path, "0:0-7\na1 in [2, 9] AND a2 in [0, 15]\n").unwrap();
        let cmd = format!(
            "--data {} --c 16 --mechanism hdg --epsilon 2.0 --queries {} --truth",
            data_path.display(),
            queries_path.display()
        );
        let out = fit_query(&argv(&cmd)).unwrap();
        assert!(out.starts_with("query,estimate,truth,abs_error\n"), "{out}");
        assert!(out.contains("# MAE over 2 queries"));
        // Unknown attribute in the workload is caught up front.
        std::fs::write(&queries_path, "7:0-3\n").unwrap();
        let cmd = format!(
            "--data {} --c 16 --mechanism uni --epsilon 1.0 --queries {}",
            data_path.display(),
            queries_path.display()
        );
        assert!(fit_query(&argv(&cmd)).is_err());
    }
}
