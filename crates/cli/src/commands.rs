//! The CLI subcommands.

use crate::args::ParsedArgs;
use bytes::BytesMut;
use privmdr_core::{
    ApproachKind, Calm, EstimatorTelemetry, Hdg, Lhio, Mechanism, MechanismConfig, Msw, Tdg, Uni,
};
use privmdr_data::{dataset_from_csv, dataset_to_csv, Dataset, DatasetSpec};
use privmdr_grid::guideline::{choose_granularities, choose_tdg_granularity, GuidelineParams};
use privmdr_protocol::stream::{collector_state_to_bytes, decode_collector_state};
use privmdr_protocol::wire::{decode_snapshot, snapshot_to_bytes, AnswerBatch, QueryBatch};
use privmdr_protocol::{
    encode_session_open, encode_session_route, Batch, ClientFactory, Collector, EpochCollector,
    OraclePolicy, QueryServer, ServedNode, SessionPlan,
};
use privmdr_query::parse::parse_workload;
use privmdr_query::workload::{true_answers, WorkloadBuilder};
use privmdr_util::rng::derive_rng;

/// Resolves `--spec` (plus `--rho` for the synthetic families) into a
/// generator; `default` supplies the spec when the option is absent.
fn parse_spec(args: &ParsedArgs, default: Option<&str>) -> Result<DatasetSpec, String> {
    let name = match (args.get("spec"), default) {
        (Some(name), _) => name,
        (None, Some(name)) => name,
        (None, None) => return Err("missing required option --spec".into()),
    };
    Ok(match name {
        "ipums" => DatasetSpec::Ipums,
        "bfive" => DatasetSpec::Bfive,
        "loan" => DatasetSpec::Loan,
        "acs" => DatasetSpec::Acs,
        "normal" => DatasetSpec::Normal {
            rho: args.number("rho")?.unwrap_or(0.8),
        },
        "laplace" => DatasetSpec::Laplace {
            rho: args.number("rho")?.unwrap_or(0.8),
        },
        other => return Err(format!("unknown --spec '{other}'")),
    })
}

/// `privmdr synth`: generate a CSV dataset.
pub fn synth(args: &ParsedArgs) -> Result<String, String> {
    let spec = parse_spec(args, None)?;
    let n: usize = args.require_number("n")?;
    let d: usize = args.require_number("d")?;
    let c: usize = args.require_number("c")?;
    let seed: u64 = args.number("seed")?.unwrap_or(1);
    if !privmdr_util::is_pow2(c) || c < 2 {
        return Err(format!("--c {c} must be a power of two >= 2"));
    }
    let ds = spec.generate(n, d, c, seed);
    let csv = dataset_to_csv(&ds);
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &csv).map_err(|e| format!("writing {path}: {e}"))?;
            Ok(format!(
                "wrote {n} x {d} dataset ({}) to {path}",
                spec.name()
            ))
        }
        None => Ok(csv),
    }
}

/// `privmdr fit-query`: fit a mechanism and answer a workload.
pub fn fit_query(args: &ParsedArgs) -> Result<String, String> {
    let c: usize = args.require_number("c")?;
    let data_path = args.require("data")?;
    let text =
        std::fs::read_to_string(data_path).map_err(|e| format!("reading {data_path}: {e}"))?;
    let ds = dataset_from_csv(&text, c).map_err(|e| format!("{data_path}: {e}"))?;

    let queries_path = args.require("queries")?;
    let q_text = std::fs::read_to_string(queries_path)
        .map_err(|e| format!("reading {queries_path}: {e}"))?;
    let queries =
        parse_workload(&q_text, c).map_err(|(line, e)| format!("{queries_path}:{line}: {e}"))?;
    if queries.is_empty() {
        return Err(format!("{queries_path}: no queries"));
    }
    if let Some(bad) = queries.iter().find(|q| q.attrs().any(|a| a >= ds.dims())) {
        return Err(format!(
            "query '{bad}' references an attribute outside the data"
        ));
    }

    let epsilon: f64 = args.require_number("epsilon")?;
    let seed: u64 = args.number("seed")?.unwrap_or(1);
    let mech: Box<dyn Mechanism> = match args.require("mechanism")? {
        "uni" => Box::new(Uni),
        "msw" => Box::new(Msw::default()),
        "calm" => Box::new(Calm::default()),
        "lhio" => Box::new(Lhio::default()),
        "tdg" => Box::new(Tdg::default()),
        "hdg" => Box::new(Hdg::default()),
        other => return Err(format!("unknown --mechanism '{other}'")),
    };
    let model = mech.fit(&ds, epsilon, seed).map_err(|e| e.to_string())?;
    let estimates = model.answer_all(&queries);

    let mut out = String::new();
    if args.flag("truth") {
        let truths = true_answers(&ds, &queries);
        out.push_str("query,estimate,truth,abs_error\n");
        for ((q, e), t) in queries.iter().zip(&estimates).zip(&truths) {
            out.push_str(&format!("\"{q}\",{e:.6},{t:.6},{:.6}\n", (e - t).abs()));
        }
        out.push_str(&format!(
            "# MAE over {} queries: {:.6}\n",
            queries.len(),
            privmdr_query::mae(&estimates, &truths)
        ));
    } else {
        out.push_str("query,estimate\n");
        for (q, e) in queries.iter().zip(&estimates) {
            out.push_str(&format!("\"{q}\",{e:.6}\n"));
        }
    }
    if let Some(path) = args.get("out") {
        std::fs::write(path, &out).map_err(|e| format!("writing {path}: {e}"))?;
        return Ok(format!("wrote {} answers to {path}", queries.len()));
    }
    Ok(out)
}

/// The CPU parallelism available to this process — recorded next to
/// `shards` in benchmark lines so a `BENCH_*.json` entry from a 1-core box
/// is distinguishable from a real multicore run.
fn available_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// One machine-readable benchmark line for the replay subcommands'
/// `--json` flag, so runs can be appended to `BENCH_*.json` files and the
/// perf trajectory tracked across PRs. `unit` is `("reports", count)` or
/// `("queries", count)`; the derived `<unit>_per_sec` field is the headline
/// throughput figure. `secs` is the best-of-`repeat` timing and `repeat`
/// is recorded in the line, so gated records are self-describing about how
/// much noise suppression they carry.
fn bench_json_line(
    cmd: &str,
    params: &ReplayParams,
    unit: (&str, usize),
    secs: f64,
    repeat: usize,
    extras: &str,
) -> String {
    let (what, count) = unit;
    let ReplayParams {
        n,
        d,
        c,
        epsilon,
        shards,
        oracle,
        approach,
        ..
    } = params;
    format!(
        "{{\"cmd\":\"{cmd}\",\"n\":{n},\"d\":{d},\"c\":{c},\"epsilon\":{epsilon},\
         \"shards\":{shards},\"cpus\":{},\"oracle\":\"{oracle}\",\"approach\":\"{approach}\"\
         {extras},\"repeat\":{repeat},\"{what}\":{count},\"secs\":{secs:.6},\
         \"{what}_per_sec\":{:.0}}}\n",
        available_cpus(),
        count as f64 / secs
    )
}

/// The serve-specific extra JSON fields: the non-default workload λ spec
/// (part of the record's gate shape — absent for the default mix so the
/// pre-flag trend history keeps matching) and the estimator telemetry
/// (per-λ answered-query counts and total Weighted-Update sweeps, flat
/// string-valued fields so `scripts/bench_lib.sh` field extraction stays
/// a one-line sed).
fn serve_extras(lambdas_spec: Option<&str>, telemetry: Option<EstimatorTelemetry>) -> String {
    let mut extras = String::new();
    if let Some(spec) = lambdas_spec {
        extras.push_str(&format!(",\"lambdas\":\"{spec}\""));
    }
    if let Some(t) = telemetry {
        let counts = t
            .lambda_counts
            .iter()
            .map(|(l, n)| format!("{l}:{n}"))
            .collect::<Vec<_>>()
            .join(";");
        extras.push_str(&format!(
            ",\"lambda_counts\":\"{counts}\",\"wu_sweeps\":{}",
            t.wu_sweeps
        ));
    }
    extras
}

/// Shared parameters of the stream-replay subcommands (`ingest`, `serve`):
/// the synthetic population, the privacy budget, the shard count, and the
/// mechanism selection (oracle policy + estimation approach).
struct ReplayParams {
    n: usize,
    d: usize,
    c: usize,
    epsilon: f64,
    seed: u64,
    shards: usize,
    spec: DatasetSpec,
    oracle: OraclePolicy,
    approach: ApproachKind,
}

/// Parses and validates the options `ingest` and `serve` have in common,
/// so the two replay paths cannot drift in defaults or error wording.
/// ε is validated downstream (plan construction / grid collection).
fn parse_replay_params(args: &ParsedArgs) -> Result<ReplayParams, String> {
    let params = ReplayParams {
        n: args.require_number("n")?,
        d: args.require_number("d")?,
        c: args.require_number("c")?,
        epsilon: args.require_number("epsilon")?,
        seed: args.number("seed")?.unwrap_or(1),
        shards: args.number("shards")?.unwrap_or_else(available_cpus),
        spec: parse_spec(args, Some("normal"))?,
        oracle: OraclePolicy::parse(args.get("oracle").unwrap_or("olh"))
            .map_err(|e| format!("--oracle: {e}"))?,
        approach: ApproachKind::parse(args.get("approach").unwrap_or("hdg"))
            .map_err(|e| format!("--approach: {e}"))?,
    };
    if params.n == 0 {
        return Err("--n must be at least 1".into());
    }
    if params.d < 2 {
        return Err("--d must be at least 2".into());
    }
    if !privmdr_util::is_pow2(params.c) || params.c < 2 {
        return Err(format!("--c {} must be a power of two >= 2", params.c));
    }
    Ok(params)
}

/// `privmdr ingest`: replay a synthetic report stream through the wire
/// protocol's sharded collector and report ingestion throughput.
///
/// The replay is the full deployment path: a public `SessionPlan` (with
/// the selected oracle policy and approach), one client report per user,
/// `Batch` wire frames (mechanism-tagged when non-default), parallel
/// sharded support-counting, and a finalized model sanity-checked with a
/// full-domain query.
///
/// `--uid-start`/`--uid-count` replay only that slice of the population
/// (the plan and dataset still cover all `n` users), so disjoint ranges of
/// one session can be produced by separate runs and fanned back in via
/// `privmdr collect`/`merge`. `--emit FILE` additionally writes the
/// encoded wire stream out for such a `collect` run to consume.
pub fn ingest(args: &ParsedArgs) -> Result<String, String> {
    let params = parse_replay_params(args)?;
    let ReplayParams {
        n,
        d,
        c,
        epsilon,
        seed,
        shards,
        ref spec,
        oracle,
        approach,
    } = params;
    let batch_size: usize = args.number::<usize>("batch")?.unwrap_or(10_000).max(1);
    let uid_start: usize = args.number::<usize>("uid-start")?.unwrap_or(0);
    let uid_count: usize = args
        .number::<usize>("uid-count")?
        .unwrap_or(n.saturating_sub(uid_start));
    if uid_start + uid_count > n {
        return Err(format!(
            "--uid-start {uid_start} + --uid-count {uid_count} exceeds --n {n}"
        ));
    }
    if uid_count == 0 {
        return Err("--uid-count must be at least 1".into());
    }

    let plan = SessionPlan::with_mechanism(n, d, c, epsilon, seed, oracle, approach)
        .map_err(|e| e.to_string())?;
    let ds = spec.generate(n, d, c, seed);

    // Client phase: one report per user in the replayed range, framed into
    // length-prefixed batches. The factory builds each group's oracle
    // once, not per user.
    let factory = ClientFactory::new(&plan).map_err(|e| e.to_string())?;
    let tag = plan.mechanism_tag();
    let mut rng = derive_rng(seed, &[0x1A]);
    let mut buf = BytesMut::new();
    let mut pending = Vec::with_capacity(batch_size.min(uid_count));
    let mut frames = 0usize;
    for uid in uid_start as u64..(uid_start + uid_count) as u64 {
        let client = factory.client(uid);
        pending.push(
            client
                .report(ds.row(uid as usize), &mut rng)
                .map_err(|e| e.to_string())?,
        );
        if pending.len() == batch_size {
            Batch::tagged(std::mem::take(&mut pending), tag).encode(&mut buf);
            frames += 1;
        }
    }
    if !pending.is_empty() {
        Batch::tagged(pending, tag).encode(&mut buf);
        frames += 1;
    }
    let wire_bytes = buf.len();
    let mut emitted = String::new();
    if let Some(path) = args.get("emit") {
        std::fs::write(path, &*buf).map_err(|e| format!("writing {path}: {e}"))?;
        emitted = format!("emitted wire stream to {path}\n");
    }

    // Server phase (timed): walk the wire frames zero-copy and shard the
    // support counting. `--repeat K` reruns the timed section on a fresh
    // collector each pass and keeps the best time — the counters are
    // bit-identical across passes, only the clock varies — so trend
    // records absorb scheduler noise.
    let repeat: usize = args.number::<usize>("repeat")?.unwrap_or(1).max(1);
    eprintln!(
        "support kernel backend: {}",
        privmdr_util::hash::kernel_backend().name()
    );
    let bytes = buf.freeze();
    let mut best: Option<(Collector, usize, f64)> = None;
    for _ in 0..repeat {
        let mut pass = Collector::new(plan.clone()).map_err(|e| e.to_string())?;
        let start = std::time::Instant::now();
        let ingested = pass
            .ingest_stream_sharded(bytes.clone(), shards)
            .map_err(|e| e.to_string())?;
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        if best.as_ref().is_none_or(|(_, _, b)| secs < *b) {
            best = Some((pass, ingested, secs));
        }
    }
    let (collector, ingested, secs) = best.expect("repeat >= 1");

    let config = MechanismConfig::default()
        .with_approach(approach)
        .with_oracle(oracle);
    let model = collector.finalize(config).map_err(|e| e.to_string())?;
    let full = privmdr_query::RangeQuery::from_triples(&[(0, 0, c - 1), (1, 0, c - 1)], c)
        .map_err(|e| e.to_string())?;
    let sanity = model.answer(&full);

    if args.flag("json") {
        return Ok(bench_json_line(
            "ingest",
            &params,
            ("reports", ingested),
            secs,
            repeat,
            "",
        ));
    }
    let g = plan.granularities;
    Ok(format!(
        "plan: n={n} d={d} c={c} eps={epsilon} oracle={oracle} approach={approach} \
         -> {} groups (g1={}, g2={}x{})\n\
         encoded {ingested} reports (uids {uid_start}..{}) into {frames} batch frames \
         ({wire_bytes} bytes, {:.1} B/report)\n\
         {emitted}\
         ingested {ingested} reports with {shards} shard(s) in {secs:.3}s -- {:.0} reports/sec\n\
         full-domain sanity answer: {sanity:.4} (expect ~1)\n",
        plan.group_count(),
        g.g1,
        g.g2,
        g.g2,
        uid_start + uid_count,
        wire_bytes as f64 / ingested.max(1) as f64,
        ingested as f64 / secs,
    ))
}

/// The default workload λ mix: 1..=min(d,3), matching the original
/// hardwired replay workload.
fn default_lambdas(d: usize) -> Vec<usize> {
    (1..=3).filter(|&l| l <= d).collect()
}

/// Parses a `--lambdas` spec (`"3"`, `"3,4"`, or `"1-3"`) against the
/// model's `d` attributes. Returns the λ list plus the canonical spec
/// string **only when it differs from the default mix** — the JSON bench
/// records carry the field only then, so default-workload records keep
/// the same shape key as the pre-flag trend history.
fn parse_lambdas(args: &ParsedArgs, d: usize) -> Result<(Vec<usize>, Option<String>), String> {
    let Some(spec) = args.get("lambdas") else {
        return Ok((default_lambdas(d), None));
    };
    let mut lambdas = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        let range = if let Some((lo, hi)) = part.split_once('-') {
            let lo: usize = lo.trim().parse().map_err(|_| bad_lambdas(spec))?;
            let hi: usize = hi.trim().parse().map_err(|_| bad_lambdas(spec))?;
            lo..=hi
        } else {
            let l: usize = part.parse().map_err(|_| bad_lambdas(spec))?;
            l..=l
        };
        for l in range {
            if !lambdas.contains(&l) {
                lambdas.push(l);
            }
        }
    }
    if lambdas.is_empty() {
        return Err(bad_lambdas(spec));
    }
    if let Some(&bad) = lambdas.iter().find(|&&l| l < 1 || l > d) {
        return Err(format!(
            "--lambdas: lambda {bad} out of range for a d={d} model (need 1..={d})"
        ));
    }
    // Weighted Update / MaxEntropy cap out at lambda = 20 (z has 2^lambda
    // entries); reject before the estimator's assert can fire.
    if let Some(&bad) = lambdas.iter().find(|&&l| l > 20) {
        return Err(format!(
            "--lambdas: lambda {bad} exceeds the estimator cap of 20"
        ));
    }
    let canonical = lambdas
        .iter()
        .map(|l| l.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let spec = (lambdas != default_lambdas(d)).then_some(canonical);
    Ok((lambdas, spec))
}

fn bad_lambdas(spec: &str) -> String {
    format!("--lambdas {spec}: expected a comma list of lambdas or ranges, e.g. 3 or 1-3 or 3,4")
}

/// The mixed-λ workload every replay subcommand shares: `count` queries
/// split evenly over the requested λ values at selectivity 0.5,
/// deterministic in `seed`.
fn mixed_queries(
    d: usize,
    c: usize,
    seed: u64,
    count: usize,
    lambdas: &[usize],
) -> Vec<privmdr_query::RangeQuery> {
    debug_assert!(!lambdas.is_empty() && lambdas.iter().all(|&l| (1..=d).contains(&l)));
    let wl = WorkloadBuilder::new(d, c, seed);
    let per = count.div_ceil(lambdas.len());
    let mut queries = Vec::with_capacity(count);
    for &lambda in lambdas {
        queries.extend(wl.random(lambda, 0.5, per.min(count - queries.len())));
    }
    queries
}

/// Result of replaying a framed query workload through a [`QueryServer`].
struct WorkloadReplay {
    lambdas: Vec<usize>,
    query_count: usize,
    request_frames: usize,
    request_bytes: usize,
    answer_count: usize,
    secs: f64,
    sanity: f64,
}

/// The serving replay shared by every `serve` mode: build a mixed-λ
/// workload, frame it into `QueryBatch` requests, answer across the shards
/// (timed — the figure is server throughput; response decoding happens
/// after the clock stops), and sanity-check the answers.
#[allow(clippy::too_many_arguments)]
fn replay_workload(
    server: &QueryServer,
    d: usize,
    c: usize,
    seed: u64,
    count: usize,
    batch_size: usize,
    shards: usize,
    lambdas: &[usize],
) -> Result<WorkloadReplay, String> {
    // Client phase: a mixed-λ workload, framed into QueryBatch requests.
    let queries = mixed_queries(d, c, seed, count, lambdas);
    let requests: Vec<bytes::Bytes> = queries
        .chunks(batch_size)
        .map(|chunk| QueryBatch::new(c, chunk.to_vec()).to_bytes())
        .collect();
    let request_bytes: usize = requests.iter().map(|r| r.len()).sum();

    let start = std::time::Instant::now();
    let responses: Vec<bytes::Bytes> = requests
        .iter()
        .map(|request| server.serve_frame(&mut request.clone(), shards))
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    let secs = start.elapsed().as_secs_f64().max(1e-9);

    let mut answers = Vec::with_capacity(queries.len());
    for response in &responses {
        answers.extend(
            AnswerBatch::decode(&mut response.clone())
                .map_err(|e| e.to_string())?
                .answers,
        );
    }

    // Sanity anchors: the full-domain query must sit near 1, and every
    // answer must at least be finite.
    let full = privmdr_query::RangeQuery::from_triples(&[(0, 0, c - 1), (1, 0, c - 1)], c)
        .map_err(|e| e.to_string())?;
    let sanity = server.answer_workload(std::slice::from_ref(&full), 1)[0];
    if let Some(bad) = answers.iter().find(|a| !a.is_finite()) {
        return Err(format!("non-finite answer {bad} in served workload"));
    }
    Ok(WorkloadReplay {
        lambdas: lambdas.to_vec(),
        query_count: queries.len(),
        request_frames: requests.len(),
        request_bytes,
        answer_count: answers.len(),
        secs,
        sanity,
    })
}

/// `privmdr serve`: fit a model, detach it as a snapshot, ship it across
/// the wire, and replay a query workload through the sharded query server.
///
/// The replay is the full serving path: HDG or TDG fit (per `--approach`,
/// grids collected through the `--oracle` policy) → `ModelSnapshot` → wire
/// frame → restored `QueryServer` → `QueryBatch` request frames → sharded
/// answering → `AnswerBatch` responses, reporting queries/sec.
///
/// With `--snapshot FILE` the fit is skipped entirely: the server restores
/// the wire-framed snapshot a `collect`/`merge` run wrote and replays the
/// workload against it — the read side of the streaming deployment.
pub fn serve(args: &ParsedArgs) -> Result<String, String> {
    if let Some(path) = args.get("snapshot") {
        return serve_snapshot(args, path);
    }
    let params = parse_replay_params(args)?;
    let ReplayParams {
        n,
        d,
        c,
        epsilon,
        seed,
        shards,
        ref spec,
        oracle,
        approach,
    } = params;
    let count: usize = args.number::<usize>("queries")?.unwrap_or(10_000).max(1);
    let batch_size: usize = args.number::<usize>("batch")?.unwrap_or(1_024).max(1);
    let (lambdas, lambdas_spec) = parse_lambdas(args, d)?;

    // Fit once, then detach the model as a snapshot and ship it through the
    // wire frame — the serving process only ever sees these bytes.
    let ds = spec.generate(n, d, c, seed);
    let config = MechanismConfig::default()
        .with_approach(approach)
        .with_oracle(oracle);
    let snap = match approach {
        ApproachKind::Hdg => Hdg::new(config).snapshot(&ds, epsilon, seed),
        ApproachKind::Tdg => Tdg::new(config).snapshot(&ds, epsilon, seed),
        ApproachKind::Msw => Msw::new(config).snapshot(&ds, epsilon, seed),
    }
    .map_err(|e| e.to_string())?;
    let snap_bytes = snapshot_to_bytes(&snap);
    let restored = decode_snapshot(&mut snap_bytes.clone()).map_err(|e| e.to_string())?;
    let server = QueryServer::new(&restored).map_err(|e| e.to_string())?;

    // `--repeat K` replays the same workload K times and keeps the
    // fastest pass — answers are deterministic, so only the clock varies.
    let repeat: usize = args.number::<usize>("repeat")?.unwrap_or(1).max(1);
    eprintln!(
        "estimator backend: {}",
        privmdr_util::hash::kernel_backend().name()
    );
    // Telemetry is reported as the delta over exactly one workload pass
    // (answering is deterministic, so every pass costs the same sweeps) —
    // `--repeat` must not inflate the per-workload figures.
    let t0 = server.estimator_telemetry();
    let mut r = replay_workload(&server, d, c, seed, count, batch_size, shards, &lambdas)?;
    let telemetry = telemetry_delta(server.estimator_telemetry(), t0);
    for _ in 1..repeat {
        let pass = replay_workload(&server, d, c, seed, count, batch_size, shards, &lambdas)?;
        if pass.secs < r.secs {
            r = pass;
        }
    }

    if args.flag("json") {
        return Ok(bench_json_line(
            "serve",
            &params,
            ("queries", r.answer_count),
            r.secs,
            repeat,
            &serve_extras(lambdas_spec.as_deref(), telemetry.clone()),
        ));
    }
    let g = snap.granularities;
    Ok(format!(
        "snapshot: d={d} c={c} eps={epsilon} approach={approach} oracle={oracle} \
         (g1={}, g2={}x{}) -- {} bytes over the wire\n\
         workload: {} queries (lambda in {:?}) in {} request frames ({} bytes)\n\
         served {} answers with {shards} shard(s) in {:.3}s -- {:.0} queries/sec\n\
         {}full-domain sanity answer: {:.4} (expect ~1)\n",
        g.g1,
        g.g2,
        g.g2,
        snap_bytes.len(),
        r.query_count,
        r.lambdas,
        r.request_frames,
        r.request_bytes,
        r.answer_count,
        r.secs,
        r.answer_count as f64 / r.secs,
        telemetry_text(telemetry),
        r.sanity,
    ))
}

/// Component-wise `after - before` of two telemetry readings, so a single
/// workload pass can be isolated from a server's cumulative counters.
fn telemetry_delta(
    after: Option<EstimatorTelemetry>,
    before: Option<EstimatorTelemetry>,
) -> Option<EstimatorTelemetry> {
    let after = after?;
    let Some(before) = before else {
        return Some(after);
    };
    let earlier = |l: usize| {
        before
            .lambda_counts
            .iter()
            .find(|&&(bl, _)| bl == l)
            .map_or(0, |&(_, n)| n)
    };
    Some(EstimatorTelemetry {
        lambda_counts: after
            .lambda_counts
            .iter()
            .map(|&(l, n)| (l, n - earlier(l)))
            .filter(|&(_, n)| n > 0)
            .collect(),
        wu_sweeps: after.wu_sweeps - before.wu_sweeps,
    })
}

/// Human-readable estimator telemetry line (empty for models without an
/// estimator, e.g. MSW).
fn telemetry_text(telemetry: Option<EstimatorTelemetry>) -> String {
    match telemetry {
        Some(t) => {
            let counts = t
                .lambda_counts
                .iter()
                .map(|(l, n)| format!("lambda={l}: {n}"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "estimator: {counts} -- {} weighted-update sweeps\n",
                t.wu_sweeps
            )
        }
        None => String::new(),
    }
}

/// The `--snapshot FILE` mode of `privmdr serve`: restore a wire-framed
/// snapshot from disk (d/c/approach come from the frame, so no replay
/// parameters are needed) and serve the workload against it.
fn serve_snapshot(args: &ParsedArgs, path: &str) -> Result<String, String> {
    if args.flag("json") {
        return Err("--json is not supported with --snapshot (the fit's replay \
                    parameters are not in the frame)"
            .into());
    }
    let seed: u64 = args.number("seed")?.unwrap_or(1);
    let shards: usize = args.number("shards")?.unwrap_or_else(available_cpus);
    let count: usize = args.number::<usize>("queries")?.unwrap_or(10_000).max(1);
    let batch_size: usize = args.number::<usize>("batch")?.unwrap_or(1_024).max(1);

    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let snap = decode_snapshot(&mut &bytes[..]).map_err(|e| format!("{path}: {e}"))?;
    let server = QueryServer::new(&snap).map_err(|e| e.to_string())?;
    let (lambdas, _) = parse_lambdas(args, snap.d)?;

    let r = replay_workload(
        &server, snap.d, snap.c, seed, count, batch_size, shards, &lambdas,
    )?;
    let g = snap.granularities;
    Ok(format!(
        "restored snapshot from {path}: d={} c={} approach={} (g1={}, g2={}x{}) -- {} bytes\n\
         workload: {} queries (lambda in {:?}) in {} request frames ({} bytes)\n\
         served {} answers with {shards} shard(s) in {:.3}s -- {:.0} queries/sec\n\
         {}full-domain sanity answer: {:.4} (expect ~1)\n",
        snap.d,
        snap.c,
        snap.approach,
        g.g1,
        g.g2,
        g.g2,
        bytes.len(),
        r.query_count,
        r.lambdas,
        r.request_frames,
        r.request_bytes,
        r.answer_count,
        r.secs,
        r.answer_count as f64 / r.secs,
        telemetry_text(server.estimator_telemetry()),
        r.sanity,
    ))
}

/// `privmdr collect`: stream a wire report file (or stdin, `--in -`)
/// through an [`EpochCollector`], sealing a cumulative snapshot every
/// `--epoch-every N` reports without halting ingestion, then write the
/// final collector state (`--state`, the `0xCC` fan-in frame `privmdr
/// merge` consumes) and/or the cumulative snapshot (`--snapshot`, the
/// frame `privmdr serve --snapshot` restores).
///
/// The plan options (`--n --d --c --epsilon --seed --oracle --approach`)
/// must match the session that produced the stream — the collector rejects
/// frames whose mechanism tag disagrees.
pub fn collect(args: &ParsedArgs) -> Result<String, String> {
    let params = parse_replay_params(args)?;
    let ReplayParams {
        n,
        d,
        c,
        epsilon,
        seed,
        shards,
        oracle,
        approach,
        ..
    } = params;
    let input = args.require("in")?;
    let bytes = if input == "-" {
        use std::io::Read;
        let mut v = Vec::new();
        std::io::stdin()
            .lock()
            .read_to_end(&mut v)
            .map_err(|e| format!("reading stdin: {e}"))?;
        v
    } else {
        std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?
    };
    // Absent = never cut mid-stream (the cumulative outputs below still
    // cover every report); an explicit 0 is a user error, named after the
    // flag rather than surfacing the streaming engine's bare message.
    let epoch_every: u64 = match args.number("epoch-every")? {
        Some(0) => {
            return Err(
                "--epoch-every must be at least 1 (omit the flag to never cut mid-stream)".into(),
            )
        }
        Some(k) => k,
        None => u64::MAX,
    };
    let session_id: u64 = args.number("session-id")?.unwrap_or(1);

    let plan = SessionPlan::with_mechanism(n, d, c, epsilon, seed, oracle, approach)
        .map_err(|e| e.to_string())?;
    let mut collector = EpochCollector::new(plan).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let mut opens_buf = BytesMut::new();
    let emit_opens = args.get("opens").is_some();
    let mut opens_written = 0usize;
    let start = std::time::Instant::now();
    let processed = collector
        .ingest_stream_epochs(&bytes[..], shards, epoch_every, |cut| {
            out.push_str(&format!(
                "epoch {}: {} reports sealed ({} cumulative) -> snapshot\n",
                cut.epoch, cut.epoch_reports, cut.total_reports
            ));
            if emit_opens {
                encode_session_open(session_id, &cut.snapshot, &mut opens_buf);
                opens_written += 1;
            }
        })
        .map_err(|e| e.to_string())?;
    let secs = start.elapsed().as_secs_f64().max(1e-9);

    let cumulative = collector.cumulative().map_err(|e| e.to_string())?;
    if let Some(path) = args.get("opens") {
        // Reports past the last cut (or a stream too short to cut at all)
        // still deserve an epoch: close with the cumulative snapshot so
        // the served session always ends on the full-stream model.
        if collector.epoch_reports() > 0 || collector.epochs_cut() == 0 {
            let snap = collector.cumulative_snapshot().map_err(|e| e.to_string())?;
            encode_session_open(session_id, &snap, &mut opens_buf);
            opens_written += 1;
        }
        std::fs::write(path, &*opens_buf).map_err(|e| format!("writing {path}: {e}"))?;
        out.push_str(&format!(
            "wrote {opens_written} session-open frame(s) for session {session_id} to {path}\n"
        ));
    }
    if let Some(path) = args.get("state") {
        std::fs::write(path, collector_state_to_bytes(&cumulative))
            .map_err(|e| format!("writing {path}: {e}"))?;
        out.push_str(&format!("wrote collector state to {path}\n"));
    }
    if let Some(path) = args.get("snapshot") {
        let snap = collector.cumulative_snapshot().map_err(|e| e.to_string())?;
        std::fs::write(path, snapshot_to_bytes(&snap))
            .map_err(|e| format!("writing {path}: {e}"))?;
        out.push_str(&format!("wrote cumulative snapshot to {path}\n"));
    }
    out.push_str(&format!(
        "collected {processed} reports ({} epochs sealed, {} in flight) \
         with {shards} shard(s) in {secs:.3}s -- {:.0} reports/sec\n",
        collector.epochs_cut(),
        collector.epoch_reports(),
        processed as f64 / secs,
    ));
    Ok(out)
}

/// `privmdr merge`: fan geographically split collector states back into
/// one model. Each positional operand is a `0xCC` state file written by
/// `privmdr collect --state`; the first defines the session plan and every
/// later one must match it exactly. The merge is commutative u64 addition,
/// so the result is bit-identical to one collector having ingested every
/// report (pinned by `protocol/tests/epoch_prop.rs`).
pub fn merge(args: &ParsedArgs) -> Result<String, String> {
    let paths = args.positionals();
    if paths.is_empty() {
        return Err("merge needs at least one state-file operand".into());
    }
    let first = std::fs::read(&paths[0]).map_err(|e| format!("reading {}: {e}", paths[0]))?;
    let mut merged =
        decode_collector_state(&mut &first[..]).map_err(|e| format!("{}: {e}", paths[0]))?;
    let mut out = format!("{}: {} reports\n", paths[0], merged.report_count());
    for path in &paths[1..] {
        let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
        let n = merged
            .merge_state(&mut &bytes[..])
            .map_err(|e| format!("{path}: {e}"))?;
        out.push_str(&format!("{path}: {n} reports\n"));
    }

    if let Some(path) = args.get("state") {
        std::fs::write(path, collector_state_to_bytes(&merged))
            .map_err(|e| format!("writing {path}: {e}"))?;
        out.push_str(&format!("wrote merged state to {path}\n"));
    }
    if let Some(path) = args.get("snapshot") {
        let plan = merged.plan();
        let config = MechanismConfig::default()
            .with_approach(plan.approach)
            .with_oracle(plan.oracle);
        let snap = merged.snapshot(config).map_err(|e| e.to_string())?;
        std::fs::write(path, snapshot_to_bytes(&snap))
            .map_err(|e| format!("writing {path}: {e}"))?;
        out.push_str(&format!("wrote merged snapshot to {path}\n"));
    }
    let plan = merged.plan();
    out.push_str(&format!(
        "merged {} state file(s): {} reports, plan n={} d={} c={} eps={} \
         oracle={} approach={}\n",
        paths.len(),
        merged.report_count(),
        plan.n,
        plan.d,
        plan.c,
        plan.epsilon,
        plan.oracle,
        plan.approach,
    ));
    Ok(out)
}

/// Routes one pre-encoded round of `0x5E` session-route frames through
/// the node `passes` times, returning total answers and elapsed seconds.
fn drive_rounds(
    node: &ServedNode,
    round: &bytes::Bytes,
    passes: usize,
) -> Result<(u64, f64), String> {
    let mut answers = 0u64;
    let start = std::time::Instant::now();
    for _ in 0..passes {
        let stats = node
            .serve_stream(round.clone(), |_, _| {})
            .map_err(|e| e.to_string())?;
        answers += stats.answers;
    }
    Ok((answers, start.elapsed().as_secs_f64().max(1e-9)))
}

/// `privmdr served`: the multi-tenant serving daemon loop. Sessions are
/// opened from `0x5E` session-open frames — read from file operands (the
/// output of `collect --opens`), or fitted in-process for `--sessions K`
/// synthetic tenants with per-session ε / oracle / approach — then a
/// mixed-λ workload is routed to every open session for `--repeat` passes
/// through each tenant's LRU answer cache (`--cache-cap`, 0 disables),
/// reporting cold, warm, and (in synthetic mode) uncached-baseline
/// queries/sec.
pub fn served(args: &ParsedArgs) -> Result<String, String> {
    let cache_cap: usize = args.number("cache-cap")?.unwrap_or(4096);
    let count: usize = args.number::<usize>("queries")?.unwrap_or(2_000).max(1);
    // At least one cold and one warm pass, so the cache figures exist.
    let repeat: usize = args.number::<usize>("repeat")?.unwrap_or(2).max(2);

    if !args.positionals().is_empty() {
        return served_files(args, cache_cap, count, repeat);
    }

    let params = parse_replay_params(args)?;
    let ReplayParams {
        n,
        d,
        c,
        epsilon,
        seed,
        shards,
        ref spec,
        oracle,
        approach,
    } = params;
    let sessions: usize = args.number::<usize>("sessions")?.unwrap_or(2).max(1);
    let (lambdas, lambdas_spec) = parse_lambdas(args, d)?;

    // K tenants with distinct mechanism settings: ε scales per session and
    // the oracle/approach rotate starting from the requested pair, so the
    // daemon always hosts mixed snapshot shapes and cache keyspaces.
    let oracles = [
        OraclePolicy::Olh,
        OraclePolicy::Grr,
        OraclePolicy::Auto,
        OraclePolicy::Wheel,
        OraclePolicy::Sw,
    ];
    let approaches = [ApproachKind::Hdg, ApproachKind::Tdg, ApproachKind::Msw];
    let oracle_base = oracles.iter().position(|o| *o == oracle).unwrap_or(0);
    let approach_base = approaches.iter().position(|a| *a == approach).unwrap_or(0);

    let mut opens = BytesMut::new();
    let mut round = BytesMut::new();
    for i in 0..sessions {
        let session = i as u64 + 1;
        let eps_i = epsilon * (1.0 + i as f64 * 0.5);
        let oracle_i = oracles[(oracle_base + i) % oracles.len()];
        let approach_i = approaches[(approach_base + i) % approaches.len()];
        let ds = spec.generate(n, d, c, seed + i as u64);
        let config = MechanismConfig::default()
            .with_approach(approach_i)
            .with_oracle(oracle_i);
        let snap = match approach_i {
            ApproachKind::Hdg => Hdg::new(config).snapshot(&ds, eps_i, seed + i as u64),
            ApproachKind::Tdg => Tdg::new(config).snapshot(&ds, eps_i, seed + i as u64),
            ApproachKind::Msw => Msw::new(config).snapshot(&ds, eps_i, seed + i as u64),
        }
        .map_err(|e| e.to_string())?;
        encode_session_open(session, &snap, &mut opens);
        let queries = mixed_queries(d, c, seed ^ session, count, &lambdas);
        encode_session_route(session, &QueryBatch::new(c, queries), &mut round);
    }
    let (opens, round) = (opens.freeze(), round.freeze());

    let node = ServedNode::new(cache_cap, shards);
    node.serve_stream(opens.clone(), |_, _| {})
        .map_err(|e| e.to_string())?;
    let (cold_answers, cold_secs) = drive_rounds(&node, &round, 1)?;
    let (warm_answers, warm_secs) = drive_rounds(&node, &round, repeat - 1)?;
    let totals = node.registry().cache_stats_total();

    // Uncached baseline: the same node shape with caching disabled, so the
    // warm delta is attributable to the answer cache alone.
    let baseline = ServedNode::new(0, shards);
    baseline
        .serve_stream(opens, |_, _| {})
        .map_err(|e| e.to_string())?;
    let (unc_answers, unc_secs) = drive_rounds(&baseline, &round, repeat - 1)?;

    let cold_qps = cold_answers as f64 / cold_secs;
    let warm_qps = warm_answers as f64 / warm_secs;
    let unc_qps = unc_answers as f64 / unc_secs;

    // Estimator telemetry across the cached node's whole run: warm passes
    // hit the LRU cache, so these totals show the estimator work the cache
    // actually saved (compare against `repeat` x one pass's sweeps).
    let telemetry = node.registry().estimator_telemetry_total();
    if args.flag("json") {
        return Ok(format!(
            "{{\"cmd\":\"served\",\"n\":{n},\"d\":{d},\"c\":{c},\"epsilon\":{epsilon},\
             \"shards\":{shards},\"cpus\":{},\"oracle\":\"{oracle}\",\"approach\":\"{approach}\"{},\
             \"sessions\":{sessions},\"cache_cap\":{cache_cap},\
             \"queries\":{warm_answers},\"secs\":{warm_secs:.6},\
             \"queries_per_sec\":{warm_qps:.0},\"cold_queries_per_sec\":{cold_qps:.0},\
             \"uncached_queries_per_sec\":{unc_qps:.0},\
             \"cache_hits\":{},\"cache_misses\":{}}}\n",
            available_cpus(),
            serve_extras(lambdas_spec.as_deref(), telemetry),
            totals.hits,
            totals.misses,
        ));
    }
    Ok(format!(
        "served {sessions} session(s): d={d} c={c} base eps={epsilon} (scaled per session), \
         oracle/approach rotating from {oracle}/{approach}\n\
         workload: {count} queries per session x {repeat} passes, cache cap {cache_cap}, \
         {shards} shard(s)\n\
         cold:     {cold_answers} answers in {cold_secs:.3}s -- {cold_qps:.0} queries/sec\n\
         warm:     {warm_answers} answers in {warm_secs:.3}s -- {warm_qps:.0} queries/sec \
         ({} hits / {} misses / {} evictions)\n\
         uncached: {unc_answers} answers in {unc_secs:.3}s -- {unc_qps:.0} queries/sec\n\
         {}",
        totals.hits,
        totals.misses,
        totals.evictions,
        telemetry_text(node.registry().estimator_telemetry_total()),
    ))
}

/// The frame-file mode of `privmdr served`: concatenate the operands (the
/// session-open streams `collect --opens` writes; bare `0xC5` snapshot
/// files open session 0), replay them through one node, then route a
/// synthetic workload to every session that ended up open.
fn served_files(
    args: &ParsedArgs,
    cache_cap: usize,
    count: usize,
    repeat: usize,
) -> Result<String, String> {
    if args.flag("json") {
        return Err(
            "--json is not supported with frame-file operands (the fit's replay \
                    parameters are not in the frames)"
                .into(),
        );
    }
    let seed: u64 = args.number("seed")?.unwrap_or(1);
    let shards: usize = args.number("shards")?.unwrap_or_else(available_cpus);

    let node = ServedNode::new(cache_cap, shards);
    let mut frames = BytesMut::new();
    for path in args.positionals() {
        let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
        frames.extend_from_slice(&bytes);
    }
    let stats = node
        .serve_stream(frames.freeze(), |_, _| {})
        .map_err(|e| e.to_string())?;
    let sessions = node.registry().session_ids();
    if sessions.is_empty() {
        return Err("no session-open frames in the input (write them with collect --opens)".into());
    }

    // One mixed-λ workload per open session, sized from its live epoch's
    // geometry, routed once cold and `--repeat`-1 times warm.
    let mut round = BytesMut::new();
    for &s in &sessions {
        let tenant = node.registry().get(s).expect("listed session exists");
        let epoch = tenant.current();
        let (d, c) = (epoch.snapshot.d, epoch.snapshot.c);
        encode_session_route(
            s,
            &QueryBatch::new(c, mixed_queries(d, c, seed ^ s, count, &default_lambdas(d))),
            &mut round,
        );
    }
    let round = round.freeze();
    let (cold_answers, cold_secs) = drive_rounds(&node, &round, 1)?;
    let (warm_answers, warm_secs) = drive_rounds(&node, &round, repeat - 1)?;
    let totals = node.registry().cache_stats_total();
    Ok(format!(
        "replayed {} frame file(s): {} open(s) ({} hot-swaps), {} routed batch(es), \
         {} answer(s)\n\
         sessions {:?}: {count} queries each, cache cap {cache_cap}, {shards} shard(s)\n\
         cold: {cold_answers} answers in {cold_secs:.3}s -- {:.0} queries/sec\n\
         warm: {warm_answers} answers in {warm_secs:.3}s -- {:.0} queries/sec \
         ({} hits / {} misses)\n",
        args.positionals().len(),
        stats.opens,
        stats.swaps,
        stats.routes,
        stats.answers,
        sessions,
        cold_answers as f64 / cold_secs,
        warm_answers as f64 / warm_secs,
        totals.hits,
        totals.misses,
    ))
}

/// `privmdr guideline`: print the recommended granularities.
pub fn guideline(args: &ParsedArgs) -> Result<String, String> {
    let n: usize = args.require_number("n")?;
    let d: usize = args.require_number("d")?;
    let c: usize = args.require_number("c")?;
    if d < 2 {
        return Err("--d must be at least 2".into());
    }
    if !privmdr_util::is_pow2(c) || c < 2 {
        return Err(format!("--c {c} must be a power of two >= 2"));
    }
    let params = GuidelineParams {
        alpha1: args.number("alpha1")?.unwrap_or(0.7),
        alpha2: args.number("alpha2")?.unwrap_or(0.03),
        sigma: args.number("sigma")?,
    };
    let mut out = format!(
        "granularity guideline for n={n}, d={d}, c={c} (alpha1={}, alpha2={})\n",
        params.alpha1, params.alpha2
    );
    out.push_str("eps   HDG(g1,g2)   TDG(g2)\n");
    for i in 1..=10 {
        let eps = 0.2 * i as f64;
        let g = choose_granularities(n, d, eps, c, &params);
        let t = choose_tdg_granularity(n, d, eps, c, &params);
        out.push_str(&format!("{eps:<5.1} ({:>3},{:>3})    {t:>3}\n", g.g1, g.g2));
    }
    Ok(out)
}

/// `privmdr info`: dataset summary.
pub fn info(args: &ParsedArgs) -> Result<String, String> {
    let c: usize = args.require_number("c")?;
    let data_path = args.require("data")?;
    let text =
        std::fs::read_to_string(data_path).map_err(|e| format!("reading {data_path}: {e}"))?;
    let ds = dataset_from_csv(&text, c).map_err(|e| format!("{data_path}: {e}"))?;
    Ok(summarize(&ds))
}

/// Shape, per-attribute sketch, and pairwise correlations of a dataset.
pub fn summarize(ds: &Dataset) -> String {
    let (n, d, c) = (ds.len(), ds.dims(), ds.domain());
    let mut out = format!("{n} users x {d} attributes, domain 0..{c}\n\n");
    for t in 0..d {
        let mut hist = [0usize; 8];
        let mut sum = 0.0;
        for u in 0..n {
            let v = ds.value(u, t) as usize;
            hist[v * 8 / c] += 1;
            sum += v as f64;
        }
        let spark: String = hist
            .iter()
            .map(|&h| {
                let levels = [' ', '.', ':', '+', '*', '#'];
                let idx = (h * 5).div_ceil(n.max(1)).min(5);
                levels[idx]
            })
            .collect();
        out.push_str(&format!(
            "a{t}: mean {:>6.2}  octile sketch [{spark}]\n",
            sum / n as f64
        ));
    }
    if d >= 2 {
        out.push_str("\npairwise correlation:\n");
        for j in 0..d {
            for k in (j + 1)..d {
                out.push_str(&format!(
                    "  (a{j}, a{k}): {:+.3}\n",
                    privmdr_data::synth::empirical_correlation(ds, j, k)
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::ParsedArgs;

    fn argv(s: &str) -> ParsedArgs {
        ParsedArgs::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>())
    }

    #[test]
    fn synth_to_stdout_and_validation() {
        let out = synth(&argv("--spec normal --rho 0.5 --n 20 --d 3 --c 16")).unwrap();
        assert!(out.starts_with("a0,a1,a2\n"));
        assert_eq!(out.lines().count(), 21);
        assert!(synth(&argv("--spec nosuch --n 10 --d 2 --c 16")).is_err());
        assert!(synth(&argv("--spec ipums --n 10 --d 2 --c 60")).is_err());
        assert!(synth(&argv("--spec ipums --d 2 --c 64")).is_err()); // no n
    }

    #[test]
    fn guideline_prints_table() {
        let out = guideline(&argv("--n 1e6 --d 6 --c 64")).unwrap();
        assert!(out.contains("eps"));
        // The paper's Table 2 headline cell at eps=1.0.
        assert!(out.contains("( 16,  4)"), "{out}");
        assert!(guideline(&argv("--n 100 --d 1 --c 64")).is_err());
    }

    #[test]
    fn summarize_mentions_shape_and_correlation() {
        let ds = DatasetSpec::Normal { rho: 0.9 }.generate(2000, 2, 16, 3);
        let s = summarize(&ds);
        assert!(s.contains("2000 users x 2 attributes"));
        assert!(s.contains("(a0, a1)"));
    }

    #[test]
    fn ingest_replays_stream_and_reports_throughput() {
        let out = ingest(&argv(
            "--n 3000 --d 3 --c 16 --epsilon 2.0 --seed 9 --shards 2 --batch 1000",
        ))
        .unwrap();
        assert!(out.contains("plan: n=3000 d=3 c=16"), "{out}");
        assert!(out.contains("into 3 batch frames"), "{out}");
        assert!(
            out.contains("ingested 3000 reports with 2 shard(s)"),
            "{out}"
        );
        assert!(out.contains("reports/sec"), "{out}");
        // The full-domain answer is a sanity anchor around 1.
        let sanity: f64 = out
            .lines()
            .find(|l| l.starts_with("full-domain sanity answer"))
            .and_then(|l| l.split_whitespace().nth(3))
            .unwrap()
            .parse()
            .unwrap();
        assert!((sanity - 1.0).abs() < 0.25, "sanity {sanity}");
    }

    #[test]
    fn ingest_runs_grr_auto_and_tdg_paths_end_to_end() {
        for (oracle, approach) in [("grr", "hdg"), ("auto", "hdg"), ("auto", "tdg")] {
            let out = ingest(&argv(&format!(
                "--n 3000 --d 3 --c 16 --epsilon 2.0 --seed 9 --shards 2 \
                 --oracle {oracle} --approach {approach}"
            )))
            .unwrap();
            assert!(
                out.contains(&format!("oracle={oracle} approach={approach}")),
                "{out}"
            );
            // TDG plans have only the (d choose 2) pair groups.
            let groups = if approach == "tdg" { 3 } else { 6 };
            assert!(out.contains(&format!("-> {groups} groups")), "{out}");
            let sanity: f64 = out
                .lines()
                .find(|l| l.starts_with("full-domain sanity answer"))
                .and_then(|l| l.split_whitespace().nth(3))
                .unwrap()
                .parse()
                .unwrap();
            assert!(
                (sanity - 1.0).abs() < 0.25,
                "{oracle}/{approach} sanity {sanity}"
            );
        }
        assert!(ingest(&argv("--n 100 --d 3 --c 16 --epsilon 1.0 --oracle nosuch")).is_err());
        assert!(ingest(&argv(
            "--n 100 --d 3 --c 16 --epsilon 1.0 --approach nosuch"
        ))
        .is_err());
    }

    #[test]
    fn serve_runs_tdg_approach_end_to_end() {
        let out = serve(&argv(
            "--n 4000 --d 3 --c 16 --epsilon 2.0 --seed 5 --queries 300 --shards 2 \
             --approach tdg --oracle auto",
        ))
        .unwrap();
        assert!(out.contains("approach=tdg oracle=auto"), "{out}");
        assert!(out.contains("served 300 answers"), "{out}");
        let sanity: f64 = out
            .lines()
            .find(|l| l.starts_with("full-domain sanity answer"))
            .and_then(|l| l.split_whitespace().nth(3))
            .unwrap()
            .parse()
            .unwrap();
        assert!((sanity - 1.0).abs() < 0.25, "sanity {sanity}");
    }

    #[test]
    fn json_lines_carry_oracle_and_approach() {
        let out = ingest(&argv(
            "--n 2000 --d 3 --c 16 --epsilon 2.0 --seed 9 --shards 1 --json \
             --oracle grr --approach tdg",
        ))
        .unwrap();
        assert!(out.contains("\"oracle\":\"grr\""), "{out}");
        assert!(out.contains("\"approach\":\"tdg\""), "{out}");
    }

    #[test]
    fn ingest_json_emits_one_machine_readable_line() {
        let out = ingest(&argv(
            "--n 2000 --d 3 --c 16 --epsilon 2.0 --seed 9 --shards 2 --json",
        ))
        .unwrap();
        assert_eq!(out.lines().count(), 1, "{out}");
        let line = out.trim();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        for field in [
            "\"cmd\":\"ingest\"",
            "\"n\":2000",
            "\"d\":3",
            "\"c\":16",
            "\"epsilon\":2",
            "\"shards\":2",
            "\"cpus\":",
            "\"reports\":2000",
            "\"secs\":",
            "\"reports_per_sec\":",
        ] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
        // The recorded cpu count is the live parallelism, so 1-core runs
        // are distinguishable from multicore ones.
        assert!(
            line.contains(&format!("\"cpus\":{}", available_cpus())),
            "{line}"
        );
    }

    #[test]
    fn serve_json_emits_one_machine_readable_line() {
        let out = serve(&argv(
            "--n 2000 --d 3 --c 16 --epsilon 2.0 --seed 5 --queries 200 --shards 1 --json",
        ))
        .unwrap();
        assert_eq!(out.lines().count(), 1, "{out}");
        let line = out.trim();
        for field in [
            "\"cmd\":\"serve\"",
            "\"n\":2000",
            "\"c\":16",
            "\"shards\":1",
            "\"cpus\":",
            "\"queries\":200",
            "\"queries_per_sec\":",
        ] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
    }

    #[test]
    fn serve_replays_workload_through_wire_frames() {
        let out = serve(&argv(
            "--n 4000 --d 3 --c 16 --epsilon 2.0 --seed 5 --queries 600 --batch 250 --shards 2",
        ))
        .unwrap();
        assert!(out.contains("snapshot: d=3 c=16"), "{out}");
        assert!(out.contains("600 queries"), "{out}");
        assert!(out.contains("in 3 request frames"), "{out}");
        assert!(out.contains("served 600 answers with 2 shard(s)"), "{out}");
        assert!(out.contains("queries/sec"), "{out}");
        let sanity: f64 = out
            .lines()
            .find(|l| l.starts_with("full-domain sanity answer"))
            .and_then(|l| l.split_whitespace().nth(3))
            .unwrap()
            .parse()
            .unwrap();
        assert!((sanity - 1.0).abs() < 0.25, "sanity {sanity}");
    }

    #[test]
    fn serve_validates_parameters() {
        assert!(serve(&argv("--n 100 --d 1 --c 16 --epsilon 1.0")).is_err());
        assert!(serve(&argv("--n 100 --d 3 --c 15 --epsilon 1.0")).is_err());
        assert!(serve(&argv("--n 0 --d 3 --c 16 --epsilon 1.0")).is_err());
        assert!(serve(&argv("--d 3 --c 16 --epsilon 1.0")).is_err()); // no n
        assert!(serve(&argv("--n 100 --d 3 --c 16 --epsilon 1.0 --spec nosuch")).is_err());
    }

    #[test]
    fn ingest_validates_parameters() {
        // Bad plan parameters surface as user errors, not panics.
        assert!(ingest(&argv("--n 100 --d 1 --c 16 --epsilon 1.0")).is_err());
        assert!(ingest(&argv("--n 100 --d 3 --c 15 --epsilon 1.0")).is_err());
        assert!(ingest(&argv("--n 100 --d 3 --c 16 --epsilon 0.0")).is_err());
        assert!(ingest(&argv("--n 0 --d 3 --c 16 --epsilon 1.0")).is_err());
        assert!(ingest(&argv("--d 3 --c 16 --epsilon 1.0")).is_err()); // no n
        assert!(ingest(&argv("--n 100 --d 3 --c 16 --epsilon 1.0 --spec nosuch")).is_err());
    }

    #[test]
    fn collect_merge_serve_streaming_loop_end_to_end() {
        let dir = std::env::temp_dir().join("privmdr_cli_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).display().to_string();
        // One 6000-user auto-policy session, produced as two disjoint
        // uid slices by separate ingest runs.
        let session = "--n 6000 --d 3 --c 16 --epsilon 1.0 --seed 13 --oracle auto";
        for (start, file) in [(0, "a.bin"), (3000, "b.bin")] {
            let out = ingest(&argv(&format!(
                "{session} --shards 2 --uid-start {start} --uid-count 3000 --emit {}",
                p(file)
            )))
            .unwrap();
            assert!(
                out.contains(&format!("uids {start}..{}", start + 3000)),
                "{out}"
            );
            assert!(out.contains("emitted wire stream to"), "{out}");
        }

        // Collect each slice; the first with mid-stream epoch cuts.
        let out = collect(&argv(&format!(
            "{session} --shards 2 --in {} --epoch-every 1000 --state {}",
            p("a.bin"),
            p("a.state")
        )))
        .unwrap();
        assert!(
            out.contains("epoch 3: 1000 reports sealed (3000 cumulative)"),
            "{out}"
        );
        assert!(
            out.contains("collected 3000 reports (3 epochs sealed, 0 in flight)"),
            "{out}"
        );
        let out = collect(&argv(&format!(
            "{session} --in {} --state {}",
            p("b.bin"),
            p("b.state")
        )))
        .unwrap();
        assert!(out.contains("(0 epochs sealed, 3000 in flight)"), "{out}");

        // Fan the two states into one model.
        let out = merge(&argv(&format!(
            "{} {} --state {} --snapshot {}",
            p("a.state"),
            p("b.state"),
            p("merged.state"),
            p("merged.snap")
        )))
        .unwrap();
        assert!(
            out.contains("merged 2 state file(s): 6000 reports"),
            "{out}"
        );
        assert!(out.contains("oracle=auto"), "{out}");

        // Exactness across the whole loop: collecting the concatenated
        // stream in one shot must produce byte-identical state and
        // snapshot files — merge is commutative u64 addition, nothing else.
        let mut whole = std::fs::read(p("a.bin")).unwrap();
        whole.extend(std::fs::read(p("b.bin")).unwrap());
        std::fs::write(p("whole.bin"), &whole).unwrap();
        collect(&argv(&format!(
            "{session} --in {} --state {} --snapshot {}",
            p("whole.bin"),
            p("whole.state"),
            p("whole.snap")
        )))
        .unwrap();
        assert_eq!(
            std::fs::read(p("merged.state")).unwrap(),
            std::fs::read(p("whole.state")).unwrap(),
            "merged state diverges from the one-shot collector state"
        );
        assert_eq!(
            std::fs::read(p("merged.snap")).unwrap(),
            std::fs::read(p("whole.snap")).unwrap(),
            "merged snapshot diverges from the one-shot snapshot"
        );

        // Serve the merged snapshot.
        let out = serve(&argv(&format!(
            "--snapshot {} --queries 200 --shards 2 --seed 5",
            p("merged.snap")
        )))
        .unwrap();
        assert!(out.contains("restored snapshot from"), "{out}");
        assert!(out.contains("served 200 answers with 2 shard(s)"), "{out}");
        let sanity: f64 = out
            .lines()
            .find(|l| l.starts_with("full-domain sanity answer"))
            .and_then(|l| l.split_whitespace().nth(3))
            .unwrap()
            .parse()
            .unwrap();
        assert!((sanity - 1.0).abs() < 0.25, "sanity {sanity}");
    }

    #[test]
    fn collect_opens_feeds_served_daemon_end_to_end() {
        let dir = std::env::temp_dir().join("privmdr_cli_served_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).display().to_string();
        let session = "--n 3000 --d 3 --c 16 --epsilon 1.0 --seed 21";
        ingest(&argv(&format!(
            "{session} --shards 2 --emit {}",
            p("stream.bin")
        )))
        .unwrap();

        // Epochs of 1250 over 3000 reports: two mid-stream cuts plus the
        // trailing cumulative open covering the 500 in-flight reports.
        for sid in [3u64, 7] {
            let out = collect(&argv(&format!(
                "{session} --shards 2 --in {} --epoch-every 1250 --session-id {sid} --opens {}",
                p("stream.bin"),
                p(&format!("opens_{sid}.bin"))
            )))
            .unwrap();
            assert!(
                out.contains(&format!("wrote 3 session-open frame(s) for session {sid}")),
                "{out}"
            );
        }

        // Two tenants' epoch streams through one daemon: 6 opens, 4 of
        // which hot-swap a live session; cold misses then pure warm hits.
        let out = served(&argv(&format!(
            "{} {} --queries 100 --repeat 3 --cache-cap 256 --seed 9 --shards 2",
            p("opens_3.bin"),
            p("opens_7.bin")
        )))
        .unwrap();
        assert!(out.contains("6 open(s) (4 hot-swaps)"), "{out}");
        assert!(out.contains("sessions [3, 7]: 100 queries each"), "{out}");
        assert!(out.contains("(400 hits / 200 misses)"), "{out}");

        // A bare 0xC5 snapshot file (no session envelope) opens session 0.
        collect(&argv(&format!(
            "{session} --in {} --snapshot {}",
            p("stream.bin"),
            p("cumulative.snap")
        )))
        .unwrap();
        let out = served(&argv(&format!(
            "{} --queries 50 --cache-cap 64",
            p("cumulative.snap")
        )))
        .unwrap();
        assert!(out.contains("sessions [0]"), "{out}");
        assert!(out.contains("(50 hits / 50 misses)"), "{out}");
    }

    #[test]
    fn served_synthetic_sessions_reports_cached_and_uncached_rates() {
        let out = served(&argv(
            "--sessions 2 --n 400 --d 3 --c 16 --epsilon 1.0 --seed 3 --shards 2 \
             --queries 60 --repeat 2 --cache-cap 128",
        ))
        .unwrap();
        assert!(out.contains("served 2 session(s)"), "{out}");
        assert!(out.contains("cold:"), "{out}");
        assert!(
            out.contains("(120 hits / 120 misses / 0 evictions)"),
            "{out}"
        );
        assert!(out.contains("uncached:"), "{out}");

        let line = served(&argv(
            "--sessions 2 --n 400 --d 3 --c 16 --epsilon 1.0 --seed 3 --queries 40 --json",
        ))
        .unwrap();
        assert!(line.starts_with("{\"cmd\":\"served\""), "{line}");
        for field in [
            "\"sessions\":2",
            "\"cache_cap\":4096",
            "\"queries_per_sec\":",
            "\"cold_queries_per_sec\":",
            "\"uncached_queries_per_sec\":",
            "\"cache_hits\":80",
            "\"cache_misses\":80",
        ] {
            assert!(line.contains(field), "{field} missing from {line}");
        }
    }

    #[test]
    fn served_and_collect_epoch_flags_validate_inputs() {
        let dir = std::env::temp_dir().join("privmdr_cli_served_errs");
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).display().to_string();

        // An explicit --epoch-every 0 is rejected by name (absent = never
        // cut mid-stream, which stays valid).
        std::fs::write(p("empty.bin"), b"").unwrap();
        let err = collect(&argv(&format!(
            "--n 100 --d 3 --c 16 --epsilon 1.0 --epoch-every 0 --in {}",
            p("empty.bin")
        )))
        .unwrap_err();
        assert!(err.contains("--epoch-every must be at least 1"), "{err}");

        // served: synthetic mode still validates the replay parameters;
        // file mode needs at least one opened session and refuses --json
        // (no fit parameters to report).
        assert!(served(&argv("--sessions 2")).is_err()); // no --n/--d/--c/--epsilon
        let err = served(&argv(&p("empty.bin"))).unwrap_err();
        assert!(err.contains("no session-open frames"), "{err}");
        let err = served(&argv(&format!("{} --json", p("empty.bin")))).unwrap_err();
        assert!(err.contains("--json"), "{err}");
        std::fs::write(p("garbage.bin"), b"\x5Egarbage").unwrap();
        assert!(served(&argv(&p("garbage.bin"))).is_err());
    }

    #[test]
    fn collect_and_merge_validate_inputs() {
        let dir = std::env::temp_dir().join("privmdr_cli_stream_errs");
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).display().to_string();
        // Missing input file, missing operands, and garbage state files
        // surface as user errors, not panics.
        assert!(collect(&argv(&format!(
            "--n 100 --d 3 --c 16 --epsilon 1.0 --in {}",
            p("nosuch.bin")
        )))
        .is_err());
        assert!(collect(&argv("--n 100 --d 3 --c 16 --epsilon 1.0")).is_err()); // no --in
        assert!(merge(&argv("--state out.bin")).is_err()); // no operands
        std::fs::write(p("garbage.state"), b"not a state frame").unwrap();
        assert!(merge(&argv(&p("garbage.state"))).is_err());

        // Mismatched plans refuse to merge.
        let session = "--n 400 --d 3 --c 16 --seed 3 --shards 1";
        for (eps, stream, state) in [(1.0, "e1.bin", "e1.state"), (2.0, "e2.bin", "e2.state")] {
            ingest(&argv(&format!(
                "{session} --epsilon {eps} --emit {}",
                p(stream)
            )))
            .unwrap();
            collect(&argv(&format!(
                "{session} --epsilon {eps} --in {} --state {}",
                p(stream),
                p(state)
            )))
            .unwrap();
        }
        let err = merge(&argv(&format!("{} {}", p("e1.state"), p("e2.state")))).unwrap_err();
        assert!(err.contains("different session plans"), "{err}");

        // A stream whose mechanism tag conflicts with the plan is rejected.
        ingest(&argv(&format!(
            "{session} --epsilon 1.0 --oracle grr --emit {}",
            p("grr.bin")
        )))
        .unwrap();
        let err = collect(&argv(&format!(
            "{session} --epsilon 1.0 --oracle olh --in {}",
            p("grr.bin")
        )))
        .unwrap_err();
        assert!(err.contains("mechanism tag"), "{err}");

        // uid-range validation.
        assert!(ingest(&argv(
            "--n 100 --d 3 --c 16 --epsilon 1.0 --uid-start 90 --uid-count 20"
        ))
        .is_err());
        assert!(ingest(&argv("--n 100 --d 3 --c 16 --epsilon 1.0 --uid-count 0")).is_err());
        // --json has no replay parameters to record in snapshot mode.
        assert!(serve(&argv("--snapshot nosuch.snap --json")).is_err());
    }

    #[test]
    fn fit_query_end_to_end_via_files() {
        let dir = std::env::temp_dir().join("privmdr_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.csv");
        let queries_path = dir.join("queries.txt");
        let ds = DatasetSpec::Ipums.generate(5000, 3, 16, 9);
        std::fs::write(&data_path, dataset_to_csv(&ds)).unwrap();
        std::fs::write(&queries_path, "0:0-7\na1 in [2, 9] AND a2 in [0, 15]\n").unwrap();
        let cmd = format!(
            "--data {} --c 16 --mechanism hdg --epsilon 2.0 --queries {} --truth",
            data_path.display(),
            queries_path.display()
        );
        let out = fit_query(&argv(&cmd)).unwrap();
        assert!(out.starts_with("query,estimate,truth,abs_error\n"), "{out}");
        assert!(out.contains("# MAE over 2 queries"));
        // Unknown attribute in the workload is caught up front.
        std::fs::write(&queries_path, "7:0-3\n").unwrap();
        let cmd = format!(
            "--data {} --c 16 --mechanism uni --epsilon 1.0 --queries {}",
            data_path.display(),
            queries_path.display()
        );
        assert!(fit_query(&argv(&cmd)).is_err());
    }
}
