//! Property tests for hierarchies and constrained inference.

use privmdr_hierarchy::constrained::constrain_hierarchy_1d;
use privmdr_hierarchy::Hierarchy1d;
use proptest::prelude::*;

proptest! {
    /// Decomposition produces nodes strictly inside the query range, each
    /// level-aligned, and minimal in the sense that no two sibling groups
    /// could merge (every node's parent is not fully contained).
    #[test]
    fn decomposition_nodes_are_maximal(
        b in 2usize..5,
        h in 1usize..4,
        raw_lo in 0usize..4096,
        raw_len in 0usize..4096,
    ) {
        let c = b.pow(h as u32);
        let lo = raw_lo % c;
        let hi = (lo + raw_len % (c - lo).max(1)).min(c - 1);
        let hier = Hierarchy1d::new(b, c).unwrap();
        for (level, idx) in hier.decompose(lo, hi) {
            let (n_lo, n_hi) = hier.node_bounds(level, idx);
            prop_assert!(lo <= n_lo && n_hi <= hi, "node outside query");
            if level > 0 {
                // The parent must NOT be fully contained (else the greedy
                // cover would have taken it instead).
                let (p_lo, p_hi) = hier.node_bounds(level - 1, idx / b);
                prop_assert!(
                    p_lo < lo || p_hi > hi,
                    "non-maximal node at level {} idx {}", level, idx
                );
            }
        }
    }

    /// Constrained inference always outputs a parent-equals-children
    /// consistent hierarchy and preserves the root total it computes.
    #[test]
    fn ci_output_consistent(
        b in 2usize..4,
        h in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut levels: Vec<Vec<f64>> = (0..=h)
            .map(|l| {
                (0..b.pow(l as u32))
                    .map(|i| {
                        let x = privmdr_util::hash::mix64(seed ^ (l as u64) << 32 ^ i as u64);
                        (x % 1000) as f64 / 1000.0 - 0.3
                    })
                    .collect()
            })
            .collect();
        constrain_hierarchy_1d(&mut levels, b);
        for l in 0..h {
            for (i, &parent) in levels[l].iter().enumerate() {
                let kids: f64 = levels[l + 1][i * b..(i + 1) * b].iter().sum();
                prop_assert!((parent - kids).abs() < 1e-9);
            }
        }
        // Leaf total equals the root.
        let leaf_total: f64 = levels[h].iter().sum();
        prop_assert!((leaf_total - levels[0][0]).abs() < 1e-9);
    }

    /// CI is a projection: applying it twice equals applying it once.
    #[test]
    fn ci_is_idempotent(seed in any::<u64>()) {
        let b = 3usize;
        let h = 3usize;
        let mut levels: Vec<Vec<f64>> = (0..=h)
            .map(|l| {
                (0..b.pow(l as u32))
                    .map(|i| {
                        let x = privmdr_util::hash::mix64(seed ^ (l as u64) << 16 ^ i as u64);
                        (x % 997) as f64 / 997.0
                    })
                    .collect()
            })
            .collect();
        constrain_hierarchy_1d(&mut levels, b);
        let once = levels.clone();
        constrain_hierarchy_1d(&mut levels, b);
        for (la, lb) in levels.iter().zip(&once) {
            for (a, b2) in la.iter().zip(lb) {
                prop_assert!((a - b2).abs() < 1e-9);
            }
        }
    }

    /// Padding covers every domain and node geometry tiles exactly.
    #[test]
    fn padded_geometry_tiles(b in 2usize..6, c_raw in 1usize..2000) {
        let padded = Hierarchy1d::padded_domain(b, c_raw);
        prop_assert!(padded >= c_raw);
        let hier = Hierarchy1d::new(b, padded).unwrap();
        for level in 0..=hier.height() {
            let nodes = hier.nodes_at(level);
            let (first_lo, _) = hier.node_bounds(level, 0);
            let (_, last_hi) = hier.node_bounds(level, nodes - 1);
            prop_assert_eq!(first_lo, 0);
            prop_assert_eq!(last_hi, padded - 1);
            prop_assert_eq!(hier.node_width(level) * nodes, padded);
        }
    }
}
