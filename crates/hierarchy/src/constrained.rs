//! Constrained inference over noisy hierarchies (Hay et al., VLDB'10;
//! paper §3.4).
//!
//! Different levels of a noisy hierarchy estimate the same masses
//! independently, so they disagree. Constrained inference computes the
//! least-squares-consistent hierarchy in two linear passes (all node
//! estimates here share one variance because every level comes from an
//! equal-population user group through OLH):
//!
//! 1. **Bottom-up weighted averaging** — each internal node's estimate is
//!    blended with the sum of its children's:
//!    `z_v = α_k y_v + (1 − α_k) Σ z_child`, `α_k = (bᵏ − bᵏ⁻¹)/(bᵏ − 1)`
//!    for a node of height `k`.
//! 2. **Top-down mean consistency** — children are shifted so they sum to
//!    their parent: `u_child = z_child + (u_parent − Σ z_siblings)/b`.
//!
//! LHIO needs the 2-D adaptation (paper §3.4): run the 1-D pass along the
//! first attribute (for every fixed second-attribute level and interval),
//! then along the second.

#![allow(clippy::needless_range_loop)]
/// 1-D constrained inference in place.
///
/// `levels[ℓ]` holds the `bˡ` noisy interval frequencies of level `ℓ`
/// (so `levels.len() = h + 1`). After the call, every parent equals the sum
/// of its children and the estimates are the uniform-variance least-squares
/// solution.
pub fn constrain_hierarchy_1d(levels: &mut [Vec<f64>], b: usize) {
    let h = levels.len().saturating_sub(1);
    if h == 0 {
        return;
    }
    for (l, lv) in levels.iter().enumerate() {
        debug_assert_eq!(lv.len(), b.pow(l as u32), "level {l} has wrong arity");
    }

    // Pass 1: bottom-up weighted averaging into z (reuse the level storage).
    // Height k = h - level; alpha blends own estimate vs. children's sum.
    for level in (0..h).rev() {
        let k = (h - level) as u32;
        let bk = (b as f64).powi(k as i32);
        let bk1 = (b as f64).powi(k as i32 - 1);
        let alpha = (bk - bk1) / (bk - 1.0);
        let (upper, lower) = levels.split_at_mut(level + 1);
        let this = &mut upper[level];
        let children = &lower[0];
        for (i, z) in this.iter_mut().enumerate() {
            let child_sum: f64 = children[i * b..(i + 1) * b].iter().sum();
            *z = alpha * *z + (1.0 - alpha) * child_sum;
        }
    }

    // Pass 2: top-down mean consistency.
    for level in 1..=h {
        let (upper, lower) = levels.split_at_mut(level);
        let parents = &upper[level - 1];
        let this = &mut lower[0];
        for (p, &u_parent) in parents.iter().enumerate() {
            let group = &mut this[p * b..(p + 1) * b];
            let z_sum: f64 = group.iter().sum();
            let shift = (u_parent - z_sum) / b as f64;
            for z in group {
                *z += shift;
            }
        }
    }
}

/// 2-D constrained inference in place (the paper's LHIO adaptation).
///
/// `levels[ℓ1][ℓ2]` holds the `b^{ℓ1} × b^{ℓ2}` frequencies of the 2-D level
/// `(ℓ1, ℓ2)`, row-major in the first attribute. The 1-D operation runs
/// twice: along attribute 1 for every fixed `(ℓ2, i2)` column, then along
/// attribute 2 for every fixed `(ℓ1, i1)` row.
pub fn constrain_hierarchy_2d(levels: &mut [Vec<Vec<f64>>], b: usize) {
    let h = levels.len().saturating_sub(1);
    if h == 0 {
        return;
    }

    // Along attribute 1: for each ℓ2 and each interval i2 of attribute 2,
    // the column {levels[ℓ1][ℓ2][· , i2]} forms a 1-D hierarchy.
    for l2 in 0..=h {
        let n2 = b.pow(l2 as u32);
        for i2 in 0..n2 {
            let mut column: Vec<Vec<f64>> = (0..=h)
                .map(|l1| {
                    let n1 = b.pow(l1 as u32);
                    (0..n1).map(|i1| levels[l1][l2][i1 * n2 + i2]).collect()
                })
                .collect();
            constrain_hierarchy_1d(&mut column, b);
            for (l1, col) in column.iter().enumerate() {
                let n1 = b.pow(l1 as u32);
                for i1 in 0..n1 {
                    levels[l1][l2][i1 * n2 + i2] = col[i1];
                }
            }
        }
    }

    // Along attribute 2: for each ℓ1 and each interval i1 of attribute 1.
    for l1 in 0..=h {
        let n1 = b.pow(l1 as u32);
        for i1 in 0..n1 {
            let mut row: Vec<Vec<f64>> = (0..=h)
                .map(|l2| {
                    let n2 = b.pow(l2 as u32);
                    levels[l1][l2][i1 * n2..(i1 + 1) * n2].to_vec()
                })
                .collect();
            constrain_hierarchy_1d(&mut row, b);
            for (l2, r) in row.iter().enumerate() {
                let n2 = b.pow(l2 as u32);
                levels[l1][l2][i1 * n2..(i1 + 1) * n2].copy_from_slice(r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmdr_util::rng::derive_rng;
    use privmdr_util::sampling::standard_normal;
    use privmdr_util::stats::std_dev;

    fn assert_consistent_1d(levels: &[Vec<f64>], b: usize) {
        for level in 0..levels.len() - 1 {
            for (i, &parent) in levels[level].iter().enumerate() {
                let child_sum: f64 = levels[level + 1][i * b..(i + 1) * b].iter().sum();
                assert!(
                    (parent - child_sum).abs() < 1e-9,
                    "level {level} node {i}: {parent} vs children {child_sum}"
                );
            }
        }
    }

    #[test]
    fn consistent_input_is_fixed_point() {
        // Build an exactly consistent hierarchy; CI must not change it.
        let b = 2;
        let leaves = vec![0.1, 0.2, 0.05, 0.15, 0.1, 0.1, 0.2, 0.1];
        let mut levels = vec![leaves];
        while levels.last().unwrap().len() > 1 {
            let cur = levels.last().unwrap();
            let parent: Vec<f64> = cur.chunks(b).map(|chunk| chunk.iter().sum()).collect();
            levels.push(parent);
        }
        levels.reverse();
        let original = levels.clone();
        constrain_hierarchy_1d(&mut levels, b);
        for (l, (got, want)) in levels.iter().zip(&original).enumerate() {
            for (g, w) in got.iter().zip(want) {
                assert!((g - w).abs() < 1e-9, "level {l} changed");
            }
        }
    }

    #[test]
    fn output_is_always_consistent() {
        let b = 4usize;
        let mut rng = derive_rng(42, &[0]);
        let mut levels: Vec<Vec<f64>> = (0..=3u32)
            .map(|l| (0..b.pow(l)).map(|_| standard_normal(&mut rng)).collect())
            .collect();
        constrain_hierarchy_1d(&mut levels, b);
        assert_consistent_1d(&levels, b);
    }

    #[test]
    fn ci_preserves_total_in_expectation_and_reduces_variance() {
        // Noisy observations of a known hierarchy; CI estimates of the root
        // should have smaller variance than the raw root estimate.
        let b = 4usize;
        let h = 3usize;
        let true_leaves: Vec<f64> = (0..b.pow(h as u32)).map(|i| (i % 7) as f64).collect();
        let mut true_levels = vec![true_leaves];
        while true_levels.last().unwrap().len() > 1 {
            let cur = true_levels.last().unwrap();
            true_levels.push(cur.chunks(b).map(|c| c.iter().sum()).collect());
        }
        true_levels.reverse();

        let sigma = 1.0;
        let reps = 300;
        let mut raw_mid = Vec::new();
        let mut ci_mid = Vec::new();
        for r in 0..reps {
            let mut rng = derive_rng(7, &[r]);
            let mut noisy: Vec<Vec<f64>> = true_levels
                .iter()
                .map(|lv| {
                    lv.iter()
                        .map(|&v| v + sigma * standard_normal(&mut rng))
                        .collect()
                })
                .collect();
            raw_mid.push(noisy[1][2]);
            constrain_hierarchy_1d(&mut noisy, b);
            ci_mid.push(noisy[1][2]);
        }
        let raw_sd = std_dev(&raw_mid);
        let ci_sd = std_dev(&ci_mid);
        assert!(
            ci_sd < raw_sd * 0.9,
            "CI should shrink node std: raw {raw_sd}, ci {ci_sd}"
        );
        // Unbiasedness: means stay near the true value.
        let want = true_levels[1][2];
        let got = privmdr_util::stats::mean(&ci_mid);
        assert!((got - want).abs() < 4.0 * ci_sd / (reps as f64).sqrt() + 0.2);
    }

    #[test]
    fn two_d_output_is_consistent_along_both_attributes() {
        let b = 2usize;
        let h = 2usize;
        let mut rng = derive_rng(9, &[1]);
        let mut levels: Vec<Vec<Vec<f64>>> = (0..=h)
            .map(|l1| {
                (0..=h)
                    .map(|l2| {
                        (0..b.pow(l1 as u32) * b.pow(l2 as u32))
                            .map(|_| standard_normal(&mut rng))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        constrain_hierarchy_2d(&mut levels, b);

        // Along attribute 1: refining ℓ1 at fixed ℓ2 preserves column sums.
        for l2 in 0..=h {
            let n2 = b.pow(l2 as u32);
            for l1 in 0..h {
                let n1 = b.pow(l1 as u32);
                for i1 in 0..n1 {
                    for i2 in 0..n2 {
                        let parent = levels[l1][l2][i1 * n2 + i2];
                        let children: f64 = (0..b)
                            .map(|ch| levels[l1 + 1][l2][(i1 * b + ch) * n2 + i2])
                            .sum();
                        assert!(
                            (parent - children).abs() < 1e-9,
                            "attr1 ({l1},{l2}) node ({i1},{i2})"
                        );
                    }
                }
            }
        }
        // Along attribute 2.
        for l1 in 0..=h {
            let n1 = b.pow(l1 as u32);
            for l2 in 0..h {
                let n2 = b.pow(l2 as u32);
                for i1 in 0..n1 {
                    for i2 in 0..n2 {
                        let parent = levels[l1][l2][i1 * n2 + i2];
                        let children: f64 = (0..b)
                            .map(|ch| levels[l1][l2 + 1][i1 * n2 * b + i2 * b + ch])
                            .sum();
                        assert!(
                            (parent - children).abs() < 1e-9,
                            "attr2 ({l1},{l2}) node ({i1},{i2})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn degenerate_single_level_is_noop() {
        let mut levels = vec![vec![1.0]];
        constrain_hierarchy_1d(&mut levels, 4);
        assert_eq!(levels, vec![vec![1.0]]);
    }
}
