//! Interval hierarchies and the hierarchy-based baselines (paper §3.3–3.4).
//!
//! * [`hierarchy1d`] — the branching-factor-`b` interval hierarchy over a
//!   single attribute, with minimal-node range decomposition.
//! * [`constrained`] — Hay et al.'s constrained inference (weighted
//!   bottom-up averaging + top-down mean consistency), in 1-D and the
//!   paper's 2-D adaptation for LHIO.
//! * [`hierarchy2d`] — a 2-D hierarchy over an attribute pair: one OLH-
//!   estimated histogram per `(ℓ1, ℓ2)` level pair, fused by 2-D constrained
//!   inference.
//! * [`hio`] — the HIO baseline: a full d-dimensional hierarchy with
//!   `(h+1)^d` user groups and lazy per-interval OLH estimation.
//! * [`range1d`] — the 1-D range-query estimators the paper cites as prior
//!   art (hierarchical intervals and Haar wavelets, Cormode et al.).

pub mod constrained;
pub mod hierarchy1d;
pub mod hierarchy2d;
pub mod hio;
pub mod range1d;

pub use constrained::{constrain_hierarchy_1d, constrain_hierarchy_2d};
pub use hierarchy1d::Hierarchy1d;
pub use hierarchy2d::Hierarchy2d;
pub use hio::Hio;
pub use range1d::{HaarRange1d, HierarchicalRange1d};

/// Errors from invalid hierarchy parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum HierarchyError {
    /// Branching factor must be at least 2.
    BadBranching(usize),
    /// Domain must be a positive power of the branching factor (pad first).
    BadDomain { domain: usize, branching: usize },
    /// The privacy budget must be strictly positive and finite.
    BadEpsilon(f64),
}

impl std::fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HierarchyError::BadBranching(b) => write!(f, "branching factor {b} must be >= 2"),
            HierarchyError::BadDomain { domain, branching } => write!(
                f,
                "domain {domain} must be a positive power of the branching factor {branching}"
            ),
            HierarchyError::BadEpsilon(e) => {
                write!(f, "epsilon must be positive and finite, got {e}")
            }
        }
    }
}

impl std::error::Error for HierarchyError {}
