//! HIO: the d-dimensional hierarchy baseline (paper §3.3; Wang et al.,
//! SIGMOD'19).
//!
//! HIO builds one 1-D hierarchy per attribute and crosses them: a *d-dim
//! level* is a vector `(ℓ1, …, ℓd)` and holds `∏ b^{ℓt}` d-dim intervals.
//! Users are split into `(h+1)^d` groups, one per d-dim level, and each
//! group reports which d-dim interval its record falls in through OLH.
//!
//! The interval count at deep levels is astronomically large (`c^d` at the
//! leaves), so frequencies are never materialized: each group retains its
//! raw OLH reports ([`OlhReportSet`]) and a query estimates only the
//! intervals its decomposition touches, memoizing them for reuse.
//!
//! This is the baseline the paper shows failing challenges 2 and 3: with
//! `(h+1)^d` groups each holds `n/(h+1)^d` users, so the noise per estimate
//! is enormous — reproduced by the Fig. 1 experiments.

#![allow(clippy::needless_range_loop)]
use crate::hierarchy1d::Hierarchy1d;
use crate::HierarchyError;
use privmdr_oracles::olh::{Olh, OlhReportSet};
use privmdr_oracles::partition::partition_equal;
use rand::Rng;
use std::collections::HashMap;
use std::sync::Mutex;

/// One d-dim level: its level vector, interval radix strides, and reports.
#[derive(Debug)]
struct HioGroup {
    /// `ℓt` per attribute.
    levels: Vec<u8>,
    /// Stride of attribute `t` in the mixed-radix interval index.
    strides: Vec<u64>,
    /// Total interval count `∏ b^{ℓt}`.
    domain: u64,
    /// Retained reports; `None` for the all-roots level (domain 1).
    reports: Option<OlhReportSet>,
}

/// A fitted HIO model.
#[derive(Debug)]
pub struct Hio {
    geom: Hierarchy1d,
    d: usize,
    c_real: usize,
    groups: Vec<HioGroup>,
    /// Memoized `(group, interval) -> estimate`; queries often share nodes.
    cache: Mutex<HashMap<(u32, u64), f64>>,
}

impl Hio {
    /// Fits HIO on row-major records (`rows[u * d + t]` = user `u`'s value
    /// of attribute `t`) with branching factor `branching` at budget
    /// `epsilon`. Exact per-user OLH reports are always used — HIO's levels
    /// are too large for materialized fast simulation.
    pub fn fit<R: Rng + ?Sized>(
        rows: &[u16],
        d: usize,
        c: usize,
        branching: usize,
        epsilon: f64,
        rng: &mut R,
    ) -> Result<Self, HierarchyError> {
        assert!(
            d >= 1 && rows.len().is_multiple_of(d),
            "rows must be n*d values"
        );
        privmdr_oracles::validate_epsilon(epsilon)
            .map_err(|_| HierarchyError::BadEpsilon(epsilon))?;
        let n = rows.len() / d;
        let padded = Hierarchy1d::padded_domain(branching, c);
        let geom = Hierarchy1d::new(branching, padded)?;
        let h = geom.height();
        let m = (h + 1).pow(d as u32);
        let user_groups = partition_equal(n, m, rng);

        let mut groups = Vec::with_capacity(m);
        let mut cells: Vec<u64> = Vec::new();
        for (gi, users) in user_groups.iter().enumerate() {
            let levels = level_vector(gi, d, h);
            let mut strides = vec![0u64; d];
            let mut domain = 1u64;
            for t in (0..d).rev() {
                strides[t] = domain;
                domain *= geom.nodes_at(levels[t] as usize) as u64;
            }
            let reports = if domain <= 1 {
                None
            } else {
                cells.clear();
                cells.reserve(users.len());
                for &u in users {
                    let row = &rows[u as usize * d..(u as usize + 1) * d];
                    let mut cell = 0u64;
                    for t in 0..d {
                        cell +=
                            geom.node_of(levels[t] as usize, row[t] as usize) as u64 * strides[t];
                    }
                    cells.push(cell);
                }
                let olh = Olh::new(epsilon, domain as usize).expect("domain >= 2 checked above");
                Some(OlhReportSet::collect(olh, &cells, rng))
            };
            groups.push(HioGroup {
                levels,
                strides,
                domain,
                reports,
            });
        }
        Ok(Hio {
            geom,
            d,
            c_real: c,
            groups,
            cache: Mutex::new(HashMap::new()),
        })
    }

    /// Number of attributes.
    pub fn dims(&self) -> usize {
        self.d
    }

    /// Unpadded attribute domain size.
    pub fn domain(&self) -> usize {
        self.c_real
    }

    /// Number of d-dim levels (user groups), `(h+1)^d`.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Level vector and interval count of group `gi` (diagnostics).
    pub fn group_info(&self, gi: usize) -> (&[u8], u64) {
        let g = &self.groups[gi];
        (&g.levels, g.domain)
    }

    /// Answers a multi-dimensional range query given as one inclusive
    /// interval per attribute (use `(0, c-1)` for attributes the query does
    /// not restrict, as §3.3 prescribes).
    pub fn answer(&self, intervals: &[(usize, usize)]) -> f64 {
        assert_eq!(intervals.len(), self.d, "one interval per attribute");
        // Decompose each attribute's interval into hierarchy nodes.
        let decomps: Vec<Vec<(usize, usize)>> = intervals
            .iter()
            .map(|&(lo, hi)| self.geom.decompose(lo, hi.min(self.c_real - 1)))
            .collect();
        // Walk the cartesian product with an odometer.
        let mut pick = vec![0usize; self.d];
        let mut total = 0.0;
        loop {
            total += self.estimate_combo(&decomps, &pick);
            // Advance the odometer.
            let mut t = 0;
            loop {
                if t == self.d {
                    return total;
                }
                pick[t] += 1;
                if pick[t] < decomps[t].len() {
                    break;
                }
                pick[t] = 0;
                t += 1;
            }
        }
    }

    /// Estimates the frequency of one d-dim interval combination.
    fn estimate_combo(&self, decomps: &[Vec<(usize, usize)>], pick: &[usize]) -> f64 {
        let h = self.geom.height();
        let mut group_idx = 0usize;
        for t in 0..self.d {
            let (level, _) = decomps[t][pick[t]];
            group_idx = group_idx * (h + 1) + level;
        }
        // level_vector uses the same mixed-radix (attr 0 most significant).
        let group = &self.groups[group_idx];
        let mut cell = 0u64;
        for t in 0..self.d {
            let (_, idx) = decomps[t][pick[t]];
            cell += idx as u64 * group.strides[t];
        }
        match &group.reports {
            None => 1.0, // the all-roots level: the full domain has mass 1
            Some(set) => {
                let key = (group_idx as u32, cell);
                if let Some(&v) = self.cache.lock().expect("poisoned").get(&key) {
                    return v;
                }
                let v = set.estimate(cell as usize);
                self.cache.lock().expect("poisoned").insert(key, v);
                v
            }
        }
    }
}

/// Decodes group index `gi` into its level vector (attr 0 most significant).
fn level_vector(gi: usize, d: usize, h: usize) -> Vec<u8> {
    let mut levels = vec![0u8; d];
    let mut rest = gi;
    for t in (0..d).rev() {
        levels[t] = (rest % (h + 1)) as u8;
        rest /= h + 1;
    }
    debug_assert_eq!(rest, 0);
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmdr_util::rng::derive_rng;

    fn rows_2d(n: usize) -> Vec<u16> {
        // Two attributes, half the users at (2, 10), half at (12, 3).
        let mut rows = Vec::with_capacity(n * 2);
        for i in 0..n {
            if i % 2 == 0 {
                rows.extend_from_slice(&[2, 10]);
            } else {
                rows.extend_from_slice(&[12, 3]);
            }
        }
        rows
    }

    #[test]
    fn level_vector_round_trips() {
        let (d, h) = (3usize, 2usize);
        for gi in 0..(h + 1).pow(d as u32) {
            let lv = level_vector(gi, d, h);
            let mut back = 0usize;
            for t in 0..d {
                back = back * (h + 1) + lv[t] as usize;
            }
            assert_eq!(back, gi);
        }
    }

    #[test]
    fn group_count_matches_formula() {
        let rows = rows_2d(2000);
        let mut rng = derive_rng(1, &[0]);
        let hio = Hio::fit(&rows, 2, 16, 4, 1.0, &mut rng).unwrap();
        // h = 2 for c=16, b=4 -> (h+1)^d = 9 groups.
        assert_eq!(hio.group_count(), 9);
    }

    #[test]
    fn full_domain_query_answers_one_exactly() {
        // The all-roots combination is deterministic: no noise at all.
        let rows = rows_2d(500);
        let mut rng = derive_rng(2, &[0]);
        let hio = Hio::fit(&rows, 2, 16, 4, 1.0, &mut rng).unwrap();
        let full = hio.answer(&[(0, 15), (0, 15)]);
        assert!((full - 1.0).abs() < 1e-12);
    }

    #[test]
    fn estimates_are_unbiased_over_repeats() {
        let rows = rows_2d(20_000);
        let reps = 15;
        let mut acc = 0.0;
        for r in 0..reps {
            let mut rng = derive_rng(3, &[r]);
            let hio = Hio::fit(&rows, 2, 16, 4, 2.0, &mut rng).unwrap();
            // Query capturing exactly the (2, 10) half.
            acc += hio.answer(&[(0, 7), (8, 15)]);
        }
        let mean = acc / reps as f64;
        assert!((mean - 0.5).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn cache_is_used_across_queries() {
        let rows = rows_2d(1000);
        let mut rng = derive_rng(4, &[0]);
        let hio = Hio::fit(&rows, 2, 16, 2, 1.0, &mut rng).unwrap();
        let a1 = hio.answer(&[(0, 7), (0, 15)]);
        let cached = hio.cache.lock().unwrap().len();
        assert!(cached > 0);
        // Same query again: identical answer (memoized, no re-randomness).
        let a2 = hio.answer(&[(0, 7), (0, 15)]);
        assert_eq!(a1, a2);
        assert_eq!(hio.cache.lock().unwrap().len(), cached);
    }

    #[test]
    fn three_dims_with_unqueried_attribute() {
        let n = 9000;
        let mut rows = Vec::with_capacity(n * 3);
        for i in 0..n {
            let v = if i % 3 == 0 { 1 } else { 14 };
            rows.extend_from_slice(&[v, (i % 16) as u16, 7]);
        }
        let mut rng = derive_rng(5, &[0]);
        let hio = Hio::fit(&rows, 3, 16, 4, 2.0, &mut rng).unwrap();
        // lambda = 1 query expanded with full intervals.
        let est = hio.answer(&[(0, 7), (0, 15), (0, 15)]);
        assert!((est - 1.0 / 3.0).abs() < 0.25, "est {est}");
    }
}
