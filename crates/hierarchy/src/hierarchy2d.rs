//! 2-D hierarchies over attribute pairs — the LHIO substrate (paper §3.4).
//!
//! LHIO assigns one user group per attribute pair and lets that group build a
//! 2-D hierarchy: the group is subdivided into `(h+1)²` subgroups, one per
//! 2-D level `(ℓ1, ℓ2)`, and each subgroup reports its 2-D interval through
//! OLH over the `b^{ℓ1+ℓ2}` intervals of that level. The noisy levels are
//! then fused by 2-D constrained inference, after which the hierarchy is
//! internally consistent and any 2-D range query can be answered either from
//! the minimal node decomposition or (equivalently) from the leaf level.

use crate::constrained::constrain_hierarchy_2d;
use crate::hierarchy1d::Hierarchy1d;
use crate::HierarchyError;
use privmdr_oracles::olh::Olh;
use privmdr_oracles::partition::partition_equal;
use privmdr_oracles::SimMode;
use rand::Rng;

/// A collected (and optionally constrained) 2-D hierarchy for one pair.
#[derive(Debug, Clone)]
pub struct Hierarchy2d {
    attrs: (usize, usize),
    geom: Hierarchy1d,
    /// Unpadded attribute domain (`<=` the padded `geom.domain()`).
    c_real: usize,
    /// `levels[ℓ1][ℓ2]`: row-major `b^{ℓ1} × b^{ℓ2}` interval frequencies.
    levels: Vec<Vec<Vec<f64>>>,
}

impl Hierarchy2d {
    /// Phase 1 for one pair: splits the pair's user group into `(h+1)²`
    /// level subgroups and estimates every level histogram with OLH.
    ///
    /// `c` need not be a power of `b`; the domain is padded upward and the
    /// padding carries zero mass.
    pub fn collect<R: Rng + ?Sized>(
        attrs: (usize, usize),
        branching: usize,
        c: usize,
        value_pairs: &[(u16, u16)],
        epsilon: f64,
        mode: SimMode,
        rng: &mut R,
    ) -> Result<Self, HierarchyError> {
        privmdr_oracles::validate_epsilon(epsilon)
            .map_err(|_| HierarchyError::BadEpsilon(epsilon))?;
        let padded = Hierarchy1d::padded_domain(branching, c);
        let geom = Hierarchy1d::new(branching, padded)?;
        let h = geom.height();
        let n_levels = (h + 1) * (h + 1);
        let subgroups = partition_equal(value_pairs.len(), n_levels, rng);

        let mut levels: Vec<Vec<Vec<f64>>> = Vec::with_capacity(h + 1);
        for l1 in 0..=h {
            let mut row = Vec::with_capacity(h + 1);
            for l2 in 0..=h {
                let users = &subgroups[l1 * (h + 1) + l2];
                row.push(collect_level(
                    &geom,
                    l1,
                    l2,
                    value_pairs,
                    users,
                    epsilon,
                    mode,
                    rng,
                ));
            }
            levels.push(row);
        }
        Ok(Hierarchy2d {
            attrs,
            geom,
            c_real: c,
            levels,
        })
    }

    /// Noiseless construction (ε = ∞ reference) computing every level from
    /// exact counts.
    pub fn from_exact(
        attrs: (usize, usize),
        branching: usize,
        c: usize,
        value_pairs: &[(u16, u16)],
    ) -> Result<Self, HierarchyError> {
        let padded = Hierarchy1d::padded_domain(branching, c);
        let geom = Hierarchy1d::new(branching, padded)?;
        let h = geom.height();
        let n = value_pairs.len().max(1) as f64;
        let mut levels = Vec::with_capacity(h + 1);
        for l1 in 0..=h {
            let n1 = geom.nodes_at(l1);
            let mut row = Vec::with_capacity(h + 1);
            for l2 in 0..=h {
                let n2 = geom.nodes_at(l2);
                let mut freqs = vec![0f64; n1 * n2];
                for &(v1, v2) in value_pairs {
                    let i1 = geom.node_of(l1, v1 as usize);
                    let i2 = geom.node_of(l2, v2 as usize);
                    freqs[i1 * n2 + i2] += 1.0;
                }
                freqs.iter_mut().for_each(|f| *f /= n);
                row.push(freqs);
            }
            levels.push(row);
        }
        Ok(Hierarchy2d {
            attrs,
            geom,
            c_real: c,
            levels,
        })
    }

    /// The ordered attribute pair.
    pub fn attrs(&self) -> (usize, usize) {
        self.attrs
    }

    /// Hierarchy geometry (padded domain).
    pub fn geometry(&self) -> &Hierarchy1d {
        &self.geom
    }

    /// Unpadded domain size.
    pub fn domain(&self) -> usize {
        self.c_real
    }

    /// Applies the paper's 2-D constrained inference in place.
    pub fn constrain(&mut self) {
        constrain_hierarchy_2d(&mut self.levels, self.geom.branching());
    }

    /// Answers the 2-D range query `[lo1, hi1] × [lo2, hi2]` (inclusive) by
    /// summing the minimal node decomposition on each axis.
    pub fn answer_range(&self, r1: (usize, usize), r2: (usize, usize)) -> f64 {
        let nodes1 = self.geom.decompose(r1.0, r1.1);
        let nodes2 = self.geom.decompose(r2.0, r2.1);
        let mut total = 0.0;
        for &(l1, i1) in &nodes1 {
            for &(l2, i2) in &nodes2 {
                let n2 = self.geom.nodes_at(l2);
                total += self.levels[l1][l2][i1 * n2 + i2];
            }
        }
        total
    }

    /// The leaf level as a row-major padded `c_pad × c_pad` matrix. After
    /// [`Self::constrain`], every coarser level equals aggregations of this
    /// matrix, so downstream consumers can operate on leaves alone.
    pub fn leaves(&self) -> &[f64] {
        let h = self.geom.height();
        &self.levels[h][h]
    }

    /// Mutable level access for tests and cross-pair post-processing.
    pub fn level_mut(&mut self, l1: usize, l2: usize) -> &mut Vec<f64> {
        &mut self.levels[l1][l2]
    }
}

/// Collects one `(ℓ1, ℓ2)` level histogram from its subgroup.
#[allow(clippy::too_many_arguments)]
fn collect_level<R: Rng + ?Sized>(
    geom: &Hierarchy1d,
    l1: usize,
    l2: usize,
    value_pairs: &[(u16, u16)],
    users: &[u32],
    epsilon: f64,
    mode: SimMode,
    rng: &mut R,
) -> Vec<f64> {
    let n1 = geom.nodes_at(l1);
    let n2 = geom.nodes_at(l2);
    let domain = n1 * n2;
    if domain == 1 {
        // The root level carries no information: the total is 1 by
        // definition, no reports needed.
        return vec![1.0];
    }
    let cells: Vec<u32> = users
        .iter()
        .map(|&u| {
            let (v1, v2) = value_pairs[u as usize];
            (geom.node_of(l1, v1 as usize) * n2 + geom.node_of(l2, v2 as usize)) as u32
        })
        .collect();
    let olh = Olh::new(epsilon, domain).expect("domain >= 2 checked above");
    olh.collect(&cells, mode, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmdr_util::rng::derive_rng;

    fn corner_pairs(n: usize) -> Vec<(u16, u16)> {
        // Half the mass at (2, 2), half at (13, 13): correlated corners.
        (0..n)
            .map(|i| if i % 2 == 0 { (2, 2) } else { (13, 13) })
            .collect()
    }

    #[test]
    fn exact_hierarchy_answers_exactly() {
        let pairs = corner_pairs(1000);
        let hier = Hierarchy2d::from_exact((0, 1), 4, 16, &pairs).unwrap();
        assert!((hier.answer_range((0, 15), (0, 15)) - 1.0).abs() < 1e-12);
        assert!((hier.answer_range((0, 7), (0, 7)) - 0.5).abs() < 1e-12);
        assert!((hier.answer_range((8, 15), (8, 15)) - 0.5).abs() < 1e-12);
        assert!(hier.answer_range((0, 7), (8, 15)).abs() < 1e-12);
        assert!((hier.answer_range((2, 2), (2, 2)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn padding_carries_zero_mass() {
        // c = 10 pads to 16 under b=4... (4^2); values 10..16 must be empty.
        let pairs: Vec<(u16, u16)> = (0..100).map(|i| (i % 10, (i * 3) % 10)).collect();
        let hier = Hierarchy2d::from_exact((0, 1), 4, 10, &pairs).unwrap();
        assert_eq!(hier.geometry().domain(), 16);
        assert!((hier.answer_range((0, 9), (0, 9)) - 1.0).abs() < 1e-12);
        assert!(hier.answer_range((10, 15), (0, 15)).abs() < 1e-12);
    }

    #[test]
    fn collected_hierarchy_is_roughly_unbiased() {
        let pairs = corner_pairs(40_000);
        let mut sum_q = 0.0;
        let reps = 20;
        for r in 0..reps {
            let mut rng = derive_rng(31, &[r]);
            let hier =
                Hierarchy2d::collect((0, 1), 4, 16, &pairs, 1.0, SimMode::Fast, &mut rng).unwrap();
            sum_q += hier.answer_range((0, 7), (0, 7));
        }
        let mean = sum_q / reps as f64;
        assert!((mean - 0.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn constrain_makes_levels_agree_with_leaves() {
        let pairs = corner_pairs(20_000);
        let mut rng = derive_rng(5, &[0]);
        let mut hier =
            Hierarchy2d::collect((0, 1), 2, 16, &pairs, 1.0, SimMode::Fast, &mut rng).unwrap();
        hier.constrain();
        // Any range answered via decomposition must equal the leaf sum.
        let leaves = hier.leaves().to_vec();
        let c = hier.geometry().domain();
        for (r1, r2) in [((0, 11), (2, 15)), ((1, 12), (0, 7)), ((0, 15), (0, 15))] {
            let via_nodes = hier.answer_range(r1, r2);
            let mut via_leaves = 0.0;
            for v1 in r1.0..=r1.1 {
                for v2 in r2.0..=r2.1 {
                    via_leaves += leaves[v1 * c + v2];
                }
            }
            assert!(
                (via_nodes - via_leaves).abs() < 1e-9,
                "range {r1:?}x{r2:?}: {via_nodes} vs {via_leaves}"
            );
        }
    }

    #[test]
    fn constrained_estimates_beat_raw_for_large_ranges() {
        // CI pools all levels, so large-range answers should have visibly
        // smaller spread than leaf-only summing. Statistical, seeded.
        let pairs = corner_pairs(30_000);
        let reps = 30;
        let (mut raw_err, mut ci_err) = (0.0f64, 0.0f64);
        for r in 0..reps {
            let mut rng = derive_rng(77, &[r]);
            let mut hier =
                Hierarchy2d::collect((0, 1), 2, 16, &pairs, 0.5, SimMode::Fast, &mut rng).unwrap();
            let truth = 0.5;
            // Raw: sum the leaf level over the half-domain square.
            let c = hier.geometry().domain();
            let leaves = hier.leaves();
            let mut raw = 0.0;
            for v1 in 0..8 {
                for v2 in 0..8 {
                    raw += leaves[v1 * c + v2];
                }
            }
            raw_err += (raw - truth).abs();
            hier.constrain();
            ci_err += (hier.answer_range((0, 7), (0, 7)) - truth).abs();
        }
        assert!(
            ci_err < raw_err * 0.8,
            "CI should help large ranges: raw {raw_err}, ci {ci_err}"
        );
    }
}
