//! 1-D interval hierarchies (paper §3.3).
//!
//! A hierarchy with branching factor `b` over domain `[c]` (with `c = bʰ`)
//! has `h + 1` levels: level 0 is the root (the whole domain), level `ℓ` has
//! `bˡ` equal intervals, and level `h` holds single values. Any range
//! `[lo, hi]` decomposes into a minimal set of hierarchy nodes, which is how
//! HIO/LHIO answer range queries from per-level frequency estimates.

use crate::HierarchyError;

/// Geometry of a branching-`b` hierarchy over `[c]`, `c = bʰ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hierarchy1d {
    b: usize,
    c: usize,
    h: usize,
}

impl Hierarchy1d {
    /// Creates the hierarchy; `domain` must be a positive power of
    /// `branching` (pad the attribute domain first if it is not).
    pub fn new(branching: usize, domain: usize) -> Result<Self, HierarchyError> {
        if branching < 2 {
            return Err(HierarchyError::BadBranching(branching));
        }
        let mut h = 0usize;
        let mut size = 1usize;
        while size < domain {
            size = size.saturating_mul(branching);
            h += 1;
        }
        if size != domain || domain == 0 {
            return Err(HierarchyError::BadDomain { domain, branching });
        }
        Ok(Hierarchy1d {
            b: branching,
            c: domain,
            h,
        })
    }

    /// Smallest power of `branching` that is at least `domain` — the padded
    /// domain HIO/LHIO operate on when `c` is not a power of `b`.
    pub fn padded_domain(branching: usize, domain: usize) -> usize {
        let mut size = 1usize;
        while size < domain {
            size *= branching;
        }
        size
    }

    /// Branching factor `b`.
    pub fn branching(&self) -> usize {
        self.b
    }

    /// Domain size `c = bʰ`.
    pub fn domain(&self) -> usize {
        self.c
    }

    /// Height `h = log_b c`; the hierarchy has `h + 1` levels `0..=h`.
    pub fn height(&self) -> usize {
        self.h
    }

    /// Number of intervals at level `ℓ`: `bˡ`.
    #[inline]
    pub fn nodes_at(&self, level: usize) -> usize {
        debug_assert!(level <= self.h);
        self.b.pow(level as u32)
    }

    /// Width (in values) of each interval at `level`.
    #[inline]
    pub fn node_width(&self, level: usize) -> usize {
        self.c / self.nodes_at(level)
    }

    /// Inclusive value interval `[lo, hi]` of node `idx` at `level`.
    #[inline]
    pub fn node_bounds(&self, level: usize, idx: usize) -> (usize, usize) {
        let w = self.node_width(level);
        (idx * w, (idx + 1) * w - 1)
    }

    /// Index of the node containing value `v` at `level`.
    #[inline]
    pub fn node_of(&self, level: usize, v: usize) -> usize {
        debug_assert!(v < self.c);
        v / self.node_width(level)
    }

    /// Minimal set of `(level, index)` nodes exactly covering `[lo, hi]`
    /// (inclusive). Greedy top-down: a node fully inside the range is taken
    /// whole; partially overlapping nodes recurse into their children.
    pub fn decompose(&self, lo: usize, hi: usize) -> Vec<(usize, usize)> {
        assert!(
            lo <= hi && hi < self.c,
            "range [{lo}, {hi}] out of [0, {})",
            self.c
        );
        let mut out = Vec::new();
        let mut stack = vec![(0usize, 0usize)];
        while let Some((level, idx)) = stack.pop() {
            let (n_lo, n_hi) = self.node_bounds(level, idx);
            if n_lo > hi || n_hi < lo {
                continue;
            }
            if lo <= n_lo && n_hi <= hi {
                out.push((level, idx));
                continue;
            }
            debug_assert!(level < self.h, "leaves are single values, never partial");
            for child in 0..self.b {
                stack.push((level + 1, idx * self.b + child));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Hierarchy1d::new(1, 64).is_err());
        assert!(Hierarchy1d::new(4, 60).is_err());
        let h = Hierarchy1d::new(4, 64).unwrap();
        assert_eq!(h.height(), 3);
        assert_eq!(h.nodes_at(0), 1);
        assert_eq!(h.nodes_at(3), 64);
        let h = Hierarchy1d::new(2, 1).unwrap();
        assert_eq!(h.height(), 0);
    }

    #[test]
    fn padding() {
        assert_eq!(Hierarchy1d::padded_domain(4, 64), 64);
        assert_eq!(Hierarchy1d::padded_domain(4, 60), 64);
        assert_eq!(Hierarchy1d::padded_domain(5, 64), 125);
        assert_eq!(Hierarchy1d::padded_domain(4, 1), 1);
    }

    #[test]
    fn node_geometry() {
        let h = Hierarchy1d::new(4, 64).unwrap();
        assert_eq!(h.node_bounds(0, 0), (0, 63));
        assert_eq!(h.node_bounds(1, 2), (32, 47));
        assert_eq!(h.node_bounds(3, 63), (63, 63));
        assert_eq!(h.node_of(1, 33), 2);
        assert_eq!(h.node_of(3, 33), 33);
    }

    /// Brute-force check that a decomposition covers exactly `[lo, hi]`.
    fn check_cover(h: &Hierarchy1d, lo: usize, hi: usize) {
        let nodes = h.decompose(lo, hi);
        let mut covered = vec![0usize; h.domain()];
        for &(level, idx) in &nodes {
            let (n_lo, n_hi) = h.node_bounds(level, idx);
            for c in covered.iter_mut().take(n_hi + 1).skip(n_lo) {
                *c += 1;
            }
        }
        for (v, &cnt) in covered.iter().enumerate() {
            let want = usize::from(lo <= v && v <= hi);
            assert_eq!(cnt, want, "value {v} covered {cnt} times for [{lo},{hi}]");
        }
    }

    #[test]
    fn decomposition_covers_exactly_all_ranges_small_domain() {
        let h = Hierarchy1d::new(2, 16).unwrap();
        for lo in 0..16 {
            for hi in lo..16 {
                check_cover(&h, lo, hi);
            }
        }
        let h = Hierarchy1d::new(4, 64).unwrap();
        for lo in (0..64).step_by(3) {
            for hi in (lo..64).step_by(5) {
                check_cover(&h, lo, hi);
            }
        }
    }

    #[test]
    fn decomposition_is_minimal_against_dp() {
        // Compare node counts with a dynamic check: the greedy top-down
        // cover is known minimal for aligned hierarchies; verify the classic
        // bound |nodes| <= 2 (b-1) h and exact values on hand cases.
        let h = Hierarchy1d::new(4, 64).unwrap();
        assert_eq!(h.decompose(0, 63).len(), 1); // root
        assert_eq!(h.decompose(0, 15).len(), 1); // one level-1 node
        assert_eq!(h.decompose(0, 16).len(), 2); // level-1 node + leaf
        let worst = h.decompose(1, 62).len();
        assert!(worst <= 2 * 3 * 3, "worst-case cover {worst}");
        // All ranges respect the bound.
        for lo in 0..64 {
            for hi in lo..64 {
                let k = h.decompose(lo, hi).len();
                assert!(k <= 2 * 3 * 3, "[{lo},{hi}] uses {k} nodes");
            }
        }
    }

    #[test]
    fn single_value_decomposes_to_leaf() {
        let h = Hierarchy1d::new(4, 64).unwrap();
        assert_eq!(h.decompose(37, 37), vec![(3, 37)]);
    }
}
