//! 1-D range-query mechanisms under LDP (paper §1/§6; Cormode et al.,
//! PVLDB'19).
//!
//! The paper positions itself against "existing LDP solutions \[that\] are
//! mostly limited to one-dimensional range queries" — chiefly Cormode et
//! al.'s two estimators, both implemented here as substrates and extension
//! baselines:
//!
//! * [`HierarchicalRange1d`] — a branching-`b` interval hierarchy: one user
//!   group per level reports its interval through OLH, constrained
//!   inference fuses the levels, ranges sum the minimal node decomposition.
//! * [`HaarRange1d`] — the Haar wavelet transform: one group per wavelet
//!   level; each user reports (wavelet index, sign of their half) through
//!   OLH; coefficients are the left/right mass differences, and a top-down
//!   synthesis rebuilds leaf frequencies.

#![allow(clippy::needless_range_loop)]
use crate::constrained::constrain_hierarchy_1d;
use crate::hierarchy1d::Hierarchy1d;
use crate::HierarchyError;
use privmdr_oracles::olh::Olh;
use privmdr_oracles::partition::partition_equal;
use privmdr_oracles::SimMode;
use rand::Rng;

/// Hierarchical-intervals estimator for one ordinal attribute.
#[derive(Debug, Clone)]
pub struct HierarchicalRange1d {
    geom: Hierarchy1d,
    c_real: usize,
    /// `levels[ℓ]`: noisy (then constrained) interval frequencies.
    levels: Vec<Vec<f64>>,
}

impl HierarchicalRange1d {
    /// Collects the per-level histograms from `values` and runs constrained
    /// inference. `c` is padded up to a power of `branching` if needed.
    pub fn fit<R: Rng + ?Sized>(
        branching: usize,
        c: usize,
        values: &[u16],
        epsilon: f64,
        mode: SimMode,
        rng: &mut R,
    ) -> Result<Self, HierarchyError> {
        privmdr_oracles::validate_epsilon(epsilon)
            .map_err(|_| HierarchyError::BadEpsilon(epsilon))?;
        let padded = Hierarchy1d::padded_domain(branching, c);
        let geom = Hierarchy1d::new(branching, padded)?;
        let h = geom.height();
        // Level 0 (the root) is trivially 1; only levels 1..=h report.
        let groups = partition_equal(values.len(), h.max(1), rng);
        let mut levels: Vec<Vec<f64>> = vec![vec![1.0]];
        for level in 1..=h {
            let nodes = geom.nodes_at(level);
            let users = &groups[level - 1];
            let cells: Vec<u32> = users
                .iter()
                .map(|&u| geom.node_of(level, values[u as usize] as usize) as u32)
                .collect();
            let olh = Olh::new(epsilon, nodes).expect("nodes >= b >= 2");
            levels.push(olh.collect(&cells, mode, rng));
        }
        constrain_hierarchy_1d(&mut levels, branching);
        Ok(HierarchicalRange1d {
            geom,
            c_real: c,
            levels,
        })
    }

    /// Answer of the range `[lo, hi]` (inclusive) by minimal decomposition.
    pub fn answer(&self, lo: usize, hi: usize) -> f64 {
        assert!(lo <= hi && hi < self.c_real);
        self.geom
            .decompose(lo, hi)
            .into_iter()
            .map(|(level, idx)| self.levels[level][idx])
            .sum()
    }

    /// The (padded) leaf frequency estimates.
    pub fn leaves(&self) -> &[f64] {
        self.levels.last().expect("at least the root level")
    }
}

/// Haar-wavelet estimator for one ordinal attribute (`c` a power of two).
#[derive(Debug, Clone)]
pub struct HaarRange1d {
    c: usize,
    /// Reconstructed leaf frequencies (length `c`).
    leaves: Vec<f64>,
}

impl HaarRange1d {
    /// Collects one wavelet level per user group and synthesizes leaf
    /// frequencies top-down.
    pub fn fit<R: Rng + ?Sized>(
        c: usize,
        values: &[u16],
        epsilon: f64,
        mode: SimMode,
        rng: &mut R,
    ) -> Result<Self, HierarchyError> {
        privmdr_oracles::validate_epsilon(epsilon)
            .map_err(|_| HierarchyError::BadEpsilon(epsilon))?;
        if !privmdr_util::is_pow2(c) || c < 2 {
            return Err(HierarchyError::BadDomain {
                domain: c,
                branching: 2,
            });
        }
        let levels = c.trailing_zeros() as usize; // log2(c) wavelet levels
        let groups = partition_equal(values.len(), levels, rng);

        // Estimate the coefficient of every wavelet (level ℓ has 2^ℓ
        // wavelets over blocks of width c / 2^ℓ; sign = +1 in the left
        // half). Each user reports (wavelet index, sign) through OLH over
        // the 2^{ℓ+1}-value domain.
        let mut coeffs: Vec<Vec<f64>> = Vec::with_capacity(levels);
        for level in 0..levels {
            let wavelets = 1usize << level;
            let block = c / wavelets;
            let users = &groups[level];
            let cells: Vec<u32> = users
                .iter()
                .map(|&u| {
                    let v = values[u as usize] as usize;
                    let k = v / block;
                    let right = usize::from(v % block >= block / 2);
                    (k * 2 + right) as u32
                })
                .collect();
            let olh = Olh::new(epsilon, wavelets * 2).expect("domain >= 2");
            let freqs = olh.collect(&cells, mode, rng);
            // d_{ℓ,k} = mass(left half) − mass(right half).
            coeffs.push(
                (0..wavelets)
                    .map(|k| freqs[2 * k] - freqs[2 * k + 1])
                    .collect(),
            );
        }

        // Top-down synthesis: mass(root) = 1; split each block by its
        // coefficient: left = (mass + d)/2, right = (mass − d)/2.
        let mut masses = vec![1.0f64];
        for level_coeffs in &coeffs {
            let mut next = Vec::with_capacity(masses.len() * 2);
            for (k, &m) in masses.iter().enumerate() {
                let d = level_coeffs[k];
                next.push((m + d) / 2.0);
                next.push((m - d) / 2.0);
            }
            masses = next;
        }
        Ok(HaarRange1d { c, leaves: masses })
    }

    /// Answer of the range `[lo, hi]` (inclusive).
    pub fn answer(&self, lo: usize, hi: usize) -> f64 {
        assert!(lo <= hi && hi < self.c);
        self.leaves[lo..=hi].iter().sum()
    }

    /// The reconstructed per-value frequencies.
    pub fn leaves(&self) -> &[f64] {
        &self.leaves
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmdr_util::rng::derive_rng;

    fn bimodal_values(n: usize) -> Vec<u16> {
        (0..n).map(|i| if i % 2 == 0 { 5 } else { 27 }).collect()
    }

    #[test]
    fn hierarchical_recovers_ranges() {
        let values = bimodal_values(60_000);
        let mut rng = derive_rng(1, &[0]);
        let m =
            HierarchicalRange1d::fit(4, 32, &values, 2.0, SimMode::Fast, &mut rng).expect("fit");
        assert!((m.answer(0, 31) - 1.0).abs() < 0.05);
        assert!((m.answer(0, 15) - 0.5).abs() < 0.06, "{}", m.answer(0, 15));
        assert!((m.answer(24, 31) - 0.5).abs() < 0.06);
        assert!(m.answer(10, 20).abs() < 0.06);
    }

    #[test]
    fn haar_recovers_ranges() {
        let values = bimodal_values(60_000);
        let mut rng = derive_rng(2, &[0]);
        let m = HaarRange1d::fit(32, &values, 2.0, SimMode::Fast, &mut rng).expect("fit");
        // Synthesis conserves total mass exactly.
        assert!((m.leaves().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((m.answer(0, 15) - 0.5).abs() < 0.06, "{}", m.answer(0, 15));
        assert!((m.answer(24, 31) - 0.5).abs() < 0.06);
        assert!(m.answer(10, 20).abs() < 0.06);
    }

    #[test]
    fn haar_requires_power_of_two() {
        let mut rng = derive_rng(3, &[0]);
        assert!(HaarRange1d::fit(24, &[1, 2, 3], 1.0, SimMode::Fast, &mut rng).is_err());
        assert!(HaarRange1d::fit(32, &[1, 2, 3], 0.0, SimMode::Fast, &mut rng).is_err());
    }

    #[test]
    fn hierarchical_pads_non_power_domains() {
        let values: Vec<u16> = (0..30_000).map(|i| (i % 10) as u16).collect();
        let mut rng = derive_rng(4, &[0]);
        let m =
            HierarchicalRange1d::fit(4, 10, &values, 2.0, SimMode::Fast, &mut rng).expect("fit");
        assert!((m.answer(0, 9) - 1.0).abs() < 0.06);
    }

    #[test]
    fn both_beat_noise_floor_on_point_queries() {
        // Distribution with a single atom: both estimators should place
        // clearly more mass there than anywhere else.
        let values = vec![13u16; 40_000];
        let mut rng = derive_rng(5, &[0]);
        let hier = HierarchicalRange1d::fit(2, 32, &values, 2.0, SimMode::Fast, &mut rng).unwrap();
        let haar = HaarRange1d::fit(32, &values, 2.0, SimMode::Fast, &mut rng).unwrap();
        for (name, est) in [("hier", hier.answer(13, 13)), ("haar", haar.answer(13, 13))] {
            assert!(est > 0.7, "{name} point estimate {est}");
        }
    }
}
