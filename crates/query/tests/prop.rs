//! Property tests for queries and workloads.

use privmdr_data::DatasetSpec;
use privmdr_query::workload::{true_answers, WorkloadBuilder};
use privmdr_query::{Predicate, RangeQuery};
use proptest::prelude::*;

proptest! {
    /// Random workloads always produce valid queries of the requested
    /// dimension and volume.
    #[test]
    fn random_workload_valid(
        d in 2usize..8,
        lambda_raw in 1usize..8,
        omega in 0.05f64..1.0,
        seed in any::<u64>(),
    ) {
        let c = 32usize;
        let lambda = lambda_raw.min(d);
        let wl = WorkloadBuilder::new(d, c, seed);
        for q in wl.random(lambda, omega, 20) {
            prop_assert_eq!(q.lambda(), lambda);
            let len = ((omega * c as f64).round() as usize).clamp(1, c);
            for p in q.predicates() {
                prop_assert!(p.attr < d);
                prop_assert_eq!(p.hi - p.lo + 1, len);
                prop_assert!(p.hi < c);
            }
        }
    }

    /// Batch true answers equal per-query scans for mixed workloads.
    #[test]
    fn batch_truths_match(seed in any::<u64>(), n in 50usize..400) {
        let ds = DatasetSpec::Acs.generate(n, 4, 16, seed);
        let wl = WorkloadBuilder::new(4, 16, seed);
        let mut queries = wl.random(2, 0.4, 15);
        queries.extend(wl.random(3, 0.6, 5));
        queries.extend(wl.random(1, 0.5, 5));
        let fast = true_answers(&ds, &queries);
        for (q, &f) in queries.iter().zip(&fast) {
            prop_assert!((f - q.true_answer(&ds)).abs() < 1e-12);
        }
    }

    /// A query's true answer is bounded by each single-predicate marginal
    /// (conjunctions only shrink the selection).
    #[test]
    fn conjunction_shrinks_selection(seed in any::<u64>()) {
        let ds = DatasetSpec::Ipums.generate(300, 3, 16, seed);
        let q = RangeQuery::new(
            vec![
                Predicate { attr: 0, lo: 2, hi: 9 },
                Predicate { attr: 1, lo: 0, hi: 7 },
                Predicate { attr: 2, lo: 4, hi: 15 },
            ],
            16,
        )
        .unwrap();
        let joint = q.true_answer(&ds);
        for p in q.predicates() {
            let single = RangeQuery::new(vec![*p], 16).unwrap().true_answer(&ds);
            prop_assert!(joint <= single + 1e-12);
        }
    }

    /// Zero-count workloads really are zero-count; non-zero really aren't.
    #[test]
    fn count_workloads_honest(seed in any::<u64>()) {
        let ds = DatasetSpec::Normal { rho: 0.5 }.generate(500, 6, 64, seed);
        let wl = WorkloadBuilder::new(6, 64, seed);
        for q in wl.zero_count(&ds, 5, 0.3, 10) {
            prop_assert_eq!(q.true_answer(&ds), 0.0);
        }
        for q in wl.nonzero_count(&ds, 2, 0.7, 10) {
            prop_assert!(q.true_answer(&ds) > 0.0);
        }
    }
}
