//! Property tests for queries and workloads.

use privmdr_data::DatasetSpec;
use privmdr_query::parse::{parse_query, ParseError};
use privmdr_query::workload::{true_answers, WorkloadBuilder};
use privmdr_query::{Predicate, QueryError, RangeQuery};
use proptest::prelude::*;

/// A random valid query over `d` attributes and domain `c`: predicates on
/// distinct attributes (keep-first dedup over random candidates) with
/// ordered in-domain intervals.
fn arb_query(d: usize, c: usize) -> impl Strategy<Value = RangeQuery> {
    prop::collection::vec((0..d, 0..c, 0..c), 1..8).prop_map(move |candidates| {
        let mut preds: Vec<Predicate> = Vec::new();
        for (attr, a, b) in candidates {
            if preds.iter().all(|p| p.attr != attr) {
                preds.push(Predicate {
                    attr,
                    lo: a.min(b),
                    hi: a.max(b),
                });
            }
        }
        RangeQuery::new(preds, c).expect("distinct attrs, valid intervals")
    })
}

proptest! {
    /// Random workloads always produce valid queries of the requested
    /// dimension and volume.
    #[test]
    fn random_workload_valid(
        d in 2usize..8,
        lambda_raw in 1usize..8,
        omega in 0.05f64..1.0,
        seed in any::<u64>(),
    ) {
        let c = 32usize;
        let lambda = lambda_raw.min(d);
        let wl = WorkloadBuilder::new(d, c, seed);
        for q in wl.random(lambda, omega, 20) {
            prop_assert_eq!(q.lambda(), lambda);
            let len = ((omega * c as f64).round() as usize).clamp(1, c);
            for p in q.predicates() {
                prop_assert!(p.attr < d);
                prop_assert_eq!(p.hi - p.lo + 1, len);
                prop_assert!(p.hi < c);
            }
        }
    }

    /// Batch true answers equal per-query scans for mixed workloads.
    #[test]
    fn batch_truths_match(seed in any::<u64>(), n in 50usize..400) {
        let ds = DatasetSpec::Acs.generate(n, 4, 16, seed);
        let wl = WorkloadBuilder::new(4, 16, seed);
        let mut queries = wl.random(2, 0.4, 15);
        queries.extend(wl.random(3, 0.6, 5));
        queries.extend(wl.random(1, 0.5, 5));
        let fast = true_answers(&ds, &queries);
        for (q, &f) in queries.iter().zip(&fast) {
            prop_assert!((f - q.true_answer(&ds)).abs() < 1e-12);
        }
    }

    /// A query's true answer is bounded by each single-predicate marginal
    /// (conjunctions only shrink the selection).
    #[test]
    fn conjunction_shrinks_selection(seed in any::<u64>()) {
        let ds = DatasetSpec::Ipums.generate(300, 3, 16, seed);
        let q = RangeQuery::new(
            vec![
                Predicate { attr: 0, lo: 2, hi: 9 },
                Predicate { attr: 1, lo: 0, hi: 7 },
                Predicate { attr: 2, lo: 4, hi: 15 },
            ],
            16,
        )
        .unwrap();
        let joint = q.true_answer(&ds);
        for p in q.predicates() {
            let single = RangeQuery::new(vec![*p], 16).unwrap().true_answer(&ds);
            prop_assert!(joint <= single + 1e-12);
        }
    }

    /// The textual syntax round-trips every valid query:
    /// `parse(Display(q)) == q` in the display form, and the equivalent
    /// compact form parses to the same query.
    #[test]
    fn parse_display_roundtrip(q in arb_query(7, 64)) {
        let c = 64;
        let parsed = parse_query(&q.to_string(), c).unwrap();
        prop_assert_eq!(&parsed, &q);
        let compact = q
            .predicates()
            .iter()
            .map(|p| format!("{}:{}-{}", p.attr, p.lo, p.hi))
            .collect::<Vec<_>>()
            .join(", ");
        let parsed = parse_query(&compact, c).unwrap();
        prop_assert_eq!(&parsed, &q);
    }

    /// Whitespace and AND-keyword case don't affect the parse.
    #[test]
    fn parse_is_case_and_space_tolerant(q in arb_query(5, 32), upper in any::<bool>()) {
        let text = q.to_string();
        let mangled = if upper {
            text.replace(" AND ", " and ").replace('[', "[ ")
        } else {
            text.replace(", ", " , ")
        };
        prop_assert_eq!(&parse_query(&mangled, 32).unwrap(), &q);
    }

    /// Out-of-domain intervals survive the syntax layer but are rejected by
    /// query validation, for every attribute position.
    #[test]
    fn parse_rejects_out_of_domain(q in arb_query(5, 16), bump in 16usize..1000) {
        let mut text = q.to_string();
        // Push the last interval's upper bound out of the domain.
        let hi = q.predicates().last().unwrap().hi;
        let needle = format!(", {hi}]");
        let replacement = format!(", {bump}]");
        let at = text.rfind(&needle).unwrap();
        text.replace_range(at.., &replacement);
        let rejected = matches!(
            parse_query(&text, 16),
            Err(ParseError::Query(QueryError::BadInterval { .. }))
        );
        prop_assert!(rejected, "'{}' should fail interval validation", text);
    }

    /// Zero-count workloads really are zero-count; non-zero really aren't.
    #[test]
    fn count_workloads_honest(seed in any::<u64>()) {
        let ds = DatasetSpec::Normal { rho: 0.5 }.generate(500, 6, 64, seed);
        let wl = WorkloadBuilder::new(6, 64, seed);
        for q in wl.zero_count(&ds, 5, 0.3, 10) {
            prop_assert_eq!(q.true_answer(&ds), 0.0);
        }
        for q in wl.nonzero_count(&ds, 2, 0.7, 10) {
            prop_assert!(q.true_answer(&ds) > 0.0);
        }
    }
}

/// Malformed predicate strings are rejected with a syntax (not query)
/// error, and never panic — the cases a hand-written workload file gets
/// wrong in practice.
#[test]
fn parser_rejects_malformed_predicates() {
    for text in [
        "",
        "   ",
        "a0",
        "a0 in",
        "a0 in 3-40",
        "a0 in [3 40]",
        "a0 in [3, 40",
        "a0 in 3, 40]",
        "x0 in [3, 40]",
        "a in [3, 40]",
        "a0 in [three, 40]",
        "0:",
        "0:3",
        "0-3:4",
        "0:3-40,",
        "0:3-40, 1:",
        "0:3-40 1:2-5",
        "a0 in [3, 40] AND",
        "AND a0 in [3, 40]",
    ] {
        assert!(
            matches!(parse_query(text, 64), Err(ParseError::Syntax { .. })),
            "{text:?} should be a syntax error, got {:?}",
            parse_query(text, 64)
        );
    }
}
