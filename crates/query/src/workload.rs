//! Evaluation workloads (paper §5.1, Appendix A.3–A.4).
//!
//! The default methodology samples `|Q| = 200` random λ-D queries whose
//! per-attribute interval covers a fraction ω of the domain. Appendix
//! experiments additionally enumerate *all* 2-D range queries of a given
//! volume (Fig. 12), all 2-D marginal cells (Fig. 11), and rejection-sample
//! queries with zero / non-zero true counts (Figs. 13–14).

use crate::query::{Predicate, RangeQuery};
use privmdr_data::Dataset;
use privmdr_util::rng::derive_rng;
use rand::seq::SliceRandom;
use rand::RngExt;

/// Builder for the paper's workloads over a `(d, c)` schema.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadBuilder {
    d: usize,
    c: usize,
    seed: u64,
}

impl WorkloadBuilder {
    /// Creates a builder for `d` attributes over domain `c`, deterministic
    /// in `seed`.
    pub fn new(d: usize, c: usize, seed: u64) -> Self {
        assert!(d >= 1 && c >= 2);
        WorkloadBuilder { d, c, seed }
    }

    /// Interval length for dimensional query volume ω (at least one value).
    fn interval_len(&self, omega: f64) -> usize {
        ((omega * self.c as f64).round() as usize).clamp(1, self.c)
    }

    /// `count` random λ-D queries of volume ω (the §5.1 default workload).
    pub fn random(&self, lambda: usize, omega: f64, count: usize) -> Vec<RangeQuery> {
        assert!(lambda >= 1 && lambda <= self.d, "lambda must be in [1, d]");
        let len = self.interval_len(omega);
        let mut rng = derive_rng(self.seed, &[0x7261_6e64, lambda as u64, count as u64]);
        let mut attrs: Vec<usize> = (0..self.d).collect();
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            attrs.shuffle(&mut rng);
            let preds = attrs[..lambda]
                .iter()
                .map(|&attr| {
                    let lo = rng.random_range(0..=self.c - len);
                    Predicate {
                        attr,
                        lo,
                        hi: lo + len - 1,
                    }
                })
                .collect();
            out.push(RangeQuery::new(preds, self.c).expect("construction is valid"));
        }
        out
    }

    /// All 2-D range queries of volume ω over every attribute pair
    /// (Appendix A.3, Fig. 12): `(d choose 2) · (c·ω)²` queries.
    pub fn full_2d_ranges(&self, omega: f64) -> Vec<RangeQuery> {
        let len = self.interval_len(omega);
        let starts = self.c - len; // c·ω start positions for len = c·ω
        let starts = starts.max(1);
        let mut out = Vec::new();
        for j in 0..self.d {
            for k in (j + 1)..self.d {
                for lo_j in 0..starts {
                    for lo_k in 0..starts {
                        out.push(
                            RangeQuery::new(
                                vec![
                                    Predicate {
                                        attr: j,
                                        lo: lo_j,
                                        hi: lo_j + len - 1,
                                    },
                                    Predicate {
                                        attr: k,
                                        lo: lo_k,
                                        hi: lo_k + len - 1,
                                    },
                                ],
                                self.c,
                            )
                            .expect("construction is valid"),
                        );
                    }
                }
            }
        }
        out
    }

    /// All 2-D marginal cells over every attribute pair (Appendix A.3,
    /// Fig. 11): `(d choose 2) · c²` single-value queries.
    pub fn full_2d_marginals(&self) -> Vec<RangeQuery> {
        let mut out = Vec::new();
        for j in 0..self.d {
            for k in (j + 1)..self.d {
                for vj in 0..self.c {
                    for vk in 0..self.c {
                        out.push(
                            RangeQuery::new(
                                vec![
                                    Predicate {
                                        attr: j,
                                        lo: vj,
                                        hi: vj,
                                    },
                                    Predicate {
                                        attr: k,
                                        lo: vk,
                                        hi: vk,
                                    },
                                ],
                                self.c,
                            )
                            .expect("construction is valid"),
                        );
                    }
                }
            }
        }
        out
    }

    /// Rejection-samples `count` λ-D queries of volume ω whose true answer
    /// on `ds` is exactly zero (Fig. 13). Gives up after `max_tries`
    /// attempts and returns what it found.
    pub fn zero_count(
        &self,
        ds: &Dataset,
        lambda: usize,
        omega: f64,
        count: usize,
    ) -> Vec<RangeQuery> {
        self.rejection_sample(ds, lambda, omega, count, true)
    }

    /// Rejection-samples `count` λ-D queries of volume ω with a strictly
    /// positive true answer (Fig. 14).
    pub fn nonzero_count(
        &self,
        ds: &Dataset,
        lambda: usize,
        omega: f64,
        count: usize,
    ) -> Vec<RangeQuery> {
        self.rejection_sample(ds, lambda, omega, count, false)
    }

    fn rejection_sample(
        &self,
        ds: &Dataset,
        lambda: usize,
        omega: f64,
        count: usize,
        want_zero: bool,
    ) -> Vec<RangeQuery> {
        let max_tries = count.saturating_mul(200).max(1000);
        let len = self.interval_len(omega);
        let mut rng = derive_rng(
            self.seed,
            &[0x7a65_726f, lambda as u64, u64::from(want_zero)],
        );
        let mut attrs: Vec<usize> = (0..self.d).collect();
        let mut out = Vec::with_capacity(count);
        for _ in 0..max_tries {
            if out.len() == count {
                break;
            }
            attrs.shuffle(&mut rng);
            let preds = attrs[..lambda]
                .iter()
                .map(|&attr| {
                    let lo = rng.random_range(0..=self.c - len);
                    Predicate {
                        attr,
                        lo,
                        hi: lo + len - 1,
                    }
                })
                .collect();
            let q = RangeQuery::new(preds, self.c).expect("construction is valid");
            let is_zero = q.true_answer(ds) == 0.0;
            if is_zero == want_zero {
                out.push(q);
            }
        }
        out
    }
}

/// Efficient batch ground truth: answers all 2-D queries from prefix-summed
/// pair histograms (O(1) per query after O(c²) per touched pair) and scans
/// records only for λ ≠ 2 queries.
pub fn true_answers(ds: &Dataset, queries: &[RangeQuery]) -> Vec<f64> {
    use std::collections::HashMap;
    let c = ds.domain();
    let mut pair_prefix: HashMap<(usize, usize), privmdr_grid::PrefixSum2d> = HashMap::new();
    let mut out = Vec::with_capacity(queries.len());
    for q in queries {
        if q.lambda() == 2 {
            let p0 = q.predicates()[0];
            let p1 = q.predicates()[1];
            let key = (p0.attr, p1.attr);
            let prefix = pair_prefix
                .entry(key)
                .or_insert_with(|| privmdr_grid::PrefixSum2d::build(&ds.pair_histogram(key), c, c));
            out.push(prefix.rect_inclusive(p0.lo, p0.hi, p1.lo, p1.hi));
        } else {
            out.push(q.true_answer(ds));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmdr_data::DatasetSpec;

    #[test]
    fn random_workload_shape() {
        let wl = WorkloadBuilder::new(6, 64, 1);
        let qs = wl.random(4, 0.5, 200);
        assert_eq!(qs.len(), 200);
        for q in &qs {
            assert_eq!(q.lambda(), 4);
            for p in q.predicates() {
                assert_eq!(p.hi - p.lo + 1, 32, "interval length must be c*omega");
            }
            // Volume = 0.5^4.
            assert!((q.volume(64) - 0.0625).abs() < 1e-12);
        }
    }

    #[test]
    fn random_workload_is_seeded() {
        let a = WorkloadBuilder::new(6, 64, 5).random(2, 0.3, 50);
        let b = WorkloadBuilder::new(6, 64, 5).random(2, 0.3, 50);
        let c = WorkloadBuilder::new(6, 64, 6).random(2, 0.3, 50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn full_enumerations_have_paper_counts() {
        let wl = WorkloadBuilder::new(6, 64, 1);
        // Fig. 12: (6 choose 2) * 32^2 = 15360.
        assert_eq!(wl.full_2d_ranges(0.5).len(), 15 * 32 * 32);
        // Fig. 11: (6 choose 2) * 64^2 = 61440.
        assert_eq!(wl.full_2d_marginals().len(), 15 * 64 * 64);
    }

    #[test]
    fn zero_and_nonzero_sampling() {
        let ds = DatasetSpec::Normal { rho: 0.8 }.generate(5000, 6, 64, 3);
        let wl = WorkloadBuilder::new(6, 64, 2);
        let zeros = wl.zero_count(&ds, 6, 0.3, 20);
        for q in &zeros {
            assert_eq!(q.true_answer(&ds), 0.0);
        }
        assert!(!zeros.is_empty());
        let nonzeros = wl.nonzero_count(&ds, 3, 0.7, 20);
        assert_eq!(nonzeros.len(), 20);
        for q in &nonzeros {
            assert!(q.true_answer(&ds) > 0.0);
        }
    }

    #[test]
    fn batch_true_answers_match_scans() {
        let ds = DatasetSpec::Ipums.generate(3000, 4, 32, 7);
        let wl = WorkloadBuilder::new(4, 32, 9);
        let mut qs = wl.random(2, 0.5, 30);
        qs.extend(wl.random(3, 0.4, 10));
        let fast = true_answers(&ds, &qs);
        for (q, &f) in qs.iter().zip(&fast) {
            assert!((f - q.true_answer(&ds)).abs() < 1e-12, "query {q}");
        }
    }

    #[test]
    fn omega_one_covers_domain() {
        let wl = WorkloadBuilder::new(3, 16, 1);
        let qs = wl.random(2, 1.0, 5);
        for q in &qs {
            for p in q.predicates() {
                assert_eq!((p.lo, p.hi), (0, 15));
            }
        }
    }
}
