//! Accuracy metrics (paper §5.1, Appendix A.2).
//!
//! The paper scores a mechanism on a workload with the Mean Absolute Error
//! `MAE = (1/|Q|) Σ |f_q − f̄_q|`, and Appendix A.2 also reports the
//! distribution of per-query standard (absolute) errors.

/// Mean Absolute Error between estimates and ground truth.
///
/// Panics if the slices differ in length; returns 0 on empty input.
pub fn mae(estimates: &[f64], truths: &[f64]) -> f64 {
    assert_eq!(estimates.len(), truths.len(), "mismatched workload lengths");
    if estimates.is_empty() {
        return 0.0;
    }
    estimates
        .iter()
        .zip(truths)
        .map(|(e, t)| (e - t).abs())
        .sum::<f64>()
        / estimates.len() as f64
}

/// Per-query absolute errors `|f_q − f̄_q|` (Figs. 9–10 histograms).
pub fn standard_errors(estimates: &[f64], truths: &[f64]) -> Vec<f64> {
    assert_eq!(estimates.len(), truths.len(), "mismatched workload lengths");
    estimates
        .iter()
        .zip(truths)
        .map(|(e, t)| (e - t).abs())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_basic() {
        assert_eq!(mae(&[], &[]), 0.0);
        assert!((mae(&[0.5, 0.0], &[0.25, 0.25]) - 0.25).abs() < 1e-12);
        assert_eq!(mae(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn standard_errors_are_absolute() {
        let errs = standard_errors(&[0.1, 0.9], &[0.3, 0.5]);
        assert!((errs[0] - 0.2).abs() < 1e-12);
        assert!((errs[1] - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn length_mismatch_panics() {
        let _ = mae(&[0.1], &[0.1, 0.2]);
    }
}
