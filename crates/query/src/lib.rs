//! Multi-dimensional range queries, workloads, and accuracy metrics
//! (paper §3.1, §5.1).
//!
//! * [`query`] — the λ-dimensional conjunctive range query and its ground
//!   truth against a [`privmdr_data::Dataset`].
//! * [`workload`] — the evaluation workloads: random queries of dimensional
//!   volume ω, the full 2-D range/marginal enumerations (Figs. 11–12), and
//!   the 0-count / non-0-count rejection-sampled sets (Figs. 13–14).
//! * [`metrics`] — Mean Absolute Error and per-query error distributions
//!   (Figs. 9–10).

pub mod metrics;
pub mod parse;
pub mod query;
pub mod workload;

pub use metrics::{mae, standard_errors};
pub use parse::{parse_query, parse_workload};
pub use query::{Predicate, QueryError, RangeQuery};
pub use workload::WorkloadBuilder;
