//! Textual query syntax.
//!
//! Round-trips the `Display` form of [`RangeQuery`] and also accepts a
//! compact form, so workload files are easy to write by hand:
//!
//! ```text
//! a0 in [3, 40] AND a2 in [1, 5]     # display form
//! 0:3-40, 2:1-5                      # compact form
//! ```

use crate::query::{Predicate, QueryError, RangeQuery};

/// Errors from parsing query text.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Unrecognized predicate syntax.
    Syntax {
        /// The offending fragment.
        fragment: String,
    },
    /// Parsed fine but violates query invariants.
    Query(QueryError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Syntax { fragment } => {
                write!(f, "cannot parse predicate '{fragment}'")
            }
            ParseError::Query(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses one query in either syntax, validating against domain `c`.
pub fn parse_query(text: &str, c: usize) -> Result<RangeQuery, ParseError> {
    let text = text.trim();
    let display_form = text.to_ascii_uppercase().contains(" IN ");
    let separators: &[&str] = if display_form {
        &[" AND ", " and "]
    } else {
        &[","]
    };
    let mut fragments = vec![text];
    for sep in separators {
        fragments = fragments.iter().flat_map(|f| f.split(sep)).collect();
    }
    let preds: Result<Vec<Predicate>, ParseError> = fragments
        .into_iter()
        .map(|frag| {
            if display_form {
                parse_display_predicate(frag)
            } else {
                parse_compact_predicate(frag)
            }
        })
        .collect();
    RangeQuery::new(preds?, c).map_err(ParseError::Query)
}

/// `a0 in [3, 40]`
fn parse_display_predicate(frag: &str) -> Result<Predicate, ParseError> {
    let err = || ParseError::Syntax {
        fragment: frag.trim().to_string(),
    };
    let frag_trim = frag.trim();
    let lower = frag_trim.to_ascii_lowercase();
    let (attr_part, range_part) = lower.split_once(" in ").ok_or_else(err)?;
    let attr_part = attr_part.trim();
    let attr: usize = attr_part
        .strip_prefix('a')
        .ok_or_else(err)?
        .trim()
        .parse()
        .map_err(|_| err())?;
    let range = range_part
        .trim()
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(err)?;
    let (lo, hi) = range.split_once(',').ok_or_else(err)?;
    Ok(Predicate {
        attr,
        lo: lo.trim().parse().map_err(|_| err())?,
        hi: hi.trim().parse().map_err(|_| err())?,
    })
}

/// `0:3-40`
fn parse_compact_predicate(frag: &str) -> Result<Predicate, ParseError> {
    let err = || ParseError::Syntax {
        fragment: frag.trim().to_string(),
    };
    let frag_trim = frag.trim();
    let (attr, range) = frag_trim.split_once(':').ok_or_else(err)?;
    let (lo, hi) = range.split_once('-').ok_or_else(err)?;
    Ok(Predicate {
        attr: attr.trim().parse().map_err(|_| err())?,
        lo: lo.trim().parse().map_err(|_| err())?,
        hi: hi.trim().parse().map_err(|_| err())?,
    })
}

/// Parses a workload file: one query per line; blank lines and `#` comments
/// skipped. Returns `(line number, query)` pairs for error reporting.
pub fn parse_workload(text: &str, c: usize) -> Result<Vec<RangeQuery>, (usize, ParseError)> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_query(line, c).map_err(|e| (idx + 1, e))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_display_form_round_trip() {
        let q = RangeQuery::from_triples(&[(0, 3, 40), (2, 1, 5)], 64).unwrap();
        let parsed = parse_query(&q.to_string(), 64).unwrap();
        assert_eq!(parsed, q);
    }

    #[test]
    fn parses_compact_form() {
        let q = parse_query("0:3-40, 2:1-5", 64).unwrap();
        assert_eq!(
            q,
            RangeQuery::from_triples(&[(0, 3, 40), (2, 1, 5)], 64).unwrap()
        );
        let q = parse_query("5:0-63", 64).unwrap();
        assert_eq!(q.lambda(), 1);
    }

    #[test]
    fn case_insensitive_and() {
        let q = parse_query("a1 in [0, 7] and a3 in [2, 2]", 8).unwrap();
        assert_eq!(q.lambda(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(parse_query("", 8), Err(ParseError::Syntax { .. })));
        assert!(matches!(
            parse_query("b0 in [1, 2]", 8),
            Err(ParseError::Syntax { .. })
        ));
        assert!(matches!(
            parse_query("0:1", 8),
            Err(ParseError::Syntax { .. })
        ));
        assert!(matches!(parse_query("0:5-2", 8), Err(ParseError::Query(_))));
        assert!(matches!(parse_query("0:0-9", 8), Err(ParseError::Query(_))));
        assert!(matches!(
            parse_query("0:1-2, 0:3-4", 8),
            Err(ParseError::Query(QueryError::DuplicateAttr(0)))
        ));
    }

    #[test]
    fn workload_file_with_comments() {
        let text = "# workload\n0:0-3\n\na1 in [2, 5] AND a2 in [0, 7]\n";
        let qs = parse_workload(text, 8).unwrap();
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[1].lambda(), 2);
    }

    #[test]
    fn workload_reports_line_numbers() {
        let text = "0:0-3\nnonsense\n";
        let err = parse_workload(text, 8).unwrap_err();
        assert_eq!(err.0, 2);
    }
}
